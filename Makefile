# Tier-1 verification: everything CI runs.
.PHONY: check build test clean figures

check: build test

build:
	dune build

test:
	dune runtest

clean:
	dune clean

figures:
	dune exec bin/repro.exe -- figures --quick
