# Tier-1 verification: everything CI runs.
.PHONY: check build test explore-smoke metrics-smoke causal-smoke serve-smoke parbench-smoke memento-smoke forensics-smoke space-smoke elastic-smoke clean figures

check: build test explore-smoke metrics-smoke causal-smoke serve-smoke parbench-smoke memento-smoke forensics-smoke space-smoke elastic-smoke

build:
	dune build

test:
	dune runtest

# Bounded exhaustive exploration smoke: a 2-thread x 1-op campaign with
# preemption bound 2 must exhaust its tree with no violation.
explore-smoke:
	dune exec bin/repro.exe -- explore -a tracking -t 2 --ops 1 \
	  --keys 4 --prefill 1 --preemptions 2 --crashes 1 --wb 2 --max-execs 0

# Metrics + Perfetto smoke: a small campaign with metrics and tracing on;
# --validate re-parses the emitted trace_event JSON and requires at least
# one complete span per thread track.  repro stats must report in-memory
# latency/contention/recovery profiles for a crashing seed.
metrics-smoke:
	dune exec bin/repro.exe -- trace -a tracking -t 3 --ops 12 --crashes 2 \
	  --keys 32 --seed 7 --perfetto _build/perfetto-smoke.json --validate
	dune exec bin/repro.exe -- stats -a tracking -t 4 --ops 40 --crashes 2 \
	  --keys 64 --seed 1

# Causal profiler smoke: a tiny what-if sweep whose --check asserts the
# paper's orderings — high-impact pwbs above low-impact per execution,
# psync sensitivity near zero — and exercises the JSON/CSV exporters.
causal-smoke:
	dune exec bin/repro.exe -- causal --quick --check \
	  --json _build/causal-smoke.json --csv _build/causal-smoke.csv

# Store service smoke: crash one shard of a live 4-shard serve; --check
# asserts zero lost requests (oracle-verified per shard) and that the
# surviving shards completed requests inside the recovery window.  The
# second run sweeps every crash point of a tiny 2-shard store.
serve-smoke:
	dune exec bin/repro.exe -- serve --shards 4 --clients 4 --ops 100 \
	  --crash-shard 2 --check
	dune exec bin/repro.exe -- serve --shards 2 --clients 2 --ops 12 \
	  --keys 16 --explore --dispatch-budget 48

# Parallel-driver smoke: the same small campaign suite at -j 1 and -j 2
# must produce byte-identical reports — the determinism contract of the
# domain fan-out driver (lib/harness/parallel.mli).  Progress lines are
# pacing, not results, so they are filtered before comparison; repro
# files and JSON exports are compared raw.
parbench-smoke:
	dune exec bin/repro.exe -- explore -a tracking -t 2 --ops 1 \
	  --keys 4 --prefill 1 --preemptions 2 --crashes 1 --wb 2 --max-execs 0 \
	  -j 1 | grep -v '^\[explore\]' > _build/parbench-explore-j1.txt
	dune exec bin/repro.exe -- explore -a tracking -t 2 --ops 1 \
	  --keys 4 --prefill 1 --preemptions 2 --crashes 1 --wb 2 --max-execs 0 \
	  -j 2 | grep -v '^\[explore\]' > _build/parbench-explore-j2.txt
	cmp _build/parbench-explore-j1.txt _build/parbench-explore-j2.txt
	dune exec bin/repro.exe -- causal --quick -j 1 --json _build/parbench-causal-j1.json
	dune exec bin/repro.exe -- causal --quick -j 2 --json _build/parbench-causal-j2.json
	cmp _build/parbench-causal-j1.json _build/parbench-causal-j2.json
	dune exec bin/repro.exe -- serve --shards 2 --clients 2 --ops 12 \
	  --keys 16 --explore --dispatch-budget 48 -j 1 > _build/parbench-serve-j1.txt
	dune exec bin/repro.exe -- serve --shards 2 --clients 2 --ops 12 \
	  --keys 16 --explore --dispatch-budget 48 -j 2 > _build/parbench-serve-j2.txt
	cmp _build/parbench-serve-j1.txt _build/parbench-serve-j2.txt

# Memento framework smoke: both derived structures must survive crash
# campaigns with oracle verification and exhaust a single-threaded
# exploration tree (no scheduling choices, so every crash point x
# write-back resolution is covered, including the deep confirm-side
# ones); the negative control with the checkpoint persist elided must
# be caught by the same exploration (nonzero exit).
memento-smoke:
	dune exec bin/repro.exe -- crash -a memento-list --seeds 30 -t 4 \
	  --ops 10 --keys 24 --crashes 3
	dune exec bin/repro.exe -- crash -a memento-comb --seeds 30 -t 4 \
	  --ops 10 --keys 24 --crashes 3
	dune exec bin/repro.exe -- explore -a memento-list -t 1 --ops 3 \
	  --keys 3 --prefill 0 --preemptions 0 --crashes 1 --wb 2 --max-execs 0
	dune exec bin/repro.exe -- explore -a memento-comb -t 1 --ops 3 \
	  --keys 3 --prefill 0 --preemptions 0 --crashes 1 --wb 2 --max-execs 0
	! dune exec bin/repro.exe -- explore -a memento-broken -t 1 --ops 3 \
	  --keys 3 --prefill 0 --preemptions 0 --crashes 1 --wb 2 --max-execs 0

# Crash-forensics smoke: `repro explain` on the shipped negative-control
# repros must name the elided persist site in the postmortem, and the
# output must be byte-identical across -j settings (the determinism
# contract of forensic replay).
forensics-smoke:
	dune exec bin/repro.exe -- explain repros/tracking-broken.repro \
	  | grep -q 'rlist-broken.new.pwb'
	dune exec bin/repro.exe -- explain repros/memento-broken.repro \
	  | grep -q 'mmt-broken.cp.pwb'
	dune exec bin/repro.exe -- explain -j 1 repros/tracking-broken.repro \
	  > _build/forensics-tb-j1.txt
	dune exec bin/repro.exe -- explain -j 4 repros/tracking-broken.repro \
	  > _build/forensics-tb-j4.txt
	cmp _build/forensics-tb-j1.txt _build/forensics-tb-j4.txt
	dune exec bin/repro.exe -- explain --json -j 1 repros/memento-broken.repro \
	  > _build/forensics-mb-j1.json
	dune exec bin/repro.exe -- explain --json -j 4 repros/memento-broken.repro \
	  > _build/forensics-mb-j4.json
	cmp _build/forensics-mb-j1.json _build/forensics-mb-j4.json

# Persistent-space accounting smoke: the default variant set must pass
# the detectable-object lower-bound check (--check), report live/meta/
# garbage accounting for the core variants, and render byte-identically
# at -j 1 and -j 4 (the registry is domain-local; see DESIGN.md
# "Persistent-space accounting").
space-smoke:
	dune exec bin/repro.exe -- space --check -j 1 --json _build/space-j1.json \
	  | grep -v '^wrote ' > _build/space-j1.txt
	grep -q 'memento-comb' _build/space-j1.txt
	grep -q 'arXiv 2002.11378' _build/space-j1.txt
	grep -q '"lower_bound_ok":true' _build/space-j1.json
	dune exec bin/repro.exe -- space --check -j 4 --json _build/space-j4.json \
	  | grep -v '^wrote ' > _build/space-j4.txt
	cmp _build/space-j1.txt _build/space-j4.txt
	cmp _build/space-j1.json _build/space-j4.json

# Elastic-store smoke: (1) a live shard split completes under traffic
# and passes the balance gate; (2) a crashed primary fails over to its
# replica with zero lost requests; (3) correlated power loss of BOTH
# migration endpoints — source write-backs dropped, destination's all
# applied — still converges; (4) the crash-point sweep over a migrating
# store proves every key lands in exactly one shard at every crash
# point, and the negative control with the handoff-commit pwb elided is
# caught by the same sweep (nonzero exit).
elastic-smoke:
	dune exec bin/repro.exe -- serve -a tracking --shards 2 --clients 2 \
	  --ops 40 --keys 32 --migrate 0 --migrate-after 10 --check --check-balance 64
	dune exec bin/repro.exe -- serve -a tracking --shards 2 --clients 2 \
	  --ops 40 --keys 32 --replicate --crash-shard 0 --crash-after 20 --check
	dune exec bin/repro.exe -- serve -a tracking --shards 2 --clients 4 \
	  --ops 40 --keys 32 --migrate 0 --migrate-after 5 --crash-both 0,2 \
	  --crash-dispatch 12 --wb drop --wb2 all --check
	dune exec bin/repro.exe -- serve -a tracking --shards 2 --clients 2 \
	  --ops 16 --keys 16 --migrate 0 --migrate-after 3 --explore \
	  --dispatch-budget 200 -j 2
	! dune exec bin/repro.exe -- serve -a tracking --shards 2 --clients 2 \
	  --ops 16 --keys 16 --migrate 0 --migrate-after 3 --broken-handoff \
	  --explore --dispatch-budget 200 -j 2 > /dev/null 2>&1

clean:
	dune clean

figures:
	dune exec bin/repro.exe -- figures --quick
