# Tier-1 verification: everything CI runs.
.PHONY: check build test explore-smoke clean figures

check: build test explore-smoke

build:
	dune build

test:
	dune runtest

# Bounded exhaustive exploration smoke: a 2-thread x 1-op campaign with
# preemption bound 2 must exhaust its tree with no violation.
explore-smoke:
	dune exec bin/repro.exe -- explore -a tracking -t 2 --ops 1 \
	  --keys 4 --prefill 1 --preemptions 2 --crashes 1 --wb 2 --max-execs 0

clean:
	dune clean

figures:
	dune exec bin/repro.exe -- figures --quick
