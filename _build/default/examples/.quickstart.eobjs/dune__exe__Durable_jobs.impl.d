examples/durable_jobs.ml: Array List Pmem Printf Random Rqueue Sim
