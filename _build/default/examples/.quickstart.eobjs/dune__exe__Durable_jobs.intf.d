examples/durable_jobs.mli:
