examples/persistent_kv.ml: Array Hashtbl List Option Pmem Printf Random Rbst Sim
