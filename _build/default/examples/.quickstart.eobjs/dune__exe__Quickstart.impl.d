examples/quickstart.ml: List Pmem Printf Rbst Rlist Sim String
