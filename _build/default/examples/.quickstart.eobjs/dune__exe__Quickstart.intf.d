examples/quickstart.mli:
