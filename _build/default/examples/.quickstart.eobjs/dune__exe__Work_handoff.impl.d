examples/work_handoff.ml: Array List Pmem Printf Random Rexchanger Sim String
