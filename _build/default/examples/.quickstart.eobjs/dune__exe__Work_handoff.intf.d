examples/work_handoff.mli:
