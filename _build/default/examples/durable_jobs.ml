(* Exactly-once job processing over the recoverable queue.

   Run with: dune exec examples/durable_jobs.exe

   Producers enqueue jobs; workers dequeue and "process" them.  The
   machine loses power repeatedly.  Detectable recovery means a worker
   interrupted mid-dequeue learns on restart whether it owned a job and
   which one — so every job is processed exactly once, even though
   crashes land at arbitrary points. *)

let producers = 2
let workers = 2
let jobs_per_producer = 12

let () =
  let heap = Pmem.heap ~name:"jobs" () in
  let threads = producers + workers in
  let q = Rqueue.create heap ~threads in
  let produced = ref [] and processed = ref [] in
  let pending = Array.make threads None in
  let to_produce =
    Array.init threads (fun i ->
        ref (if i < producers then List.init jobs_per_producer (fun j -> (i * 1000) + j) else []))
  in
  let budget = Array.make threads 60 in

  let producer i (_ : int) =
    let rec go () =
      match !(to_produce.(i)) with
      | [] -> ()
      | job :: rest ->
          pending.(i) <- Some (Rqueue.Enqueue job);
          ignore (Rqueue.apply q (Rqueue.Enqueue job) : int option);
          produced := job :: !produced;
          pending.(i) <- None;
          to_produce.(i) := rest;
          go ()
    in
    go ()
  in
  let worker i (_ : int) =
    while budget.(i) > 0 do
      budget.(i) <- budget.(i) - 1;
      pending.(i) <- Some Rqueue.Dequeue;
      (match Rqueue.apply q Rqueue.Dequeue with
      | Some job -> processed := job :: !processed
      | None -> Sim.advance 200.);
      pending.(i) <- None
    done
  in
  let recoverer i (_ : int) =
    match pending.(i) with
    | None -> ()
    | Some op ->
        (match Rqueue.recover q op with
        | Some job -> processed := job :: !processed
        | None -> (
            match op with
            | Rqueue.Enqueue job -> produced := job :: !produced
            | Rqueue.Dequeue -> ()));
        (match op with
        | Rqueue.Enqueue _ ->
            to_produce.(i) := List.tl !(to_produce.(i))
        | Rqueue.Dequeue -> budget.(i) <- budget.(i) - 1);
        pending.(i) <- None
  in
  let mk_bodies () =
    Array.init threads (fun i ->
        if i < producers then producer i else worker i)
  in
  let rng = Random.State.make [| 7 |] in
  let crashes = ref 0 in
  let rec run round bodies =
    match
      Sim.run ~policy:`Random ~seed:round
        ~crash_at:(if !crashes < 4 then 200 + Random.State.int rng 2_500 else -1)
        bodies
    with
    | Sim.All_done ->
        if Array.exists (fun p -> p <> None) pending then
          run (round + 1) (Array.init threads recoverer)
        else if
          Array.exists (fun l -> !l <> []) to_produce
          || Array.exists (fun b -> b > 0) (Array.sub budget producers workers)
        then run (round + 1) (mk_bodies ())
        else ()
    | Sim.Crashed_at step ->
        incr crashes;
        Printf.printf "power failure #%d at step %d\n" !crashes step;
        Pmem.crash ~rng heap;
        run (round + 1) (Array.init threads recoverer)
  in
  run 0 (mk_bodies ());

  (* drain whatever is left in the queue *)
  let left = Rqueue.to_list q in
  let outcome = List.sort compare (!processed @ left) in
  let expected = List.sort compare !produced in
  Printf.printf
    "produced %d jobs, processed %d, still queued %d, crashes %d\n"
    (List.length !produced) (List.length !processed) (List.length left)
    !crashes;
  if outcome = expected then
    print_endline "every job accounted for exactly once"
  else begin
    print_endline "JOB ACCOUNTING MISMATCH";
    exit 1
  end
