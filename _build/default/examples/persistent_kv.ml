(* A durable membership service built on the recoverable BST.

   Run with: dune exec examples/persistent_kv.exe

   Eight simulated clients hammer a shared recoverable BST; the machine
   crashes repeatedly; after each crash every client recovers its pending
   request and the service resumes — no request is lost, no response is
   wrong.  At the end, the service's durable contents are checked against
   a model reconstructed purely from the responses. *)

module T = Rbst.Int

let clients = 8
let requests_per_client = 30
let key_space = 64

let () =
  let heap = Pmem.heap ~name:"kv-service" () in
  let tree = T.create heap ~threads:clients in
  let rng = Random.State.make [| 2022 |] in

  (* per-client scripts, and the system's durable request bookkeeping *)
  let scripts =
    Array.init clients (fun c ->
        let crng = Random.State.make [| c; 5 |] in
        ref
          (List.init requests_per_client (fun _ ->
               let k = Random.State.int crng key_space in
               match Random.State.int crng 3 with
               | 0 -> T.Insert k
               | 1 -> T.Delete k
               | _ -> T.Find k)))
  in
  let pending = Array.make clients None in
  let responses = ref [] in

  let serve c (_ : int) =
    let rec go () =
      match !(scripts.(c)) with
      | [] -> ()
      | req :: rest ->
          pending.(c) <- Some req;
          let resp = T.apply tree req in
          responses := (req, resp) :: !responses;
          pending.(c) <- None;
          scripts.(c) := rest;
          go ()
    in
    go ()
  in
  let recover c (_ : int) =
    match pending.(c) with
    | None -> ()
    | Some req ->
        let resp = T.recover tree req in
        responses := (req, resp) :: !responses;
        pending.(c) <- None;
        (match !(scripts.(c)) with
        | _ :: rest -> scripts.(c) := rest
        | [] -> ())
  in

  let crashes = ref 0 in
  let rec run round bodies =
    match
      Sim.run ~policy:`Random ~seed:round
        ~crash_at:(if !crashes < 5 then 2_000 + Random.State.int rng 12_000 else -1)
        bodies
    with
    | Sim.All_done ->
        if Array.exists (fun p -> p <> None) pending then
          run (round + 1) (Array.init clients recover)
        else if Array.exists (fun s -> !s <> []) scripts then
          run (round + 1) (Array.init clients serve)
        else ()
    | Sim.Crashed_at step ->
        incr crashes;
        Printf.printf "power failure #%d at step %d — recovering %d pending \
                       requests\n"
          !crashes step
          (Array.fold_left
             (fun n p -> if p = None then n else n + 1)
             0 pending);
        Pmem.crash ~rng heap;
        run (round + 1) (Array.init clients recover)
  in
  run 0 (Array.init clients serve);

  (* Validate: reconstruct per-key membership from responses alone. *)
  let si = Hashtbl.create 64 and sd = Hashtbl.create 64 in
  let bump h k = Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)) in
  List.iter
    (fun (req, resp) ->
      match (req, resp) with
      | T.Insert k, true -> bump si k
      | T.Delete k, true -> bump sd k
      | _ -> ())
    !responses;
  let contents = T.to_list tree in
  let ok = ref true in
  for k = 0 to key_space - 1 do
    let net =
      Option.value ~default:0 (Hashtbl.find_opt si k)
      - Option.value ~default:0 (Hashtbl.find_opt sd k)
    in
    let present = List.mem k contents in
    if net < 0 || net > 1 || present <> (net = 1) then begin
      ok := false;
      Printf.printf "INCONSISTENT key %d: net=%d present=%b\n" k net present
    end
  done;
  Printf.printf
    "served %d requests across %d crashes; final size %d; consistent: %b\n"
    (List.length !responses) !crashes (List.length contents) !ok;
  match T.check_invariants tree with
  | Ok () -> print_endline "tree invariants hold"
  | Error m -> failwith m
