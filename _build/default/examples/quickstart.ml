(* Quickstart: a detectably recoverable sorted list on simulated NVMM.

   Run with: dune exec examples/quickstart.exe

   The walk-through: create a list, run a few operations, crash the
   machine in the middle of an insert, and let the thread recover its own
   operation — getting back the exact response the crashed operation
   would have returned. *)

module L = Rlist.Int

let () =
  (* A heap is the region of simulated NVMM reset by a crash. *)
  let heap = Pmem.heap ~name:"quickstart" () in
  let list = L.create heap ~threads:2 in

  (* Plain sequential use (outside the simulator, thread id 0). *)
  assert (L.insert list 10);
  assert (L.insert list 30);
  assert (not (L.insert list 10));
  assert (L.find list 30);
  assert (L.delete list 30);
  Printf.printf "after setup: [%s]\n"
    (String.concat "; " (List.map string_of_int (L.to_list list)));

  (* Now crash an insert mid-flight.  The simulator runs the operation as
     a fiber and injects a system-wide crash at a chosen step; volatile
     state is lost, persisted state survives. *)
  let crash_step = 42 in
  (match
     Sim.run ~policy:`Random ~seed:7 ~crash_at:crash_step
       [| (fun _ -> ignore (L.insert list 20)) |]
   with
  | Sim.All_done -> print_endline "no crash (operation was too fast)"
  | Sim.Crashed_at n -> Printf.printf "crash at simulator step %d!\n" n);
  Pmem.crash heap;

  (* Detectable recovery: the system re-invokes the thread's recovery
     function with the same arguments; it finishes (or re-executes) the
     operation and returns its response. *)
  (match Sim.run [| (fun _ -> assert (L.recover list (L.Insert 20))) |] with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> assert false);

  Printf.printf "after recovery: [%s]\n"
    (String.concat "; " (List.map string_of_int (L.to_list list)));
  assert (L.find list 20);
  (match L.check_invariants list with
  | Ok () -> print_endline "invariants hold — recovery is detectable"
  | Error m -> failwith m);

  (* The same API works for the recoverable BST. *)
  let module T = Rbst.Int in
  let tree = T.create heap ~threads:2 in
  List.iter (fun k -> ignore (T.insert tree k)) [ 5; 2; 8 ];
  Printf.printf "bst contents: [%s]\n"
    (String.concat "; " (List.map string_of_int (T.to_list tree)))
