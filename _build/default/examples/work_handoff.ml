(* Crash-proof work hand-off through the recoverable exchanger (§6).

   Run with: dune exec examples/work_handoff.exe

   Producers and consumers rendezvous pairwise through one exchanger:
   a producer offers a task id and receives an ack token; a consumer
   offers its ack token and receives a task.  The machine crashes during
   the run; every thread recovers its pending exchange and the protocol
   guarantees each completed hand-off is seen identically by both sides
   — even across the crash. *)

let pairs = 3
let rounds = 5

let () =
  let heap = Pmem.heap ~name:"handoff" () in
  let threads = 2 * pairs in
  let x = Rexchanger.create heap ~threads in
  (* tasks are positive, ack tokens negative *)
  let sent = ref [] and received = ref [] in
  let pending = Array.make threads None in
  let left = Array.make threads rounds in
  let body i (_ : int) =
    let producer = i < pairs in
    while left.(i) > 0 do
      let round = rounds - left.(i) in
      let offer = if producer then (100 * (i + 1)) + round else -(i + 1) in
      pending.(i) <- Some offer;
      (match Rexchanger.exchange ~spins:100_000 x offer with
      | Some got ->
          if producer then sent := ((100 * (i + 1)) + round, got) :: !sent
          else received := (got, -(i + 1)) :: !received
      | None -> () (* timed out; retry the same round *));
      (match pending.(i) with
      | Some _ ->
          pending.(i) <- None;
          left.(i) <- left.(i) - 1
      | None -> ());
      ignore round
    done
  in
  let recover i (_ : int) =
    match pending.(i) with
    | None -> ()
    | Some offer ->
        (match Rexchanger.recover ~spins:100_000 x offer with
        | Some got ->
            if i < pairs then sent := (offer, got) :: !sent
            else received := (got, offer) :: !received
        | None -> ());
        pending.(i) <- None;
        left.(i) <- left.(i) - 1
  in
  let rng = Random.State.make [| 41 |] in
  let crashes = ref 0 in
  let rec run round bodies =
    match
      Sim.run ~policy:`Random ~seed:round
        ~crash_at:(if !crashes < 3 then 300 + Random.State.int rng 1_500 else -1)
        bodies
    with
    | Sim.All_done ->
        if Array.exists (fun p -> p <> None) pending then
          run (round + 1) (Array.init threads recover)
        else if Array.exists (fun l -> l > 0) left then
          run (round + 1) (Array.init threads body)
        else ()
    | Sim.Crashed_at step ->
        incr crashes;
        Printf.printf "crash #%d at step %d\n" !crashes step;
        Pmem.crash ~rng heap;
        run (round + 1) (Array.init threads recover)
  in
  run 0 (Array.init threads body);

  (* Consistency: every producer-side record (task, ack) must have a
     matching consumer-side record (task, ack), and vice versa. *)
  let norm l = List.sort compare l in
  let tasks_sent = norm (List.filter (fun (t, a) -> t > 0 && a < 0) !sent) in
  let tasks_recv = norm (List.filter (fun (t, a) -> t > 0 && a < 0) !received) in
  Printf.printf "hand-offs completed: %d (crashes: %d)\n"
    (List.length tasks_sent) !crashes;
  if tasks_sent = tasks_recv then
    print_endline "producers and consumers agree on every hand-off"
  else begin
    let pp l = String.concat " "
        (List.map (fun (t, a) -> Printf.sprintf "(%d,%d)" t a) l)
    in
    Printf.printf "MISMATCH!\n  sent:     %s\n  received: %s\n" (pp tasks_sent)
      (pp tasks_recv);
    exit 1
  end
