lib/baselines/capsules.ml: Array Harris Pmem Printf Pstats Sim
