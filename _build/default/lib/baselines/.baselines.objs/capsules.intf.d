lib/baselines/capsules.mli: Pmem
