lib/baselines/harris.ml: Format List Pmem Printf
