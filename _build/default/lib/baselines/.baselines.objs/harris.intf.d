lib/baselines/harris.mli: Pmem
