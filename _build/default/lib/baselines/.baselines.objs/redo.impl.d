lib/baselines/redo.ml: Array Format List Pmem Printf Pstats Pvar Sim
