lib/baselines/redo.mli: Pmem
