lib/baselines/romulus.ml: Array Format List Pmem Printf Pstats Pvar Sim
