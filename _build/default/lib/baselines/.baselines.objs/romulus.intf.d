lib/baselines/romulus.mli: Pmem
