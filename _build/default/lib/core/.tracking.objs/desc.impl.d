lib/core/desc.ml: Format Pmem
