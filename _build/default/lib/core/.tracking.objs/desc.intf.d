lib/core/desc.mli: Format Pmem
