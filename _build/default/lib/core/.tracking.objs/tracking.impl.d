lib/core/tracking.ml: Array Cost Desc List Pmem Pstats Pvar Sim
