lib/core/tracking.mli: Desc Pmem
