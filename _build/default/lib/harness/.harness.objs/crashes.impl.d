lib/harness/crashes.ml: Array List Oracle Pmem Printf Pstats Random Set_intf Sim Workload
