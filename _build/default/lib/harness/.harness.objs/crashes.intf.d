lib/harness/crashes.mli: Set_intf Workload
