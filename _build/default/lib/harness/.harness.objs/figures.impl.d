lib/harness/figures.ml: Float Hashtbl List Printf Pstats Runner Set_intf Workload
