lib/harness/figures.mli: Pstats Set_intf Workload
