lib/harness/linearize.ml: Array Format Hashtbl Int List Set Set_intf
