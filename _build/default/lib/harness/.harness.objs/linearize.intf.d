lib/harness/linearize.mli: Format Set_intf
