lib/harness/oracle.ml: Format Int List Map Option Set Set_intf
