lib/harness/oracle.mli: Format Set_intf
