lib/harness/report.ml: Buffer Figures Filename Format List Out_channel Printf Pstats Set_intf String Sys Workload
