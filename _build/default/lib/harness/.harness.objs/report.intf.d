lib/harness/report.mli: Figures Format Pstats
