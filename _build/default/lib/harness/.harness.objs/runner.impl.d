lib/harness/runner.ml: Array Format Pmem Pstats Random Set_intf Sim Workload
