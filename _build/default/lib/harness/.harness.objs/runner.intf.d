lib/harness/runner.mli: Format Set_intf Workload
