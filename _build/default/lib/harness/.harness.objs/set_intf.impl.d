lib/harness/set_intf.ml: Capsules Format Harris List Pmem Rbst Redo Rhash Rlist Romulus String
