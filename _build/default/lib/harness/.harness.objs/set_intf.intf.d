lib/harness/set_intf.mli: Format Pmem
