lib/harness/workload.ml: Printf Random Set_intf
