lib/harness/workload.mli: Random Set_intf
