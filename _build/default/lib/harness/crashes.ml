type config = {
  factory : Set_intf.factory;
  threads : int;
  ops_per_thread : int;
  workload : Workload.config;
  max_crashes : int;
}

type outcome = {
  completed_ops : int;
  recovered_ops : int;
  crashes : int;
}

let run_once cfg ~seed =
  Pmem.reset_pending ();
  Pstats.set_all_enabled true;
  let rng = Random.State.make [| seed; 0xC2A5 |] in
  let heap = Pmem.heap ~name:cfg.factory.fname () in
  let algo = cfg.factory.make heap ~threads:cfg.threads in
  Workload.prefill rng cfg.workload algo;
  Pmem.reset_pending ();
  let initial = algo.Set_intf.contents () in
  let events = ref [] in
  let recovered = ref 0 in
  let crashes = ref 0 in
  (* The system's durable invocation bookkeeping: the pending operation it
     will re-supply to Op.Recover, and each thread's remaining script. *)
  let pending = Array.make cfg.threads None in
  let remaining =
    Array.init cfg.threads (fun t ->
        let trng = Random.State.make [| seed; t; 0x0F5 |] in
        ref (List.init cfg.ops_per_thread (fun _ -> Workload.gen_op trng cfg.workload)))
  in
  let record op ok =
    events := { Oracle.eop = op; ok } :: !events
  in
  let worker tid (_ : int) =
    let rec go () =
      match !(remaining.(tid)) with
      | [] -> ()
      | op :: rest ->
          pending.(tid) <- Some op;
          let ok = Set_intf.apply algo op in
          record op ok;
          pending.(tid) <- None;
          remaining.(tid) := rest;
          go ()
    in
    go ()
  in
  let recoverer tid (_ : int) =
    match pending.(tid) with
    | None -> ()
    | Some op ->
        let ok = algo.Set_intf.recover op in
        record op ok;
        incr recovered;
        pending.(tid) <- None;
        (match !(remaining.(tid)) with
        | _ :: rest -> remaining.(tid) := rest
        | [] -> ())
  in
  let crash_budget_steps = cfg.threads * cfg.ops_per_thread * 300 in
  (* watchdog: a livelocked structure must fail the campaign, not hang it *)
  let step_limit = max 2_000_000 (crash_budget_steps * 100) in
  let next_crash_at round =
    if !crashes >= cfg.max_crashes then -1
    else 1 + Random.State.int rng (max 2 (crash_budget_steps / (round + 1)))
  in
  let rec rounds round bodies =
    if round > 50 * cfg.max_crashes + 50 then Error "campaign did not converge"
    else
      match
        Sim.run ~policy:`Random
          ~seed:(seed * 31 + round)
          ~crash_at:(next_crash_at round) ~step_limit bodies
      with
      | Sim.All_done ->
          if Array.exists (fun o -> o <> None) pending then
            (* recovery itself crashed: recover again *)
            rounds (round + 1) (Array.init cfg.threads recoverer)
          else if Array.exists (fun r -> !r <> []) remaining then
            rounds (round + 1) (Array.init cfg.threads worker)
          else Ok ()
      | Sim.Crashed_at _ ->
          incr crashes;
          Pmem.crash ~rng heap;
          algo.Set_intf.recover_structure ();
          rounds (round + 1) (Array.init cfg.threads recoverer)
  in
  match rounds 0 (Array.init cfg.threads worker) with
  | Error _ as e -> e
  | exception Pmem.Poisoned what ->
      Error (Printf.sprintf "touched never-persisted data: %s" what)
  | exception Sim.Step_limit ->
      Error "step budget exhausted: livelock or starvation suspected"
  | Ok () -> (
      match algo.Set_intf.check () with
      | Error msg -> Error ("structure invariant: " ^ msg)
      | Ok () -> (
          let final = algo.Set_intf.contents () in
          match Oracle.check ~initial ~final (List.rev !events) with
          | Error msg -> Error ("oracle: " ^ msg)
          | Ok () ->
              Ok
                {
                  completed_ops = List.length !events;
                  recovered_ops = !recovered;
                  crashes = !crashes;
                }))

let run_campaign cfg ~seeds =
  let rec go acc n = function
    | [] -> Ok (n, acc)
    | seed :: rest -> (
        match run_once cfg ~seed with
        | Error msg -> Error (Printf.sprintf "seed %d: %s" seed msg)
        | Ok o ->
            go
              {
                completed_ops = acc.completed_ops + o.completed_ops;
                recovered_ops = acc.recovered_ops + o.recovered_ops;
                crashes = acc.crashes + o.crashes;
              }
              (n + 1) rest)
  in
  go { completed_ops = 0; recovered_ops = 0; crashes = 0 } 0 seeds
