(** Crash-injection campaigns with detectability checking.

    Each run executes a seeded random workload under the adversarial
    (random) scheduler, crashes the system at a random step, resolves
    outstanding write-backs adversarially, performs structure recovery,
    then invokes every interrupted thread's recovery function with its
    pending operation — exactly the paper's model, where the system
    re-invokes [Op.Recover] with the original arguments (§2).  Multiple
    crashes may hit the same run, including during recovery.

    The run passes iff no poisoned (never-persisted) data is touched, the
    structure's invariants hold, and the full set of responses — completed
    plus recovered — satisfies the per-key oracle. *)

type config = {
  factory : Set_intf.factory;
  threads : int;
  ops_per_thread : int;
  workload : Workload.config;
  max_crashes : int;  (** how many crashes a single run may suffer *)
}

type outcome = {
  completed_ops : int;
  recovered_ops : int;  (** ops whose response came from recovery *)
  crashes : int;
}

val run_once : config -> seed:int -> (outcome, string) result
(** One seeded run; [Error] describes the first detected violation. *)

val run_campaign : config -> seeds:int list -> (int * outcome, string) result
(** All seeds; returns the run count and accumulated outcome, or the
    seed's error message prefixed with the seed. *)
