type entry = {
  op : Set_intf.op;
  ok : bool;
  inv : int;
  res : int;
}

let pp_entry ppf e =
  Format.fprintf ppf "[%d,%d] %a = %b" e.inv e.res Set_intf.pp_op e.op e.ok

module IS = Set.Make (Int)

(* Does executing [e] in [state] produce [e.ok]?  If so, the next state. *)
let apply state e =
  match e.op with
  | Set_intf.Ins k ->
      let present = IS.mem k state in
      if e.ok = not present then Some (IS.add k state) else None
  | Set_intf.Del k ->
      let present = IS.mem k state in
      if e.ok = present then Some (IS.remove k state) else None
  | Set_intf.Fnd k -> if e.ok = IS.mem k state then Some state else None

let check ?(initial = []) entries =
  List.iter
    (fun e -> if e.res < e.inv then invalid_arg "Linearize: res < inv")
    entries;
  let n = List.length entries in
  if n > 20 then invalid_arg "Linearize.check: history too large";
  let arr = Array.of_list entries in
  (* memoize failed (chosen-set, state) configurations *)
  let seen = Hashtbl.create 1024 in
  let rec search chosen state =
    if chosen = (1 lsl n) - 1 then true
    else begin
      let key = (chosen, IS.elements state) in
      if Hashtbl.mem seen key then false
      else begin
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let idx = !i in
          incr i;
          if chosen land (1 lsl idx) = 0 then begin
            (* real-time minimality: no other unchosen entry responded
               before this one's invocation *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if
                j <> idx
                && chosen land (1 lsl j) = 0
                && arr.(j).res < arr.(idx).inv
              then minimal := false
            done;
            if !minimal then
              match apply state arr.(idx) with
              | Some state' ->
                  if search (chosen lor (1 lsl idx)) state' then ok := true
              | None -> ()
          end
        done;
        if not !ok then Hashtbl.add seen key ();
        !ok
      end
    end
  in
  search 0 (IS.of_list initial)
