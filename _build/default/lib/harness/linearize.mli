(** Exhaustive linearizability checking for small set histories
    (Wing–Gong style search).

    The per-key oracle ({!Oracle}) is sound for per-key alternation but
    ignores cross-key real-time ordering; this checker handles the full
    property, at exponential cost, so it is used on small histories
    (roughly up to a dozen concurrent operations). *)

type entry = {
  op : Set_intf.op;
  ok : bool;
  inv : int;  (** timestamp of invocation (e.g. simulator step count) *)
  res : int;  (** timestamp of response; must be >= [inv] *)
}

val check : ?initial:int list -> entry list -> bool
(** Is there a total order of the entries, consistent with real time
    (if [e1.res < e2.inv] then [e1] before [e2]), under which every
    response is correct for a sequential set starting from [initial]? *)

val pp_entry : Format.formatter -> entry -> unit
