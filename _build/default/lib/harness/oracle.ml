type event = { eop : Set_intf.op; ok : bool }

let pp_event ppf e =
  Format.fprintf ppf "%a = %b" Set_intf.pp_op e.eop e.ok

module IM = Map.Make (Int)
module IS = Set.Make (Int)

type tally = {
  si : int;  (* successful inserts *)
  sd : int;  (* successful deletes *)
  fi : int;  (* failed inserts *)
  fd : int;  (* failed deletes *)
  finds_true : int;
  finds_false : int;
}

let zero = { si = 0; sd = 0; fi = 0; fd = 0; finds_true = 0; finds_false = 0 }

let tally_of_events events =
  List.fold_left
    (fun m e ->
      let k = Set_intf.op_key e.eop in
      let t = Option.value (IM.find_opt k m) ~default:zero in
      let t =
        match (e.eop, e.ok) with
        | Set_intf.Ins _, true -> { t with si = t.si + 1 }
        | Set_intf.Ins _, false -> { t with fi = t.fi + 1 }
        | Set_intf.Del _, true -> { t with sd = t.sd + 1 }
        | Set_intf.Del _, false -> { t with fd = t.fd + 1 }
        | Set_intf.Fnd _, true -> { t with finds_true = t.finds_true + 1 }
        | Set_intf.Fnd _, false -> { t with finds_false = t.finds_false + 1 }
      in
      IM.add k t m)
    IM.empty events

let check ~initial ~final events =
  let init = IS.of_list initial in
  let fin = IS.of_list final in
  let tallies = tally_of_events events in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let keys =
    IS.union (IS.union init fin)
      (IM.fold (fun k _ acc -> IS.add k acc) tallies IS.empty)
  in
  IS.fold
    (fun k acc ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
          let t = Option.value (IM.find_opt k tallies) ~default:zero in
          let i0 = IS.mem k init and f0 = IS.mem k fin in
          let net = t.si - t.sd in
          let expected_net = (if f0 then 1 else 0) - if i0 then 1 else 0 in
          if net <> expected_net then
            err
              "key %d: net successful inserts %d (si=%d sd=%d) but presence \
               went %b -> %b"
              k net t.si t.sd i0 f0
          else if (not i0) && (net < 0 || net > 1) then
            err "key %d: impossible alternation from absent (si=%d sd=%d)" k
              t.si t.sd
          else if i0 && (net > 0 || net < -1) then
            err "key %d: impossible alternation from present (si=%d sd=%d)" k
              t.si t.sd
          else if t.fi > 0 && (not i0) && t.si = 0 then
            err "key %d: failed insert but the key was never present" k
          else if t.fd > 0 && i0 && t.sd = 0 then
            err "key %d: failed delete but the key was never absent" k
          else if t.si = 0 && t.sd = 0 && i0 && t.finds_false > 0 then
            err "key %d: find returned false but key was present throughout" k
          else if t.si = 0 && t.sd = 0 && (not i0) && t.finds_true > 0 then
            err "key %d: find returned true but key was absent throughout" k
          else Ok ())
    keys (Ok ())
