(** Workload generation matching the paper's benchmarks (§5): keys chosen
    uniformly at random from [\[1, key_range\]]; the list prefilled with
    [prefill_n] random inserts (250 for range 500 gives the ~40%-full
    list); read-intensive = 70% finds, update-intensive = 30% finds, the
    remainder split evenly between inserts and deletes. *)

type mix = { name : string; find_pct : int }

val read_intensive : mix
val update_intensive : mix
val mix_of_find_pct : int -> mix

type config = {
  mix : mix;
  key_range : int;  (** keys drawn uniformly from [1, key_range] *)
  prefill_n : int;
}

val default : mix -> config
(** key_range 500, prefill 250, as in the paper's main figures. *)

val gen_op : Random.State.t -> config -> Set_intf.op

val prefill : Random.State.t -> config -> Set_intf.t -> unit
(** Perform [prefill_n] random inserts (duplicates allowed, as in the
    paper, so the list ends up ~40% full). *)
