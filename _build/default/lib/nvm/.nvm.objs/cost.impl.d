lib/nvm/cost.ml: Fun
