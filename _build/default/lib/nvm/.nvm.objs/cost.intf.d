lib/nvm/cost.mli:
