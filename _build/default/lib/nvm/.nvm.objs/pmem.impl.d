lib/nvm/pmem.ml: Array Cost Float List Printf Pstats Queue Random Sim
