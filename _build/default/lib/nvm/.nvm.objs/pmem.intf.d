lib/nvm/pmem.mli: Pstats Random
