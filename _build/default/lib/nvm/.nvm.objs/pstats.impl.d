lib/nvm/pstats.ml: Format Hashtbl List Printf
