lib/nvm/pstats.mli: Format
