lib/nvm/pvar.ml: Array Pmem Printf Pstats
