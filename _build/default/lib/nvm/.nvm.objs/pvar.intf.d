lib/nvm/pvar.mli: Pmem
