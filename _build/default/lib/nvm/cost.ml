type t = {
  mutable cache_hit : float;
  mutable cache_miss : float;
  mutable write_hit : float;
  mutable write_miss : float;
  mutable cas_base : float;
  mutable cas_contended : float;
  mutable pwb_issue : float;
  mutable pwb_accept : float;
  mutable pwb_latency : float;
  mutable pwb_steal : float;
  mutable pwb_shared : float;
  mutable pwb_inflight_stall : float;
  mutable pfence_base : float;
  mutable psync_base : float;
  mutable alloc : float;
  mutable op_overhead : float;
  mutable cas_drains_wb : bool;
}

(* Calibrated against published Optane DCPMM microbenchmarks: DRAM-class
   cache behaviour, ~100-300ns flush-to-media, locked instructions an
   order of magnitude above an L1 hit.  Only ratios matter for the shapes
   we reproduce. *)
let defaults () =
  {
    cache_hit = 1.5;
    cache_miss = 42.0;
    write_hit = 2.0;
    write_miss = 55.0;
    cas_base = 18.0;
    cas_contended = 85.0;
    pwb_issue = 14.0;
    pwb_accept = 35.0;
    pwb_latency = 170.0;
    pwb_steal = 1600.0;
    pwb_shared = 70.0;
    pwb_inflight_stall = 300.0;
    pfence_base = 4.0;
    psync_base = 7.0;
    alloc = 9.0;
    op_overhead = 25.0;
    cas_drains_wb = true;
  }

let current = defaults ()

let assign dst src =
  dst.cache_hit <- src.cache_hit;
  dst.cache_miss <- src.cache_miss;
  dst.write_hit <- src.write_hit;
  dst.write_miss <- src.write_miss;
  dst.cas_base <- src.cas_base;
  dst.cas_contended <- src.cas_contended;
  dst.pwb_issue <- src.pwb_issue;
  dst.pwb_accept <- src.pwb_accept;
  dst.pwb_latency <- src.pwb_latency;
  dst.pwb_steal <- src.pwb_steal;
  dst.pwb_shared <- src.pwb_shared;
  dst.pwb_inflight_stall <- src.pwb_inflight_stall;
  dst.pfence_base <- src.pfence_base;
  dst.psync_base <- src.psync_base;
  dst.alloc <- src.alloc;
  dst.op_overhead <- src.op_overhead;
  dst.cas_drains_wb <- src.cas_drains_wb

let restore_defaults () = assign current (defaults ())

let with_table tweak f =
  let saved = { current with cache_hit = current.cache_hit } in
  let table = defaults () in
  tweak table;
  assign current table;
  Fun.protect ~finally:(fun () -> assign current saved) f
