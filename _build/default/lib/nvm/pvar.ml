type 'a t = 'a Pmem.t array

let init_site = Pstats.make Pwb "pvar.init"
let init_sync = Pstats.make Psync "pvar.init.psync"

let make ?(name = "pvar") h ~threads v =
  if threads < 1 || threads > Pmem.max_threads then
    invalid_arg "Pvar.make: thread count out of range";
  let cells =
    Array.init threads (fun i ->
        Pmem.alloc ~name:(Printf.sprintf "%s[%d]" name i) h v)
  in
  (* System-installed state exists durably before any operation starts. *)
  Array.iter (fun c -> Pmem.pwb_f init_site c) cells;
  Pmem.psync init_sync;
  cells

let cell t i = t.(i)
let threads t = Array.length t
