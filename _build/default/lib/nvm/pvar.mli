(** Per-thread private persistent variables, such as the check-point
    [CP_q] and recovery-data [RD_q] variables of the paper (§2–3).  Each
    thread's variable lives on its own cache line, so flushing it is the
    cheap, uncontended kind of pwb the paper classifies as low-impact. *)

type 'a t

val make : ?name:string -> Pmem.heap -> threads:int -> 'a -> 'a t
(** One private persistent cell per thread, all initialized (volatilely)
    to the given value and immediately flushed, since the system is
    assumed to install them before any operation runs. *)

val cell : 'a t -> int -> 'a Pmem.t
(** The calling thread passes its own id; accessing another thread's cell
    is allowed (recovery inspection) but pays coherence costs. *)

val threads : 'a t -> int
