lib/structures/rbst.ml: Array Desc Format Int List Pmem Pstats Sim Tracking
