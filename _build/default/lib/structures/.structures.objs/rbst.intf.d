lib/structures/rbst.mli: Pmem
