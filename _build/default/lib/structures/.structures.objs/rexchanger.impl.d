lib/structures/rexchanger.ml: Array Pmem Pstats Pvar Sim
