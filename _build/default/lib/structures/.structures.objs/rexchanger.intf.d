lib/structures/rexchanger.mli: Pmem
