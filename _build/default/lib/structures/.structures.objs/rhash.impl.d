lib/structures/rhash.ml: Array Hashtbl List Rlist
