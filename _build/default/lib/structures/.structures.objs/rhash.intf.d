lib/structures/rhash.mli: Hashtbl Pmem Rlist
