lib/structures/rlist.ml: Array Desc Format Int List Pmem Pstats Sim Tracking
