lib/structures/rlist.mli: Pmem
