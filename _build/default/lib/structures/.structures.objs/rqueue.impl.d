lib/structures/rqueue.ml: Array Desc Format List Pmem Pstats Sim Tracking
