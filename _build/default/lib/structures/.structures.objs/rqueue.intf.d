lib/structures/rqueue.mli: Pmem
