lib/structures/rstack.ml: Array Buffer Desc Format List Pmem Printf Pstats Sim Tracking
