lib/structures/rstack.mli: Pmem
