test/main.mli:
