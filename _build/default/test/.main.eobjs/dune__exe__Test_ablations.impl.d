test/test_ablations.ml: Alcotest Array Cost Pmem Printf Pstats Random Rlist Runner Set Set_intf Sim Stdlib Workload
