test/test_baselines.ml: Alcotest Array Capsules List Oracle Pmem Random Redo Romulus Set Set_intf Sim Stdlib
