test/test_crash_sweeps.ml: Alcotest Array List Oracle Pmem Random Rbst Rhash Rlist Rqueue Rstack Set_intf Sim
