test/test_crashes.ml: Alcotest Crashes Fun List Pmem Random Rlist Set_intf Sim Workload
