test/test_harness.ml: Alcotest Cost Figures Int Linearize List Oracle Pmem Printf Pstats QCheck2 QCheck_alcotest Random Report Runner Set Set_intf Workload
