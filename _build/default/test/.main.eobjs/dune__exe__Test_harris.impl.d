test/test_harris.ml: Alcotest Array Harris List Pmem Sim
