test/test_linearize.ml: Alcotest Array Format Linearize List Pmem Random Rbst Rlist Set_intf Sim
