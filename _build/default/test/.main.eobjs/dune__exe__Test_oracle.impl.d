test/test_oracle.ml: Alcotest Oracle Set_intf
