test/test_pmem.ml: Alcotest Array Cost List Pmem Pstats QCheck2 QCheck_alcotest Random
