test/test_rbst.ml: Alcotest Array List Pmem Printf QCheck2 QCheck_alcotest Random Rbst Set Sim Stdlib
