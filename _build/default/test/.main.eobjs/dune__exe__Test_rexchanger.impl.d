test/test_rexchanger.ml: Alcotest Array List Pmem Printf Random Rexchanger Sim
