test/test_rhash.ml: Alcotest Array Crashes Fun Hashtbl List Pmem Random Rhash Set Set_intf Sim Stdlib String Workload
