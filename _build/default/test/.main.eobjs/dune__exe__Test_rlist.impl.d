test/test_rlist.ml: Alcotest Array List Pmem Printf QCheck2 QCheck_alcotest Random Rlist Set Sim Stdlib
