test/test_rqueue.ml: Alcotest Array Hashtbl List Pmem Printf QCheck2 QCheck_alcotest Queue Random Rqueue Sim
