test/test_rstack.ml: Alcotest Array List Pmem Printf QCheck2 QCheck_alcotest Random Rstack Sim Stack
