test/test_sim.ml: Alcotest Array Fun List Printf Sim
