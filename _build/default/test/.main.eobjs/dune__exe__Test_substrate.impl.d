test/test_substrate.ml: Alcotest Cost Desc List Pmem Pstats Pvar
