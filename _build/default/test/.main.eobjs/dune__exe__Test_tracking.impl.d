test/test_tracking.ml: Alcotest Array Desc List Pmem Printf Pstats Random Sim Tracking
