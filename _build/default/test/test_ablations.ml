(* Ablations: the design choices DESIGN.md calls out must be observable
   and must not break correctness when toggled. *)

module IS = Set.Make (Stdlib.Int)

(* The list without the read-only optimization is still a correct set. *)
let test_no_ro_opt_sequential () =
  let module L = Rlist.Int in
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let t = L.create ~prefix:"rlist-noopt" ~read_only_opt:false heap ~threads:4 in
  let rng = Random.State.make [| 9 |] in
  let model = ref IS.empty in
  for _ = 1 to 300 do
    let k = Random.State.int rng 20 in
    match Random.State.int rng 3 with
    | 0 ->
        let e = not (IS.mem k !model) in
        model := IS.add k !model;
        Alcotest.(check bool) "insert" e (L.insert t k)
    | 1 ->
        let e = IS.mem k !model in
        model := IS.remove k !model;
        Alcotest.(check bool) "delete" e (L.delete t k)
    | _ -> Alcotest.(check bool) "find" (IS.mem k !model) (L.find t k)
  done;
  Alcotest.(check (list int)) "final" (IS.elements !model) (L.to_list t)

let test_no_ro_opt_concurrent_and_crash () =
  let module L = Rlist.Int in
  for seed = 0 to 19 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t =
      L.create ~prefix:"rlist-noopt" ~read_only_opt:false heap ~threads:3
    in
    ignore (L.insert t 5);
    let pending = Array.make 3 None in
    let ok_log = ref [] in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid |] in
      for _ = 1 to 6 do
        let k = Random.State.int rng 8 in
        let op =
          match Random.State.int rng 3 with
          | 0 -> L.Insert k
          | 1 -> L.Delete k
          | _ -> L.Find k
        in
        pending.(tid) <- Some op;
        let ok = L.apply t op in
        ok_log := (op, ok) :: !ok_log;
        pending.(tid) <- None
      done
    in
    (match
       Sim.run ~policy:`Random ~seed ~crash_at:(200 + (seed * 37))
         (Array.init 3 body)
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ ->
        Pmem.crash ~rng:(Random.State.make [| seed |]) heap;
        ignore
          (Sim.run ~seed:(seed + 1)
             (Array.init 3 (fun tid (_ : int) ->
                  match pending.(tid) with
                  | None -> ()
                  | Some op ->
                      let ok = L.recover t op in
                      ok_log := (op, ok) :: !ok_log;
                      pending.(tid) <- None))
            : Sim.outcome));
    match L.check_invariants t with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: %s" seed m
  done

(* The optimization must actually pay: read-intensive throughput with the
   optimization exceeds the unoptimized variant. *)
let test_ro_opt_pays () =
  let module L = Rlist.Int in
  let run ro =
    Pmem.reset_pending ();
    Pstats.set_all_enabled true;
    let heap = Pmem.heap ~track_for_crash:false () in
    let t =
      L.create
        ~prefix:(if ro then "rlist" else "rlist-noopt")
        ~read_only_opt:ro heap ~threads:8
    in
    for k = 1 to 100 do
      if k mod 2 = 0 then ignore (L.insert t k)
    done;
    Pmem.reset_pending ();
    Pstats.reset ();
    let ops = ref 0 in
    let body (_ : int) =
      let rng = Random.State.make [| 4; Sim.tid () |] in
      while Sim.now () < 120_000. do
        let k = 1 + Random.State.int rng 100 in
        ignore (L.find t k : bool);
        incr ops
      done
    in
    (match Sim.run ~policy:`Perf (Array.make 8 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    !ops
  in
  let with_opt = run true and without_opt = run false in
  Alcotest.(check bool)
    (Printf.sprintf "optimized finds faster (%d vs %d ops)" with_opt
       without_opt)
    true
    (float_of_int with_opt > 1.2 *. float_of_int without_opt)

(* Disabling the Intel CAS-drain must make psync removal matter more. *)
let test_cas_drain_matters () =
  let wl = Workload.default Workload.update_intensive in
  let ratio drains =
    Cost.with_table
      (fun c -> c.Cost.cas_drains_wb <- drains)
      (fun () ->
        let full =
          Runner.measure ~duration_ns:80_000. ~seed:5 Set_intf.tracking
            ~threads:8 wl
        in
        let nosync =
          Runner.measure ~duration_ns:80_000. ~seed:5
            ~prepare:(fun () ->
              Pstats.set_kind_enabled Pstats.Psync false;
              Pstats.set_kind_enabled Pstats.Pfence false)
            Set_intf.tracking ~threads:8 wl
        in
        Pstats.set_all_enabled true;
        nosync.Runner.throughput_mops /. full.Runner.throughput_mops)
  in
  let with_drain = ratio true in
  Alcotest.(check bool)
    (Printf.sprintf "drain makes psyncs nearly free (ratio %.3f)" with_drain)
    true (with_drain < 1.12)

(* Steal penalty drives the crossover: without it, Capsules-Opt keeps its
   single-thread advantage at scale. *)
let test_steal_penalty_drives_crossover () =
  let wl = Workload.default Workload.update_intensive in
  let gap steal =
    Cost.with_table
      (fun c -> c.Cost.pwb_steal <- steal)
      (fun () ->
        let trk =
          Runner.measure ~duration_ns:80_000. Set_intf.tracking ~threads:16 wl
        in
        let cap =
          Runner.measure ~duration_ns:80_000. Set_intf.capsules_opt
            ~threads:16 wl
        in
        trk.Runner.throughput_mops /. cap.Runner.throughput_mops)
  in
  let cheap = gap 20. and expensive = gap 1600. in
  Alcotest.(check bool)
    (Printf.sprintf "steal favours tracking (%.2f -> %.2f)" cheap expensive)
    true
    (expensive > cheap +. 0.15)

let suite =
  [
    Alcotest.test_case "no-read-only-opt: sequential model" `Quick
      test_no_ro_opt_sequential;
    Alcotest.test_case "no-read-only-opt: concurrent + crash" `Quick
      test_no_ro_opt_concurrent_and_crash;
    Alcotest.test_case "read-only optimization pays" `Quick test_ro_opt_pays;
    Alcotest.test_case "CAS drain makes psyncs cheap" `Quick
      test_cas_drain_matters;
    Alcotest.test_case "steal penalty drives the crossover" `Quick
      test_steal_penalty_drives_crossover;
  ]
