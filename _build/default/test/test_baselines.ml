(* Baseline implementations: Harris list, both Capsules variants,
   Romulus, RedoOpt — sequential semantics and concurrent consistency. *)

module IS = Set.Make (Stdlib.Int)

let fresh_algo (f : Set_intf.factory) threads =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:f.Set_intf.fname () in
  f.Set_intf.make heap ~threads

let all_factories =
  Set_intf.
    [ harris_volatile; capsules; capsules_opt; romulus; redo; tracking ]

(* Every implementation must agree with the Set model sequentially. *)
let test_sequential_model () =
  List.iter
    (fun f ->
      let algo = fresh_algo f 4 in
      let rng = Random.State.make [| 17 |] in
      let model = ref IS.empty in
      for _ = 1 to 400 do
        let k = Random.State.int rng 30 in
        match Random.State.int rng 3 with
        | 0 ->
            let expected = not (IS.mem k !model) in
            model := IS.add k !model;
            if algo.Set_intf.insert k <> expected then
              Alcotest.failf "%s: insert(%d) wrong" f.Set_intf.fname k
        | 1 ->
            let expected = IS.mem k !model in
            model := IS.remove k !model;
            if algo.Set_intf.delete k <> expected then
              Alcotest.failf "%s: delete(%d) wrong" f.Set_intf.fname k
        | _ ->
            if algo.Set_intf.find k <> IS.mem k !model then
              Alcotest.failf "%s: find(%d) wrong" f.Set_intf.fname k
      done;
      Alcotest.(check (list int))
        (f.Set_intf.fname ^ " final")
        (IS.elements !model)
        (algo.Set_intf.contents ());
      match algo.Set_intf.check () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" f.Set_intf.fname m)
    all_factories

(* Concurrent per-key consistency under the adversarial scheduler. *)
let test_concurrent_per_key () =
  List.iter
    (fun f ->
      for seed = 0 to 7 do
        let algo = fresh_algo f 4 in
        let initial = algo.Set_intf.contents () in
        let events = Array.make 4 [] in
        let body tid (_ : int) =
          let rng = Random.State.make [| seed; tid; 21 |] in
          for _ = 1 to 20 do
            let k = Random.State.int rng 10 in
            let op =
              match Random.State.int rng 3 with
              | 0 -> Set_intf.Ins k
              | 1 -> Set_intf.Del k
              | _ -> Set_intf.Fnd k
            in
            let ok = Set_intf.apply algo op in
            events.(tid) <- { Oracle.eop = op; ok } :: events.(tid)
          done
        in
        (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
        let evs = List.concat_map Array.to_list [ events ] |> List.concat in
        (match
           Oracle.check ~initial ~final:(algo.Set_intf.contents ()) evs
         with
        | Ok () -> ()
        | Error m ->
            Alcotest.failf "%s seed %d: %s" f.Set_intf.fname seed m);
        match algo.Set_intf.check () with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: %s" f.Set_intf.fname m
      done)
    all_factories

(* Romulus: the two copies must agree when idle, and readers never block
   updaters permanently. *)
let test_romulus_twins () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let r = Romulus.create heap ~threads:2 in
  List.iter (fun k -> ignore (Romulus.insert r k)) [ 5; 1; 9 ];
  ignore (Romulus.delete r 1);
  Alcotest.(check (list int)) "contents" [ 5; 9 ] (Romulus.to_list r);
  match Romulus.check_invariants r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Redo: log replay after a crash must reconstruct the volatile state
   that was never flushed directly. *)
let test_redo_replay () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let r = Redo.create ~checkpoint_every:1000 heap ~threads:2 in
  List.iter (fun k -> ignore (Redo.insert r k)) [ 4; 2; 7; 9 ];
  ignore (Redo.delete r 7);
  Pmem.crash heap;
  Redo.recover_structure r;
  Alcotest.(check (list int)) "replayed" [ 2; 4; 9 ] (Redo.to_list r)

(* Capsules recoverable CAS: the (writer, seq) identity distinguishes
   whose mark landed. *)
let test_capsules_mark_identity () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let c = Capsules.create ~variant:`Opt heap ~threads:2 in
  ignore (Capsules.insert c 5);
  ignore (Capsules.delete c 5);
  Alcotest.(check (list int)) "deleted" [] (Capsules.to_list c);
  (* recover with a mismatching op re-invokes rather than replays *)
  ignore
    (Sim.run
       [|
         (fun _ ->
           Alcotest.(check bool)
             "recover of a different op re-invokes" true
             (Capsules.recover c (Capsules.Ins 6)));
       |]
      : Sim.outcome);
  Alcotest.(check (list int)) "6 inserted" [ 6 ] (Capsules.to_list c)

(* Exhaustive crash-point sweeps through Romulus's commit protocol and
   Redo's combine/replay: crash a single update at every step, run
   structure recovery, and demand the recovered response match the
   durable state. *)
let test_romulus_crash_sweep () =
  for crash_at = 1 to 250 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let r = Romulus.create heap ~threads:1 in
    ignore (Romulus.insert r 5);
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun (_ : int) -> ignore (Romulus.insert r 9 : bool)) |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ ->
        Pmem.crash ~rng:(Random.State.make [| crash_at |]) heap;
        Romulus.recover_structure r;
        let resp = ref false in
        (match
           Sim.run [| (fun (_ : int) -> resp := Romulus.recover r (Romulus.Ins 9)) |]
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "crash in recovery");
        if not !resp then
          Alcotest.failf "crash_at=%d: recovered insert said false" crash_at;
        if Romulus.to_list r <> [ 5; 9 ] then
          Alcotest.failf "crash_at=%d: bad durable contents" crash_at;
        (match Romulus.check_invariants r with
        | Ok () -> ()
        | Error m -> Alcotest.failf "crash_at=%d: %s" crash_at m))
  done

let test_redo_crash_sweep () =
  for crash_at = 1 to 250 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let r = Redo.create ~checkpoint_every:2 heap ~threads:1 in
    ignore (Redo.insert r 5);
    ignore (Redo.insert r 1);
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun (_ : int) -> ignore (Redo.delete r 5 : bool)) |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ ->
        Pmem.crash ~rng:(Random.State.make [| crash_at |]) heap;
        Redo.recover_structure r;
        let resp = ref false in
        (match
           Sim.run [| (fun (_ : int) -> resp := Redo.recover r (Redo.Del 5)) |]
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "crash in recovery");
        if not !resp then
          Alcotest.failf "crash_at=%d: recovered delete said false" crash_at;
        if Redo.to_list r <> [ 1 ] then
          Alcotest.failf "crash_at=%d: bad durable contents" crash_at)
  done

let test_capsules_crash_sweep () =
  List.iter
    (fun variant ->
      for crash_at = 1 to 250 do
        Pmem.reset_pending ();
        let heap = Pmem.heap () in
        let c = Capsules.create ~variant heap ~threads:1 in
        ignore (Capsules.insert c 5);
        (match
           Sim.run ~policy:`Random ~seed:crash_at ~crash_at
             [| (fun (_ : int) -> ignore (Capsules.delete c 5 : bool)) |]
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ ->
            Pmem.crash ~rng:(Random.State.make [| crash_at |]) heap;
            let resp = ref false in
            (match
               Sim.run
                 [| (fun (_ : int) -> resp := Capsules.recover c (Capsules.Del 5)) |]
             with
            | Sim.All_done -> ()
            | Sim.Crashed_at _ -> Alcotest.fail "crash in recovery");
            if not !resp then
              Alcotest.failf "crash_at=%d: recovered delete said false" crash_at;
            if Capsules.to_list c <> [] then
              Alcotest.failf "crash_at=%d: key survived its delete" crash_at)
      done)
    [ `General; `Opt ]

let suite =
  [
    Alcotest.test_case "sequential model agreement (all)" `Quick
      test_sequential_model;
    Alcotest.test_case "concurrent per-key consistency (all)" `Quick
      test_concurrent_per_key;
    Alcotest.test_case "romulus twin copies agree" `Quick test_romulus_twins;
    Alcotest.test_case "redo log replay" `Quick test_redo_replay;
    Alcotest.test_case "capsules mark identity" `Quick
      test_capsules_mark_identity;
    Alcotest.test_case "romulus, every crash point" `Quick
      test_romulus_crash_sweep;
    Alcotest.test_case "redo, every crash point" `Quick test_redo_crash_sweep;
    Alcotest.test_case "capsules, every crash point (both variants)" `Quick
      test_capsules_crash_sweep;
  ]
