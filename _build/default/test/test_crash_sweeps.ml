(* Exhaustive crash-point sweeps: crash a single operation at EVERY
   simulator step and recover, for each structure.  Complements the
   randomized campaigns with full coverage of the small cases. *)

let sweep_single ~max_step ~setup ~run ~recover_and_check =
  for crash_at = 1 to max_step do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let st = setup heap in
    let outcome =
      Sim.run ~policy:`Random ~seed:crash_at ~crash_at
        [| (fun (_ : int) -> run st) |]
    in
    match outcome with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ ->
        Pmem.crash ~rng:(Random.State.make [| crash_at; 5 |]) heap;
        (match
           Sim.run [| (fun (_ : int) -> recover_and_check crash_at st) |]
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "crash during recovery")
  done

(* -- BST ---------------------------------------------------------------- *)
module T = Rbst.Int

let test_bst_insert_sweep () =
  sweep_single ~max_step:400
    ~setup:(fun heap ->
      let t = T.create heap ~threads:1 in
      ignore (T.insert t 5);
      ignore (T.insert t 9);
      t)
    ~run:(fun t -> ignore (T.insert t 7 : bool))
    ~recover_and_check:(fun crash_at t ->
      if not (T.recover t (T.Insert 7)) then
        Alcotest.failf "crash_at=%d: recovered insert said false" crash_at;
      if not (T.mem_volatile t 7) then
        Alcotest.failf "crash_at=%d: 7 not durable" crash_at;
      match T.check_invariants t with
      | Ok () -> ()
      | Error m -> Alcotest.failf "crash_at=%d: %s" crash_at m)

let test_bst_delete_sweep () =
  sweep_single ~max_step:400
    ~setup:(fun heap ->
      let t = T.create heap ~threads:1 in
      ignore (T.insert t 5);
      ignore (T.insert t 9);
      ignore (T.insert t 7);
      t)
    ~run:(fun t -> ignore (T.delete t 7 : bool))
    ~recover_and_check:(fun crash_at t ->
      if not (T.recover t (T.Delete 7)) then
        Alcotest.failf "crash_at=%d: recovered delete said false" crash_at;
      if T.mem_volatile t 7 then
        Alcotest.failf "crash_at=%d: 7 still durable" crash_at;
      match T.check_invariants t with
      | Ok () -> ()
      | Error m -> Alcotest.failf "crash_at=%d: %s" crash_at m)

(* -- queue ---------------------------------------------------------------- *)

let test_queue_sweep () =
  sweep_single ~max_step:350
    ~setup:(fun heap ->
      let q = Rqueue.create heap ~threads:1 in
      Rqueue.enqueue q 1;
      Rqueue.enqueue q 2;
      q)
    ~run:(fun q -> ignore (Rqueue.dequeue q : int option))
    ~recover_and_check:(fun crash_at q ->
      (match Rqueue.recover q Rqueue.Dequeue with
      | Some 1 -> ()
      | Some v -> Alcotest.failf "crash_at=%d: dequeued %d, wanted 1" crash_at v
      | None -> Alcotest.failf "crash_at=%d: dequeue lost" crash_at);
      if Rqueue.to_list q <> [ 2 ] then
        Alcotest.failf "crash_at=%d: bad remainder" crash_at;
      match Rqueue.check_invariants q with
      | Ok () -> ()
      | Error m -> Alcotest.failf "crash_at=%d: %s" crash_at m)

(* -- stack ---------------------------------------------------------------- *)

let test_stack_sweep () =
  sweep_single ~max_step:350
    ~setup:(fun heap ->
      let s = Rstack.create heap ~threads:1 in
      Rstack.push s 1;
      Rstack.push s 2;
      s)
    ~run:(fun s -> ignore (Rstack.pop s : int option))
    ~recover_and_check:(fun crash_at s ->
      (match Rstack.recover s Rstack.Pop with
      | Some 2 -> ()
      | Some v -> Alcotest.failf "crash_at=%d: popped %d, wanted 2" crash_at v
      | None -> Alcotest.failf "crash_at=%d: pop lost" crash_at);
      if Rstack.to_list s <> [ 1 ] then
        Alcotest.failf "crash_at=%d: bad remainder" crash_at;
      match Rstack.check_invariants s with
      | Ok () -> ()
      | Error m -> Alcotest.failf "crash_at=%d: %s" crash_at m)

(* -- hash map -------------------------------------------------------------- *)
module H = Rhash.Int

let test_hash_sweep () =
  sweep_single ~max_step:350
    ~setup:(fun heap ->
      let h = H.create ~buckets:4 heap ~threads:1 in
      ignore (H.insert h 3);
      h)
    ~run:(fun h -> ignore (H.insert h 7 : bool))
    ~recover_and_check:(fun crash_at h ->
      if not (H.recover h (H.Insert 7)) then
        Alcotest.failf "crash_at=%d: recovered insert said false" crash_at;
      if List.sort compare (H.to_list h) <> [ 3; 7 ] then
        Alcotest.failf "crash_at=%d: bad contents" crash_at)

(* -- two contending threads, crash at every (sampled) step ---------------- *)
module L = Rlist.Int

let test_two_thread_sweep () =
  let max_step = 900 in
  let step = ref 1 in
  while !step <= max_step do
    let crash_at = !step in
    step := !step + 3;
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = L.create heap ~threads:2 in
    ignore (L.insert t 10);
    let pending = Array.make 2 None in
    let responses = ref [] in
    let ops =
      [| [ L.Insert 5; L.Delete 10 ]; [ L.Insert 10; L.Delete 5 ] |]
    in
    let remaining = Array.map ref ops in
    let body tid (_ : int) =
      let rec go () =
        match !(remaining.(tid)) with
        | [] -> ()
        | op :: rest ->
            pending.(tid) <- Some op;
            let ok = L.apply t op in
            responses := (op, ok) :: !responses;
            pending.(tid) <- None;
            remaining.(tid) := rest;
            go ()
      in
      go ()
    in
    let recoverer tid (_ : int) =
      match pending.(tid) with
      | None -> ()
      | Some op ->
          let ok = L.recover t op in
          responses := (op, ok) :: !responses;
          pending.(tid) <- None;
          (match !(remaining.(tid)) with
          | _ :: rest -> remaining.(tid) := rest
          | [] -> ())
    in
    let rec finish round bodies =
      if round > 20 then Alcotest.fail "did not converge"
      else
        match
          Sim.run ~policy:`Random ~seed:(crash_at + round)
            ~crash_at:(if round = 0 then crash_at else -1)
            bodies
        with
        | Sim.All_done ->
            if Array.exists (fun p -> p <> None) pending then
              finish (round + 1) (Array.init 2 recoverer)
            else if Array.exists (fun r -> !r <> []) remaining then
              finish (round + 1) (Array.init 2 body)
            else ()
        | Sim.Crashed_at _ ->
            Pmem.crash ~rng:(Random.State.make [| crash_at |]) heap;
            finish (round + 1) (Array.init 2 recoverer)
    in
    finish 0 (Array.init 2 body);
    let events =
      List.rev_map
        (fun (op, ok) ->
          {
            Oracle.eop =
              (match op with
              | L.Insert k -> Set_intf.Ins k
              | L.Delete k -> Set_intf.Del k
              | L.Find k -> Set_intf.Fnd k);
            ok;
          })
        !responses
    in
    (match Oracle.check ~initial:[ 10 ] ~final:(L.to_list t) events with
    | Ok () -> ()
    | Error m -> Alcotest.failf "crash_at=%d: oracle: %s" crash_at m);
    match L.check_invariants t with
    | Ok () -> ()
    | Error m -> Alcotest.failf "crash_at=%d: %s" crash_at m
  done

let suite =
  [
    Alcotest.test_case "bst insert, every crash point" `Quick
      test_bst_insert_sweep;
    Alcotest.test_case "bst delete, every crash point" `Quick
      test_bst_delete_sweep;
    Alcotest.test_case "queue dequeue, every crash point" `Quick
      test_queue_sweep;
    Alcotest.test_case "stack pop, every crash point" `Quick test_stack_sweep;
    Alcotest.test_case "hash insert, every crash point" `Quick
      test_hash_sweep;
    Alcotest.test_case "two contending threads, sampled crash points" `Quick
      test_two_thread_sweep;
  ]
