(* Detectable-recovery campaigns (the paper's core guarantee): random
   schedules, adversarial crash points and write-back resolution, full
   recovery, oracle-checked responses — for every recoverable
   implementation, plus dedicated Tracking recovery-path tests. *)

let campaign f ~seeds ~threads ~ops ~max_crashes ~key_range =
  let cfg =
    Crashes.
      {
        factory = f;
        threads;
        ops_per_thread = ops;
        workload =
          { Workload.(default update_intensive) with key_range; prefill_n = key_range / 2 };
        max_crashes;
      }
  in
  match Crashes.run_campaign cfg ~seeds:(List.init seeds Fun.id) with
  | Ok (n, o) ->
      Alcotest.(check int) "all seeds ran" seeds n;
      Alcotest.(check bool)
        "some crashes actually happened" true (o.Crashes.crashes > 0)
  | Error msg -> Alcotest.failf "%s: %s" f.Set_intf.fname msg

let test_tracking_campaign () =
  campaign Set_intf.tracking ~seeds:60 ~threads:4 ~ops:12 ~max_crashes:3
    ~key_range:32

let test_tracking_small_hot () =
  (* tiny key range maximizes helping and tag conflicts across crashes *)
  campaign Set_intf.tracking ~seeds:40 ~threads:6 ~ops:10 ~max_crashes:4
    ~key_range:4

let test_tracking_bst_campaign () =
  campaign Set_intf.tracking_bst ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

let test_tracking_noopt_campaign () =
  campaign Set_intf.tracking_no_ro_opt ~seeds:30 ~threads:4 ~ops:10
    ~max_crashes:3 ~key_range:24

let test_capsules_campaign () =
  campaign Set_intf.capsules ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

let test_capsules_opt_campaign () =
  campaign Set_intf.capsules_opt ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

let test_romulus_campaign () =
  campaign Set_intf.romulus ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

let test_redo_campaign () =
  campaign Set_intf.redo ~seeds:40 ~threads:4 ~ops:10 ~max_crashes:3
    ~key_range:24

(* Direct recovery-path tests for Tracking's Op-Recover (Algorithm 1). *)
module L = Rlist.Int

let test_recover_completed_update_returns_same () =
  (* Crash after completion but before the caller could record the
     response: recovery must return the recorded result, not re-execute. *)
  for crash_at = 1 to 400 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = L.create heap ~threads:1 in
    let returned = ref None in
    let outcome =
      Sim.run ~policy:`Random ~seed:crash_at ~crash_at
        [| (fun _ -> returned := Some (L.insert t 7)) |]
    in
    match outcome with
    | Sim.All_done ->
        Alcotest.(check (option bool)) "completed" (Some true) !returned
    | Sim.Crashed_at _ ->
        let rng = Random.State.make [| crash_at |] in
        Pmem.crash ~rng heap;
        let r = ref false in
        (match
           Sim.run [| (fun _ -> r := L.recover t (L.Insert 7)) |]
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "crash during recovery run");
        Alcotest.(check bool) "recovered response" true !r;
        Alcotest.(check bool) "key durable" true (L.mem_volatile t 7);
        (match L.check_invariants t with
        | Ok () -> ()
        | Error m -> Alcotest.fail m)
  done

let test_recover_twice_is_stable () =
  (* multiple crashes during recovery: the response must not change *)
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let t = L.create heap ~threads:1 in
  (match
     Sim.run ~crash_at:120 ~policy:`Random
       [| (fun _ -> ignore (L.insert t 3)) |]
   with
  | Sim.All_done | Sim.Crashed_at _ -> ());
  Pmem.crash heap;
  let answers = ref [] in
  for i = 1 to 3 do
    (match
       Sim.run ~seed:i [| (fun _ -> answers := L.recover t (L.Insert 3) :: !answers) |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected");
    Pmem.crash heap
  done;
  match !answers with
  | [ a; b; c ] ->
      Alcotest.(check bool) "stable" true (a = b && b = c)
  | _ -> Alcotest.fail "expected three answers"

let test_find_recovery_reinvokes () =
  (* a crashed find leaves CP at 0, so recovery re-invokes and returns a
     fresh, correct answer *)
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let t = L.create heap ~threads:1 in
  ignore (L.insert t 5);
  (match
     Sim.run ~crash_at:60 ~policy:`Random [| (fun _ -> ignore (L.find t 5)) |]
   with
  | Sim.All_done | Sim.Crashed_at _ -> ());
  Pmem.crash heap;
  let r = ref false in
  (match Sim.run [| (fun _ -> r := L.recover t (L.Find 5)) |] with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected");
  Alcotest.(check bool) "find recovered correctly" true !r

let suite =
  [
    Alcotest.test_case "tracking campaign" `Quick test_tracking_campaign;
    Alcotest.test_case "tracking campaign, hot keys" `Quick
      test_tracking_small_hot;
    Alcotest.test_case "tracking-bst campaign" `Quick
      test_tracking_bst_campaign;
    Alcotest.test_case "tracking without read-only opt campaign" `Quick
      test_tracking_noopt_campaign;
    Alcotest.test_case "capsules campaign" `Quick test_capsules_campaign;
    Alcotest.test_case "capsules-opt campaign" `Quick
      test_capsules_opt_campaign;
    Alcotest.test_case "romulus campaign" `Quick test_romulus_campaign;
    Alcotest.test_case "redo-opt campaign" `Quick test_redo_campaign;
    Alcotest.test_case "recover a completed update returns its result"
      `Quick test_recover_completed_update_returns_same;
    Alcotest.test_case "repeated recovery is stable" `Quick
      test_recover_twice_is_stable;
    Alcotest.test_case "find recovery re-invokes" `Quick
      test_find_recovery_reinvokes;
  ]
