(* The volatile Harris list's own mechanics: marking, physical snipping
   by traversals, and the instrumentation hooks the Capsules baselines
   build on. *)

let fresh () =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"harris-test" () in
  Harris.create heap

let test_mark_then_snip () =
  let l = fresh () in
  assert (Harris.insert l 1);
  assert (Harris.insert l 2);
  assert (Harris.insert l 3);
  Alcotest.(check bool) "delete 2" true (Harris.delete l 2);
  Alcotest.(check (list int)) "snipped" [ 1; 3 ] (Harris.to_list l);
  (* a second delete of the same key fails *)
  Alcotest.(check bool) "gone" false (Harris.delete l 2);
  match Harris.check_invariants l with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_on_visit_hook_sees_marks () =
  let l = fresh () in
  List.iter (fun k -> ignore (Harris.insert l k)) [ 1; 2; 3 ];
  (* mark 2 without unlinking by driving delete_with and crashing the
     physical unlink via a stalled fiber is overkill here; instead verify
     the hook observes every traversed node and its link *)
  let visited = ref [] in
  let found =
    Harris.find_with
      ~on_visit:(fun nd link -> visited := (nd.Harris.key, link.Harris.marked) :: !visited)
      l 3
  in
  Alcotest.(check bool) "found" true found;
  let keys = List.rev_map fst !visited in
  Alcotest.(check bool) "visited the prefix" true
    (List.mem 1 keys && List.mem 2 keys && List.mem 3 keys)

let test_mk_link_identity_plumbed () =
  let l = fresh () in
  let made = ref [] in
  let mk_link ~succ ~marked =
    let link = Harris.make_link ~writer:7 ~wseq:42 ~succ ~marked () in
    made := link :: !made;
    link
  in
  assert (Harris.insert_with ~mk_link l 5);
  Alcotest.(check bool) "custom links used" true (List.length !made > 0);
  List.iter
    (fun (lk : Harris.link) ->
      Alcotest.(check int) "writer" 7 lk.Harris.writer;
      Alcotest.(check int) "wseq" 42 lk.Harris.wseq)
    !made

let test_after_cas_hook_fires () =
  let l = fresh () in
  let fired = ref 0 in
  let after_cas _ = incr fired in
  assert (Harris.insert_with ~after_cas l 9);
  Alcotest.(check bool) "insert cas hooked" true (!fired >= 1);
  let before = !fired in
  assert (Harris.delete_with ~after_cas l 9);
  (* delete fires for the mark and usually for the unlink *)
  Alcotest.(check bool) "delete cas hooked" true (!fired > before)

let test_concurrent_harris () =
  for seed = 0 to 9 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let l = Harris.create heap in
    let body tid (_ : int) =
      for i = 0 to 9 do
        assert (Harris.insert l ((tid * 100) + i))
      done;
      for i = 0 to 4 do
        assert (Harris.delete l ((tid * 100) + (2 * i)))
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    let expected =
      List.concat_map
        (fun t -> List.init 5 (fun i -> (t * 100) + (2 * i) + 1))
        [ 0; 1; 2; 3 ]
      |> List.sort compare
    in
    Alcotest.(check (list int)) "contents" expected (Harris.to_list l)
  done

let suite =
  [
    Alcotest.test_case "mark then snip" `Quick test_mark_then_snip;
    Alcotest.test_case "on_visit hook" `Quick test_on_visit_hook_sees_marks;
    Alcotest.test_case "mk_link identity plumbing" `Quick
      test_mk_link_identity_plumbed;
    Alcotest.test_case "after_cas hook" `Quick test_after_cas_hook_fires;
    Alcotest.test_case "concurrent inserts/deletes" `Quick
      test_concurrent_harris;
  ]
