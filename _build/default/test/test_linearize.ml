(* The exhaustive linearizability checker, and rlist/rbst histories with
   real invocation/response timestamps checked against it. *)

let e op ok inv res = { Linearize.op; ok; inv; res }

let test_sequential_histories () =
  Alcotest.(check bool) "empty" true (Linearize.check []);
  Alcotest.(check bool)
    "ins-find" true
    (Linearize.check
       [ e (Set_intf.Ins 1) true 0 1; e (Set_intf.Fnd 1) true 2 3 ]);
  Alcotest.(check bool)
    "find-before-ins must be false" false
    (Linearize.check
       [ e (Set_intf.Fnd 1) true 0 1; e (Set_intf.Ins 1) true 2 3 ]);
  Alcotest.(check bool)
    "initial state respected" true
    (Linearize.check ~initial:[ 7 ] [ e (Set_intf.Del 7) true 0 1 ])

let test_concurrent_reorder () =
  (* overlapping ops may linearize in either order *)
  Alcotest.(check bool)
    "overlap allows find=true" true
    (Linearize.check
       [ e (Set_intf.Ins 1) true 0 10; e (Set_intf.Fnd 1) true 1 2 ]);
  Alcotest.(check bool)
    "overlap allows find=false" true
    (Linearize.check
       [ e (Set_intf.Ins 1) true 0 10; e (Set_intf.Fnd 1) false 1 2 ]);
  (* but real-time precedence binds *)
  Alcotest.(check bool)
    "strict precedence rejects stale find" false
    (Linearize.check
       [ e (Set_intf.Ins 1) true 0 1; e (Set_intf.Fnd 1) false 5 6 ])

let test_double_insert () =
  Alcotest.(check bool)
    "two concurrent inserts: one must fail" false
    (Linearize.check
       [ e (Set_intf.Ins 1) true 0 5; e (Set_intf.Ins 1) true 0 5 ]);
  Alcotest.(check bool)
    "insert-delete-insert alternation" true
    (Linearize.check
       [
         e (Set_intf.Ins 1) true 0 5;
         e (Set_intf.Ins 1) true 0 9;
         e (Set_intf.Del 1) true 0 7;
       ])

(* Run real concurrent histories on the recoverable list and check them
   with the exhaustive checker, timestamps taken from simulator steps. *)
let test_rlist_histories_linearizable () =
  let module L = Rlist.Int in
  for seed = 0 to 39 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = L.create heap ~threads:3 in
    ignore (L.insert t 2);
    let entries = ref [] in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid; 13 |] in
      for _ = 1 to 3 do
        let k = Random.State.int rng 4 in
        let inv = Sim.steps_executed () in
        let op, ok =
          match Random.State.int rng 3 with
          | 0 -> (Set_intf.Ins k, L.insert t k)
          | 1 -> (Set_intf.Del k, L.delete t k)
          | _ -> (Set_intf.Fnd k, L.find t k)
        in
        let res = Sim.steps_executed () in
        entries := { Linearize.op; ok; inv; res } :: !entries
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 3 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    if not (Linearize.check ~initial:[ 2 ] !entries) then begin
      List.iter
        (fun en -> Format.eprintf "  %a@." Linearize.pp_entry en)
        (List.rev !entries);
      Alcotest.failf "seed %d: rlist history not linearizable" seed
    end
  done

let test_rbst_histories_linearizable () =
  let module T = Rbst.Int in
  for seed = 0 to 39 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = T.create heap ~threads:3 in
    ignore (T.insert t 2);
    let entries = ref [] in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid; 14 |] in
      for _ = 1 to 3 do
        let k = Random.State.int rng 4 in
        let inv = Sim.steps_executed () in
        let op, ok =
          match Random.State.int rng 3 with
          | 0 -> (Set_intf.Ins k, T.insert t k)
          | 1 -> (Set_intf.Del k, T.delete t k)
          | _ -> (Set_intf.Fnd k, T.find t k)
        in
        let res = Sim.steps_executed () in
        entries := { Linearize.op; ok; inv; res } :: !entries
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 3 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    if not (Linearize.check ~initial:[ 2 ] !entries) then
      Alcotest.failf "seed %d: rbst history not linearizable" seed
  done

(* Histories that survive a crash: recovered responses belong to the SAME
   operation interval (invocation before the crash, response after). *)
let test_crash_spanning_history () =
  let module L = Rlist.Int in
  for seed = 0 to 39 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = L.create heap ~threads:2 in
    ignore (L.insert t 1);
    let entries = ref [] in
    let pending = Array.make 2 None in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid; 15 |] in
      for _ = 1 to 2 do
        let k = Random.State.int rng 3 in
        let op =
          match Random.State.int rng 3 with
          | 0 -> L.Insert k
          | 1 -> L.Delete k
          | _ -> L.Find k
        in
        let inv = Sim.steps_executed () in
        pending.(tid) <- Some (op, inv);
        let ok = L.apply t op in
        entries :=
          { Linearize.op = (match op with
             | L.Insert k -> Set_intf.Ins k
             | L.Delete k -> Set_intf.Del k
             | L.Find k -> Set_intf.Fnd k);
            ok; inv; res = Sim.steps_executed () } :: !entries;
        pending.(tid) <- None
      done
    in
    (match
       Sim.run ~policy:`Random ~seed ~crash_at:(60 + (seed * 13)) (Array.init 2 body)
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at crash_step ->
        let rng = Random.State.make [| seed |] in
        Pmem.crash ~rng heap;
        (match
           Sim.run ~seed:(seed + 1)
             (Array.init 2 (fun tid (_ : int) ->
                  match pending.(tid) with
                  | None -> ()
                  | Some (op, inv) ->
                      let ok = L.recover t op in
                      entries :=
                        {
                          Linearize.op =
                            (match op with
                            | L.Insert k -> Set_intf.Ins k
                            | L.Delete k -> Set_intf.Del k
                            | L.Find k -> Set_intf.Fnd k);
                          ok;
                          inv;
                          res = crash_step + 1000 + Sim.steps_executed ();
                        }
                        :: !entries;
                      pending.(tid) <- None))
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "crash during recovery"));
    if not (Linearize.check ~initial:[ 1 ] !entries) then begin
      List.iter
        (fun en -> Format.eprintf "  %a@." Linearize.pp_entry en)
        (List.rev !entries);
      Alcotest.failf "seed %d: crash-spanning history not linearizable" seed
    end
  done

let suite =
  [
    Alcotest.test_case "sequential histories" `Quick test_sequential_histories;
    Alcotest.test_case "concurrent reordering" `Quick test_concurrent_reorder;
    Alcotest.test_case "double insert rejected" `Quick test_double_insert;
    Alcotest.test_case "rlist histories linearizable" `Quick
      test_rlist_histories_linearizable;
    Alcotest.test_case "rbst histories linearizable" `Quick
      test_rbst_histories_linearizable;
    Alcotest.test_case "crash-spanning histories linearizable" `Quick
      test_crash_spanning_history;
  ]
