(* The per-key set-semantics oracle itself. *)

let ev op ok = { Oracle.eop = op; ok }

let ok_ = Alcotest.(check bool) "accepts" true
let bad = Alcotest.(check bool) "rejects" false

let is_ok = function Ok () -> true | Error _ -> false

let test_accepts_valid () =
  ok_ (is_ok (Oracle.check ~initial:[] ~final:[] []));
  ok_
    (is_ok
       (Oracle.check ~initial:[] ~final:[ 1 ]
          [ ev (Set_intf.Ins 1) true; ev (Set_intf.Fnd 1) true ]));
  ok_
    (is_ok
       (Oracle.check ~initial:[ 1 ] ~final:[]
          [ ev (Set_intf.Del 1) true; ev (Set_intf.Ins 1) true;
            ev (Set_intf.Del 1) true ]));
  (* interleaved alternation from absent *)
  ok_
    (is_ok
       (Oracle.check ~initial:[] ~final:[ 3 ]
          [
            ev (Set_intf.Ins 3) true;
            ev (Set_intf.Del 3) true;
            ev (Set_intf.Ins 3) true;
            ev (Set_intf.Ins 3) false;
            ev (Set_intf.Del 9) false;
          ]))

let test_rejects_lost_insert () =
  bad
    (is_ok
       (Oracle.check ~initial:[] ~final:[] [ ev (Set_intf.Ins 1) true ]))

let test_rejects_phantom_delete () =
  bad
    (is_ok
       (Oracle.check ~initial:[] ~final:[] [ ev (Set_intf.Del 1) true ]))

let test_rejects_double_success () =
  bad
    (is_ok
       (Oracle.check ~initial:[] ~final:[ 1 ]
          [ ev (Set_intf.Ins 1) true; ev (Set_intf.Ins 1) true ]))

let test_rejects_failed_insert_never_present () =
  bad
    (is_ok
       (Oracle.check ~initial:[] ~final:[] [ ev (Set_intf.Ins 1) false ]))

let test_rejects_failed_delete_never_absent () =
  bad
    (is_ok
       (Oracle.check ~initial:[ 1 ] ~final:[ 1 ]
          [ ev (Set_intf.Del 1) false ]))

let test_find_on_quiet_key () =
  bad
    (is_ok
       (Oracle.check ~initial:[ 1 ] ~final:[ 1 ]
          [ ev (Set_intf.Fnd 1) false ]));
  bad
    (is_ok
       (Oracle.check ~initial:[] ~final:[] [ ev (Set_intf.Fnd 1) true ]));
  (* finds on keys with concurrent updates are not constrained *)
  ok_
    (is_ok
       (Oracle.check ~initial:[] ~final:[ 1 ]
          [ ev (Set_intf.Fnd 1) true; ev (Set_intf.Ins 1) true ]))

let test_rejects_final_mismatch () =
  bad
    (is_ok
       (Oracle.check ~initial:[] ~final:[] [ ev (Set_intf.Ins 1) true ]));
  bad (is_ok (Oracle.check ~initial:[] ~final:[ 2 ] []))

let suite =
  [
    Alcotest.test_case "accepts valid histories" `Quick test_accepts_valid;
    Alcotest.test_case "rejects lost insert" `Quick test_rejects_lost_insert;
    Alcotest.test_case "rejects phantom delete" `Quick
      test_rejects_phantom_delete;
    Alcotest.test_case "rejects double success" `Quick
      test_rejects_double_success;
    Alcotest.test_case "rejects failed insert on never-present key" `Quick
      test_rejects_failed_insert_never_present;
    Alcotest.test_case "rejects failed delete on never-absent key" `Quick
      test_rejects_failed_delete_never_absent;
    Alcotest.test_case "find constraints on quiet keys" `Quick
      test_find_on_quiet_key;
    Alcotest.test_case "rejects final-state mismatch" `Quick
      test_rejects_final_mismatch;
  ]
