(* Unit and property tests for the detectably recoverable external BST. *)

module T = Rbst.Int

let check_inv t =
  match T.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violation: %s" msg

let fresh () =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"rbst-test" () in
  (heap, T.create heap ~threads:8)

let test_empty () =
  let _, t = fresh () in
  Alcotest.(check (list int)) "empty" [] (T.to_list t);
  Alcotest.(check bool) "find on empty" false (T.find t 5);
  Alcotest.(check bool) "delete on empty" false (T.delete t 5);
  check_inv t

let test_insert_find () =
  let _, t = fresh () in
  Alcotest.(check bool) "insert 5" true (T.insert t 5);
  Alcotest.(check bool) "insert 3" true (T.insert t 3);
  Alcotest.(check bool) "insert 9" true (T.insert t 9);
  Alcotest.(check bool) "insert 7" true (T.insert t 7);
  Alcotest.(check bool) "re-insert 5" false (T.insert t 5);
  Alcotest.(check (list int)) "sorted leaves" [ 3; 5; 7; 9 ] (T.to_list t);
  Alcotest.(check bool) "find 7" true (T.find t 7);
  Alcotest.(check bool) "find 6" false (T.find t 6);
  check_inv t

let test_delete () =
  let _, t = fresh () in
  List.iter (fun k -> ignore (T.insert t k)) [ 8; 3; 10; 1; 6; 14 ];
  Alcotest.(check bool) "delete leaf-ish 1" true (T.delete t 1);
  Alcotest.(check bool) "delete 1 again" false (T.delete t 1);
  Alcotest.(check bool) "delete root key" true (T.delete t 8);
  Alcotest.(check bool) "delete missing" false (T.delete t 99);
  Alcotest.(check (list int)) "remaining" [ 3; 6; 10; 14 ] (T.to_list t);
  check_inv t

let test_drain () =
  let _, t = fresh () in
  let keys = [ 5; 2; 8; 1; 3; 7; 9; 4; 6; 0 ] in
  List.iter (fun k -> ignore (T.insert t k)) keys;
  List.iter
    (fun k -> Alcotest.(check bool) "drain" true (T.delete t k))
    keys;
  Alcotest.(check (list int)) "empty again" [] (T.to_list t);
  Alcotest.(check int) "size" 0 (T.size t);
  check_inv t

module IS = Set.Make (Stdlib.Int)

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> `I k) (int_range 0 25);
        map (fun k -> `D k) (int_range 0 25);
        map (fun k -> `F k) (int_range 0 25);
      ])

let prop_sequential_model =
  QCheck2.Test.make ~name:"rbst agrees with Set model (sequential)" ~count:300
    QCheck2.Gen.(list_size (int_range 0 80) gen_op)
    (fun ops ->
      let _, t = fresh () in
      let model = ref IS.empty in
      List.for_all
        (fun op ->
          match op with
          | `I k ->
              let expected = not (IS.mem k !model) in
              model := IS.add k !model;
              T.insert t k = expected
          | `D k ->
              let expected = IS.mem k !model in
              model := IS.remove k !model;
              T.delete t k = expected
          | `F k -> T.find t k = IS.mem k !model)
        ops
      && T.to_list t = IS.elements !model
      && T.check_invariants t = Ok ())

let test_concurrent_disjoint () =
  for seed = 0 to 14 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = T.create heap ~threads:4 in
    let body tid (_ : int) =
      let base = tid * 100 in
      for i = 0 to 9 do
        assert (T.insert t (base + i))
      done;
      for i = 0 to 4 do
        assert (T.delete t (base + (2 * i)))
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    let expected =
      List.concat_map
        (fun tid -> List.init 5 (fun i -> (tid * 100) + (2 * i) + 1))
        [ 0; 1; 2; 3 ]
      |> List.sort compare
    in
    Alcotest.(check (list int)) "final contents" expected (T.to_list t);
    check_inv t
  done

let test_concurrent_contended () =
  for seed = 0 to 14 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = T.create heap ~threads:4 in
    let succ_ins = Array.make 8 0 and succ_del = Array.make 8 0 in
    let log = ref [] in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid; 3 |] in
      for _ = 1 to 20 do
        let k = Random.State.int rng 8 in
        (* bind the result before touching [log]: the operation yields to
           other fibers, so the list must be read afterwards *)
        if Random.State.bool rng then begin
          let r = T.insert t k in
          log := (k, true, r) :: !log
        end
        else begin
          let r = T.delete t k in
          log := (k, false, r) :: !log
        end
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    List.iter
      (fun (k, is_ins, ok) ->
        if ok then
          if is_ins then succ_ins.(k) <- succ_ins.(k) + 1
          else succ_del.(k) <- succ_del.(k) + 1)
      !log;
    for k = 0 to 7 do
      let net = succ_ins.(k) - succ_del.(k) in
      if net < 0 || net > 1 then
        Alcotest.failf "key %d: net successful inserts = %d" k net;
      Alcotest.(check bool)
        (Printf.sprintf "key %d presence" k)
        (net = 1) (T.mem_volatile t k)
    done;
    check_inv t
  done

(* §6's further find optimization: empty AffectSet. *)
let test_find_empty_affect () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let t = T.create ~prefix:"rbst-eaf" ~find_empty_affect:true heap ~threads:4 in
  List.iter (fun k -> ignore (T.insert t k)) [ 4; 1; 9 ];
  Alcotest.(check bool) "find present" true (T.find t 9);
  Alcotest.(check bool) "find absent" false (T.find t 5);
  (* concurrent finds against updates remain per-key consistent *)
  for seed = 0 to 9 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t =
      T.create ~prefix:"rbst-eaf" ~find_empty_affect:true heap ~threads:4
    in
    ignore (T.insert t 3);
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid; 44 |] in
      for _ = 1 to 12 do
        let k = Random.State.int rng 6 in
        match Random.State.int rng 3 with
        | 0 -> ignore (T.insert t k : bool)
        | 1 -> ignore (T.delete t k : bool)
        | _ -> ignore (T.find t k : bool)
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    check_inv t
  done;
  (* a crashed empty-affect find recovers by re-invocation *)
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let t = T.create ~prefix:"rbst-eaf" ~find_empty_affect:true heap ~threads:1 in
  ignore (T.insert t 7);
  (match
     Sim.run ~policy:`Random ~crash_at:40 [| (fun _ -> ignore (T.find t 7)) |]
   with
  | Sim.All_done | Sim.Crashed_at _ -> ());
  Pmem.crash heap;
  let r = ref false in
  (match Sim.run [| (fun _ -> r := T.recover t (T.Find 7)) |] with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
  Alcotest.(check bool) "recovered find" true !r

let test_helping_completes () =
  for crash_at = 5 to 100 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = T.create heap ~threads:2 in
    ignore (T.insert t 10);
    ignore (T.insert t 20);
    (* suspend a delete mid-flight, then require an insert to finish *)
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun _ -> ignore (T.delete t 10)) |]
     with
    | Sim.All_done | Sim.Crashed_at _ -> ());
    (match
       Sim.run ~policy:`Random ~seed:0 [| (fun _ -> ignore (T.insert t 15)) |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    Alcotest.(check bool) "15 present" true (T.mem_volatile t 15)
  done

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert-find" `Quick test_insert_find;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "fill and drain" `Quick test_drain;
    QCheck_alcotest.to_alcotest prop_sequential_model;
    Alcotest.test_case "concurrent disjoint keys" `Quick
      test_concurrent_disjoint;
    Alcotest.test_case "concurrent contended keys" `Quick
      test_concurrent_contended;
    Alcotest.test_case "find with empty AffectSet" `Quick
      test_find_empty_affect;
    Alcotest.test_case "helping completes stalled ops" `Quick
      test_helping_completes;
  ]
