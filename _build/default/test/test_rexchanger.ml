(* The detectably recoverable exchanger: pairing, timeout, cancellation
   races, and crash recovery of both roles. *)

let fresh threads =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"xchg-test" () in
  (heap, Rexchanger.create heap ~threads)

let test_pairing () =
  for seed = 0 to 19 do
    let _, x = fresh 2 in
    let res = Array.make 2 None in
    let body i (_ : int) = res.(i) <- Rexchanger.exchange ~spins:5000 x (100 + i) in
    (match Sim.run ~policy:`Random ~seed (Array.init 2 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    Alcotest.(check (option int)) "thread 0 got 101" (Some 101) res.(0);
    Alcotest.(check (option int)) "thread 1 got 100" (Some 100) res.(1);
    Alcotest.(check bool) "slot free" true (Rexchanger.slot_is_free x)
  done

let test_timeout_alone () =
  let _, x = fresh 1 in
  (match Sim.run [| (fun _ -> assert (Rexchanger.exchange ~spins:10 x 7 = None)) |] with
  | Sim.All_done -> ()
  | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
  Alcotest.(check bool) "slot freed after cancel" true (Rexchanger.slot_is_free x)

let test_many_rounds () =
  (* repeated exchanges through the same slot *)
  for seed = 0 to 9 do
    let _, x = fresh 2 in
    let sums = Array.make 2 0 in
    let body i (_ : int) =
      for round = 0 to 9 do
        match Rexchanger.exchange ~spins:5000 x ((i * 1000) + round) with
        | Some v -> sums.(i) <- sums.(i) + v
        | None -> Alcotest.fail "partner exists: no timeout expected"
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 2 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    (* every value sent by one side is received by the other, per round *)
    let expect i = (((1 - i) * 1000) * 10) + 45 in
    Alcotest.(check int) "sum 0" (expect 0) sums.(0);
    Alcotest.(check int) "sum 1" (expect 1) sums.(1)
  done

let test_even_crowd () =
  (* 2n threads all exchange; everyone must pair with someone, and values
     must form a perfect matching *)
  for seed = 0 to 9 do
    let n = 6 in
    let _, x = fresh n in
    let res = Array.make n None in
    let body i (_ : int) = res.(i) <- Rexchanger.exchange ~spins:50_000 x i in
    (match Sim.run ~policy:`Random ~seed (Array.init n body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    let got = Array.map (function Some v -> v | None -> -1) res in
    Array.iteri
      (fun i v ->
        if v < 0 then Alcotest.failf "thread %d timed out" i
        else if got.(v) <> i then
          Alcotest.failf "thread %d got %d but %d got %d" i v v got.(v))
      got
  done

(* Crash during exchanges: after recovery, responses must still form a
   valid matching — if A received B's value, B must receive A's (possibly
   through recovery). *)
let test_crash_recovery () =
  let violations = ref [] in
  for seed = 0 to 199 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let x = Rexchanger.create heap ~threads:2 in
    let res = Array.make 2 None in
    let done_ = Array.make 2 false in
    let body i (_ : int) =
      res.(i) <- Rexchanger.exchange ~spins:2000 x (100 + i);
      done_.(i) <- true
    in
    let crash_at = 10 + (seed * 7 mod 600) in
    let rng = Random.State.make [| seed; 99 |] in
    (match Sim.run ~policy:`Random ~seed ~crash_at (Array.init 2 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ ->
        Pmem.crash ~rng heap;
        (match
           Sim.run ~policy:`Random ~seed:(seed + 1)
             (Array.init 2 (fun i (_ : int) ->
                  if not done_.(i) then begin
                    res.(i) <- Rexchanger.recover ~spins:2000 x (100 + i);
                    done_.(i) <- true
                  end))
         with
        | Sim.All_done -> ()
        | Sim.Crashed_at _ -> Alcotest.fail "unexpected second crash"));
    (match (res.(0), res.(1)) with
    | Some a, Some b ->
        if not (a = 101 && b = 100) then
          violations := Printf.sprintf "seed %d: got %d/%d" seed a b :: !violations
    | Some a, None | None, Some a ->
        (* one-sided success is a detectability violation: the value can
           only have been delivered by the other party *)
        violations := Printf.sprintf "seed %d: one-sided %d" seed a :: !violations
    | None, None -> ())
  done;
  match !violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%d violations, first: %s" (List.length !violations) v

let suite =
  [
    Alcotest.test_case "two threads pair" `Quick test_pairing;
    Alcotest.test_case "timeout when alone" `Quick test_timeout_alone;
    Alcotest.test_case "many rounds through one slot" `Quick test_many_rounds;
    Alcotest.test_case "crowd forms a perfect matching" `Quick
      test_even_crowd;
    Alcotest.test_case "crash recovery keeps matching valid" `Quick
      test_crash_recovery;
  ]
