(* The composed recoverable hash map: model agreement, concurrency,
   crash campaigns through the common harness, and a non-integer-key
   instantiation of the functor. *)

module H = Rhash.Int
module IS = Set.Make (Stdlib.Int)

let fresh ?(buckets = 8) threads =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"rhash-test" () in
  (heap, H.create ~buckets heap ~threads)

let test_sequential_model () =
  let _, h = fresh 2 in
  let rng = Random.State.make [| 31 |] in
  let model = ref IS.empty in
  for _ = 1 to 500 do
    let k = Random.State.int rng 100 in
    match Random.State.int rng 3 with
    | 0 ->
        let e = not (IS.mem k !model) in
        model := IS.add k !model;
        Alcotest.(check bool) "insert" e (H.insert h k)
    | 1 ->
        let e = IS.mem k !model in
        model := IS.remove k !model;
        Alcotest.(check bool) "delete" e (H.delete h k)
    | _ -> Alcotest.(check bool) "find" (IS.mem k !model) (H.find h k)
  done;
  Alcotest.(check (list int))
    "final" (IS.elements !model)
    (List.sort compare (H.to_list h));
  Alcotest.(check int) "cardinal" (IS.cardinal !model) (H.cardinal h);
  match H.check_invariants h with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_single_bucket_degenerate () =
  (* one bucket = plain recoverable list; all keys collide *)
  let _, h = fresh ~buckets:1 2 in
  for k = 0 to 20 do
    Alcotest.(check bool) "insert" true (H.insert h k)
  done;
  Alcotest.(check int) "cardinal" 21 (H.cardinal h)

let test_concurrent () =
  for seed = 0 to 9 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let h = H.create ~buckets:4 heap ~threads:4 in
    let body tid (_ : int) =
      for i = 0 to 9 do
        assert (H.insert h ((tid * 100) + i))
      done;
      for i = 0 to 4 do
        assert (H.delete h ((tid * 100) + (2 * i)))
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    let expected =
      List.concat_map
        (fun t -> List.init 5 (fun i -> (t * 100) + (2 * i) + 1))
        [ 0; 1; 2; 3 ]
      |> List.sort compare
    in
    Alcotest.(check (list int))
      "contents" expected
      (List.sort compare (H.to_list h))
  done

let test_crash_campaign () =
  let cfg =
    Crashes.
      {
        factory = Set_intf.tracking_hash;
        threads = 4;
        ops_per_thread = 12;
        workload =
          { Workload.(default update_intensive) with key_range = 48; prefill_n = 24 };
        max_crashes = 3;
      }
  in
  match Crashes.run_campaign cfg ~seeds:(List.init 40 Fun.id) with
  | Ok (n, o) ->
      Alcotest.(check int) "all seeds" 40 n;
      Alcotest.(check bool) "crashes happened" true (o.Crashes.crashes > 0)
  | Error m -> Alcotest.fail m

(* The functor also works for non-integer keys. *)
module SH = Rhash.Make (struct
  type t = string

  let compare = String.compare
  let to_string s = s
  let hash = Hashtbl.hash
end)

let test_string_keys () =
  Pmem.reset_pending ();
  let heap = Pmem.heap () in
  let h = SH.create ~buckets:4 heap ~threads:1 in
  Alcotest.(check bool) "insert" true (SH.insert h "hello");
  Alcotest.(check bool) "insert" true (SH.insert h "world");
  Alcotest.(check bool) "dup" false (SH.insert h "hello");
  Alcotest.(check bool) "find" true (SH.find h "world");
  Alcotest.(check bool) "delete" true (SH.delete h "hello");
  Alcotest.(check bool) "gone" false (SH.find h "hello");
  Alcotest.(check int) "cardinal" 1 (SH.cardinal h)

let suite =
  [
    Alcotest.test_case "sequential model" `Quick test_sequential_model;
    Alcotest.test_case "single bucket degenerate" `Quick
      test_single_bucket_degenerate;
    Alcotest.test_case "concurrent disjoint" `Quick test_concurrent;
    Alcotest.test_case "crash campaign" `Quick test_crash_campaign;
    Alcotest.test_case "string keys" `Quick test_string_keys;
  ]
