(* Unit and property tests for the detectably recoverable linked list. *)

module L = Rlist.Int

let check_inv t =
  match L.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violation: %s" msg

let fresh () =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"rlist-test" () in
  (heap, L.create heap ~threads:8)

let test_empty () =
  let _, t = fresh () in
  Alcotest.(check (list int)) "empty" [] (L.to_list t);
  Alcotest.(check bool) "find on empty" false (L.find t 5);
  check_inv t

let test_insert_find () =
  let _, t = fresh () in
  Alcotest.(check bool) "insert 5" true (L.insert t 5);
  Alcotest.(check bool) "insert 3" true (L.insert t 3);
  Alcotest.(check bool) "insert 9" true (L.insert t 9);
  Alcotest.(check bool) "re-insert 5" false (L.insert t 5);
  Alcotest.(check (list int)) "sorted" [ 3; 5; 9 ] (L.to_list t);
  Alcotest.(check bool) "find 3" true (L.find t 3);
  Alcotest.(check bool) "find 4" false (L.find t 4);
  check_inv t

let test_delete () =
  let _, t = fresh () in
  List.iter (fun k -> ignore (L.insert t k)) [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "delete 2" true (L.delete t 2);
  Alcotest.(check bool) "delete 2 again" false (L.delete t 2);
  Alcotest.(check bool) "delete missing" false (L.delete t 99);
  Alcotest.(check (list int)) "remaining" [ 1; 3; 4 ] (L.to_list t);
  Alcotest.(check bool) "find deleted" false (L.find t 2);
  check_inv t

let test_boundaries () =
  let _, t = fresh () in
  Alcotest.(check bool) "min_int" true (L.insert t min_int);
  Alcotest.(check bool) "max_int" true (L.insert t max_int);
  Alcotest.(check bool) "zero" true (L.insert t 0);
  Alcotest.(check (list int)) "order" [ min_int; 0; max_int ] (L.to_list t);
  Alcotest.(check bool) "delete min" true (L.delete t min_int);
  Alcotest.(check (list int)) "after" [ 0; max_int ] (L.to_list t);
  check_inv t

(* Sequential model-based property: the list agrees with Stdlib.Set after
   any sequence of operations. *)
module IS = Set.Make (Stdlib.Int)

type op = I of int | D of int | F of int

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> I k) (int_range 0 30);
        map (fun k -> D k) (int_range 0 30);
        map (fun k -> F k) (int_range 0 30);
      ])

let prop_sequential_model =
  QCheck2.Test.make ~name:"rlist agrees with Set model (sequential)"
    ~count:300
    QCheck2.Gen.(list_size (int_range 0 60) gen_op)
    (fun ops ->
      let _, t = fresh () in
      let model = ref IS.empty in
      List.for_all
        (fun op ->
          match op with
          | I k ->
              let expected = not (IS.mem k !model) in
              model := IS.add k !model;
              L.insert t k = expected
          | D k ->
              let expected = IS.mem k !model in
              model := IS.remove k !model;
              L.delete t k = expected
          | F k -> L.find t k = IS.mem k !model)
        ops
      && L.to_list t = IS.elements !model
      && L.check_invariants t = Ok ())

(* Concurrent runs under the random scheduler: disjoint key ranges per
   thread make per-thread sequential semantics exact. *)
let test_concurrent_disjoint () =
  for seed = 0 to 19 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = L.create heap ~threads:4 in
    let results = Array.make 4 [] in
    let body tid (_ : int) =
      let base = tid * 100 in
      let r = ref [] in
      for i = 0 to 9 do
        r := L.insert t (base + i) :: !r
      done;
      for i = 0 to 4 do
        r := L.delete t (base + (2 * i)) :: !r
      done;
      results.(tid) <- !r
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 (fun i -> body i)) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    for tid = 0 to 3 do
      List.iter
        (fun ok -> Alcotest.(check bool) "all ops succeed" true ok)
        results.(tid)
    done;
    let expected =
      List.concat_map
        (fun tid -> List.init 5 (fun i -> (tid * 100) + (2 * i) + 1))
        [ 0; 1; 2; 3 ]
      |> List.sort compare
    in
    Alcotest.(check (list int)) "final contents" expected (L.to_list t);
    check_inv t
  done

(* Contended keys: all threads fight over the same small range; check the
   per-key success-count algebra afterwards. *)
let test_concurrent_contended () =
  for seed = 0 to 19 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let nthreads = 4 in
    let t = L.create heap ~threads:nthreads in
    let succ_ins = Array.make 8 0 and succ_del = Array.make 8 0 in
    let log : (int * bool * bool) list ref = ref [] in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid |] in
      for _ = 1 to 25 do
        let k = Random.State.int rng 8 in
        if Random.State.bool rng then begin
          let ok = L.insert t k in
          log := (k, true, ok) :: !log
        end
        else begin
          let ok = L.delete t k in
          log := (k, false, ok) :: !log
        end
      done
    in
    (match
       Sim.run ~policy:`Random ~seed (Array.init nthreads (fun i -> body i))
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    List.iter
      (fun (k, is_ins, ok) ->
        if ok then
          if is_ins then succ_ins.(k) <- succ_ins.(k) + 1
          else succ_del.(k) <- succ_del.(k) + 1)
      !log;
    for k = 0 to 7 do
      let net = succ_ins.(k) - succ_del.(k) in
      if net < 0 || net > 1 then
        Alcotest.failf "key %d: net successful inserts = %d" k net;
      Alcotest.(check bool)
        (Printf.sprintf "key %d presence" k)
        (net = 1) (L.mem_volatile t k)
    done;
    check_inv t
  done

(* Lock-freedom smoke test: one thread is suspended while holding a tag;
   another must still complete via helping. *)
let test_helping_completes () =
  (* Thread 0 starts a delete and is suspended mid-flight at every
     possible step; thread 1 then runs to completion before any recovery,
     relying on helping alone. *)
  for crash_at = 5 to 120 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let t = L.create heap ~threads:2 in
    ignore (L.insert t 10);
    ignore (L.insert t 20);
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun _ -> ignore (L.delete t 10)) |]
     with
    | Sim.All_done | Sim.Crashed_at _ -> ());
    (* No crash-reset of volatile state here: this models a slow thread,
       not a failure.  Thread 1 must not block on 10's or 20's tags. *)
    (match
       Sim.run ~policy:`Random ~seed:0
         [| (fun _ -> ignore (L.insert t 15)) |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    Alcotest.(check bool) "15 present" true (L.mem_volatile t 15)
  done

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert-find" `Quick test_insert_find;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "boundary keys" `Quick test_boundaries;
    QCheck_alcotest.to_alcotest prop_sequential_model;
    Alcotest.test_case "concurrent disjoint keys" `Quick
      test_concurrent_disjoint;
    Alcotest.test_case "concurrent contended keys" `Quick
      test_concurrent_contended;
    Alcotest.test_case "helping completes stalled ops" `Quick
      test_helping_completes;
  ]
