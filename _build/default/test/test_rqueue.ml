(* The Tracking-derived recoverable FIFO queue: sequential order,
   concurrent element conservation, helping, and detectable recovery. *)

let fresh threads =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"rqueue-test" () in
  (heap, Rqueue.create heap ~threads)

let check_inv q =
  match Rqueue.check_invariants q with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant: %s" m

let test_fifo_sequential () =
  let _, q = fresh 2 in
  Alcotest.(check (option int)) "empty" None (Rqueue.dequeue q);
  Rqueue.enqueue q 1;
  Rqueue.enqueue q 2;
  Rqueue.enqueue q 3;
  Alcotest.(check (list int)) "contents" [ 1; 2; 3 ] (Rqueue.to_list q);
  Alcotest.(check (option int)) "deq 1" (Some 1) (Rqueue.dequeue q);
  Rqueue.enqueue q 4;
  Alcotest.(check (option int)) "deq 2" (Some 2) (Rqueue.dequeue q);
  Alcotest.(check (option int)) "deq 3" (Some 3) (Rqueue.dequeue q);
  Alcotest.(check (option int)) "deq 4" (Some 4) (Rqueue.dequeue q);
  Alcotest.(check (option int)) "empty again" None (Rqueue.dequeue q);
  Alcotest.(check int) "length" 0 (Rqueue.length q);
  check_inv q

let prop_fifo_model =
  QCheck2.Test.make ~name:"rqueue agrees with Queue model (sequential)"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) (option (int_range 0 99)))
    (fun script ->
      let _, q = fresh 1 in
      let model = Queue.create () in
      List.for_all
        (fun step ->
          match step with
          | Some v ->
              Rqueue.enqueue q v;
              Queue.push v model;
              true
          | None ->
              let expected = Queue.take_opt model in
              Rqueue.dequeue q = expected)
        script
      && Rqueue.to_list q = List.of_seq (Queue.to_seq model))

(* Element conservation under concurrency: everything enqueued is
   dequeued exactly once (or still present), and per-producer order is
   preserved among that producer's dequeued elements. *)
let test_concurrent_conservation () =
  for seed = 0 to 14 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let q = Rqueue.create heap ~threads:4 in
    let dequeued = Array.make 4 [] in
    let producer tid (_ : int) =
      for i = 0 to 9 do
        Rqueue.enqueue q ((tid * 1000) + i)
      done
    in
    let consumer tid (_ : int) =
      for _ = 0 to 9 do
        let rec take tries =
          match Rqueue.dequeue q with
          | Some v -> dequeued.(tid) <- v :: dequeued.(tid)
          | None -> if tries < 4000 then (Sim.advance 50.; take (tries + 1))
        in
        take 0
      done
    in
    (match
       Sim.run ~policy:`Random ~seed
         [| producer 0; producer 1; consumer 2; consumer 3 |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    let taken = List.concat [ dequeued.(2); dequeued.(3) ] in
    let rest = Rqueue.to_list q in
    let all = List.sort compare (taken @ rest) in
    let expected =
      List.sort compare
        (List.concat_map (fun t -> List.init 10 (fun i -> (t * 1000) + i)) [ 0; 1 ])
    in
    Alcotest.(check (list int)) "conservation" expected all;
    (* per-producer FIFO: among elements of one producer, dequeue order
       respects enqueue order within each consumer's local sequence *)
    List.iter
      (fun c ->
        let seen = Hashtbl.create 8 in
        List.iter
          (fun v ->
            let p = v / 1000 in
            (match Hashtbl.find_opt seen p with
            | Some prev when prev < v ->
                Alcotest.failf "producer %d order violated: %d after %d" p v prev
            | _ -> ());
            Hashtbl.replace seen p v)
          dequeued.(c))
      [ 2; 3 ];
    check_inv q
  done

let test_helping_completes () =
  for crash_at = 5 to 100 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let q = Rqueue.create heap ~threads:2 in
    Rqueue.enqueue q 1;
    Rqueue.enqueue q 2;
    (* freeze an enqueue mid-flight at every step *)
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun _ -> Rqueue.enqueue q 3) |]
     with
    | Sim.All_done | Sim.Crashed_at _ -> ());
    (* another thread must still make progress through helping *)
    (match
       Sim.run ~seed:1 [| (fun _ -> ignore (Rqueue.dequeue q : int option)) |]
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash")
  done

(* Crash campaigns: enqueues and dequeues with adversarial crashes; the
   recovered responses must conserve elements exactly once. *)
let test_crash_recovery_conservation () =
  for seed = 0 to 59 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let threads = 3 in
    let q = Rqueue.create heap ~threads in
    let rng = Random.State.make [| seed; 0xDE0 |] in
    let produced = ref [] and consumed = ref [] in
    let pending = Array.make threads None in
    let remaining =
      Array.init threads (fun t ->
          let trng = Random.State.make [| seed; t |] in
          ref
            (List.init 8 (fun i ->
                 if Random.State.bool trng then
                   Rqueue.Enqueue ((t * 100) + i)
                 else Rqueue.Dequeue)))
    in
    let record op (r : int option) =
      (match op with
      | Rqueue.Enqueue v -> produced := v :: !produced
      | Rqueue.Dequeue -> (
          match r with Some v -> consumed := v :: !consumed | None -> ()))
    in
    let worker tid (_ : int) =
      let rec go () =
        match !(remaining.(tid)) with
        | [] -> ()
        | op :: rest ->
            pending.(tid) <- Some op;
            let r = Rqueue.apply q op in
            record op r;
            pending.(tid) <- None;
            remaining.(tid) := rest;
            go ()
      in
      go ()
    in
    let recoverer tid (_ : int) =
      match pending.(tid) with
      | None -> ()
      | Some op ->
          let r = Rqueue.recover q op in
          record op r;
          pending.(tid) <- None;
          (match !(remaining.(tid)) with
          | _ :: rest -> remaining.(tid) := rest
          | [] -> ())
    in
    let crashes = ref 0 in
    let rec rounds round bodies =
      match
        Sim.run ~policy:`Random ~seed:(seed + (round * 131))
          ~crash_at:(if !crashes < 3 then 1 + Random.State.int rng 4000 else -1)
          bodies
      with
      | Sim.All_done ->
          if Array.exists (fun p -> p <> None) pending then
            rounds (round + 1) (Array.init threads recoverer)
          else if Array.exists (fun r -> !r <> []) remaining then
            rounds (round + 1) (Array.init threads worker)
          else ()
      | Sim.Crashed_at _ ->
          incr crashes;
          Pmem.crash ~rng heap;
          rounds (round + 1) (Array.init threads recoverer)
    in
    rounds 0 (Array.init threads worker);
    let left = Rqueue.to_list q in
    let all = List.sort compare (!consumed @ left) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d conservation (crashes=%d)" seed !crashes)
      (List.sort compare !produced)
      all;
    check_inv q
  done

let suite =
  [
    Alcotest.test_case "fifo sequential" `Quick test_fifo_sequential;
    QCheck_alcotest.to_alcotest prop_fifo_model;
    Alcotest.test_case "concurrent conservation" `Quick
      test_concurrent_conservation;
    Alcotest.test_case "helping completes stalled ops" `Quick
      test_helping_completes;
    Alcotest.test_case "crash recovery conserves elements" `Quick
      test_crash_recovery_conservation;
  ]
