(* The Tracking-derived recoverable Treiber stack. *)

let fresh threads =
  Pmem.reset_pending ();
  let heap = Pmem.heap ~name:"rstack-test" () in
  (heap, Rstack.create heap ~threads)

let check_inv s =
  match Rstack.check_invariants s with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant: %s" m

let test_lifo_sequential () =
  let _, s = fresh 2 in
  Alcotest.(check (option int)) "empty" None (Rstack.pop s);
  Rstack.push s 1;
  Rstack.push s 2;
  Rstack.push s 3;
  Alcotest.(check (list int)) "top-down" [ 3; 2; 1 ] (Rstack.to_list s);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Rstack.pop s);
  Rstack.push s 4;
  Alcotest.(check (option int)) "pop 4" (Some 4) (Rstack.pop s);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Rstack.pop s);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Rstack.pop s);
  Alcotest.(check (option int)) "empty again" None (Rstack.pop s);
  check_inv s

let prop_lifo_model =
  QCheck2.Test.make ~name:"rstack agrees with Stack model (sequential)"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 60) (option (int_range 0 99)))
    (fun script ->
      let _, s = fresh 1 in
      let model = Stack.create () in
      List.for_all
        (fun step ->
          match step with
          | Some v ->
              Rstack.push s v;
              Stack.push v model;
              true
          | None -> Rstack.pop s = Stack.pop_opt model)
        script
      && Rstack.to_list s = List.of_seq (Stack.to_seq model))

let test_concurrent_conservation () =
  for seed = 0 to 14 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let s = Rstack.create heap ~threads:4 in
    let popped = Array.make 4 [] in
    let body tid (_ : int) =
      let rng = Random.State.make [| seed; tid; 8 |] in
      for i = 0 to 11 do
        if Random.State.int rng 3 < 2 then Rstack.push s ((tid * 1000) + i)
        else
          match Rstack.pop s with
          | Some v -> popped.(tid) <- v :: popped.(tid)
          | None -> ()
      done
    in
    (match Sim.run ~policy:`Random ~seed (Array.init 4 body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    (* conservation: pushed = popped + remaining, no duplicates *)
    let taken = Array.to_list popped |> List.concat in
    let all = List.sort compare (taken @ Rstack.to_list s) in
    let sorted_uniq = List.sort_uniq compare all in
    Alcotest.(check int) "no duplicates" (List.length sorted_uniq)
      (List.length all);
    check_inv s
  done

let test_helping_completes () =
  for crash_at = 5 to 100 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let s = Rstack.create heap ~threads:2 in
    Rstack.push s 1;
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun _ -> Rstack.push s 2) |]
     with
    | Sim.All_done | Sim.Crashed_at _ -> ());
    (match Sim.run ~seed:1 [| (fun _ -> Rstack.push s 3) |] with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    Alcotest.(check bool) "3 on stack" true (List.mem 3 (Rstack.to_list s))
  done

let test_crash_recovery_conservation () =
  for seed = 0 to 59 do
    Pmem.reset_pending ();
    let heap = Pmem.heap () in
    let threads = 3 in
    let s = Rstack.create heap ~threads in
    let rng = Random.State.make [| seed; 0x57A |] in
    let pushed = ref [] and popped = ref [] in
    let pending = Array.make threads None in
    let remaining =
      Array.init threads (fun t ->
          let trng = Random.State.make [| seed; t; 2 |] in
          ref
            (List.init 8 (fun i ->
                 if Random.State.bool trng then Rstack.Push ((t * 100) + i)
                 else Rstack.Pop)))
    in
    let record op (r : int option) =
      match op with
      | Rstack.Push v -> pushed := v :: !pushed
      | Rstack.Pop -> (
          match r with Some v -> popped := v :: !popped | None -> ())
    in
    let worker tid (_ : int) =
      let rec go () =
        match !(remaining.(tid)) with
        | [] -> ()
        | op :: rest ->
            pending.(tid) <- Some op;
            let r = Rstack.apply s op in
            record op r;
            pending.(tid) <- None;
            remaining.(tid) := rest;
            go ()
      in
      go ()
    in
    let recoverer tid (_ : int) =
      match pending.(tid) with
      | None -> ()
      | Some op ->
          let r = Rstack.recover s op in
          record op r;
          pending.(tid) <- None;
          (match !(remaining.(tid)) with
          | _ :: rest -> remaining.(tid) := rest
          | [] -> ())
    in
    let crashes = ref 0 in
    let rec rounds round bodies =
      match
        Sim.run ~policy:`Random ~seed:(seed + (round * 61))
          ~crash_at:(if !crashes < 3 then 1 + Random.State.int rng 3500 else -1)
          bodies
      with
      | Sim.All_done ->
          if Array.exists (fun p -> p <> None) pending then
            rounds (round + 1) (Array.init threads recoverer)
          else if Array.exists (fun r -> !r <> []) remaining then
            rounds (round + 1) (Array.init threads worker)
          else ()
      | Sim.Crashed_at _ ->
          incr crashes;
          Pmem.crash ~rng heap;
          rounds (round + 1) (Array.init threads recoverer)
    in
    rounds 0 (Array.init threads worker);
    let all = List.sort compare (!popped @ Rstack.to_list s) in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d conservation (crashes=%d)" seed !crashes)
      (List.sort compare !pushed)
      all;
    check_inv s
  done

let suite =
  [
    Alcotest.test_case "lifo sequential" `Quick test_lifo_sequential;
    QCheck_alcotest.to_alcotest prop_lifo_model;
    Alcotest.test_case "concurrent conservation" `Quick
      test_concurrent_conservation;
    Alcotest.test_case "helping completes stalled ops" `Quick
      test_helping_completes;
    Alcotest.test_case "crash recovery conserves elements" `Quick
      test_crash_recovery_conservation;
  ]
