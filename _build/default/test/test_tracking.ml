(* Engine-level tests of the Tracking machinery (Algorithms 1–2) on a
   minimal hand-built structure: a fixed array of cells, each a "node"
   with an info field and a value field.  This isolates the descriptor
   and phase machine from any particular data structure. *)

type node = {
  id : int;
  line : Pmem.line;
  value : int Pmem.t;
  info : node Desc.state Pmem.t;
}

let node_ops =
  { Tracking.info = (fun n -> n.info); node_line = (fun n -> n.line) }

let sites = Tracking.sites "engine-test"

let mk_node heap id v =
  let line = Pmem.new_line ~name:(Printf.sprintf "cell%d" id) heap in
  {
    id;
    line;
    value = Pmem.on_line line v;
    info = Pmem.on_line line Desc.Clean;
  }

let init_pwb = Pstats.make Pwb "engine-test.init"
let init_sync = Pstats.make Psync "engine-test.init.psync"

let fresh n =
  Pmem.reset_pending ();
  Pstats.set_all_enabled true;
  let heap = Pmem.heap () in
  let nodes = Array.init n (fun i -> mk_node heap i 0) in
  Array.iter (fun nd -> Pmem.pwb init_pwb nd.line) nodes;
  Pmem.psync init_sync;
  (heap, nodes)

(* A "multi-cell increment": CASes each listed cell from its gathered
   value to value+1, atomically under tagging. *)
let incr_desc heap nodes idxs =
  let affect =
    List.map (fun i -> (nodes.(i), Pmem.read nodes.(i).info)) idxs
  in
  let writes =
    List.map
      (fun i ->
        let v = Pmem.read nodes.(i).value in
        Desc.Update { field = nodes.(i).value; old_v = v; new_v = v + 1 })
      idxs
  in
  Desc.make heap ~label:"incr" ~affect ~writes
    ~cleanup:(List.map (fun i -> nodes.(i)) idxs)
    ~response:true ()

let test_help_applies_once () =
  let heap, nodes = fresh 3 in
  let d = incr_desc heap nodes [ 0; 1; 2 ] in
  Tracking.help node_ops sites d;
  Alcotest.(check (option bool)) "result" (Some true) (Desc.result d);
  Array.iter
    (fun nd -> Alcotest.(check int) "incremented" 1 (Pmem.read nd.value))
    nodes;
  (* helping again must not re-apply anything *)
  Tracking.help node_ops sites d;
  Tracking.help node_ops sites d;
  Array.iter
    (fun nd -> Alcotest.(check int) "still 1" 1 (Pmem.read nd.value))
    nodes

let test_help_untags_in_cleanup () =
  let heap, nodes = fresh 2 in
  let d = incr_desc heap nodes [ 0; 1 ] in
  Tracking.help node_ops sites d;
  Array.iter
    (fun nd ->
      match Pmem.read nd.info with
      | Desc.Untagged d' ->
          Alcotest.(check bool) "untagged by d" true (Desc.same d d')
      | Desc.Clean | Desc.Tagged _ -> Alcotest.fail "expected Untagged")
    nodes

let test_blocked_tagging_backtracks () =
  let heap, nodes = fresh 2 in
  (* d1 gathers, then node 1 is changed under it by d2 *)
  let d1 = incr_desc heap nodes [ 0; 1 ] in
  let d2 = incr_desc heap nodes [ 1 ] in
  Tracking.help node_ops sites d2;
  (* d1's expected info for node 1 is stale: tagging must fail and
     backtrack, leaving node 0 untagged-by-d1 and d1 without a result *)
  Tracking.help node_ops sites d1;
  Alcotest.(check (option bool)) "d1 dead" None (Desc.result d1);
  Alcotest.(check int) "node0 unchanged" 0 (Pmem.read nodes.(0).value);
  Alcotest.(check int) "node1 incremented by d2 only" 1
    (Pmem.read nodes.(1).value);
  (match Pmem.read nodes.(0).info with
  | Desc.Untagged d when Desc.same d d1 -> ()
  | Desc.Clean -> () (* tag CAS may not even have landed *)
  | _ -> Alcotest.fail "node0 should be untagged after backtrack");
  (* a dead descriptor can never be resurrected *)
  Tracking.help node_ops sites d1;
  Alcotest.(check (option bool)) "still dead" None (Desc.result d1)

let test_concurrent_helpers_agree () =
  (* many helpers all help the same descriptor concurrently *)
  for seed = 0 to 19 do
    let heap, nodes = fresh 4 in
    let d = incr_desc heap nodes [ 0; 1; 2; 3 ] in
    (match
       Sim.run ~policy:`Random ~seed
         (Array.make 4 (fun (_ : int) -> Tracking.help node_ops sites d))
     with
    | Sim.All_done -> ()
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash");
    Alcotest.(check (option bool)) "result" (Some true) (Desc.result d);
    Array.iter
      (fun nd -> Alcotest.(check int) "exactly once" 1 (Pmem.read nd.value))
      nodes
  done

let test_help_crash_resume_any_phase () =
  (* crash Help at every step; resuming must complete with the effect
     applied exactly once *)
  for crash_at = 1 to 120 do
    let heap, nodes = fresh 3 in
    let d = incr_desc heap nodes [ 0; 1; 2 ] in
    (match
       Sim.run ~policy:`Random ~seed:crash_at ~crash_at
         [| (fun _ -> Tracking.help node_ops sites d) |]
     with
    | Sim.All_done | Sim.Crashed_at _ -> ());
    Pmem.crash ~rng:(Random.State.make [| crash_at |]) heap;
    (* the descriptor survives in NVMM only if it was persisted; here we
       simulate the recovery path helping it again after the crash *)
    match
      Sim.run [| (fun _ -> Tracking.help node_ops sites d) |]
    with
    | exception Pmem.Poisoned _ ->
        () (* descriptor was never persisted: nothing to recover *)
    | Sim.Crashed_at _ -> Alcotest.fail "unexpected crash"
    | Sim.All_done -> (
        match Desc.result d with
        | Some true ->
            Array.iter
              (fun nd ->
                Alcotest.(check int) "exactly once" 1 (Pmem.read nd.value))
              nodes
        | Some false -> Alcotest.fail "wrong response"
        | None ->
            Array.iter
              (fun nd ->
                Alcotest.(check int) "no effect" 0 (Pmem.read nd.value))
              nodes)
  done

let test_exec_read_only_requires_result () =
  let heap, nodes = fresh 1 in
  let handles = Tracking.make_handles heap ~threads:1 in
  let bad_attempt () =
    let d =
      Desc.make heap ~label:"bad"
        ~affect:[ (nodes.(0), Pmem.read nodes.(0).info) ]
        ~response:true ()
    in
    (* result NOT set: the engine must reject this read-only attempt *)
    Tracking.Ready { desc = d; read_only = true }
  in
  match
    Tracking.exec node_ops sites handles.(0) ~kind:`Readonly
      ~attempt:bad_attempt
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_exec_and_recover_roundtrip () =
  let heap, nodes = fresh 2 in
  let handles = Tracking.make_handles heap ~threads:1 in
  let attempt () =
    Tracking.Ready { desc = incr_desc heap nodes [ 0; 1 ]; read_only = false }
  in
  let r = Tracking.exec node_ops sites handles.(0) ~kind:`Update ~attempt in
  Alcotest.(check bool) "executed" true r;
  (* recovery right after completion must return the same response
     without re-applying (CP is still 1, RD points at the descriptor) *)
  let r' =
    Tracking.recover node_ops sites handles.(0) ~reinvoke:(fun () ->
        Alcotest.fail "must not re-invoke")
  in
  Alcotest.(check bool) "recovered same" true r';
  Array.iter
    (fun nd -> Alcotest.(check int) "applied once" 1 (Pmem.read nd.value))
    nodes

let test_recover_fresh_thread_reinvokes () =
  let heap, _ = fresh 1 in
  let handles = Tracking.make_handles heap ~threads:1 in
  let reinvoked = ref false in
  let r =
    Tracking.recover node_ops sites handles.(0) ~reinvoke:(fun () ->
        reinvoked := true;
        false)
  in
  Alcotest.(check bool) "reinvoked" true !reinvoked;
  Alcotest.(check bool) "response passed through" false r

let suite =
  [
    Alcotest.test_case "help applies updates exactly once" `Quick
      test_help_applies_once;
    Alcotest.test_case "cleanup untags" `Quick test_help_untags_in_cleanup;
    Alcotest.test_case "blocked tagging backtracks and kills" `Quick
      test_blocked_tagging_backtracks;
    Alcotest.test_case "concurrent helpers agree" `Quick
      test_concurrent_helpers_agree;
    Alcotest.test_case "help crash-resumes from any phase" `Quick
      test_help_crash_resume_any_phase;
    Alcotest.test_case "read-only attempt must preset result" `Quick
      test_exec_read_only_requires_result;
    Alcotest.test_case "exec/recover round-trip" `Quick
      test_exec_and_recover_roundtrip;
    Alcotest.test_case "fresh thread recovery re-invokes" `Quick
      test_recover_fresh_thread_reinvokes;
  ]
