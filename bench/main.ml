(* Benchmark harness.

   Two parts:

   1. A Bechamel suite with one micro-benchmark per paper figure, each
      timing the regeneration of one representative data point of that
      figure — the real wall-clock cost of the simulator, useful for
      tracking regressions in this repository itself.

   2. The full reproduction: every figure of §5 regenerated on the
      simulated multicore + NVMM and printed as series tables, plus the
      measured per-code-line pwb classification behind Figures 3e/4e.

   Flags: --quick (coarser sweep), --skip-bechamel, --skip-figures. *)

open Bechamel
open Toolkit

let point factory mix threads () =
  ignore
    (Runner.measure ~duration_ns:20_000. ~seed:1 factory ~threads
       (Workload.default mix)
      : Runner.point)

let without kinds f () =
  List.iter (fun k -> Pstats.set_kind_enabled k false) kinds;
  f ();
  Pstats.set_all_enabled true

let crash_campaign factory () =
  let cfg =
    Crashes.
      {
        factory;
        threads = 4;
        ops_per_thread = 8;
        workload =
          { Workload.(default update_intensive) with key_range = 32; prefill_n = 16 };
        max_crashes = 2;
      }
  in
  match Crashes.run_once cfg ~seed:1 with
  | Ok _ -> ()
  | Error m -> failwith m

let bechamel_suite =
  let mk name f = Test.make ~name (Staged.stage f) in
  let ri = Workload.read_intensive and ui = Workload.update_intensive in
  Test.make_grouped ~name:"figures"
    [
      mk "fig3a-throughput" (point Set_intf.tracking ri 8);
      mk "fig3b-psync-count" (point Set_intf.capsules_opt ri 8);
      mk "fig3c-no-psync"
        (without Pstats.[ Psync; Pfence ] (point Set_intf.tracking ri 8));
      mk "fig3d-pwb-count" (point Set_intf.capsules ri 4);
      mk "fig3e-categorize" (point Set_intf.capsules_opt ri 16);
      mk "fig3f-removal"
        (without Pstats.[ Pwb ] (point Set_intf.tracking ri 8));
      mk "fig4a-throughput" (point Set_intf.tracking ui 8);
      mk "fig4b-psync-count" (point Set_intf.capsules_opt ui 8);
      mk "fig4c-no-psync"
        (without Pstats.[ Psync; Pfence ] (point Set_intf.capsules_opt ui 8));
      mk "fig4d-pwb-count" (point Set_intf.romulus ui 4);
      mk "fig4e-categorize" (point Set_intf.redo ui 8);
      mk "fig4f-removal"
        (without Pstats.[ Pwb ] (point Set_intf.capsules_opt ui 8));
      mk "fig5-tracking-categories" (point Set_intf.tracking ui 16);
      mk "fig6-capsopt-categories" (point Set_intf.capsules_opt ui 16);
      mk "detectability-crash-campaign"
        (crash_campaign Set_intf.tracking);
    ]

let run_bechamel () =
  Printf.printf "== Bechamel micro-benchmarks (one per paper figure) ==\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances bechamel_suite in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let est =
          match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, est) -> Printf.printf "  %-42s %14.0f ns/run\n%!" name est)
    (List.sort compare rows)

(* ---- ablations and extensions beyond the paper's figures -------------- *)

let thr ?prepare factory ~threads ~duration mix_cfg =
  Pstats.set_all_enabled true;
  let p = Runner.measure ~duration_ns:duration ?prepare factory ~threads mix_cfg in
  Pstats.set_all_enabled true;
  p.Runner.throughput_mops

let table header rows =
  Printf.printf "\n%s\n" header;
  List.iter
    (fun (label, cells) ->
      Printf.printf "  %-28s %s\n" label
        (String.concat " "
           (List.map (fun v -> Printf.sprintf "%8.3f" v) cells)))
    rows;
  print_newline ()

let run_extras ~quick =
  let duration = if quick then 60_000. else 150_000. in
  let sweep = if quick then [ 1; 8; 32 ] else [ 1; 4; 8; 16; 32; 48; 60 ] in
  let ri = Workload.default Workload.read_intensive in
  let ui = Workload.default Workload.update_intensive in
  Printf.printf
    "\n== Ablations and extensions (threads: %s) ==\n%!"
    (String.concat "," (List.map string_of_int sweep));

  (* Ablation 1: the read-only optimization (red code of Algorithm 1) *)
  table "[ablation] read-only optimization, read-intensive (Mops/s)"
    [
      ( "tracking (optimized)",
        List.map (fun n -> thr Set_intf.tracking ~threads:n ~duration ri) sweep );
      ( "tracking (no optimization)",
        List.map
          (fun n -> thr Set_intf.tracking_no_ro_opt ~threads:n ~duration ri)
          sweep );
    ];

  (* Ablation 2: the Intel CAS store-buffer drain — with it, removing all
     psyncs barely matters (the paper's finding); without it, it does. *)
  let nosync_gain drains n =
    Cost.with_table
      (fun c -> c.Cost.cas_drains_wb <- drains)
      (fun () ->
        let full = thr Set_intf.tracking ~threads:n ~duration ui in
        let nos =
          thr
            ~prepare:(fun () ->
              Pstats.set_kind_enabled Pstats.Psync false;
              Pstats.set_kind_enabled Pstats.Pfence false)
            Set_intf.tracking ~threads:n ~duration ui
        in
        nos /. full)
  in
  table
    "[ablation] throughput gain from removing all psyncs (ratio; 1.0 = \
     psyncs free)"
    [
      ("with CAS drain (Intel)", List.map (nosync_gain true) sweep);
      ("without CAS drain", List.map (nosync_gain false) sweep);
    ];

  (* Ablation 3: the foreign-dirty-line flush penalty drives the
     Tracking-vs-Capsules-Opt crossover. *)
  let ratio steal n =
    Cost.with_table
      (fun c -> c.Cost.pwb_steal <- steal)
      (fun () ->
        thr Set_intf.tracking ~threads:n ~duration ui
        /. thr Set_intf.capsules_opt ~threads:n ~duration ui)
  in
  table
    "[ablation] tracking/capsules-opt throughput ratio vs steal penalty, \
     update-intensive"
    (List.map
       (fun steal ->
         (Printf.sprintf "pwb_steal = %.0f ns" steal,
          List.map (ratio steal) sweep))
       [ 20.; 400.; 1600. ]);

  (* Extension 1: other key ranges (paper: "other ranges exhibit the same
     trends"). *)
  List.iter
    (fun range ->
      let wl = { ui with Workload.key_range = range; prefill_n = range / 2 } in
      table
        (Printf.sprintf
           "[extension] key range [1,%d], update-intensive (Mops/s)" range)
        [
          ( "tracking",
            List.map (fun n -> thr Set_intf.tracking ~threads:n ~duration wl) sweep );
          ( "capsules-opt",
            List.map
              (fun n -> thr Set_intf.capsules_opt ~threads:n ~duration wl)
              sweep );
        ])
    [ 100; 2000 ];

  (* Extension 2: other operation mixes (paper: "results were similar"). *)
  table "[extension] tracking across find percentages at 32 threads (Mops/s)"
    [
      ( "finds 10/30/50/70/90 %",
        List.map
          (fun pct ->
            thr Set_intf.tracking ~threads:32 ~duration
              (Workload.default (Workload.mix_of_find_pct pct)))
          [ 10; 30; 50; 70; 90 ] );
    ];

  (* Extension 3: the recoverable BST (§6), which the paper derives but
     does not benchmark. *)
  table "[extension] recoverable BST vs list (tracking), update-intensive"
    [
      ( "tracking list",
        List.map (fun n -> thr Set_intf.tracking ~threads:n ~duration ui) sweep );
      ( "tracking bst",
        List.map (fun n -> thr Set_intf.tracking_bst ~threads:n ~duration ui) sweep );
    ];

  (* Extension 4: the Tracking-derived recoverable queue (not in the
     paper; demonstrates the transformation's generality). *)
  let queue_rate n =
    Pmem.reset_pending ();
    let heap = Pmem.heap ~track_for_crash:false () in
    let q = Rqueue.create heap ~threads:n in
    for i = 0 to 63 do
      Rqueue.enqueue q i
    done;
    Pmem.reset_pending ();
    let ops = ref 0 in
    let body (_ : int) =
      let rng = Random.State.make [| Sim.tid (); 3 |] in
      let rec go () =
        if Sim.now () < duration then begin
          if Random.State.bool rng then Rqueue.enqueue q 1
          else ignore (Rqueue.dequeue q : int option);
          incr ops;
          go ()
        end
      in
      go ()
    in
    (match Sim.run ~policy:`Perf (Array.make n body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at step ->
        failwith
          (Printf.sprintf
             "queue bench: crash injected at step %d, but throughput runs \
              configure no crash point"
             step));
    float_of_int !ops /. duration *. 1000.
  in
  let stack_rate n =
    Pmem.reset_pending ();
    let heap = Pmem.heap ~track_for_crash:false () in
    let st = Rstack.create heap ~threads:n in
    for i = 0 to 63 do
      Rstack.push st i
    done;
    Pmem.reset_pending ();
    let ops = ref 0 in
    let body (_ : int) =
      let rng = Random.State.make [| Sim.tid (); 5 |] in
      let rec go () =
        if Sim.now () < duration then begin
          if Random.State.bool rng then Rstack.push st 1
          else ignore (Rstack.pop st : int option);
          incr ops;
          go ()
        end
      in
      go ()
    in
    (match Sim.run ~policy:`Perf (Array.make n body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at step ->
        failwith
          (Printf.sprintf
             "stack bench: crash injected at step %d, but throughput runs \
              configure no crash point"
             step));
    float_of_int !ops /. duration *. 1000.
  in
  table "[extension] recoverable queue and stack, 50/50 mixes (Mops/s)"
    [
      ("tracking queue", List.map queue_rate sweep);
      ("tracking stack", List.map stack_rate sweep);
    ];

  (* Extension 5: recoverable exchanger rendezvous rate. *)
  let exchanger_rate n =
    Pmem.reset_pending ();
    let heap = Pmem.heap ~track_for_crash:false () in
    let x = Rexchanger.create heap ~threads:n in
    let swaps = ref 0 in
    let body (_ : int) =
      let rec go () =
        if Sim.now () < duration then begin
          (match Rexchanger.exchange ~spins:200 x (Sim.tid ()) with
          | Some _ -> incr swaps
          | None -> ());
          go ()
        end
      in
      go ()
    in
    (match Sim.run ~policy:`Perf (Array.make n body) with
    | Sim.All_done -> ()
    | Sim.Crashed_at step ->
        failwith
          (Printf.sprintf
             "exchanger bench: crash injected at step %d, but throughput \
              runs configure no crash point"
             step));
    float_of_int !swaps /. duration *. 1000.
  in
  table "[extension] exchanger rendezvous rate (Mops/s)"
    [ ("exchanges", List.map exchanger_rate (List.filter (fun n -> n >= 2) sweep)) ];

  (* Extension 6: operation latency profiles, from the metrics layer.
     Virtual nanoseconds; throughput numbers above are unaffected because
     metrics charge no simulator cost. *)
  let latency factory =
    Metrics.enable ();
    Fun.protect ~finally:Metrics.disable (fun () ->
        let p =
          Runner.measure ~duration_ns:duration ~seed:1 ~prepare:Metrics.enable
            factory ~threads:16 ui
        in
        [ p.Runner.lat_p50_ns; p.Runner.lat_p90_ns; p.Runner.lat_p99_ns;
          p.Runner.lat_max_ns ])
  in
  table
    "[extension] operation latency at 16 threads, update-intensive (virtual \
     ns: p50 p90 p99 max)"
    [
      ("tracking", latency Set_intf.tracking);
      ("capsules-opt", latency Set_intf.capsules_opt);
    ];

  (* Extension 7: causal what-if attribution — for each impact category,
     the exact throughput sensitivity to its cost under the replayed
     baseline schedule, plus the headroom with that cost at zero. *)
  let causal_rows factory =
    let cfg =
      let base = Causal.quick_config factory Workload.update_intensive in
      {
        base with
        Causal.sites = false;
        mechanisms = [];
        threads = (if quick then 8 else 16);
        ops_per_thread = (if quick then 120 else 250);
      }
    in
    let p = Causal.profile cfg in
    List.filter_map
      (fun (r : Causal.row) ->
        match r.Causal.target with
        | Causal.Category c ->
            Some
              ( Printf.sprintf "%s pwb[%s]" factory.Set_intf.fname
                  (Format.asprintf "%a" Pstats.pp_category c),
                [ r.Causal.sensitivity; 100. *. r.Causal.headroom ] )
        | _ -> None)
      p.Causal.rows
  in
  table
    "[extension] causal sensitivity per pwb category, update-intensive \
     (d(ns/op)/d(factor), headroom %)"
    (causal_rows Set_intf.tracking @ causal_rows Set_intf.capsules_opt);

  (* Extension 8: the sharded store service (Store) — throughput scaling
     with shard count at a fixed client population.  Each shard is an
     independent recoverable structure on its own heap, so adding shards
     splits both the contention and the persistence traffic. *)
  let shard_sweep = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let store_clients = if quick then 4 else 8 in
  let store_rate factory shards =
    let cfg =
      {
        (Store.default_config factory) with
        Store.shards;
        clients = store_clients;
        ops_per_client = (if quick then 100 else 250);
        workload = { ui with Workload.key_range = 256; prefill_n = 128 };
      }
    in
    match Store.run cfg with
    | Ok r -> r.Slo.throughput_mops
    | Error msg -> failwith ("store bench: " ^ msg)
  in
  table
    (Printf.sprintf
       "[extension] store service: closed-loop throughput vs shard count \
        (%d clients; shards %s; Mops/s)"
       store_clients
       (String.concat "," (List.map string_of_int shard_sweep)))
    [
      ("tracking shards", List.map (store_rate Set_intf.tracking) shard_sweep);
      ( "capsules-opt shards",
        List.map (store_rate Set_intf.capsules_opt) shard_sweep );
    ];

  (* Extension 9: two detectability frameworks over the same structure —
     the paper's Tracking transformation against the Memento-composed
     List-mmt and the combining Comb-mmt.  Same mix, same sweep, so the
     per-framework overhead (helping + checkpoints vs phase tracking)
     reads straight across the rows. *)
  table "[extension] detectability frameworks, update-intensive (Mops/s)"
    [
      ( "tracking",
        List.map (fun n -> thr Set_intf.tracking ~threads:n ~duration ui) sweep );
      ( "memento-list",
        List.map
          (fun n -> thr Set_intf.memento_list ~threads:n ~duration ui)
          sweep );
      ( "memento-comb",
        List.map
          (fun n -> thr Set_intf.memento_comb ~threads:n ~duration ui)
          sweep );
    ]

(* ---- wall-clock campaign suite (-j scaling) ---------------------------- *)

(* A fixed trio of campaigns — bounded-exhaustive explore, quick causal
   profile, store crash-point sweep — timed in real (host) seconds at
   each requested -j and appended to BENCH_wallclock.json.  Every
   campaign's *output* is byte-identical across -j values (the
   test_parallel suite locks this), so the records measure pure driver
   scaling.  Methodology: EXPERIMENTS.md, "Wall-clock methodology". *)

let wallclock_explore ~jobs () =
  let cfg =
    Explore.
      {
        campaign =
          Crashes.
            {
              factory = Set_intf.tracking;
              threads = 2;
              ops_per_thread = 2;
              workload =
                {
                  Workload.(default update_intensive) with
                  key_range = 8;
                  prefill_n = 2;
                };
              max_crashes = 1;
            };
        seed = 0;
        preemptions = 1;
        crashes = 1;
        wb_width = 1;
        max_execs = 0;
      }
  in
  let o = Explore.run ~stop_on_failure:false ~jobs cfg in
  if not o.Explore.stats.Explore.complete then
    failwith "wallclock explore: tree not exhausted";
  Printf.sprintf "%d execs" o.Explore.stats.Explore.executions

let wallclock_causal ~jobs () =
  let cfg = Causal.quick_config Set_intf.tracking Workload.update_intensive in
  let p = Causal.profile ~jobs cfg in
  Printf.sprintf "%d rows" (List.length p.Causal.rows)

let wallclock_store ~jobs () =
  let cfg =
    {
      (Store.default_config Set_intf.tracking) with
      Store.shards = 3;
      clients = 3;
      ops_per_client = 60;
      workload =
        {
          Workload.(default update_intensive) with
          key_range = 64;
          prefill_n = 32;
        };
      seed = 1;
    }
  in
  match Store.explore ~dispatch_budget:40 ~jobs cfg with
  | Ok st -> Printf.sprintf "%d execs" st.Store.ex_executions
  | Error msg -> failwith ("wallclock store: " ^ msg)

(* Serve-with-migration sweep: the elastic store's crash-point
   exploration over a live 2-shard split — source, destination and the
   correlated both-endpoints campaign, every point re-proving the
   every-key-in-exactly-one-shard invariant. *)
let wallclock_migrate ~jobs () =
  let cfg =
    {
      (Store.default_config Set_intf.tracking) with
      Store.shards = 2;
      clients = 2;
      ops_per_client = 16;
      workload =
        {
          Workload.(default update_intensive) with
          key_range = 16;
          prefill_n = 8;
        };
      migrate = Some { Store.msrc = 0; m_after = 3; m_broken = false };
      seed = 1;
    }
  in
  match Store.explore ~dispatch_budget:100 ~jobs cfg with
  | Ok st ->
      if st.Store.ex_failures > 0 then
        failwith "wallclock migrate: sweep found failures"
      else Printf.sprintf "%d execs" st.Store.ex_executions
  | Error msg -> failwith ("wallclock migrate: " ^ msg)

let timed f =
  let t0 = Unix.gettimeofday () in
  let note = f () in
  (Unix.gettimeofday () -. t0, note)

(* Append an entry to the JSON array in [path], creating it if absent.
   The file stays a valid JSON array after every append. *)
let append_json_entry path entry =
  let existing =
    if Sys.file_exists path then
      In_channel.with_open_text path In_channel.input_all
    else ""
  in
  let trimmed = String.trim existing in
  Out_channel.with_open_text path (fun oc ->
      if trimmed = "" || trimmed = "[]" then
        Printf.fprintf oc "[\n%s\n]\n" entry
      else begin
        let upto =
          match String.rindex_opt trimmed ']' with
          | Some i -> String.trim (String.sub trimmed 0 i)
          | None -> failwith (path ^ ": not a JSON array")
        in
        Printf.fprintf oc "%s,\n%s\n]\n" upto entry
      end)

let run_wallclock ~jobs_list ~out =
  Printf.printf "== Wall-clock campaign suite ==\n%!";
  let cores = Domain.recommended_domain_count () in
  let date =
    let t = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
      t.Unix.tm_sec
  in
  List.iter
    (fun jobs ->
      Printf.printf "  -j %d ...\n%!" jobs;
      let explore_s, explore_note = timed (wallclock_explore ~jobs) in
      Printf.printf "    explore: %7.3f s (%s)\n%!" explore_s explore_note;
      let causal_s, causal_note = timed (wallclock_causal ~jobs) in
      Printf.printf "    causal:  %7.3f s (%s)\n%!" causal_s causal_note;
      let store_s, store_note = timed (wallclock_store ~jobs) in
      Printf.printf "    store:   %7.3f s (%s)\n%!" store_s store_note;
      let migrate_s, migrate_note = timed (wallclock_migrate ~jobs) in
      Printf.printf "    migrate: %7.3f s (%s)\n%!" migrate_s migrate_note;
      let total = explore_s +. causal_s +. store_s +. migrate_s in
      Printf.printf "    total:   %7.3f s\n%!" total;
      let entry =
        Printf.sprintf
          "  {\"date\": \"%s\", \"cores\": %d, \"ocaml\": \"%s\", \"jobs\": \
           %d,\n\
           \   \"explore_s\": %.3f, \"causal_s\": %.3f, \"store_s\": %.3f, \
           \"migrate_s\": %.3f, \"total_s\": %.3f}"
          date cores Sys.ocaml_version jobs explore_s causal_s store_s
          migrate_s total
      in
      append_json_entry out entry;
      Printf.printf "    appended to %s\n%!" out)
    jobs_list

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let skip_bechamel = List.mem "--skip-bechamel" args in
  let skip_figures = List.mem "--skip-figures" args in
  let skip_extras = List.mem "--skip-extras" args in
  let after_flag name =
    let rec find = function
      | f :: v :: _ when f = name -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if List.mem "--wallclock" args then begin
    let jobs_list =
      match after_flag "-j" with
      | None -> [ 1; 2; 4 ]
      | Some s ->
          List.map
            (fun x ->
              match int_of_string_opt (String.trim x) with
              | Some n when n >= 1 -> n
              | _ -> failwith ("bad -j list element: " ^ x))
            (String.split_on_char ',' s)
    in
    let out =
      Option.value (after_flag "--out") ~default:"BENCH_wallclock.json"
    in
    run_wallclock ~jobs_list ~out
  end
  else begin
    if not skip_bechamel then run_bechamel ();
    if not skip_figures then begin
      let cfg =
        if quick then Figures.quick_config
        else { Figures.default_config with duration_ns = 200_000.; seeds = 2 }
      in
      Printf.printf "\n== Paper figures regenerated on the simulator ==\n%!";
      Report.print_all cfg
    end;
    if not skip_extras then run_extras ~quick
  end
