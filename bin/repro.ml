(* Command-line driver for the reproduction: regenerate figures, run
   crash-injection campaigns, sweep throughput, classify pwb sites. *)

open Cmdliner

let algo_conv =
  let parse s =
    match Set_intf.by_name s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  let print ppf f = Format.pp_print_string ppf f.Set_intf.fname in
  Arg.conv (parse, print)

let mix_conv =
  let parse = function
    | "read" | "read-intensive" -> Ok Workload.read_intensive
    | "update" | "update-intensive" -> Ok Workload.update_intensive
    | s -> (
        match int_of_string_opt s with
        | Some p when p >= 0 && p <= 100 -> Ok (Workload.mix_of_find_pct p)
        | _ -> Error (`Msg "expected read | update | <find-%>"))
  in
  let print ppf m = Format.pp_print_string ppf m.Workload.name in
  Arg.conv (parse, print)

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Coarse sweep, single seed.")

let algo =
  Arg.(
    value
    & opt algo_conv Set_intf.tracking
    & info [ "algo"; "a" ] ~docv:"ALGO" ~doc:"Implementation to drive.")

let mix =
  Arg.(
    value
    & opt mix_conv Workload.update_intensive
    & info [ "mix"; "m" ] ~docv:"MIX" ~doc:"Operation mix: read | update | <find-%>.")

let cfg_of_quick quick =
  if quick then Figures.quick_config
  else { Figures.default_config with duration_ns = 200_000.; seeds = 2 }

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the campaign across $(docv) domains (0 = one per core). \
           Reported results and repro files are deterministic and \
           byte-identical to -j 1; worker domains are not traced.")

let resolve_jobs j = if j <= 0 then Parallel.default_jobs () else j

(* -- crash forensics helpers ---------------------------------------------- *)

(* Postmortems are printed through the same formatter as the violation
   message so the two can never interleave out of order. *)
let pp_postmortem pm = Format.printf "@.%s" (Forensics.render_text pm)

let pp_no_postmortem reason = Format.printf "@.(no postmortem: %s)@." reason

(* [Crashes.run_campaign] failures carry a "seed N: " prefix; pull the
   failing seed back out so the campaign can be re-run under the
   forensic recorder. *)
let seed_of_campaign_failure msg =
  let n = String.length msg in
  if n > 5 && String.sub msg 0 5 = "seed " then begin
    let i = ref 5 and v = ref 0 and seen = ref false in
    while !i < n && msg.[!i] >= '0' && msg.[!i] <= '9' do
      v := (10 * !v) + (Char.code msg.[!i] - Char.code '0');
      seen := true;
      incr i
    done;
    if !seen && !i < n && msg.[!i] = ':' then Some !v else None
  end
  else None

(* Attach a postmortem to a campaign failure by re-running the failing
   seed under the forensic recorder (seeded runs are deterministic, so
   the free re-run reproduces the recorded failure). *)
let campaign_postmortem cfg ~seed =
  match Crashes.forensic_run cfg ~seed with
  | Error _, _, Some pm -> pp_postmortem pm
  | Ok _, _, _ -> pp_no_postmortem "the forensic re-run passed"
  | Error _, _, None -> pp_no_postmortem "forensic re-run produced no report"

(* -- figures ------------------------------------------------------------ *)

let figure_ids =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FIG"
        ~doc:"Figure ids (3a..4f, 5r, 5u, 6r, 6u, 7r, 7u); all if none.")

let figures_cmd =
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write one CSV per figure into $(docv).")
  in
  let run quick ids csv =
    let cfg = cfg_of_quick quick in
    (if ids = [] then Report.print_all cfg
     else
       List.iter
         (fun f ->
           if List.mem f.Figures.id ids then
             Format.printf "%a" Report.pp_figure f)
         (Figures.all cfg));
    match csv with
    | Some dir -> Report.write_csv_dir ~dir cfg
    | None -> ()
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's figures (§5).")
    Term.(const run $ quick $ figure_ids $ csv)

(* -- sweep --------------------------------------------------------------- *)

let sweep_cmd =
  let threads =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16; 24; 32; 48; 60 ]
      & info [ "threads"; "t" ] ~docv:"N,N,..." ~doc:"Thread counts.")
  in
  let duration =
    Arg.(
      value & opt float 200_000.
      & info [ "duration-ns" ] ~doc:"Virtual nanoseconds per point.")
  in
  let run algo mix threads duration =
    List.iter
      (fun n ->
        let p =
          Runner.measure ~duration_ns:duration algo ~threads:n
            (Workload.default mix)
        in
        Format.printf "%a@." Runner.pp_point p)
      threads
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Throughput sweep for one implementation.")
    Term.(const run $ algo $ mix $ threads $ duration)

(* -- crash campaigns ------------------------------------------------------ *)

let crash_cmd =
  let seeds =
    Arg.(value & opt int 100 & info [ "seeds" ] ~doc:"Number of seeded runs.")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let ops =
    Arg.(value & opt int 15 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let crashes =
    Arg.(value & opt int 3 & info [ "crashes" ] ~doc:"Max crashes per run.")
  in
  let key_range =
    Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key range size.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL event trace of the whole campaign to $(docv).")
  in
  let repro_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"On failure, save a replayable repro to $(docv).")
  in
  let run algo mix seeds threads ops crashes key_range trace repro_file =
    if algo.Set_intf.fname = "harris" then begin
      Format.printf "harris is volatile: it cannot recover from crashes@.";
      exit 1
    end;
    let cfg =
      Crashes.
        {
          factory = algo;
          threads;
          ops_per_thread = ops;
          workload =
            {
              (Workload.default mix) with
              key_range;
              prefill_n = key_range / 2;
            };
          max_crashes = crashes;
        }
    in
    let campaign () =
      Crashes.run_campaign ?repro_file cfg ~seeds:(List.init seeds Fun.id)
    in
    let result =
      match trace with Some p -> Trace.with_file p campaign | None -> campaign ()
    in
    match result with
    | Ok (n, o) ->
        Format.printf
          "%s: %d runs passed — %d operations, %d recovered through crashes, \
           %d crashes injected@."
          algo.Set_intf.fname n o.Crashes.completed_ops o.Crashes.recovered_ops
          o.Crashes.crashes
    | Error msg ->
        Format.printf "DETECTABILITY VIOLATION — %s@." msg;
        (match repro_file with
        | Some p -> Format.printf "repro saved to %s@." p
        | None -> ());
        (match seed_of_campaign_failure msg with
        | Some seed -> campaign_postmortem cfg ~seed
        | None -> pp_no_postmortem "failing seed not found in the message");
        exit 1
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Crash-injection campaign with detectability checking.")
    Term.(
      const run $ algo $ mix $ seeds $ threads $ ops $ crashes $ key_range
      $ trace $ repro_file)

(* -- explore -------------------------------------------------------------- *)

let explore_cmd =
  let threads =
    Arg.(value & opt int 2 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let ops =
    Arg.(value & opt int 1 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let key_range =
    Arg.(value & opt int 8 & info [ "keys" ] ~doc:"Key range size.")
  in
  let prefill =
    Arg.(value & opt int 4 & info [ "prefill" ] ~doc:"Keys inserted before the run.")
  in
  let preemptions =
    Arg.(
      value & opt int 2
      & info [ "preemptions" ]
          ~doc:"CHESS preemption bound: max preemptive context switches \
                explored per execution.")
  in
  let crashes =
    Arg.(
      value & opt int 1
      & info [ "crashes" ] ~doc:"Max crashes injected per execution.")
  in
  let wb =
    Arg.(
      value & opt int 2
      & info [ "wb" ]
          ~doc:"Write-back sweep width: prefix depths tried per crash, \
                besides drop-all and complete-all.")
  in
  let max_execs =
    Arg.(
      value & opt int 100_000
      & info [ "max-execs" ] ~doc:"Execution budget; 0 = run until exhausted.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Workload seed.")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going" ]
          ~doc:"Keep exploring after the first failure (count them all).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL event trace of the exploration to $(docv).")
  in
  let repro_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"On failure, save a replayable repro to $(docv).")
  in
  let run algo mix threads ops key_range prefill preemptions crashes wb
      max_execs seed keep_going trace repro_file jobs =
    if algo.Set_intf.fname = "harris" then begin
      Format.printf "harris is volatile: it cannot recover from crashes@.";
      exit 1
    end;
    let jobs = resolve_jobs jobs in
    if jobs > 1 && trace <> None then
      Format.eprintf
        "note: -j %d traces only the calling domain (discovery execution); \
         worker-domain executions are not traced@."
        jobs;
    let cfg =
      Explore.
        {
          campaign =
            Crashes.
              {
                factory = algo;
                threads;
                ops_per_thread = ops;
                workload =
                  {
                    (Workload.default mix) with
                    key_range;
                    prefill_n = prefill;
                  };
                max_crashes = max crashes 1;
              };
          seed;
          preemptions;
          crashes;
          wb_width = wb;
          max_execs;
        }
    in
    let go () =
      Explore.run ~stop_on_failure:(not keep_going)
        ~progress:Report.explore_progress ~jobs cfg
    in
    let o = match trace with Some p -> Trace.with_file p go | None -> go () in
    Format.printf "%a" Report.pp_explore o.Explore.stats;
    match o.Explore.failure with
    | None -> ()
    | Some r ->
        Format.printf "DETECTABILITY VIOLATION — %s@." r.Repro.error;
        (match repro_file with
        | Some p ->
            Repro.save p r;
            Format.printf "repro saved to %s@." p
        | None -> ());
        (match Crashes.explain r with
        | Ok pm -> pp_postmortem pm
        | Error e -> pp_no_postmortem e);
        exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded exhaustive exploration: enumerate every schedule (up to a \
          preemption bound), crash point and write-back subset of a small \
          campaign, checking detectability on each execution.")
    Term.(
      const run $ algo $ mix $ threads $ ops $ key_range $ prefill
      $ preemptions $ crashes $ wb $ max_execs $ seed $ keep_going $ trace
      $ repro_file $ jobs_arg)

(* -- replay --------------------------------------------------------------- *)

let replay_run file do_shrink any_error out trace =
  match Repro.load file with
  | Error msg ->
      Format.printf "cannot load %s: %s@." file msg;
      exit 2
  | Ok r ->
      Format.printf "%a@." Repro.pp r;
      let r =
        if not do_shrink then r
        else begin
          let r' = Crashes.shrink ~match_error:(not any_error) r in
          Format.printf "shrunk to: threads=%d ops/thread=%d rounds=%d@."
            r'.Repro.threads r'.Repro.ops_per_thread
            (List.length r'.Repro.rounds);
          r'
        end
      in
      (match out with
      | Some p ->
          Repro.save p r;
          Format.printf "wrote %s@." p
      | None -> ());
      let go () = Crashes.replay r in
      let result =
        match trace with Some p -> Trace.with_file p go | None -> go ()
      in
      (match result with
      | Error msg when String.equal msg r.Repro.error ->
          Format.printf "reproduced: %s@." msg
      | Error msg ->
          Format.printf "reproduced a DIFFERENT failure: %s@." msg;
          Format.printf "(recorded: %s)@." r.Repro.error;
          exit 1
      | Ok () ->
          Format.printf "did NOT reproduce — the replay passed@.";
          exit 1)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Repro file written by the crash command.")
  in
  let shrinkf =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Greedily minimize the repro (fewer threads, fewer ops, \
                earlier crash) before replaying.")
  in
  let any_error =
    Arg.(
      value & flag
      & info [ "any-error" ]
          ~doc:"While shrinking, accept probe runs that fail with a \
                different error than the recorded one (default: only \
                matching failures are adopted).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the (possibly shrunk) repro back out to $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL event trace of the replay to $(docv).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically replay (and optionally shrink) a saved \
          failing-campaign repro.")
    Term.(const replay_run $ file $ shrinkf $ any_error $ out $ trace)

(* -- explain (crash forensics) -------------------------------------------- *)

let explain_run file json _jobs =
  let first_line =
    match In_channel.with_open_text file In_channel.input_line with
    | Some l -> l
    | None -> ""
    | exception Sys_error msg ->
        Format.printf "cannot read %s: %s@." file msg;
        exit 2
  in
  let result =
    (* campaign and serve repros share the CLI entry point; the magic
       line says which replayer owns the file *)
    if String.equal first_line Store_repro.magic then
      match Store_repro.load file with
      | Error msg -> `Load msg
      | Ok r -> (
          match Store_repro.explain r with
          | Ok pm -> `Postmortem pm
          | Error msg -> `Explain msg)
    else
      match Repro.load file with
      | Error msg -> `Load msg
      | Ok r -> (
          match Crashes.explain r with
          | Ok pm -> `Postmortem pm
          | Error msg -> `Explain msg)
  in
  match result with
  | `Load msg ->
      Format.printf "cannot load %s: %s@." file msg;
      exit 2
  | `Explain msg ->
      Format.printf "cannot explain %s: %s@." file msg;
      exit 1
  | `Postmortem pm ->
      if json then print_endline (Forensics.render_json pm)
      else print_string (Forensics.render_text pm)

let explain_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Repro file (campaign or serve) written on a failure.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Render the postmortem as one JSON object instead of text.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Crash-forensics postmortem for a saved failing repro: replay it \
          under the forensic recorder and report each crash's write-back \
          fates (persisted vs dropped, with the resolution that decided \
          them), the durable-vs-volatile state diff naming every \
          never-persisted cache line and the site that wrote it, the \
          culprit analysis (including registered-but-disabled persist \
          sites), and the lineage of the operations touching the failure.  \
          Output is deterministic: byte-identical across replays and -j \
          settings.")
    Term.(const explain_run $ file $ json $ jobs_arg)

(* -- soak ----------------------------------------------------------------- *)

let soak_cmd =
  let rounds =
    Arg.(
      value & opt int 0
      & info [ "rounds" ] ~doc:"Campaign rounds; 0 = run until interrupted.")
  in
  let threads =
    Arg.(value & opt int 6 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let run algo mix rounds threads =
    if algo.Set_intf.fname = "harris" then begin
      Format.printf "harris is volatile: it cannot recover from crashes@.";
      exit 1
    end;
    let cfg =
      Crashes.
        {
          factory = algo;
          threads;
          ops_per_thread = 20;
          workload =
            { (Workload.default mix) with key_range = 64; prefill_n = 32 };
          max_crashes = 4;
        }
    in
    let round = ref 0 in
    let continue () = rounds = 0 || !round < rounds in
    while continue () do
      incr round;
      let seeds = List.init 50 (fun i -> (!round * 1000) + i) in
      match Crashes.run_campaign cfg ~seeds with
      | Ok (n, o) ->
          Format.printf
            "round %d: %d runs ok — %d ops, %d recovered, %d crashes@."
            !round n o.Crashes.completed_ops o.Crashes.recovered_ops
            o.Crashes.crashes
      | Error msg ->
          Format.printf "round %d: DETECTABILITY VIOLATION — %s@." !round msg;
          (match seed_of_campaign_failure msg with
          | Some seed -> campaign_postmortem cfg ~seed
          | None -> pp_no_postmortem "failing seed not found in the message");
          exit 1
    done
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run crash-injection campaigns indefinitely (or for --rounds),           50 fresh seeds per round.")
    Term.(const run $ algo $ mix $ rounds $ threads)

(* -- stats ---------------------------------------------------------------- *)

let campaign_cfg algo mix threads ops crashes key_range =
  Crashes.
    {
      factory = algo;
      threads;
      ops_per_thread = ops;
      workload =
        { (Workload.default mix) with key_range; prefill_n = key_range / 2 };
      max_crashes = crashes;
    }

let stats_cmd =
  let threads =
    Arg.(value & opt int 4 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let crashes =
    Arg.(value & opt int 2 & info [ "crashes" ] ~doc:"Max crashes injected.")
  in
  let key_range =
    Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key range size.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed.") in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~doc:"Contended cache lines to report.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON to $(docv) (\"-\" = stdout).")
  in
  let run algo mix threads ops crashes key_range seed top json =
    if algo.Set_intf.fname = "harris" && crashes > 0 then begin
      Format.printf "harris is volatile: it cannot recover from crashes@.";
      exit 1
    end;
    let cfg = campaign_cfg algo mix threads ops crashes key_range in
    Metrics.enable ();
    let result =
      Fun.protect
        ~finally:(fun () -> Metrics.disable ())
        (fun () ->
          let r = Crashes.run_once cfg ~seed in
          (* --json - owns stdout: the human report would corrupt the
             stream for anything piping the output into a JSON parser. *)
          if json <> Some "-" then begin
            Format.printf
              "%s: %d threads × %d ops, mix %s, seed %d@.@."
              algo.Set_intf.fname threads ops mix.Workload.name seed;
            Report.pp_metrics ~top Format.std_formatter ()
          end;
          (match json with
          | Some "-" -> print_endline (Report.metrics_json ~top ())
          | Some p ->
              Out_channel.with_open_text p (fun oc ->
                  Out_channel.output_string oc (Report.metrics_json ~top ());
                  Out_channel.output_char oc '\n');
              Format.printf "@.wrote %s@." p
          | None -> ());
          r)
    in
    match result with
    | Ok _ -> ()
    | Error msg ->
        Format.printf "@.DETECTABILITY VIOLATION — %s@." msg;
        campaign_postmortem cfg ~seed;
        exit 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one seeded crash campaign with metrics enabled and print the \
          report: latency histograms per op kind, the most contended cache \
          lines, recovery durations.  Nothing is written to disk.")
    Term.(
      const run $ algo $ mix $ threads $ ops $ crashes $ key_range $ seed
      $ top $ json)

(* -- space ---------------------------------------------------------------- *)

let space_cmd =
  let variants =
    Arg.(
      value & pos_all algo_conv []
      & info [] ~docv:"ALGO"
          ~doc:
            "Implementations to account (default: tracking, tracking-hash, \
             capsules-opt, memento-list, memento-comb).")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let ops =
    Arg.(value & opt int 120 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let crashes =
    Arg.(value & opt int 3 & info [ "crashes" ] ~doc:"Max crashes injected.")
  in
  let key_range =
    Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Key range size.")
  in
  let prefill =
    Arg.(value & opt int 16 & info [ "prefill" ] ~doc:"Keys inserted before the run.")
  in
  let find_pct =
    Arg.(
      value & opt int 20
      & info [ "find-pct" ] ~docv:"P" ~doc:"Percentage of find operations.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed.") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON to $(docv) (\"-\" = stdout).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Also write the summary table as CSV to $(docv) (\"-\" = stdout).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit nonzero if any run failed or any detectable variant fell \
             below the metadata space lower bound.")
  in
  let run variants threads ops find_pct crashes key_range prefill seed jobs
      json csv strict =
    let variants =
      if variants <> [] then variants
      else
        List.map
          (fun n ->
            match Set_intf.by_name n with
            | Ok f -> f
            | Error msg -> failwith msg)
          [ "tracking"; "tracking-hash"; "capsules-opt"; "memento-list";
            "memento-comb" ]
    in
    let cfg =
      Space.
        {
          threads;
          ops_per_thread = ops;
          find_pct;
          key_range;
          prefill;
          max_crashes = crashes;
          seed;
        }
    in
    let rs = Space.campaign ~jobs:(resolve_jobs jobs) cfg variants in
    let emit dst text =
      match dst with
      | "-" -> print_string text
      | p ->
          Out_channel.with_open_text p (fun oc ->
              Out_channel.output_string oc text);
          Format.printf "wrote %s@." p
    in
    (* --json - / --csv - own stdout: suppress the human report there. *)
    if json <> Some "-" && csv <> Some "-" then
      print_string (Space.render_text cfg rs);
    (match json with
    | Some dst -> emit dst (Space.render_json cfg rs)
    | None -> ());
    (match csv with
    | Some dst -> emit dst (Space.render_csv rs)
    | None -> ());
    if strict then
      match Space.check rs with
      | Ok () -> ()
      | Error msg ->
          Format.printf "@.SPACE CHECK FAILED — %s@." msg;
          exit 1
  in
  Cmd.v
    (Cmd.info "space"
       ~doc:
         "Run one seeded crash campaign per implementation with the \
          allocation registry attached and account every persistent cache \
          line: live payload vs detectability metadata vs garbage, \
          space-per-op, metadata-overhead ratio, garbage growth over \
          virtual time, and the detectable-object space lower bound \
          (arXiv 2002.11378).")
    Term.(
      const run $ variants $ threads $ ops $ find_pct $ crashes $ key_range
      $ prefill $ seed $ jobs_arg $ json $ csv $ strict)

(* -- causal --------------------------------------------------------------- *)

let causal_cmd =
  let threads =
    Arg.(value & opt int 16 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let ops =
    Arg.(
      value & opt int 250
      & info [ "ops" ] ~doc:"Operations per thread (fixed work, not time).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed.") in
  let factors =
    Arg.(
      value
      & opt (list float) [ 0.; 0.5; 2. ]
      & info [ "factors" ] ~docv:"F,F,..."
          ~doc:"Cost-scaling sweep besides the implicit 1x baseline.")
  in
  let no_sites =
    Arg.(value & flag & info [ "no-sites" ] ~doc:"Skip per-site rows.")
  in
  let no_categories =
    Arg.(
      value & flag
      & info [ "no-categories" ] ~doc:"Skip per-impact-category rows.")
  in
  let mechanisms =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "mechanisms" ] ~docv:"KNOB,..."
          ~doc:
            "Cost-table knobs to sweep (default: the persistence and \
             contention set; \"none\" = skip mechanism rows).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the profile as JSON to $(docv) (\"-\" = stdout).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the attribution table as CSV to $(docv).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Smoke assertion: exit nonzero unless the profile reproduces \
             the paper's ordering (high-impact pwbs above low-impact ones, \
             psync sensitivity near zero).")
  in
  let run algo mix quick threads ops seed factors no_sites no_categories
      mechanisms json csv check jobs =
    let base =
      if quick then Causal.quick_config algo mix
      else Causal.default_config algo mix
    in
    let cfg =
      {
        base with
        Causal.threads = (if quick then base.Causal.threads else threads);
        ops_per_thread =
          (if quick then base.Causal.ops_per_thread else ops);
        seed;
        factors;
        sites = not no_sites;
        categories = not no_categories;
        mechanisms =
          (match mechanisms with
          | Some [ "none" ] -> []
          | Some ms -> ms
          | None -> base.Causal.mechanisms);
      }
    in
    let p = Causal.profile ~jobs:(resolve_jobs jobs) cfg in
    (* --json - owns stdout; the table and "wrote" notices move aside. *)
    let notice = if json = Some "-" then Format.eprintf else Format.printf in
    if json <> Some "-" then Report.pp_causal Format.std_formatter p;
    (match csv with
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Causal.to_csv p));
        notice "wrote %s@." path
    | None -> ());
    (match json with
    | Some "-" -> print_endline (Causal.to_json p)
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Causal.to_json p);
            Out_channel.output_char oc '\n');
        Format.printf "wrote %s@." path
    | None -> ());
    if check then begin
      (* The paper's ordering is per-instruction impact: one high-impact
         pwb costs far more than one low-impact pwb, even though the low
         ones dominate in count (and hence in aggregate sensitivity). *)
      let sens_of t =
        List.find_map
          (fun (r : Causal.row) ->
            if r.Causal.target = t && r.Causal.executions > 0 then
              Some (r.Causal.sensitivity /. float_of_int r.Causal.executions)
            else None)
          p.Causal.rows
      in
      let high = sens_of (Causal.Category Pstats.High) in
      let low = sens_of (Causal.Category Pstats.Low) in
      let psync_ok =
        (* psync sites must be (nearly) off the critical path: their
           sensitivity should be a sliver of the baseline cost. *)
        List.for_all
          (fun (r : Causal.row) ->
            r.Causal.group <> "psync"
            || Float.abs r.Causal.sensitivity
               < 0.05 *. p.Causal.baseline_ns_per_op)
          p.Causal.rows
      in
      let ordering_ok =
        match (high, low) with
        | Some h, Some l -> h > l
        | _ -> false
      in
      if ordering_ok && psync_ok then
        notice
          "@.check OK: high-impact above low-impact per execution, psyncs \
           near zero@."
      else begin
        notice "@.CHECK FAILED:%s%s@."
          (if ordering_ok then ""
           else " high-impact per-execution sensitivity not above low-impact;")
          (if psync_ok then "" else " a psync site has material sensitivity;");
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "causal"
       ~doc:
         "Causal what-if profile: rerun a fixed workload under the recorded \
          baseline schedule with each pwb site / impact category / cost \
          knob virtually scaled, and rank targets by throughput \
          sensitivity.")
    Term.(
      const run $ algo $ mix $ quick $ threads $ ops $ seed $ factors
      $ no_sites $ no_categories $ mechanisms $ json $ csv $ check $ jobs_arg)

(* -- trace (Perfetto export) ---------------------------------------------- *)

let trace_cmd =
  let threads =
    Arg.(value & opt int 3 & info [ "threads"; "t" ] ~doc:"Logical threads.")
  in
  let ops =
    Arg.(value & opt int 10 & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let crashes =
    Arg.(value & opt int 2 & info [ "crashes" ] ~doc:"Max crashes injected.")
  in
  let key_range =
    Arg.(value & opt int 32 & info [ "keys" ] ~doc:"Key range size.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload seed.") in
  let from =
    Arg.(
      value
      & opt (some file) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "Convert an existing JSONL trace instead of running a campaign.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also keep the intermediate JSONL trace at $(docv).")
  in
  let perfetto =
    Arg.(
      required
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:"Write Chrome trace_event JSON to $(docv) (open in \
                ui.perfetto.dev).")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Re-parse the emitted JSON and check every thread track has at \
             least one complete span; exit nonzero otherwise.")
  in
  let run algo mix threads ops crashes key_range seed from jsonl perfetto
      validate =
    let src, cleanup =
      match from with
      | Some f -> (f, fun () -> ())
      | None ->
          let path, cleanup =
            match jsonl with
            | Some p -> (p, fun () -> ())
            | None ->
                let t = Filename.temp_file "repro-trace" ".jsonl" in
                (t, fun () -> try Sys.remove t with Sys_error _ -> ())
          in
          let cfg = campaign_cfg algo mix threads ops crashes key_range in
          Metrics.enable ();
          let result =
            Fun.protect
              ~finally:(fun () -> Metrics.disable ())
              (fun () ->
                Trace.with_file path (fun () -> Crashes.run_once cfg ~seed))
          in
          (match result with
          | Ok o ->
              Format.printf
                "campaign: %d ops, %d recovered, %d crashes@."
                o.Crashes.completed_ops o.Crashes.recovered_ops
                o.Crashes.crashes
          | Error msg ->
              (* still convert: a trace of a failing run is the useful one *)
              Format.printf "campaign FAILED (converting anyway): %s@." msg);
          (path, cleanup)
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    match Perfetto.convert ~jsonl:src ~out:perfetto with
    | Error msg ->
        Format.printf "conversion failed: %s@." msg;
        exit 2
    | Ok s ->
        Format.printf "wrote %s: %d spans on %d thread tracks (%d events)@."
          perfetto s.Perfetto.out_spans s.Perfetto.out_threads
          s.Perfetto.in_events;
        if validate then begin
          match Perfetto.validate_file perfetto with
          | Ok v ->
              Format.printf
                "validated: parses, %d spans, every one of %d tracks has a \
                 complete span@."
                v.Perfetto.out_spans v.Perfetto.out_threads
          | Error msg ->
              Format.printf "VALIDATION FAILED: %s@." msg;
              exit 1
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a small traced campaign (or convert --from an existing JSONL \
          trace) and export Chrome trace_event JSON for ui.perfetto.dev: \
          one track per logical thread, operation spans, persistence \
          instants, crash/round markers.")
    Term.(
      const run $ algo $ mix $ threads $ ops $ crashes $ key_range $ seed
      $ from $ jsonl $ perfetto $ validate)

(* -- serve (sharded store service) ----------------------------------------- *)

let wb_conv =
  let parse = function
    | "rng" -> Ok `Rng
    | "drop" -> Ok `Drop
    | "all" -> Ok `All
    | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "prefix" -> (
            match
              int_of_string_opt
                (String.sub s (i + 1) (String.length s - i - 1))
            with
            | Some k when k >= 1 -> Ok (`Prefix k)
            | _ -> Error (`Msg "expected rng | drop | all | prefix:<k>"))
        | _ -> Error (`Msg "expected rng | drop | all | prefix:<k>"))
  in
  let print ppf wb = Format.pp_print_string ppf (Store.wb_label wb) in
  Arg.conv (parse, print)

let serve_replay file =
  match Store_repro.load file with
  | Error msg ->
      Format.printf "cannot load %s: %s@." file msg;
      exit 2
  | Ok r -> (
      Format.printf "%a" Store_repro.pp r;
      match Store_repro.replay r with
      | Error msg when String.equal msg r.Store_repro.error ->
          Format.printf "reproduced: %s@." msg
      | Error msg ->
          Format.printf "reproduced a DIFFERENT failure: %s@." msg;
          Format.printf "(recorded: %s)@." r.Store_repro.error;
          exit 1
      | Ok () ->
          Format.printf "did NOT reproduce — the replay passed@.";
          exit 1)

let serve_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Number of shards.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client fibers.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Requests per client.")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ]
          ~doc:"Max requests a server drains per mailbox activation.")
  in
  let key_range =
    Arg.(value & opt int 128 & info [ "keys" ] ~doc:"Key range size.")
  in
  let skew =
    Arg.(
      value
      & opt (some float) None
      & info [ "skew" ] ~docv:"S"
          ~doc:
            "Skewed keys: fraction $(docv) of requests target the hottest \
             20% of keys (0.2 = uniform, 0.8 = classic hot set).")
  in
  let open_loop =
    Arg.(
      value
      & opt (some float) None
      & info [ "open-loop" ] ~docv:"NS"
          ~doc:
            "Open-loop clients with mean interarrival $(docv) virtual ns \
             (Poisson); default is closed-loop.")
  in
  let crash_shard =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-shard" ] ~docv:"SID"
          ~doc:"Crash shard $(docv) mid-traffic and recover it live.")
  in
  let crash_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "Inject the crash once $(docv) requests completed store-wide \
             (default: a third of the total).")
  in
  let crash_both =
    Arg.(
      value
      & opt (some (pair int int)) None
      & info [ "crash-both" ] ~docv:"A,B"
          ~doc:
            "Correlated power loss: crash shards $(docv) together, each \
             at its own --crash-dispatch'th dispatch, each heap's \
             write-backs resolved independently (--wb / --wb2).")
  in
  let crash_cascade =
    Arg.(
      value
      & opt (some (pair int int)) None
      & info [ "crash-cascade" ] ~docv:"A,B"
          ~doc:
            "Cascade: crash shard A at its --crash-dispatch'th dispatch, \
             then crash B while A is still recovering.")
  in
  let crash_dispatch =
    Arg.(
      value & opt int 8
      & info [ "crash-dispatch" ] ~docv:"N"
          ~doc:
            "Server dispatch index at which --crash-both/--crash-cascade \
             interrupts fire.")
  in
  let wb =
    Arg.(
      value & opt wb_conv `Rng
      & info [ "wb" ] ~docv:"RES"
          ~doc:
            "Write-back resolution at the crash: rng | drop | all | \
             prefix:<k>.")
  in
  let wb2 =
    Arg.(
      value
      & opt (some wb_conv) None
      & info [ "wb2" ] ~docv:"RES"
          ~doc:
            "Write-back resolution of the second correlated-crash victim \
             (default: same as --wb).")
  in
  let backend =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated per-shard structure names (length must equal \
             --shards), e.g. tracking,rqueue-topic,tracking-cas.  Default: \
             every shard uses the -a algorithm.")
  in
  let replicate =
    Arg.(
      value & flag
      & info [ "replicate" ]
          ~doc:
            "Mirror every committed update to a per-shard replica heap; a \
             crashed primary promotes its replica (failover) instead of \
             restarting.")
  in
  let failover_ns =
    Arg.(
      value & opt float 500.
      & info [ "failover-ns" ]
          ~doc:"Virtual replica-promotion latency (with --replicate).")
  in
  let migrate =
    Arg.(
      value
      & opt (some int) None
      & info [ "migrate" ] ~docv:"SID"
          ~doc:
            "Live-split shard $(docv) mid-traffic: migrate half its key \
             space to a new shard with detectable handoff.")
  in
  let migrate_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "migrate-after" ] ~docv:"N"
          ~doc:
            "Release the migration once $(docv) requests completed \
             (default: a quarter of the total).")
  in
  let broken_handoff =
    Arg.(
      value & flag
      & info [ "broken-handoff" ]
          ~doc:
            "Negative control: elide the migration's handoff-commit pwb — \
             crash campaigns must catch the key lost from both shards.")
  in
  let check_balance =
    Arg.(
      value
      & opt (some float) None
      & info [ "check-balance" ] ~docv:"R"
          ~doc:
            "With --check: also require the max/min per-shard resident \
             key-count ratio across set-model shards to be at most $(docv).")
  in
  let restart_ns =
    Arg.(
      value & opt float 5_000.
      & info [ "restart-ns" ]
          ~doc:"Virtual restart latency charged before shard recovery.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the SLO report as JSON to $(docv) (\"-\" = stdout).")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Write the per-shard windowed time-series (throughput and mean \
             latency per virtual-time window) as CSV to $(docv).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Smoke assertion: exit nonzero unless zero requests were lost \
             and (with a crash planned) survivors kept completing requests \
             inside the recovery window.")
  in
  let repro_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"On failure, save a replayable serve repro to $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a saved serve repro instead of running.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a JSONL event trace of the serve to $(docv).")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ]
          ~doc:
            "Bounded exhaustive crash-point sweep instead of one run: every \
             victim shard x server dispatch index x deterministic \
             write-back resolution (keep the config small).")
  in
  let dispatch_budget =
    Arg.(
      value & opt int 64
      & info [ "dispatch-budget" ]
          ~doc:"Crash-point depth per victim explored by --explore.")
  in
  let run algo mix shards clients ops batch key_range skew open_loop
      crash_shard crash_after crash_both crash_cascade crash_dispatch wb wb2
      backend replicate failover_ns migrate migrate_after broken_handoff
      check_balance restart_ns seed json csv check repro_file replay trace
      explore dispatch_budget jobs =
    match replay with
    | Some f -> serve_replay f
    | None -> (
        if
          algo.Set_intf.fname = "harris"
          && (crash_shard <> None || crash_both <> None
             || crash_cascade <> None || explore || migrate <> None
             || replicate)
        then begin
          Format.printf "harris is volatile: it cannot recover from crashes@.";
          exit 1
        end;
        let backends =
          match backend with
          | None -> None
          | Some csv ->
              let names = String.split_on_char ',' csv in
              let resolve name =
                match Set_intf.by_name (String.trim name) with
                | Ok f -> f
                | Error msg ->
                    Format.printf "bad --backend: %s@." msg;
                    exit 2
              in
              Some (Array.of_list (List.map resolve names))
        in
        let dist =
          match skew with
          | None -> Workload.Uniform
          | Some s -> (
              try Workload.skewed s
              with Invalid_argument msg ->
                Format.printf "bad --skew: %s@." msg;
                exit 2)
        in
        let total = clients * ops in
        let crash =
          match (crash_shard, crash_both, crash_cascade) with
          | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
              Format.printf
                "--crash-shard, --crash-both and --crash-cascade are \
                 mutually exclusive@.";
              exit 2
          | Some victim, None, None ->
              let requests =
                match crash_after with Some n -> n | None -> max 1 (total / 3)
              in
              Some (Store.After_requests { victim; requests })
          | None, Some (a, b), None ->
              Some (Store.Both_at_dispatch { a; b; dispatch = crash_dispatch })
          | None, None, Some (first, second) ->
              Some (Store.Cascade { first; second; dispatch = crash_dispatch })
          | None, None, None -> None
        in
        let migrate =
          match migrate with
          | None ->
              if broken_handoff then begin
                Format.printf "--broken-handoff needs --migrate@.";
                exit 2
              end;
              None
          | Some msrc ->
              let m_after =
                match migrate_after with
                | Some n -> n
                | None -> max 1 (total / 4)
              in
              Some { Store.msrc; m_after; m_broken = broken_handoff }
        in
        let cfg =
          {
            Store.factory = algo;
            backends;
            shards;
            clients;
            ops_per_client = ops;
            batch;
            workload =
              {
                Workload.mix;
                key_range;
                prefill_n = key_range / 2;
                dist;
              };
            open_loop_ns = open_loop;
            crash;
            wb;
            wb2;
            restart_ns;
            failover_ns;
            replicate;
            migrate;
            seed;
          }
        in
        if explore then begin
          let go () =
            Store.explore ~dispatch_budget ~jobs:(resolve_jobs jobs) cfg
          in
          match (match trace with
                 | Some p -> Trace.with_file p go
                 | None -> go ())
          with
          | Error msg ->
              Format.printf "explore failed: %s@." msg;
              exit 2
          | Ok st ->
              Format.printf
                "store explore: %d executions, %d crashes fired, %d failures@."
                st.Store.ex_executions st.Store.ex_fired st.Store.ex_failures;
              Array.iter
                (fun (label, d) ->
                  Format.printf
                    "  %s: crash points explored through dispatch %d@." label
                    d)
                st.Store.ex_max_dispatch;
              match st.Store.ex_first_failure with
              | None -> ()
              | Some msg ->
                  Format.printf "DETECTABILITY VIOLATION — %s@." msg;
                  (match st.Store.ex_first_cex with
                  | Some (cex, sched, bare) ->
                      let sr =
                        Store_repro.of_config cex ~error:bare ~schedule:sched
                      in
                      (match repro_file with
                      | Some p ->
                          Store_repro.save p sr;
                          Format.printf "serve repro saved to %s@." p
                      | None -> ());
                      (match Store_repro.explain sr with
                      | Ok pm -> pp_postmortem pm
                      | Error e -> pp_no_postmortem e)
                  | None ->
                      pp_no_postmortem "no counterexample was recorded");
                  exit 1
        end
        else begin
          let sched = ref [] in
          let record c = sched := c :: !sched in
          let go () = Store.run ~record cfg in
          let result =
            match trace with Some p -> Trace.with_file p go | None -> go ()
          in
          match result with
          | Error msg ->
              Format.printf "DETECTABILITY VIOLATION — %s@." msg;
              let sr =
                Store_repro.of_config cfg ~error:msg
                  ~schedule:(Array.of_list (List.rev !sched))
              in
              (match repro_file with
              | Some p ->
                  Store_repro.save p sr;
                  Format.printf "serve repro saved to %s@." p
              | None -> ());
              (match Store_repro.explain sr with
              | Ok pm -> pp_postmortem pm
              | Error e -> pp_no_postmortem e);
              exit 1
          | Ok report ->
              (* --json - owns stdout for pipelines *)
              if json <> Some "-" then Format.printf "%a" Slo.pp report;
              (match csv with
              | Some p ->
                  Out_channel.with_open_text p (fun oc ->
                      Out_channel.output_string oc (Slo.windows_csv report));
                  if json <> Some "-" then Format.printf "wrote %s@." p
              | None -> ());
              (match json with
              | Some "-" -> print_endline (Slo.to_json report)
              | Some p ->
                  Out_channel.with_open_text p (fun oc ->
                      Out_channel.output_string oc (Slo.to_json report);
                      Out_channel.output_char oc '\n');
                  Format.printf "wrote %s@." p
              | None -> ());
              if check || check_balance <> None then begin
                match
                  Slo.check ?balance_max:check_balance
                    ~crash_expected:(crash <> None) report
                with
                | Ok () -> Format.printf "check OK@."
                | Error msg ->
                    Format.printf "CHECK FAILED: %s@." msg;
                    exit 1
              end
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive the sharded recoverable KV service: client fibers \
          (closed- or open-loop) routed over N independently recoverable \
          shards, optionally crashing one shard mid-traffic and recovering \
          it while the survivors keep serving; reports throughput, latency \
          quantiles, per-shard recovery durations and the degraded window.")
    Term.(
      const run $ algo $ mix $ shards $ clients $ ops $ batch $ key_range
      $ skew $ open_loop $ crash_shard $ crash_after $ crash_both
      $ crash_cascade $ crash_dispatch $ wb $ wb2 $ backend $ replicate
      $ failover_ns $ migrate $ migrate_after $ broken_handoff
      $ check_balance $ restart_ns $ seed $ json $ csv $ check $ repro_file
      $ replay $ trace $ explore $ dispatch_budget $ jobs_arg)

(* -- classify ------------------------------------------------------------- *)

let classify_cmd =
  let run algo mix quick =
    let cfg = cfg_of_quick quick in
    Report.pp_classification Format.std_formatter
      (Figures.classification cfg mix algo)
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Measure each pwb code line's impact (paper §5 methodology) and \
          print the low/medium/high classification.")
    Term.(const run $ algo $ mix $ quick)

let () =
  let doc =
    "Reproduction of 'Detectable Recovery of Lock-Free Data Structures' \
     (PPoPP 2022) on a simulated multicore with NVMM."
  in
  (* [repro --replay FILE] works without naming the subcommand. *)
  let default =
    let replay_opt =
      Arg.(
        value
        & opt (some file) None
        & info [ "replay" ] ~docv:"FILE"
            ~doc:"Replay a saved repro $(docv) (same as the replay command).")
    in
    Term.(
      ret
        (const (function
           | Some f -> `Ok (replay_run f false false None None)
           | None -> `Help (`Pager, None))
        $ replay_opt))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "repro" ~doc)
          [ figures_cmd; sweep_cmd; crash_cmd; explore_cmd; replay_cmd;
            explain_cmd; soak_cmd; classify_cmd; stats_cmd; space_cmd;
            trace_cmd; causal_cmd; serve_cmd ]))
