type op = Ins of int | Del of int | Fnd of int

type phase =
  | Announced  (* capsule 1: the operation is announced *)
  | Pre_cas  (* capsule 2: about to execute the decisive CAS *)
  | Completed

type state = {
  op : op;
  phase : phase;
  seq : int;  (* per-thread monotone id embedded in links by this op *)
  target : Harris.node option;
      (* Ins: the allocated node; Del: the victim *)
  result : bool option;
}

type sites = {
  state_pwb : Pstats.site;
  state_sync : Pstats.site;
  visit_pwb : Pstats.site;
  visit_fence : Pstats.site;
  neigh_pwb : Pstats.site;
  neigh_fence : Pstats.site;
  node_pwb : Pstats.site;
  cas_pwb : Pstats.site;
  cas_fence : Pstats.site;
}

let sites prefix =
  let pwb name = Pstats.make Pwb (prefix ^ "." ^ name) in
  let fence name = Pstats.make Pfence (prefix ^ "." ^ name) in
  let sync name = Pstats.make Psync (prefix ^ "." ^ name) in
  {
    state_pwb = pwb "state.pwb";
    state_sync = sync "state.psync";
    visit_pwb = pwb "visit.pwb";
    visit_fence = fence "visit.pfence";
    neigh_pwb = pwb "neigh.pwb";
    neigh_fence = fence "neigh.pfence";
    node_pwb = pwb "node.pwb";
    cas_pwb = pwb "cas.pwb";
    cas_fence = fence "cas.pfence";
  }

type t = {
  list : Harris.t;
  variant : [ `General | `Opt ];
  s : sites;
  states : state Pmem.t array;
  started : int Pmem.t array;
      (* Same line as the state: cleared crash-atomically by the system at
         invocation, set again when the state is persisted, so recovery
         never confuses a fresh invocation with the previous one. *)
  seqs : int array;  (* volatile mirror of the last used sequence number *)
}

let idle = { op = Fnd 0; phase = Completed; seq = 0; target = None; result = Some false }

let init_pwb = Pstats.make Pwb "caps.init.pwb"
let init_sync = Pstats.make Psync "caps.init.psync"

let create ~variant heap ~threads =
  let prefix = match variant with `General -> "caps" | `Opt -> "capsopt" in
  let states = Array.make threads None in
  for i = 0 to threads - 1 do
    let line = Pmem.new_line ~name:(Printf.sprintf "%s.state[%d]" prefix i) heap in
    let st = Pmem.on_line line idle in
    let started = Pmem.on_line line 0 in
    Pmem.pwb init_pwb line;
    states.(i) <- Some (st, started)
  done;
  Pmem.psync init_sync;
  let cell i = match states.(i) with Some p -> p | None -> assert false in
  {
    list = Harris.create heap;
    variant;
    s = sites prefix;
    states = Array.init threads (fun i -> fst (cell i));
    started = Array.init threads (fun i -> snd (cell i));
    seqs = Array.make threads 0;
  }

let tid () = if Sim.in_sim () then Sim.tid () else 0

(* Capsule boundary: persist the thread's capsule state (a private line —
   the cheap kind of pwb).  The [started] flag shares the line, so no
   extra persistence instructions are needed to arm it. *)
let persist_state t id st =
  Pmem.write t.states.(id) st;
  Pmem.write t.started.(id) 1;
  Pmem.pwb_f t.s.state_pwb t.states.(id);
  Pmem.psync t.s.state_sync

(* System support: durably mark the invocation as not-yet-announced,
   before any interruptible step (mirrors Tracking's CP_q := 0). *)
let announce_invocation t id = Pmem.system_persist t.started.(id) 0

(* Traversal hook.  The general durability transformation persists every
   access; the hand-tuned variant persists only logically deleted nodes,
   which every traversal must persist before relying on their mark. *)
let on_visit t (nd : Harris.node) (link : Harris.link) =
  match t.variant with
  | `General ->
      Pmem.pwb t.s.visit_pwb nd.line;
      Pmem.pfence t.s.visit_fence
  | `Opt ->
      if link.marked then begin
        Pmem.pwb t.s.visit_pwb nd.line;
        Pmem.pfence t.s.visit_fence
      end

let after_cas t fld =
  Pmem.pwb t.s.cas_pwb (Pmem.line_of fld);
  Pmem.pfence t.s.cas_fence

(* Persist the two-node neighborhood of the target (hand-tuned variant;
   the general transformation already persisted them on visit). *)
let persist_neighborhood t (pred : Harris.node) (curr : Harris.node) =
  match t.variant with
  | `General -> ()
  | `Opt ->
      Pmem.pwb t.s.neigh_pwb pred.line;
      Pmem.pwb t.s.neigh_pwb curr.line;
      Pmem.pfence t.s.neigh_fence

let mk_link t id ~succ ~marked =
  Harris.make_link ~writer:id ~wseq:t.seqs.(id) ~succ ~marked ()

let search t id k =
  Harris.search_with ~on_visit:(on_visit t) ~mk_link:(mk_link t id)
    ~after_cas:(after_cas t) t.list k

let finish t id st result =
  persist_state t id { st with phase = Completed; result = Some result };
  result

let insert t k =
  let id = tid () in
  announce_invocation t id;
  t.seqs.(id) <- t.seqs.(id) + 1;
  let st =
    { op = Ins k; phase = Announced; seq = t.seqs.(id); target = None; result = None }
  in
  persist_state t id st;
  let rec attempt () =
    let pred, curr = search t id k in
    persist_neighborhood t pred curr;
    if curr.key = k then finish t id st false
    else begin
      let nd =
        Harris.new_node t.list ~key:k
          ~next:(mk_link t id ~succ:(Some curr) ~marked:false)
      in
      (* the fresh node must be durable before it can become reachable *)
      Pmem.pwb t.s.node_pwb nd.line;
      persist_state t id { st with phase = Pre_cas; target = Some nd };
      let pred_link = Pmem.read pred.next in
      let window_intact =
        (not pred_link.marked)
        && match pred_link.succ with Some c -> c == curr | None -> false
      in
      if not window_intact then attempt ()
      else if
        Pmem.cas pred.next pred_link (mk_link t id ~succ:(Some nd) ~marked:false)
      then begin
        after_cas t pred.next;
        finish t id st true
      end
      else attempt ()
    end
  in
  attempt ()

let delete t k =
  let id = tid () in
  announce_invocation t id;
  t.seqs.(id) <- t.seqs.(id) + 1;
  let st =
    { op = Del k; phase = Announced; seq = t.seqs.(id); target = None; result = None }
  in
  persist_state t id st;
  let rec attempt () =
    let pred, curr = search t id k in
    persist_neighborhood t pred curr;
    if curr.key <> k then finish t id st false
    else begin
      let curr_link = Pmem.read curr.next in
      if curr_link.marked then attempt () (* will be snipped, retry *)
      else begin
        persist_state t id { st with phase = Pre_cas; target = Some curr };
        let marked = mk_link t id ~succ:curr_link.succ ~marked:true in
        if Pmem.cas curr.next curr_link marked then begin
          (* The mark is the decisive write: persist it before any unlink
             can make it unreachable. *)
          after_cas t curr.next;
          let pred_link = Pmem.read pred.next in
          (if
             (not pred_link.marked)
             && match pred_link.succ with Some c -> c == curr | None -> false
           then
             let fresh = mk_link t id ~succ:curr_link.succ ~marked:false in
             if Pmem.cas pred.next pred_link fresh then after_cas t pred.next);
          finish t id st true
        end
        else attempt ()
      end
    end
  in
  attempt ()

let find t k =
  let id = tid () in
  announce_invocation t id;
  t.seqs.(id) <- t.seqs.(id) + 1;
  let st =
    { op = Fnd k; phase = Announced; seq = t.seqs.(id); target = None; result = None }
  in
  persist_state t id st;
  let _, curr = search t id k in
  finish t id st (curr.key = k)

let apply t = function Ins k -> insert t k | Del k -> delete t k | Fnd k -> find t k

(* Is [nd] on the chain from the head (marked or not)?  Used by recovery
   to decide whether an insert's decisive CAS became durable. *)
let on_chain t nd =
  let rec go cur =
    cur == nd
    ||
    match (Pmem.peek cur.Harris.next).succ with
    | None -> false
    | Some next -> go next
  in
  go (Harris.head t.list)

let recover t op =
  let id = tid () in
  let st = Pmem.read t.states.(id) in
  (* Never reuse a sequence number from before the crash. *)
  t.seqs.(id) <- max t.seqs.(id) st.seq;
  let matches = Pmem.read t.started.(id) = 1 && st.op = op in
  if not matches then apply t op
  else
    match st.phase with
    | Completed -> (
        match st.result with Some r -> r | None -> apply t op)
    | Announced -> apply t op
    | Pre_cas -> (
        match (st.op, st.target) with
        | Ins _, Some nd ->
            (* The insert took effect iff the node became reachable (it may
               since have been marked or even unlinked — but an unlink
               implies a durable mark, so the mark is conclusive). *)
            if on_chain t nd || (Pmem.peek nd.next).marked then begin
              let _ = finish t id st true in
              true
            end
            else apply t op
        | Del _, Some victim ->
            let link = Pmem.peek victim.Harris.next in
            if link.marked && link.writer = id && link.wseq = st.seq then begin
              let _ = finish t id st true in
              true
            end
            else apply t op
        | (Ins _ | Del _ | Fnd _), _ -> apply t op)

let to_list t = Harris.to_list t.list
let check_invariants t = Harris.check_invariants t.list

(* Space-sweep enumeration: the underlying chain plus the per-thread
   capsule-state lines.  An insert's pre-CAS node referenced only from
   the capsule state is still accounted (as capsule metadata holding it);
   unlinked chain nodes are garbage by omission. *)
let space t =
  let chain = Harris.space t.list in
  let caps =
    Array.to_list t.states
    |> List.map (fun cell -> (Pmem.line_of cell, `Meta "capsule"))
  in
  chain @ caps
