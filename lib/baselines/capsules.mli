(** Detectably recoverable linked lists obtained from the Harris list via
    the capsules transformation of Ben-David et al., in its normalized
    two-capsule form (paper §5).

    Each operation is split into capsules whose boundaries persist the
    thread's capsule state (operation, phase, sequence number, decisive
    target) on a private line.  The decisive CAS is made recoverable by
    embedding the writing thread's (tid, seq) identity in every stored
    link, and deletion marks are persisted before any unlink, so recovery
    can always decide whether the crashed operation took effect.

    Two persistence profiles, exactly as evaluated in the paper:

    - [`General] — the generic durability transformation of Izraelevitz
      et al.: pwb + pfence after {e every} shared-memory access, including
      each node visited during traversal ("Capsules");
    - [`Opt] — the hand-tuned profile: only marked nodes encountered
      during traversal, the two-node neighborhood of the target, the
      decisive CAS line, and the private capsule state are persisted
      ("Capsules-Opt"). *)

type t

type op = Ins of int | Del of int | Fnd of int

val create :
  variant:[ `General | `Opt ] -> Pmem.heap -> threads:int -> t

val insert : t -> int -> bool
val delete : t -> int -> bool
val find : t -> int -> bool

val recover : t -> op -> bool
(** Detectable recovery of the calling thread's crashed operation: decide
    from the persisted capsule state and the (tid, seq) marks whether the
    decisive CAS took effect; finish, return the response, or re-invoke. *)

val apply : t -> op -> bool

val to_list : t -> int list
val check_invariants : t -> (unit, string) result

val space : t -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): the underlying
    chain's [Harris.space] plus the per-thread capsule-state lines as
    ["capsule"] metadata. *)
