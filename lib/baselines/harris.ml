type link = {
  succ : node option;
  marked : bool;
  writer : int;
  wseq : int;
}

and node = {
  key : int;
  line : Pmem.line;
  next : link Pmem.t;
}

type t = { heap : Pmem.heap; head : node }

let make_link ?(writer = -1) ?(wseq = 0) ~succ ~marked () =
  { succ; marked; writer; wseq }

let new_node_raw heap ~key ~next =
  let line = Pmem.new_line ~name:(Printf.sprintf "hnode:%d" key) heap in
  { key; line; next = Pmem.on_line line next }

let new_node t ~key ~next = new_node_raw t.heap ~key ~next

let create heap =
  let tail =
    new_node_raw heap ~key:max_int ~next:(make_link ~succ:None ~marked:false ())
  in
  let head =
    new_node_raw heap ~key:min_int
      ~next:(make_link ~succ:(Some tail) ~marked:false ())
  in
  { heap; head }

let head t = t.head
let heap_of t = t.heap

let succ_exn link =
  match link.succ with
  | Some n -> n
  | None -> invalid_arg "Harris: traversal ran past the tail sentinel"

let points_to link nd =
  match link.succ with Some n -> n == nd | None -> false

let no_hook _ = ()
let default_mk_link ~succ ~marked = make_link ~succ ~marked ()

(* Search with physical removal of marked nodes.  Returns (pred, curr)
   where curr is the first unmarked node with key >= k and pred its
   unmarked predecessor. *)
let search_with ?(on_visit = fun _ _ -> ()) ?(mk_link = default_mk_link)
    ?(after_cas = no_hook) t k =
  let rec from_head () =
    let rec advance pred pred_link curr =
      let curr_link = Pmem.read curr.next in
      on_visit curr curr_link;
      if curr_link.marked then begin
        (* snip out the marked node *)
        let next = succ_exn curr_link in
        let fresh = mk_link ~succ:(Some next) ~marked:false in
        if Pmem.cas pred.next pred_link fresh then begin
          after_cas pred.next;
          advance pred fresh next
        end
        else from_head ()
      end
      else if curr.key >= k then (pred, curr)
      else advance curr curr_link (succ_exn curr_link)
    in
    let head_link = Pmem.read t.head.next in
    advance t.head head_link (succ_exn head_link)
  in
  from_head ()

let rec insert_with ?on_visit ?(mk_link = default_mk_link)
    ?(after_cas = no_hook) t k =
  let pred, curr = search_with ?on_visit ~mk_link ~after_cas t k in
  if curr.key = k then false
  else begin
    let nd =
      new_node t ~key:k ~next:(mk_link ~succ:(Some curr) ~marked:false)
    in
    let pred_link = Pmem.read pred.next in
    if pred_link.marked || not (points_to pred_link curr) then
      insert_with ?on_visit ~mk_link ~after_cas t k
    else begin
      let fresh = mk_link ~succ:(Some nd) ~marked:false in
      if Pmem.cas pred.next pred_link fresh then begin
        after_cas pred.next;
        true
      end
      else insert_with ?on_visit ~mk_link ~after_cas t k
    end
  end

let rec delete_with ?on_visit ?(mk_link = default_mk_link)
    ?(after_cas = no_hook) t k =
  let pred, curr = search_with ?on_visit ~mk_link ~after_cas t k in
  if curr.key <> k then false
  else begin
    let curr_link = Pmem.read curr.next in
    if curr_link.marked then delete_with ?on_visit ~mk_link ~after_cas t k
    else begin
      let marked_link = mk_link ~succ:curr_link.succ ~marked:true in
      if Pmem.cas curr.next curr_link marked_link then begin
        after_cas curr.next;
        (* best-effort physical unlink; search finishes it otherwise *)
        let pred_link = Pmem.read pred.next in
        (if (not pred_link.marked) && points_to pred_link curr then begin
           let fresh = mk_link ~succ:curr_link.succ ~marked:false in
           if Pmem.cas pred.next pred_link fresh then after_cas pred.next
         end);
        true
      end
      else delete_with ?on_visit ~mk_link ~after_cas t k
    end
  end

let find_with ?on_visit t k =
  let _, curr = search_with ?on_visit t k in
  curr.key = k

let search t k = search_with t k
let insert t k = insert_with t k
let delete t k = delete_with t k
let find t k = find_with t k

let to_list t =
  let rec go acc nd =
    let link = Pmem.peek nd.next in
    match link.succ with
    | None -> List.rev acc
    | Some next ->
        let acc =
          if link.marked || nd.key = min_int then acc else nd.key :: acc
        in
        go acc next
  in
  go [] t.head

let check_invariants t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec go prev nd =
    if prev.key >= nd.key then
      err "order violation: %d before %d" prev.key nd.key
    else
      match (Pmem.peek nd.next).succ with
      | None -> if nd.key = max_int then Ok () else err "no tail sentinel"
      | Some next -> go nd next
  in
  match (Pmem.peek t.head.next).succ with
  | None -> err "head has no successor"
  | Some first -> go t.head first

(* Space-sweep enumeration: the chain as reachable from the head,
   sentinels and marked (logically deleted) nodes as empty payload so
   their bytes are still accounted to the structure — a marked node
   occupies space until a traversal snips it, after which it drops out
   of this enumeration and counts as garbage. *)
let space t =
  let acc = ref [] in
  let rec go nd =
    let link = Pmem.peek nd.next in
    let cls =
      if link.marked || nd.key = min_int || nd.key = max_int then `Payload []
      else `Payload [ nd.key ]
    in
    acc := (nd.line, cls) :: !acc;
    match link.succ with None -> () | Some next -> go next
  in
  go t.head;
  List.rev !acc
