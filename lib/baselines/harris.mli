(** Harris-style lock-free sorted linked list over integer keys — the
    volatile common ancestor of the Capsules baselines (paper §5) and the
    persistence-free yardstick in the figures.

    Deletion logically marks a node's next link, then physically unlinks
    it; traversals snip out marked nodes they pass.  Links are immutable
    boxes compared physically by CAS, which gives the ABA-freedom the
    original obtains from pointer tagging.

    The [_with] variants expose the instrumentation hooks the Capsules
    baselines need: [on_visit] fires on every traversed node (where the
    durability transformation inserts its pwb+pfence), [mk_link] lets the
    recoverable-CAS construction embed a (writer, wseq) identity in every
    stored link, and [after_cas] fires right after each successful CAS
    (where CAS-result persistence goes). *)

type link = {
  succ : node option;
  marked : bool;
  writer : int;  (** tid of the thread that installed this link, -1 system *)
  wseq : int;  (** that thread's sequence number for the write *)
}

and node = {
  key : int;  (** [min_int] and [max_int] are reserved for sentinels *)
  line : Pmem.line;
  next : link Pmem.t;
}

type t

val create : Pmem.heap -> t
val head : t -> node
val heap_of : t -> Pmem.heap

val make_link :
  ?writer:int -> ?wseq:int -> succ:node option -> marked:bool -> unit -> link

val new_node : t -> key:int -> next:link -> node

val search_with :
  ?on_visit:(node -> link -> unit) ->
  ?mk_link:(succ:node option -> marked:bool -> link) ->
  ?after_cas:(link Pmem.t -> unit) ->
  t ->
  int ->
  node * node
(** [(pred, curr)] with [curr] the first unmarked node with key >= [k]
    and [pred] its unmarked predecessor; marked nodes in between are
    physically removed. *)

val insert_with :
  ?on_visit:(node -> link -> unit) ->
  ?mk_link:(succ:node option -> marked:bool -> link) ->
  ?after_cas:(link Pmem.t -> unit) ->
  t ->
  int ->
  bool

val delete_with :
  ?on_visit:(node -> link -> unit) ->
  ?mk_link:(succ:node option -> marked:bool -> link) ->
  ?after_cas:(link Pmem.t -> unit) ->
  t ->
  int ->
  bool

val find_with : ?on_visit:(node -> link -> unit) -> t -> int -> bool

val search : t -> int -> node * node
val insert : t -> int -> bool
val delete : t -> int -> bool
val find : t -> int -> bool

val to_list : t -> int list
val check_invariants : t -> (unit, string) result

val space : t -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): every node still
    linked from the head, with sentinels and marked nodes as empty
    payload.  Physically unlinked nodes are garbage by omission. *)
