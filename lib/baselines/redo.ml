type op = Ins of int | Del of int | Fnd of int

type req = { qop : op; qseq : int }
type res = { pseq : int; pval : bool }

type node = { key : int; line : Pmem.line; next : node option Pmem.t }

(* One redo-log batch: the logical update operations applied by one
   combining round, with their owners and results. *)
type lrec = { owner : int; oseq : int; lop : op; lval : bool }

type bnode = {
  bline : Pmem.line;
  recs : lrec list Pmem.t;
  bnext : bnode option Pmem.t;
}

type sites = {
  ann_pwb : Pstats.site;
  ann_sync : Pstats.site;
  res_pwb : Pstats.site;
  log_pwb : Pstats.site;
  log_fence : Pstats.site;
  batch_sync : Pstats.site;
  ckpt_pwb : Pstats.site;
  ckpt_sync : Pstats.site;
  marker_pwb : Pstats.site;
}

let sites () =
  {
    ann_pwb = Pstats.make Pwb "redo.announce.pwb";
    ann_sync = Pstats.make Psync "redo.announce.psync";
    res_pwb = Pstats.make Pwb "redo.result.pwb";
    log_pwb = Pstats.make Pwb "redo.log.pwb";
    log_fence = Pstats.make Pfence "redo.log.pfence";
    batch_sync = Pstats.make Psync "redo.batch.psync";
    ckpt_pwb = Pstats.make Pwb "redo.ckpt.pwb";
    ckpt_sync = Pstats.make Psync "redo.ckpt.psync";
    marker_pwb = Pstats.make Pwb "redo.ckpt.marker.pwb";
  }

type t = {
  heap : Pmem.heap;
  head : node;
  lock : int Pmem.t;
  ann : req Pmem.t array;
  started : int Pmem.t array;  (* shares the announce line; see recover *)
  res : res Pmem.t array;
  seqs : int array;
  log_head : bnode;
  ckpt_marker : bnode Pmem.t;  (* replay strictly after this batch *)
  mutable vtail : bnode;  (* volatile cursor to the last batch *)
  mutable since_ckpt : int;
  checkpoint_every : int;
  s : sites;
}

let new_node heap ~key ~next =
  let line = Pmem.new_line ~name:(Printf.sprintf "unode:%d" key) heap in
  { key; line; next = Pmem.on_line line next }

let new_bnode heap recs =
  let bline = Pmem.new_line ~name:"redo.batch" heap in
  { bline; recs = Pmem.on_line bline recs; bnext = Pmem.on_line bline None }

let create ?(checkpoint_every = 32) heap ~threads =
  let s = sites () in
  let tail = new_node heap ~key:max_int ~next:None in
  let head = new_node heap ~key:min_int ~next:(Some tail) in
  let log_head = new_bnode heap [] in
  let ckpt_marker = Pmem.alloc ~name:"redo.marker" heap log_head in
  Pmem.pwb s.ckpt_pwb tail.line;
  Pmem.pwb s.ckpt_pwb head.line;
  Pmem.pwb s.log_pwb log_head.bline;
  Pmem.pwb_f s.marker_pwb ckpt_marker;
  Pmem.psync s.ckpt_sync;
  let pairs =
    Array.init threads (fun i ->
        let line = Pmem.new_line ~name:(Printf.sprintf "redo.ann[%d]" i) heap in
        let a = Pmem.on_line line { qop = Fnd 0; qseq = 0 } in
        let st = Pmem.on_line line 0 in
        Pmem.pwb s.ann_pwb line;
        (a, st))
  in
  Pmem.psync s.ann_sync;
  let res = Pvar.make ~name:"redo.res" heap ~threads { pseq = 0; pval = false } in
  let lock = Pmem.alloc ~name:"redo.lock" heap 0 in
  Pmem.pwb s.ckpt_pwb (Pmem.line_of lock);
  Pmem.psync s.ckpt_sync;
  {
    heap;
    head;
    lock;
    ann = Array.map fst pairs;
    started = Array.map snd pairs;
    res = Array.init threads (fun i -> Pvar.cell res i);
    seqs = Array.make threads 0;
    log_head;
    ckpt_marker;
    vtail = log_head;
    since_ckpt = 0;
    checkpoint_every;
    s;
  }

let tid () = if Sim.in_sim () then Sim.tid () else 0

let search_from head k =
  let rec go pred curr =
    if curr.key >= k then (pred, curr)
    else
      match Pmem.read curr.next with
      | None -> (pred, curr)
      | Some next -> go curr next
  in
  match Pmem.read head.next with
  | None -> invalid_arg "Redo: broken sentinel chain"
  | Some first -> go head first

(* Volatile application by the combiner; durability comes from the log. *)
let apply_volatile t kop =
  match kop with
  | Fnd k ->
      let _, curr = search_from t.head k in
      curr.key = k
  | Ins k ->
      let pred, curr = search_from t.head k in
      if curr.key = k then false
      else begin
        Pmem.write pred.next
          (Some (new_node t.heap ~key:k ~next:(Some curr)));
        true
      end
  | Del k ->
      let pred, curr = search_from t.head k in
      if curr.key <> k then false
      else begin
        Pmem.write pred.next (Pmem.read curr.next);
        true
      end

let iter_nodes t f =
  let rec go nd =
    f nd;
    match Pmem.peek nd.next with None -> () | Some next -> go next
  in
  go t.head

let checkpoint t =
  iter_nodes t (fun nd -> Pmem.pwb t.s.ckpt_pwb nd.line);
  Pmem.psync t.s.ckpt_sync;
  Pmem.write t.ckpt_marker t.vtail;
  Pmem.pwb_f t.s.marker_pwb t.ckpt_marker;
  Pmem.psync t.s.ckpt_sync;
  t.since_ckpt <- 0

let combine t =
  (* Decide and apply every pending operation, but do not publish any
     result yet: a waiting owner returns as soon as it reads its result
     slot, so results may only become visible after the redo-log batch is
     durable (otherwise a crash could lose an effect whose response was
     already observed — a durable-linearizability violation). *)
  let decided = ref [] in
  let recs = ref [] in
  Array.iteri
    (fun j ann_j ->
      let a = Pmem.read ann_j in
      let r = Pmem.read t.res.(j) in
      if a.qseq > r.pseq then begin
        let v = apply_volatile t a.qop in
        decided := (j, a.qseq, v) :: !decided;
        match a.qop with
        | Fnd _ -> ()
        | Ins _ | Del _ ->
            recs := { owner = j; oseq = a.qseq; lop = a.qop; lval = v } :: !recs
      end)
    t.ann;
  let batch = List.rev !recs in
  if batch <> [] then begin
    let b = new_bnode t.heap batch in
    Pmem.write t.vtail.bnext (Some b);
    Pmem.pwb t.s.log_pwb b.bline;
    Pmem.pwb t.s.log_pwb t.vtail.bline;
    Pmem.pfence t.s.log_fence;
    Pmem.psync t.s.batch_sync;
    t.vtail <- b;
    t.since_ckpt <- t.since_ckpt + 1
  end;
  List.iter
    (fun (j, seq, v) ->
      Pmem.write t.res.(j) { pseq = seq; pval = v };
      Pmem.pwb_f t.s.res_pwb t.res.(j))
    (List.rev !decided);
  Pmem.psync t.s.batch_sync;
  if t.since_ckpt >= t.checkpoint_every then checkpoint t

let rec await t id seq =
  let r = Pmem.read t.res.(id) in
  if r.pseq = seq then r.pval
  else if Pmem.cas t.lock 0 1 then begin
    combine t;
    Pmem.write t.lock 0;
    await t id seq
  end
  else begin
    Sim.advance 60.;
    await t id seq
  end

let run_op t kop =
  let id = tid () in
  (* system support: crash-atomically mark the invocation un-announced *)
  Pmem.system_persist t.started.(id) 0;
  t.seqs.(id) <- t.seqs.(id) + 1;
  let seq = t.seqs.(id) in
  Pmem.write t.ann.(id) { qop = kop; qseq = seq };
  Pmem.write t.started.(id) 1;
  Pmem.pwb_f t.s.ann_pwb t.ann.(id);
  Pmem.psync t.s.ann_sync;
  await t id seq

let insert t k = run_op t (Ins k)
let delete t k = run_op t (Del k)
let find t k = run_op t (Fnd k)
let apply t = function Ins k -> insert t k | Del k -> delete t k | Fnd k -> find t k

let recover_structure t =
  (* Data lines reverted to the last checkpoint; replay the log after the
     marker, restoring both the list and the result slots. *)
  let start = Pmem.read t.ckpt_marker in
  let rec replay b =
    (match Pmem.peek b.bnext with
    | None -> t.vtail <- b
    | Some nxt ->
        List.iter
          (fun { owner; oseq; lop; lval } ->
            (* Replay is idempotent per key even if a crash between a
               checkpoint's data flush and its marker makes us replay
               operations already reflected in the data; the logged result
               is authoritative either way. *)
            ignore (apply_volatile t lop : bool);
            Pmem.write t.res.(owner) { pseq = oseq; pval = lval })
          (Pmem.peek nxt.recs);
        replay nxt)
  in
  replay start;
  t.since_ckpt <- t.checkpoint_every;
  checkpoint t;
  Array.iter (fun r -> Pmem.pwb_f t.s.res_pwb r) t.res;
  Pmem.psync t.s.batch_sync

let recover t kop =
  let id = tid () in
  let a = Pmem.read t.ann.(id) in
  t.seqs.(id) <- max t.seqs.(id) a.qseq;
  let r = Pmem.read t.res.(id) in
  if Pmem.read t.started.(id) = 1 && a.qop = kop then
    if r.pseq = a.qseq then r.pval
    else
      (* The durable announcement is still in flight: a combiner may pick
         it up at any moment, so re-announcing under a fresh sequence
         number could execute the operation twice, with the first
         response silently dropped.  Await the existing announcement —
         the wait loop self-combines, so it also guarantees progress. *)
      await t id a.qseq
  else apply t kop

let to_list t =
  let rec go acc nd =
    match Pmem.peek nd.next with
    | None -> List.rev acc
    | Some next ->
        let acc = if nd.key = min_int then acc else nd.key :: acc in
        go acc next
  in
  go [] t.head

let check_invariants t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec sorted prev nd =
    if prev.key >= nd.key then err "order: %d before %d" prev.key nd.key
    else
      match Pmem.peek nd.next with
      | None -> if nd.key = max_int then Ok () else err "missing tail"
      | Some next -> sorted nd next
  in
  match Pmem.peek t.head.next with
  | None -> err "head broken"
  | Some first -> sorted t.head first

(* Space-sweep enumeration.  The list chain is the payload; the redo-log
   batches, checkpoint marker and lock are ["log"] metadata, and the
   announce/result cells are per-thread detectability state.  Batches
   before the checkpoint marker stay linked from the log head until a
   crash truncates the chain, so they are still accounted here; unlinked
   list nodes are garbage by omission. *)
let space t =
  let acc = ref [] in
  let push line cls = acc := (line, cls) :: !acc in
  let rec chain nd =
    push nd.line
      (if nd.key = min_int || nd.key = max_int then `Payload []
       else `Payload [ nd.key ]);
    match Pmem.peek nd.next with None -> () | Some next -> chain next
  in
  chain t.head;
  let rec log b =
    push b.bline (`Meta "log");
    match Pmem.peek b.bnext with None -> () | Some next -> log next
  in
  log t.log_head;
  push (Pmem.line_of t.ckpt_marker) (`Meta "log");
  push (Pmem.line_of t.lock) (`Meta "log");
  Array.iter (fun cell -> push (Pmem.line_of cell) (`Meta "announce")) t.ann;
  Array.iter (fun cell -> push (Pmem.line_of cell) (`Meta "result")) t.res;
  List.rev !acc
