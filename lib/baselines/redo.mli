(** RedoOpt-style persistent universal construction (paper §5, Correia et
    al., EuroSys '20), specialized to the sorted-list set.

    Threads announce operations in per-thread persistent slots; a combiner
    applies every pending operation to a single volatile-in-cache copy of
    the list, appends one persistent {e redo-log} batch describing the
    logical operations, and persists per-thread results — one pfence and
    one psync per batch, which is why this family executes so few
    persistence fences (the property the paper's Figures 3b/4b contrast
    with Tracking).  Data lines are flushed only at periodic checkpoints;
    recovery replays the log from the last checkpoint marker.

    The construction serializes operations through the combiner, so its
    throughput saturates with thread count; the original is wait-free via
    announcement helping, which the combining loop approximates. *)

type t

type op = Ins of int | Del of int | Fnd of int

val create : ?checkpoint_every:int -> Pmem.heap -> threads:int -> t

val insert : t -> int -> bool
val delete : t -> int -> bool
val find : t -> int -> bool
val apply : t -> op -> bool

val recover_structure : t -> unit
(** Post-crash, single-threaded: replay the redo log onto the
    checkpointed state, restore result slots, and cut a fresh checkpoint. *)

val recover : t -> op -> bool

val to_list : t -> int list
val check_invariants : t -> (unit, string) result

val space : t -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): the list chain as
    payload; redo-log batches, checkpoint marker and lock as ["log"]
    metadata; announce/result cells as per-thread detectability state. *)
