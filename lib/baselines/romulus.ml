type op = Ins of int | Del of int | Fnd of int

(* Main-copy node; [twin] is the mirror node in the back copy (back nodes
   point to themselves). *)
type node = {
  key : int;
  line : Pmem.line;
  next : node option Pmem.t;
  mutable twin : node;
}

type tstate = Idle | Mutating | Copying

type announce = { aop : op; aseq : int }
type result = { rseq : int; rval : bool }

(* The whole commit record lives on one cache line so that one pwb makes
   the state transition, the owning transaction's identity and its result
   durable atomically — Romulus's durability point. *)
type commit_rec = {
  cstate : tstate;
  owner : int;  (* -1 after a rollback invalidated the record *)
  cseq : int;
  cresult : bool;
}

type sites = {
  ann_pwb : Pstats.site;
  ann_sync : Pstats.site;
  main_pwb : Pstats.site;
  res_pwb : Pstats.site;
  st_pwb : Pstats.site;
  st_pwb_fence : Pstats.site;
  st_mut_sync : Pstats.site;
  st_copy_sync : Pstats.site;
  st_idle_sync : Pstats.site;
  back_pwb : Pstats.site;
  restore_pwb : Pstats.site;
  restore_sync : Pstats.site;
}

let sites () =
  {
    ann_pwb = Pstats.make Pwb "rom.announce.pwb";
    ann_sync = Pstats.make Psync "rom.announce.psync";
    main_pwb = Pstats.make Pwb "rom.main.pwb";
    res_pwb = Pstats.make Pwb "rom.result.pwb";
    st_pwb = Pstats.make Pwb "rom.state.pwb";
    st_pwb_fence = Pstats.make Pfence "rom.state.pfence";
    st_mut_sync = Pstats.make Psync "rom.state.mutating.psync";
    st_copy_sync = Pstats.make Psync "rom.state.copying.psync";
    st_idle_sync = Pstats.make Psync "rom.state.idle.psync";
    back_pwb = Pstats.make Pwb "rom.back.pwb";
    restore_pwb = Pstats.make Pwb "rom.restore.pwb";
    restore_sync = Pstats.make Psync "rom.restore.psync";
  }

type t = {
  heap : Pmem.heap;
  head_m : node;
  head_b : node;
  lock : int Pmem.t;
  version : int Pmem.t;  (* seqlock for readers; odd while mutating *)
  commit : commit_rec Pmem.t;
  ann : announce Pmem.t array;
  started : int Pmem.t array;  (* shares the announce line; see recover *)
  res : result Pmem.t array;
  seqs : int array;
  s : sites;
}

let new_node heap ~key ~next ~twin =
  let line = Pmem.new_line ~name:(Printf.sprintf "rnode:%d" key) heap in
  let next_f = Pmem.on_line line next in
  let rec nd = { key; line; next = next_f; twin = nd } in
  (match twin with Some tw -> nd.twin <- tw | None -> ());
  nd

let init_pwb = Pstats.make Pwb "rom.init.pwb"
let init_sync = Pstats.make Psync "rom.init.psync"

let create heap ~threads =
  let tail_b = new_node heap ~key:max_int ~next:None ~twin:None in
  let head_b = new_node heap ~key:min_int ~next:(Some tail_b) ~twin:None in
  let tail_m = new_node heap ~key:max_int ~next:None ~twin:(Some tail_b) in
  let head_m = new_node heap ~key:min_int ~next:(Some tail_m) ~twin:(Some head_b) in
  List.iter (fun nd -> Pmem.pwb init_pwb nd.line) [ tail_b; head_b; tail_m; head_m ];
  Pmem.psync init_sync;
  let pairs =
    Array.init threads (fun i ->
        let line = Pmem.new_line ~name:(Printf.sprintf "rom.ann[%d]" i) heap in
        let a = Pmem.on_line line { aop = Fnd 0; aseq = 0 } in
        let st = Pmem.on_line line 0 in
        Pmem.pwb init_pwb line;
        (a, st))
  in
  Pmem.psync init_sync;
  let res = Pvar.make ~name:"rom.res" heap ~threads { rseq = 0; rval = false } in
  let lock = Pmem.alloc ~name:"rom.lock" heap 0 in
  let version = Pmem.alloc ~name:"rom.version" heap 0 in
  let commit =
    Pmem.alloc ~name:"rom.commit" heap
      { cstate = Idle; owner = -1; cseq = 0; cresult = false }
  in
  (* control words must be durably initialized so a crash resets them to
     their idle values instead of poisoning them *)
  List.iter
    (fun l -> Pmem.pwb init_pwb l)
    [ Pmem.line_of lock; Pmem.line_of version; Pmem.line_of commit ];
  Pmem.psync init_sync;
  {
    heap;
    head_m;
    head_b;
    lock;
    version;
    commit;
    ann = Array.map fst pairs;
    started = Array.map snd pairs;
    res = Array.init threads (fun i -> Pvar.cell res i);
    seqs = Array.make threads 0;
    s = sites ();
  }

let tid () = if Sim.in_sim () then Sim.tid () else 0

let rec acquire t =
  if not (Pmem.cas t.lock 0 1) then begin
    Sim.advance 30.;
    acquire t
  end

let release t = Pmem.write t.lock 0

(* Plain locked traversal of a copy. *)
let search_from head k =
  let rec go pred curr =
    if curr.key >= k then (pred, curr)
    else
      match Pmem.read curr.next with
      | None -> (pred, curr)
      | Some next -> go curr next
  in
  match Pmem.read head.next with
  | None -> invalid_arg "Romulus: broken sentinel chain"
  | Some first -> go head first

(* Decide the mutation; returns (result, touched main lines, back-copy
   mirror closure). *)
let decide t op =
  match op with
  | Fnd k ->
      let _, curr = search_from t.head_m k in
      (curr.key = k, [], fun () -> [])
  | Ins k ->
      let pred, curr = search_from t.head_m k in
      if curr.key = k then (false, [], fun () -> [])
      else begin
        let nb = new_node t.heap ~key:k ~next:(Some curr.twin) ~twin:None in
        let nm = new_node t.heap ~key:k ~next:(Some curr) ~twin:(Some nb) in
        Pmem.write pred.next (Some nm);
        ( true,
          [ nm.line; pred.line ],
          fun () ->
            Pmem.write pred.twin.next (Some nb);
            [ nb.line; pred.twin.line ] )
      end
  | Del k ->
      let pred, curr = search_from t.head_m k in
      if curr.key <> k then (false, [], fun () -> [])
      else begin
        Pmem.write pred.next (Pmem.read curr.next);
        ( true,
          [ pred.line ],
          fun () ->
            Pmem.write pred.twin.next (Pmem.read curr.twin.next);
            [ pred.twin.line ] )
      end

let update t op =
  let id = tid () in
  (* system support: crash-atomically mark the invocation un-announced *)
  Pmem.system_persist t.started.(id) 0;
  t.seqs.(id) <- t.seqs.(id) + 1;
  let seq = t.seqs.(id) in
  Pmem.write t.ann.(id) { aop = op; aseq = seq };
  Pmem.write t.started.(id) 1;
  Pmem.pwb_f t.s.ann_pwb t.ann.(id);
  Pmem.psync t.s.ann_sync;
  acquire t;
  Pmem.write t.version (Pmem.read t.version + 1);
  Pmem.write t.commit { cstate = Mutating; owner = id; cseq = seq; cresult = false };
  Pmem.pwb_f t.s.st_pwb t.commit;
  Pmem.psync t.s.st_mut_sync;
  let value, touched, mirror = decide t op in
  List.iter (Pmem.pwb t.s.main_pwb) touched;
  (* Fence: the mutated main copy must be durable strictly before the
     commit record that declares it committed. *)
  Pmem.pfence t.s.st_pwb_fence;
  Pmem.write t.commit { cstate = Copying; owner = id; cseq = seq; cresult = value };
  Pmem.pwb_f t.s.st_pwb t.commit;
  Pmem.psync t.s.st_copy_sync;
  (* committed: state transition, owner and result became durable in one
     write-back; now publish the result slot and mirror the back copy *)
  Pmem.write t.res.(id) { rseq = seq; rval = value };
  Pmem.pwb_f t.s.res_pwb t.res.(id);
  let touched_back = mirror () in
  List.iter (Pmem.pwb t.s.back_pwb) touched_back;
  Pmem.write t.commit { cstate = Idle; owner = id; cseq = seq; cresult = value };
  Pmem.pwb_f t.s.st_pwb t.commit;
  Pmem.psync t.s.st_idle_sync;
  Pmem.write t.version (Pmem.read t.version + 1);
  release t;
  value

let insert t k = update t (Ins k)
let delete t k = update t (Del k)

(* Lock-free readers under a sequence lock against the main copy. *)
let rec find t k =
  let v1 = Pmem.read t.version in
  if v1 land 1 = 1 then begin
    Sim.advance 30.;
    find t k
  end
  else begin
    let _, curr = search_from t.head_m k in
    let found = curr.key = k in
    let v2 = Pmem.read t.version in
    if v1 = v2 then found
    else begin
      Sim.advance 30.;
      find t k
    end
  end

let apply t = function Ins k -> insert t k | Del k -> delete t k | Fnd k -> find t k

(* Rebuild [dst] as a fresh copy of [src].  [to_main] decides which side
   owns the twin pointers: fresh main nodes point at their back sources,
   fresh back nodes are installed as the twins of the main sources. *)
let restore t ~src_head ~dst_head ~to_main =
  let rec last nd =
    match Pmem.peek nd.next with None -> nd | Some nxt -> last nxt
  in
  let dst_tail = last dst_head in
  let rec interior acc nd =
    match Pmem.peek nd.next with
    | None -> List.rev acc
    | Some next ->
        if next.key = max_int then List.rev acc
        else interior (next :: acc) next
  in
  let fresh_of src_nd rest =
    let fresh =
      if to_main then
        new_node t.heap ~key:src_nd.key ~next:(Some rest) ~twin:(Some src_nd)
      else begin
        let nb = new_node t.heap ~key:src_nd.key ~next:(Some rest) ~twin:None in
        src_nd.twin <- nb;
        nb
      end
    in
    Pmem.pwb t.s.restore_pwb fresh.line;
    fresh
  in
  let first = List.fold_right fresh_of (interior [] src_head) dst_tail in
  Pmem.write dst_head.next (Some first);
  Pmem.pwb t.s.restore_pwb dst_head.line;
  Pmem.psync t.s.restore_sync

let recover_structure t =
  let c = Pmem.peek t.commit in
  (match c.cstate with
  | Idle -> ()
  | Mutating ->
      (* the transaction did not commit: rebuild main from the back copy
         and invalidate the commit record so the owner re-invokes *)
      restore t ~src_head:t.head_b ~dst_head:t.head_m ~to_main:true;
      Pmem.write t.commit { c with cstate = Idle; owner = -1 }
  | Copying ->
      (* committed: main is authoritative; rebuild the back copy *)
      restore t ~src_head:t.head_m ~dst_head:t.head_b ~to_main:false;
      Pmem.write t.commit { c with cstate = Idle });
  Pmem.pwb_f t.s.st_pwb t.commit;
  Pmem.psync t.s.st_idle_sync

let recover t op =
  let id = tid () in
  let st = Pmem.read t.ann.(id) in
  t.seqs.(id) <- max t.seqs.(id) st.aseq;
  if Pmem.read t.started.(id) = 1 && st.aop = op then begin
    let r = Pmem.read t.res.(id) in
    if r.rseq = st.aseq then r.rval
    else
      (* the result slot may not have been flushed: the commit record is
         the authoritative durability point *)
      let c = Pmem.read t.commit in
      if c.owner = id && c.cseq = st.aseq then c.cresult else apply t op
  end
  else apply t op

let to_list_from head =
  let rec go acc nd =
    match Pmem.peek nd.next with
    | None -> List.rev acc
    | Some next ->
        let acc = if nd.key = min_int then acc else nd.key :: acc in
        go acc next
  in
  go [] head

let to_list t = to_list_from t.head_m

let check_invariants t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec sorted prev nd =
    if prev.key >= nd.key then err "order: %d before %d" prev.key nd.key
    else
      match Pmem.peek nd.next with
      | None -> if nd.key = max_int then Ok () else err "missing tail"
      | Some next -> sorted nd next
  in
  let main_ok =
    match Pmem.peek t.head_m.next with
    | None -> err "main head broken"
    | Some first -> sorted t.head_m first
  in
  match main_ok with
  | Error _ as e -> e
  | Ok () ->
      if
        (Pmem.peek t.commit).cstate = Idle
        && to_list_from t.head_m <> to_list_from t.head_b
      then err "main and back copies diverge while idle"
      else Ok ()

(* Space-sweep enumeration.  The main copy holds the payload; the entire
   back copy is detectability overhead (["back-copy"]), as are the
   announce/result cells and the lock/version/commit control words.
   Nodes orphaned by deletes or crash-time restores are garbage by
   omission. *)
let space t =
  let acc = ref [] in
  let push line cls = acc := (line, cls) :: !acc in
  let rec chain cls_of nd =
    push nd.line (cls_of nd);
    match Pmem.peek nd.next with None -> () | Some next -> chain cls_of next
  in
  chain
    (fun nd ->
      if nd.key = min_int || nd.key = max_int then `Payload []
      else `Payload [ nd.key ])
    t.head_m;
  chain (fun _ -> `Meta "back-copy") t.head_b;
  Array.iter (fun cell -> push (Pmem.line_of cell) (`Meta "announce")) t.ann;
  Array.iter (fun cell -> push (Pmem.line_of cell) (`Meta "result")) t.res;
  push (Pmem.line_of t.lock) (`Meta "log");
  push (Pmem.line_of t.version) (`Meta "log");
  push (Pmem.line_of t.commit) (`Meta "log");
  List.rev !acc
