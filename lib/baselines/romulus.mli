(** Romulus-style blocking persistent transactional list (paper §5,
    Correia–Felber–Ramalhete).  Two twin copies of the data live in NVMM:
    update transactions serialize on a global lock, mutate and flush the
    {e main} copy, durably commit, then mirror the mutation into the
    {e back} copy.  A persistent three-state flag (IDLE / MUTATING /
    COPYING) tells recovery which copy is consistent, and per-thread
    announce/result slots give detectability.  Readers run lock-free
    against the main copy under a sequence lock.

    Blocking by design (the paper: "satisfying only starvation-freedom
    for update transactions"), so it is evaluated for throughput and
    crash-recovery consistency, not for lock-freedom. *)

type t

type op = Ins of int | Del of int | Fnd of int

val create : Pmem.heap -> threads:int -> t

val insert : t -> int -> bool
val delete : t -> int -> bool
val find : t -> int -> bool
val apply : t -> op -> bool

val recover_structure : t -> unit
(** Post-crash, single-threaded: restore the inconsistent copy from the
    consistent one according to the persisted state flag.  Must run once
    before any thread recovery or new operation. *)

val recover : t -> op -> bool
(** Detectable recovery of the calling thread's crashed operation. *)

val to_list : t -> int list
val check_invariants : t -> (unit, string) result

val space : t -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): the main copy as
    payload, the entire back copy as ["back-copy"] metadata, plus the
    announce/result cells and control words.  Orphaned twins are garbage
    by omission. *)
