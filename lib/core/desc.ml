type update =
  | Update : { field : 'a Pmem.t; old_v : 'a; new_v : 'a } -> update

type 'n state =
  | Clean
  | Tagged of 'n t
  | Untagged of 'n t

and 'n t = {
  dline : Pmem.line;
  payload_f : 'n payload Pmem.t;
  result_f : bool option Pmem.t;
  owner : int;
  mutable tagged_s : 'n state;
  mutable untagged_s : 'n state;
}

and 'n payload = {
  label : string;
  affect : ('n * 'n state) list;
  writes : update list;
  news : 'n list;
  cleanup : 'n list;
  response : bool;
}

let make heap ~label ~affect ?(writes = []) ?(news = []) ?(cleanup = [])
    ~response () =
  let dline = Pmem.new_line ~name:("desc:" ^ label) heap in
  let payload = { label; affect; writes; news; cleanup; response } in
  let d =
    {
      dline;
      payload_f = Pmem.on_line dline payload;
      result_f = Pmem.on_line dline None;
      owner = (if Sim.in_sim () then Sim.tid () else -1);
      tagged_s = Clean;
      untagged_s = Clean;
    }
  in
  d.tagged_s <- Tagged d;
  d.untagged_s <- Untagged d;
  d

let payload d = Pmem.read d.payload_f
let result d = Pmem.read d.result_f
let set_result d r = Pmem.write d.result_f (Some r)
let result_field d = d.result_f
let line d = d.dline
let owner d = d.owner
let tagged d = d.tagged_s
let untagged d = d.untagged_s
let same d1 d2 = d1 == d2

let pp ppf d =
  let p = Pmem.peek d.payload_f in
  Format.fprintf ppf "<%s result=%s>" p.label
    (match Pmem.peek d.result_f with
    | None -> "⊥"
    | Some true -> "true"
    | Some false -> "false")
