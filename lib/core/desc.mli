(** Operation descriptors for the Tracking transformation (§3).

    A descriptor records everything needed to complete an operation:
    its {e AffectSet} (the nodes it affects, with the info values observed
    when they were gathered), its {e WriteSet} (CAS triples to apply), its
    {e NewSet} (freshly allocated nodes), the nodes to untag during
    cleanup, and a persistent [result] field which is [None] (the paper's
    ⊥) until the operation takes effect.

    The descriptor payload and the result live on one simulated NVMM
    cache line, so the pbarrier before publishing [RD_q] persists the
    whole descriptor — and forgetting it poisons the descriptor after a
    crash, which the tests detect. *)

type update =
  | Update : { field : 'a Pmem.t; old_v : 'a; new_v : 'a } -> update
      (** One WriteSet entry: CAS [field] from [old_v] to [new_v]. *)

(** The info field of a node: [Clean] is the paper's Null; tagging a node
    stores [Tagged d]; untagging replaces it with [Untagged d] (never with
    the previous value, which is what makes dead descriptors stay dead and
    avoids ABA). *)
type 'n state =
  | Clean
  | Tagged of 'n t
  | Untagged of 'n t

and 'n t

(** Immutable part of a descriptor. *)
and 'n payload = {
  label : string;  (** operation type, e.g. ["insert(42)"] *)
  affect : ('n * 'n state) list;  (** AffectSet, in tagging order *)
  writes : update list;  (** WriteSet *)
  news : 'n list;  (** NewSet *)
  cleanup : 'n list;  (** nodes to untag once the operation is done *)
  response : bool;  (** the response recorded in [result] on success *)
}

val make :
  Pmem.heap ->
  label:string ->
  affect:('n * 'n state) list ->
  ?writes:update list ->
  ?news:'n list ->
  ?cleanup:'n list ->
  response:bool ->
  unit ->
  'n t

val payload : 'n t -> 'n payload
(** Read the payload from simulated NVMM (pays cache costs; faults if the
    descriptor was lost in a crash before being persisted). *)

val result : 'n t -> bool option
val set_result : 'n t -> bool -> unit
val result_field : 'n t -> bool option Pmem.t
val line : 'n t -> Pmem.line

val owner : 'n t -> int
(** The tid that created the descriptor (captured at {!make} time), or
    [-1] outside the simulator.  Purely observational — used by the
    metrics layer to detect helping; no protocol decision depends on it. *)

val tagged : 'n t -> 'n state
(** The canonical [Tagged] box for this descriptor: all helpers CAS the
    same physical value, so physical-equality CAS behaves like the
    pointer-tagging of the C++ original. *)

val untagged : 'n t -> 'n state

val same : 'n t -> 'n t -> bool
(** Physical identity of descriptors. *)

val pp : Format.formatter -> 'n t -> unit
