type 'n node_ops = {
  info : 'n -> 'n Desc.state Pmem.t;
  node_line : 'n -> Pmem.line;
}

type sites = {
  rd_init_pwb : Pstats.site;  (* pbarrier(RD_q) after RD_q := Null *)
  rd_init_fence : Pstats.site;
  cp_pwb : Pstats.site;  (* pwb(CP_q); psync after CP_q := 1 *)
  cp_sync : Pstats.site;
  desc_pwb : Pstats.site;  (* pbarrier on opInfo and NewSet *)
  new_pwb : Pstats.site;
  publish_fence : Pstats.site;
  rd_pub_pwb : Pstats.site;  (* pwb(RD_q); psync after RD_q := opInfo *)
  rd_pub_sync : Pstats.site;
  tag_pwb : Pstats.site;  (* Help: tagging phase *)
  tag_sync : Pstats.site;
  backtrack_pwb : Pstats.site;
  backtrack_sync : Pstats.site;
  update_pwb : Pstats.site;  (* Help: update phase *)
  update_sync : Pstats.site;
  result_pwb : Pstats.site;
  result_sync : Pstats.site;
  cleanup_pwb : Pstats.site;
  cleanup_sync : Pstats.site;
}

let sites prefix =
  let pwb name = Pstats.make Pwb (prefix ^ "." ^ name) in
  let fence name = Pstats.make Pfence (prefix ^ "." ^ name) in
  let sync name = Pstats.make Psync (prefix ^ "." ^ name) in
  {
    rd_init_pwb = pwb "rd_init.pwb";
    rd_init_fence = fence "rd_init.pfence";
    cp_pwb = pwb "cp.pwb";
    cp_sync = sync "cp.psync";
    desc_pwb = pwb "desc.pwb";
    new_pwb = pwb "new.pwb";
    publish_fence = fence "publish.pfence";
    rd_pub_pwb = pwb "rd_pub.pwb";
    rd_pub_sync = sync "rd_pub.psync";
    tag_pwb = pwb "tag.pwb";
    tag_sync = sync "tag.psync";
    backtrack_pwb = pwb "backtrack.pwb";
    backtrack_sync = sync "backtrack.psync";
    update_pwb = pwb "update.pwb";
    update_sync = sync "update.psync";
    result_pwb = pwb "result.pwb";
    result_sync = sync "result.psync";
    cleanup_pwb = pwb "cleanup.pwb";
    cleanup_sync = sync "cleanup.psync";
  }

(* Cleanup phase: untag every node recorded for cleanup.  A deleted node
   is deliberately absent from this set and remains tagged forever. *)
let cleanup ops s d =
  let p = Desc.payload d in
  List.iter
    (fun nd ->
      let fld = ops.info nd in
      ignore (Pmem.cas fld (Desc.tagged d) (Desc.untagged d) : bool);
      Pmem.pwb s.cleanup_pwb (Pmem.line_of fld))
    p.Desc.cleanup;
  Pmem.psync s.cleanup_sync

(* Observability hook (see Harness.Metrics): called with the descriptor
   owner's tid whenever another thread runs Help on its operation.
   Domain-local, like every observability hook of the substrate; one
   domain-local read when disabled, and no protocol behaviour depends on
   it. *)
let helped_hook : (int -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_helped_hook h = Domain.DLS.set helped_hook h

let note_help d =
  match Domain.DLS.get helped_hook with
  | None -> ()
  | Some f ->
      let owner = Desc.owner d in
      if owner >= 0 then begin
        let h = Sim.handle () in
        if Sim.h_in_sim h && Sim.h_tid h <> owner then f owner
      end

(* Algorithm 2. *)
let help ops s d =
  note_help d;
  match Desc.result d with
  | Some _ ->
      (* The operation already took effect; a crash (or a race) may have
         left cleanup half-done, so finish it (§3, crash during cleanup).
         The result we just read may still be volatile — the thread that
         wrote it could be suspended between its result pwb and psync.
         Untagging first would destroy the only other durable evidence
         that the operation happened: a crash that drops the pending
         result write-back then leaves recovery with a result-less
         descriptor and no tags, so it re-invokes an operation whose
         durable effect survived — a detectability violation.  Persist
         the result before acting on it (flush-before-use). *)
      Pmem.pwb s.result_pwb (Desc.line d);
      Pmem.psync s.result_sync;
      cleanup ops s d
  | None -> (
      let p = Desc.payload d in
      (* Tagging phase: install the canonical Tagged box in AffectSet
         order.  A CAS that fails because another helper already tagged
         the node for us counts as success (line 37 of the paper). *)
      let rec tag done_rev = function
        | [] -> `Tagged
        | (nd, expected) :: rest ->
            let fld = ops.info nd in
            let ok = Pmem.cas fld expected (Desc.tagged d) in
            Pmem.pwb s.tag_pwb (Pmem.line_of fld);
            let effective =
              ok
              ||
              match Pmem.read fld with
              | Desc.Tagged d' -> Desc.same d' d
              | Desc.Clean | Desc.Untagged _ -> false
            in
            if effective then tag ((nd, expected) :: done_rev) rest
            else `Blocked done_rev
      in
      match tag [] p.Desc.affect with
      | `Blocked done_rev ->
          (* Backtrack phase: untag, in reverse tagging order, with the
             Untagged box — never the old value — so this descriptor can
             never complete afterwards. *)
          List.iter
            (fun (nd, _) ->
              let fld = ops.info nd in
              ignore (Pmem.cas fld (Desc.tagged d) (Desc.untagged d) : bool);
              Pmem.pwb s.backtrack_pwb (Pmem.line_of fld))
            done_rev;
          Pmem.psync s.backtrack_sync
      | `Tagged ->
          Pmem.psync s.tag_sync;
          (* Update phase: idempotent CASes from the WriteSet.  The
             operation linearizes here (all AffectSet nodes are tagged and
             persisted, so it is now guaranteed to complete). *)
          List.iter
            (fun (Desc.Update { field; old_v; new_v }) ->
              ignore (Pmem.cas field old_v new_v : bool);
              Pmem.pwb s.update_pwb (Pmem.line_of field))
            p.Desc.writes;
          (* the updates must be durable strictly before the result that
             certifies them ("a psync at the end of every phase", §3) *)
          Pmem.psync s.update_sync;
          Desc.set_result d p.Desc.response;
          Pmem.pwb s.result_pwb (Desc.line d);
          Pmem.psync s.result_sync;
          cleanup ops s d)

type 'n attempt =
  | Help_first of 'n Desc.t
  | Ready of { desc : 'n Desc.t; read_only : bool }

type 'n handle = {
  cp : int Pmem.t;
  rd : 'n Desc.t option Pmem.t;
}

let make_handles heap ~threads =
  let cps = Pvar.make ~name:"CP" heap ~threads 0 in
  let rds = Pvar.make ~name:"RD" heap ~threads None in
  Array.init threads (fun i -> { cp = Pvar.cell cps i; rd = Pvar.cell rds i })

(* Algorithm 1. *)
let exec ops s h ~kind ~attempt =
  (* System-side durable announcement that a new operation started: without
     it, recovery could return the previous operation's result (footnote 1
     of the paper; system support per Ben-Baruch et al. [5]).  Crash-atomic,
     uncounted, and performed before any interruptible step so no crash can
     observe the invocation without the cleared check-point. *)
  Pmem.system_persist h.cp 0;
  Sim.step (Cost.current ()).Cost.op_overhead;
  (match kind with
  | `Readonly -> ()
  | `Update ->
      Pmem.write h.rd None;
      Pmem.pwb s.rd_init_pwb (Pmem.line_of h.rd);
      Pmem.pfence s.rd_init_fence;
      Pmem.write h.cp 1;
      Pmem.pwb s.cp_pwb (Pmem.line_of h.cp);
      Pmem.psync s.cp_sync);
  let rec loop () =
    match attempt () with
    | Help_first d ->
        help ops s d;
        loop ()
    | Ready { desc; read_only } ->
        let p = Desc.payload desc in
        (* pbarrier on opInfo and NewSet: descriptor and fresh nodes must
           be durable before RD_q can point at them. *)
        Pmem.pwb s.desc_pwb (Desc.line desc);
        List.iter (fun nd -> Pmem.pwb s.new_pwb (ops.node_line nd)) p.Desc.news;
        Pmem.pfence s.publish_fence;
        Pmem.write h.rd (Some desc);
        Pmem.pwb s.rd_pub_pwb (Pmem.line_of h.rd);
        Pmem.psync s.rd_pub_sync;
        if read_only then
          match Desc.result desc with
          | Some r -> r
          | None ->
              invalid_arg
                "Tracking.exec: read-only attempt without a preset result"
        else begin
          help ops s desc;
          match Desc.result desc with Some r -> r | None -> loop ()
        end
  in
  loop ()

let recover ops s h ~reinvoke =
  match (Pmem.read h.cp, Pmem.read h.rd) with
  | 0, _ | _, None -> reinvoke ()
  | _, Some d -> (
      help ops s d;
      match Desc.result d with Some r -> r | None -> reinvoke ())
