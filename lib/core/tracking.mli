(** The Tracking transformation: generic Op skeleton, Help procedure and
    recovery function (Algorithms 1 and 2 of the paper).

    A data structure plugs in by describing how to reach a node's info
    field ({!node_ops}) and by providing a per-attempt {e gather} function
    that builds either a helping request or a ready descriptor.  The
    engine then runs the paper's phase machine:

    gather → helping → tagging → (backtrack | update → result → cleanup)

    with the paper's persistence-instruction placement, the read-only
    optimization, and detectable recovery through the per-thread
    check-point [CP_q] and recovery-data [RD_q] variables. *)

type 'n node_ops = {
  info : 'n -> 'n Desc.state Pmem.t;  (** the node's info field *)
  node_line : 'n -> Pmem.line;  (** the node's cache line (for pbarrier) *)
}

type sites
(** The persistence-instruction call sites of one structure, named for
    the per-site accounting of §5. *)

val sites : string -> sites
(** [sites prefix] registers the engine's pwb/pfence/psync sites under
    [prefix] (e.g. ["rlist"]). *)

val help : 'n node_ops -> sites -> 'n Desc.t -> unit
(** Algorithm 2.  Idempotent; safe to call from any thread, including
    recovery after a crash in any phase (a descriptor whose result is set
    proceeds straight to cleanup). *)

val set_helped_hook : (int -> unit) option -> unit
(** Observability hook (see [Harness.Metrics]): when set, called with the
    descriptor owner's tid whenever {!help} runs on behalf of {e another}
    thread's operation (the owner running its own phases, and recovery of
    one's own descriptor, do not count).  Domain-local; one domain-local
    read when disabled. *)

(** Result of one gather+analysis attempt, produced by the structure. *)
type 'n attempt =
  | Help_first of 'n Desc.t
      (** a node in the would-be AffectSet is tagged: help, then retry *)
  | Ready of { desc : 'n Desc.t; read_only : bool }
      (** descriptor built; [read_only] requires WriteSet = ∅, a
          single-element AffectSet, and [desc]'s result already set
          (the red code of Algorithm 1) *)

(** Per-thread recoverable-operation handle: [CP_q] and [RD_q]. *)
type 'n handle = {
  cp : int Pmem.t;
  rd : 'n Desc.t option Pmem.t;
}

val make_handles : Pmem.heap -> threads:int -> 'n handle array

val exec :
  'n node_ops ->
  sites ->
  'n handle ->
  kind:[ `Update | `Readonly ] ->
  attempt:(unit -> 'n attempt) ->
  bool
(** Algorithm 1.  [`Update] runs the full check-point protocol;
    [`Readonly] is the Find variant that leaves [CP_q] at 0 so that
    recovery simply re-invokes.  Both start with the system-side durable
    [CP_q := 0] announcement that detectability requires (footnote 1 of
    the paper). *)

val recover :
  'n node_ops ->
  sites ->
  'n handle ->
  reinvoke:(unit -> bool) ->
  bool
(** Op-Recover of Algorithm 1: if the check-point is clear or [RD_q] is
    Null the operation made no visible change and is re-invoked; otherwise
    the last descriptor is helped to completion and its result returned,
    or the operation is re-invoked if it never took effect. *)
