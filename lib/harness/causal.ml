type target =
  | Site of string
  | Category of Pstats.category
  | Mechanism of string

let pp_target ppf = function
  | Site n -> Format.fprintf ppf "site:%s" n
  | Category c -> Format.fprintf ppf "category:%a" Pstats.pp_category c
  | Mechanism m -> Format.fprintf ppf "mechanism:%s" m

(* ---- scoped installation of what-if scalings -------------------------- *)

let rec with_scaled scaled f =
  match scaled with
  | [] -> f ()
  | (Site n, fac) :: rest -> (
      match Pstats.find n with
      | None -> invalid_arg (Printf.sprintf "Causal: unknown site %S" n)
      | Some s ->
          let old = Pstats.cost_mult s in
          Pstats.set_cost_mult s fac;
          Fun.protect
            ~finally:(fun () -> Pstats.set_cost_mult s old)
            (fun () -> with_scaled rest f))
  | (Category c, fac) :: rest ->
      let old = Pstats.category_mult c in
      Pstats.set_category_mult c fac;
      Fun.protect
        ~finally:(fun () -> Pstats.set_category_mult c old)
        (fun () -> with_scaled rest f)
  | (Mechanism m, fac) :: rest -> (
      match Cost.find_knob m with
      | None -> invalid_arg (Printf.sprintf "Causal: unknown mechanism %S" m)
      | Some (_, _, scale) ->
          Cost.with_tweaked
            (fun t -> scale t fac)
            (fun () -> with_scaled rest f))

let measure_scaled ?duration_ns ?seed ~scaled factory ~threads workload =
  with_scaled scaled (fun () ->
      Runner.measure ?duration_ns ?seed factory ~threads workload)

(* ---- configuration ---------------------------------------------------- *)

type config = {
  factory : Set_intf.factory;
  workload : Workload.config;
  threads : int;
  ops_per_thread : int;
  seed : int;
  factors : float list;
  sites : bool;
  categories : bool;
  mechanisms : string list;
}

let default_mechanisms =
  [
    "pwb_issue";
    "pwb_accept";
    "pwb_latency";
    "pwb_steal";
    "pwb_shared";
    "pwb_inflight_stall";
    "pfence_base";
    "psync_base";
    "cas_contended";
    "cache_miss";
    "write_miss";
    "cas_drains_wb";
  ]

let default_config factory mix =
  {
    factory;
    workload = Workload.default mix;
    threads = 16;
    ops_per_thread = 250;
    seed = 1;
    factors = [ 0.; 0.5; 2. ];
    sites = true;
    categories = true;
    mechanisms = default_mechanisms;
  }

let quick_config factory mix =
  { (default_config factory mix) with threads = 8; ops_per_thread = 120 }

(* ---- the fixed-work measurement core ---------------------------------- *)

(* Fixed work (N ops per thread), not fixed duration: under schedule
   replay a fixed-work run performs bit-identically the same operations
   in the same interleaving whatever the costs are — only the clocks
   move — so the throughput derivative is exact.  A fixed-duration run
   would let faster threads squeeze in extra operations and change the
   execution being compared. *)

type run_result = {
  makespan_ns : float;
  divergences : int;
  tape : int array;  (* recorded schedule; [||] when replaying *)
}

let run_fixed ?schedule cfg =
  Pmem.reset_pending ();
  let rng = Random.State.make [| cfg.seed; 0xCA5A |] in
  let heap =
    Pmem.heap ~track_for_crash:false ~name:cfg.factory.Set_intf.fname ()
  in
  let algo = cfg.factory.Set_intf.make heap ~threads:cfg.threads in
  Workload.prefill rng cfg.workload algo;
  Pmem.reset_pending ();
  Pstats.reset ();
  let finish = Array.make cfg.threads 0. in
  let body tid (_ : int) =
    let trng = Random.State.make [| cfg.seed; tid; 0x9E13 |] in
    for _ = 1 to cfg.ops_per_thread do
      let op = Workload.gen_op trng cfg.workload in
      ignore (Set_intf.apply algo op : bool)
    done;
    finish.(tid) <- Sim.now ()
  in
  let divergences = ref 0 in
  let decisions = ref 0 in
  let recorded = ref [] in
  let record tid =
    incr decisions;
    if schedule = None then recorded := tid :: !recorded
  in
  let divergence ~step:_ ~want:_ = incr divergences in
  (match
     Sim.run ~policy:`Perf ~seed:cfg.seed ?schedule ~record ~divergence
       (Array.init cfg.threads (fun i -> body i))
   with
  | Sim.All_done -> ()
  | Sim.Crashed_at step ->
      failwith
        (Printf.sprintf
           "Causal.run_fixed: profiled run crashed at step %d (seed %d) — \
            causal profiles replay crash-free executions, so no workload \
            body may call Sim.request_crash"
           step cfg.seed));
  (* A rerun that takes a different number of scheduling decisions than
     the tape holds is not the recorded execution either, even when no
     individual replay pick failed (extra or missing switch points shift
     the whole suffix): count the mismatch as divergence too. *)
  (match schedule with
  | Some tape ->
      divergences := !divergences + abs (!decisions - Array.length tape)
  | None -> ());
  {
    makespan_ns = Array.fold_left Float.max 0. finish;
    divergences = !divergences;
    tape =
      (if schedule = None then Array.of_list (List.rev !recorded) else [||]);
  }

(* ---- attribution ------------------------------------------------------ *)

type row = {
  target : target;
  label : string;
  group : string;
  executions : int;
  time_share : float;
  points : (float * float) list;
  headroom : float;
  sensitivity : float;
  divergences : int;
}

type profile = {
  algo : string;
  mix : string;
  threads : int;
  ops_per_thread : int;
  total_ops : int;
  seed : int;
  factors : float list;
  baseline_ns_per_op : float;
  baseline_mops : float;
  persistence_time_ns : float;
  rows : row list;
}

let slope points =
  let n = float_of_int (List.length points) in
  if n < 2. then 0.
  else begin
    let xbar = List.fold_left (fun a (x, _) -> a +. x) 0. points /. n in
    let ybar = List.fold_left (fun a (_, y) -> a +. y) 0. points /. n in
    let num =
      List.fold_left
        (fun a (x, y) -> a +. ((x -. xbar) *. (y -. ybar)))
        0. points
    in
    let den =
      List.fold_left (fun a (x, _) -> a +. ((x -. xbar) ** 2.)) 0. points
    in
    if den = 0. then 0. else num /. den
  end

let kind_group = function
  | Pstats.Pwb -> "pwb"
  | Pstats.Pfence -> "pfence"
  | Pstats.Psync -> "psync"

let profile ?(jobs = 1) (cfg : config) =
  if cfg.factors = [] then invalid_arg "Causal.profile: empty factor sweep";
  let total_ops = cfg.threads * cfg.ops_per_thread in
  (* 1. Baseline: record the schedule, then snapshot per-site statistics
     before any rerun resets them. *)
  let base = run_fixed cfg in
  let base_ns_per_op = base.makespan_ns /. float_of_int total_ops in
  let executed_sites =
    List.filter_map
      (fun s ->
        let l, m, h = Pstats.site_counts s in
        let execs =
          match Pstats.kind s with
          | Pstats.Pwb -> l + m + h
          | Pstats.Pfence | Pstats.Psync -> Pstats.site_fences s
        in
        if execs > 0 then Some (s, execs, Pstats.site_time s) else None)
      (Pstats.sites ())
  in
  let cat_stats =
    let t = Pstats.totals () in
    [
      (Pstats.High, t.Pstats.high, Pstats.category_time Pstats.High);
      (Pstats.Medium, t.Pstats.medium, Pstats.category_time Pstats.Medium);
      (Pstats.Low, t.Pstats.low, Pstats.category_time Pstats.Low);
    ]
  in
  let persistence_time =
    List.fold_left (fun a (_, _, t) -> a +. t) 0. executed_sites
  in
  let share t = if persistence_time > 0. then t /. persistence_time else 0. in
  (* 2. Enumerate targets (label, group, baseline executions, time share). *)
  let targets =
    (if cfg.sites then
       List.map
         (fun (s, execs, time) ->
           ( Site (Pstats.name s),
             Pstats.name s,
             kind_group (Pstats.kind s),
             execs,
             share time ))
         executed_sites
     else [])
    @ (if cfg.categories then
         List.map
           (fun (c, n, time) ->
             ( Category c,
               Format.asprintf "pwb[%a]" Pstats.pp_category c,
               "category",
               n,
               share time ))
           cat_stats
       else [])
    @ List.map
        (fun m ->
          match Cost.find_knob m with
          | None ->
              invalid_arg (Printf.sprintf "Causal: unknown mechanism %S" m)
          | Some _ -> (Mechanism m, m, "mechanism", 0, Float.nan))
        cfg.mechanisms
  in
  (* 3. Replayed what-if sweep per target. *)
  let schedule = base.tape in
  let sweep_factors target =
    let non_baseline = List.filter (fun f -> f <> 1.) cfg.factors in
    match target with
    | Mechanism m -> (
        (* A Flag knob has no magnitude to scale: sweep it off vs. on. *)
        match Cost.find_knob m with
        | Some (_, Cost.Flag, _) -> [ 0. ]
        | _ -> non_baseline)
    | _ -> non_baseline
  in
  (* Every (target, factor) rerun is independent — replayed against the
     same recorded tape, scaling only domain-local cost state — so fan
     the flat pair list across domains and reassemble rows in target
     order.  Results are merged by work-item index, so the profile is
     byte-identical at every [jobs] value. *)
  let targets_arr = Array.of_list targets in
  let pairs =
    List.concat
      (List.mapi
         (fun ti (target, _, _, _, _) ->
           List.map (fun f -> (ti, f)) (sweep_factors target))
         targets)
  in
  let reruns =
    Parallel.run ~jobs
      (fun _ (ti, f) ->
        let target, _, _, _, _ = targets_arr.(ti) in
        let r = with_scaled [ (target, f) ] (fun () -> run_fixed ~schedule cfg) in
        (r.makespan_ns, r.divergences))
      (Array.of_list pairs)
  in
  let rerun_tbl = Hashtbl.create (Array.length reruns) in
  List.iteri
    (fun i (ti, f) -> Hashtbl.replace rerun_tbl (ti, f) reruns.(i))
    pairs;
  let rows =
    List.mapi
      (fun ti (target, label, group, executions, time_share) ->
        let divergences = ref 0 in
        let points =
          List.map
            (fun f ->
              let makespan_ns, divs = Hashtbl.find rerun_tbl (ti, f) in
              divergences := !divergences + divs;
              (f, makespan_ns /. float_of_int total_ops))
            (sweep_factors target)
        in
        let points =
          List.sort
            (fun (a, _) (b, _) -> compare a b)
            ((1.0, base_ns_per_op) :: points)
        in
        let headroom =
          match List.assoc_opt 0. points with
          | Some ns0 when ns0 > 0. -> (base_ns_per_op /. ns0) -. 1.
          | _ -> Float.nan
        in
        {
          target;
          label;
          group;
          executions;
          time_share;
          points;
          headroom;
          sensitivity = slope points;
          divergences = !divergences;
        })
      targets
  in
  let rows =
    List.sort
      (fun a b ->
        match compare b.sensitivity a.sensitivity with
        | 0 -> compare a.label b.label
        | c -> c)
      rows
  in
  {
    algo = cfg.factory.Set_intf.fname;
    mix = cfg.workload.Workload.mix.Workload.name;
    threads = cfg.threads;
    ops_per_thread = cfg.ops_per_thread;
    total_ops;
    seed = cfg.seed;
    factors = List.sort_uniq compare (1.0 :: cfg.factors);
    baseline_ns_per_op = base_ns_per_op;
    baseline_mops =
      (if base.makespan_ns > 0. then
         float_of_int total_ops /. base.makespan_ns *. 1000.
       else 0.);
    persistence_time_ns = persistence_time;
    rows;
  }

(* ---- export ----------------------------------------------------------- *)

let fmt_float v = if Float.is_nan v then "" else Printf.sprintf "%.3f" v

let to_csv p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "rank,group,target,executions,time_share,sensitivity_ns_per_op,sensitivity_per_exec,headroom,divergences";
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf ",ns_per_op@%gx" f))
    p.factors;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      let per_exec =
        if r.executions > 0 then
          Printf.sprintf "%.6f" (r.sensitivity /. float_of_int r.executions)
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%d,%s,%s,%s,%s,%d" (i + 1) r.group r.label
           r.executions (fmt_float r.time_share) (fmt_float r.sensitivity)
           per_exec (fmt_float r.headroom) r.divergences);
      List.iter
        (fun f ->
          Buffer.add_char buf ',';
          match List.assoc_opt f r.points with
          | Some ns -> Buffer.add_string buf (fmt_float ns)
          | None -> ())
        p.factors;
      Buffer.add_char buf '\n')
    p.rows;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN: absent quantities (mechanism time shares, headroom
   without a 0x sweep) serialize as null. *)
let json_float v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v

let to_json p =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{";
  add (Printf.sprintf "\"algo\":\"%s\"," (json_escape p.algo));
  add (Printf.sprintf "\"mix\":\"%s\"," (json_escape p.mix));
  add (Printf.sprintf "\"threads\":%d," p.threads);
  add (Printf.sprintf "\"ops_per_thread\":%d," p.ops_per_thread);
  add (Printf.sprintf "\"total_ops\":%d," p.total_ops);
  add (Printf.sprintf "\"seed\":%d," p.seed);
  add
    (Printf.sprintf "\"factors\":[%s],"
       (String.concat "," (List.map json_float p.factors)));
  add
    (Printf.sprintf "\"baseline_ns_per_op\":%s,"
       (json_float p.baseline_ns_per_op));
  add (Printf.sprintf "\"baseline_mops\":%s," (json_float p.baseline_mops));
  add
    (Printf.sprintf "\"persistence_time_ns\":%s,"
       (json_float p.persistence_time_ns));
  add "\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",";
      add "{";
      add (Printf.sprintf "\"rank\":%d," (i + 1));
      add (Printf.sprintf "\"group\":\"%s\"," (json_escape r.group));
      add (Printf.sprintf "\"target\":\"%s\"," (json_escape r.label));
      add (Printf.sprintf "\"executions\":%d," r.executions);
      add (Printf.sprintf "\"time_share\":%s," (json_float r.time_share));
      add (Printf.sprintf "\"sensitivity\":%s," (json_float r.sensitivity));
      add (Printf.sprintf "\"headroom\":%s," (json_float r.headroom));
      add (Printf.sprintf "\"divergences\":%d," r.divergences);
      add "\"points\":[";
      List.iteri
        (fun j (f, ns) ->
          if j > 0 then add ",";
          add
            (Printf.sprintf "{\"factor\":%s,\"ns_per_op\":%s}" (json_float f)
               (json_float ns)))
        r.points;
      add "]}")
    p.rows;
  add "]}";
  Buffer.contents buf
