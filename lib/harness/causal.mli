(** Causal what-if profiler: per-site virtual-speedup attribution.

    The paper's §5 argument is causal — specific pwb categories limit
    throughput while psyncs are nearly free — and it is established by
    hand-built ablations (figures 3f/4f/5/6).  This module generalizes
    those ablations into an automated profiler in the style of Coz
    (virtual speedup), but {e exact} rather than statistical, because
    time here is simulated:

    + run a fixed workload once under the [`Perf] scheduler and record
      the schedule (the tape of scheduling decisions);
    + for each {e target} — a persistence-instruction site, an emergent
      pwb impact category, or a mechanism knob of {!Nvm.Cost} — rerun
      the {e same} schedule ([Sim.run ~schedule]) with that target's
      cost virtually scaled by each factor of a sweep (0×, 0.5×, 2×
      by default) and read the throughput derivative off the virtual
      clocks.

    Because the run is fixed-work (N operations per thread, not a fixed
    duration), a replayed execution performs bit-identically the same
    operations in the same interleaving — only the clocks move — so
    site- and category-scaled reruns replay without divergence and the
    measured sensitivity is the exact direct cost of the target under
    the baseline interleaving.  Mechanism sweeps go through the shared
    cost table and may shift scheduling-point placement (a scaled cost
    crossing the simulator's switch threshold); any such schedule
    divergence is counted and reported per row rather than silently
    absorbed.

    What the held-fixed schedule deliberately excludes is the {e
    indirect} effect of a cost change on the interleaving itself
    (different contention patterns under different speeds); the figure
    generators, which measure free-running throughput at each scaling,
    capture that part. *)

(** A knob the profiler can virtually scale. *)
type target =
  | Site of string  (** a {!Nvm.Pstats} site, by name *)
  | Category of Pstats.category
      (** every executed pwb whose emergent impact class matches *)
  | Mechanism of string  (** a {!Nvm.Cost} knob, by field name *)

val pp_target : Format.formatter -> target -> unit

val with_scaled : (target * float) list -> (unit -> 'a) -> 'a
(** [with_scaled [(t1, f1); ...] f] installs every scaling (site and
    category multipliers; one tweaked cost table for the mechanism
    knobs), runs [f], and restores the previous state — exception-safe,
    nesting-safe (inner scalings compose with outer ones and restore in
    reverse order).
    @raise Invalid_argument on an unknown site or knob name. *)

val measure_scaled :
  ?duration_ns:float ->
  ?seed:int ->
  scaled:(target * float) list ->
  Set_intf.factory ->
  threads:int ->
  Workload.config ->
  Runner.point
(** [Runner.measure] under {!with_scaled} — the engine behind the
    category-removal figures: a figure-3f point is one call with the
    removed category's sites scaled to [0.].  Scaling a site to zero
    keeps the instruction (and its durability semantics, statistics and
    scheduling points) and only zeroes its virtual cost, unlike the
    site-disabling of earlier revisions which removed the instruction
    from the execution. *)

type config = {
  factory : Set_intf.factory;
  workload : Workload.config;
  threads : int;
  ops_per_thread : int;  (** fixed work per thread, not fixed duration *)
  seed : int;
  factors : float list;
      (** scaling sweep besides the implicit 1× baseline; a [Flag]
          mechanism knob is only swept at [0.] (off) *)
  sites : bool;  (** include one row per executed site *)
  categories : bool;  (** include one row per emergent impact class *)
  mechanisms : string list;  (** {!Nvm.Cost} knob names to sweep *)
}

val default_mechanisms : string list
(** The persistence- and contention-relevant knobs: the pwb path
    ([pwb_issue], [pwb_accept], [pwb_latency], [pwb_steal],
    [pwb_shared], [pwb_inflight_stall]), the fences ([pfence_base],
    [psync_base]), and the contention costs ([cas_contended],
    [cache_miss], [write_miss], [cas_drains_wb]). *)

val default_config : Set_intf.factory -> Workload.mix -> config
(** 16 threads × 250 ops, update-style key range 500, factors
    [0×/0.5×/2×], all sites and categories, {!default_mechanisms}. *)

val quick_config : Set_intf.factory -> Workload.mix -> config
(** Smaller: 8 threads × 120 ops — the smoke-test configuration. *)

type row = {
  target : target;
  label : string;  (** display name, e.g. ["tracking.new.pwb"] *)
  group : string;  (** ["pwb" | "pfence" | "psync" | "category" | "mechanism"] *)
  executions : int;  (** baseline executions (0 for mechanisms) *)
  time_share : float;
      (** the target's share of all persistence-instruction time in the
          baseline run; [nan] for mechanisms (their time is not separable
          per instruction) *)
  points : (float * float) list;
      (** [(factor, virtual ns/op)] including the 1× baseline, ascending *)
  headroom : float;
      (** relative throughput gain with the target's cost at zero —
          [thr(0×)/thr(1×) - 1], the "persistence-free headroom" of this
          target; [nan] if [0.] was not swept *)
  sensitivity : float;
      (** [d(ns/op)/d(factor)]: least-squares slope over [points].
          Positive means the target's cost is on the critical path;
          ≈ 0 means scaling it does not move throughput (the paper's
          psyncs) *)
  divergences : int;
      (** schedule divergences summed over this row's reruns: replay
          decisions whose recorded thread was not ready, plus any
          decision-count mismatch vs. the tape.  0 = every rerun was
          bit-identically the recorded interleaving *)
}

type profile = {
  algo : string;
  mix : string;
  threads : int;
  ops_per_thread : int;
  total_ops : int;
  seed : int;
  factors : float list;
  baseline_ns_per_op : float;  (** makespan / total_ops *)
  baseline_mops : float;
  persistence_time_ns : float;
      (** total virtual time charged by persistence instructions in the
          baseline run (denominator of [time_share]) *)
  rows : row list;  (** ranked by [sensitivity], descending *)
}

val profile : ?jobs:int -> config -> profile
(** Run the full attribution: one recorded baseline plus
    [|targets| × |factors|] replayed what-if runs.  [jobs] (default 1)
    fans the independent what-if reruns across domains
    ({!Parallel.run}); results are merged by work-item index, so the
    profile — and any CSV/JSON derived from it — is byte-identical at
    every [jobs] value. *)

val to_csv : profile -> string
(** One row per target: rank, group, label, executions, time share,
    sensitivity, headroom, divergences, then one [ns/op] column per
    factor.  Fixed [%.3f]-style formatting, byte-stable. *)

val to_json : profile -> string
(** The whole profile as a single JSON object (machine-readable output
    of [repro causal --json]). *)
