type config = {
  factory : Set_intf.factory;
  threads : int;
  ops_per_thread : int;
  workload : Workload.config;
  max_crashes : int;
}

type outcome = {
  completed_ops : int;
  recovered_ops : int;
  crashes : int;
  divergences : int;
      (* replay-schedule entries that could not be honored; any nonzero
         value means the run was NOT the recorded execution *)
}

(* External control of every campaign decision, for the exploration
   harness (Explore).  The controller sees exactly the decision points a
   scripted replay would force, so an explorer-found failure replays
   through the ordinary [script] path with zero divergences. *)
type ctl = {
  ctl_crash_at : kind:[ `Work | `Recover ] -> round:int -> int;
      (* crash point for the upcoming round; <= 0 = run crash-free *)
  ctl_choose : crashing:bool -> int array -> int;
      (* scheduling decision, passed to Sim.run ~choose *)
  ctl_wb : round:int -> Repro.wb;
      (* write-back resolution for the crash that ended [round] *)
}

let repro_of cfg ~seed ~error ~rounds =
  {
    Repro.algo = cfg.factory.Set_intf.fname;
    threads = cfg.threads;
    ops_per_thread = cfg.ops_per_thread;
    find_pct = cfg.workload.Workload.mix.Workload.find_pct;
    key_range = cfg.workload.Workload.key_range;
    prefill = cfg.workload.Workload.prefill_n;
    max_crashes = cfg.max_crashes;
    seed;
    error;
    rounds;
  }

let config_of (r : Repro.t) =
  match Set_intf.by_name r.algo with
  | Error msg -> Error (Printf.sprintf "repro references %s" msg)
  | Ok factory -> (
      match Workload.mix_of_find_pct r.find_pct with
      | exception Invalid_argument _ ->
          Error (Printf.sprintf "repro has invalid find-pct %d" r.find_pct)
      | mix ->
          Ok
            {
              factory;
              threads = r.threads;
              ops_per_thread = r.ops_per_thread;
              workload =
                {
                  Workload.mix;
                  key_range = r.key_range;
                  prefill_n = r.prefill;
                  dist = Workload.Uniform;
                };
              max_crashes = r.max_crashes;
            })

(* One seeded run.  [script] forces the crash point, schedule and
   write-back resolution of its rounds (later rounds run free); [ctl]
   instead delegates every decision to an external controller (schedules
   are then recorded, not replayed).  [on_divergence] reports every
   schedule-replay entry that could not be honored.  The returned round
   log always reflects what actually happened, so a failure can be
   replayed — or shrunk — from it. *)
let run_logged ?(script = []) ?on_divergence ?ctl ?observe cfg ~seed =
  Pmem.reset_pending ();
  Pstats.set_all_enabled true;
  let rng = Random.State.make [| seed; 0xC2A5 |] in
  let heap = Pmem.heap ~name:cfg.factory.Set_intf.fname () in
  let algo = cfg.factory.make heap ~threads:cfg.threads in
  Workload.prefill rng cfg.workload algo;
  Pmem.reset_pending ();
  if Metrics.active () then Metrics.reset ();
  let initial = algo.Set_intf.contents () in
  let events = ref [] in
  let recovered = ref 0 in
  let crashes = ref 0 in
  (* The system's durable invocation bookkeeping: the pending operation
     it will re-supply after a crash together with the framework's own
     token for it ([note_begin]), and each thread's remaining script. *)
  let pending = Array.make cfg.threads None in
  let remaining =
    Array.init cfg.threads (fun t ->
        let trng = Random.State.make [| seed; t; 0x0F5 |] in
        ref (List.init cfg.ops_per_thread (fun _ -> Workload.gen_op trng cfg.workload)))
  in
  let record op ok =
    events := { Oracle.eop = op; ok } :: !events
  in
  let worker tid (_ : int) =
    let rec go () =
      match !(remaining.(tid)) with
      | [] -> ()
      | op :: rest ->
          pending.(tid) <- Some (op, algo.Set_intf.note_begin op);
          Metrics.op_begin ~kind:(Metrics.kind_of_op op)
            ~key:(Set_intf.op_key op);
          Forensics.op_begin ~tid ~kind:(Metrics.kind_of_op op)
            ~key:(Set_intf.op_key op);
          let ok = Set_intf.apply algo op in
          Metrics.op_end ~ok;
          Forensics.op_end ~tid ~ok;
          record op ok;
          pending.(tid) <- None;
          remaining.(tid) := rest;
          go ()
    in
    go ()
  in
  let recoverer tid (_ : int) =
    (match pending.(tid) with
    | None -> ()
    | Some (op, token) ->
        Metrics.op_begin ~kind:"recover" ~key:(Set_intf.op_key op);
        Forensics.op_begin ~tid ~kind:"recover" ~key:(Set_intf.op_key op);
        let ok = algo.Set_intf.recover token in
        Metrics.op_end ~ok;
        Forensics.op_end ~tid ~ok;
        record op ok;
        incr recovered;
        pending.(tid) <- None;
        (match !(remaining.(tid)) with
        | _ :: rest -> remaining.(tid) := rest
        | [] -> ()));
    Metrics.recovery_thread_done ()
  in
  let crash_budget_steps = cfg.threads * cfg.ops_per_thread * 300 in
  (* watchdog: a livelocked structure must fail the campaign, not hang it *)
  let step_limit = max 2_000_000 (crash_budget_steps * 100) in
  let next_crash_at round =
    if !crashes >= cfg.max_crashes then -1
    else 1 + Random.State.int rng (max 2 (crash_budget_steps / (round + 1)))
  in
  let script = Array.of_list script in
  let log = ref [] in (* Repro.round list, newest first *)
  let divergences = ref 0 in
  let run_round ~kind round bodies =
    (* The rng draw happens even when the script or controller overrides
       the crash point, so a full-script replay consumes the harness rng
       in exactly the recorded pattern (Pmem.crash draws stay aligned). *)
    let picked = next_crash_at round in
    let forced = if round < Array.length script then Some script.(round) else None in
    let crash_at =
      match ctl with
      | Some c -> c.ctl_crash_at ~kind ~round
      | None -> (
          match forced with Some r -> r.Repro.crash_at | None -> picked)
    in
    let schedule =
      match (ctl, forced) with
      | Some _, _ -> [||] (* the controller decides; nothing to replay *)
      | None, Some r -> r.Repro.schedule
      | None, None -> [||]
    in
    let picks = ref [] in
    Trace.round ~kind round;
    Forensics.round ~kind round;
    Fun.protect
      ~finally:(fun () ->
        log :=
          {
            Repro.kind;
            crash_at;
            schedule = Array.of_list (List.rev !picks);
            wb = `Rng;
          }
          :: !log)
      (fun () ->
        Sim.run ~policy:`Random
          ~seed:(seed * 31 + round)
          ~crash_at ~step_limit ~schedule
          ~record:(fun tid -> picks := tid :: !picks)
          ~divergence:(fun ~step ~want ->
            incr divergences;
            Trace.note
              (Printf.sprintf "DIVERGENCE: round %d step %d wanted tid %d"
                 round step want);
            match on_divergence with
            | None -> ()
            | Some f -> f ~round ~step ~want)
          ?choose:(match ctl with Some c -> Some c.ctl_choose | None -> None)
          bodies)
  in
  (* The write-back resolution of the crash that just ended [round]:
     controller first, then the script, else the harness rng. *)
  let crash_wb round =
    match ctl with
    | Some c -> c.ctl_wb ~round
    | None -> (
        if round < Array.length script then script.(round).Repro.wb else `Rng)
  in
  let rec rounds ~kind round bodies =
    if round > 50 * cfg.max_crashes + 50 then Error "campaign did not converge"
    else
      match run_round ~kind round bodies with
      | Sim.All_done ->
          if kind = `Recover then Metrics.recovery_round_done round;
          if Array.exists (fun o -> o <> None) pending then
            (* recovery itself crashed: recover again *)
            rounds ~kind:`Recover (round + 1) (Array.init cfg.threads recoverer)
          else if Array.exists (fun r -> !r <> []) remaining then
            rounds ~kind:`Work (round + 1) (Array.init cfg.threads worker)
          else Ok ()
      | Sim.Crashed_at _ ->
          incr crashes;
          let wb = crash_wb round in
          (match wb with
          | `Rng -> Pmem.crash ~rng heap
          | (`Drop | `All | `Prefix _) as resolution ->
              Pmem.crash ~resolution heap);
          Forensics.note_crash ~round;
          (* patch the resolution into the round entry the finalizer just
             pushed, so the log replays with the same NVM state *)
          (match !log with
          | rd :: rest -> log := { rd with Repro.wb } :: rest
          | [] ->
              failwith
                (Printf.sprintf
                   "Crashes.run_logged: crash ended round %d (seed %d) but \
                    the round log is empty — every round's finalizer must \
                    push its entry before the crash resolution is patched in"
                   round seed));
          algo.Set_intf.recover_structure ();
          rounds ~kind:`Recover (round + 1) (Array.init cfg.threads recoverer)
  in
  let result =
    match rounds ~kind:`Work 0 (Array.init cfg.threads worker) with
    | Error _ as e -> e
    | exception Pmem.Poisoned what ->
        Error (Printf.sprintf "touched never-persisted data: %s" what)
    | exception Sim.Step_limit ->
        Error "step budget exhausted: livelock or starvation suspected"
    | Ok () -> (
        (* Violation messages carry the campaign coordinates (seed, round
           count, crash count) so a bare message is actionable without
           the repro file; the counts are pure functions of the recorded
           execution, so a replayed failure produces the identical
           string (Crashes.replay and the shrinker compare on it). *)
        let context = Printf.sprintf "seed %d, %d rounds, %d crashes" seed
            (List.length !log) !crashes
        in
        match algo.Set_intf.check () with
        | Error msg ->
            Error (Printf.sprintf "structure invariant: %s: %s" context msg)
        | Ok () -> (
            let final = algo.Set_intf.contents () in
            match Oracle.check ~initial ~final (List.rev !events) with
            | Error msg -> Error (Printf.sprintf "oracle: %s: %s" context msg)
            | Ok () ->
                Ok
                  {
                    completed_ops = List.length !events;
                    recovered_ops = !recovered;
                    crashes = !crashes;
                    divergences = !divergences;
                  }))
  in
  Metrics.note_heap_occupancy ~heap:(Pmem.heap_name heap)
    ~lines:(Pmem.lines_allocated heap);
  (* Post-run observation hook: the heap and structure are about to go out
     of scope, so this is the last point a space sweep can see them. *)
  (match observe with None -> () | Some f -> f heap algo);
  (match result with
  | Error msg -> Trace.note ("FAILURE: " ^ msg)
  | Ok _ -> ());
  (result, List.rev !log)

let run_once ?script ?repro_file ?observe cfg ~seed =
  let result, rounds = run_logged ?script ?observe cfg ~seed in
  (match (result, repro_file) with
  | Error error, Some path -> Repro.save path (repro_of cfg ~seed ~error ~rounds)
  | _ -> ());
  result

let replay (r : Repro.t) =
  match config_of r with
  | Error _ as e -> e
  | Ok cfg -> (
      let first_div = ref None in
      let on_divergence ~round ~step ~want =
        if !first_div = None then first_div := Some (round, step, want)
      in
      let result, _ = run_logged ~script:r.rounds ~on_divergence cfg ~seed:r.seed in
      (* Any divergence means the run was NOT the recorded execution:
         fail loudly — even a "reproduced" failure message could belong
         to a different interleaving. *)
      match (!first_div, result) with
      | Some (round, step, want), _ ->
          Error
            (Printf.sprintf
               "schedule divergence at round %d step %d (recorded tid %d not \
                ready): the replay executed a different interleaving"
               round step want)
      | None, Ok _ -> Ok ()
      | None, (Error _ as e) -> e)

(* ---- crash forensics --------------------------------------------------- *)

(* One campaign run with the forensic recorder attached: the recording
   costs nothing to ordinary campaigns because it only exists here.  A
   passing run yields no postmortem — that is the healthy-variant
   property test/test_forensics.ml locks down. *)
let forensic_run ?script ?on_divergence cfg ~seed =
  Forensics.start ();
  Fun.protect ~finally:Forensics.stop (fun () ->
      let result, rounds = run_logged ?script ?on_divergence cfg ~seed in
      let pm =
        match result with
        | Ok _ -> None
        | Error error ->
            Some
              (Forensics.build ~algo:cfg.factory.Set_intf.fname ~seed ~error)
      in
      (result, rounds, pm))

(* Replay a repro under the recorder and return its postmortem.  Like
   {!replay}, a schedule divergence or a different failure is an error:
   a postmortem must describe the recorded execution, not a neighbor. *)
let explain (r : Repro.t) =
  match config_of r with
  | Error msg -> Error msg
  | Ok cfg -> (
      let first_div = ref None in
      let on_divergence ~round ~step ~want =
        if !first_div = None then first_div := Some (round, step, want)
      in
      let result, _, pm =
        forensic_run ~script:r.rounds ~on_divergence cfg ~seed:r.seed
      in
      match (!first_div, result, pm) with
      | Some (round, step, want), _, _ ->
          Error
            (Printf.sprintf
               "schedule divergence at round %d step %d (recorded tid %d not \
                ready): the replay executed a different interleaving"
               round step want)
      | None, Ok _, _ ->
          Error "the repro did not fail on replay — nothing to explain"
      | None, Error e, Some pm ->
          if String.equal e r.Repro.error then Ok pm
          else
            Error
              (Printf.sprintf
                 "replay failed differently: recorded %S, replay produced %S"
                 r.Repro.error e)
      | None, Error e, None ->
          (* forensic_run always builds a postmortem for an Error result *)
          Error ("postmortem construction failed for: " ^ e))

(* ---- greedy shrinking -------------------------------------------------- *)

(* The failure "class" of a campaign error message: the prefix before the
   first ':' ("oracle", "structure invariant", "touched never-persisted
   data", ...).  Two messages match when they are identical or share this
   class — the detail after the colon (a key, a node name) legitimately
   varies across shrunk configurations of the same bug. *)
let error_class e =
  match String.index_opt e ':' with Some i -> String.sub e 0 i | None -> e

let errors_match ~original e =
  String.equal original e || String.equal (error_class original) (error_class e)

(* Minimize a failing campaign: fewer threads, fewer ops per thread, then
   an earlier first crash point — each move kept only if some probe run
   still fails {e with the original failure}: a probe that fails
   differently is a different bug, and adopting it would certify an
   unrelated counterexample ([match_error:false] relaxes this, for
   deliberately hunting neighborhoods).  Probing a handful of seeds per
   candidate makes the shrinker effective on schedule-dependent failures
   without giving up determinism: the result carries the exact seed,
   crash points and schedules of the shrunk failure, so it replays
   bit-for-bit. *)
let shrink ?(budget = 500) ?(match_error = true) (r : Repro.t) =
  let runs = ref 0 in
  let attempt (cand : Repro.t) ~scripts =
    match config_of cand with
    | Error _ -> None
    | Ok cfg ->
        let seeds = cand.seed :: List.init 7 (fun i -> cand.seed + i + 1) in
        List.find_map
          (fun seed ->
            List.find_map
              (fun script ->
                if !runs >= budget then None
                else begin
                  incr runs;
                  match run_logged ~script cfg ~seed with
                  | Ok _, _ -> None
                  | Error error, rounds ->
                      if
                        (not match_error)
                        || errors_match ~original:r.Repro.error error
                      then Some (repro_of cfg ~seed ~error ~rounds)
                      else None
                end)
              scripts)
          seeds
  in
  (* Candidates get a free run plus forced early crash points scaled to
     their size: a small config finishes in few steps, so the harness's
     unconstrained crash draw usually lands after the run already ended
     and the probe passes vacuously. *)
  let free_and_forced (cand : Repro.t) =
    let b = cand.Repro.threads * cand.Repro.ops_per_thread * 300 in
    let forced c =
      [ { Repro.kind = `Work; crash_at = c; schedule = [||]; wb = `Rng } ]
    in
    [ []; forced (max 2 (b / 40)); forced (max 2 (b / 10)) ]
  in
  let cur = ref r in
  let improved = ref true in
  while !improved && !runs < budget do
    improved := false;
    let adopt = function
      | Some r' ->
          cur := r';
          improved := true;
          true
      | None -> false
    in
    (* fewer threads (config change invalidates the recorded schedule) *)
    let t = !cur.Repro.threads in
    if t > 1 then
      ignore
        (List.exists
           (fun t' ->
             let cand = { !cur with Repro.threads = t' } in
             adopt (attempt cand ~scripts:(free_and_forced cand)))
           (if t > 3 then [ max 1 (t / 2); t - 1 ] else [ t - 1 ])
          : bool);
    (* fewer operations per thread *)
    let ops = !cur.Repro.ops_per_thread in
    if ops > 1 then
      ignore
        (List.exists
           (fun ops' ->
             let cand = { !cur with Repro.ops_per_thread = ops' } in
             adopt (attempt cand ~scripts:(free_and_forced cand)))
           (if ops > 3 then [ max 1 (ops / 2); ops - 1 ] else [ ops - 1 ])
          : bool);
    (* earlier first crash point, forced through the script *)
    (match !cur.Repro.rounds with
    | { Repro.kind = `Work; crash_at; _ } :: _ when crash_at > 2 ->
        ignore
          (List.exists
             (fun c ->
               adopt
                 (attempt !cur
                    ~scripts:
                      [
                        [
                          {
                            Repro.kind = `Work;
                            crash_at = c;
                            schedule = [||];
                            wb = `Rng;
                          };
                        ];
                      ]))
             [ crash_at / 2; crash_at - 1 ]
            : bool)
    | _ -> ())
  done;
  !cur

let run_campaign ?repro_file cfg ~seeds =
  let rec go acc n = function
    | [] -> Ok (n, acc)
    | seed :: rest -> (
        match run_once ?repro_file cfg ~seed with
        | Error msg -> Error (Printf.sprintf "seed %d: %s" seed msg)
        | Ok o ->
            go
              {
                completed_ops = acc.completed_ops + o.completed_ops;
                recovered_ops = acc.recovered_ops + o.recovered_ops;
                crashes = acc.crashes + o.crashes;
                divergences = acc.divergences + o.divergences;
              }
              (n + 1) rest)
  in
  go { completed_ops = 0; recovered_ops = 0; crashes = 0; divergences = 0 } 0
    seeds
