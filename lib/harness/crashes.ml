type config = {
  factory : Set_intf.factory;
  threads : int;
  ops_per_thread : int;
  workload : Workload.config;
  max_crashes : int;
}

type outcome = {
  completed_ops : int;
  recovered_ops : int;
  crashes : int;
}

let repro_of cfg ~seed ~error ~rounds =
  {
    Repro.algo = cfg.factory.Set_intf.fname;
    threads = cfg.threads;
    ops_per_thread = cfg.ops_per_thread;
    find_pct = cfg.workload.Workload.mix.Workload.find_pct;
    key_range = cfg.workload.Workload.key_range;
    prefill = cfg.workload.Workload.prefill_n;
    max_crashes = cfg.max_crashes;
    seed;
    error;
    rounds;
  }

let config_of (r : Repro.t) =
  match Set_intf.by_name r.algo with
  | None -> Error (Printf.sprintf "repro references unknown algorithm %S" r.algo)
  | Some factory -> (
      match Workload.mix_of_find_pct r.find_pct with
      | exception Invalid_argument _ ->
          Error (Printf.sprintf "repro has invalid find-pct %d" r.find_pct)
      | mix ->
          Ok
            {
              factory;
              threads = r.threads;
              ops_per_thread = r.ops_per_thread;
              workload =
                {
                  Workload.mix;
                  key_range = r.key_range;
                  prefill_n = r.prefill;
                };
              max_crashes = r.max_crashes;
            })

(* One seeded run.  [script] forces the crash point and replays the
   recorded schedule of its rounds (later rounds run free); the returned
   round log always reflects what actually happened, so a failure can be
   replayed — or shrunk — from it. *)
let run_logged ?(script = []) cfg ~seed =
  Pmem.reset_pending ();
  Pstats.set_all_enabled true;
  let rng = Random.State.make [| seed; 0xC2A5 |] in
  let heap = Pmem.heap ~name:cfg.factory.Set_intf.fname () in
  let algo = cfg.factory.make heap ~threads:cfg.threads in
  Workload.prefill rng cfg.workload algo;
  Pmem.reset_pending ();
  let initial = algo.Set_intf.contents () in
  let events = ref [] in
  let recovered = ref 0 in
  let crashes = ref 0 in
  (* The system's durable invocation bookkeeping: the pending operation it
     will re-supply to Op.Recover, and each thread's remaining script. *)
  let pending = Array.make cfg.threads None in
  let remaining =
    Array.init cfg.threads (fun t ->
        let trng = Random.State.make [| seed; t; 0x0F5 |] in
        ref (List.init cfg.ops_per_thread (fun _ -> Workload.gen_op trng cfg.workload)))
  in
  let record op ok =
    events := { Oracle.eop = op; ok } :: !events
  in
  let worker tid (_ : int) =
    let rec go () =
      match !(remaining.(tid)) with
      | [] -> ()
      | op :: rest ->
          pending.(tid) <- Some op;
          let ok = Set_intf.apply algo op in
          record op ok;
          pending.(tid) <- None;
          remaining.(tid) := rest;
          go ()
    in
    go ()
  in
  let recoverer tid (_ : int) =
    match pending.(tid) with
    | None -> ()
    | Some op ->
        let ok = algo.Set_intf.recover op in
        record op ok;
        incr recovered;
        pending.(tid) <- None;
        (match !(remaining.(tid)) with
        | _ :: rest -> remaining.(tid) := rest
        | [] -> ())
  in
  let crash_budget_steps = cfg.threads * cfg.ops_per_thread * 300 in
  (* watchdog: a livelocked structure must fail the campaign, not hang it *)
  let step_limit = max 2_000_000 (crash_budget_steps * 100) in
  let next_crash_at round =
    if !crashes >= cfg.max_crashes then -1
    else 1 + Random.State.int rng (max 2 (crash_budget_steps / (round + 1)))
  in
  let script = Array.of_list script in
  let log = ref [] in (* Repro.round list, newest first *)
  let run_round ~kind round bodies =
    (* The rng draw happens even when the script overrides the crash
       point, so a full-script replay consumes the harness rng in exactly
       the recorded pattern (Pmem.crash draws stay aligned). *)
    let picked = next_crash_at round in
    let forced = if round < Array.length script then Some script.(round) else None in
    let crash_at =
      match forced with Some r -> r.Repro.crash_at | None -> picked
    in
    let schedule =
      match forced with Some r -> r.Repro.schedule | None -> [||]
    in
    let picks = ref [] in
    Trace.round ~kind round;
    Fun.protect
      ~finally:(fun () ->
        log :=
          { Repro.kind; crash_at; schedule = Array.of_list (List.rev !picks) }
          :: !log)
      (fun () ->
        Sim.run ~policy:`Random
          ~seed:(seed * 31 + round)
          ~crash_at ~step_limit ~schedule
          ~record:(fun tid -> picks := tid :: !picks)
          bodies)
  in
  let rec rounds ~kind round bodies =
    if round > 50 * cfg.max_crashes + 50 then Error "campaign did not converge"
    else
      match run_round ~kind round bodies with
      | Sim.All_done ->
          if Array.exists (fun o -> o <> None) pending then
            (* recovery itself crashed: recover again *)
            rounds ~kind:`Recover (round + 1) (Array.init cfg.threads recoverer)
          else if Array.exists (fun r -> !r <> []) remaining then
            rounds ~kind:`Work (round + 1) (Array.init cfg.threads worker)
          else Ok ()
      | Sim.Crashed_at _ ->
          incr crashes;
          Pmem.crash ~rng heap;
          algo.Set_intf.recover_structure ();
          rounds ~kind:`Recover (round + 1) (Array.init cfg.threads recoverer)
  in
  let result =
    match rounds ~kind:`Work 0 (Array.init cfg.threads worker) with
    | Error _ as e -> e
    | exception Pmem.Poisoned what ->
        Error (Printf.sprintf "touched never-persisted data: %s" what)
    | exception Sim.Step_limit ->
        Error "step budget exhausted: livelock or starvation suspected"
    | Ok () -> (
        match algo.Set_intf.check () with
        | Error msg -> Error ("structure invariant: " ^ msg)
        | Ok () -> (
            let final = algo.Set_intf.contents () in
            match Oracle.check ~initial ~final (List.rev !events) with
            | Error msg -> Error ("oracle: " ^ msg)
            | Ok () ->
                Ok
                  {
                    completed_ops = List.length !events;
                    recovered_ops = !recovered;
                    crashes = !crashes;
                  }))
  in
  (match result with
  | Error msg -> Trace.note ("FAILURE: " ^ msg)
  | Ok _ -> ());
  (result, List.rev !log)

let run_once ?script ?repro_file cfg ~seed =
  let result, rounds = run_logged ?script cfg ~seed in
  (match (result, repro_file) with
  | Error error, Some path -> Repro.save path (repro_of cfg ~seed ~error ~rounds)
  | _ -> ());
  result

let replay (r : Repro.t) =
  match config_of r with
  | Error _ as e -> e
  | Ok cfg -> (
      match run_logged ~script:r.rounds cfg ~seed:r.seed with
      | Ok _, _ -> Ok ()
      | Error e, _ -> Error e)

(* ---- greedy shrinking -------------------------------------------------- *)

(* Minimize a failing campaign: fewer threads, fewer ops per thread, then
   an earlier first crash point — each move kept only if some probe run
   still fails.  Probing a handful of seeds per candidate makes the
   shrinker effective on schedule-dependent failures without giving up
   determinism: the result carries the exact seed, crash points and
   schedules of the shrunk failure, so it replays bit-for-bit. *)
let shrink ?(budget = 500) (r : Repro.t) =
  let runs = ref 0 in
  let attempt (cand : Repro.t) ~scripts =
    match config_of cand with
    | Error _ -> None
    | Ok cfg ->
        let seeds = cand.seed :: List.init 7 (fun i -> cand.seed + i + 1) in
        List.find_map
          (fun seed ->
            List.find_map
              (fun script ->
                if !runs >= budget then None
                else begin
                  incr runs;
                  match run_logged ~script cfg ~seed with
                  | Ok _, _ -> None
                  | Error error, rounds ->
                      Some (repro_of cfg ~seed ~error ~rounds)
                end)
              scripts)
          seeds
  in
  (* Candidates get a free run plus forced early crash points scaled to
     their size: a small config finishes in few steps, so the harness's
     unconstrained crash draw usually lands after the run already ended
     and the probe passes vacuously. *)
  let free_and_forced (cand : Repro.t) =
    let b = cand.Repro.threads * cand.Repro.ops_per_thread * 300 in
    let forced c = [ { Repro.kind = `Work; crash_at = c; schedule = [||] } ] in
    [ []; forced (max 2 (b / 40)); forced (max 2 (b / 10)) ]
  in
  let cur = ref r in
  let improved = ref true in
  while !improved && !runs < budget do
    improved := false;
    let adopt = function
      | Some r' ->
          cur := r';
          improved := true;
          true
      | None -> false
    in
    (* fewer threads (config change invalidates the recorded schedule) *)
    let t = !cur.Repro.threads in
    if t > 1 then
      ignore
        (List.exists
           (fun t' ->
             let cand = { !cur with Repro.threads = t' } in
             adopt (attempt cand ~scripts:(free_and_forced cand)))
           (if t > 3 then [ max 1 (t / 2); t - 1 ] else [ t - 1 ])
          : bool);
    (* fewer operations per thread *)
    let ops = !cur.Repro.ops_per_thread in
    if ops > 1 then
      ignore
        (List.exists
           (fun ops' ->
             let cand = { !cur with Repro.ops_per_thread = ops' } in
             adopt (attempt cand ~scripts:(free_and_forced cand)))
           (if ops > 3 then [ max 1 (ops / 2); ops - 1 ] else [ ops - 1 ])
          : bool);
    (* earlier first crash point, forced through the script *)
    (match !cur.Repro.rounds with
    | { Repro.kind = `Work; crash_at; _ } :: _ when crash_at > 2 ->
        ignore
          (List.exists
             (fun c ->
               adopt
                 (attempt !cur
                    ~scripts:
                      [ [ { Repro.kind = `Work; crash_at = c; schedule = [||] } ] ]))
             [ crash_at / 2; crash_at - 1 ]
            : bool)
    | _ -> ())
  done;
  !cur

let run_campaign ?repro_file cfg ~seeds =
  let rec go acc n = function
    | [] -> Ok (n, acc)
    | seed :: rest -> (
        match run_once ?repro_file cfg ~seed with
        | Error msg -> Error (Printf.sprintf "seed %d: %s" seed msg)
        | Ok o ->
            go
              {
                completed_ops = acc.completed_ops + o.completed_ops;
                recovered_ops = acc.recovered_ops + o.recovered_ops;
                crashes = acc.crashes + o.crashes;
              }
              (n + 1) rest)
  in
  go { completed_ops = 0; recovered_ops = 0; crashes = 0 } 0 seeds
