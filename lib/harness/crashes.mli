(** Crash-injection campaigns with detectability checking.

    Each run executes a seeded random workload under the adversarial
    (random) scheduler, crashes the system at a random step, resolves
    outstanding write-backs adversarially, performs structure recovery,
    then invokes every interrupted thread's recovery function with its
    pending operation — exactly the paper's model, where the system
    re-invokes [Op.Recover] with the original arguments (§2).  Multiple
    crashes may hit the same run, including during recovery.

    The run passes iff no poisoned (never-persisted) data is touched, the
    structure's invariants hold, and the full set of responses — completed
    plus recovered — satisfies the per-key oracle.

    Every run records its rounds (crash point + schedule); a failing run
    can be saved as a {!Repro.t}, replayed bit-for-bit, and greedily
    {!shrink}-minimized. *)

type config = {
  factory : Set_intf.factory;
  threads : int;
  ops_per_thread : int;
  workload : Workload.config;
  max_crashes : int;  (** how many crashes a single run may suffer *)
}

type outcome = {
  completed_ops : int;
  recovered_ops : int;  (** ops whose response came from recovery *)
  crashes : int;
  divergences : int;
      (** replay-schedule entries that could not be honored.  Nonzero
          means the run was {e not} the recorded execution: treat any
          "replayed" result as meaningless. *)
}

(** External control of every campaign decision, for the exploration
    harness ({!Explore}): the crash point of each round, every scheduling
    decision (see [Sim.run ?choose]) and the write-back resolution of
    each crash.  The controller sees exactly the decision points a
    scripted replay would force, so an explorer-found failure replays
    through the ordinary [script] path with zero divergences. *)
type ctl = {
  ctl_crash_at : kind:[ `Work | `Recover ] -> round:int -> int;
      (** crash point for the upcoming round; [<= 0] = run crash-free *)
  ctl_choose : crashing:bool -> int array -> int;
      (** scheduling decision, passed to [Sim.run ~choose] *)
  ctl_wb : round:int -> Repro.wb;
      (** write-back resolution for the crash that ended [round] *)
}

val run_once :
  ?script:Repro.round list ->
  ?repro_file:string ->
  ?observe:(Pmem.heap -> Set_intf.t -> unit) ->
  config ->
  seed:int ->
  (outcome, string) result
(** One seeded run; [Error] describes the first detected violation.
    [script] forces the crash point, schedule and write-back resolution
    of its rounds (later rounds run free).  With [repro_file], a failing
    run writes a replayable {!Repro.t} there.  [observe] fires once after
    the verdict, while the run's heap and structure are still in scope —
    the space sweep's entry point. *)

val run_logged :
  ?script:Repro.round list ->
  ?on_divergence:(round:int -> step:int -> want:int -> unit) ->
  ?ctl:ctl ->
  ?observe:(Pmem.heap -> Set_intf.t -> unit) ->
  config ->
  seed:int ->
  (outcome, string) result * Repro.round list
(** Like {!run_once}, also returning the recorded round log (crash point,
    schedule and write-back resolution per simulator round) — the raw
    material of a repro.  [on_divergence] fires for every scripted
    schedule entry that could not be honored; [ctl] delegates all
    campaign decisions to an external controller instead of the
    script/rng. *)

val run_campaign :
  ?repro_file:string ->
  config ->
  seeds:int list ->
  (int * outcome, string) result
(** All seeds; returns the run count and accumulated outcome, or the
    seed's error message prefixed with the seed.  [repro_file] is passed
    through to {!run_once}. *)

val repro_of :
  config -> seed:int -> error:string -> rounds:Repro.round list -> Repro.t

val config_of : Repro.t -> (config, string) result
(** Resolve a repro back to a runnable configuration ([Error] if the
    factory name is unknown). *)

val replay : Repro.t -> (unit, string) result
(** Re-run a repro with its recorded crash points, schedules and
    write-back resolutions forced.  [Error] is the reproduced failure —
    for a faithful repro it equals [r.error]; [Ok ()] means the failure
    did {e not} reproduce.  If any recorded schedule entry cannot be
    honored the result is an [Error] naming the divergence point (round,
    step, wanted tid), {e regardless} of how the diverged run ended: a
    diverged "replay" proves nothing about the recorded failure. *)

val forensic_run :
  ?script:Repro.round list ->
  ?on_divergence:(round:int -> step:int -> want:int -> unit) ->
  config ->
  seed:int ->
  (outcome, string) result * Repro.round list * Forensics.postmortem option
(** {!run_logged} with the {!Forensics} recorder attached for the run's
    duration.  A failing run additionally returns its postmortem; a
    passing run returns [None] — healthy variants yield zero
    postmortems.  Ordinary campaigns never pay for this: the recorder
    only exists inside this call. *)

val explain : Repro.t -> (Forensics.postmortem, string) result
(** Replay a repro under the forensic recorder and return the
    postmortem of its failure.  Like {!replay}, a schedule divergence is
    an error; so are a passing replay and a replay that fails with a
    different message — a postmortem must describe the recorded
    execution.  Deterministic: the same repro explains to byte-identical
    {!Forensics.render_text}/{!Forensics.render_json} output. *)

val shrink : ?budget:int -> ?match_error:bool -> Repro.t -> Repro.t
(** Greedily minimize a failing repro: fewer threads, fewer ops per
    thread, earlier first crash point — each move kept only if a probe
    run (free or with a forced early crash scaled to the candidate's
    size) still fails {e with the original failure}: identical message,
    or the same class (prefix before the first [':']).  A probe that
    fails differently is a different bug and is not adopted;
    [match_error:false] relaxes this.  [budget] bounds the total number
    of probe runs (default 500).  The result is itself a faithful,
    replayable repro. *)
