(* Bounded exhaustive exploration (stateless model checking) of small
   crash campaigns.

   The explorer runs one campaign configuration over and over through
   [Crashes.run_logged ~ctl], doing depth-first search over every
   decision the campaign makes:

   - {e scheduling}: which ready thread runs at each simulator step,
     with CHESS-style preemption bounding — the default schedule is
     non-preemptive (keep running the current thread until it blocks or
     finishes; free choice points, where the previous thread is not
     ready, are explored fully), and at most [preemptions] decisions per
     execution may deviate from it while the previous thread was still
     runnable;
   - {e crash points}: for every round, either no crash or a crash at
     each step [1..n] of that round's crash-free execution (discovered
     when the no-crash branch runs), while the per-execution crash
     budget lasts;
   - {e write-back resolution}: at each crash, a bounded sweep of
     deterministic adversarial subsets — drop everything, complete
     everything, and each thread's [k]-oldest prefix for
     [k = 1..wb_width] (capped by the actual queue depth, since a prefix
     at least as deep as the fullest queue is [`All]).

   Everything is deterministic given the campaign seed and the decision
   path, so the search is {e stateless}: an execution is (re)produced by
   forcing a prefix of recorded decisions and letting defaults extend
   it; backtracking flips the deepest decision with untried
   alternatives.  Every execution runs the full oracle / invariant /
   poison checks of [Crashes.run_logged], and a failing execution's
   round log is already a standard [Repro.t] script — replay and
   shrinking work on it unchanged, with zero schedule divergences. *)

type config = {
  campaign : Crashes.config;
  seed : int;
  preemptions : int;  (* CHESS bound: max preemptive switches per execution *)
  crashes : int;  (* max crashes injected per execution *)
  wb_width : int;  (* `Prefix depths enumerated per crash, besides `Drop/`All *)
  max_execs : int;  (* execution budget; 0 = until the tree is exhausted *)
}

type stats = {
  executions : int;
  failures : int;
  decision_points : int;  (* scheduling frames expanded *)
  crash_points : int;  (* crash alternatives enumerated *)
  wb_choices : int;  (* write-back alternatives enumerated *)
  pruned : int;  (* schedule alternatives suppressed by the preemption bound *)
  complete : bool;  (* the bounded tree was exhausted *)
}

type outcome = {
  stats : stats;
  failure : Repro.t option;  (* first failure, as a replayable repro *)
}

(* ---- the decision tree ------------------------------------------------- *)

type choice =
  | Sched of int  (* run this tid *)
  | Crash of int  (* crash the upcoming round at this step; 0 = no crash *)
  | Wb of Repro.wb  (* resolution of the crash that just fired *)

type frame = {
  mutable chosen : choice;
  mutable untried : choice list;
  fround : int;  (* campaign round this frame belongs to *)
}

(* Minimal growable frame stack (OCaml 5.1 has no Dynarray). *)
type path = { mutable frames : frame array; mutable len : int }

let path_create () = { frames = [||]; len = 0 }

let path_push p f =
  if p.len = Array.length p.frames then begin
    let bigger = Array.make (max 64 (2 * p.len)) f in
    Array.blit p.frames 0 bigger 0 p.len;
    p.frames <- bigger
  end;
  p.frames.(p.len) <- f;
  p.len <- p.len + 1

let copy_frame f = { chosen = f.chosen; untried = f.untried; fround = f.fround }

(* One depth-first search over the subtree reachable from [path] without
   ever flipping its pre-seeded frames (their untried lists are empty;
   backtracking pops them and runs dry).  [resume] means the path was
   already executed once by the caller (the discovery execution of a
   parallel run): start by backtracking instead of re-executing it.
   [grant] asks for permission to run one more execution — the local
   budget check at [jobs = 1], one shared atomic decrement per execution
   across the pool at [jobs > 1]. *)
let search ?(stop_on_failure = true) ?progress ~grant ~resume path cfg =
  let executions = ref 0 in
  let failures = ref 0 in
  let decision_points = ref 0 in
  let crash_points = ref 0 in
  let wb_choices = ref 0 in
  let pruned = ref 0 in
  let complete = ref false in
  let first_failure = ref None in
  let snapshot () =
    {
      executions = !executions;
      failures = !failures;
      decision_points = !decision_points;
      crash_points = !crash_points;
      wb_choices = !wb_choices;
      pruned = !pruned;
      complete = !complete;
    }
  in
  let report () = match progress with None -> () | Some f -> f (snapshot ()) in
  (* One execution: consume the path as a forced prefix, extend it with
     default choices past the end.  Every callback below fires in a
     deterministic order given the prefix, so frame kinds always line up
     — a mismatch would mean the campaign itself is nondeterministic. *)
  let exec_once () =
    let cursor = ref 0 in
    let fresh_from = path.len in
    let prev = ref (-1) in  (* last scheduled tid of the current round *)
    let preemptions_used = ref 0 in
    let take mk =
      let f =
        if !cursor < path.len then path.frames.(!cursor)
        else begin
          let f = mk () in
          path_push path f;
          f
        end
      in
      incr cursor;
      f
    in
    let kind_error what =
      failwith
        (Printf.sprintf
           "Explore: nondeterministic campaign (frame %d is not a %s frame: \
            replaying the same prefix hit a different decision kind)"
           (!cursor - 1) what)
    in
    let ctl_crash_at ~kind:_ ~round =
      prev := -1;
      let f = take (fun () -> { chosen = Crash 0; untried = []; fround = round }) in
      match f.chosen with Crash s -> s | _ -> kind_error "crash"
    in
    let ctl_choose ~crashing ready =
      let f =
        take (fun () ->
            if crashing || Array.length ready <= 1 then
              (* post-crash drain order is semantically inert, and a
                 single ready thread leaves nothing to choose *)
              { chosen = Sched ready.(0); untried = []; fround = -1 }
            else begin
              let p = !prev in
              let p_ready = Array.exists (fun t -> t = p) ready in
              let default = if p_ready then p else ready.(0) in
              let alts =
                Array.to_list ready |> List.filter (fun t -> t <> default)
              in
              let alts =
                (* deviating while the previous thread could continue is
                   a preemption; past the budget such branches are
                   pruned (and counted, so coverage is honest).  When
                   the previous thread is blocked or done, every choice
                   is a free scheduling point. *)
                if p_ready && !preemptions_used >= cfg.preemptions then begin
                  pruned := !pruned + List.length alts;
                  []
                end
                else alts
              in
              incr decision_points;
              { chosen = Sched default; untried = List.map (fun t -> Sched t) alts; fround = -1 }
            end)
      in
      match f.chosen with
      | Sched t ->
          if (not crashing) && Array.exists (fun x -> x = !prev) ready && t <> !prev
          then incr preemptions_used;
          prev := t;
          t
      | _ -> kind_error "sched"
    in
    let ctl_wb ~round =
      let f =
        take (fun () ->
            let m = Pmem.max_outstanding_writebacks () in
            let alts =
              if m = 0 then [] (* nothing pending: every choice is `Drop *)
              else
                List.init
                  (min cfg.wb_width (m - 1))
                  (fun i -> Wb (`Prefix (i + 1)))
                @ [ Wb `All ]
            in
            wb_choices := !wb_choices + List.length alts;
            { chosen = Wb `Drop; untried = alts; fround = round })
      in
      match f.chosen with Wb w -> w | _ -> kind_error "wb"
    in
    let ctl = { Crashes.ctl_crash_at; ctl_choose; ctl_wb } in
    let result, rounds = Crashes.run_logged ~ctl cfg.campaign ~seed:cfg.seed in
    (result, rounds, fresh_from)
  in
  (* After an execution, frames created fresh on this path learn their
     alternatives that depend on how the execution went: a round's crash
     points are the steps [1..n] of its crash-free run, known only once
     the no-crash default branch has executed. *)
  let backfill_crash_frames rounds fresh_from =
    let rounds = Array.of_list rounds in
    let crashes_before = ref 0 in
    for i = 0 to path.len - 1 do
      let f = path.frames.(i) in
      match f.chosen with
      | Crash s ->
          if i >= fresh_from && s = 0 && !crashes_before < cfg.crashes
             && f.fround < Array.length rounds
          then begin
            (* steps of the round = recorded decisions minus the initial
               dispatch of each of the campaign's threads *)
            let sched = rounds.(f.fround).Repro.schedule in
            let n = Array.length sched - cfg.campaign.Crashes.threads in
            f.untried <- List.init (max 0 n) (fun i -> Crash (i + 1));
            crash_points := !crash_points + max 0 n
          end;
          if s > 0 then incr crashes_before
      | _ -> ()
    done
  in
  (* Flip the deepest decision with untried alternatives; false = tree
     exhausted. *)
  let backtrack () =
    let rec pop () =
      if path.len = 0 then false
      else
        let f = path.frames.(path.len - 1) in
        match f.untried with
        | [] ->
            path.len <- path.len - 1;
            pop ()
        | c :: rest ->
            f.chosen <- c;
            f.untried <- rest;
            true
    in
    pop ()
  in
  let continue = ref true in
  if resume then begin
    (* the caller already executed (and backfilled) this path once *)
    if not (grant !executions) then continue := false
    else if not (backtrack ()) then begin
      complete := true;
      continue := false
    end
  end;
  while !continue do
    incr executions;
    let result, rounds, fresh_from = exec_once () in
    backfill_crash_frames rounds fresh_from;
    (match result with
    | Error error ->
        incr failures;
        if !first_failure = None then
          first_failure :=
            Some (Crashes.repro_of cfg.campaign ~seed:cfg.seed ~error ~rounds);
        Trace.note (Printf.sprintf "EXPLORE FAILURE (exec %d): %s" !executions error);
        if stop_on_failure then continue := false
    | Ok _ -> ());
    if !continue then begin
      if not (grant !executions) then
        continue := false (* budget exhausted: tree incomplete *)
      else if not (backtrack ()) then begin
        complete := true;
        continue := false
      end
    end;
    if !executions mod 500 = 0 then report ()
  done;
  (* A failure stopped the search before the tree was exhausted — the
     enumeration is complete only when backtracking ran dry. *)
  report ();
  { stats = snapshot (); failure = !first_failure }

(* ---- parallel fan-out --------------------------------------------------- *)

(* The decision tree is partitioned at its {e shallowest} frame with
   untried alternatives, discovered by running the all-defaults execution
   once on the calling domain: work item 0 continues the discovery path
   with that frame's alternatives removed (it owns the default subtree),
   and item [k] pins the frame to its [k]-th alternative over the same
   forced prefix.  Because the sequential explorer backtracks deepest
   frame first, it enumerates exactly item 0's subtree first, then each
   pinned subtree in alternative order — so merging by work-item index
   (Parallel's contract) reproduces the sequential visit order: summed
   stats match an exhausted sequential run, and the lowest-indexed
   failure {e is} the sequential first failure, making repro files
   bit-identical across [-j] values. *)

let zero_stats =
  {
    executions = 0;
    failures = 0;
    decision_points = 0;
    crash_points = 0;
    wb_choices = 0;
    pruned = 0;
    complete = false;
  }

let sum_stats a b =
  {
    executions = a.executions + b.executions;
    failures = a.failures + b.failures;
    decision_points = a.decision_points + b.decision_points;
    crash_points = a.crash_points + b.crash_points;
    wb_choices = a.wb_choices + b.wb_choices;
    pruned = a.pruned + b.pruned;
    complete = a.complete && b.complete;
  }

let run ?(stop_on_failure = true) ?progress ?(jobs = 1) cfg =
  if jobs <= 1 then begin
    let grant e = not (cfg.max_execs > 0 && e >= cfg.max_execs) in
    search ~stop_on_failure ?progress ~grant ~resume:false (path_create ()) cfg
  end
  else begin
    (* Discovery: one all-defaults execution on the calling domain, as a
       1-execution budget search so stats and backfill run the standard
       code path. *)
    let discovery_path = path_create () in
    let discovery =
      search ~stop_on_failure ?progress:None
        ~grant:(fun _ -> false)
        ~resume:false discovery_path cfg
    in
    let over_budget = cfg.max_execs > 0 && cfg.max_execs <= 1 in
    (* shallowest frame with alternatives = the partition point *)
    let split = ref (-1) in
    (try
       for i = 0 to discovery_path.len - 1 do
         if discovery_path.frames.(i).untried <> [] then begin
           split := i;
           raise Exit
         end
       done
     with Exit -> ());
    let j = !split in
    if (stop_on_failure && discovery.failure <> None) || over_budget || j < 0
    then begin
      (* Nothing to fan out: the discovery execution failed (and we stop
         on failure), the budget is spent, or the tree had a single
         execution — in which case the enumeration is complete. *)
      let complete =
        j < 0 && (not over_budget)
        && not (stop_on_failure && discovery.failure <> None)
      in
      let stats = { discovery.stats with complete } in
      (match progress with None -> () | Some f -> f stats);
      { discovery with stats }
    end
    else begin
      let pivot = discovery_path.frames.(j) in
      let alts = pivot.untried in
      pivot.untried <- [];
      (* Shared execution budget: discovery consumed one. *)
      let remaining = Atomic.make (cfg.max_execs - 1) in
      let grant _ =
        cfg.max_execs = 0 || Atomic.fetch_and_add remaining (-1) > 0
      in
      let prefix =
        Array.init j (fun i -> copy_frame discovery_path.frames.(i))
      in
      let items =
        Array.of_list
          (`Continue
          :: List.map (fun alt -> `Pinned alt) alts)
      in
      let outcomes =
        Parallel.run ~jobs
          (fun _ item ->
            match item with
            | `Continue ->
                search ~stop_on_failure ?progress:None ~grant ~resume:true
                  discovery_path cfg
            | `Pinned alt ->
                (* a pinned item's first execution is not the free
                   discovery one — it must claim budget like any other *)
                if not (grant 0) then { stats = zero_stats; failure = None }
                else begin
                  let path = path_create () in
                  Array.iter (fun f -> path_push path (copy_frame f)) prefix;
                  path_push path
                    { chosen = alt; untried = []; fround = pivot.fround };
                  search ~stop_on_failure ?progress:None ~grant ~resume:false
                    path cfg
                end)
          items
      in
      let stats =
        Array.fold_left
          (fun acc o -> sum_stats acc o.stats)
          { discovery.stats with complete = true }
          outcomes
      in
      let failure =
        match discovery.failure with
        | Some _ as f -> f
        | None -> (
            match
              Parallel.first_failure (fun o -> o.failure <> None) outcomes
            with
            | Some (_, o) -> o.failure
            | None -> None)
      in
      (* Sequential semantics: a failure that stopped the search leaves
         the enumeration incomplete even if every fanned subtree happened
         to run dry. *)
      let complete =
        stats.complete && not (stop_on_failure && failure <> None)
      in
      let stats = { stats with complete } in
      (match progress with None -> () | Some f -> f stats);
      { stats; failure }
    end
  end
