(** Bounded exhaustive exploration (stateless model checking) of small
    crash campaigns.

    The explorer re-runs one campaign configuration under external
    control of every decision it makes — scheduling, crash points, and
    write-back resolution at each crash — doing depth-first search over
    the resulting decision tree:

    - scheduling is explored with CHESS-style {e preemption bounding}:
      the default schedule is non-preemptive (the running thread keeps
      running until it blocks or finishes), and at most [preemptions]
      decisions per execution may deviate from it while the previous
      thread was still runnable.  Free choice points (previous thread
      blocked or done) are always explored fully.
    - a crash is enumerated at {e every} shared-memory step of each
      round (plus the crash-free branch), up to [crashes] crashes per
      execution;
    - each crash sweeps deterministic write-back subsets: drop all
      pending write-backs, complete all, and each thread's [k]-oldest
      prefix for [k = 1..wb_width] (capped by the deepest pending
      queue).

    Every execution runs the full oracle / detectability / poison checks
    of {!Crashes.run_logged}; a failure is returned as a standard
    {!Repro.t} that [repro --replay] and [--shrink] consume unchanged,
    replaying with zero schedule divergences. *)

type config = {
  campaign : Crashes.config;
  seed : int;  (** fixes the workload (op sequences, prefill) *)
  preemptions : int;  (** CHESS bound: max preemptive switches per execution *)
  crashes : int;  (** max crashes injected per execution *)
  wb_width : int;
      (** [`Prefix] depths enumerated per crash, besides [`Drop]/[`All] *)
  max_execs : int;  (** execution budget; [0] = run until exhausted *)
}

type stats = {
  executions : int;
  failures : int;
  decision_points : int;  (** scheduling frames expanded *)
  crash_points : int;  (** crash alternatives enumerated *)
  wb_choices : int;  (** write-back alternatives enumerated *)
  pruned : int;
      (** schedule alternatives suppressed by the preemption bound *)
  complete : bool;
      (** the entire bounded tree was enumerated (false when the
          execution budget ran out or a failure stopped the search) *)
}

type outcome = {
  stats : stats;
  failure : Repro.t option;  (** first failure, as a replayable repro *)
}

val run :
  ?stop_on_failure:bool ->
  ?progress:(stats -> unit) ->
  ?jobs:int ->
  config ->
  outcome
(** Explore the bounded tree.  [stop_on_failure] (default [true]) stops
    at the first violation; with [false] the search continues and counts
    further failures (the returned repro is still the first).
    [progress] is invoked every 500 executions and once at the end.

    [jobs] (default 1) fans the search across domains
    ({!Parallel.run}): after one discovery execution on the calling
    domain, the tree is partitioned at its shallowest decision with
    untried alternatives and each alternative's subtree is searched
    independently.  Because subtrees are merged in the order the
    sequential explorer would visit them, an exhausted search returns
    the same stats and the same first counterexample (hence bit-identical
    repro files) at every [jobs] value.  Divergences at [jobs > 1]:
    [progress] fires only once at the end with the merged stats, and
    when [stop_on_failure] or [max_execs] cuts the search short the
    execution counts reflect the pool's own stopping points (still
    deterministic in the reported failure, not in the counts).  Worker
    domains are not observed by the calling domain's [Trace]/[Metrics]. *)
