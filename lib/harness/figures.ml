type series = { label : string; values : (int * float) list }

type figure = {
  id : string;
  title : string;
  ylabel : string;
  threads : int list;
  series : series list;
}

type config = {
  sweep : int list;
  duration_ns : float;
  classify_at : int;
  seeds : int;
}

let default_config =
  {
    sweep = [ 1; 2; 4; 8; 16; 24; 32; 48; 60 ];
    duration_ns = 250_000.;
    classify_at = 32;
    seeds = 3;
  }

let quick_config =
  { sweep = [ 1; 4; 16; 32 ]; duration_ns = 80_000.; classify_at = 16; seeds = 1 }

(* ---- measurement cache ------------------------------------------------ *)

type meas = {
  thr : float;
  pwbs : float;
  psyncs : float;
}

let cache : (string, meas) Hashtbl.t = Hashtbl.create 256

let enable_all () = Pstats.set_all_enabled true

(* An exception anywhere in a sweep (a raising [prepare], a [Step_limit]
   watchdog, a user interrupt) must not leak disabled sites or scaled
   multipliers into the next figure point — or worse, into the caller's
   unrelated measurements.  [Causal.with_scaled] restores its own
   scalings; this restores the ad-hoc [prepare] state. *)
let with_clean_sites f =
  Fun.protect
    ~finally:(fun () ->
      Pstats.set_all_enabled true;
      Pstats.reset_cost_mults ();
      Pstats.reset_category_mults ())
    f

let measure ?(scaled = []) cfg factory ~threads mix ~variant ~prepare =
  let key =
    Printf.sprintf "%s/%d/%s/%s/%d" factory.Set_intf.fname threads
      mix.Workload.name variant cfg.seeds
  in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
      let acc = ref { thr = 0.; pwbs = 0.; psyncs = 0. } in
      with_clean_sites (fun () ->
          for seed = 1 to cfg.seeds do
            enable_all ();
            let p =
              Causal.with_scaled scaled (fun () ->
                  Runner.measure ~duration_ns:cfg.duration_ns ~seed ~prepare
                    factory ~threads (Workload.default mix))
            in
            acc :=
              {
                thr = !acc.thr +. p.Runner.throughput_mops;
                pwbs = !acc.pwbs +. p.Runner.pwbs_per_op;
                psyncs = !acc.psyncs +. p.Runner.psyncs_per_op;
              }
          done);
      let n = float_of_int cfg.seeds in
      let m =
        { thr = !acc.thr /. n; pwbs = !acc.pwbs /. n; psyncs = !acc.psyncs /. n }
      in
      Hashtbl.replace cache key m;
      m

let full cfg factory ~threads mix =
  measure cfg factory ~threads mix ~variant:"full" ~prepare:(fun () -> ())

(* ---- per-site classification (the paper's methodology) ---------------- *)

(* The pwb code lines an algorithm actually executes under this mix. *)
let discover_sites cfg factory mix =
  with_clean_sites (fun () ->
      enable_all ();
      Pstats.reset ();
      ignore
        (Runner.measure ~duration_ns:(cfg.duration_ns /. 4.) ~seed:7 factory
           ~threads:4 (Workload.default mix)
          : Runner.point);
      List.filter
        (fun s ->
          Pstats.kind s = Pstats.Pwb
          &&
          let l, m, h = Pstats.site_counts s in
          l + m + h > 0)
        (Pstats.sites ()))

let classification_cache : (string, (Pstats.site * Pstats.category * float) list) Hashtbl.t =
  Hashtbl.create 16

let classify cfg mix factory =
  let key = factory.Set_intf.fname ^ "/" ^ mix.Workload.name in
  match Hashtbl.find_opt classification_cache key with
  | Some c -> c
  | None ->
      let sites = discover_sites cfg factory mix in
      let classified =
        with_clean_sites (fun () ->
            let pfree () = Pstats.set_all_enabled false in
            let t0 =
              (measure cfg factory ~threads:cfg.classify_at mix
                 ~variant:"pfree" ~prepare:pfree)
                .thr
            in
            List.map
              (fun s ->
                let prepare () =
                  Pstats.set_all_enabled false;
                  Pstats.set_enabled s true
                in
                let t =
                  (measure cfg factory ~threads:cfg.classify_at mix
                     ~variant:("only:" ^ Pstats.name s) ~prepare)
                    .thr
                in
                let impact = Float.max 0. ((t0 -. t) /. t0) in
                let cat =
                  if impact <= 0.10 then Pstats.Low
                  else if impact <= 0.30 then Pstats.Medium
                  else Pstats.High
                in
                (s, cat, impact))
              sites)
      in
      Hashtbl.replace classification_cache key classified;
      classified

let classification cfg mix factory =
  List.map
    (fun (s, c, i) -> (Pstats.name s, c, i))
    (classify cfg mix factory)

let sites_of_category cfg mix factory cat =
  List.filter_map
    (fun (s, c, _) -> if c = cat then Some s else None)
    (classify cfg mix factory)

(* ---- the figures ------------------------------------------------------- *)

let throughput_factories =
  Set_intf.[ tracking; capsules; capsules_opt; romulus; redo; harris_volatile ]

let detectable_pair = Set_intf.[ tracking; capsules_opt ]

let fig_id mix suffix =
  (if mix.Workload.name = Workload.read_intensive.Workload.name then "3"
   else "4")
  ^ suffix

let fig_throughput cfg mix =
  {
    id = fig_id mix "a";
    title = "Throughput, " ^ mix.Workload.name;
    ylabel = "Mops/s";
    threads = cfg.sweep;
    series =
      List.map
        (fun f ->
          {
            label = f.Set_intf.fname;
            values =
              List.map (fun n -> (n, (full cfg f ~threads:n mix).thr)) cfg.sweep;
          })
        throughput_factories;
  }

let fig_psyncs_per_op cfg mix =
  {
    id = fig_id mix "b";
    title = "psync+pfence per operation, " ^ mix.Workload.name;
    ylabel = "psyncs/op";
    threads = cfg.sweep;
    series =
      List.map
        (fun f ->
          {
            label = f.Set_intf.fname;
            values =
              List.map
                (fun n -> (n, (full cfg f ~threads:n mix).psyncs))
                cfg.sweep;
          })
        detectable_pair;
  }

let fig_no_psync cfg mix =
  let no_sync () =
    Pstats.set_kind_enabled Pstats.Psync false;
    Pstats.set_kind_enabled Pstats.Pfence false
  in
  {
    id = fig_id mix "c";
    title = "Throughput with and without psync/pfence, " ^ mix.Workload.name;
    ylabel = "Mops/s";
    threads = cfg.sweep;
    series =
      List.concat_map
        (fun f ->
          [
            {
              label = f.Set_intf.fname;
              values =
                List.map
                  (fun n -> (n, (full cfg f ~threads:n mix).thr))
                  cfg.sweep;
            };
            {
              label = f.Set_intf.fname ^ "[no psync]";
              values =
                List.map
                  (fun n ->
                    ( n,
                      (measure cfg f ~threads:n mix ~variant:"nosync"
                         ~prepare:no_sync)
                        .thr ))
                  cfg.sweep;
            };
          ])
        detectable_pair;
  }

let fig_pwbs_per_op cfg mix =
  {
    id = fig_id mix "d";
    title = "pwb per operation, " ^ mix.Workload.name;
    ylabel = "pwbs/op";
    threads = cfg.sweep;
    series =
      List.map
        (fun f ->
          {
            label = f.Set_intf.fname;
            values =
              List.map (fun n -> (n, (full cfg f ~threads:n mix).pwbs)) cfg.sweep;
          })
        detectable_pair;
  }

(* Fraction of executed pwbs whose code line belongs to each measured
   category, per thread count. *)
let fig_pwb_categories cfg mix =
  let series =
    List.concat_map
      (fun f ->
        let classified = classify cfg mix f in
        let fractions n =
          enable_all ();
          ignore
            (Runner.measure ~duration_ns:cfg.duration_ns ~seed:1 f ~threads:n
               (Workload.default mix)
              : Runner.point);
          let count s =
            let l, m, h = Pstats.site_counts s in
            l + m + h
          in
          let per_cat cat =
            List.fold_left
              (fun acc (s, c, _) -> if c = cat then acc + count s else acc)
              0 classified
          in
          let low = per_cat Pstats.Low
          and med = per_cat Pstats.Medium
          and high = per_cat Pstats.High in
          let total = Float.max 1. (float_of_int (low + med + high)) in
          ( float_of_int low /. total,
            float_of_int med /. total,
            float_of_int high /. total )
        in
        let pts = List.map (fun n -> (n, fractions n)) cfg.sweep in
        [
          {
            label = f.Set_intf.fname ^ " L";
            values = List.map (fun (n, (l, _, _)) -> (n, l)) pts;
          };
          {
            label = f.Set_intf.fname ^ " M";
            values = List.map (fun (n, (_, m, _)) -> (n, m)) pts;
          };
          {
            label = f.Set_intf.fname ^ " H";
            values = List.map (fun (n, (_, _, h)) -> (n, h)) pts;
          };
        ])
      detectable_pair
  in
  {
    id = fig_id mix "e";
    title = "Categorization of executed pwbs, " ^ mix.Workload.name;
    ylabel = "fraction of pwbs";
    threads = cfg.sweep;
    series;
  }

(* Category ablations ride the causal engine: "removing" a category
   scales the cost of its sites to zero ([Causal.with_scaled]) instead of
   eliding the instructions.  The flushes still execute — durability
   semantics, statistics and scheduling points are unchanged — they are
   just virtually free, which is the what-if the paper's figures actually
   ask ("what would throughput be if these flushes cost nothing?"). *)

let zero_category cfg mix f cats =
  List.concat_map
    (fun cat ->
      List.map
        (fun s -> (Causal.Site (Pstats.name s), 0.))
        (sites_of_category cfg mix f cat))
    cats

let zero_all_sites () =
  List.map (fun s -> (Causal.Site (Pstats.name s), 0.)) (Pstats.sites ())

(* Cumulative removal: full, −L, −LM, −LMH (the paper's combined-impact
   experiment; psync/pfence stay in place). *)
let fig_category_removal cfg mix =
  let series =
    List.concat_map
      (fun f ->
        let curve label variant cats =
          {
            label = f.Set_intf.fname ^ label;
            values =
              List.map
                (fun n ->
                  ( n,
                    (measure
                       ~scaled:(zero_category cfg mix f cats)
                       cfg f ~threads:n mix ~variant
                       ~prepare:(fun () -> ()))
                      .thr ))
                cfg.sweep;
          }
        in
        [
          {
            label = f.Set_intf.fname;
            values =
              List.map (fun n -> (n, (full cfg f ~threads:n mix).thr)) cfg.sweep;
          };
          curve "[-L]" "z:L" [ Pstats.Low ];
          curve "[-LM]" "z:LM" [ Pstats.Low; Pstats.Medium ];
          curve "[-LMH]" "z:LMH" [ Pstats.Low; Pstats.Medium; Pstats.High ];
        ])
      detectable_pair
  in
  {
    id = fig_id mix "f";
    title = "Combined impact of pwb categories, " ^ mix.Workload.name;
    ylabel = "Mops/s";
    threads = cfg.sweep;
    series;
  }

(* Figures 5 / 6: persistence-free plus each category alone.  One line
   per curve: everything at 0x cost, the kept category back at 1x (later
   [with_scaled] entries override earlier ones for the same site). *)
let fig_category_impact cfg mix factory =
  let keep cats =
    zero_all_sites ()
    @ List.concat_map
        (fun cat ->
          List.map
            (fun s -> (Causal.Site (Pstats.name s), 1.))
            (sites_of_category cfg mix factory cat))
        cats
  in
  let curve label variant scaled =
    {
      label;
      values =
        List.map
          (fun n ->
            ( n,
              (measure ~scaled cfg factory ~threads:n mix ~variant
                 ~prepare:(fun () -> ()))
                .thr ))
          cfg.sweep;
    }
  in
  let fig_no =
    if factory.Set_intf.fname = "tracking" then "5" else "6"
  in
  {
    id = fig_no ^ (if mix.Workload.name = Workload.read_intensive.Workload.name then "r" else "u");
    title =
      Printf.sprintf "Impact of pwb categories on %s, %s"
        factory.Set_intf.fname mix.Workload.name;
    ylabel = "Mops/s";
    threads = cfg.sweep;
    series =
      [
        curve "original" "full" [];
        curve "persistence-free" "z:all" (zero_all_sites ());
        curve "pfree+L" "z:keep:L" (keep [ Pstats.Low ]);
        curve "pfree+M" "z:keep:M" (keep [ Pstats.Medium ]);
        curve "pfree+H" "z:keep:H" (keep [ Pstats.High ]);
      ];
  }

(* Beyond the paper: per-operation latency tails from the metrics layer
   (spans over the virtual clocks).  Not cached: the cache keys carry no
   metrics state, and latency points are cheap (one run per seed). *)
let fig_latency cfg mix =
  Fun.protect ~finally:Metrics.disable @@ fun () ->
  let series =
    List.concat_map
      (fun f ->
        let sweep q =
          List.map
            (fun n ->
              let acc = ref 0. in
              for seed = 1 to cfg.seeds do
                enable_all ();
                let p =
                  Runner.measure ~duration_ns:cfg.duration_ns ~seed
                    ~prepare:Metrics.enable f ~threads:n
                    (Workload.default mix)
                in
                acc :=
                  !acc
                  +. (if q = `P50 then p.Runner.lat_p50_ns
                      else p.Runner.lat_p99_ns)
              done;
              (n, !acc /. float_of_int cfg.seeds))
            cfg.sweep
        in
        [
          { label = f.Set_intf.fname ^ " p50"; values = sweep `P50 };
          { label = f.Set_intf.fname ^ " p99"; values = sweep `P99 };
        ])
      detectable_pair
  in
  {
    id =
      "7"
      ^ (if mix.Workload.name = Workload.read_intensive.Workload.name then "r"
         else "u");
    title = "Operation latency (virtual ns), " ^ mix.Workload.name;
    ylabel = "latency ns";
    threads = cfg.sweep;
    series;
  }

(* Beyond the paper: two detectability frameworks over the same
   structure.  Tracking (the paper's transformation) against the Memento
   derivations — List-mmt (same Harris list, composed from checkpoints
   and detectable CASes) and Comb-mmt (flat combining under one
   detectable root CAS).  Throughput and psync counts in one figure so
   the framework overhead comparison reads directly. *)
let framework_factories = Set_intf.[ tracking; memento_list; memento_comb ]

let fig_frameworks cfg mix =
  {
    id =
      "8"
      ^ (if mix.Workload.name = Workload.read_intensive.Workload.name then "r"
         else "u");
    title = "Detectability frameworks compared, " ^ mix.Workload.name;
    ylabel = "Mops/s";
    threads = cfg.sweep;
    series =
      List.concat_map
        (fun f ->
          [
            {
              label = f.Set_intf.fname;
              values =
                List.map
                  (fun n -> (n, (full cfg f ~threads:n mix).thr))
                  cfg.sweep;
            };
            {
              label = f.Set_intf.fname ^ " psyncs/op";
              values =
                List.map
                  (fun n -> (n, (full cfg f ~threads:n mix).psyncs))
                  cfg.sweep;
            };
          ])
        framework_factories;
  }

let all cfg =
  let mixes = [ Workload.read_intensive; Workload.update_intensive ] in
  List.concat_map
    (fun mix ->
      [
        fig_throughput cfg mix;
        fig_psyncs_per_op cfg mix;
        fig_no_psync cfg mix;
        fig_pwbs_per_op cfg mix;
        fig_pwb_categories cfg mix;
        fig_category_removal cfg mix;
      ])
    mixes
  @ List.concat_map
      (fun mix ->
        [
          fig_category_impact cfg mix Set_intf.tracking;
          fig_category_impact cfg mix Set_intf.capsules_opt;
        ])
      mixes
  @ List.map (fun mix -> fig_latency cfg mix) mixes
  @ List.map (fun mix -> fig_frameworks cfg mix) mixes
