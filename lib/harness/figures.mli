(** Generators for every figure of the paper's evaluation (§5).

    Each generator replays the paper's experiment on the simulator:

    - 3a/4a — throughput of Tracking, Capsules, Capsules-Opt, Romulus and
      RedoOpt (plus the volatile Harris list as the persistence-free
      yardstick) against thread count;
    - 3b/4b — psync+pfence executed per operation (the paper's machine
      implements pfence with psync);
    - 3c/4c — throughput with and without psync/pfence instructions;
    - 3d/4d — pwb executed per operation;
    - 3e/4e — fraction of executed pwbs whose {e code line} is low /
      medium / high impact, where a line's category is measured exactly as
      in the paper: add the single line to the persistence-free version
      and classify the throughput loss (≤10%% low, ≤30%% medium, else
      high);
    - 3f/4f — cumulative removal of pwb categories (full, −L, −LM, −LMH);
    - 5/6 — the X-caused performance loss per category for Tracking and
      Capsules-Opt: persistence-free plus each category alone;

    The category ablations (3f/4f, 5/6) run on the causal engine
    ({!Causal.with_scaled}): a "removed" category's sites execute with
    their cost scaled to zero rather than being elided, so durability
    semantics and instruction counts are those of the full algorithm and
    only the virtual cost changes.  The classification itself (3e/4e)
    keeps the paper's add-one-line-to-persistence-free methodology;
    - 7r/7u (beyond the paper) — per-operation latency p50/p99 from the
      metrics layer, against thread count.

    The classification is computed once per (algorithm, mix) at a
    representative high-contention thread count and then treated as a
    fixed set of code lines, as in the paper. *)

type series = { label : string; values : (int * float) list }

type figure = {
  id : string;  (** e.g. "3a" *)
  title : string;
  ylabel : string;
  threads : int list;
  series : series list;
}

type config = {
  sweep : int list;
  duration_ns : float;  (** virtual time per measurement *)
  classify_at : int;  (** thread count for the per-site classification *)
  seeds : int;  (** measurements averaged per point *)
}

val default_config : config
val quick_config : config

val fig_throughput : config -> Workload.mix -> figure
val fig_psyncs_per_op : config -> Workload.mix -> figure
val fig_no_psync : config -> Workload.mix -> figure
val fig_pwbs_per_op : config -> Workload.mix -> figure
val fig_pwb_categories : config -> Workload.mix -> figure
val fig_category_removal : config -> Workload.mix -> figure

val fig_category_impact :
  config -> Workload.mix -> Set_intf.factory -> figure
(** Figures 5 and 6: pass {!Set_intf.tracking} or
    {!Set_intf.capsules_opt}. *)

val fig_latency : config -> Workload.mix -> figure
(** Beyond-paper figure 7: p50/p99 operation latency per thread count,
    measured with [Metrics] enabled (and disabled again on return). *)

val fig_frameworks : config -> Workload.mix -> figure
(** Beyond-paper figure 8r/8u: the two detectability frameworks over one
    structure — Tracking against the Memento-composed List-mmt and
    Comb-mmt — throughput and psyncs/op per thread count. *)

val classification :
  config -> Workload.mix -> Set_intf.factory ->
  (string * Pstats.category * float) list
(** The measured per-site impacts behind 3e/4e: site name, assigned
    category, relative throughput loss. *)

val all : config -> figure list
(** Every figure of the paper, in order: 3a–3f, 4a–4f, 5, 6, plus the
    beyond-paper latency figures 7r/7u and framework comparison 8r/8u. *)
