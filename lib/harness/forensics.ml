(* Crash forensics: reconstruct per-operation lineage and produce a
   postmortem for a failing campaign.

   The recorder is an opt-in third observer on Pmem (composing with the
   tracer and the metrics collector): while active it attributes every
   CAS, write and issued write-back to the operation currently open on
   the issuing thread, follows each write-back to its fate (drained,
   persisted-at-crash, dropped-at-crash) through Pmem's write-back
   observer, and pairs Pmem's per-crash reports with campaign rounds.
   [build] then turns the recording plus the failure message into an
   immutable, deterministically-rendered postmortem: the crash-point
   durable-vs-volatile diff (which lines never persisted and which site
   wrote them), the culprit analysis (including registered-but-disabled
   persist sites — the negative controls' elided flushes), and the
   lineage of the operations that touched the failure.

   Nothing here runs when the recorder is off: the hooks are [None], so
   Pmem constructs no events, and the harness entry points return after
   one domain-local read.  Postmortems are therefore always produced by
   a dedicated forensic {e replay} of a repro, never by instrumenting
   the original campaign. *)

(* ---- recording --------------------------------------------------------- *)

type fate =
  | Outstanding  (* still in the write-pending queue at the end *)
  | Drained  (* completed by psync / draining CAS / queue capacity *)
  | Crash_persisted of int  (* crash index that resolved it *)
  | Crash_dropped of int

type pwb_rec = {
  pw_line : string;
  pw_site : string;
  pw_round : int;
  mutable pw_fate : fate;
}

type cas_rec = { cs_line : string; cs_ok : bool }

type op_rec = {
  o_tid : int;
  o_seq : int;  (* per-thread announce order *)
  o_kind : string;
  o_key : int;
  mutable o_rounds : int list;  (* distinct rounds touched, newest first *)
  mutable o_cas : cas_rec list;  (* newest first *)
  mutable o_pwbs : pwb_rec list;  (* newest first *)
  mutable o_writes : string list;  (* distinct lines written, newest first *)
  mutable o_ok : bool option;  (* None = never returned (interrupted) *)
}

(* Who last wrote a line: the open operation if any, else ambient harness
   work (prefill, recover_structure). *)
type writer = { w_tid : int; w_op : op_rec option; w_round : int }

type state = {
  mutable s_round : int;
  s_cur : op_rec option array;
  mutable s_ops : op_rec list;  (* closed ops, newest first *)
  s_seq : int array;
  s_pending : (string, pwb_rec Queue.t) Hashtbl.t;
      (* "tid|line|site" -> issued-but-unresolved write-back records, in
         issue order; fates pop the oldest, mirroring the queue *)
  s_writers : (string, writer list) Hashtbl.t;
      (* per line, newest first; consecutive writes by the same op in
         the same round collapse to one record *)
  mutable s_orphans : pwb_rec list;  (* pwbs issued outside any op *)
  mutable s_crash_rounds : int list;  (* newest first; round per crash *)
  mutable s_crashes : int;
}

let fresh_state () =
  {
    s_round = 0;
    s_cur = Array.make Pmem.max_threads None;
    s_ops = [];
    s_seq = Array.make Pmem.max_threads 0;
    s_pending = Hashtbl.create 64;
    s_writers = Hashtbl.create 64;
    s_orphans = [];
    s_crash_rounds = [];
    s_crashes = 0;
  }

let state_key : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let slot () = Domain.DLS.get state_key
let active () = !(slot ()) <> None

let pkey tid line site =
  string_of_int tid ^ "|" ^ line ^ "|" ^ site

let same_op a b =
  match (a, b) with
  | Some a, Some b -> a == b
  | None, None -> true
  | _ -> false

let note_write st tid line =
  let op = st.s_cur.(tid) in
  let w = { w_tid = tid; w_op = op; w_round = st.s_round } in
  let ws =
    match Hashtbl.find_opt st.s_writers line with
    | Some (prev :: rest)
      when prev.w_tid = tid && prev.w_round = st.s_round
           && same_op prev.w_op op ->
        w :: rest
    | Some ws -> w :: ws
    | None -> [ w ]
  in
  Hashtbl.replace st.s_writers line ws;
  match op with
  | Some op when not (List.mem line op.o_writes) ->
      op.o_writes <- line :: op.o_writes
  | _ -> ()

let touch_round st op =
  match op.o_rounds with
  | r :: _ when r = st.s_round -> ()
  | _ -> op.o_rounds <- st.s_round :: op.o_rounds

let on_event st : Pmem.trace_event -> unit = function
  | Pmem.Read _ | Pmem.Pfence _ | Pmem.Psync _ | Pmem.Alloc _ -> ()
  | Pmem.Write { tid; line; _ } -> note_write st tid line
  | Pmem.Cas { tid; line; success; _ } ->
      (match st.s_cur.(tid) with
      | Some op ->
          touch_round st op;
          op.o_cas <- { cs_line = line; cs_ok = success } :: op.o_cas
      | None -> ());
      if success then note_write st tid line
  | Pmem.Pwb { tid; site; line; _ } ->
      let pw =
        { pw_line = line; pw_site = site; pw_round = st.s_round;
          pw_fate = Outstanding }
      in
      (match st.s_cur.(tid) with
      | Some op ->
          touch_round st op;
          op.o_pwbs <- pw :: op.o_pwbs
      | None -> st.s_orphans <- pw :: st.s_orphans);
      let k = pkey tid line site in
      let q =
        match Hashtbl.find_opt st.s_pending k with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add st.s_pending k q;
            q
      in
      Queue.push pw q

let on_wb st tid line site (f : Pmem.wb_fate) =
  match Hashtbl.find_opt st.s_pending (pkey tid line site) with
  | None -> ()
  | Some q ->
      if not (Queue.is_empty q) then begin
        let pw = Queue.pop q in
        pw.pw_fate <-
          (match f with
          | Pmem.Drained -> Drained
          | Pmem.Crash_persisted -> Crash_persisted st.s_crashes
          | Pmem.Crash_dropped -> Crash_dropped st.s_crashes)
      end

let start () =
  let st = fresh_state () in
  slot () := Some st;
  Pmem.set_forensics (Some (on_event st));
  Pmem.set_wb_observer (Some (on_wb st))

let stop () =
  slot () := None;
  Pmem.set_forensics None;
  Pmem.set_wb_observer None

(* ---- harness entry points (no-ops when inactive) ----------------------- *)

let close_op st tid =
  match st.s_cur.(tid) with
  | None -> ()
  | Some op ->
      st.s_cur.(tid) <- None;
      st.s_ops <- op :: st.s_ops

let op_begin ~tid ~kind ~key =
  match !(slot ()) with
  | None -> ()
  | Some st ->
      (* an op still open on this thread was interrupted by a crash: the
         system never saw it return *)
      close_op st tid;
      let seq = st.s_seq.(tid) in
      st.s_seq.(tid) <- seq + 1;
      st.s_cur.(tid) <-
        Some
          {
            o_tid = tid;
            o_seq = seq;
            o_kind = kind;
            o_key = key;
            o_rounds = [ st.s_round ];
            o_cas = [];
            o_pwbs = [];
            o_writes = [];
            o_ok = None;
          }

let op_end ~tid ~ok =
  match !(slot ()) with
  | None -> ()
  | Some st ->
      (match st.s_cur.(tid) with
      | None -> ()
      | Some op -> op.o_ok <- Some ok);
      close_op st tid

let round ~kind:_ n =
  match !(slot ()) with None -> () | Some st -> st.s_round <- n

let note_crash ~round =
  match !(slot ()) with
  | None -> ()
  | Some st ->
      st.s_crash_rounds <- round :: st.s_crash_rounds;
      st.s_crashes <- st.s_crashes + 1

(* ---- the postmortem ---------------------------------------------------- *)

type pm_wb = { b_line : string; b_site : string; b_tid : int }

type pm_poison = {
  p_line : string;
  p_writer : string;  (* rendered "last written by ..." description *)
  p_flush : string;  (* rendered write-back history of the line *)
}

type pm_crash = {
  c_index : int;
  c_round : int;  (* -1 when the crash was not attributed to a round *)
  c_heap : string;
  c_scope : string;
  c_resolution : string;
  c_persisted : int;
  c_dropped : int;
  c_dropped_wbs : pm_wb list;
  c_poisoned : pm_poison list;
  c_poisoned_total : int;
  c_reverted : pm_poison list;  (* volatile value lost: stale revert *)
  c_reverted_total : int;
}

type pm_op = {
  m_tid : int;
  m_seq : int;
  m_kind : string;
  m_key : int;
  m_rounds : int list;  (* ascending *)
  m_cas_ok : int;
  m_cas_failed : int;
  m_pwbs : (string * string * string) list;  (* line, site, fate label *)
  m_decision : string;
  m_ok : bool option;
}

type postmortem = {
  pm_algo : string;
  pm_seed : int;
  pm_error : string;
  pm_rounds : int;
  pm_crash_count : int;
  pm_crashes : pm_crash list;
  pm_disabled_sites : string list;  (* sorted *)
  pm_culprit : string list;  (* rendered analysis, one sentence per line *)
  pm_ops : pm_op list;  (* lineage of the ops that touch the failure *)
  pm_ops_total : int;  (* all recorded ops, before relevance filtering *)
}

let fate_label = function
  | Outstanding -> "outstanding"
  | Drained -> "drained"
  | Crash_persisted k -> Printf.sprintf "persisted@crash#%d" k
  | Crash_dropped k -> Printf.sprintf "dropped@crash#%d" k

(* substring search, for pulling the culprit line / key out of the
   failure message *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let poison_prefix = "touched never-persisted data: "

let culprit_line_of_error error =
  match find_sub error poison_prefix with
  | None -> None
  | Some i ->
      Some
        (String.sub error
           (i + String.length poison_prefix)
           (String.length error - i - String.length poison_prefix))

let culprit_key_of_error error =
  match find_sub error "key " with
  | None -> None
  | Some i ->
      let j = ref (i + 4) in
      let n = String.length error in
      let v = ref 0 and seen = ref false in
      while !j < n && error.[!j] >= '0' && error.[!j] <= '9' do
        v := (10 * !v) + (Char.code error.[!j] - Char.code '0');
        seen := true;
        incr j
      done;
      if !seen then Some !v else None

let describe_op op =
  Printf.sprintf "tid %d op #%d (%s key %d)" op.o_tid op.o_seq op.o_kind
    op.o_key

(* The line's writer as of [round] (the newest write in that round or
   earlier), or the newest writer overall when unbounded.  The bound is
   what keeps crash-time attribution honest: a crash in round 0 must not
   blame an op from round 2. *)
let writer_at st ?round line =
  match Hashtbl.find_opt st.s_writers line with
  | None | Some [] -> None
  | Some (newest :: _ as ws) -> (
      match round with
      | None -> Some newest
      | Some r -> List.find_opt (fun w -> w.w_round <= r) ws)

let describe_writer st ?round line =
  match writer_at st ?round line with
  | None -> "writer unknown (written before recording started)"
  | Some w -> (
      match w.w_op with
      | Some op -> "last written by " ^ describe_op op
      | None ->
          Printf.sprintf
            "last written outside any operation (tid %d, round %d: prefill \
             or structure recovery)"
            w.w_tid w.w_round)

(* All write-back records ever issued for [line], oldest first. *)
let pwbs_of_line st line =
  let of_op op = List.rev op.o_pwbs in
  let all =
    List.concat_map of_op (List.rev st.s_ops)
    @ List.concat_map of_op
        (Array.to_list st.s_cur |> List.filter_map (fun o -> o))
    @ List.rev st.s_orphans
  in
  List.filter (fun pw -> pw.pw_line = line) all

let describe_flush_history st line =
  match pwbs_of_line st line with
  | [] -> "no write-back was ever issued for this line"
  | pws ->
      let last = List.nth pws (List.length pws - 1) in
      Printf.sprintf
        "%d write-back(s) issued; last from site %s in round %d — %s"
        (List.length pws) last.pw_site last.pw_round
        (fate_label last.pw_fate)

let crash_round st index =
  let rounds = List.rev st.s_crash_rounds in
  match List.nth_opt rounds index with Some r -> r | None -> -1

let build ~algo ~seed ~error =
  let st =
    match !(slot ()) with
    | Some st -> st
    | None ->
        invalid_arg "Forensics.build: recorder is not active"
  in
  (* close still-open ops so the lineage includes in-flight work *)
  Array.iteri (fun tid _ -> close_op st tid) st.s_cur;
  let ops = List.rev st.s_ops in
  let reports = Pmem.crash_reports () in
  let disabled =
    List.filter_map
      (fun s ->
        if Pstats.enabled s then None else Some (Pstats.name s))
      (Pstats.sites ())
    |> List.sort_uniq String.compare
  in
  let crashes =
    List.mapi
      (fun i (r : Pmem.crash_report) ->
        let round = crash_round st i in
        let rbound = if round < 0 then None else Some round in
        {
          c_index = i;
          c_round = round;
          c_heap = r.Pmem.cr_heap;
          c_scope =
            (match r.Pmem.cr_scope with
            | `Machine -> "machine"
            | `Heap -> "heap");
          c_resolution = r.Pmem.cr_resolution;
          c_persisted = r.Pmem.cr_persisted;
          c_dropped = r.Pmem.cr_dropped;
          c_dropped_wbs =
            List.filter_map
              (fun (f : Pmem.crash_fate) ->
                if f.Pmem.cf_persisted then None
                else
                  Some
                    {
                      b_line = f.Pmem.cf_line;
                      b_site = f.Pmem.cf_site;
                      b_tid = f.Pmem.cf_tid;
                    })
              r.Pmem.cr_fates;
          c_poisoned =
            List.map
              (fun line ->
                {
                  p_line = line;
                  p_writer = describe_writer st ?round:rbound line;
                  p_flush = describe_flush_history st line;
                })
              r.Pmem.cr_poisoned;
          c_poisoned_total = r.Pmem.cr_poisoned_total;
          c_reverted =
            List.map
              (fun line ->
                {
                  p_line = line;
                  p_writer = describe_writer st ?round:rbound line;
                  p_flush = describe_flush_history st line;
                })
              r.Pmem.cr_reverted;
          c_reverted_total = r.Pmem.cr_reverted_total;
        })
      reports
  in
  (* ---- culprit analysis ---- *)
  let culprit_line = culprit_line_of_error error in
  let culprit_key = culprit_key_of_error error in
  let culprit = ref [] in
  let say fmt = Printf.ksprintf (fun s -> culprit := s :: !culprit) fmt in
  (match culprit_line with
  | Some line ->
      say "the failure touched never-persisted line %s" line;
      say "%s" (describe_writer st line);
      say "%s" (describe_flush_history st line)
  | None -> (
      match culprit_key with
      | Some key ->
          say "oracle violated on key %d (%d operation(s) touched it)" key
            (List.length (List.filter (fun o -> o.o_key = key) ops))
      | None -> say "no culprit line or key could be parsed from the error"));
  (* the durable-vs-volatile diff at the last crash is what the failure
     is downstream of: lines that never persisted, plus lines that were
     silently reverted to a stale durable value without a single
     write-back ever having been issued (an elided-flush signature) *)
  let suspicious_reverts = ref [] in
  (* A stale revert is suspicious when the last write to the line was
     never followed by a write-back from the same operation — the
     signature of an elided flush (an init-time or earlier-op flush in
     the line's history does not exonerate it). *)
  let flushed_since_last_write ?round line =
    match writer_at st ?round line with
    | None -> true
    | Some w -> (
        match w.w_op with
        | Some op -> List.exists (fun pw -> pw.pw_line = line) op.o_pwbs
        | None -> pwbs_of_line st line <> [])
  in
  (match List.rev crashes with
  | last :: _ ->
      let rbound = if last.c_round < 0 then None else Some last.c_round in
      List.iter
        (fun p ->
          say "never persisted at crash #%d: line %s — %s; %s" last.c_index
            p.p_line p.p_writer p.p_flush)
        last.c_poisoned;
      let suspicious =
        List.filter
          (fun q -> not (flushed_since_last_write ?round:rbound q.p_line))
          last.c_reverted
      in
      suspicious_reverts := suspicious;
      List.iter
        (fun q ->
          say
            "lost at crash #%d: line %s reverted to a stale durable value \
             — %s; %s"
            last.c_index q.p_line q.p_writer q.p_flush)
        suspicious
  | [] -> ());
  if disabled <> [] then
    say "registered-but-disabled persist site(s): %s — an elided flush \
         here is the most likely cause"
      (String.concat ", " disabled);
  let culprit = List.rev !culprit in
  (* ---- lineage: the ops that touch the failure ---- *)
  let interesting_lines =
    let tbl = Hashtbl.create 16 in
    (match culprit_line with
    | Some l -> Hashtbl.replace tbl l ()
    | None -> ());
    List.iter
      (fun c ->
        List.iter (fun b -> Hashtbl.replace tbl b.b_line ()) c.c_dropped_wbs;
        List.iter (fun p -> Hashtbl.replace tbl p.p_line ()) c.c_poisoned)
      crashes;
    List.iter (fun q -> Hashtbl.replace tbl q.p_line ()) !suspicious_reverts;
    tbl
  in
  let touches_line op =
    List.exists (fun l -> Hashtbl.mem interesting_lines l) op.o_writes
    || List.exists (fun c -> Hashtbl.mem interesting_lines c.cs_line) op.o_cas
    || List.exists (fun p -> Hashtbl.mem interesting_lines p.pw_line) op.o_pwbs
  in
  let relevant op =
    (match culprit_key with Some k -> op.o_key = k | None -> false)
    || touches_line op
    || op.o_ok = None (* interrupted / in flight at the failure *)
  in
  let decision_of ops_arr i op =
    let next_is_recover () =
      let rec find j =
        if j >= Array.length ops_arr then None
        else
          let o = ops_arr.(j) in
          if o.o_tid = op.o_tid && o.o_seq = op.o_seq + 1 then Some o
          else find (j + 1)
      in
      ignore i;
      find 0
    in
    match (op.o_kind, op.o_ok) with
    | "recover", Some ok ->
        Printf.sprintf "recovery attempt -> %s" (if ok then "true" else "false")
    | "recover", None -> "recovery attempt interrupted by another crash"
    | _, Some _ -> "completed"
    | _, None -> (
        match next_is_recover () with
        | Some r when r.o_kind = "recover" -> (
            match r.o_ok with
            | Some ok ->
                Printf.sprintf
                  "interrupted by crash; completed via recovery -> %s"
                  (if ok then "true" else "false")
            | None -> "interrupted by crash; recovery also interrupted")
        | _ -> "in flight at the failure (never recovered)")
  in
  let ops_arr = Array.of_list ops in
  let lineage =
    List.filteri (fun _ op -> relevant op) ops
    |> List.mapi (fun i op ->
           {
             m_tid = op.o_tid;
             m_seq = op.o_seq;
             m_kind = op.o_kind;
             m_key = op.o_key;
             m_rounds = List.sort_uniq compare op.o_rounds;
             m_cas_ok =
               List.length (List.filter (fun c -> c.cs_ok) op.o_cas);
             m_cas_failed =
               List.length (List.filter (fun c -> not c.cs_ok) op.o_cas);
             m_pwbs =
               List.rev_map
                 (fun pw -> (pw.pw_line, pw.pw_site, fate_label pw.pw_fate))
                 op.o_pwbs;
             m_decision = decision_of ops_arr i op;
             m_ok = op.o_ok;
           })
  in
  let lineage =
    List.sort
      (fun a b ->
        match compare a.m_tid b.m_tid with 0 -> compare a.m_seq b.m_seq | c -> c)
      lineage
  in
  let cap = 40 in
  let lineage =
    if List.length lineage <= cap then lineage
    else List.filteri (fun i _ -> i < cap) lineage
  in
  {
    pm_algo = algo;
    pm_seed = seed;
    pm_error = error;
    pm_rounds = st.s_round + 1;
    pm_crash_count = st.s_crashes;
    pm_crashes = crashes;
    pm_disabled_sites = disabled;
    pm_culprit = culprit;
    pm_ops = lineage;
    pm_ops_total = List.length ops;
  }

(* ---- rendering --------------------------------------------------------- *)

let render_text pm =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "== postmortem: %s (seed %d) ==\n" pm.pm_algo pm.pm_seed;
  p "error: %s\n" pm.pm_error;
  p "rounds: %d, crashes: %d, operations recorded: %d\n" pm.pm_rounds
    pm.pm_crash_count pm.pm_ops_total;
  p "disabled persist sites: %s\n"
    (match pm.pm_disabled_sites with
    | [] -> "none"
    | ds -> String.concat ", " ds);
  List.iter
    (fun c ->
      p "\n-- crash #%d (round %s; heap %s; scope %s; resolution %s) --\n"
        c.c_index
        (if c.c_round < 0 then "?" else string_of_int c.c_round)
        c.c_heap c.c_scope c.c_resolution;
      p "write-backs at crash: %d persisted, %d dropped\n" c.c_persisted
        c.c_dropped;
      List.iter
        (fun w ->
          p "  dropped: line %s (site %s, tid %d)\n" w.b_line w.b_site w.b_tid)
        c.c_dropped_wbs;
      if c.c_poisoned_total > 0 then begin
        p "durable-vs-volatile diff: %d line(s) never persisted%s\n"
          c.c_poisoned_total
          (if c.c_poisoned_total > List.length c.c_poisoned then
             Printf.sprintf " (showing %d)" (List.length c.c_poisoned)
           else "");
        List.iter
          (fun q ->
            p "  %s — %s; %s\n" q.p_line q.p_writer q.p_flush)
          c.c_poisoned
      end;
      if c.c_reverted_total > 0 then begin
        p "durable-vs-volatile diff: %d line(s) reverted to older durable \
           values%s\n"
          c.c_reverted_total
          (if c.c_reverted_total > List.length c.c_reverted then
             Printf.sprintf " (showing %d)" (List.length c.c_reverted)
           else "");
        List.iter
          (fun q ->
            p "  %s — %s; %s\n" q.p_line q.p_writer q.p_flush)
          c.c_reverted
      end)
    pm.pm_crashes;
  p "\n-- culprit --\n";
  List.iter (fun line -> p "%s\n" line) pm.pm_culprit;
  p "\n-- operation lineage (%d of %d ops touch the failure) --\n"
    (List.length pm.pm_ops) pm.pm_ops_total;
  List.iter
    (fun m ->
      p "tid %d #%d %s key %d [round%s %s] cas %d ok/%d failed; %s\n" m.m_tid
        m.m_seq m.m_kind m.m_key
        (if List.length m.m_rounds > 1 then "s" else "")
        (String.concat "," (List.map string_of_int m.m_rounds))
        m.m_cas_ok m.m_cas_failed m.m_decision;
      List.iter
        (fun (line, site, f) -> p "    pwb %s (site %s) -> %s\n" line site f)
        m.m_pwbs)
    pm.pm_ops;
  Buffer.contents b

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json pm =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let strs ss =
    "[" ^ String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") ss)
    ^ "]"
  in
  p "{\"algo\":\"%s\",\"seed\":%d,\"error\":\"%s\"," (json_escape pm.pm_algo)
    pm.pm_seed (json_escape pm.pm_error);
  p "\"rounds\":%d,\"crashes\":%d,\"ops_recorded\":%d," pm.pm_rounds
    pm.pm_crash_count pm.pm_ops_total;
  p "\"disabled_sites\":%s," (strs pm.pm_disabled_sites);
  p "\"crash_reports\":[";
  List.iteri
    (fun i c ->
      if i > 0 then p ",";
      p "{\"index\":%d,\"round\":%d,\"heap\":\"%s\",\"scope\":\"%s\","
        c.c_index c.c_round (json_escape c.c_heap) c.c_scope;
      p "\"resolution\":\"%s\",\"persisted\":%d,\"dropped\":%d,"
        (json_escape c.c_resolution) c.c_persisted c.c_dropped;
      p "\"dropped_wbs\":[";
      List.iteri
        (fun j w ->
          if j > 0 then p ",";
          p "{\"line\":\"%s\",\"site\":\"%s\",\"tid\":%d}"
            (json_escape w.b_line) (json_escape w.b_site) w.b_tid)
        c.c_dropped_wbs;
      p "],\"never_persisted\":[";
      List.iteri
        (fun j q ->
          if j > 0 then p ",";
          p "{\"line\":\"%s\",\"writer\":\"%s\",\"flush\":\"%s\"}"
            (json_escape q.p_line) (json_escape q.p_writer)
            (json_escape q.p_flush))
        c.c_poisoned;
      p "],\"never_persisted_total\":%d," c.c_poisoned_total;
      p "\"reverted\":[";
      List.iteri
        (fun j q ->
          if j > 0 then p ",";
          p "{\"line\":\"%s\",\"writer\":\"%s\",\"flush\":\"%s\"}"
            (json_escape q.p_line) (json_escape q.p_writer)
            (json_escape q.p_flush))
        c.c_reverted;
      p "],\"reverted_total\":%d}" c.c_reverted_total)
    pm.pm_crashes;
  p "],\"culprit\":%s," (strs pm.pm_culprit);
  p "\"lineage\":[";
  List.iteri
    (fun i m ->
      if i > 0 then p ",";
      p "{\"tid\":%d,\"seq\":%d,\"kind\":\"%s\",\"key\":%d," m.m_tid m.m_seq
        (json_escape m.m_kind) m.m_key;
      p "\"rounds\":[%s],"
        (String.concat "," (List.map string_of_int m.m_rounds));
      p "\"cas_ok\":%d,\"cas_failed\":%d," m.m_cas_ok m.m_cas_failed;
      p "\"pwbs\":[";
      List.iteri
        (fun j (line, site, f) ->
          if j > 0 then p ",";
          p "{\"line\":\"%s\",\"site\":\"%s\",\"fate\":\"%s\"}"
            (json_escape line) (json_escape site) (json_escape f))
        m.m_pwbs;
      p "],\"decision\":\"%s\",\"ok\":%s}"
        (json_escape m.m_decision)
        (match m.m_ok with
        | None -> "null"
        | Some true -> "true"
        | Some false -> "false"))
    pm.pm_ops;
  p "]}";
  Buffer.contents b

let error pm = pm.pm_error
let disabled_sites pm = pm.pm_disabled_sites
