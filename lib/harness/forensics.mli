(** Crash forensics: operation lineage, durable-vs-volatile state diffs
    at crash points, and automatic postmortems for failing campaigns.

    The recorder is a third, independent observer on [Pmem] (next to the
    tracer and the metrics collector): while active it attributes every
    CAS, write and issued write-back to the operation open on the
    issuing thread, follows each write-back to its fate (drained,
    persisted-at-crash or dropped-at-crash, with the crash resolution
    that decided it), and pairs [Pmem]'s per-crash reports with campaign
    rounds.  {!build} turns the recording plus the failure message into
    an immutable postmortem whose text/JSON renderings are
    deterministic: byte-identical across replays of the same repro and
    across [-j] settings, because a postmortem is always produced by a
    dedicated forensic replay on one domain.

    Everything is a no-op while the recorder is inactive (the default):
    the hooks are [None] so [Pmem] constructs no events, and the harness
    entry points return after one domain-local read — campaigns run with
    zero forensics cost. *)

val start : unit -> unit
(** Install a fresh recorder on the calling domain (forensics + write-
    back observer hooks on the current [Pmem] instance). *)

val stop : unit -> unit
(** Uninstall the hooks and drop the recording.  Idempotent. *)

val active : unit -> bool

(** {1 Harness entry points}

    Called by [Crashes] and [Store]/[Shard] alongside the corresponding
    [Metrics]/[Trace] calls; all no-ops when the recorder is off. *)

val op_begin : tid:int -> kind:string -> key:int -> unit
(** Announce an operation on [tid].  If an operation is still open on
    this thread it is recorded as interrupted (it never returned). *)

val op_end : tid:int -> ok:bool -> unit

val round : kind:[ `Work | `Recover ] -> int -> unit
(** Campaign-round boundary. *)

val note_crash : round:int -> unit
(** Attribute the crash that just happened ([Pmem.crash] has returned)
    to [round]. *)

(** {1 Postmortems} *)

type postmortem

val build : algo:string -> seed:int -> error:string -> postmortem
(** Reconstruct the postmortem from the active recording, [Pmem]'s crash
    reports and the failure message: per-crash persisted/dropped
    write-back fates and the never-persisted-line diff, a culprit
    analysis (parsing the poisoned line or violated key out of [error],
    naming registered-but-disabled persist sites), and the lineage of
    the operations touching the failure.  Call before {!stop}.

    @raise Invalid_argument when the recorder is not active. *)

val render_text : postmortem -> string
(** Human-readable postmortem; deterministic byte-for-byte. *)

val render_json : postmortem -> string
(** The same postmortem as one JSON object; deterministic. *)

val error : postmortem -> string

val disabled_sites : postmortem -> string list
(** The registered-but-disabled persist sites observed after the
    forensic replay, sorted — a negative control's elided flush shows up
    here by name. *)
