(* Operation-level metrics over the Sim/Pmem observability hooks.

   Same zero-cost-when-off discipline as Trace: every entry point is
   guarded by one domain-local read, no virtual time is charged, no RNG
   draws are consumed, so enabling metrics can never perturb a simulated
   execution (test_repro locks the analogous property for the tracer).

   The whole registry — instruments, spans, contention and recovery
   profiles, and the enabled flag itself — is domain-local: concurrent
   campaigns on separate domains (Harness.Parallel) record independently
   and cannot observe each other's instruments.  Handles returned by
   {!counter}/{!gauge}/{!histogram} belong to the domain that created
   them.

   All durations are virtual nanoseconds on the per-thread Sim clocks. *)

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : float }

type histogram = {
  h_name : string;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type span = {
  sp_tid : int;
  sp_kind : string;
  sp_key : int;
  sp_begin : float;
  sp_end : float;
  sp_ok : bool;
  sp_cas_failures : int;
  sp_helped : bool;
}

type centry = {
  ce_line : string;
  mutable ce_fails : int;
  mutable ce_invals : int;
}

(* One allocation-site row: lines allocated under this (heap, site) pair,
   maintained by the Pmem collector's Alloc arm. *)
type aentry = {
  ae_heap : string;
  ae_site : string;
  mutable ae_count : int;
}

let n_buckets = 256
let max_t = Pmem.max_threads

(* Span storage is capped so long metric-enabled sweeps stay bounded;
   the histograms keep counting past the cap. *)
let max_spans = 200_000

type state = {
  mutable enabled : bool;
  (* Total volume of recorded data; the disabled-path test asserts this
     stays 0 across a whole campaign when metrics are off. *)
  mutable events : int;
  counters_tbl : (string, counter) Hashtbl.t;
  mutable counters_rev : counter list;
  gauges_tbl : (string, gauge) Hashtbl.t;
  mutable gauges_rev : gauge list;
  hists_tbl : (string, histogram) Hashtbl.t;
  mutable hists_rev : histogram list;
  (* well-known instruments *)
  h_op : histogram;
  h_insert : histogram;
  h_delete : histogram;
  h_find : histogram;
  h_recover : histogram;
  h_recovery_round : histogram;
  c_completed : counter;
  c_helped : counter;
  c_cas_failed : counter;
  g_recovery_last : gauge;
  (* in-flight span per thread; cur_kind = "" means none open *)
  cur_kind : string array;
  cur_key : int array;
  cur_begin : float array;
  cur_cas0 : int array;
  cur_helped : bool array;
  (* failed CASes per thread, maintained by the Pmem collector *)
  cas_fails : int array;
  mutable spans_rev : span list;
  mutable n_spans : int;
  mutable sp_dropped : int;
  contention_tbl : (string, centry) Hashtbl.t;
  alloc_tbl : (string, aentry) Hashtbl.t;  (* keyed "heap\000site" *)
  (* lines_allocated per heap, snapshotted by the harness after a run
     (occupancy without the full space sweep) *)
  heap_occ_tbl : (string, int) Hashtbl.t;
  mutable recovery_cur : float;
  mutable recovery_rev : (int * float) list;
}

let fresh_hist name =
  {
    h_name = name;
    buckets = Array.make n_buckets 0;
    n = 0;
    sum = 0.;
    hmin = infinity;
    hmax = neg_infinity;
  }

let register_counter st name =
  match Hashtbl.find_opt st.counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = 0 } in
      Hashtbl.add st.counters_tbl name c;
      st.counters_rev <- c :: st.counters_rev;
      c

let register_gauge st name =
  match Hashtbl.find_opt st.gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g = 0. } in
      Hashtbl.add st.gauges_tbl name g;
      st.gauges_rev <- g :: st.gauges_rev;
      g

let register_hist st name =
  match Hashtbl.find_opt st.hists_tbl name with
  | Some h -> h
  | None ->
      let h = fresh_hist name in
      Hashtbl.add st.hists_tbl name h;
      st.hists_rev <- h :: st.hists_rev;
      h

let fresh_state () =
  let st =
    {
      enabled = false;
      events = 0;
      counters_tbl = Hashtbl.create 16;
      counters_rev = [];
      gauges_tbl = Hashtbl.create 16;
      gauges_rev = [];
      hists_tbl = Hashtbl.create 16;
      hists_rev = [];
      h_op = fresh_hist "op";
      h_insert = fresh_hist "op.insert";
      h_delete = fresh_hist "op.delete";
      h_find = fresh_hist "op.find";
      h_recover = fresh_hist "op.recover";
      h_recovery_round = fresh_hist "recovery.round";
      c_completed = { c_name = "ops.completed"; c = 0 };
      c_helped = { c_name = "ops.helped"; c = 0 };
      c_cas_failed = { c_name = "ops.with_cas_failure"; c = 0 };
      g_recovery_last = { g_name = "recovery.last_ns"; g = 0. };
      cur_kind = Array.make max_t "";
      cur_key = Array.make max_t 0;
      cur_begin = Array.make max_t 0.;
      cur_cas0 = Array.make max_t 0;
      cur_helped = Array.make max_t false;
      cas_fails = Array.make max_t 0;
      spans_rev = [];
      n_spans = 0;
      sp_dropped = 0;
      contention_tbl = Hashtbl.create 64;
      alloc_tbl = Hashtbl.create 64;
      heap_occ_tbl = Hashtbl.create 8;
      recovery_cur = 0.;
      recovery_rev = [];
    }
  in
  (* The well-known instruments are ordinary registry entries, just
     pre-registered so their registration order is stable. *)
  let reg_h h =
    Hashtbl.add st.hists_tbl h.h_name h;
    st.hists_rev <- h :: st.hists_rev
  in
  let reg_c c =
    Hashtbl.add st.counters_tbl c.c_name c;
    st.counters_rev <- c :: st.counters_rev
  in
  reg_h st.h_op;
  reg_h st.h_insert;
  reg_h st.h_delete;
  reg_h st.h_find;
  reg_h st.h_recover;
  reg_h st.h_recovery_round;
  reg_c st.c_completed;
  reg_c st.c_helped;
  reg_c st.c_cas_failed;
  Hashtbl.add st.gauges_tbl st.g_recovery_last.g_name st.g_recovery_last;
  st.gauges_rev <- st.g_recovery_last :: st.gauges_rev;
  st

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh_state
let state () = Domain.DLS.get dls
let active () = (state ()).enabled

(* ---- registry (same name->entry idiom as Pstats sites) ---------------- *)

let counter name = register_counter (state ()) name
let gauge name = register_gauge (state ()) name
let histogram name = register_hist (state ()) name

let incr_by c k =
  let st = state () in
  if st.enabled then begin
    c.c <- c.c + k;
    st.events <- st.events + 1
  end

let incr c = incr_by c 1
let count c = c.c

let set_gauge g v =
  let st = state () in
  if st.enabled then begin
    g.g <- v;
    st.events <- st.events + 1
  end

let gauge_value g = g.g

(* ---- log-bucketed histograms ------------------------------------------ *)

(* 4 buckets per octave: bucket 0 holds v <= 1, bucket i >= 1 holds
   (2^((i-1)/4), 2^(i/4)].  The representative is the geometric midpoint,
   so a reported quantile is within a factor of 2^(1/8) (~9%) of the
   sample at that rank. *)
let buckets_per_octave = 4.

let bucket_of v =
  if v <= 1. then 0
  else
    let i = 1 + int_of_float (Float.log2 v *. buckets_per_octave) in
    if i >= n_buckets then n_buckets - 1 else i

let rep_of i =
  if i = 0 then 1. else Float.exp2 ((float_of_int i -. 0.5) /. buckets_per_octave)

let observe h v =
  let st = state () in
  if st.enabled then begin
    let v = if Float.is_nan v || v < 0. then 0. else v in
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    st.events <- st.events + 1
  end

(* Nearest-rank: quantile q is the value of rank ceil(q*n), 1-based. *)
let quantile h q =
  if h.n = 0 then 0.
  else begin
    let target =
      let t = int_of_float (Float.ceil (q *. float_of_int h.n)) in
      if t < 1 then 1 else if t > h.n then h.n else t
    in
    let rec scan i acc =
      if i >= n_buckets then h.hmax
      else
        let acc = acc + h.buckets.(i) in
        if acc >= target then
          let v = rep_of i in
          if v < h.hmin then h.hmin else if v > h.hmax then h.hmax else v
        else scan (i + 1) acc
    in
    scan 0 0
  end

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summary h =
  {
    count = h.n;
    mean = (if h.n = 0 then 0. else h.sum /. float_of_int h.n);
    p50 = quantile h 0.5;
    p90 = quantile h 0.9;
    p99 = quantile h 0.99;
    max = (if h.n = 0 then 0. else h.hmax);
  }

let hist_summary name =
  Option.map summary (Hashtbl.find_opt (state ()).hists_tbl name)

let histograms () =
  List.rev_map (fun h -> (h.h_name, summary h)) (state ()).hists_rev

let counters () = List.rev_map (fun c -> (c.c_name, c.c)) (state ()).counters_rev
let gauges () = List.rev_map (fun g -> (g.g_name, g.g)) (state ()).gauges_rev

let hist_for_kind st = function
  | "insert" -> st.h_insert
  | "delete" -> st.h_delete
  | "find" -> st.h_find
  | "recover" -> st.h_recover
  | k -> register_hist st ("op." ^ k)

(* ---- operation spans --------------------------------------------------- *)

let push_span st sp =
  if st.n_spans >= max_spans then st.sp_dropped <- st.sp_dropped + 1
  else begin
    st.spans_rev <- sp :: st.spans_rev;
    st.n_spans <- st.n_spans + 1
  end;
  st.events <- st.events + 1

let spans () = List.rev (state ()).spans_rev
let spans_dropped () = (state ()).sp_dropped

let vtid () = if Sim.in_sim () then Sim.tid () else 0
let vnow () = if Sim.in_sim () then Sim.now () else 0.

let kind_of_op = function
  | Set_intf.Ins _ -> "insert"
  | Set_intf.Del _ -> "delete"
  | Set_intf.Fnd _ -> "find"

let op_begin ~kind ~key =
  let st = state () in
  if st.enabled || Trace.active () then begin
    let tid = vtid () in
    if tid >= 0 && tid < max_t then begin
      let clock = vnow () in
      st.cur_kind.(tid) <- kind;
      st.cur_key.(tid) <- key;
      st.cur_begin.(tid) <- clock;
      st.cur_cas0.(tid) <- st.cas_fails.(tid);
      st.cur_helped.(tid) <- false;
      Trace.op_begin ~tid ~kind ~key ~clock
    end
  end

let op_end ~ok =
  let st = state () in
  if st.enabled || Trace.active () then begin
    let tid = vtid () in
    if tid >= 0 && tid < max_t && st.cur_kind.(tid) <> "" then begin
      let clock = vnow () in
      let kind = st.cur_kind.(tid) in
      let cas_failures = st.cas_fails.(tid) - st.cur_cas0.(tid) in
      let helped = st.cur_helped.(tid) in
      Trace.op_end ~tid ~ok ~cas_failures ~helped ~clock;
      if st.enabled then begin
        let dur = Float.max 0. (clock -. st.cur_begin.(tid)) in
        observe st.h_op dur;
        observe (hist_for_kind st kind) dur;
        incr st.c_completed;
        if helped then incr st.c_helped;
        if cas_failures > 0 then incr st.c_cas_failed;
        push_span st
          {
            sp_tid = tid;
            sp_kind = kind;
            sp_key = st.cur_key.(tid);
            sp_begin = st.cur_begin.(tid);
            sp_end = clock;
            sp_ok = ok;
            sp_cas_failures = cas_failures;
            sp_helped = helped;
          }
      end;
      st.cur_kind.(tid) <- ""
    end
  end

(* ---- contention profile ------------------------------------------------ *)

type contention = {
  ct_line : string;
  ct_cas_failures : int;
  ct_invalidations : int;
}

let bump st line ~fails ~invals =
  let e =
    match Hashtbl.find_opt st.contention_tbl line with
    | Some e -> e
    | None ->
        let e = { ce_line = line; ce_fails = 0; ce_invals = 0 } in
        Hashtbl.add st.contention_tbl line e;
        e
  in
  e.ce_fails <- e.ce_fails + fails;
  e.ce_invals <- e.ce_invals + invals;
  st.events <- st.events + 1

let contention_top n =
  let st = state () in
  let all = Hashtbl.fold (fun _ e acc -> e :: acc) st.contention_tbl [] in
  let all =
    List.sort
      (fun a b ->
        let c = compare b.ce_fails a.ce_fails in
        if c <> 0 then c
        else
          let c = compare b.ce_invals a.ce_invals in
          if c <> 0 then c else compare a.ce_line b.ce_line)
      all
  in
  List.filteri (fun i _ -> i < n) all
  |> List.map (fun e ->
         {
           ct_line = e.ce_line;
           ct_cas_failures = e.ce_fails;
           ct_invalidations = e.ce_invals;
         })

(* ---- allocation-site table --------------------------------------------- *)

type alloc_site = { as_heap : string; as_site : string; as_lines : int }

let bump_alloc st ~heap ~site =
  let key = heap ^ "\000" ^ site in
  let e =
    match Hashtbl.find_opt st.alloc_tbl key with
    | Some e -> e
    | None ->
        let e = { ae_heap = heap; ae_site = site; ae_count = 0 } in
        Hashtbl.add st.alloc_tbl key e;
        e
  in
  e.ae_count <- e.ae_count + 1;
  st.events <- st.events + 1

let alloc_sites_top n =
  let st = state () in
  let all = Hashtbl.fold (fun _ e acc -> e :: acc) st.alloc_tbl [] in
  let all =
    List.sort
      (fun a b ->
        let c = compare b.ae_count a.ae_count in
        if c <> 0 then c
        else
          let c = compare a.ae_heap b.ae_heap in
          if c <> 0 then c else compare a.ae_site b.ae_site)
      all
  in
  List.filteri (fun i _ -> i < n) all
  |> List.map (fun e ->
         { as_heap = e.ae_heap; as_site = e.ae_site; as_lines = e.ae_count })

let note_heap_occupancy ~heap ~lines =
  let st = state () in
  if st.enabled then begin
    Hashtbl.replace st.heap_occ_tbl heap lines;
    st.events <- st.events + 1
  end

let heap_occupancy () =
  let st = state () in
  Hashtbl.fold (fun h n acc -> (h, n) :: acc) st.heap_occ_tbl []
  |> List.sort compare

(* The kind of the calling thread's in-flight operation span, "" between
   spans — the space observer uses it to attribute allocations to the
   operation that made them. *)
let current_op_kind () =
  let st = state () in
  let tid = vtid () in
  if tid >= 0 && tid < max_t then st.cur_kind.(tid) else ""

(* Only installed while enabled, so no per-event guard is needed here. *)
let on_pmem_event : Pmem.trace_event -> unit = function
  | Pmem.Cas { tid; line; success; invalidated } ->
      let st = state () in
      if not success then begin
        if tid >= 0 && tid < max_t then
          st.cas_fails.(tid) <- st.cas_fails.(tid) + 1;
        bump st line ~fails:1 ~invals:invalidated
      end
      else if invalidated > 0 then bump st line ~fails:0 ~invals:invalidated
  | Pmem.Write { line; invalidated; _ } ->
      if invalidated > 0 then
        let st = state () in
        bump st line ~fails:0 ~invals:invalidated
  | Pmem.Alloc { heap; site; _ } -> bump_alloc (state ()) ~heap ~site
  | Pmem.Read _ | Pmem.Pwb _ | Pmem.Pfence _ | Pmem.Psync _ -> ()

let on_helped owner =
  if owner >= 0 && owner < max_t then (state ()).cur_helped.(owner) <- true

(* ---- recovery profile -------------------------------------------------- *)

let recovery_thread_done () =
  let st = state () in
  if st.enabled then st.recovery_cur <- Float.max st.recovery_cur (vnow ())

let recovery_round_done round =
  let st = state () in
  if st.enabled then begin
    st.recovery_rev <- (round, st.recovery_cur) :: st.recovery_rev;
    observe st.h_recovery_round st.recovery_cur;
    set_gauge st.g_recovery_last st.recovery_cur;
    st.recovery_cur <- 0.
  end

let recovery_durations () = List.rev (state ()).recovery_rev

(* ---- lifecycle --------------------------------------------------------- *)

let enable () =
  let st = state () in
  if not st.enabled then begin
    st.enabled <- true;
    Pmem.set_collector (Some on_pmem_event);
    Tracking.set_helped_hook (Some on_helped)
  end

let disable () =
  let st = state () in
  if st.enabled then begin
    st.enabled <- false;
    Pmem.set_collector None;
    Tracking.set_helped_hook None
  end

let reset () =
  let st = state () in
  List.iter
    (fun h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.n <- 0;
      h.sum <- 0.;
      h.hmin <- infinity;
      h.hmax <- neg_infinity)
    st.hists_rev;
  List.iter (fun c -> c.c <- 0) st.counters_rev;
  List.iter (fun g -> g.g <- 0.) st.gauges_rev;
  Hashtbl.reset st.contention_tbl;
  Hashtbl.reset st.alloc_tbl;
  Hashtbl.reset st.heap_occ_tbl;
  st.spans_rev <- [];
  st.n_spans <- 0;
  st.sp_dropped <- 0;
  Array.fill st.cur_kind 0 max_t "";
  Array.fill st.cur_helped 0 max_t false;
  Array.fill st.cas_fails 0 max_t 0;
  Array.fill st.cur_cas0 0 max_t 0;
  st.recovery_cur <- 0.;
  st.recovery_rev <- [];
  st.events <- 0

let events_recorded () = (state ()).events
