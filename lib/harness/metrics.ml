(* Operation-level metrics over the Sim/Pmem observability hooks.

   Same zero-cost-when-off discipline as Trace: every entry point is
   guarded by one ref read, no virtual time is charged, no RNG draws are
   consumed, so enabling metrics can never perturb a simulated execution
   (test_repro locks the analogous property for the tracer).

   All durations are virtual nanoseconds on the per-thread Sim clocks. *)

let enabled = ref false
let active () = !enabled

(* Total volume of recorded data; the disabled-path test asserts this
   stays 0 across a whole campaign when metrics are off. *)
let events = ref 0

(* ---- registry (same name->entry idiom as Pstats sites) ---------------- *)

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : float }

type histogram = {
  h_name : string;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable hmin : float;
  mutable hmax : float;
}

let n_buckets = 256

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 16
let counters_rev : counter list ref = ref []
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let gauges_rev : gauge list ref = ref []
let hists_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let hists_rev : histogram list ref = ref []

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c = 0 } in
      Hashtbl.add counters_tbl name c;
      counters_rev := c :: !counters_rev;
      c

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g = 0. } in
      Hashtbl.add gauges_tbl name g;
      gauges_rev := g :: !gauges_rev;
      g

let fresh_hist name =
  {
    h_name = name;
    buckets = Array.make n_buckets 0;
    n = 0;
    sum = 0.;
    hmin = infinity;
    hmax = neg_infinity;
  }

let histogram name =
  match Hashtbl.find_opt hists_tbl name with
  | Some h -> h
  | None ->
      let h = fresh_hist name in
      Hashtbl.add hists_tbl name h;
      hists_rev := h :: !hists_rev;
      h

let incr_by c k =
  if !enabled then begin
    c.c <- c.c + k;
    incr events
  end

let incr c = incr_by c 1
let count c = c.c

let set_gauge g v =
  if !enabled then begin
    g.g <- v;
    events := !events + 1
  end

let gauge_value g = g.g

(* ---- log-bucketed histograms ------------------------------------------ *)

(* 4 buckets per octave: bucket 0 holds v <= 1, bucket i >= 1 holds
   (2^((i-1)/4), 2^(i/4)].  The representative is the geometric midpoint,
   so a reported quantile is within a factor of 2^(1/8) (~9%) of the
   sample at that rank. *)
let buckets_per_octave = 4.

let bucket_of v =
  if v <= 1. then 0
  else
    let i = 1 + int_of_float (Float.log2 v *. buckets_per_octave) in
    if i >= n_buckets then n_buckets - 1 else i

let rep_of i =
  if i = 0 then 1. else Float.exp2 ((float_of_int i -. 0.5) /. buckets_per_octave)

let observe h v =
  if !enabled then begin
    let v = if Float.is_nan v || v < 0. then 0. else v in
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    events := !events + 1
  end

(* Nearest-rank: quantile q is the value of rank ceil(q*n), 1-based. *)
let quantile h q =
  if h.n = 0 then 0.
  else begin
    let target =
      let t = int_of_float (Float.ceil (q *. float_of_int h.n)) in
      if t < 1 then 1 else if t > h.n then h.n else t
    in
    let rec scan i acc =
      if i >= n_buckets then h.hmax
      else
        let acc = acc + h.buckets.(i) in
        if acc >= target then
          let v = rep_of i in
          if v < h.hmin then h.hmin else if v > h.hmax then h.hmax else v
        else scan (i + 1) acc
    in
    scan 0 0
  end

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summary h =
  {
    count = h.n;
    mean = (if h.n = 0 then 0. else h.sum /. float_of_int h.n);
    p50 = quantile h 0.5;
    p90 = quantile h 0.9;
    p99 = quantile h 0.99;
    max = (if h.n = 0 then 0. else h.hmax);
  }

let hist_summary name =
  Option.map summary (Hashtbl.find_opt hists_tbl name)

let histograms () = List.rev_map (fun h -> (h.h_name, summary h)) !hists_rev
let counters () = List.rev_map (fun c -> (c.c_name, c.c)) !counters_rev
let gauges () = List.rev_map (fun g -> (g.g_name, g.g)) !gauges_rev

(* ---- well-known instruments ------------------------------------------- *)

let h_op = histogram "op"
let h_insert = histogram "op.insert"
let h_delete = histogram "op.delete"
let h_find = histogram "op.find"
let h_recover = histogram "op.recover"
let h_recovery_round = histogram "recovery.round"
let c_completed = counter "ops.completed"
let c_helped = counter "ops.helped"
let c_cas_failed = counter "ops.with_cas_failure"
let g_recovery_last = gauge "recovery.last_ns"

let hist_for_kind = function
  | "insert" -> h_insert
  | "delete" -> h_delete
  | "find" -> h_find
  | "recover" -> h_recover
  | k -> histogram ("op." ^ k)

(* ---- operation spans --------------------------------------------------- *)

type span = {
  sp_tid : int;
  sp_kind : string;
  sp_key : int;
  sp_begin : float;
  sp_end : float;
  sp_ok : bool;
  sp_cas_failures : int;
  sp_helped : bool;
}

let max_t = Pmem.max_threads

(* In-flight span per thread; cur_kind = "" means none open. *)
let cur_kind = Array.make max_t ""
let cur_key = Array.make max_t 0
let cur_begin = Array.make max_t 0.
let cur_cas0 = Array.make max_t 0
let cur_helped = Array.make max_t false

(* Failed CASes per thread, maintained by the Pmem collector. *)
let cas_fails = Array.make max_t 0

(* Span storage is capped so long metric-enabled sweeps stay bounded;
   the histograms keep counting past the cap. *)
let max_spans = 200_000
let spans_rev : span list ref = ref []
let n_spans = ref 0
let sp_dropped = ref 0

let push_span sp =
  if !n_spans >= max_spans then sp_dropped := !sp_dropped + 1
  else begin
    spans_rev := sp :: !spans_rev;
    n_spans := !n_spans + 1
  end;
  events := !events + 1

let spans () = List.rev !spans_rev
let spans_dropped () = !sp_dropped

let vtid () = if Sim.in_sim () then Sim.tid () else 0
let vnow () = if Sim.in_sim () then Sim.now () else 0.

let kind_of_op = function
  | Set_intf.Ins _ -> "insert"
  | Set_intf.Del _ -> "delete"
  | Set_intf.Fnd _ -> "find"

let op_begin ~kind ~key =
  if !enabled || Trace.active () then begin
    let tid = vtid () in
    if tid >= 0 && tid < max_t then begin
      let clock = vnow () in
      cur_kind.(tid) <- kind;
      cur_key.(tid) <- key;
      cur_begin.(tid) <- clock;
      cur_cas0.(tid) <- cas_fails.(tid);
      cur_helped.(tid) <- false;
      Trace.op_begin ~tid ~kind ~key ~clock
    end
  end

let op_end ~ok =
  if !enabled || Trace.active () then begin
    let tid = vtid () in
    if tid >= 0 && tid < max_t && cur_kind.(tid) <> "" then begin
      let clock = vnow () in
      let kind = cur_kind.(tid) in
      let cas_failures = cas_fails.(tid) - cur_cas0.(tid) in
      let helped = cur_helped.(tid) in
      Trace.op_end ~tid ~ok ~cas_failures ~helped ~clock;
      if !enabled then begin
        let dur = Float.max 0. (clock -. cur_begin.(tid)) in
        observe h_op dur;
        observe (hist_for_kind kind) dur;
        incr c_completed;
        if helped then incr c_helped;
        if cas_failures > 0 then incr c_cas_failed;
        push_span
          {
            sp_tid = tid;
            sp_kind = kind;
            sp_key = cur_key.(tid);
            sp_begin = cur_begin.(tid);
            sp_end = clock;
            sp_ok = ok;
            sp_cas_failures = cas_failures;
            sp_helped = helped;
          }
      end;
      cur_kind.(tid) <- ""
    end
  end

(* ---- contention profile ------------------------------------------------ *)

type contention = {
  ct_line : string;
  ct_cas_failures : int;
  ct_invalidations : int;
}

type centry = {
  ce_line : string;
  mutable ce_fails : int;
  mutable ce_invals : int;
}

let contention_tbl : (string, centry) Hashtbl.t = Hashtbl.create 64

let bump line ~fails ~invals =
  let e =
    match Hashtbl.find_opt contention_tbl line with
    | Some e -> e
    | None ->
        let e = { ce_line = line; ce_fails = 0; ce_invals = 0 } in
        Hashtbl.add contention_tbl line e;
        e
  in
  e.ce_fails <- e.ce_fails + fails;
  e.ce_invals <- e.ce_invals + invals;
  events := !events + 1

let contention_top n =
  let all = Hashtbl.fold (fun _ e acc -> e :: acc) contention_tbl [] in
  let all =
    List.sort
      (fun a b ->
        let c = compare b.ce_fails a.ce_fails in
        if c <> 0 then c
        else
          let c = compare b.ce_invals a.ce_invals in
          if c <> 0 then c else compare a.ce_line b.ce_line)
      all
  in
  List.filteri (fun i _ -> i < n) all
  |> List.map (fun e ->
         {
           ct_line = e.ce_line;
           ct_cas_failures = e.ce_fails;
           ct_invalidations = e.ce_invals;
         })

(* Only installed while enabled, so no per-event guard is needed here. *)
let on_pmem_event : Pmem.trace_event -> unit = function
  | Pmem.Cas { tid; line; success; invalidated } ->
      if not success then begin
        if tid >= 0 && tid < max_t then cas_fails.(tid) <- cas_fails.(tid) + 1;
        bump line ~fails:1 ~invals:invalidated
      end
      else if invalidated > 0 then bump line ~fails:0 ~invals:invalidated
  | Pmem.Write { line; invalidated; _ } ->
      if invalidated > 0 then bump line ~fails:0 ~invals:invalidated
  | Pmem.Read _ | Pmem.Pwb _ | Pmem.Pfence _ | Pmem.Psync _ -> ()

let on_helped owner =
  if owner >= 0 && owner < max_t then cur_helped.(owner) <- true

(* ---- recovery profile -------------------------------------------------- *)

let recovery_cur = ref 0.
let recovery_rev : (int * float) list ref = ref []

let recovery_thread_done () =
  if !enabled then recovery_cur := Float.max !recovery_cur (vnow ())

let recovery_round_done round =
  if !enabled then begin
    recovery_rev := (round, !recovery_cur) :: !recovery_rev;
    observe h_recovery_round !recovery_cur;
    set_gauge g_recovery_last !recovery_cur;
    recovery_cur := 0.
  end

let recovery_durations () = List.rev !recovery_rev

(* ---- lifecycle --------------------------------------------------------- *)

let enable () =
  if not !enabled then begin
    enabled := true;
    Pmem.collector := Some on_pmem_event;
    Tracking.helped_hook := Some on_helped
  end

let disable () =
  if !enabled then begin
    enabled := false;
    Pmem.collector := None;
    Tracking.helped_hook := None
  end

let reset () =
  List.iter
    (fun h ->
      Array.fill h.buckets 0 n_buckets 0;
      h.n <- 0;
      h.sum <- 0.;
      h.hmin <- infinity;
      h.hmax <- neg_infinity)
    !hists_rev;
  List.iter (fun c -> c.c <- 0) !counters_rev;
  List.iter (fun g -> g.g <- 0.) !gauges_rev;
  Hashtbl.reset contention_tbl;
  spans_rev := [];
  n_spans := 0;
  sp_dropped := 0;
  Array.fill cur_kind 0 max_t "";
  Array.fill cur_helped 0 max_t false;
  Array.fill cas_fails 0 max_t 0;
  Array.fill cur_cas0 0 max_t 0;
  recovery_cur := 0.;
  recovery_rev := [];
  events := 0

let events_recorded () = !events
