(** Operation-level metrics over the [Sim]/[Pmem] observability hooks.

    A {e domain-local} registry of counters, gauges and log-bucketed
    virtual-time histograms, plus three derived profiles.  Like every
    observability surface of the substrate (Trace sink, Pmem hooks),
    metrics state belongs to the calling domain: concurrent campaigns on
    separate domains ([Harness.Parallel]) record independently, and the
    worker domains of a [-j] run are not observed by the main domain's
    instruments.  The derived profiles:

    - {e operation spans}: begin/end instrumentation around every
      [Set_intf] operation (installed by [Runner] and [Crashes]), tagged
      with op kind, outcome, CAS-failure count and whether the operation
      was helped by another thread ([Tracking.helped_hook]);
    - {e contention profile}: per-cache-line CAS failures and cache
      invalidations, aggregated from [Pmem.collector];
    - {e recovery durations}: virtual time of each recovery round of a
      crash campaign ([Crashes]).

    Everything is disabled by default.  When disabled, every entry point
    is a ref read (or one ref read plus [Trace.active ()] for span
    boundaries, which also serve the tracer) and allocates nothing; in
    particular no [Sim] virtual time is charged and no RNG draws are
    consumed, so enabling or disabling metrics can never change a
    simulated execution.

    Durations are measured on the per-thread virtual clocks ([Sim.now]),
    in nanoseconds. *)

(** {1 Activation} *)

val enable : unit -> unit
(** Turn recording on and install the [Pmem.collector] and
    [Tracking.helped_hook] hooks.  Idempotent. *)

val disable : unit -> unit
(** Turn recording off and uninstall the hooks.  Recorded data is kept
    until {!reset}.  Idempotent. *)

val active : unit -> bool

val reset : unit -> unit
(** Clear all recorded data — histogram contents, counters, gauges,
    spans, contention and recovery profiles.  Registered instruments
    survive (a registry entry is its name).  Called automatically at the
    start of every [Runner.measure] / [Crashes.run_logged] when metrics
    are active, so each run reports only its own events. *)

(** {1 Registry} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** [counter name] returns the counter registered under [name], creating
    it on first use (same idiom as [Pstats.site]). *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val incr_by : counter -> int -> unit
val count : counter -> int

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record a sample (clamped to [>= 0]).  The histogram is log-bucketed
    (4 buckets per octave, 256 buckets), so quantiles are exact in rank
    and approximate in value within a factor of [2^(1/8)] (≈ 9%). *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;  (** exact, not bucketed *)
}

val summary : histogram -> summary
(** Quantile [q] is the value of rank [ceil (q * count)] (1-based), the
    usual nearest-rank definition; bucket representatives are clamped to
    the observed [min]/[max]. *)

val quantile : histogram -> float -> float

val hist_summary : string -> summary option
(** Summary of the histogram registered under a name, if any samples or
    registration exist. *)

val histograms : unit -> (string * summary) list
(** All registered histograms, in registration order. *)

val counters : unit -> (string * int) list
val gauges : unit -> (string * float) list

(** {1 Operation spans} *)

type span = {
  sp_tid : int;
  sp_kind : string;  (** "insert", "delete", "find", "recover" *)
  sp_key : int;
  sp_begin : float;  (** virtual ns, clock of the current [Sim.run] *)
  sp_end : float;
  sp_ok : bool;  (** the operation's boolean response *)
  sp_cas_failures : int;  (** failed CASes executed by the thread inside *)
  sp_helped : bool;  (** another thread ran Help on this op *)
}

val kind_of_op : Set_intf.op -> string

val op_begin : kind:string -> key:int -> unit
(** Open a span on the calling simulated thread.  Also emits the
    [op_begin] trace event when a [Trace] sink is active (spans feed the
    tracer even when metrics are disabled). *)

val op_end : ok:bool -> unit
(** Close the calling thread's open span: records the duration into the
    ["op"] and ["op.<kind>"] histograms and stores the span.  No-op if no
    span is open. *)

val spans : unit -> span list
(** Completed spans in completion order.  Storage is capped (the
    histograms are not); {!spans_dropped} counts the overflow. *)

val spans_dropped : unit -> int

(** {1 Contention profile} *)

type contention = {
  ct_line : string;  (** cache-line name *)
  ct_cas_failures : int;
  ct_invalidations : int;  (** sharer caches invalidated by stores *)
}

val contention_top : int -> contention list
(** Top-N lines by CAS failures (ties by invalidations). *)

(** {1 Allocation-site table} *)

type alloc_site = {
  as_heap : string;  (** owning heap *)
  as_site : string;  (** allocation site ([Pmem.site_of_name]) *)
  as_lines : int;  (** cache lines allocated at this (heap, site) *)
}

val alloc_sites_top : int -> alloc_site list
(** Top-N allocation sites by lines allocated (ties by heap then site
    name), aggregated from the [Pmem.Alloc] collector events while
    metrics were enabled. *)

val note_heap_occupancy : heap:string -> lines:int -> unit
(** Snapshot a heap's [Pmem.lines_allocated] into the registry (the
    harness calls this once after a run) — occupancy in every report
    without enabling the full space sweep.  No-op when disabled. *)

val heap_occupancy : unit -> (string * int) list
(** Snapshotted per-heap line counts, sorted by heap name. *)

val current_op_kind : unit -> string
(** Kind of the calling simulated thread's in-flight operation span
    ([""] between spans) — lets the space observer attribute an
    allocation to the operation performing it. *)

(** {1 Recovery profile} *)

val recovery_thread_done : unit -> unit
(** Called by a recoverer fiber when it finishes; records [Sim.now ()] as
    a candidate duration for the current recovery round (the round's
    duration is the max over its recoverers). *)

val recovery_round_done : int -> unit
(** Close the current recovery round (argument: campaign round index):
    stores its duration and feeds the ["recovery.round"] histogram. *)

val recovery_durations : unit -> (int * float) list
(** [(round, virtual ns)] per completed recovery round, oldest first. *)

(** {1 Introspection for tests} *)

val events_recorded : unit -> int
(** Total volume of recorded data — histogram samples, counter
    increments, spans, contention entries and recovery rounds.  [0] iff
    nothing was recorded since the last {!reset}; the disabled-path test
    asserts a full campaign leaves this at [0]. *)
