type event = { eop : Set_intf.op; ok : bool }

let pp_event ppf e =
  Format.fprintf ppf "%a = %b" Set_intf.pp_op e.eop e.ok

module IM = Map.Make (Int)
module IS = Set.Make (Int)

type tally = {
  si : int;  (* successful inserts *)
  sd : int;  (* successful deletes *)
  fi : int;  (* failed inserts *)
  fd : int;  (* failed deletes *)
  finds_true : int;
  finds_false : int;
}

let zero = { si = 0; sd = 0; fi = 0; fd = 0; finds_true = 0; finds_false = 0 }

let tally_of_events events =
  List.fold_left
    (fun m e ->
      let k = Set_intf.op_key e.eop in
      let t = Option.value (IM.find_opt k m) ~default:zero in
      let t =
        match (e.eop, e.ok) with
        | Set_intf.Ins _, true -> { t with si = t.si + 1 }
        | Set_intf.Ins _, false -> { t with fi = t.fi + 1 }
        | Set_intf.Del _, true -> { t with sd = t.sd + 1 }
        | Set_intf.Del _, false -> { t with fd = t.fd + 1 }
        | Set_intf.Fnd _, true -> { t with finds_true = t.finds_true + 1 }
        | Set_intf.Fnd _, false -> { t with finds_false = t.finds_false + 1 }
      in
      IM.add k t m)
    IM.empty events

(* FIFO topic model for queue-backed shards ([Set_intf.Queue_model]).
   Unlike the set oracle this is order-SENSITIVE: it replays the event
   sequence against a model queue.  That is sound for a store shard
   because a single server fiber serializes every operation on the
   backend, so completion order is execution order.  [Ins k] must
   enqueue (always ok), [Del _] must report exactly whether the model
   queue was non-empty and consumes its head, [Fnd k] must report
   membership of the model queue at that point. *)
let check_queue ~initial ~final events =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let q = Queue.create () in
  List.iter (fun k -> Queue.push k q) initial;
  let step acc (i, e) =
    match acc with
    | Error _ as err -> err
    | Ok () -> (
        match (e.eop, e.ok) with
        | Set_intf.Ins k, ok ->
            if not ok then err "event %d: enqueue(%d) reported failure" i k
            else begin
              Queue.push k q;
              Ok ()
            end
        | Set_intf.Del _, ok ->
            if Queue.is_empty q then
              if ok then err "event %d: dequeue succeeded on an empty topic" i
              else Ok ()
            else if not ok then
              err "event %d: dequeue failed with head %d available" i
                (Queue.peek q)
            else begin
              ignore (Queue.pop q : int);
              Ok ()
            end
        | Set_intf.Fnd k, ok ->
            let mem = Queue.fold (fun m v -> m || v = k) false q in
            if mem <> ok then
              err "event %d: find(%d) returned %b but the topic %s it" i k ok
                (if mem then "held" else "did not hold")
            else Ok ())
  in
  let indexed = List.mapi (fun i e -> (i, e)) events in
  match List.fold_left step (Ok ()) indexed with
  | Error _ as e -> e
  | Ok () ->
      let model = List.of_seq (Queue.to_seq q) in
      if model <> final then
        err "final topic %s but the model predicts %s"
          (String.concat "," (List.map string_of_int final))
          (String.concat "," (List.map string_of_int model))
      else Ok ()

let check ~initial ~final events =
  let init = IS.of_list initial in
  let fin = IS.of_list final in
  let tallies = tally_of_events events in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let keys =
    IS.union (IS.union init fin)
      (IM.fold (fun k _ acc -> IS.add k acc) tallies IS.empty)
  in
  IS.fold
    (fun k acc ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
          let t = Option.value (IM.find_opt k tallies) ~default:zero in
          let i0 = IS.mem k init and f0 = IS.mem k fin in
          let net = t.si - t.sd in
          let expected_net = (if f0 then 1 else 0) - if i0 then 1 else 0 in
          if net <> expected_net then
            err
              "key %d: net successful inserts %d (si=%d sd=%d) but presence \
               went %b -> %b"
              k net t.si t.sd i0 f0
          else if (not i0) && (net < 0 || net > 1) then
            err "key %d: impossible alternation from absent (si=%d sd=%d)" k
              t.si t.sd
          else if i0 && (net > 0 || net < -1) then
            err "key %d: impossible alternation from present (si=%d sd=%d)" k
              t.si t.sd
          else if t.fi > 0 && (not i0) && t.si = 0 then
            err "key %d: failed insert but the key was never present" k
          else if t.fd > 0 && i0 && t.sd = 0 then
            err "key %d: failed delete but the key was never absent" k
          else if t.si = 0 && t.sd = 0 && i0 && t.finds_false > 0 then
            err "key %d: find returned false but key was present throughout" k
          else if t.si = 0 && t.sd = 0 && (not i0) && t.finds_true > 0 then
            err "key %d: find returned true but key was absent throughout" k
          else Ok ())
    keys (Ok ())
