(** Per-key set-semantics oracle.

    For a set with per-key alternation (a successful insert requires the
    key absent, a successful delete requires it present), a multiset of
    completed operations is per-key linearizable iff, for every key:

    - the net successful inserts minus successful deletes moves the key's
      presence from its initial to its final state and never leaves
      {0, 1};
    - failed inserts only occur if the key was ever present, failed
      deletes only if it was ever absent;
    - when a key saw no successful update at all, every find on it must
      report the (constant) initial presence.

    This is sound and complete for per-key histories; cross-key real-time
    ordering is checked separately by {!Linearize} on small histories. *)

type event = { eop : Set_intf.op; ok : bool }

val check :
  initial:int list -> final:int list -> event list -> (unit, string) result

val check_queue :
  initial:int list -> final:int list -> event list -> (unit, string) result
(** FIFO topic model for queue-backed shards ([Set_intf.Queue_model]).
    Order-sensitive: replays [events] (execution order, oldest first)
    against a model queue seeded with [initial] (front first) — sound
    when a single server serializes the backend, as store shards do.
    [Ins k] must enqueue (ok), [Del _] must consume the head and report
    exactly whether the topic was non-empty, [Fnd k] must report model
    membership; the final model queue must equal [final]. *)

val pp_event : Format.formatter -> event -> unit
