(* Domain-pool driver for campaign fan-out.

   A campaign is a finite list of independent work items (seed ×
   schedule-prefix × crash-plan, victim shard, (target, factor) rerun...)
   whose per-item results are pure functions of the item — the whole
   point of the per-domain substrate state (Sim ambient context, Pmem
   instance, Cost table, Pstats statistics, Metrics registry, Trace
   sink) is that running an item on a worker domain produces bit-for-bit
   the result it would produce inline.

   Determinism contract:
   - results are merged {e by work-item index}, never by completion
     order: [run] returns exactly [Array.map f (Array.of_list items)]
     no matter how the pool interleaves;
   - first-counterexample attribution is by {e lowest index}, not
     earliest wall-clock ([first_failure]);
   - items are claimed from a single atomic counter, so there is no
     per-domain partition to go idle early under skewed item costs.

   [jobs <= 1] runs every item inline on the calling domain — not a
   1-worker pool — so [-j 1] is byte-identical to the sequential code
   path by construction, exceptions propagate directly, and the
   caller's own tracer/metrics still observe the run. *)

let default_jobs () = Domain.recommended_domain_count ()

let run_inline f items = Array.mapi (fun i x -> f i x) items

let run (type a b) ?(jobs = 1) (f : int -> a -> b) (items : a array) : b array
    =
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 || n = 0 then run_inline f items
  else begin
    let results : b option array = Array.make n None in
    (* one failure slot; lowest index wins so the reported error does not
       depend on domain interleaving *)
    let failed = Atomic.make (None : (int * exn * Printexc.raw_backtrace) option) in
    let record_failure i exn bt =
      let rec loop () =
        let cur = Atomic.get failed in
        let better = match cur with None -> true | Some (j, _, _) -> i < j in
        if better && not (Atomic.compare_and_set failed cur (Some (i, exn, bt)))
        then loop ()
      in
      loop ()
    in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i items.(i) with
          | r -> results.(i) <- Some r
          | exception exn ->
              record_failure i exn (Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failed with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index < n was claimed exactly once *))
      results
  end

let map ?jobs f items =
  Array.to_list (run ?jobs (fun _ x -> f x) (Array.of_list items))

let first_failure (type b) (is_failure : b -> bool) (results : b array) :
    (int * b) option =
  let rec scan i =
    if i >= Array.length results then None
    else if is_failure results.(i) then Some (i, results.(i))
    else scan (i + 1)
  in
  scan 0
