(** Domain-pool driver for campaign fan-out ([-j]).

    Fans a finite array of independent work items (seed ×
    schedule-prefix × crash-plan, victim shard, (target, factor)
    rerun, ...) across OCaml 5 domains.  Each worker domain gets its own
    copy of all domain-local substrate state — [Sim] ambient context,
    [Pmem] instance, [Cost] table, [Pstats] statistics, [Metrics]
    registry, [Trace] sink — so per-item results are bit-for-bit what
    the same item would produce inline, and two items never observe
    each other's write-backs, clocks, or counters.

    {2 Determinism contract}

    - {!run} merges results {e by work-item index}, never by completion
      order: the returned array equals [Array.mapi f items] no matter
      how the pool interleaves.
    - First-counterexample attribution is by {e lowest index}
      ({!first_failure}), not earliest wall-clock, so the reported
      counterexample (and any repro file derived from it) is stable
      across [-j] values and runs.
    - Items are claimed from one atomic counter (work-stealing by
      construction); there is no static partition to go idle early under
      skewed item costs.

    {2 Observability caveat}

    Trace sinks and Metrics instruments are domain-local: items executed
    on worker domains are {e not} observed by the calling domain's
    tracer or metrics.  Callers that need per-item observability either
    run at [jobs = 1] or re-execute the chosen item inline afterwards
    (what the explorers do to write repro files). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j 0] meaning. *)

val run : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [run ~jobs f items] computes [f i items.(i)] for every [i] and
    returns the results in item order.  [jobs <= 1] (the default) runs
    every item inline on the calling domain — {e not} a 1-worker pool —
    so [-j 1] is byte-identical to sequential code by construction and
    exceptions propagate directly.  With [jobs > 1], [jobs - 1] worker
    domains are spawned (the calling domain is the last worker); if any
    item raises, the exception of the {e lowest-indexed} failing item is
    re-raised after all domains join. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List-flavoured {!run} without the index. *)

val first_failure : ('b -> bool) -> 'b array -> (int * 'b) option
(** Lowest-indexed result satisfying the predicate — the deterministic
    "first counterexample" of a fanned campaign. *)
