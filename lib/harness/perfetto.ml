(* JSONL trace -> Chrome trace_event JSON (Perfetto-openable).

   The simulator restarts every per-thread clock at 0 on each Sim.run, so
   a campaign's rounds all start at t=0.  The converter keeps a running
   offset: when a round boundary (or end of input) is reached, the
   maximum clock observed inside the round becomes the start of the next
   one, giving one continuous virtual timeline.  Spans still open at a
   crash or round boundary are emitted as slices ending at the round's
   maximum clock and tagged "interrupted". *)

type stats = { out_spans : int; out_threads : int; in_events : int }

(* ---- minimal JSON ------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then advance ()
    else raise (Bad (Printf.sprintf "expected '%c' at offset %d" c !pos))
  in
  let lit w v =
    let k = String.length w in
    if !pos + k <= n && String.sub s !pos k = w then begin
      pos := !pos + k;
      v
    end
    else raise (Bad (Printf.sprintf "bad literal at offset %d" !pos))
  in
  let str () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 'b' -> Buffer.add_char b '\b'; advance ()
          | 'f' -> Buffer.add_char b '\012'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then raise (Bad "truncated \\u escape");
              let h = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ h) with
              | None -> raise (Bad "bad \\u escape")
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ ->
                  (* non-ASCII: keep escaped, enough for validation *)
                  Buffer.add_string b ("\\u" ^ h))
          | _ -> raise (Bad (Printf.sprintf "bad escape at offset %d" !pos)));
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let num () =
    let start = !pos in
    if peek () = '-' then advance ();
    while
      match peek () with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise (Bad (Printf.sprintf "bad number at offset %d" start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Str (str ())
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | 'n' -> lit "null" Null
    | '-' | '0' .. '9' -> num ()
    | c -> raise (Bad (Printf.sprintf "unexpected '%c' at offset %d" c !pos))
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      Arr []
    end
    else
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            items (v :: acc)
        | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> raise (Bad (Printf.sprintf "expected ',' or ']' at %d" !pos))
      in
      items []
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Obj []
    end
    else
      let rec fields acc =
        skip_ws ();
        let k = str () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            fields ((k, v) :: acc)
        | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> raise (Bad (Printf.sprintf "expected ',' or '}' at %d" !pos))
      in
      fields []
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad m -> Error m

(* ---- field accessors --------------------------------------------------- *)

let field k fields = List.assoc_opt k fields
let fnum k fields = match field k fields with Some (Num f) -> Some f | _ -> None
let fstr k fields = match field k fields with Some (Str s) -> Some s | _ -> None

let fbool k fields =
  match field k fields with Some (Bool b) -> Some b | _ -> None

let fint k fields = Option.map int_of_float (fnum k fields)

(* ---- output ------------------------------------------------------------ *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = ns /. 1000.

(* ---- conversion -------------------------------------------------------- *)

type open_span = { os_kind : string; os_key : int; os_begin : float }

let convert ~jsonl ~out =
  match
    try Ok (In_channel.with_open_text jsonl In_channel.input_all)
    with Sys_error m -> Error m
  with
  | Error m -> Error m
  | Ok text -> (
      match (try Ok (open_out out) with Sys_error m -> Error m) with
      | Error m -> Error m
      | Ok oc ->
          let first = ref true in
          let raw s =
            if !first then first := false else output_string oc ",\n  ";
            output_string oc s
          in
          output_string oc "{\"traceEvents\":[\n  ";
          let offset = ref 0. in
          let round_max = ref 0. in
          let opens : (int, open_span) Hashtbl.t = Hashtbl.create 16 in
          let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
          (* crash-recovery flow arrows: a span interrupted by a crash
             opens a flow (ph:"s") that the thread's next "recover" span
             terminates (ph:"f"), visually linking one operation's
             attempts across crash/recovery rounds *)
          let pending_flow : (int, int) Hashtbl.t = Hashtbl.create 8 in
          (* cumulative per-heap occupancy, fed by "alloc" events and
             rendered as one memory counter track per heap *)
          let heap_lines : (string, int) Hashtbl.t = Hashtbl.create 4 in
          let flow_ids = ref 0 in
          let spans = ref 0 in
          let events = ref 0 in
          let see tid = if not (Hashtbl.mem seen tid) then Hashtbl.add seen tid () in
          let clockbump c = if c > !round_max then round_max := c in
          let now_global () = !offset +. !round_max in
          let span ~tid ~name ~ts ~dur ~args =
            incr spans;
            raw
              (Printf.sprintf
                 {|{"name":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{%s}}|}
                 (esc name) (us_of_ns ts) (us_of_ns dur) tid args)
          in
          let instant ~tid ~scope ~name ~ts ~args =
            raw
              (Printf.sprintf
                 {|{"name":"%s","ph":"i","ts":%.3f,"pid":1,"tid":%d,"s":"%s"%s}|}
                 (esc name) (us_of_ns ts) tid scope
                 (if args = "" then "" else Printf.sprintf {|,"args":{%s}|} args))
          in
          let close_open_spans ?(flows = false) reason =
            (* tid-sorted so flow ids are assigned deterministically *)
            let bindings =
              Hashtbl.fold (fun tid os acc -> (tid, os) :: acc) opens []
              |> List.sort compare
            in
            List.iter
              (fun (tid, os) ->
                let e = !offset +. !round_max in
                let b = !offset +. os.os_begin in
                span ~tid
                  ~name:(Printf.sprintf "%s(%d) (%s)" os.os_kind os.os_key reason)
                  ~ts:b
                  ~dur:(Float.max 0. (e -. b))
                  ~args:{|"interrupted":true|};
                if flows then begin
                  incr flow_ids;
                  Hashtbl.replace pending_flow tid !flow_ids;
                  raw
                    (Printf.sprintf
                       {|{"name":"crash-recovery","cat":"recovery","ph":"s","id":%d,"ts":%.3f,"pid":1,"tid":%d}|}
                       !flow_ids (us_of_ns e) tid)
                end)
              bindings;
            Hashtbl.reset opens
          in
          let on_line fields =
            incr events;
            match fstr "ev" fields with
            | Some "sched" ->
                Option.iter see (fint "tid" fields);
                Option.iter clockbump (fnum "clock" fields)
            | Some "op_begin" -> (
                match
                  (fint "tid" fields, fstr "kind" fields, fint "key" fields,
                   fnum "clock" fields)
                with
                | Some tid, Some kind, Some key, Some clock ->
                    see tid;
                    clockbump clock;
                    (match Hashtbl.find_opt pending_flow tid with
                    | Some id when kind = "recover" ->
                        Hashtbl.remove pending_flow tid;
                        raw
                          (Printf.sprintf
                             {|{"name":"crash-recovery","cat":"recovery","ph":"f","bp":"e","id":%d,"ts":%.3f,"pid":1,"tid":%d}|}
                             id
                             (us_of_ns (!offset +. clock))
                             tid)
                    | _ -> ());
                    Hashtbl.replace opens tid
                      { os_kind = kind; os_key = key; os_begin = clock }
                | _ -> ())
            | Some "op_end" -> (
                match (fint "tid" fields, fnum "clock" fields) with
                | Some tid, Some clock -> (
                    see tid;
                    clockbump clock;
                    match Hashtbl.find_opt opens tid with
                    | None -> ()
                    | Some os ->
                        Hashtbl.remove opens tid;
                        let ok = Option.value ~default:false (fbool "ok" fields) in
                        let cf = Option.value ~default:0 (fint "cas_fail" fields) in
                        let helped =
                          Option.value ~default:false (fbool "helped" fields)
                        in
                        span ~tid
                          ~name:(Printf.sprintf "%s(%d)" os.os_kind os.os_key)
                          ~ts:(!offset +. os.os_begin)
                          ~dur:(Float.max 0. (clock -. os.os_begin))
                          ~args:
                            (Printf.sprintf
                               {|"ok":%b,"cas_failures":%d,"helped":%b,"key":%d|}
                               ok cf helped os.os_key))
                | _ -> ())
            | Some "cas" -> (
                match (fint "tid" fields, fnum "clock" fields) with
                | Some tid, Some clock ->
                    see tid;
                    clockbump clock;
                    if fbool "ok" fields = Some false then
                      instant ~tid ~scope:"t"
                        ~name:
                          (Printf.sprintf "cas-fail %s"
                             (Option.value ~default:"?" (fstr "line" fields)))
                        ~ts:(!offset +. clock) ~args:""
                | _ -> ())
            | Some (("pwb" | "pfence" | "psync") as kind) -> (
                match (fint "tid" fields, fnum "clock" fields) with
                | Some tid, Some clock ->
                    see tid;
                    clockbump clock;
                    let site = Option.value ~default:"?" (fstr "site" fields) in
                    let args =
                      match fstr "impact" fields with
                      | Some i -> Printf.sprintf {|"impact":"%s"|} (esc i)
                      | None -> ""
                    in
                    instant ~tid ~scope:"t"
                      ~name:(Printf.sprintf "%s %s" kind site)
                      ~ts:(!offset +. clock) ~args
                | _ -> ())
            | Some "crash" ->
                close_open_spans ~flows:true "interrupted";
                instant ~tid:0 ~scope:"g" ~name:"crash" ~ts:(now_global ())
                  ~args:""
            | Some "alloc" -> (
                match (fstr "heap" fields, fnum "clock" fields) with
                | Some heap, Some clock ->
                    clockbump clock;
                    let n =
                      1 + Option.value ~default:0 (Hashtbl.find_opt heap_lines heap)
                    in
                    Hashtbl.replace heap_lines heap n;
                    raw
                      (Printf.sprintf
                         {|{"name":"heap %s occupancy (lines)","ph":"C","ts":%.3f,"pid":1,"args":{"lines":%d}}|}
                         (esc heap)
                         (us_of_ns (!offset +. clock))
                         n)
                | _ -> ())
            | Some "win" -> (
                (* per-shard windowed time-series -> counter tracks *)
                match
                  (fint "sid" fields, fnum "start" fields,
                   fint "completions" fields, fnum "mops" fields)
                with
                | Some sid, Some start, Some _, Some mops ->
                    let ts = us_of_ns (!offset +. start) in
                    raw
                      (Printf.sprintf
                         {|{"name":"shard %d throughput (Mops/s)","ph":"C","ts":%.3f,"pid":1,"args":{"mops":%.6f}}|}
                         sid ts mops);
                    (match fnum "lat_mean" fields with
                    | Some lat ->
                        raw
                          (Printf.sprintf
                             {|{"name":"shard %d latency (ns)","ph":"C","ts":%.3f,"pid":1,"args":{"ns":%.1f}}|}
                             sid ts lat)
                    | None -> ())
                | _ -> ())
            | Some "round" ->
                close_open_spans "interrupted";
                offset := now_global ();
                round_max := 0.;
                let kind = Option.value ~default:"?" (fstr "kind" fields) in
                let nr = Option.value ~default:0 (fint "n" fields) in
                instant ~tid:0 ~scope:"g"
                  ~name:(Printf.sprintf "round %d (%s)" nr kind)
                  ~ts:!offset ~args:""
            | Some "note" ->
                instant ~tid:0 ~scope:"g"
                  ~name:(Option.value ~default:"note" (fstr "msg" fields))
                  ~ts:(now_global ()) ~args:""
            | _ -> ()
          in
          let err = ref None in
          let lineno = ref 0 in
          String.split_on_char '\n' text
          |> List.iter (fun line ->
                 incr lineno;
                 if !err = None && String.length line > 0 then
                   match parse_json line with
                   | Error m ->
                       err :=
                         Some (Printf.sprintf "%s:%d: %s" jsonl !lineno m)
                   | Ok (Obj fields) -> on_line fields
                   | Ok _ ->
                       err :=
                         Some
                           (Printf.sprintf "%s:%d: not a JSON object" jsonl
                              !lineno));
          (match !err with
          | Some _ -> ()
          | None ->
              close_open_spans "unfinished";
              Hashtbl.iter
                (fun tid () ->
                  raw
                    (Printf.sprintf
                       {|{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"thread %d"}}|}
                       tid tid))
                seen;
              raw
                {|{"name":"process_name","ph":"M","pid":1,"args":{"name":"simulated multicore"}}|});
          output_string oc "\n]}\n";
          close_out oc;
          match !err with
          | Some m ->
              (try Sys.remove out with Sys_error _ -> ());
              Error m
          | None ->
              Ok
                {
                  out_spans = !spans;
                  out_threads = Hashtbl.length seen;
                  in_events = !events;
                })

(* ---- validation -------------------------------------------------------- *)

let validate_file file =
  match
    try Ok (In_channel.with_open_text file In_channel.input_all)
    with Sys_error m -> Error m
  with
  | Error m -> Error m
  | Ok text -> (
      match parse_json text with
      | Error m -> Error (Printf.sprintf "%s: %s" file m)
      | Ok (Obj fields) -> (
          match field "traceEvents" fields with
          | Some (Arr evs) ->
              let spans_per_tid : (int, int) Hashtbl.t = Hashtbl.create 16 in
              let tracks : (int, unit) Hashtbl.t = Hashtbl.create 16 in
              let spans = ref 0 in
              List.iter
                (fun ev ->
                  match ev with
                  | Obj f -> (
                      match (fstr "ph" f, fint "tid" f) with
                      | Some "X", Some tid ->
                          incr spans;
                          Hashtbl.replace spans_per_tid tid
                            (1
                            + Option.value ~default:0
                                (Hashtbl.find_opt spans_per_tid tid))
                      | Some "M", Some tid
                        when fstr "name" f = Some "thread_name" ->
                          Hashtbl.replace tracks tid ()
                      | _ -> ())
                  | _ -> ())
                evs;
              if Hashtbl.length tracks = 0 then
                Error (file ^ ": no thread tracks")
              else begin
                let missing =
                  Hashtbl.fold
                    (fun tid () acc ->
                      if Hashtbl.mem spans_per_tid tid then acc else tid :: acc)
                    tracks []
                in
                match List.sort compare missing with
                | [] ->
                    Ok
                      {
                        out_spans = !spans;
                        out_threads = Hashtbl.length tracks;
                        in_events = List.length evs;
                      }
                | tid :: _ ->
                    Error
                      (Printf.sprintf
                         "%s: thread %d has no complete span" file tid)
              end
          | _ -> Error (file ^ ": no traceEvents array"))
      | Ok _ -> Error (file ^ ": not a JSON object"))
