(** Convert a [Trace] JSONL file into Chrome [trace_event] JSON that
    ui.perfetto.dev (or chrome://tracing) can open directly.

    Mapping (documented in DESIGN.md, "Observability"):

    - one track per logical thread ([pid] 1, [tid] = simulated tid, named
      via ["thread_name"] metadata events);
    - each [op_begin]/[op_end] pair becomes a complete slice
      (["ph":"X"]) labelled ["<kind>(<key>)"] with args [ok],
      [cas_failures], [helped];
    - [pwb]/[pfence]/[psync] and failed [cas] events become thread-scoped
      instants (["ph":"i"], scope ["t"]);
    - [crash], [round] and [note] events become global instants;
    - timestamps are virtual nanoseconds converted to the microseconds
      Perfetto expects.  Per-thread clocks restart at 0 on every
      campaign round, so each round is re-based at the maximum clock
      reached in the previous one; spans still open at a crash or round
      boundary are closed there and tagged [interrupted].

    The converter only needs the JSONL file, not the process that wrote
    it, so traces can be converted after the fact ([repro trace --from]). *)

type stats = {
  out_spans : int;  (** complete slices emitted *)
  out_threads : int;  (** thread tracks *)
  in_events : int;  (** JSONL lines consumed *)
}

val convert : jsonl:string -> out:string -> (stats, string) result
(** [convert ~jsonl ~out] reads [jsonl] and writes [out].  [Error] on
    unreadable input or a line that does not parse. *)

(** {1 Minimal JSON for validation}

    A tiny recursive-descent parser — just enough to re-read the emitted
    file and check it structurally, with no external dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result

val validate_file : string -> (stats, string) result
(** Parse [file] as [trace_event] JSON and check that it has a
    [traceEvents] array and that every thread track carries at least one
    complete ([ph = "X"]) span.  Returns the re-counted stats. *)
