let pp_figure ppf (f : Figures.figure) =
  Format.fprintf ppf "@.=== Figure %s — %s (%s) ===@." f.Figures.id
    f.Figures.title f.Figures.ylabel;
  let labels = List.map (fun s -> s.Figures.label) f.Figures.series in
  let width = List.fold_left (fun w l -> max w (String.length l)) 10 labels in
  Format.fprintf ppf "%8s" "threads";
  List.iter (fun l -> Format.fprintf ppf " %*s" width l) labels;
  Format.pp_print_newline ppf ();
  List.iter
    (fun n ->
      Format.fprintf ppf "%8d" n;
      List.iter
        (fun s ->
          match List.assoc_opt n s.Figures.values with
          | Some v -> Format.fprintf ppf " %*.3f" width v
          | None -> Format.fprintf ppf " %*s" width "-")
        f.Figures.series;
      Format.pp_print_newline ppf ())
    f.Figures.threads

let pp_classification ppf rows =
  Format.fprintf ppf "%-28s %-8s %s@." "site (code line)" "class" "impact";
  List.iter
    (fun (name, cat, impact) ->
      let cat_s = Format.asprintf "%a" Pstats.pp_category cat in
      Format.fprintf ppf "%-28s %-8s %5.1f%%@." name cat_s (100. *. impact))
    rows

let print_all cfg =
  let figs = Figures.all cfg in
  List.iter
    (fun f ->
      Format.eprintf "[figures] rendering %s...@." f.Figures.id;
      Format.printf "%a" pp_figure f)
    figs;
  List.iter
    (fun (factory, mix) ->
      Format.printf "@.--- pwb code-line classification: %s, %s ---@."
        factory.Set_intf.fname mix.Workload.name;
      pp_classification Format.std_formatter
        (Figures.classification cfg mix factory))
    [
      (Set_intf.tracking, Workload.read_intensive);
      (Set_intf.tracking, Workload.update_intensive);
      (Set_intf.capsules_opt, Workload.read_intensive);
      (Set_intf.capsules_opt, Workload.update_intensive);
    ]

let pp_explore ppf (s : Explore.stats) =
  Format.fprintf ppf "executions        %d@." s.Explore.executions;
  Format.fprintf ppf "failures          %d@." s.Explore.failures;
  Format.fprintf ppf "sched decisions   %d@." s.Explore.decision_points;
  Format.fprintf ppf "crash points      %d@." s.Explore.crash_points;
  Format.fprintf ppf "write-back alts   %d@." s.Explore.wb_choices;
  Format.fprintf ppf "pruned (preempt)  %d@." s.Explore.pruned;
  Format.fprintf ppf "coverage          %s@."
    (if s.Explore.complete then "complete (bounded tree exhausted)"
     else "INCOMPLETE (budget hit or stopped on failure)")

let explore_progress (s : Explore.stats) =
  Format.eprintf
    "[explore] %d execs, %d failures, %d sched points, %d crash points, %d \
     wb alts, %d pruned@."
    s.Explore.executions s.Explore.failures s.Explore.decision_points
    s.Explore.crash_points s.Explore.wb_choices s.Explore.pruned

(* The metrics report behind `repro stats`: latency table per op kind,
   top-N contended cache lines, recovery durations, counters. *)
let pp_metrics ?(top = 10) ppf () =
  Format.fprintf ppf "— operation latency (virtual ns) —@.";
  Format.fprintf ppf "%-16s %8s %10s %10s %10s %10s %10s@." "histogram" "count"
    "mean" "p50" "p90" "p99" "max";
  List.iter
    (fun (name, s) ->
      if s.Metrics.count > 0 then
        Format.fprintf ppf "%-16s %8d %10.1f %10.1f %10.1f %10.1f %10.1f@."
          name s.Metrics.count s.Metrics.mean s.Metrics.p50 s.Metrics.p90
          s.Metrics.p99 s.Metrics.max)
    (Metrics.histograms ());
  (match Metrics.contention_top top with
  | [] -> ()
  | lines ->
      Format.fprintf ppf "@.— contention: top %d cache lines —@." top;
      Format.fprintf ppf "%-32s %12s %14s@." "line" "cas failures"
        "invalidations";
      List.iter
        (fun c ->
          Format.fprintf ppf "%-32s %12d %14d@." c.Metrics.ct_line
            c.Metrics.ct_cas_failures c.Metrics.ct_invalidations)
        lines);
  (match Metrics.alloc_sites_top top with
  | [] -> ()
  | sites ->
      Format.fprintf ppf "@.— allocation: top %d sites —@." top;
      Format.fprintf ppf "%-28s %-16s %8s@." "heap" "site" "lines";
      List.iter
        (fun (s : Metrics.alloc_site) ->
          Format.fprintf ppf "%-28s %-16s %8d@." s.Metrics.as_heap
            s.Metrics.as_site s.Metrics.as_lines)
        sites);
  (match Metrics.heap_occupancy () with
  | [] -> ()
  | heaps ->
      Format.fprintf ppf "@.— heap occupancy (lines allocated) —@.";
      List.iter
        (fun (h, n) -> Format.fprintf ppf "%-28s %8d@." h n)
        heaps);
  (match Metrics.recovery_durations () with
  | [] -> ()
  | rounds ->
      Format.fprintf ppf "@.— recovery rounds —@.";
      Format.fprintf ppf "%8s %14s@." "round" "duration ns";
      List.iter
        (fun (r, d) -> Format.fprintf ppf "%8d %14.1f@." r d)
        rounds);
  (match Pmem.crash_reports () with
  | [] -> ()
  | reports ->
      Format.fprintf ppf "@.— write-backs at crashes —@.";
      Format.fprintf ppf "%6s %-28s %-10s %9s %8s@." "crash" "heap"
        "resolution" "persisted" "dropped";
      List.iteri
        (fun i (r : Pmem.crash_report) ->
          Format.fprintf ppf "%6d %-28s %-10s %9d %8d@." i r.Pmem.cr_heap
            r.Pmem.cr_resolution r.Pmem.cr_persisted r.Pmem.cr_dropped)
        reports);
  Format.fprintf ppf "@.— counters —@.";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-24s %d@." name v)
    (Metrics.counters ());
  if Metrics.spans_dropped () > 0 then
    Format.fprintf ppf "(span storage capped: %d spans dropped)@."
      (Metrics.spans_dropped ())

let pp_causal ppf (p : Causal.profile) =
  Format.fprintf ppf
    "=== causal profile: %s, %s, %d threads × %d ops (seed %d) ===@." p.algo
    p.mix p.threads p.ops_per_thread p.seed;
  Format.fprintf ppf
    "baseline: %.1f ns/op (%.3f Mops/s); persistence time %.0f ns@."
    p.Causal.baseline_ns_per_op p.Causal.baseline_mops
    p.Causal.persistence_time_ns;
  Format.fprintf ppf "factors swept: %s@.@."
    (String.concat ", "
       (List.map (Printf.sprintf "%gx") p.Causal.factors));
  Format.fprintf ppf "%4s %-10s %-26s %7s %6s %12s %10s %9s %4s@." "rank"
    "group" "target" "execs" "time%" "sens ns/op" "sens/exec" "headroom" "div";
  List.iteri
    (fun i (r : Causal.row) ->
      let pct v =
        if Float.is_nan v then "-" else Printf.sprintf "%.1f" (100. *. v)
      in
      let per_exec =
        if r.Causal.executions > 0 then
          Printf.sprintf "%.4f"
            (r.Causal.sensitivity /. float_of_int r.Causal.executions)
        else "-"
      in
      Format.fprintf ppf "%4d %-10s %-26s %7d %6s %12.2f %10s %9s %4d@."
        (i + 1) r.Causal.group r.Causal.label r.Causal.executions
        (pct r.Causal.time_share) r.Causal.sensitivity per_exec
        (pct r.Causal.headroom) r.Causal.divergences)
    p.Causal.rows;
  Format.fprintf ppf
    "@.(sensitivity: d(ns/op)/d(cost factor) under the replayed baseline \
     schedule; headroom: throughput gain with the target's cost at zero; \
     div > 0 marks reruns whose schedule diverged from the tape)@."

(* Shared with Causal.to_json in spirit; kept local because Report's JSON
   is a different document (metrics, not attribution). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let metrics_json ?(top = 10) () =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  let fl v = if Float.is_nan v then "null" else Printf.sprintf "%.6g" v in
  add "{\"histograms\":[";
  List.iteri
    (fun i (name, (s : Metrics.summary)) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"name\":\"%s\",\"count\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\
            \"p99\":%s,\"max\":%s}"
           (json_escape name) s.Metrics.count (fl s.Metrics.mean)
           (fl s.Metrics.p50) (fl s.Metrics.p90) (fl s.Metrics.p99)
           (fl s.Metrics.max)))
    (Metrics.histograms ());
  add "],\"contention\":[";
  List.iteri
    (fun i (c : Metrics.contention) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"line\":\"%s\",\"cas_failures\":%d,\"invalidations\":%d}"
           (json_escape c.Metrics.ct_line) c.Metrics.ct_cas_failures
           c.Metrics.ct_invalidations))
    (Metrics.contention_top top);
  add "],\"alloc_sites\":[";
  List.iteri
    (fun i (s : Metrics.alloc_site) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "{\"heap\":\"%s\",\"site\":\"%s\",\"lines\":%d}"
           (json_escape s.Metrics.as_heap) (json_escape s.Metrics.as_site)
           s.Metrics.as_lines))
    (Metrics.alloc_sites_top top);
  add "],\"heap_occupancy\":{";
  List.iteri
    (fun i (h, n) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\"%s\":%d" (json_escape h) n))
    (Metrics.heap_occupancy ());
  add "},\"recovery_rounds\":[";
  List.iteri
    (fun i (round, ns) ->
      if i > 0 then add ",";
      add (Printf.sprintf "{\"round\":%d,\"duration_ns\":%s}" round (fl ns)))
    (Metrics.recovery_durations ());
  add "],\"crash_writebacks\":[";
  List.iteri
    (fun i (r : Pmem.crash_report) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "{\"crash\":%d,\"heap\":\"%s\",\"scope\":\"%s\",\"resolution\":\"%s\",\"persisted\":%d,\"dropped\":%d}"
           i (json_escape r.Pmem.cr_heap)
           (match r.Pmem.cr_scope with `Machine -> "machine" | `Heap -> "heap")
           (json_escape r.Pmem.cr_resolution) r.Pmem.cr_persisted
           r.Pmem.cr_dropped))
    (Pmem.crash_reports ());
  add "],\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (Metrics.counters ());
  add "},";
  add (Printf.sprintf "\"spans_dropped\":%d}" (Metrics.spans_dropped ()));
  Buffer.contents buf

let figure_to_csv (f : Figures.figure) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "threads";
  List.iter
    (fun s ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.Figures.label)
    f.Figures.series;
  Buffer.add_char buf '\n';
  List.iter
    (fun n ->
      Buffer.add_string buf (string_of_int n);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          (* fixed %.3f so CSV output is byte-stable across environments
             (and matches the latency columns' precision) *)
          match List.assoc_opt n s.Figures.values with
          | Some v -> Buffer.add_string buf (Printf.sprintf "%.3f" v)
          | None -> ())
        f.Figures.series;
      Buffer.add_char buf '\n')
    f.Figures.threads;
  Buffer.contents buf

let write_csv_dir ~dir cfg =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun f ->
      let path = Filename.concat dir ("fig-" ^ f.Figures.id ^ ".csv") in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (figure_to_csv f));
      Format.eprintf "[figures] wrote %s@." path)
    (Figures.all cfg)
