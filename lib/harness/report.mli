(** ASCII rendering of regenerated figures: one table per figure (rows =
    thread counts, columns = series), in the same terms the paper's plots
    use. *)

val pp_figure : Format.formatter -> Figures.figure -> unit

val pp_classification :
  Format.formatter -> (string * Pstats.category * float) list -> unit
(** The measured per-code-line impacts behind the categorization. *)

val print_all : Figures.config -> unit
(** Regenerate and print every figure, with progress on stderr. *)

val pp_explore : Format.formatter -> Explore.stats -> unit
(** Coverage summary of a bounded exploration run. *)

val explore_progress : Explore.stats -> unit
(** One-line progress report on stderr, for [Explore.run ?progress]. *)

val pp_metrics : ?top:int -> Format.formatter -> unit -> unit
(** The metrics report behind [repro stats]: per-histogram latency
    summaries (count, mean, p50/p90/p99/max in virtual ns), the [top]
    (default 10) most contended cache lines, per-round recovery
    durations, the per-crash write-back fate counts (persisted vs
    dropped, from [Pmem.crash_reports]) and the counter registry —
    everything recorded since the last [Metrics.reset] /
    [Pmem.reset_pending]. *)

val pp_causal : Format.formatter -> Causal.profile -> unit
(** The ranked attribution table behind [repro causal]: one row per
    target (site / category / mechanism) with baseline executions, share
    of persistence time, sensitivity d(ns/op)/d(factor), the
    cost-at-zero headroom, and any schedule divergences. *)

val metrics_json : ?top:int -> unit -> string
(** The metrics report of {!pp_metrics} as a single JSON object
    (histograms, top-[top] contended lines, recovery rounds, per-crash
    write-back fates, counters) — the machine-readable output of
    [repro stats --json]. *)

val figure_to_csv : Figures.figure -> string
(** One CSV: a [threads] column followed by one column per series.
    Values use fixed [%.3f] formatting so output is byte-stable. *)

val write_csv_dir : dir:string -> Figures.config -> unit
(** Regenerate every figure and write [fig-<id>.csv] files into [dir]
    (created if missing), ready for gnuplot/python plotting. *)
