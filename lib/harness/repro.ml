(* Replay files for failing crash campaigns.

   A repro captures everything a campaign run depends on: the workload
   configuration, the campaign seed, and — per simulator round — the
   crash point used and the recorded scheduling decisions.  Feeding the
   rounds back through [Crashes.run_once ~script] replays the failure
   bit-for-bit; the format is line-based and documented in DESIGN.md
   ("Replay-file format"). *)

(* How the crash ending this round resolved outstanding write-backs.
   [`Rng] (the default, and the only choice harness-random campaigns
   produce) means the seeded harness rng drew the surviving subset —
   deterministic under replay because the draw stream is aligned.  The
   explicit choices are produced by the exploration harness and replayed
   verbatim through [Pmem.crash ~resolution]. *)
type wb = [ `Rng | `Drop | `All | `Prefix of int ]

type round = {
  kind : [ `Work | `Recover ];
  crash_at : int;  (* the crash_at parameter of that Sim.run; -1 = none *)
  schedule : int array;  (* tid picked at each scheduling decision *)
  wb : wb;  (* write-back resolution of the crash ending this round *)
}

type t = {
  algo : string;
  threads : int;
  ops_per_thread : int;
  find_pct : int;
  key_range : int;
  prefill : int;
  max_crashes : int;
  seed : int;
  error : string;
  rounds : round list;
}

let magic = "tracking-nvm-repro v1"

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let kind_name = function `Work -> "work" | `Recover -> "recover"

let schedule_string sched =
  if Array.length sched = 0 then "-"
  else
    String.concat ","
      (Array.to_list (Array.map string_of_int sched))

let wb_string = function
  | `Rng -> ""
  | `Drop -> " drop"
  | `All -> " all"
  | `Prefix k -> Printf.sprintf " prefix:%d" k

let pp ppf r =
  Format.fprintf ppf "%s@." magic;
  Format.fprintf ppf "algo %s@." r.algo;
  Format.fprintf ppf "threads %d@." r.threads;
  Format.fprintf ppf "ops-per-thread %d@." r.ops_per_thread;
  Format.fprintf ppf "find-pct %d@." r.find_pct;
  Format.fprintf ppf "key-range %d@." r.key_range;
  Format.fprintf ppf "prefill %d@." r.prefill;
  Format.fprintf ppf "max-crashes %d@." r.max_crashes;
  Format.fprintf ppf "seed %d@." r.seed;
  Format.fprintf ppf "error %s@." (one_line r.error);
  List.iter
    (fun rd ->
      Format.fprintf ppf "round %s %d %s%s@." (kind_name rd.kind) rd.crash_at
        (schedule_string rd.schedule) (wb_string rd.wb))
    r.rounds

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      pp ppf r;
      Format.pp_print_flush ppf ())

(* ---- parsing ---------------------------------------------------------- *)

let parse_schedule = function
  | "-" | "" -> Ok [||]
  | s -> (
      let parts = String.split_on_char ',' s in
      try Ok (Array.of_list (List.map int_of_string parts))
      with Failure _ -> Error (Printf.sprintf "bad schedule %S" s))

let parse_wb = function
  | "drop" -> Ok `Drop
  | "all" -> Ok `All
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "prefix" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some k when k >= 1 -> Ok (`Prefix k)
          | _ -> Error (Printf.sprintf "bad write-back resolution %S" s))
      | _ -> Error (Printf.sprintf "bad write-back resolution %S" s))

let parse_round line =
  match String.split_on_char ' ' line with
  | ([ kind; crash_at; sched ] | [ kind; crash_at; sched; _ ]) as fields -> (
      let kind =
        match kind with
        | "work" -> Ok `Work
        | "recover" -> Ok `Recover
        | k -> Error (Printf.sprintf "bad round kind %S" k)
      in
      let wb =
        match fields with
        | [ _; _; _; w ] -> parse_wb w
        | _ -> Ok `Rng
      in
      match (kind, int_of_string_opt crash_at, parse_schedule sched, wb) with
      | Ok kind, Some crash_at, Ok schedule, Ok wb ->
          Ok { kind; crash_at; schedule; wb }
      | (Error _ as e), _, _, _ -> e
      | _, None, _, _ -> Error (Printf.sprintf "bad crash point %S" crash_at)
      | _, _, (Error _ as e), _ -> e
      | _, _, _, (Error _ as e) -> e)
  | _ -> Error (Printf.sprintf "bad round line %S" line)

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | [] -> Error "empty repro file"
  | first :: _ when first <> magic ->
      Error (Printf.sprintf "not a repro file (expected %S)" magic)
  | _ :: lines -> (
      let r =
        ref
          {
            algo = "";
            threads = 0;
            ops_per_thread = 0;
            find_pct = 0;
            key_range = 0;
            prefill = 0;
            max_crashes = 0;
            seed = 0;
            error = "";
            rounds = [];
          }
      in
      let err = ref None in
      let fail msg = if !err = None then err := Some msg in
      let seen = ref [] in
      (* a configuration key repeated in the file is corruption, not a
         harmless override: reject it rather than silently last-wins *)
      let once key =
        if List.mem key !seen then fail (Printf.sprintf "duplicate field %S" key)
        else seen := key :: !seen
      in
      let int_field key set v =
        once key;
        match int_of_string_opt v with
        | Some n -> r := set !r n
        | None -> fail (Printf.sprintf "bad integer %S" v)
      in
      (* rounds accumulate newest-first and reverse once at the end: the
         old [rounds @ [rd]] append was quadratic in the round count *)
      let rounds_rev = ref [] in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" then
            let key, value =
              match String.index_opt line ' ' with
              | None -> (line, "")
              | Some i ->
                  ( String.sub line 0 i,
                    String.sub line (i + 1) (String.length line - i - 1) )
            in
            match key with
            | "algo" ->
                once key;
                r := { !r with algo = value }
            | "threads" -> int_field key (fun r n -> { r with threads = n }) value
            | "ops-per-thread" ->
                int_field key (fun r n -> { r with ops_per_thread = n }) value
            | "find-pct" ->
                int_field key (fun r n -> { r with find_pct = n }) value
            | "key-range" ->
                int_field key (fun r n -> { r with key_range = n }) value
            | "prefill" -> int_field key (fun r n -> { r with prefill = n }) value
            | "max-crashes" ->
                int_field key (fun r n -> { r with max_crashes = n }) value
            | "seed" -> int_field key (fun r n -> { r with seed = n }) value
            | "error" ->
                once key;
                r := { !r with error = value }
            | "round" -> (
                match parse_round value with
                | Ok rd -> rounds_rev := rd :: !rounds_rev
                | Error e -> fail e)
            | k -> fail (Printf.sprintf "unknown field %S" k))
        lines;
      match !err with
      | Some e -> Error e
      | None ->
          let r = { !r with rounds = List.rev !rounds_rev } in
          (* A config a campaign could never have run is a vacuous repro:
             replaying it "passes" while reproducing nothing.  Reject it
             here so --replay fails loudly on corrupt or truncated files. *)
          if r.algo = "" then Error "missing algo field"
          else if r.threads <= 0 then Error "missing/invalid threads field"
          else if r.ops_per_thread <= 0 then
            Error "missing/invalid ops-per-thread field"
          else if r.key_range <= 0 then Error "missing/invalid key-range field"
          else if r.max_crashes <= 0 then
            Error "missing/invalid max-crashes field"
          else if r.prefill < 0 then Error "invalid prefill field"
          else if r.find_pct < 0 || r.find_pct > 100 then
            Error "invalid find-pct field"
          else Ok r)
