(** Replay files for failing crash campaigns.

    A repro captures the workload configuration, the campaign seed, the
    failure message, and — per simulator round — the crash point used and
    the recorded schedule (the tid picked at every scheduling decision).
    [Crashes.replay] feeds the rounds back through the simulator's
    schedule-replay support, reproducing the failure bit-for-bit; the
    line-based file format is documented in DESIGN.md. *)

type wb = [ `Rng | `Drop | `All | `Prefix of int ]
(** How the crash ending a round resolved outstanding write-backs.
    [`Rng]: the seeded harness rng drew the surviving subset (the normal
    campaign path — deterministic under replay because the draw stream is
    aligned).  The explicit choices come from the exploration harness and
    replay verbatim through [Pmem.crash ~resolution]. *)

type round = {
  kind : [ `Work | `Recover ];
  crash_at : int;
      (** the [crash_at] parameter that round's [Sim.run] used; -1 = none *)
  schedule : int array;  (** tid picked at each scheduling decision *)
  wb : wb;  (** write-back resolution of the crash ending this round *)
}

type t = {
  algo : string;  (** factory name, resolved via {!Set_intf.by_name} *)
  threads : int;
  ops_per_thread : int;
  find_pct : int;
  key_range : int;
  prefill : int;
  max_crashes : int;
  seed : int;
  error : string;  (** the failure the file reproduces *)
  rounds : round list;
}

val save : string -> t -> unit

val load : string -> (t, string) result
(** Parse and {e validate}: files with unknown or duplicate fields, bad
    round lines, or a configuration no campaign could have run
    (non-positive [threads]/[ops-per-thread]/[key-range]/[max-crashes],
    negative [prefill], out-of-range [find-pct]) are rejected — a vacuous
    config would "replay" successfully while reproducing nothing. *)

val pp : Format.formatter -> t -> unit
