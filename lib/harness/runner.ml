type point = {
  algo : string;
  threads : int;
  mix : string;
  throughput_mops : float;
  ops : int;
  pwbs_per_op : float;
  psyncs_per_op : float;
  pfences_per_op : float;
  low_frac : float;
  medium_frac : float;
  high_frac : float;
  lat_p50_ns : float;
  lat_p90_ns : float;
  lat_p99_ns : float;
  lat_max_ns : float;
}

let measure ?(duration_ns = 400_000.) ?(seed = 1) ?(prepare = fun () -> ())
    factory ~threads workload =
  Pmem.reset_pending ();
  let rng = Random.State.make [| seed; 0xBE7C |] in
  let heap = Pmem.heap ~track_for_crash:false ~name:factory.Set_intf.fname () in
  let algo = factory.Set_intf.make heap ~threads in
  Workload.prefill rng workload algo;
  Pmem.reset_pending ();
  prepare ();
  Pstats.reset ();
  if Metrics.active () then Metrics.reset ();
  let ops = Array.make threads 0 in
  let body tid (_ : int) =
    let trng = Random.State.make [| seed; tid; 0x9E13 |] in
    let rec go () =
      if Sim.now () < duration_ns then begin
        let op = Workload.gen_op trng workload in
        Metrics.op_begin ~kind:(Metrics.kind_of_op op)
          ~key:(Set_intf.op_key op);
        let ok = Set_intf.apply algo op in
        Metrics.op_end ~ok;
        ops.(tid) <- ops.(tid) + 1;
        go ()
      end
    in
    go ()
  in
  (match Sim.run ~policy:`Perf ~seed (Array.init threads (fun i -> body i)) with
  | Sim.All_done -> ()
  | Sim.Crashed_at step ->
      failwith
        (Printf.sprintf
           "Runner: throughput run crashed at step %d (seed %d) — \
            throughput runs configure no crash point, so no workload body \
            may call Sim.request_crash"
           step seed));
  let total_ops = Array.fold_left ( + ) 0 ops in
  let lat = if Metrics.active () then Metrics.hist_summary "op" else None in
  let t = Pstats.totals () in
  let per x = if total_ops = 0 then 0. else float_of_int x /. float_of_int total_ops in
  let frac x =
    if t.Pstats.pwbs = 0 then 0. else float_of_int x /. float_of_int t.Pstats.pwbs
  in
  {
    algo = algo.Set_intf.name;
    threads;
    mix = workload.Workload.mix.Workload.name;
    (* ops completed during [duration_ns] of virtual time on all threads:
       ops / ns * 1000 = Mops/s *)
    throughput_mops = float_of_int total_ops /. duration_ns *. 1000.;
    ops = total_ops;
    pwbs_per_op = per t.Pstats.pwbs;
    psyncs_per_op = per t.Pstats.psyncs;
    pfences_per_op = per t.Pstats.pfences;
    low_frac = frac t.Pstats.low;
    medium_frac = frac t.Pstats.medium;
    high_frac = frac t.Pstats.high;
    lat_p50_ns = (match lat with Some s -> s.Metrics.p50 | None -> 0.);
    lat_p90_ns = (match lat with Some s -> s.Metrics.p90 | None -> 0.);
    lat_p99_ns = (match lat with Some s -> s.Metrics.p99 | None -> 0.);
    lat_max_ns = (match lat with Some s -> s.Metrics.max | None -> 0.);
  }

let pp_point ppf p =
  Format.fprintf ppf
    "%-13s t=%-3d %-17s %7.3f Mops/s  ops=%-7d pwb/op=%5.1f psync/op=%4.1f \
     pfence/op=%4.1f  L/M/H=%.2f/%.2f/%.2f  lat[p50/p99/max]=%.3f/%.3f/%.3f"
    p.algo p.threads p.mix p.throughput_mops p.ops p.pwbs_per_op
    p.psyncs_per_op p.pfences_per_op p.low_frac p.medium_frac p.high_frac
    p.lat_p50_ns p.lat_p99_ns p.lat_max_ns
