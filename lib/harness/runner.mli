(** Simulated-throughput runner: executes a seeded workload for a fixed
    virtual duration on N logical threads under the performance scheduler
    and reports throughput plus persistence-instruction statistics —
    the measurement core behind every figure of §5. *)

type point = {
  algo : string;
  threads : int;
  mix : string;
  throughput_mops : float;  (** completed operations per virtual µs ×1 *)
  ops : int;
  pwbs_per_op : float;
  psyncs_per_op : float;  (** psyncs only (pfences were silently included
      here once; they are now reported separately) *)
  pfences_per_op : float;
  low_frac : float;  (** fraction of executed pwbs in each impact class *)
  medium_frac : float;
  high_frac : float;
  lat_p50_ns : float;
      (** per-operation latency summary (virtual ns) when [Metrics] was
          active during the run; all 0 otherwise *)
  lat_p90_ns : float;
  lat_p99_ns : float;
  lat_max_ns : float;
}

val measure :
  ?duration_ns:float ->
  ?seed:int ->
  ?prepare:(unit -> unit) ->
  Set_intf.factory ->
  threads:int ->
  Workload.config ->
  point
(** [prepare] runs after instance creation and prefill but before the
    measured run (and before statistics are reset) — the hook the figure
    generators use to disable persistence-instruction sites. *)

val pp_point : Format.formatter -> point -> unit
