type op = Ins of int | Del of int | Fnd of int

let op_key = function Ins k | Del k | Fnd k -> k
let is_update = function Ins _ | Del _ -> true | Fnd _ -> false

let pp_op ppf = function
  | Ins k -> Format.fprintf ppf "insert(%d)" k
  | Del k -> Format.fprintf ppf "delete(%d)" k
  | Fnd k -> Format.fprintf ppf "find(%d)" k

(* The system's durable invocation bookkeeping is framework-shaped:
   Tracking's recovery re-runs the operation itself, while Memento needs
   the invocation timestamp the system captured before the op began.
   [note_begin] produces the framework's own token at the moment the
   system durably notes the pending operation; [recover] consumes it.
   The type is extensible so further frameworks slot in without touching
   the harness. *)
type pending = ..
type pending += Op of op
type pending += Mmt of { mop : op; mseq : int }

let op_only name recover_op = function
  | Op op -> recover_op op
  | _ ->
      invalid_arg
        (name ^ ": foreign pending token (this framework expects its own \
                 note_begin token)")

(* What the structure's operations mean, which decides the oracle a shard
   backend is checked against: [`Set] for per-key membership semantics
   (Oracle.check), [`Queue] for FIFO topic semantics where [Ins k]
   enqueues, [Del _] consumes the head and [Fnd k] scans for membership
   (Oracle.check_queue). *)
type model = Set_model | Queue_model

type t = {
  name : string;
  model : model;
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
  note_begin : op -> pending;
  recover : pending -> bool;
  recover_structure : unit -> unit;
  check : unit -> (unit, string) result;
  contents : unit -> int list;
  space : unit -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list;
  supports_crash : bool;
}

let apply t = function Ins k -> t.insert k | Del k -> t.delete k | Fnd k -> t.find k

type factory = { fname : string; make : Pmem.heap -> threads:int -> t }

let tracking =
  {
    fname = "tracking";
    make =
      (fun heap ~threads ->
        let module L = Rlist.Int in
        let l = L.create heap ~threads in
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = "tracking";
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          note_begin = (fun op -> Op op);
          recover = op_only "tracking" (fun op -> L.recover l (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          space = (fun () -> L.space l);
          supports_crash = true;
          model = Set_model;
        });
  }

let tracking_bst =
  {
    fname = "tracking-bst";
    make =
      (fun heap ~threads ->
        let module T = Rbst.Int in
        let t = T.create heap ~threads in
        let conv = function
          | Ins k -> T.Insert k
          | Del k -> T.Delete k
          | Fnd k -> T.Find k
        in
        {
          name = "tracking-bst";
          insert = T.insert t;
          delete = T.delete t;
          find = T.find t;
          note_begin = (fun op -> Op op);
          recover = op_only "tracking-bst" (fun op -> T.recover t (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> T.check_invariants t);
          contents = (fun () -> T.to_list t);
          space = (fun () -> T.space t);
          supports_crash = true;
          model = Set_model;
        });
  }

let tracking_no_ro_opt =
  {
    fname = "tracking-noopt";
    make =
      (fun heap ~threads ->
        let module L = Rlist.Int in
        let l =
          L.create ~prefix:"rlist-noopt" ~read_only_opt:false heap ~threads
        in
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = "tracking-noopt";
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          note_begin = (fun op -> Op op);
          recover = op_only "tracking-noopt" (fun op -> L.recover l (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          space = (fun () -> L.space l);
          supports_crash = true;
          model = Set_model;
        });
  }

(* Negative control for the crash harness: Tracking's list with the
   new-node pwb elided (the site is disabled right after creation, inside
   the campaign's enable-all window).  A freshly allocated node can then
   be linked in but never flushed, so a crash leaves reachable poisoned
   data — campaigns MUST fail on it, which exercises the repro/replay/
   shrink pipeline end to end. *)
let tracking_broken =
  {
    fname = "tracking-broken";
    make =
      (fun heap ~threads ->
        let module L = Rlist.Int in
        let l = L.create ~prefix:"rlist-broken" heap ~threads in
        (match Pstats.find "rlist-broken.new.pwb" with
        | Some s -> Pstats.set_enabled s false
        | None -> ());
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = "tracking-broken";
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          note_begin = (fun op -> Op op);
          recover = op_only "tracking-broken" (fun op -> L.recover l (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          space = (fun () -> L.space l);
          supports_crash = true;
          model = Set_model;
        });
  }

let tracking_hash =
  {
    fname = "tracking-hash";
    make =
      (fun heap ~threads ->
        let module H = Rhash.Int in
        let h = H.create ~buckets:16 heap ~threads in
        let conv = function
          | Ins k -> H.Insert k
          | Del k -> H.Delete k
          | Fnd k -> H.Find k
        in
        {
          name = "tracking-hash";
          insert = H.insert h;
          delete = H.delete h;
          find = H.find h;
          note_begin = (fun op -> Op op);
          recover = op_only "tracking-hash" (fun op -> H.recover h (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> H.check_invariants h);
          contents = (fun () -> List.sort compare (H.to_list h));
          space = (fun () -> H.space h);
          supports_crash = true;
          model = Set_model;
        });
  }

let capsules_factory name variant =
  {
    fname = name;
    make =
      (fun heap ~threads ->
        let c = Capsules.create ~variant heap ~threads in
        let conv = function
          | Ins k -> Capsules.Ins k
          | Del k -> Capsules.Del k
          | Fnd k -> Capsules.Fnd k
        in
        {
          name;
          insert = Capsules.insert c;
          delete = Capsules.delete c;
          find = Capsules.find c;
          note_begin = (fun op -> Op op);
          recover = op_only name (fun op -> Capsules.recover c (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> Capsules.check_invariants c);
          contents = (fun () -> Capsules.to_list c);
          space = (fun () -> Capsules.space c);
          supports_crash = true;
          model = Set_model;
        });
  }

let capsules = capsules_factory "capsules" `General
let capsules_opt = capsules_factory "capsules-opt" `Opt

let romulus =
  {
    fname = "romulus";
    make =
      (fun heap ~threads ->
        let r = Romulus.create heap ~threads in
        let conv = function
          | Ins k -> Romulus.Ins k
          | Del k -> Romulus.Del k
          | Fnd k -> Romulus.Fnd k
        in
        {
          name = "romulus";
          insert = Romulus.insert r;
          delete = Romulus.delete r;
          find = Romulus.find r;
          note_begin = (fun op -> Op op);
          recover = op_only "romulus" (fun op -> Romulus.recover r (conv op));
          recover_structure = (fun () -> Romulus.recover_structure r);
          check = (fun () -> Romulus.check_invariants r);
          contents = (fun () -> Romulus.to_list r);
          space = (fun () -> Romulus.space r);
          supports_crash = true;
          model = Set_model;
        });
  }

let redo =
  {
    fname = "redo-opt";
    make =
      (fun heap ~threads ->
        let r = Redo.create heap ~threads in
        let conv = function
          | Ins k -> Redo.Ins k
          | Del k -> Redo.Del k
          | Fnd k -> Redo.Fnd k
        in
        {
          name = "redo-opt";
          insert = Redo.insert r;
          delete = Redo.delete r;
          find = Redo.find r;
          note_begin = (fun op -> Op op);
          recover = op_only "redo-opt" (fun op -> Redo.recover r (conv op));
          recover_structure = (fun () -> Redo.recover_structure r);
          check = (fun () -> Redo.check_invariants r);
          contents = (fun () -> Redo.to_list r);
          space = (fun () -> Redo.space r);
          supports_crash = true;
          model = Set_model;
        });
  }

let harris_volatile =
  {
    fname = "harris";
    make =
      (fun heap ~threads:_ ->
        let l = Harris.create heap in
        {
          name = "harris";
          insert = Harris.insert l;
          delete = Harris.delete l;
          find = Harris.find l;
          note_begin = (fun op -> Op op);
          recover =
            (fun _ -> invalid_arg "harris: volatile list cannot recover");
          recover_structure = (fun () -> ());
          check = (fun () -> Harris.check_invariants l);
          contents = (fun () -> Harris.to_list l);
          space = (fun () -> Harris.space l);
          supports_crash = false;
          model = Set_model;
        });
  }

(* ---- the Memento framework (lib/memento) ------------------------------- *)

(* Memento's pending token is the invocation timestamp captured before
   the operation starts: recovery replays the crashed invocation under
   that timestamp, so its checkpoints and detectable-CAS outcomes
   short-circuit instead of re-executing. *)

let memento_list_factory fname ~prefix ~disable_site =
  {
    fname;
    make =
      (fun heap ~threads ->
        let module L = Mlist.Int in
        let l = L.create ~prefix heap ~threads in
        (match disable_site with
        | None -> ()
        | Some site -> (
            match Pstats.find site with
            | Some s -> Pstats.set_enabled s false
            | None -> ()));
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = fname;
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          note_begin = (fun op -> Mmt { mop = op; mseq = L.next_invocation l });
          recover =
            (function
            | Mmt { mop; mseq } -> L.recover l ~mseq (conv mop)
            | _ ->
                invalid_arg
                  (fname
                 ^ ": foreign pending token (expects its note_begin \
                    timestamp)"));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          space = (fun () -> L.space l);
          supports_crash = true;
          model = Set_model;
        });
  }

let memento_list =
  memento_list_factory "memento-list" ~prefix:"mlist" ~disable_site:None

(* Negative control: List-mmt with the checkpoint persist elided.  The
   detectable CAS then confirms (durably untags) a success whose result
   checkpoint never reaches NVM: a crash in that window leaves the
   insert's effect durable with no durable evidence, so the replay
   returns the wrong answer and campaigns MUST flag an oracle
   violation — the Memento mirror of [tracking_broken]. *)
let memento_broken =
  memento_list_factory "memento-broken" ~prefix:"mmt-broken"
    ~disable_site:(Some "mmt-broken.cp.pwb")

let memento_comb =
  {
    fname = "memento-comb";
    make =
      (fun heap ~threads ->
        let module C = Mcomb.Int in
        let c = C.create heap ~threads in
        let conv = function
          | Ins k -> C.Insert k
          | Del k -> C.Delete k
          | Fnd k -> C.Find k
        in
        {
          name = "memento-comb";
          insert = C.insert c;
          delete = C.delete c;
          find = C.find c;
          note_begin = (fun op -> Mmt { mop = op; mseq = C.next_invocation c });
          recover =
            (function
            | Mmt { mop; mseq } -> C.recover c ~mseq (conv mop)
            | _ ->
                invalid_arg
                  "memento-comb: foreign pending token (expects its \
                   note_begin timestamp)");
          recover_structure = (fun () -> ());
          check = (fun () -> C.check_invariants c);
          contents = (fun () -> C.to_list c);
          space = (fun () -> C.space c);
          supports_crash = true;
          model = Set_model;
        });
  }

(* ---- queue-backed topic backend (elastic store, part c) ---------------- *)

(* The recoverable Michael–Scott queue serving as a store shard: the
   shard becomes a FIFO topic partition.  [Ins k] publishes (enqueue,
   always succeeds), [Del _] consumes the head ([true] iff the topic was
   non-empty), [Fnd k] is a volatile membership scan.  Checked against
   the order-sensitive {!Oracle.check_queue} model — sound because a
   shard's single server fiber serializes the topic's operations. *)
let tracking_topic =
  {
    fname = "tracking-topic";
    make =
      (fun heap ~threads ->
        let q : int Rqueue.t = Rqueue.create ~prefix:"rtopic" heap ~threads in
        let conv = function
          | Ins k -> Rqueue.Enqueue k
          | Del _ -> Rqueue.Dequeue
          | Fnd _ -> invalid_arg "tracking-topic: find has no queue pending"
        in
        let run op =
          match op with
          | Fnd k -> List.mem k (Rqueue.to_list q)
          | Ins _ | Del _ -> (
              match Rqueue.apply q (conv op) with
              | Some _ -> true  (* dequeue consumed a value *)
              | None -> (
                  match op with
                  | Ins _ -> true  (* enqueues always succeed *)
                  | _ -> false  (* dequeue of an empty topic *)))
        in
        {
          name = "tracking-topic";
          model = Queue_model;
          insert = (fun k -> run (Ins k));
          delete = (fun k -> run (Del k));
          find = (fun k -> run (Fnd k));
          note_begin = (fun op -> Op op);
          recover =
            op_only "tracking-topic" (fun op ->
                match op with
                | Fnd k -> List.mem k (Rqueue.to_list q)
                | Ins k -> (
                    match Rqueue.recover q (Rqueue.Enqueue k) with
                    | _ -> true)
                | Del _ -> Rqueue.recover q Rqueue.Dequeue <> None);
          recover_structure = (fun () -> ());
          check = (fun () -> Rqueue.check_invariants q);
          contents = (fun () -> Rqueue.to_list q);
          space = (fun () -> Rqueue.space q);
          supports_crash = true;
        });
  }

let all =
  [
    tracking;
    capsules;
    capsules_opt;
    romulus;
    redo;
    harris_volatile;
    tracking_bst;
    tracking_no_ro_opt;
    tracking_hash;
    tracking_topic;
    tracking_broken;
    memento_list;
    memento_comb;
    memento_broken;
  ]

let names () = List.map (fun f -> f.fname) all

let by_name n =
  match List.find_opt (fun f -> String.equal f.fname n) all with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %S; valid names: %s" n
           (String.concat ", " (names ())))
