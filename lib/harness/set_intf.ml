type op = Ins of int | Del of int | Fnd of int

let op_key = function Ins k | Del k | Fnd k -> k

let pp_op ppf = function
  | Ins k -> Format.fprintf ppf "insert(%d)" k
  | Del k -> Format.fprintf ppf "delete(%d)" k
  | Fnd k -> Format.fprintf ppf "find(%d)" k

type t = {
  name : string;
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
  recover : op -> bool;
  recover_structure : unit -> unit;
  check : unit -> (unit, string) result;
  contents : unit -> int list;
  supports_crash : bool;
}

let apply t = function Ins k -> t.insert k | Del k -> t.delete k | Fnd k -> t.find k

type factory = { fname : string; make : Pmem.heap -> threads:int -> t }

let tracking =
  {
    fname = "tracking";
    make =
      (fun heap ~threads ->
        let module L = Rlist.Int in
        let l = L.create heap ~threads in
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = "tracking";
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          recover = (fun op -> L.recover l (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          supports_crash = true;
        });
  }

let tracking_bst =
  {
    fname = "tracking-bst";
    make =
      (fun heap ~threads ->
        let module T = Rbst.Int in
        let t = T.create heap ~threads in
        let conv = function
          | Ins k -> T.Insert k
          | Del k -> T.Delete k
          | Fnd k -> T.Find k
        in
        {
          name = "tracking-bst";
          insert = T.insert t;
          delete = T.delete t;
          find = T.find t;
          recover = (fun op -> T.recover t (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> T.check_invariants t);
          contents = (fun () -> T.to_list t);
          supports_crash = true;
        });
  }

let tracking_no_ro_opt =
  {
    fname = "tracking-noopt";
    make =
      (fun heap ~threads ->
        let module L = Rlist.Int in
        let l =
          L.create ~prefix:"rlist-noopt" ~read_only_opt:false heap ~threads
        in
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = "tracking-noopt";
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          recover = (fun op -> L.recover l (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          supports_crash = true;
        });
  }

(* Negative control for the crash harness: Tracking's list with the
   new-node pwb elided (the site is disabled right after creation, inside
   the campaign's enable-all window).  A freshly allocated node can then
   be linked in but never flushed, so a crash leaves reachable poisoned
   data — campaigns MUST fail on it, which exercises the repro/replay/
   shrink pipeline end to end. *)
let tracking_broken =
  {
    fname = "tracking-broken";
    make =
      (fun heap ~threads ->
        let module L = Rlist.Int in
        let l = L.create ~prefix:"rlist-broken" heap ~threads in
        (match Pstats.find "rlist-broken.new.pwb" with
        | Some s -> Pstats.set_enabled s false
        | None -> ());
        let conv = function
          | Ins k -> L.Insert k
          | Del k -> L.Delete k
          | Fnd k -> L.Find k
        in
        {
          name = "tracking-broken";
          insert = L.insert l;
          delete = L.delete l;
          find = L.find l;
          recover = (fun op -> L.recover l (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> L.check_invariants l);
          contents = (fun () -> L.to_list l);
          supports_crash = true;
        });
  }

let tracking_hash =
  {
    fname = "tracking-hash";
    make =
      (fun heap ~threads ->
        let module H = Rhash.Int in
        let h = H.create ~buckets:16 heap ~threads in
        let conv = function
          | Ins k -> H.Insert k
          | Del k -> H.Delete k
          | Fnd k -> H.Find k
        in
        {
          name = "tracking-hash";
          insert = H.insert h;
          delete = H.delete h;
          find = H.find h;
          recover = (fun op -> H.recover h (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> H.check_invariants h);
          contents = (fun () -> List.sort compare (H.to_list h));
          supports_crash = true;
        });
  }

let capsules_factory name variant =
  {
    fname = name;
    make =
      (fun heap ~threads ->
        let c = Capsules.create ~variant heap ~threads in
        let conv = function
          | Ins k -> Capsules.Ins k
          | Del k -> Capsules.Del k
          | Fnd k -> Capsules.Fnd k
        in
        {
          name;
          insert = Capsules.insert c;
          delete = Capsules.delete c;
          find = Capsules.find c;
          recover = (fun op -> Capsules.recover c (conv op));
          recover_structure = (fun () -> ());
          check = (fun () -> Capsules.check_invariants c);
          contents = (fun () -> Capsules.to_list c);
          supports_crash = true;
        });
  }

let capsules = capsules_factory "capsules" `General
let capsules_opt = capsules_factory "capsules-opt" `Opt

let romulus =
  {
    fname = "romulus";
    make =
      (fun heap ~threads ->
        let r = Romulus.create heap ~threads in
        let conv = function
          | Ins k -> Romulus.Ins k
          | Del k -> Romulus.Del k
          | Fnd k -> Romulus.Fnd k
        in
        {
          name = "romulus";
          insert = Romulus.insert r;
          delete = Romulus.delete r;
          find = Romulus.find r;
          recover = (fun op -> Romulus.recover r (conv op));
          recover_structure = (fun () -> Romulus.recover_structure r);
          check = (fun () -> Romulus.check_invariants r);
          contents = (fun () -> Romulus.to_list r);
          supports_crash = true;
        });
  }

let redo =
  {
    fname = "redo-opt";
    make =
      (fun heap ~threads ->
        let r = Redo.create heap ~threads in
        let conv = function
          | Ins k -> Redo.Ins k
          | Del k -> Redo.Del k
          | Fnd k -> Redo.Fnd k
        in
        {
          name = "redo-opt";
          insert = Redo.insert r;
          delete = Redo.delete r;
          find = Redo.find r;
          recover = (fun op -> Redo.recover r (conv op));
          recover_structure = (fun () -> Redo.recover_structure r);
          check = (fun () -> Redo.check_invariants r);
          contents = (fun () -> Redo.to_list r);
          supports_crash = true;
        });
  }

let harris_volatile =
  {
    fname = "harris";
    make =
      (fun heap ~threads:_ ->
        let l = Harris.create heap in
        {
          name = "harris";
          insert = Harris.insert l;
          delete = Harris.delete l;
          find = Harris.find l;
          recover =
            (fun _ -> invalid_arg "harris: volatile list cannot recover");
          recover_structure = (fun () -> ());
          check = (fun () -> Harris.check_invariants l);
          contents = (fun () -> Harris.to_list l);
          supports_crash = false;
        });
  }

let all =
  [
    tracking;
    capsules;
    capsules_opt;
    romulus;
    redo;
    harris_volatile;
    tracking_bst;
    tracking_no_ro_opt;
    tracking_hash;
    tracking_broken;
  ]

let names () = List.map (fun f -> f.fname) all

let by_name n =
  match List.find_opt (fun f -> String.equal f.fname n) all with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown algorithm %S; valid names: %s" n
           (String.concat ", " (names ())))
