(** The uniform recoverable-set interface under which the harness drives
    every evaluated implementation (paper §5): Tracking, Capsules,
    Capsules-Opt, Romulus, RedoOpt, the Memento framework's List-mmt and
    combining set, plus the volatile Harris list as the persistence-free
    yardstick. *)

type op = Ins of int | Del of int | Fnd of int

val op_key : op -> int

val is_update : op -> bool
(** [true] for [Ins]/[Del] (state-changing), [false] for [Fnd]. *)

val pp_op : Format.formatter -> op -> unit

(** The framework-specific durable pending token.  The harness plays the
    role of the system's invocation bookkeeping: just before invoking an
    operation it stores [note_begin op] as the pending record, and after
    a crash it hands exactly that token back to [recover].  Tracking only
    needs the operation itself ({!Op}); Memento needs the invocation
    timestamp captured before the op began ({!Mmt}).  Extensible so
    further frameworks slot in without touching the harness. *)
type pending = ..

type pending += Op of op
type pending += Mmt of { mop : op; mseq : int }

(** What the structure's operations mean, which decides the oracle a
    store shard backed by it is checked against: [Set_model] is per-key
    membership ({!Oracle.check}); [Queue_model] is FIFO topic semantics —
    [Ins k] enqueues, [Del _] consumes the head, [Fnd k] scans for
    membership ({!Oracle.check_queue}). *)
type model = Set_model | Queue_model

(** One live instance, closed over its heap and thread count. *)
type t = {
  name : string;
  model : model;
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
  note_begin : op -> pending;
      (** the durable pending token for [op], captured by the system
          immediately before the operation is invoked *)
  recover : pending -> bool;
      (** detectable recovery of the calling thread's crashed op, from
          the token [note_begin] produced for it *)
  recover_structure : unit -> unit;
      (** single-threaded post-crash repair (Romulus restore, Redo log
          replay); a no-op for the lock-free algorithms *)
  check : unit -> (unit, string) result;
  contents : unit -> int list;
  space : unit -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list;
      (** persistent-space enumeration: every line reachable from the
          structure's roots, classified as payload (with the keys it
          holds) or detectability metadata ({!Space} consumes this to
          classify the rest of the heap as garbage) *)
  supports_crash : bool;
      (** whether crash campaigns may include this implementation *)
}

val apply : t -> op -> bool

type factory = { fname : string; make : Pmem.heap -> threads:int -> t }

val tracking : factory
val tracking_bst : factory
(** The Tracking transformation applied to the external BST (§6) — an
    extension beyond the paper's list-only evaluation. *)

val tracking_no_ro_opt : factory
(** Tracking without the read-only optimization (ablation). *)

val tracking_hash : factory
(** Hash map composed of per-bucket Tracking lists (extension). *)

val tracking_topic : factory
(** The recoverable Michael–Scott queue ({!Structures.Rqueue}) as a
    FIFO topic-partition shard backend ([Queue_model]): [Ins k]
    publishes, [Del _] consumes the head, [Fnd k] is a membership scan.
    Built for the elastic store's multi-structure backends. *)

val tracking_broken : factory
(** Negative control: Tracking's list with the new-node pwb elided, so
    crash campaigns {e must} fail with poisoned-data / oracle violations.
    Exists to prove the harness detects missing flushes and to exercise
    the repro/replay/shrink pipeline; never plotted. *)

val capsules : factory
val capsules_opt : factory
val romulus : factory
val redo : factory
val harris_volatile : factory

val memento_list : factory
(** List-mmt: the Harris list composed from the Memento primitives
    (detectable checkpoint + detectable CAS, [lib/memento]). *)

val memento_comb : factory
(** Comb-mmt: the Memento combining set — all operations flattened
    through a single combiner and one detectable CAS per batch. *)

val memento_broken : factory
(** Negative control: List-mmt with the checkpoint persist elided, the
    Memento mirror of {!tracking_broken} — crash campaigns and explore
    {e must} flag a detectability (oracle) violation.  Never plotted. *)

val all : factory list
val names : unit -> string list

val by_name : string -> (factory, string) result
(** Look up a factory by [fname].  The error message of an unknown name
    lists every valid name, so CLI/repro callers can surface it
    verbatim. *)
