(** The uniform recoverable-set interface under which the harness drives
    every evaluated implementation (paper §5): Tracking, Capsules,
    Capsules-Opt, Romulus, RedoOpt, plus the volatile Harris list as the
    persistence-free yardstick. *)

type op = Ins of int | Del of int | Fnd of int

val op_key : op -> int
val pp_op : Format.formatter -> op -> unit

(** One live instance, closed over its heap and thread count. *)
type t = {
  name : string;
  insert : int -> bool;
  delete : int -> bool;
  find : int -> bool;
  recover : op -> bool;
      (** detectable recovery of the calling thread's crashed op *)
  recover_structure : unit -> unit;
      (** single-threaded post-crash repair (Romulus restore, Redo log
          replay); a no-op for the lock-free algorithms *)
  check : unit -> (unit, string) result;
  contents : unit -> int list;
  supports_crash : bool;
      (** whether crash campaigns may include this implementation *)
}

val apply : t -> op -> bool

type factory = { fname : string; make : Pmem.heap -> threads:int -> t }

val tracking : factory
val tracking_bst : factory
(** The Tracking transformation applied to the external BST (§6) — an
    extension beyond the paper's list-only evaluation. *)

val tracking_no_ro_opt : factory
(** Tracking without the read-only optimization (ablation). *)

val tracking_hash : factory
(** Hash map composed of per-bucket Tracking lists (extension). *)

val tracking_broken : factory
(** Negative control: Tracking's list with the new-node pwb elided, so
    crash campaigns {e must} fail with poisoned-data / oracle violations.
    Exists to prove the harness detects missing flushes and to exercise
    the repro/replay/shrink pipeline; never plotted. *)

val capsules : factory
val capsules_opt : factory
val romulus : factory
val redo : factory
val harris_volatile : factory

val all : factory list
val names : unit -> string list

val by_name : string -> (factory, string) result
(** Look up a factory by [fname].  The error message of an unknown name
    lists every valid name, so CLI/repro callers can surface it
    verbatim. *)
