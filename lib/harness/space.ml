(* Persistent-space observability: allocation lineage, live-set/garbage
   accounting and space-per-op telemetry (see DESIGN.md, "Persistent-space
   accounting").

   The simulated NVM never frees, so a heap's occupancy counter is also
   its allocation total; what the counter cannot say is which of those
   lines still matter.  The structures can: every Set_intf instance
   enumerates the lines reachable from its persistent roots, classified
   as payload (with the keys held) or detectability metadata.  Everything
   the heap allocated but the enumeration does not reach is garbage —
   retired descriptors, unlinked nodes, superseded versions, back-copies
   of dead twins.

   The registry below records each allocation's provenance (site, owning
   heap, allocating operation, virtual time) through [Pmem]'s fourth
   observer hook; the sweep joins registry against live set to attribute
   garbage to its allocation sites and operations and to bucket its birth
   times into virtual-time windows.  All state is domain-local, so
   [Parallel.run] campaigns stay byte-identical across [-j]. *)

type alloc_rec = {
  ar_heap : string;
  ar_lid : int;
  ar_line : string;
  ar_site : string;
  ar_tid : int;
  ar_time : float;
  ar_op : string;  (* in-flight op kind at allocation, "" outside ops *)
}

type registry = { mutable recs : alloc_rec list (* newest first *) }

let key = Domain.DLS.new_key (fun () -> { recs = [] })
let registry () = Domain.DLS.get key

let on_alloc (ai : Pmem.alloc_info) =
  let r = registry () in
  r.recs <-
    {
      ar_heap = ai.Pmem.al_heap;
      ar_lid = ai.Pmem.al_id;
      ar_line = ai.Pmem.al_line;
      ar_site = ai.Pmem.al_site;
      ar_tid = ai.Pmem.al_tid;
      ar_time = ai.Pmem.al_time;
      ar_op = Metrics.current_op_kind ();
    }
    :: r.recs

let enable () = Pmem.set_alloc_observer (Some on_alloc)
let disable () = Pmem.set_alloc_observer None
let reset () = (registry ()).recs <- []
let recs () = List.rev (registry ()).recs

(* ---- the sweep --------------------------------------------------------- *)

let bytes_per_line = 64
let growth_windows = 8

type sweep = {
  sv_variant : string;
  sv_threads : int;
  sv_ops : int;  (* completed (incl. recovered) operations *)
  sv_crashes : int;
  sv_total_lines : int;  (* heap occupancy = lines ever allocated *)
  sv_payload_lines : int;
  sv_payload_keys : int list;  (* sorted; must equal the abstract set *)
  sv_meta_lines : int;
  sv_meta_by_kind : (string * int) list;  (* sorted by kind *)
  sv_garbage_lines : int;  (* total - live *)
  sv_garbage_sites : (string * int) list;  (* count desc, then site *)
  sv_garbage_ops : (string * int) list;  (* allocating op kind, count desc *)
  sv_growth : int array;  (* garbage births per virtual-time window *)
  sv_growing : bool;  (* garbage still accruing in the run's second half *)
  sv_supports_crash : bool;
  sv_lb_ok : bool;
      (* detectable-object space lower bound (arXiv 2002.11378): at least
         one persistent word — here, line — of detectability metadata per
         process.  Vacuously true for variants that cannot crash. *)
}

let sweep ~threads ~ops ~crashes heap (inst : Set_intf.t) =
  let live = Hashtbl.create 256 in
  (* Dedup by allocation id, payload winning over metadata: a prepared
     node can be reachable both from a checkpoint and from the chain. *)
  List.iter
    (fun (line, cls) ->
      let lid = Pmem.line_id line in
      match (Hashtbl.find_opt live lid, cls) with
      | None, _ -> Hashtbl.add live lid cls
      | Some (`Meta _), (`Payload _ as p) -> Hashtbl.replace live lid p
      | Some _, _ -> ())
    (inst.Set_intf.space ());
  let payload_lines = ref 0 and keys = ref [] in
  let meta = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ cls ->
      match cls with
      | `Payload ks ->
          incr payload_lines;
          keys := List.rev_append ks !keys
      | `Meta kind ->
          Hashtbl.replace meta kind
            (1 + Option.value ~default:0 (Hashtbl.find_opt meta kind)))
    live;
  let meta_by_kind =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) meta []
    |> List.sort compare
  in
  let meta_lines = List.fold_left (fun acc (_, n) -> acc + n) 0 meta_by_kind in
  let hname = Pmem.heap_name heap in
  let total = Pmem.lines_allocated heap in
  let heap_recs = List.filter (fun r -> String.equal r.ar_heap hname) (recs ()) in
  let garbage_recs =
    List.filter (fun r -> not (Hashtbl.mem live r.ar_lid)) heap_recs
  in
  let count_by proj rs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let k = proj r in
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      rs;
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
    |> List.sort (fun (ka, na) (kb, nb) ->
           if na <> nb then compare nb na else compare ka kb)
  in
  let tmax =
    List.fold_left (fun acc r -> Float.max acc r.ar_time) 0. heap_recs
  in
  let growth = Array.make growth_windows 0 in
  let late = ref false in
  List.iter
    (fun r ->
      let w =
        if tmax <= 0. then 0
        else
          min (growth_windows - 1)
            (int_of_float (r.ar_time /. tmax *. float growth_windows))
      in
      growth.(w) <- growth.(w) + 1;
      if w >= growth_windows / 2 then late := true)
    garbage_recs;
  {
    sv_variant = inst.Set_intf.name;
    sv_threads = threads;
    sv_ops = ops;
    sv_crashes = crashes;
    sv_total_lines = total;
    sv_payload_lines = !payload_lines;
    sv_payload_keys = List.sort compare !keys;
    sv_meta_lines = meta_lines;
    sv_meta_by_kind = meta_by_kind;
    sv_garbage_lines = total - Hashtbl.length live;
    sv_garbage_sites = count_by (fun r -> r.ar_site) garbage_recs;
    sv_garbage_ops =
      count_by (fun r -> if r.ar_op = "" then "(none)" else r.ar_op) garbage_recs;
    sv_growth = growth;
    sv_growing = !late;
    sv_supports_crash = inst.Set_intf.supports_crash;
    sv_lb_ok = (not inst.Set_intf.supports_crash) || meta_lines >= threads;
  }

(* ---- campaign driver ---------------------------------------------------- *)

type cfg = {
  threads : int;
  ops_per_thread : int;
  find_pct : int;
  key_range : int;
  prefill : int;
  max_crashes : int;
  seed : int;
}

let default_cfg =
  {
    threads = 4;
    ops_per_thread = 120;
    find_pct = 20;
    key_range = 64;
    prefill = 16;
    max_crashes = 3;
    seed = 1;
  }

(* One crash-campaign run of [factory] with the allocation registry and
   metrics attached, swept at the final state.  Self-contained per call so
   [Parallel.run] fan-out keeps every domain's observers local. *)
let run_variant cfg (factory : Set_intf.factory) =
  let ccfg =
    {
      Crashes.factory;
      threads = cfg.threads;
      ops_per_thread = cfg.ops_per_thread;
      workload =
        {
          Workload.mix = Workload.mix_of_find_pct cfg.find_pct;
          key_range = cfg.key_range;
          prefill_n = cfg.prefill;
          dist = Workload.Uniform;
        };
      max_crashes = cfg.max_crashes;
    }
  in
  reset ();
  enable ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      disable ();
      reset ())
    (fun () ->
      let swept = ref None in
      let observe heap inst =
        swept := Some (sweep ~threads:cfg.threads ~ops:0 ~crashes:0 heap inst)
      in
      match Crashes.run_logged ~observe ccfg ~seed:cfg.seed with
      | Ok o, _ -> (
          match !swept with
          | Some s ->
              Ok
                {
                  s with
                  sv_ops = o.Crashes.completed_ops;
                  sv_crashes = o.Crashes.crashes;
                }
          | None -> Error "space: observe hook never fired")
      | Error e, _ -> Error e)

let campaign ?jobs cfg (variants : Set_intf.factory list) =
  let arr = Array.of_list variants in
  Parallel.run ?jobs
    (fun _ f -> (f.Set_intf.fname, run_variant cfg f))
    arr
  |> Array.to_list

(* ---- rendering ---------------------------------------------------------- *)

type results = (string * (sweep, string) result) list

let bytes_per_op s =
  if s.sv_ops <= 0 then 0.
  else float (s.sv_total_lines * bytes_per_line) /. float s.sv_ops

let lines_per_op s =
  if s.sv_ops <= 0 then 0. else float s.sv_total_lines /. float s.sv_ops

let meta_ratio s =
  if s.sv_payload_lines <= 0 then 0.
  else float s.sv_meta_lines /. float s.sv_payload_lines

let garbage_rate s =
  if s.sv_ops <= 0 then 0. else float s.sv_garbage_lines /. float s.sv_ops

let render_text cfg (rs : results) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf
    "persistent-space accounting (threads=%d ops/thread=%d find%%=%d \
     key-range=%d prefill=%d max-crashes=%d seed=%d)\n"
    cfg.threads cfg.ops_per_thread cfg.find_pct cfg.key_range cfg.prefill
    cfg.max_crashes cfg.seed;
  pf "%-16s %6s %8s %6s %8s %5s %9s %8s %6s %9s %6s\n" "variant" "lines"
    "payload" "meta" "garbage" "ops" "lines/op" "bytes/op" "meta/" "garbage/"
    "lb";
  pf "%-16s %6s %8s %6s %8s %5s %9s %8s %6s %9s %6s\n" "" "" "" "" "" "" ""
    "" "payld" "op" "";
  List.iter
    (fun (name, r) ->
      match r with
      | Error e -> pf "%-16s FAILED: %s\n" name e
      | Ok s ->
          pf "%-16s %6d %8d %6d %8d %5d %9.2f %8.1f %6.2f %9.3f %6s\n"
            s.sv_variant s.sv_total_lines s.sv_payload_lines s.sv_meta_lines
            s.sv_garbage_lines s.sv_ops (lines_per_op s) (bytes_per_op s)
            (meta_ratio s) (garbage_rate s)
            (if s.sv_lb_ok then "ok"
             else if s.sv_supports_crash then "FAIL"
             else "n/a"))
    rs;
  pf
    "\nlower bound: detectable objects need >= 1 persistent metadata line \
     per process (arXiv 2002.11378); threshold here = %d lines\n"
    cfg.threads;
  List.iter
    (fun (_, r) ->
      match r with
      | Error _ -> ()
      | Ok s ->
          pf "\n%s:\n" s.sv_variant;
          pf "  metadata by kind: %s\n"
            (if s.sv_meta_by_kind = [] then "(none)"
             else
               String.concat ", "
                 (List.map
                    (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                    s.sv_meta_by_kind));
          pf "  garbage growth over virtual time (8 windows): %s%s\n"
            (String.concat " "
               (Array.to_list (Array.map string_of_int s.sv_growth)))
            (if s.sv_growing then "  [still growing past midpoint]" else "");
          (match s.sv_garbage_sites with
          | [] -> pf "  garbage sites: (none recorded)\n"
          | sites ->
              pf "  garbage sites:\n";
              List.iteri
                (fun i (site, n) ->
                  if i < 8 then pf "    %-24s %6d\n" site n)
                sites);
          match s.sv_garbage_ops with
          | [] -> ()
          | ops ->
              pf "  garbage by allocating op: %s\n"
                (String.concat ", "
                   (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) ops)))
    rs;
  Buffer.contents buf

let render_json cfg (rs : results) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let kv_list l =
    String.concat ","
      (List.map
         (fun (k, n) -> Printf.sprintf {|{"name":%S,"lines":%d}|} k n)
         l)
  in
  pf
    {|{"schema":"space-v1","config":{"threads":%d,"ops_per_thread":%d,"find_pct":%d,"key_range":%d,"prefill":%d,"max_crashes":%d,"seed":%d},"bytes_per_line":%d,"lower_bound_lines":%d,"variants":[|}
    cfg.threads cfg.ops_per_thread cfg.find_pct cfg.key_range cfg.prefill
    cfg.max_crashes cfg.seed bytes_per_line cfg.threads;
  List.iteri
    (fun i (name, r) ->
      if i > 0 then pf ",";
      match r with
      | Error e -> pf {|{"variant":%S,"error":%S}|} name e
      | Ok s ->
          pf
            {|{"variant":%S,"threads":%d,"ops":%d,"crashes":%d,"total_lines":%d,"total_bytes":%d,"live_payload_lines":%d,"metadata_lines":%d,"garbage_lines":%d,"lines_per_op":%.4f,"bytes_per_op":%.2f,"metadata_overhead_ratio":%.4f,"garbage_per_op":%.4f,"metadata_by_kind":[%s],"garbage_sites":[%s],"garbage_by_op":[%s],"garbage_growth_windows":[%s],"garbage_growing":%b,"supports_crash":%b,"lower_bound_ok":%b}|}
            s.sv_variant s.sv_threads s.sv_ops s.sv_crashes s.sv_total_lines
            (s.sv_total_lines * bytes_per_line)
            s.sv_payload_lines s.sv_meta_lines s.sv_garbage_lines
            (lines_per_op s) (bytes_per_op s) (meta_ratio s) (garbage_rate s)
            (kv_list s.sv_meta_by_kind)
            (kv_list s.sv_garbage_sites)
            (kv_list s.sv_garbage_ops)
            (String.concat ","
               (Array.to_list (Array.map string_of_int s.sv_growth)))
            s.sv_growing s.sv_supports_crash s.sv_lb_ok)
    rs;
  pf "]}\n";
  Buffer.contents buf

let render_csv (rs : results) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "variant,total_lines,total_bytes,live_payload_lines,metadata_lines,garbage_lines,ops,lines_per_op,bytes_per_op,metadata_overhead_ratio,garbage_per_op,lower_bound_ok\n";
  List.iter
    (fun (name, r) ->
      match r with
      | Error _ -> Buffer.add_string buf (Printf.sprintf "%s,error\n" name)
      | Ok s ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%.4f,%.2f,%.4f,%.4f,%b\n"
               s.sv_variant s.sv_total_lines
               (s.sv_total_lines * bytes_per_line)
               s.sv_payload_lines s.sv_meta_lines s.sv_garbage_lines s.sv_ops
               (lines_per_op s) (bytes_per_op s) (meta_ratio s)
               (garbage_rate s) s.sv_lb_ok))
    rs;
  Buffer.contents buf

(* The explicit bound check [repro space --check] exits nonzero on: a
   healthy detectable variant below the metadata lower bound, or a failed
   run.  Garbage growth is reported but never fails — unbounded growth is
   the paper's expected behavior for structures that never reclaim. *)
let check (rs : results) =
  let problems =
    List.filter_map
      (fun (name, r) ->
        match r with
        | Error e -> Some (Printf.sprintf "%s: run failed: %s" name e)
        | Ok s ->
            if not s.sv_lb_ok then
              Some
                (Printf.sprintf
                   "%s: %d metadata lines < %d threads — below the \
                    detectable-object space lower bound"
                   name s.sv_meta_lines s.sv_threads)
            else None)
      rs
  in
  match problems with [] -> Ok () | ps -> Error (String.concat "\n" ps)
