(** Persistent-space observability (DESIGN.md, "Persistent-space
    accounting"): an allocation registry fed by [Pmem]'s allocation
    observer, a live-set sweep over each structure's {!Set_intf.t.space}
    enumeration, and campaign/rendering glue for [repro space].

    Classification: every line a heap ever allocated is exactly one of
    {e live payload} (reachable, holds abstract-set state), {e
    detectability metadata} (reachable descriptor / checkpoint / announce
    / board / log / capsule / back-copy state) or {e garbage} (allocated
    but no longer reachable — the simulated NVM never frees).

    All state is domain-local; campaigns fanned across domains with
    {!Parallel.run} produce byte-identical reports for every [-j]. *)

(** Provenance of one recorded allocation. *)
type alloc_rec = {
  ar_heap : string;
  ar_lid : int;  (** per-heap allocation index — the identity *)
  ar_line : string;
  ar_site : string;
  ar_tid : int;
  ar_time : float;  (** virtual time *)
  ar_op : string;  (** in-flight op kind at allocation, [""] outside ops *)
}

val enable : unit -> unit
(** Install the allocation observer in the calling domain.  Zero cost for
    runs that never enable it. *)

val disable : unit -> unit
val reset : unit -> unit

val recs : unit -> alloc_rec list
(** Recorded allocations, chronological. *)

val bytes_per_line : int
(** Simulated cache-line size (64): bytes = lines × this. *)

val growth_windows : int
(** Virtual-time buckets in {!sweep.sv_growth} (8). *)

(** One variant's swept accounting. *)
type sweep = {
  sv_variant : string;
  sv_threads : int;
  sv_ops : int;
  sv_crashes : int;
  sv_total_lines : int;
  sv_payload_lines : int;
  sv_payload_keys : int list;
      (** sorted keys on live payload lines — must equal the abstract
          set's contents (locked down by test/test_space.ml) *)
  sv_meta_lines : int;
  sv_meta_by_kind : (string * int) list;
  sv_garbage_lines : int;
  sv_garbage_sites : (string * int) list;
  sv_garbage_ops : (string * int) list;
  sv_growth : int array;
  sv_growing : bool;
  sv_supports_crash : bool;
  sv_lb_ok : bool;
      (** the detectable-object space lower bound (arXiv 2002.11378):
          detectable variants must keep at least one persistent metadata
          line per process *)
}

val sweep :
  threads:int -> ops:int -> crashes:int -> Pmem.heap -> Set_intf.t -> sweep
(** Classify every allocation of [heap] against the structure's live
    enumeration.  Garbage counts come from the heap's occupancy counter
    minus the live set; garbage {e attribution} (sites, ops, growth)
    covers the allocations the registry observed. *)

(** Campaign parameters for [repro space]. *)
type cfg = {
  threads : int;
  ops_per_thread : int;
  find_pct : int;
  key_range : int;
  prefill : int;
  max_crashes : int;
  seed : int;
}

val default_cfg : cfg

val run_variant : cfg -> Set_intf.factory -> (sweep, string) result
(** One crash-campaign run with registry + metrics attached, swept at the
    final recovered state.  Self-contained (enables and tears down its
    own observers), so it can run inside a [Parallel.run] domain. *)

val campaign :
  ?jobs:int ->
  cfg ->
  Set_intf.factory list ->
  (string * (sweep, string) result) list
(** [run_variant] over every factory, fanned with {!Parallel.run};
    results in input order regardless of [jobs]. *)

type results = (string * (sweep, string) result) list

val bytes_per_op : sweep -> float
val lines_per_op : sweep -> float

val meta_ratio : sweep -> float
(** Metadata lines per live payload line — the per-framework
    metadata-overhead ratio in EXPERIMENTS.md. *)

val garbage_rate : sweep -> float

val render_text : cfg -> results -> string
val render_json : cfg -> results -> string
val render_csv : results -> string

val check : results -> (unit, string) result
(** [Error] iff any run failed or any healthy detectable variant fell
    below the metadata lower bound.  Garbage growth never fails. *)
