(* Structured event tracing for the simulator and crash harness.

   When started, installs the observability hooks of [Sim] and [Pmem] and
   serializes every event as one JSON object per line (JSONL).  The schema
   is documented in DESIGN.md ("Trace JSONL schema"); keep the two in
   sync.  When no trace is active the hooks are [None] and the
   instrumented fast paths pay a single ref read. *)

(* The sink is domain-local, like the Sim/Pmem hooks it installs:
   tracing on one domain never observes (or interleaves with) runs on
   another.  Worker domains of a parallel campaign trace nothing unless
   they install their own sink. *)
let sink : out_channel option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_sink () = Domain.DLS.get sink
let set_sink v = Domain.DLS.set sink v

let active () = get_sink () <> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit fmt =
  Printf.ksprintf
    (fun line ->
      match get_sink () with
      | None -> ()
      | Some oc ->
          output_string oc line;
          output_char oc '\n')
    fmt

let impact_name = function
  | Pstats.Low -> "low"
  | Pstats.Medium -> "medium"
  | Pstats.High -> "high"

let on_sim_event : Sim.trace_event -> unit = function
  | Sim.Sched { step; tid; clock } ->
      emit {|{"ev":"sched","step":%d,"tid":%d,"clock":%.1f}|} step tid clock
  | Sim.Crash { step } -> emit {|{"ev":"crash","step":%d}|} step

(* The per-thread virtual clock at the instant of the event (resets to 0
   at every [Sim.run]; the Perfetto converter re-bases rounds).  New
   fields are appended after the existing ones so consumers matching on
   line prefixes keep working. *)
let clk () = if Sim.in_sim () then Sim.now () else 0.

let on_pmem_event : Pmem.trace_event -> unit = function
  | Pmem.Read { tid; line; hit } ->
      emit {|{"ev":"read","tid":%d,"line":"%s","hit":%b}|} tid (escape line)
        hit
  | Pmem.Write { tid; line; hit; invalidated } ->
      emit {|{"ev":"write","tid":%d,"line":"%s","hit":%b,"inv":%d}|} tid
        (escape line) hit invalidated
  | Pmem.Cas { tid; line; success; invalidated } ->
      emit {|{"ev":"cas","tid":%d,"line":"%s","ok":%b,"inv":%d,"clock":%.1f}|}
        tid (escape line) success invalidated (clk ())
  | Pmem.Pwb { tid; site; impact; line } ->
      emit
        {|{"ev":"pwb","tid":%d,"site":"%s","impact":"%s","clock":%.1f,"line":"%s"}|}
        tid (escape site) (impact_name impact) (clk ()) (escape line)
  | Pmem.Pfence { tid; site } ->
      emit {|{"ev":"pfence","tid":%d,"site":"%s","clock":%.1f}|} tid
        (escape site) (clk ())
  | Pmem.Psync { tid; site } ->
      emit {|{"ev":"psync","tid":%d,"site":"%s","clock":%.1f}|} tid
        (escape site) (clk ())
  | Pmem.Alloc { tid; heap; line; site } ->
      emit
        {|{"ev":"alloc","tid":%d,"heap":"%s","line":"%s","site":"%s","clock":%.1f}|}
        tid (escape heap) (escape line) (escape site) (clk ())

let stop () =
  match get_sink () with
  | None -> ()
  | Some oc ->
      Sim.set_tracer None;
      Pmem.set_tracer None;
      set_sink None;
      flush oc;
      if oc != stdout && oc != stderr then close_out_noerr oc

let start_channel oc =
  stop ();
  set_sink (Some oc);
  Sim.set_tracer (Some on_sim_event);
  Pmem.set_tracer (Some on_pmem_event)

(* Stop the previous trace (if any) *before* opening the new file: the
   old order opened first, so restarting into the same path truncated the
   file while the outgoing channel still held buffered events, and the
   final flush-on-close then clobbered the fresh trace. *)
let start path =
  stop ();
  start_channel (open_out path)

let with_file path f =
  start path;
  Fun.protect ~finally:stop f

(* ---- harness-level boundaries ---------------------------------------- *)

let round ~kind n =
  if active () then
    emit {|{"ev":"round","n":%d,"kind":"%s"}|} n
      (match kind with `Work -> "work" | `Recover -> "recover")

let note msg = if active () then emit {|{"ev":"note","msg":"%s"}|} (escape msg)

(* Per-shard windowed time-series of a serve run (emitted by Store once
   the SLO report is built; the Perfetto converter turns these into
   counter tracks). *)
let win ~sid ~index ~start_ns ~end_ns ~completions ~mops ~lat_mean_ns =
  if active () then
    emit
      {|{"ev":"win","sid":%d,"index":%d,"start":%.1f,"end":%.1f,"completions":%d,"mops":%.6f,"lat_mean":%s}|}
      sid index start_ns end_ns completions mops
      (match lat_mean_ns with
      | None -> "null"
      | Some ns -> Printf.sprintf "%.1f" ns)

(* ---- operation spans (emitted by Harness.Metrics) --------------------- *)

let op_begin ~tid ~kind ~key ~clock =
  if active () then
    emit {|{"ev":"op_begin","tid":%d,"kind":"%s","key":%d,"clock":%.1f}|} tid
      (escape kind) key clock

let op_end ~tid ~ok ~cas_failures ~helped ~clock =
  if active () then
    emit {|{"ev":"op_end","tid":%d,"ok":%b,"cas_fail":%d,"helped":%b,"clock":%.1f}|}
      tid ok cas_failures helped clock
