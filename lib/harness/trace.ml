(* Structured event tracing for the simulator and crash harness.

   When started, installs the observability hooks of [Sim] and [Pmem] and
   serializes every event as one JSON object per line (JSONL).  The schema
   is documented in DESIGN.md ("Trace JSONL schema"); keep the two in
   sync.  When no trace is active the hooks are [None] and the
   instrumented fast paths pay a single ref read. *)

let sink : out_channel option ref = ref None

let active () = !sink <> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit fmt =
  Printf.ksprintf
    (fun line ->
      match !sink with
      | None -> ()
      | Some oc ->
          output_string oc line;
          output_char oc '\n')
    fmt

let impact_name = function
  | Pstats.Low -> "low"
  | Pstats.Medium -> "medium"
  | Pstats.High -> "high"

let on_sim_event : Sim.trace_event -> unit = function
  | Sim.Sched { step; tid; clock } ->
      emit {|{"ev":"sched","step":%d,"tid":%d,"clock":%.1f}|} step tid clock
  | Sim.Crash { step } -> emit {|{"ev":"crash","step":%d}|} step

let on_pmem_event : Pmem.trace_event -> unit = function
  | Pmem.Read { tid; line; hit } ->
      emit {|{"ev":"read","tid":%d,"line":"%s","hit":%b}|} tid (escape line)
        hit
  | Pmem.Write { tid; line; hit } ->
      emit {|{"ev":"write","tid":%d,"line":"%s","hit":%b}|} tid (escape line)
        hit
  | Pmem.Cas { tid; line; success } ->
      emit {|{"ev":"cas","tid":%d,"line":"%s","ok":%b}|} tid (escape line)
        success
  | Pmem.Pwb { tid; site; impact } ->
      emit {|{"ev":"pwb","tid":%d,"site":"%s","impact":"%s"}|} tid
        (escape site) (impact_name impact)
  | Pmem.Pfence { tid; site } ->
      emit {|{"ev":"pfence","tid":%d,"site":"%s"}|} tid (escape site)
  | Pmem.Psync { tid; site } ->
      emit {|{"ev":"psync","tid":%d,"site":"%s"}|} tid (escape site)

let stop () =
  match !sink with
  | None -> ()
  | Some oc ->
      Sim.tracer := None;
      Pmem.tracer := None;
      sink := None;
      flush oc;
      if oc != stdout && oc != stderr then close_out_noerr oc

let start_channel oc =
  stop ();
  sink := Some oc;
  Sim.tracer := Some on_sim_event;
  Pmem.tracer := Some on_pmem_event

let start path = start_channel (open_out path)

let with_file path f =
  start path;
  Fun.protect ~finally:stop f

(* ---- harness-level boundaries ---------------------------------------- *)

let round ~kind n =
  if active () then
    emit {|{"ev":"round","n":%d,"kind":"%s"}|} n
      (match kind with `Work -> "work" | `Recover -> "recover")

let note msg = if active () then emit {|{"ev":"note","msg":"%s"}|} (escape msg)
