(** Structured event tracing: installs the [Sim] and [Pmem] observability
    hooks and writes one JSON object per line (JSONL).  Schema (documented
    in DESIGN.md):

    - [{"ev":"sched","step":N,"tid":T,"clock":C}] — scheduling decision
    - [{"ev":"crash","step":N}] — system-wide crash boundary
    - [{"ev":"read"|"write","tid":T,"line":L,"hit":B}] — memory access
    - [{"ev":"cas","tid":T,"line":L,"ok":B}] — CAS outcome
    - [{"ev":"pwb","tid":T,"site":S,"impact":"low"|"medium"|"high"}]
    - [{"ev":"pfence"|"psync","tid":T,"site":S}]
    - [{"ev":"round","n":N,"kind":"work"|"recover"}] — campaign round
    - [{"ev":"note","msg":M}] — freeform harness marker

    Tracing off (the default) costs one ref read per instrumented
    operation and allocates nothing. *)

val active : unit -> bool

val start : string -> unit
(** Open [path] (truncating) and trace into it until {!stop}. *)

val start_channel : out_channel -> unit

val stop : unit -> unit
(** Uninstall hooks and close the sink ([stdout]/[stderr] are left open).
    Idempotent. *)

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] traces [f ()] into [path], stopping on exit. *)

val round : kind:[ `Work | `Recover ] -> int -> unit
(** Campaign-round boundary (emitted by {!Crashes}); no-op when off. *)

val note : string -> unit
