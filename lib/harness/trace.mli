(** Structured event tracing: installs the [Sim] and [Pmem] observability
    hooks and writes one JSON object per line (JSONL).  Schema (documented
    in DESIGN.md):

    - [{"ev":"sched","step":N,"tid":T,"clock":C}] — scheduling decision
    - [{"ev":"crash","step":N}] — system-wide crash boundary
    - [{"ev":"read","tid":T,"line":L,"hit":B}] — memory read
    - [{"ev":"write","tid":T,"line":L,"hit":B,"inv":I}] — memory write
      ([inv] = other caches invalidated by the store)
    - [{"ev":"cas","tid":T,"line":L,"ok":B,"inv":I,"clock":C}] — CAS outcome
    - [{"ev":"pwb","tid":T,"site":S,"impact":"low"|"medium"|"high","clock":C,"line":L}]
      ([line] = the cache line being written back — write provenance)
    - [{"ev":"pfence"|"psync","tid":T,"site":S,"clock":C}]
    - [{"ev":"round","n":N,"kind":"work"|"recover"}] — campaign round
    - [{"ev":"note","msg":M}] — freeform harness marker
    - [{"ev":"op_begin","tid":T,"kind":K,"key":N,"clock":C}] — operation span
    - [{"ev":"op_end","tid":T,"ok":B,"cas_fail":N,"helped":B,"clock":C}]
    - [{"ev":"win","sid":S,"index":I,"start":T0,"end":T1,"completions":N,
       "mops":V,"lat_mean":L}] — per-shard serve window (counter tracks)

    [clock] is the emitting thread's virtual clock in ns; it restarts at 0
    on every [Sim.run], so round boundaries re-base it (the Perfetto
    converter accumulates offsets).  Tracing off (the default) costs one
    domain-local read per instrumented operation and allocates nothing.

    The sink and the hooks it installs are {e domain-local}: a trace
    started on one domain records that domain's runs only.  Worker
    domains of a parallel campaign ([-j]) are not traced. *)

val active : unit -> bool

val start : string -> unit
(** Open [path] (truncating) and trace into it until {!stop}. *)

val start_channel : out_channel -> unit

val stop : unit -> unit
(** Uninstall hooks and close the sink ([stdout]/[stderr] are left open).
    Idempotent. *)

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] traces [f ()] into [path], stopping on exit. *)

val round : kind:[ `Work | `Recover ] -> int -> unit
(** Campaign-round boundary (emitted by {!Crashes}); no-op when off. *)

val note : string -> unit

val win :
  sid:int ->
  index:int ->
  start_ns:float ->
  end_ns:float ->
  completions:int ->
  mops:float ->
  lat_mean_ns:float option ->
  unit
(** One shard's stats over one virtual-time window of a serve run
    (emitted by {!Store} after the SLO report is built); no-op when
    off. *)

val op_begin : tid:int -> kind:string -> key:int -> clock:float -> unit
(** Operation-span boundaries (emitted by {!Metrics}); no-ops when off. *)

val op_end :
  tid:int -> ok:bool -> cas_failures:int -> helped:bool -> clock:float -> unit
