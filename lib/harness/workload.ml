type mix = { name : string; find_pct : int }

let read_intensive = { name = "read-intensive"; find_pct = 70 }
let update_intensive = { name = "update-intensive"; find_pct = 30 }

let mix_of_find_pct p =
  if p < 0 || p > 100 then invalid_arg "mix_of_find_pct";
  { name = Printf.sprintf "%d%%-finds" p; find_pct = p }

(* Key-popularity distribution.  [Skewed] is a power-law (Zipfian-like)
   hot set parameterized by the mass [s] landing on the hottest 20% of
   keys: the CDF over the normalized key index x in [0,1] is x^a with
   a = ln s / ln 0.2, so P(hottest 20%) = 0.2^a = s.  [inv_a] = 1/a is
   precomputed at construction; a draw is then one rng float and one
   [Float.pow] — no allocation beyond the rng's own float boxing. *)
type dist = Uniform | Skewed of { s : float; inv_a : float }

let skewed s =
  if not (s >= 0.2 && s < 1.0) then
    invalid_arg
      (Printf.sprintf
         "Workload.skewed: hot-set mass %g outside [0.2, 1.0) (0.2 = uniform)"
         s);
  Skewed { s; inv_a = log 0.2 /. log s }

let dist_name = function
  | Uniform -> "uniform"
  | Skewed { s; _ } -> Printf.sprintf "skewed-%.2f" s

type config = {
  mix : mix;
  key_range : int;
  prefill_n : int;
  dist : dist;
}

let default mix =
  { mix; key_range = 500; prefill_n = 250; dist = Uniform }

(* The Uniform path must draw exactly what the historical generator drew
   (one [Random.State.int]): recorded campaign repros replay the rng
   stream, and a changed draw sequence would silently diverge them. *)
let gen_key rng cfg =
  match cfg.dist with
  | Uniform -> 1 + Random.State.int rng cfg.key_range
  | Skewed { inv_a; _ } ->
      let u = Random.State.float rng 1.0 in
      let k = 1 + int_of_float (Float.pow u inv_a *. float_of_int cfg.key_range) in
      if k > cfg.key_range then cfg.key_range else k

(* Drawing from [0, 200) keeps the find fraction exact while splitting the
   non-find remainder by parity — an exactly even insert/delete split even
   when [100 - find_pct] is odd (an integer halving there biased deletes
   by a percentage point, drifting sets toward empty on long runs). *)
let gen_op rng cfg =
  let k = gen_key rng cfg in
  let r = Random.State.int rng 200 in
  if r < 2 * cfg.mix.find_pct then Set_intf.Fnd k
  else if r land 1 = 0 then Set_intf.Ins k
  else Set_intf.Del k

let prefill rng cfg algo =
  for _ = 1 to cfg.prefill_n do
    let k = gen_key rng cfg in
    ignore (algo.Set_intf.insert k : bool)
  done
