type mix = { name : string; find_pct : int }

let read_intensive = { name = "read-intensive"; find_pct = 70 }
let update_intensive = { name = "update-intensive"; find_pct = 30 }

let mix_of_find_pct p =
  if p < 0 || p > 100 then invalid_arg "mix_of_find_pct";
  { name = Printf.sprintf "%d%%-finds" p; find_pct = p }

type config = {
  mix : mix;
  key_range : int;
  prefill_n : int;
}

let default mix = { mix; key_range = 500; prefill_n = 250 }

(* Drawing from [0, 200) keeps the find fraction exact while splitting the
   non-find remainder by parity — an exactly even insert/delete split even
   when [100 - find_pct] is odd (an integer halving there biased deletes
   by a percentage point, drifting sets toward empty on long runs). *)
let gen_op rng cfg =
  let k = 1 + Random.State.int rng cfg.key_range in
  let r = Random.State.int rng 200 in
  if r < 2 * cfg.mix.find_pct then Set_intf.Fnd k
  else if r land 1 = 0 then Set_intf.Ins k
  else Set_intf.Del k

let prefill rng cfg algo =
  for _ = 1 to cfg.prefill_n do
    let k = 1 + Random.State.int rng cfg.key_range in
    ignore (algo.Set_intf.insert k : bool)
  done
