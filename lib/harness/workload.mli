(** Workload generation matching the paper's benchmarks (§5): keys chosen
    from [\[1, key_range\]] (uniformly, or from a skewed hot set); the
    list prefilled with [prefill_n] random inserts (250 for range 500
    gives the ~40%-full list); read-intensive = 70% finds,
    update-intensive = 30% finds, the remainder split evenly between
    inserts and deletes. *)

type mix = { name : string; find_pct : int }

val read_intensive : mix
val update_intensive : mix
val mix_of_find_pct : int -> mix

type dist =
  | Uniform
  | Skewed of { s : float; inv_a : float }
      (** Power-law (Zipfian-like) hot set: fraction [s] of draws land on
          the hottest 20% of keys (the lowest key indices).  Construct
          with {!skewed}, which derives [inv_a]; the pair is kept inline
          so a draw costs one rng float and one [Float.pow] — seeded and
          allocation-free. *)

val skewed : float -> dist
(** [skewed s] = the distribution placing mass [s] on the hottest 20% of
    keys.  [s = 0.2] degenerates to uniform (every quintile gets its
    proportional share); larger [s] concentrates harder — e.g. 0.8 is the
    classic "80% of accesses to 20% of keys".
    @raise Invalid_argument unless [0.2 <= s < 1.0]. *)

val dist_name : dist -> string
(** ["uniform"], or ["skewed-<s>"] — stable, parseable labels for CLI
    output and serve-repro files. *)

type config = {
  mix : mix;
  key_range : int;  (** keys drawn from [1, key_range] *)
  prefill_n : int;
  dist : dist;  (** key-popularity distribution (default {!Uniform}) *)
}

val default : mix -> config
(** key_range 500, prefill 250, uniform keys, as in the paper's main
    figures. *)

val gen_key : Random.State.t -> config -> int
(** Draw one key from [config.dist].  The [Uniform] path consumes exactly
    one [Random.State.int] — the historical draw sequence — so existing
    recorded repros replay unchanged. *)

val gen_op : Random.State.t -> config -> Set_intf.op

val prefill : Random.State.t -> config -> Set_intf.t -> unit
(** Perform [prefill_n] random inserts (duplicates allowed, as in the
    paper, so the list ends up ~40% full), keys drawn from
    [config.dist]. *)
