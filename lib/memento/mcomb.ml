(* Comb-mmt: a detectable combining set — a genuinely different
   contention shape from the list.  Every thread durably announces
   (timestamp, operation) in its own slot; a combiner gathers every
   outstanding announcement, services the whole batch against an
   immutable snapshot, and installs the new version — items {e and} the
   per-thread response array — with ONE detectable CAS on the root.

   That single swing linearizes the whole batch, and it is also the whole
   persistence story: effect and responses live in the same persistent
   field, so a crash either keeps the entire batch (root's new version
   persisted) or none of it (root reverts, durable announcements remain,
   the replayed operations are re-serviced).  There is no
   partially-persisted state to reconcile, which is exactly the
   simplification combining buys a detectable structure.

   The combiner is elected by the root CAS itself rather than by a lock:
   every waiting thread builds the batch and attempts the swing, and a
   failed swing means another combiner's batch — which includes every
   announcement it could see — won.  This keeps the structure lock-free,
   so the exploration harness's adversarial scheduler cannot park a lock
   holder and livelock the spinners; swings are bounded because each
   success services at least one new announcement. *)

module Make (K : Memento.KEY) = struct
  module Cp = Memento.Checkpoint
  module D = Memento.Dcas

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  type resp = { rseq : int; rok : bool }
  (* response to invocation [rseq] of the owning thread; rseq 0 = none *)

  type ver = { items : K.t list; resps : resp array }
  (* one immutable version of the set: sorted items + latest responses *)

  type ann = { aseq : int; aop : pending }

  type t = {
    ctx : Memento.ctx;
    root : ver D.tagged Pmem.t;
    announce : ann option Pvar.t;
    res : bool Cp.t;
    ann_pwb : Pstats.site;
    ann_sync : Pstats.site;
  }

  let create ?(prefix = "mcomb") heap ~threads =
    let ctx = Memento.make ~prefix heap ~threads in
    let root =
      Pmem.alloc ~name:(prefix ^ ".root") heap
        (D.plain
           { items = []; resps = Array.make threads { rseq = 0; rok = false } })
    in
    Pmem.pwb_f ctx.Memento.s.init_pwb root;
    Pmem.psync ctx.Memento.s.init_sync;
    {
      ctx;
      root;
      announce = Pvar.make ~name:(prefix ^ ".announce") heap ~threads None;
      res = Cp.make ~name:(prefix ^ ".res") ctx;
      ann_pwb = Pstats.make Pstats.Pwb (prefix ^ ".announce.pwb");
      ann_sync = Pstats.make Pstats.Psync (prefix ^ ".announce.psync");
    }

  (* Service one operation against the snapshot.  The snapshot is plain
     OCaml data, invisible to the memory simulation, so the walk charges
     one cached load per visited element — the combiner's serial work
     must show up in virtual time or combining would look infinitely
     fast. *)
  let apply_model (op : pending) items =
    let c = Cost.current () in
    let visit () = Sim.step c.Cost.cache_hit in
    match op with
    | Insert k ->
        let rec go acc = function
          | [] -> (true, List.rev (k :: acc))
          | x :: rest ->
              visit ();
              let cmp = K.compare x k in
              if cmp < 0 then go (x :: acc) rest
              else if cmp = 0 then (false, items)
              else (true, List.rev_append acc (k :: x :: rest))
        in
        go [] items
    | Delete k ->
        let rec go acc = function
          | [] -> (false, items)
          | x :: rest ->
              visit ();
              let cmp = K.compare x k in
              if cmp < 0 then go (x :: acc) rest
              else if cmp = 0 then (true, List.rev_append acc rest)
              else (false, items)
        in
        go [] items
    | Find k ->
        let rec go = function
          | [] -> false
          | x :: rest ->
              visit ();
              let cmp = K.compare x k in
              if cmp < 0 then go rest else cmp = 0
        in
        (go items, items)

  (* One combining pass over the version [cur]: fold every announcement
     newer than its thread's recorded response into a fresh version and
     install it with a single detectable CAS keyed by this combiner's own
     invocation.  The caller's own announcement always qualifies (its
     response check failed just before), so a successful swing always
     services at least one request. *)
  let combine t h ~seq cur =
    let v = cur.D.v in
    let resps = Array.copy v.resps in
    let items = ref v.items in
    for tid = 0 to t.ctx.Memento.threads - 1 do
      match Pmem.read (Pvar.cell t.announce tid) with
      | Some a when a.aseq > resps.(tid).rseq ->
          let ok, items' = apply_model a.aop !items in
          items := items';
          resps.(tid) <- { rseq = a.aseq; rok = ok }
      | _ -> ()
    done;
    ignore
      (D.run h ~seq ~slot:0 t.root ~expect:cur
         ~desired:{ items = !items; resps }
        : bool)

  let update t h ~seq (op : pending) =
    match Cp.peek t.res h ~seq with
    | Some r -> r
    | None ->
        let my = Pvar.cell t.announce h.Memento.tid in
        (match Pmem.read my with
        | Some a when a.aseq = seq -> () (* replay: announcement survived *)
        | _ ->
            Pmem.write my (Some { aseq = seq; aop = op });
            Pmem.pwb_f t.ann_pwb my;
            Pmem.psync t.ann_sync);
        let rec wait () =
          (* Dcas.read persists-then-helps any in-flight swing, so an
             observed response is always backed by a durable version. *)
          let cur = D.read t.ctx t.root in
          let r = cur.D.v.resps.(h.Memento.tid) in
          if r.rseq = seq then begin
            let out = Cp.run t.res h ~seq (fun () -> r.rok) in
            D.confirm h ~seq ~slot:0 t.root;
            out
          end
          else begin
            combine t h ~seq cur;
            wait ()
          end
        in
        wait ()

  let run_at t h ~seq p = update t h ~seq p

  let exec t p =
    let h = Memento.my_handle t.ctx in
    run_at t h ~seq:(Memento.begin_op h) p

  let insert t k = exec t (Insert k)
  let delete t k = exec t (Delete k)
  let find t k = exec t (Find k)

  let next_invocation t =
    Memento.next_invocation (Memento.my_handle t.ctx)

  let recover t ~mseq p =
    let h = Memento.my_handle t.ctx in
    Memento.recover h ~mseq ~run:(fun ~seq -> run_at t h ~seq p)

  (* ---- introspection -------------------------------------------------- *)

  let to_list t = (Pmem.peek t.root).D.v.items

  let length t = List.length (to_list t)

  let check_invariants t =
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let v = (Pmem.peek t.root).D.v in
    if Array.length v.resps <> t.ctx.Memento.threads then
      err "version carries %d response slots for %d threads"
        (Array.length v.resps) t.ctx.Memento.threads
    else
      let rec sorted = function
        | [] | [ _ ] -> Ok ()
        | a :: (b :: _ as rest) ->
            if K.compare a b < 0 then sorted rest
            else
              err "items out of order: %s before %s" (K.to_string a)
                (K.to_string b)
      in
      sorted v.items

  (* Space-sweep enumeration.  The root line holds the entire current
     version — every item — so it is the single payload line; announce
     slots are ["board"] metadata (they play the announcement role the
     boards play for Dcas), result checkpoints and invocation counters
     are ["checkpoint"], Dcas boards ["board"]. *)
  let space t =
    let acc = ref [] in
    let push line cls = acc := (line, cls) :: !acc in
    push (Pmem.line_of t.root) (`Payload (Pmem.peek t.root).D.v.items);
    List.iter (fun l -> push l (`Meta "checkpoint")) (Cp.lines t.res);
    for i = 0 to t.ctx.Memento.threads - 1 do
      push (Pmem.line_of (Pvar.cell t.announce i)) (`Meta "board");
      push (Pmem.line_of (Pvar.cell t.ctx.Memento.seqs i)) (`Meta "checkpoint");
      push (Pmem.line_of (Pvar.cell t.ctx.Memento.boards i)) (`Meta "board")
    done;
    List.rev !acc
end

module Int = Make (Mlist.Int_key)
