(** Comb-mmt: a detectable combining set.  Threads durably announce
    their operations; a single elected combiner services every
    outstanding announcement against an immutable snapshot and installs
    the new version — items and per-thread responses together — with one
    detectable CAS on the root.  A crash keeps the whole batch or none of
    it; replays are re-serviced from the surviving announcements. *)

module Make (K : Memento.KEY) : sig
  type t
  type pending = Insert of K.t | Delete of K.t | Find of K.t

  val create : ?prefix:string -> Pmem.heap -> threads:int -> t
  (** [prefix] (default ["mcomb"]) names the persistence sites. *)

  val insert : t -> K.t -> bool
  val delete : t -> K.t -> bool
  val find : t -> K.t -> bool

  val next_invocation : t -> int
  (** The calling thread's next invocation timestamp (the durable
      pending token the system records before invoking). *)

  val recover : t -> mseq:int -> pending -> bool
  (** Detectably finish (or first-execute) the crashed invocation whose
      pending token is [mseq]. *)

  val to_list : t -> K.t list
  val length : t -> int
  val check_invariants : t -> (unit, string) result

  val space :
    t -> (Pmem.line * [ `Payload of K.t list | `Meta of string ]) list
  (** Persistent-space enumeration ([Harness.Space]): the root line
      carries the whole current version's items as payload; announce
      slots and Dcas boards are ["board"], checkpoints and invocation
      counters ["checkpoint"].  Superseded versions are garbage by
      omission. *)
end

module Int : module type of Make (Mlist.Int_key)
