(* The rival framework: composable detectability in the style of Memento
   (PLDI 2023; see PAPERS.md).  Where the Tracking transformation persists
   helping descriptors and replays a phase machine, Memento composes two
   primitives through ordinary control flow:

   - a detectable {e checkpoint} — a per-thread single-assignment cell
     keyed by (thread, invocation timestamp): the first execution computes
     and durably records a value, every post-crash replay of the same
     invocation returns the recorded value instead of recomputing;

   - a detectable {e CAS} — a CAS whose success survives a crash: the
     winning value carries a (thread, timestamp, slot) tag, readers help
     by persisting the link and recording the outcome on the winner's
     board before untagging, and a replay consults board and tag before
     ever re-executing.

   The "timestamp" is a durable per-thread invocation counter, bumped by
   system support at operation start ({!Pmem.system_persist}) — the same
   footnote-1 system support Tracking uses for [CP_q := 0].  State from a
   previous completed invocation carries an older timestamp and is
   therefore dead on arrival; state from the crashed invocation carries
   the current one and replays.

   Everything below runs on the simulated NVM substrate unchanged:
   [Pmem.crash] adversarial write-back resolutions, heap-scoped crashes
   and poisoned never-persisted fields all apply to these primitives
   exactly as they do to Tracking's descriptors. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

type sites = {
  init_pwb : Pstats.site;
  init_sync : Pstats.site;
  cp_fence : Pstats.site;  (* checkpoint payload ordered before the cell *)
  cp_pwb : Pstats.site;
  cp_sync : Pstats.site;
  prep_fence : Pstats.site;  (* prepared values ordered before the link CAS *)
  tag_pwb : Pstats.site;  (* winner persists the tagged link *)
  tag_sync : Pstats.site;
  help_pwb : Pstats.site;  (* helper persists the link before recording *)
  help_sync : Pstats.site;
  rec_pwb : Pstats.site;  (* outcome record on the winner's board *)
  rec_sync : Pstats.site;
  detag_pwb : Pstats.site;
}

let sites prefix =
  let pwb n = Pstats.make Pstats.Pwb (prefix ^ "." ^ n) in
  let fence n = Pstats.make Pstats.Pfence (prefix ^ "." ^ n) in
  let sync n = Pstats.make Pstats.Psync (prefix ^ "." ^ n) in
  {
    init_pwb = pwb "init.pwb";
    init_sync = sync "init.psync";
    cp_fence = fence "cp.pfence";
    cp_pwb = pwb "cp.pwb";
    cp_sync = sync "cp.psync";
    prep_fence = fence "dcas.prep.pfence";
    tag_pwb = pwb "dcas.tag.pwb";
    tag_sync = sync "dcas.tag.psync";
    help_pwb = pwb "dcas.help.pwb";
    help_sync = sync "dcas.help.psync";
    rec_pwb = pwb "dcas.record.pwb";
    rec_sync = sync "dcas.record.psync";
    detag_pwb = pwb "dcas.detag.pwb";
  }

(* A recorded CAS outcome on a thread's board: invocation [oseq], call
   site [oslot].  Only successes are ever recorded — a failed CAS leaves
   no durable trace and simply retries on replay. *)
type outcome = { oseq : int; oslot : int; ores : bool }

(* The tag a winning CAS leaves on the location until the outcome is
   durable elsewhere (the winner's result checkpoint, or its board). *)
type tag = { wtid : int; wseq : int; wslot : int }

type ctx = {
  threads : int;
  heap : Pmem.heap;
  s : sites;
  seqs : int Pvar.t;  (* durable invocation counters (system-maintained) *)
  boards : outcome option Pvar.t;  (* per-thread CAS outcome boards *)
}

let make ?(prefix = "mmt") heap ~threads =
  {
    threads;
    heap;
    s = sites prefix;
    seqs = Pvar.make ~name:(prefix ^ ".seq") heap ~threads 0;
    boards = Pvar.make ~name:(prefix ^ ".board") heap ~threads None;
  }

type handle = {
  tid : int;
  seq_c : int Pmem.t;
  board_c : outcome option Pmem.t;
  ctx : ctx;
}

let handle ctx tid =
  {
    tid;
    seq_c = Pvar.cell ctx.seqs tid;
    board_c = Pvar.cell ctx.boards tid;
    ctx;
  }

let my_handle ctx = handle ctx (if Sim.in_sim () then Sim.tid () else 0)

let next_invocation h = Pmem.peek h.seq_c + 1

(* Durably open a fresh invocation.  Crash-atomic and uncounted
   (system support, paper §2 footnote 1): performed before any
   interruptible step, so no crash can observe the invocation running
   under the previous timestamp. *)
let begin_op h =
  let seq = next_invocation h in
  Pmem.system_persist h.seq_c seq;
  Sim.step (Cost.current ()).Cost.op_overhead;
  seq

(* Detectable recovery gate shared by every Memento structure.  [mseq] is
   the invocation timestamp the system captured when it durably noted the
   pending operation (the harness's [note_begin] token).  If the durable
   counter equals it, the crashed invocation had begun: replay it under
   the same timestamp, so its checkpoints and CAS outcomes are honored.
   If the counter is one behind, the crash hit before [begin_op]: this is
   the first execution.  Anything else means the system re-supplied an
   operation that is not the crashed one. *)
let recover h ~mseq ~run =
  let s = Pmem.read h.seq_c in
  if s = mseq then run ~seq:s
  else if s = mseq - 1 then run ~seq:(begin_op h)
  else
    failwith
      (Printf.sprintf
         "Memento.recover: durable invocation counter %d cannot belong to \
          pending token %d — the system must re-supply exactly the crashed \
          operation (counter = token, or token-1 if it never began)"
         s mseq)

module Checkpoint = struct
  type 'a saved = { cseq : int; v : 'a }
  type 'a t = { cells : 'a saved option Pvar.t; cctx : ctx }

  let make ?name ctx =
    { cells = Pvar.make ?name ctx.heap ~threads:ctx.threads None; cctx = ctx }

  let cell t h = Pvar.cell t.cells h.tid

  (* Replay peek: the committed value of this invocation, if any. *)
  let peek t h ~seq =
    match Pmem.read (cell t h) with
    | Some { cseq; v } when cseq = seq -> Some v
    | _ -> None

  (* First execution computes, persists and returns; a replay of the same
     invocation returns the recorded value without running [f].  The
     fence orders whatever [f] flushed (fresh nodes, rewritten links)
     before the checkpoint's own write-back: no crash can persist the
     checkpoint yet drop its payload. *)
  let run t h ~seq f =
    let c = cell t h in
    match Pmem.read c with
    | Some { cseq; v } when cseq = seq -> v
    | _ ->
        let v = f () in
        Pmem.pfence h.ctx.s.cp_fence;
        Pmem.write c (Some { cseq = seq; v });
        Pmem.pwb_f h.ctx.s.cp_pwb c;
        Pmem.psync h.ctx.s.cp_sync;
        v

  (* Space-sweep support: the per-thread cell lines, and the value a
     thread last committed (whatever its invocation) — structures use the
     latter to keep checkpoint-held allocations, e.g. a prepared insert
     node, out of the garbage count. *)
  let lines t =
    List.init t.cctx.threads (fun i -> Pmem.line_of (Pvar.cell t.cells i))

  let latest t tid =
    match Pmem.peek (Pvar.cell t.cells tid) with
    | Some { v; _ } -> Some v
    | None -> None
end

module Dcas = struct
  type 'a tagged = { v : 'a; tg : tag option }

  let plain v = { v; tg = None }

  (* Record [w]'s success on its owner's board unless a newer entry is
     already there — (seq, slot) only moves forward, so a late helper of
     a long-detagged CAS can never clobber fresher evidence.  The flush
     runs even when the entry was already present: a helper that skips
     the write must still not untag before the record is durable. *)
  let rec record ctx (w : tag) =
    let cell = Pvar.cell ctx.boards w.wtid in
    let cur = Pmem.read cell in
    let up_to_date =
      match cur with
      | Some o -> o.oseq > w.wseq || (o.oseq = w.wseq && o.oslot >= w.wslot)
      | None -> false
    in
    if
      up_to_date
      || Pmem.cas cell cur (Some { oseq = w.wseq; oslot = w.wslot; ores = true })
    then begin
      Pmem.pwb_f ctx.s.rec_pwb cell;
      Pmem.psync ctx.s.rec_sync
    end
    else record ctx w

  (* Help a tagged location: persist the winning link, record the outcome
     on the winner's board, and only then untag.  The psync order is the
     protocol's soundness — by the time an untagged value can be
     observed (volatile or durable), the evidence is persistent. *)
  let help ctx field (cur : 'a tagged) w =
    Pmem.pwb_f ctx.s.help_pwb field;
    Pmem.psync ctx.s.help_sync;
    record ctx w;
    ignore (Pmem.cas field cur { v = cur.v; tg = None } : bool);
    Pmem.pwb_f ctx.s.detag_pwb field

  (* Read a location for use as a CAS expectation: helps until the stored
     cell is untagged, so callers never race an undetermined CAS.  The
     returned cell is the exact box stored in the field (physical
     equality), as the next [run] needs. *)
  let rec read ctx field =
    let c = Pmem.read field in
    match c.tg with
    | None -> c
    | Some w ->
        help ctx field c w;
        read ctx field

  (* The outcome this invocation already has on its own board, put there
     by a helper (or by our own replay helping our own tag). *)
  let known h ~seq ~slot =
    match Pmem.read h.board_c with
    | Some { oseq; oslot; ores } when oseq = seq && oslot = slot -> Some ores
    | _ -> None

  (* The detectable CAS.  [expect] must come from {!read} (physical
     equality).  On success the location durably holds [desired] tagged
     with (thread, seq, slot); the caller commits its result (typically a
     {!Checkpoint}) and then calls {!confirm} to untag.  A replay whose
     success already has durable evidence — on the board, or still tagged
     in the location — returns [true] without re-executing: this is what
     makes the CAS idempotent across crashes. *)
  let run h ~seq ~slot field ~expect ~desired =
    match known h ~seq ~slot with
    | Some r -> r
    | None -> (
        let c = Pmem.read field in
        match c.tg with
        | Some w when w.wtid = h.tid && w.wseq = seq && w.wslot = slot ->
            (* our own durable-but-unrecorded success: finish the helping
               protocol for ourselves and report it *)
            help h.ctx field c w;
            true
        | _ ->
            Pmem.pfence h.ctx.s.prep_fence;
            let t = { wtid = h.tid; wseq = seq; wslot = slot } in
            if Pmem.cas field expect { v = desired; tg = Some t } then begin
              Pmem.pwb_f h.ctx.s.tag_pwb field;
              Pmem.psync h.ctx.s.tag_sync;
              true
            end
            else false)

  (* Untag after the surrounding control flow has durably committed the
     result.  A failed CAS here means a helper already untagged (and
     recorded) — equally fine. *)
  let confirm h ~seq ~slot field =
    let c = Pmem.read field in
    match c.tg with
    | Some w when w.wtid = h.tid && w.wseq = seq && w.wslot = slot ->
        ignore (Pmem.cas field c { v = c.v; tg = None } : bool);
        Pmem.pwb_f h.ctx.s.detag_pwb field
    | _ -> ()
end
