(** Composable detectability in the style of Memento (PLDI 2023): a
    detectable {!Checkpoint} (per-thread single-assignment cell keyed by
    (thread, invocation timestamp)) and a detectable {!Dcas} (a CAS whose
    success survives a crash and replays idempotently), composed through
    ordinary control flow instead of the paper's Tracking phase machine.
    Both run on the simulated NVM substrate unchanged, so [Pmem.crash]
    adversarial write-back resolutions and heap-scoped crashes apply to
    Memento structures exactly as they do to Tracking ones. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

type sites = {
  init_pwb : Pstats.site;
  init_sync : Pstats.site;
  cp_fence : Pstats.site;
  cp_pwb : Pstats.site;
  cp_sync : Pstats.site;
  prep_fence : Pstats.site;
  tag_pwb : Pstats.site;
  tag_sync : Pstats.site;
  help_pwb : Pstats.site;
  help_sync : Pstats.site;
  rec_pwb : Pstats.site;
  rec_sync : Pstats.site;
  detag_pwb : Pstats.site;
}

type outcome = { oseq : int; oslot : int; ores : bool }
type tag = { wtid : int; wseq : int; wslot : int }

type ctx = {
  threads : int;
  heap : Pmem.heap;
  s : sites;
  seqs : int Pvar.t;
  boards : outcome option Pvar.t;
}

val make : ?prefix:string -> Pmem.heap -> threads:int -> ctx
(** Per-structure detectability context: durable per-thread invocation
    counters and CAS-outcome boards, with persistence sites registered
    under [prefix] (default ["mmt"]) — e.g. [prefix ^ ".cp.pwb"], so
    negative controls can elide one site by name. *)

type handle = {
  tid : int;
  seq_c : int Pmem.t;
  board_c : outcome option Pmem.t;
  ctx : ctx;
}

val handle : ctx -> int -> handle
val my_handle : ctx -> handle

val next_invocation : handle -> int
(** The timestamp the thread's {e next} invocation will run under — what
    the system records as the pending token before the op starts. *)

val begin_op : handle -> int
(** Durably open a fresh invocation (crash-atomic system support, paper
    §2 footnote 1) and return its timestamp. *)

val recover : handle -> mseq:int -> run:(seq:int -> 'a) -> 'a
(** Detectable recovery gate: replay the crashed invocation [mseq] under
    its own timestamp if it had begun, or start it fresh if the crash hit
    before {!begin_op}.
    @raise Failure if [mseq] cannot be the crashed invocation. *)

module Checkpoint : sig
  type 'a t

  val make : ?name:string -> ctx -> 'a t

  val peek : 'a t -> handle -> seq:int -> 'a option
  (** The value committed by invocation [seq], if any. *)

  val run : 'a t -> handle -> seq:int -> (unit -> 'a) -> 'a
  (** First execution computes [f ()], persists it keyed by [seq] and
      returns it; a replay of the same invocation returns the recorded
      value without re-running [f].  A pfence orders whatever [f] flushed
      before the checkpoint's own write-back. *)

  val lines : 'a t -> Pmem.line list
  (** The per-thread cell lines, for the space sweep. *)

  val latest : 'a t -> int -> 'a option
  (** The value thread [tid] last committed, regardless of invocation —
      lets structures keep checkpoint-held allocations out of the
      garbage count. *)
end

module Dcas : sig
  type 'a tagged = { v : 'a; tg : tag option }

  val plain : 'a -> 'a tagged

  val read : ctx -> 'a tagged Pmem.t -> 'a tagged
  (** Read for use as a CAS expectation: helps any in-flight detectable
      CAS (persist link, record outcome, untag) until the location is
      untagged.  Returns the exact stored box (physical equality). *)

  val known : handle -> seq:int -> slot:int -> bool option
  (** The outcome already recorded on this thread's board for (seq, slot),
      if any — consult after a traversal on replay, before deciding from
      the structure's current state. *)

  val run :
    handle ->
    seq:int ->
    slot:int ->
    'a tagged Pmem.t ->
    expect:'a tagged ->
    desired:'a ->
    bool
  (** Detectable CAS at call site [slot] of invocation [seq].  On success
      the location durably holds [desired] tagged (thread, seq, slot);
      commit the operation result (typically via {!Checkpoint.run}), then
      {!confirm}.  A replay whose success already has durable evidence
      (board, or own tag still in place) returns [true] without
      re-executing. *)

  val confirm : handle -> seq:int -> slot:int -> 'a tagged Pmem.t -> unit
  (** Untag after the result is durable.  Idempotent; a helper may have
      already done it. *)

  val help : ctx -> 'a tagged Pmem.t -> 'a tagged -> tag -> unit
  (** Help the tagged value [cur] found in the location: persist the
      link, record the winner's outcome, untag. *)
end
