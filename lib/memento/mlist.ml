(* List-mmt: a Harris-style sorted linked list built from the Memento
   primitives — every link is a [Dcas.tagged] field, every operation's
   result (and insert's prepared node) is a [Checkpoint].  Deletion marks
   the victim's own next-link via a detectable CAS (the linearization
   point); physical unlinking is plain CAS cleanup done in passing by
   later traversals, exactly as in the volatile Harris list.

   Detectability comes from composition, not from a phase machine: an
   operation is (checkpoint peek) → search → (board check) → decide or
   Dcas → commit result checkpoint → confirm.  A post-crash replay runs
   the {e same code} under the same invocation timestamp; whichever of
   those steps completed durably short-circuits. *)

module Make (K : Memento.KEY) = struct
  module Cp = Memento.Checkpoint
  module D = Memento.Dcas

  type key = Neg_inf | Key of K.t | Pos_inf

  type link = { succ : node option; marked : bool }
  (* [succ = None] only in the tail sentinel; [marked] logically deletes
     the node that owns the field *)

  and node = { key : key; line : Pmem.line; next : link D.tagged Pmem.t }

  type t = {
    heap : Pmem.heap;
    ctx : Memento.ctx;
    head : node;
    res : bool Cp.t;  (* per-thread operation result *)
    node_cp : node Cp.t;  (* per-thread prepared insert node *)
    new_pwb : Pstats.site;
    unlink_pwb : Pstats.site;
  }

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  let key_name = function
    | Neg_inf -> "-inf"
    | Pos_inf -> "+inf"
    | Key k -> K.to_string k

  let lt_key nk k =
    match nk with
    | Neg_inf -> true
    | Pos_inf -> false
    | Key a -> K.compare a k < 0

  let eq_key nk k = match nk with Key a -> K.compare a k = 0 | _ -> false

  let new_node heap ~key ~link =
    let line = Pmem.new_line ~name:("mnode:" ^ key_name key) heap in
    { key; line; next = Pmem.on_line line (D.plain link) }

  let create ?(prefix = "mlist") heap ~threads =
    let ctx = Memento.make ~prefix heap ~threads in
    let tail = new_node heap ~key:Pos_inf ~link:{ succ = None; marked = false } in
    let head =
      new_node heap ~key:Neg_inf ~link:{ succ = Some tail; marked = false }
    in
    Pmem.pwb ctx.Memento.s.init_pwb tail.line;
    Pmem.pwb ctx.Memento.s.init_pwb head.line;
    Pmem.psync ctx.Memento.s.init_sync;
    {
      heap;
      ctx;
      head;
      res = Cp.make ~name:(prefix ^ ".res") ctx;
      node_cp = Cp.make ~name:(prefix ^ ".node") ctx;
      new_pwb = Pstats.make Pstats.Pwb (prefix ^ ".new.pwb");
      unlink_pwb = Pstats.make Pstats.Pwb (prefix ^ ".unlink.pwb");
    }

  (* Harris traversal with Memento helping: every hop goes through
     [Dcas.read], which completes (persist, record, untag) any in-flight
     detectable CAS it meets — including this thread's own crashed one,
     which is what makes the post-search board check in the operations
     below sound.  Marked nodes are snipped in passing; a failed snip
     restarts from the head since the stale pred link can't be trusted. *)
  let rec search t k =
    let rec go pred pred_link curr =
      let curr_link = D.read t.ctx curr.next in
      if curr_link.D.v.marked then begin
        let snipped = D.plain { succ = curr_link.D.v.succ; marked = false } in
        if Pmem.cas pred.next pred_link snipped then begin
          Pmem.pwb_f t.unlink_pwb pred.next;
          match curr_link.D.v.succ with
          | None ->
              failwith
                "mlist: the +inf tail sentinel is marked — only nodes with \
                 real keys may be deleted"
          | Some next -> go pred snipped next
        end
        else search t k
      end
      else if lt_key curr.key k then
        match curr_link.D.v.succ with
        | None ->
            failwith
              (Printf.sprintf
                 "mlist: search for %s ran past the +inf tail sentinel — the \
                  tail's key compares greater than every search key"
                 (K.to_string k))
        | Some next -> go curr curr_link next
      else (pred, pred_link, curr, curr_link)
    in
    let head_link = D.read t.ctx t.head.next in
    match head_link.D.v.succ with
    | None ->
        failwith
          "mlist: head sentinel has no successor — the list must always \
           reach the +inf tail"
    | Some first -> go t.head head_link first

  let slot_insert = 0
  let slot_delete = 1
  let commit t h ~seq r = Cp.run t.res h ~seq (fun () -> r)

  let insert_at t h ~seq k =
    match Cp.peek t.res h ~seq with
    | Some r -> r
    | None ->
        (* The prepared node is itself a checkpoint: a replay reuses the
           same (already durable) box, so the CAS stays ABA-free and the
           crash can never leave two copies racing for the same slot.
           Checkpoint.run's psync also covers the node's pwb. *)
        let node =
          Cp.run t.node_cp h ~seq (fun () ->
              let nd =
                new_node t.heap ~key:(Key k)
                  ~link:{ succ = None; marked = false }
              in
              Pmem.pwb t.new_pwb nd.line;
              nd)
        in
        let rec attempt () =
          let pred, pred_link, curr, _ = search t k in
          (* Board check AFTER the search: the traversal helps (and
             records) this thread's own crashed CAS, so a replay whose
             success was evidenced only by a lingering tag lands here
             with the outcome on its board — before the key-equality
             test can mistake our own inserted node for a duplicate. *)
          match D.known h ~seq ~slot:slot_insert with
          | Some r -> commit t h ~seq r
          | None ->
              if eq_key curr.key k then commit t h ~seq false
              else begin
                Pmem.write node.next
                  (D.plain { succ = Some curr; marked = false });
                Pmem.pwb_f t.new_pwb node.next;
                if
                  D.run h ~seq ~slot:slot_insert pred.next ~expect:pred_link
                    ~desired:{ succ = Some node; marked = false }
                then begin
                  let r = commit t h ~seq true in
                  D.confirm h ~seq ~slot:slot_insert pred.next;
                  r
                end
                else attempt ()
              end
        in
        attempt ()

  let delete_at t h ~seq k =
    match Cp.peek t.res h ~seq with
    | Some r -> r
    | None ->
        let rec attempt () =
          let pred, pred_link, curr, curr_link = search t k in
          match D.known h ~seq ~slot:slot_delete with
          | Some r -> commit t h ~seq r
          | None ->
              if not (eq_key curr.key k) then commit t h ~seq false
              else if
                D.run h ~seq ~slot:slot_delete curr.next ~expect:curr_link
                  ~desired:{ succ = curr_link.D.v.succ; marked = true }
              then begin
                let r = commit t h ~seq true in
                D.confirm h ~seq ~slot:slot_delete curr.next;
                (* best-effort physical unlink; searches snip stragglers *)
                if
                  Pmem.cas pred.next pred_link
                    (D.plain { succ = curr_link.D.v.succ; marked = false })
                then Pmem.pwb_f t.unlink_pwb pred.next;
                r
              end
              else attempt ()
        in
        attempt ()

  (* Reads traverse without helping, reading through tags ([.v] is the
     linearized value): the Memento analogue of the read-only
     optimization.  The result still commits through the checkpoint, so
     a crashed find replays detectably. *)
  let find_at t h ~seq k =
    match Cp.peek t.res h ~seq with
    | Some r -> r
    | None ->
        let rec go nd =
          let link = (Pmem.read nd.next).D.v in
          match link.succ with
          | None ->
              failwith
                (Printf.sprintf
                   "mlist: find(%s) ran past the +inf tail sentinel — the \
                    tail's key compares greater than every search key"
                   (K.to_string k))
          | Some nxt ->
              if lt_key nxt.key k then go nxt
              else
                eq_key nxt.key k && not (Pmem.read nxt.next).D.v.marked
        in
        commit t h ~seq (go t.head)

  let run_at t h ~seq = function
    | Insert k -> insert_at t h ~seq k
    | Delete k -> delete_at t h ~seq k
    | Find k -> find_at t h ~seq k

  let exec t p =
    let h = Memento.my_handle t.ctx in
    run_at t h ~seq:(Memento.begin_op h) p

  let insert t k = exec t (Insert k)
  let delete t k = exec t (Delete k)
  let find t k = exec t (Find k)

  let next_invocation t =
    Memento.next_invocation (Memento.my_handle t.ctx)

  let recover t ~mseq p =
    let h = Memento.my_handle t.ctx in
    Memento.recover h ~mseq ~run:(fun ~seq -> run_at t h ~seq p)

  (* ---- introspection -------------------------------------------------- *)

  let to_list t =
    let rec go acc nd =
      let link = (Pmem.peek nd.next).D.v in
      let acc =
        match nd.key with
        | Key k when not link.marked -> k :: acc
        | _ -> acc
      in
      match link.succ with None -> List.rev acc | Some next -> go acc next
    in
    go [] t.head

  let length t = List.length (to_list t)

  (* Unlike Rlist, a quiescent Memento list may legitimately carry a
     lingering tag: a thread that crashed between its commit and its
     confirm leaves the tag for the next traversal to retire (the
     monotone board makes the late help harmless), so the check accepts
     tags and only enforces order and tail reachability. *)
  let check_invariants t =
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let rec go prev nd =
      let order_ok =
        match (prev.key, nd.key) with
        | Neg_inf, _ -> true
        | _, Neg_inf -> false
        | Pos_inf, _ -> false
        | _, Pos_inf -> true
        | Key a, Key b -> K.compare a b < 0
      in
      if not order_ok then
        err "order violation: %s before %s" (key_name prev.key)
          (key_name nd.key)
      else
        match (Pmem.peek nd.next).D.v.succ with
        | None ->
            if nd.key = Pos_inf then Ok ()
            else err "list does not end at the tail sentinel"
        | Some next -> go nd next
    in
    match (Pmem.peek t.head.next).D.v.succ with
    | None -> err "head sentinel has no successor"
    | Some first -> go t.head first

  (* Space-sweep enumeration: the chain (marked nodes and sentinels as
     empty payload, matching [to_list]), the per-thread result and
     prepared-node checkpoints, and the context's invocation counters and
     boards.  A prepared node held only by its checkpoint is accounted as
     checkpoint metadata until it is linked; snipped nodes are garbage by
     omission. *)
  let space t =
    let acc = ref [] in
    let push line cls = acc := (line, cls) :: !acc in
    let rec chain nd =
      let link = (Pmem.peek nd.next).D.v in
      push nd.line
        (match nd.key with
        | Key k when not link.marked -> `Payload [ k ]
        | _ -> `Payload []);
      match link.succ with None -> () | Some next -> chain next
    in
    chain t.head;
    List.iter (fun l -> push l (`Meta "checkpoint")) (Cp.lines t.res);
    List.iter (fun l -> push l (`Meta "checkpoint")) (Cp.lines t.node_cp);
    for i = 0 to t.ctx.Memento.threads - 1 do
      (match Cp.latest t.node_cp i with
      | Some nd -> push nd.line (`Meta "checkpoint")
      | None -> ());
      push (Pmem.line_of (Pvar.cell t.ctx.Memento.seqs i)) (`Meta "checkpoint");
      push (Pmem.line_of (Pvar.cell t.ctx.Memento.boards i)) (`Meta "board")
    done;
    List.rev !acc
end

module Int_key = struct
  type t = int

  let compare = Int.compare
  let to_string = string_of_int
end

module Int = Make (Int_key)
