(** List-mmt: a Harris-style sorted linked list composed from the
    Memento primitives ({!Memento.Checkpoint} + {!Memento.Dcas}).  The
    rival of [Structures.Rlist] (the Tracking transformation applied to
    the same list): same abstract set, same NVM substrate, different
    detectability mechanism. *)

module Make (K : Memento.KEY) : sig
  type t
  type pending = Insert of K.t | Delete of K.t | Find of K.t

  val create : ?prefix:string -> Pmem.heap -> threads:int -> t
  (** [prefix] (default ["mlist"]) names the persistence sites
      ([prefix ^ ".cp.pwb"], [prefix ^ ".new.pwb"], ...), so variants and
      negative controls can be disabled per-site by name. *)

  val insert : t -> K.t -> bool
  val delete : t -> K.t -> bool
  val find : t -> K.t -> bool

  val next_invocation : t -> int
  (** The invocation timestamp the calling thread's next operation will
      run under — recorded by the system as its durable pending token
      {e before} invoking the operation. *)

  val recover : t -> mseq:int -> pending -> bool
  (** Detectably finish (or first-execute) the crashed invocation whose
      pending token is [mseq]. *)

  val to_list : t -> K.t list
  val length : t -> int
  val check_invariants : t -> (unit, string) result

  val space :
    t -> (Pmem.line * [ `Payload of K.t list | `Meta of string ]) list
  (** Persistent-space enumeration ([Harness.Space]): the chain as
      payload (marked nodes and sentinels carry no key), checkpoints and
      prepared nodes as ["checkpoint"] metadata, invocation counters as
      ["checkpoint"] and CAS boards as ["board"].  Snipped nodes are
      garbage by omission. *)
end

module Int_key : Memento.KEY with type t = int
module Int : module type of Make (Int_key)
