type t = {
  mutable cache_hit : float;
  mutable cache_miss : float;
  mutable write_hit : float;
  mutable write_miss : float;
  mutable cas_base : float;
  mutable cas_contended : float;
  mutable pwb_issue : float;
  mutable pwb_accept : float;
  mutable pwb_latency : float;
  mutable pwb_steal : float;
  mutable pwb_shared : float;
  mutable pwb_inflight_stall : float;
  mutable pfence_base : float;
  mutable psync_base : float;
  mutable alloc : float;
  mutable op_overhead : float;
  mutable cas_drains_wb : bool;
}

(* Calibrated against published Optane DCPMM microbenchmarks: DRAM-class
   cache behaviour, ~100-300ns flush-to-media, locked instructions an
   order of magnitude above an L1 hit.  Only ratios matter for the shapes
   we reproduce. *)
let defaults () =
  {
    cache_hit = 1.5;
    cache_miss = 42.0;
    write_hit = 2.0;
    write_miss = 55.0;
    cas_base = 18.0;
    cas_contended = 85.0;
    pwb_issue = 14.0;
    pwb_accept = 35.0;
    pwb_latency = 170.0;
    pwb_steal = 1600.0;
    pwb_shared = 70.0;
    pwb_inflight_stall = 300.0;
    pfence_base = 4.0;
    psync_base = 7.0;
    alloc = 9.0;
    op_overhead = 25.0;
    cas_drains_wb = true;
  }

(* The active table is domain-local: concurrent simulations on separate
   domains (Harness.Parallel) tweak and restore their own tables without
   observing each other — a shared mutable table was exactly the kind of
   cross-run global this substrate must not have. *)
let dls : t Domain.DLS.key = Domain.DLS.new_key defaults
let current () = Domain.DLS.get dls

let assign dst src =
  dst.cache_hit <- src.cache_hit;
  dst.cache_miss <- src.cache_miss;
  dst.write_hit <- src.write_hit;
  dst.write_miss <- src.write_miss;
  dst.cas_base <- src.cas_base;
  dst.cas_contended <- src.cas_contended;
  dst.pwb_issue <- src.pwb_issue;
  dst.pwb_accept <- src.pwb_accept;
  dst.pwb_latency <- src.pwb_latency;
  dst.pwb_steal <- src.pwb_steal;
  dst.pwb_shared <- src.pwb_shared;
  dst.pwb_inflight_stall <- src.pwb_inflight_stall;
  dst.pfence_base <- src.pfence_base;
  dst.psync_base <- src.psync_base;
  dst.alloc <- src.alloc;
  dst.op_overhead <- src.op_overhead;
  dst.cas_drains_wb <- src.cas_drains_wb

let restore_defaults () = assign (current ()) (defaults ())

let copy t = { t with cache_hit = t.cache_hit }

let with_table tweak f =
  let cur = current () in
  let saved = copy cur in
  let table = defaults () in
  tweak table;
  assign cur table;
  Fun.protect ~finally:(fun () -> assign cur saved) f

let with_tweaked tweak f =
  let cur = current () in
  let saved = copy cur in
  let table = copy cur in
  tweak table;
  assign cur table;
  Fun.protect ~finally:(fun () -> assign cur saved) f

let is_default t =
  let d = defaults () in
  t.cache_hit = d.cache_hit && t.cache_miss = d.cache_miss
  && t.write_hit = d.write_hit && t.write_miss = d.write_miss
  && t.cas_base = d.cas_base && t.cas_contended = d.cas_contended
  && t.pwb_issue = d.pwb_issue && t.pwb_accept = d.pwb_accept
  && t.pwb_latency = d.pwb_latency && t.pwb_steal = d.pwb_steal
  && t.pwb_shared = d.pwb_shared
  && t.pwb_inflight_stall = d.pwb_inflight_stall
  && t.pfence_base = d.pfence_base && t.psync_base = d.psync_base
  && t.alloc = d.alloc && t.op_overhead = d.op_overhead
  && t.cas_drains_wb = d.cas_drains_wb

(* ---- mechanism knobs (causal profiler) -------------------------------- *)

type knob_kind = Scalar | Flag

(* Every ablatable mechanism of the model, as a named scale action: the
   causal profiler sweeps [set table factor] over scaling factors.  For
   [Flag] knobs only 0 (off) vs nonzero (on) is meaningful. *)
let knobs =
  [
    ("cache_hit", Scalar, fun t f -> t.cache_hit <- t.cache_hit *. f);
    ("cache_miss", Scalar, fun t f -> t.cache_miss <- t.cache_miss *. f);
    ("write_hit", Scalar, fun t f -> t.write_hit <- t.write_hit *. f);
    ("write_miss", Scalar, fun t f -> t.write_miss <- t.write_miss *. f);
    ("cas_base", Scalar, fun t f -> t.cas_base <- t.cas_base *. f);
    ( "cas_contended",
      Scalar,
      fun t f -> t.cas_contended <- t.cas_contended *. f );
    ("pwb_issue", Scalar, fun t f -> t.pwb_issue <- t.pwb_issue *. f);
    ("pwb_accept", Scalar, fun t f -> t.pwb_accept <- t.pwb_accept *. f);
    ("pwb_latency", Scalar, fun t f -> t.pwb_latency <- t.pwb_latency *. f);
    ("pwb_steal", Scalar, fun t f -> t.pwb_steal <- t.pwb_steal *. f);
    ("pwb_shared", Scalar, fun t f -> t.pwb_shared <- t.pwb_shared *. f);
    ( "pwb_inflight_stall",
      Scalar,
      fun t f -> t.pwb_inflight_stall <- t.pwb_inflight_stall *. f );
    ("pfence_base", Scalar, fun t f -> t.pfence_base <- t.pfence_base *. f);
    ("psync_base", Scalar, fun t f -> t.psync_base <- t.psync_base *. f);
    ("alloc", Scalar, fun t f -> t.alloc <- t.alloc *. f);
    ("op_overhead", Scalar, fun t f -> t.op_overhead <- t.op_overhead *. f);
    ("cas_drains_wb", Flag, fun t f -> t.cas_drains_wb <- f > 0.);
  ]

let knob_names = List.map (fun (n, _, _) -> n) knobs
let find_knob n = List.find_opt (fun (n', _, _) -> n = n') knobs
