(** Calibrated virtual-time cost table for the simulated multicore with
    NVMM.  All values are virtual nanoseconds.  The table is mutable so
    that benchmarks can ablate individual mechanisms (e.g. turn off the
    Intel behaviour where a CAS drains the store buffer, which is what
    makes psync almost free in the paper's measurements). *)

type t = {
  mutable cache_hit : float;  (** load from a line this thread has cached *)
  mutable cache_miss : float;  (** load of a line not cached by this thread *)
  mutable write_hit : float;  (** store to a line owned exclusively *)
  mutable write_miss : float;  (** store needing ownership transfer *)
  mutable cas_base : float;  (** CAS on an exclusively-owned line *)
  mutable cas_contended : float;  (** CAS needing ownership transfer *)
  mutable pwb_issue : float;  (** issuing a CLWB-style write-back *)
  mutable pwb_accept : float;
      (** time until the memory controller's write-pending queue accepts
          the write-back; with ADR this is the persistence point, and it
          is all a psync or a draining CAS has to wait for — which is why
          psyncs are nearly free on the paper's machine (§5) *)
  mutable pwb_latency : float;  (** time for a write-back to reach the media
          (governs same-line contention stalls, not fences) *)
  mutable pwb_steal : float;
      (** flushing a line that is dirty in {e another} core's cache: a
          dirty-miss transfer plus the media write — the paper's
          high-impact pwb *)
  mutable pwb_shared : float;
      (** flushing a line this thread wrote but that other threads also
          cache: the write-back invalidates their copies and they refetch
          — the paper's medium-impact pwbs *)
  mutable pwb_inflight_stall : float;
      (** extra penalty when flushing a line that already has an in-flight
          write-back from another thread (repeated invalidate + refetch) *)
  mutable pfence_base : float;
  mutable psync_base : float;
  mutable alloc : float;  (** constructing a fresh cache line *)
  mutable op_overhead : float;  (** fixed per data-structure operation *)
  mutable cas_drains_wb : bool;
      (** Intel store-buffer behaviour: a CAS waits for, and thereby
          completes, the thread's outstanding write-backs (§5). *)
}

val current : unit -> t
(** The active cost table used by {!Pmem}.  Domain-local: each domain
    owns an independent table (initialized to the defaults), so parallel
    campaigns can ablate or scale costs without cross-domain leaks.

    Identity guarantee: this returns the domain's {e unique} table —
    {!with_table}/{!with_tweaked} mutate it in place and restore it, they
    never replace it — so the record may be cached domain-locally
    ({!Pmem}'s hot context relies on this). *)

val defaults : unit -> t
(** A fresh copy of the calibrated default table. *)

val restore_defaults : unit -> unit
(** Reset {!current} to the calibrated defaults. *)

val with_table : (t -> unit) -> (unit -> 'a) -> 'a
(** [with_table tweak f] applies [tweak] to a copy of the defaults,
    installs it, runs [f], and restores the previous table. *)

val with_tweaked : (t -> unit) -> (unit -> 'a) -> 'a
(** Like {!with_table} but [tweak] is applied to a copy of the
    {e current} table rather than the defaults, so tweaks compose: the
    causal profiler's mechanism sweeps must not silently reset an outer
    ablation. *)

val is_default : t -> bool
(** Whether a table equals the calibrated defaults, field for field —
    the leak check the sweep-hardening tests use. *)

(** {1 Mechanism knobs}

    Named scale actions over the table's fields, one per ablatable
    mechanism, for the causal profiler's what-if sweeps. *)

type knob_kind =
  | Scalar  (** a virtual-ns cost: any scaling factor is meaningful *)
  | Flag  (** a behaviour toggle: only 0 (off) vs nonzero (on) *)

val knobs : (string * knob_kind * (t -> float -> unit)) list
(** [(name, kind, scale)] per field; [scale table f] multiplies the field
    by [f] (or sets the flag to [f > 0.]). *)

val knob_names : string list
val find_knob : string -> (string * knob_kind * (t -> float -> unit)) option
