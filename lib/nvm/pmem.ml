exception Poisoned of string

let max_threads = 62

type trace_event =
  | Read of { tid : int; line : string; hit : bool }
  | Write of { tid : int; line : string; hit : bool; invalidated : int }
  | Cas of { tid : int; line : string; success : bool; invalidated : int }
  | Pwb of { tid : int; site : string; impact : Pstats.category }
  | Pfence of { tid : int; site : string }
  | Psync of { tid : int; site : string }

(* Observability hooks (see Harness.Trace and Harness.Metrics): events are
   constructed only when an observer is installed, so the disabled path is
   a ref read per hook.  [tracer] serializes (event tracing); [collector]
   aggregates (metrics); both may be active at once. *)
let tracer : (trace_event -> unit) option ref = ref None
let collector : (trace_event -> unit) option ref = ref None

let observing () = !tracer != None || !collector != None

let notify ev =
  (match !tracer with None -> () | Some f -> f ev);
  match !collector with None -> () | Some f -> f ev

let popcount n =
  let n = ref n and c = ref 0 in
  while !n <> 0 do
    n := !n land (!n - 1);
    incr c
  done;
  !c

let cur_tid () = if Sim.in_sim () then Sim.tid () else 0
let cur_now () = if Sim.in_sim () then Sim.now () else 0.

let check_tid tid =
  if tid < 0 || tid >= max_threads then
    invalid_arg (Printf.sprintf "Pmem: thread id %d out of range" tid)

(* ---- heaps, lines, fields -------------------------------------------- *)

type heap = {
  hname : string;
  track : bool;
  mutable resets : (unit -> unit) list;
  mutable metas : (unit -> unit) list;  (* clear cache metadata on crash *)
  mutable n_lines : int;
}

(* ---- machine-global state -------------------------------------------- *)

type wb_entry =
  | Apply of heap * (unit -> unit)
      (* complete this write-back; tagged with the owning heap so a
         heap-scoped crash ({!crash} [~scope:`Heap]) can resolve only
         the victim's entries *)
  | Fence

(* Per-thread queues of outstanding write-backs (the store buffer /
   write-pending queue).  Global, like real hardware: one per CPU, not
   per allocation region. *)
let pending : wb_entry Queue.t array =
  Array.init max_threads (fun _ -> Queue.create ())

(* Latest acceptance deadline among a thread's outstanding write-backs:
   with ADR, acceptance by the write-pending queue is the persistence
   point, so fences and draining CASes wait for acceptance only. *)
let wb_deadline : float array = Array.make max_threads neg_infinity

let reset_pending () =
  Array.iter Queue.clear pending;
  Array.fill wb_deadline 0 max_threads neg_infinity

type line = {
  lheap : heap;
  lname : string;
  mutable sharers : int;  (* bitmap of tids with a cached copy *)
  mutable owner : int;  (* tid that last took write ownership *)
  mutable wb_owner : int;  (* tid with an in-flight write-back; -1 = none *)
  mutable wb_until : float;  (* completion time of that write-back *)
  mutable persists : (unit -> unit) list;
      (* one per field: write back the field's current value.  Write-backs
         materialize the line's coherent content at completion time (like
         CLWB), never an issue-time snapshot — per-location durable state
         can only move forward. *)
}

type 'a persisted = Never | P of 'a

type 'a t = {
  line : line;
  mutable v : 'a;
  mutable durable : 'a persisted;
  mutable poisoned : bool;
}

let heap ?(track_for_crash = true) ?(name = "heap") () =
  { hname = name; track = track_for_crash; resets = []; metas = []; n_lines = 0 }

let lines_allocated h = h.n_lines

let new_line ?(name = "line") h =
  h.n_lines <- h.n_lines + 1;
  let line =
    {
      lheap = h;
      lname = name;
      sharers = 0;
      owner = -1;
      wb_owner = -1;
      wb_until = neg_infinity;
      persists = [];
    }
  in
  if h.track then
    h.metas <-
      (fun () ->
        line.sharers <- 0;
        line.owner <- -1;
        line.wb_owner <- -1;
        line.wb_until <- neg_infinity)
      :: h.metas;
  Sim.step Cost.current.alloc;
  line

let line_name l = l.lname

let on_line line v =
  let fld = { line; v; durable = Never; poisoned = false } in
  line.persists <- (fun () -> fld.durable <- P fld.v) :: line.persists;
  let h = line.lheap in
  if h.track then
    h.resets <-
      (fun () ->
        match fld.durable with
        | P p ->
            fld.v <- p;
            fld.poisoned <- false
        | Never -> fld.poisoned <- true)
      :: h.resets;
  fld

let alloc ?name h v = on_line (new_line ?name h) v
let line_of fld = fld.line

let bit tid = 1 lsl tid

let check fld =
  if fld.poisoned then raise (Poisoned fld.line.lname)

(* ---- volatile accesses with the coherence cost model ----------------- *)

let read fld =
  check fld;
  let tid = cur_tid () in
  check_tid tid;
  let line = fld.line in
  let c = Cost.current in
  let hit = line.sharers land bit tid <> 0 in
  line.sharers <- line.sharers lor bit tid;
  if observing () then notify (Read { tid; line = line.lname; hit });
  Sim.step (if hit then c.cache_hit else c.cache_miss);
  fld.v

let take_ownership line tid =
  line.owner <- tid;
  line.sharers <- bit tid

let write fld v =
  check fld;
  let tid = cur_tid () in
  check_tid tid;
  let line = fld.line in
  let c = Cost.current in
  let exclusive = line.owner = tid && line.sharers = bit tid in
  let others = line.sharers land lnot (bit tid) in
  take_ownership line tid;
  if observing () then
    notify
      (Write { tid; line = line.lname; hit = exclusive; invalidated = popcount others });
  Sim.step (if exclusive then c.write_hit else c.write_miss);
  fld.v <- v

(* Complete (persist) every outstanding write-back of [tid]. *)
let drain_queue tid =
  let q = pending.(tid) in
  while not (Queue.is_empty q) do
    match Queue.pop q with Apply (_, f) -> f () | Fence -> ()
  done;
  wb_deadline.(tid) <- neg_infinity

let cas fld expected desired =
  check fld;
  let tid = cur_tid () in
  check_tid tid;
  let line = fld.line in
  let c = Cost.current in
  let now = cur_now () in
  let base = if line.owner = tid then c.cas_base else c.cas_contended in
  (* Store serialization: a locked instruction waits for an in-flight
     write-back of the same line (the pwb-then-CAS pathology of §5)... *)
  let line_stall =
    if line.wb_owner >= 0 && line.wb_until > now then line.wb_until -. now
    else 0.
  in
  (* ...and, on Intel, for the whole store buffer, completing the
     thread's own outstanding write-backs as a side effect. *)
  let drain_stall =
    if c.cas_drains_wb then begin
      let stall = Float.max 0. (wb_deadline.(tid) -. now) in
      drain_queue tid;
      stall
    end
    else 0.
  in
  let others = line.sharers land lnot (bit tid) in
  take_ownership line tid;
  if line.wb_owner >= 0 && line.wb_until <= now then begin
    line.wb_owner <- -1;
    line.wb_until <- neg_infinity
  end;
  (* Switch on the static instruction cost only: the stall part depends
     on write-back deadlines, i.e. on the clocks, and letting it pick
     switch points would make schedule placement drift whenever the
     causal profiler scales a cost (a replayed tape would diverge).
     With a static basis, switch placement is a pure function of the
     instruction stream. *)
  Sim.step_as ~switch:base (base +. Float.max line_stall drain_stall);
  let success = fld.v == expected in
  if observing () then
    notify
      (Cas { tid; line = line.lname; success; invalidated = popcount others });
  if success then begin
    fld.v <- desired;
    true
  end
  else false

(* ---- persistence instructions ----------------------------------------- *)

(* The impact class of a pwb is determined by who last wrote the line:

   - flushing a line this thread itself wrote last, with nobody else
     caching it, is the cheap private/fresh case (Tracking's CP, RD,
     descriptor and new-node flushes);
   - flushing an own-written line that other threads also cache costs a
     bit more (Tracking's post-CAS flushes of list nodes);
   - flushing a line another thread wrote last requires a coherence fetch
     of foreign data plus an uncombinable media write — the paper's
     high-impact pwbs (Capsules-Opt's marked-node and target-neighborhood
     flushes; nearly every flush of the general transformation). *)
let classify line tid now =
  if line.wb_owner >= 0 && line.wb_owner <> tid && line.wb_until > now then
    Pstats.High
  else if line.owner >= 0 && line.owner <> tid then Pstats.High
  else if line.sharers land lnot (bit tid) <> 0 then Pstats.Medium
  else Pstats.Low

(* The causal profiler's virtual-speedup hook: every persistence
   instruction's charge is scaled by its site multiplier (pwbs also by
   the emergent-category multiplier of this execution's impact class),
   and the scheduling decision is taken on the {e static, unscaled} part
   of the cost ([Sim.step_as]) so a recorded schedule replays without
   divergence while costs are what-if scaled.  All multipliers default
   to 1.0, in which case this is exactly the unscaled model. *)

let pwb site line =
  if Pstats.enabled site then begin
    let tid = cur_tid () in
    check_tid tid;
    let c = Cost.current in
    let now = cur_now () in
    let impact = classify line tid now in
    Pstats.record site impact;
    if observing () then notify (Pwb { tid; site = Pstats.name site; impact });
    let m = Pstats.cost_mult site *. Pstats.category_mult impact in
    (* Flushing a line that is dirty in another cache, or that already has
       an in-flight write-back from another thread, pays the ping-pong
       penalty the paper associates with high-impact pwbs. *)
    let stall =
      if line.wb_owner >= 0 && line.wb_owner <> tid && line.wb_until > now
      then (line.wb_until -. now) +. c.pwb_inflight_stall
      else if line.owner >= 0 && line.owner <> tid then
        (* last written by another core: steal it before writing back *)
        c.pwb_steal
      else if line.sharers land lnot (bit tid) <> 0 then c.pwb_shared
      else 0.
    in
    let q = pending.(tid) in
    (* Bound the queue like a real write-pending queue: the oldest
       *write-back* has certainly completed once the queue is deep.
       Fences carry no payload, so pop through them until an Apply is
       actually completed — popping a bare Fence would silently drop the
       bound's invariant (and let fences accumulate unboundedly). *)
    if Queue.length q > 64 then begin
      let rec complete_oldest () =
        match Queue.pop q with
        | Apply (_, f) -> f ()
        | Fence -> if not (Queue.is_empty q) then complete_oldest ()
      in
      complete_oldest ()
    end;
    Queue.push
      (Apply (line.lheap, fun () -> List.iter (fun f -> f ()) line.persists))
      q;
    (* the line's media write-back completes late (contention stalls),
       but the persistence point — acceptance — is much earlier.  Both
       deadlines scale with the multiplier: a virtually-sped-up pwb also
       stalls later fences/CASes proportionally less. *)
    line.wb_owner <- tid;
    line.wb_until <- now +. (m *. c.pwb_latency);
    let accepted = now +. (m *. c.pwb_accept) in
    if accepted > wb_deadline.(tid) then wb_deadline.(tid) <- accepted;
    let cost = c.pwb_issue +. stall in
    Pstats.add_time site (m *. cost);
    Pstats.add_category_time impact (m *. cost);
    (* switch on the static issue cost: see the CAS path *)
    Sim.step_as ~switch:c.pwb_issue (m *. cost)
  end

let pwb_f site fld = pwb site fld.line

let pfence site =
  if Pstats.enabled site then begin
    let tid = cur_tid () in
    check_tid tid;
    Pstats.record_fence site;
    if observing () then notify (Pfence { tid; site = Pstats.name site });
    Queue.push Fence pending.(tid);
    let m = Pstats.cost_mult site in
    let cost = Cost.current.pfence_base in
    Pstats.add_time site (m *. cost);
    Sim.step_as ~switch:cost (m *. cost)
  end

let psync site =
  if Pstats.enabled site then begin
    let tid = cur_tid () in
    check_tid tid;
    Pstats.record_fence site;
    if observing () then notify (Psync { tid; site = Pstats.name site });
    let now = cur_now () in
    let stall = Float.max 0. (wb_deadline.(tid) -. now) in
    drain_queue tid;
    let m = Pstats.cost_mult site in
    let cost = Cost.current.psync_base +. stall in
    Pstats.add_time site (m *. cost);
    (* switch on the static base cost: see the CAS path *)
    Sim.step_as ~switch:Cost.current.psync_base (m *. cost)
  end

(* ---- crashes ----------------------------------------------------------- *)

let resolve_queue_at_crash rng q =
  match rng with
  | None -> Queue.clear q
  | Some rng ->
      (* Fence-delimited segments complete in order: some prefix of
         segments completed fully, the next one partially (an arbitrary
         in-order subset), everything later not at all. *)
      let fresh_mode () =
        if Random.State.bool rng then `Full
        else if Random.State.bool rng then `Partial
        else `Drop
      in
      let mode = ref (fresh_mode ()) in
      while not (Queue.is_empty q) do
        match Queue.pop q with
        | Fence -> (
            match !mode with
            | `Full -> mode := fresh_mode ()
            | `Partial | `Drop -> mode := `Drop)
        | Apply (_, f) -> (
            match !mode with
            | `Full -> f ()
            | `Partial -> if Random.State.bool rng then f ()
            | `Drop -> ())
      done

(* Deterministic resolutions for the exploration harness: instead of an
   rng-drawn write-back subset, complete an explicit, replayable choice.
   [`Prefix k] completes each thread's k oldest write-backs in issue
   order — a prefix always respects fence ordering, so every such choice
   is a legal NVM state. *)
let resolve_queue_deterministic choice q =
  match choice with
  | `Drop -> Queue.clear q
  | `All ->
      Queue.iter (function Apply (_, f) -> f () | Fence -> ()) q;
      Queue.clear q
  | `Prefix k ->
      let applied = ref 0 in
      while not (Queue.is_empty q) do
        match Queue.pop q with
        | Fence -> ()
        | Apply (_, f) -> if !applied < k then begin f (); incr applied end
      done

(* Heap-scoped resolution: walk a thread's queue once, resolving only the
   victim heap's write-backs through [on_victim] and preserving every
   other entry — fences included — in issue order.  Fences survive (they
   still order the remaining entries, which belong to live structures)
   but they also advance the victim resolver's segment state: fence
   ordering is a per-thread property, not a per-heap one, so a victim
   write-back issued after a fence may only persist if the fence's
   predecessors did. *)
let resolve_queue_scoped h on_victim q =
  let keep = Queue.create () in
  while not (Queue.is_empty q) do
    match Queue.pop q with
    | Apply (hp, f) when hp == h -> on_victim (`Apply f)
    | Fence as e ->
        on_victim `Fence;
        Queue.push e keep
    | Apply _ as e -> Queue.push e keep
  done;
  Queue.transfer keep q

(* Per-queue resolver closures mirroring the machine-wide resolvers'
   semantics on the victim-entry subsequence. *)
let victim_resolver_rng rng =
  match rng with
  | None -> fun _ -> ()
  | Some rng ->
      let fresh_mode () =
        if Random.State.bool rng then `Full
        else if Random.State.bool rng then `Partial
        else `Drop
      in
      let mode = ref (fresh_mode ()) in
      fun ev ->
        match ev with
        | `Fence -> (
            match !mode with
            | `Full -> mode := fresh_mode ()
            | `Partial | `Drop -> mode := `Drop)
        | `Apply f -> (
            match !mode with
            | `Full -> f ()
            | `Partial -> if Random.State.bool rng then f ()
            | `Drop -> ())

let victim_resolver_deterministic choice =
  match choice with
  | `Drop -> fun _ -> ()
  | `All -> ( function `Apply f -> f () | `Fence -> ())
  | `Prefix k ->
      let applied = ref 0 in
      fun ev ->
        match ev with
        | `Fence -> ()
        | `Apply f -> if !applied < k then begin f (); incr applied end

let crash ?rng ?resolution ?(scope = `Machine) h =
  (match scope with
  | `Machine ->
      (match resolution with
      | Some choice -> Array.iter (resolve_queue_deterministic choice) pending
      | None -> Array.iter (resolve_queue_at_crash rng) pending);
      Array.fill wb_deadline 0 max_threads neg_infinity
  | `Heap ->
      (* Survivors' pending write-backs are untouched, so their
         acceptance deadlines stay meaningful: leave [wb_deadline]
         alone.  Keeping a (now possibly stale) deadline for a thread
         whose victim entries were resolved only makes its next fence
         conservatively slower, never incorrect. *)
      Array.iter
        (fun q ->
          let on_victim =
            match resolution with
            | Some choice -> victim_resolver_deterministic choice
            | None -> victim_resolver_rng rng
          in
          resolve_queue_scoped h on_victim q)
        pending);
  List.iter (fun f -> f ()) h.resets;
  List.iter (fun f -> f ()) h.metas

(* ---- introspection ----------------------------------------------------- *)

let system_persist fld v =
  check fld;
  fld.v <- v;
  fld.durable <- P v;
  Sim.step 0.

let peek fld = fld.v
let peek_persisted fld = match fld.durable with Never -> None | P p -> Some p
let is_poisoned fld = fld.poisoned

let outstanding_writebacks tid =
  check_tid tid;
  Queue.fold
    (fun n e -> match e with Apply _ -> n + 1 | Fence -> n)
    0 pending.(tid)

let max_outstanding_writebacks () =
  let m = ref 0 in
  for tid = 0 to max_threads - 1 do
    m := max !m (outstanding_writebacks tid)
  done;
  !m
