exception Poisoned of string

let max_threads = 62

type trace_event =
  | Read of { tid : int; line : string; hit : bool }
  | Write of { tid : int; line : string; hit : bool; invalidated : int }
  | Cas of { tid : int; line : string; success : bool; invalidated : int }
  | Pwb of { tid : int; site : string; impact : Pstats.category; line : string }
  | Pfence of { tid : int; site : string }
  | Psync of { tid : int; site : string }
  | Alloc of { tid : int; heap : string; line : string; site : string }

(* What finally happened to an issued write-back: completed by a drain
   (psync, a draining CAS, or queue-capacity completion), or resolved at
   a crash — persisted or dropped by the adversarial resolution. *)
type wb_fate = Drained | Crash_persisted | Crash_dropped


let popcount n =
  let n = ref n and c = ref 0 in
  while !n <> 0 do
    n := !n land (!n - 1);
    incr c
  done;
  !c

let check_tid tid =
  if tid < 0 || tid >= max_threads then
    invalid_arg (Printf.sprintf "Pmem: thread id %d out of range" tid)

(* ---- heaps, lines, fields -------------------------------------------- *)

(* What a field's crash-time reset did: nothing (volatile value already
   matched the durable one), reverted a newer volatile value to a stale
   durable one, or poisoned the field (no durable value ever existed).
   Both non-clean cases name the line so the crash report can render the
   durable-vs-volatile diff. *)
type reset_outcome = Rclean | Rreverted of string | Rpoisoned of string

type heap = {
  hname : string;
  track : bool;
  (* One closure per field: revert to the durable value on crash,
     reporting what that reset lost (if anything). *)
  mutable resets : (unit -> reset_outcome) list;
  mutable metas : (unit -> unit) list;  (* clear cache metadata on crash *)
  mutable n_lines : int;
}

(* ---- per-machine state: the instance ---------------------------------- *)

(* A pending write-back carries its provenance — the cache line it will
   persist and the persist site that issued it — so crash resolution can
   report exactly which line/site was dropped.  The two extra words are
   written once per pwb and never read on the hot path, so carrying them
   unconditionally costs nothing observable when forensics is off (and
   the virtual-time cost model is untouched either way). *)
type wb_entry =
  | Apply of { aheap : heap; aline : string; asite : string; apply : unit -> unit }
      (* complete this write-back; tagged with the owning heap so a
         heap-scoped crash ({!crash} [~scope:`Heap]) can resolve only
         the victim's entries *)
  | Fence

(* Per-crash forensic record, kept on the instance unconditionally
   (crashes are rare; the hot path never touches this). *)
type crash_fate = {
  cf_tid : int;
  cf_line : string;
  cf_site : string;
  cf_persisted : bool;
}

type crash_report = {
  cr_heap : string;
  cr_scope : [ `Machine | `Heap ];
  cr_resolution : string;  (* "rng" | "drop" | "all" | "prefix:k" *)
  cr_persisted : int;  (* write-backs completed by the resolution *)
  cr_dropped : int;  (* write-backs lost at the crash *)
  cr_fates : crash_fate list;  (* per tid ascending, issue order within *)
  cr_poisoned : string list;  (* never-persisted lines, capped *)
  cr_poisoned_total : int;  (* full count behind the cap *)
  cr_reverted : string list;
      (* lines whose volatile value was lost: reverted to an older
         durable value at this crash; capped like cr_poisoned *)
  cr_reverted_total : int;
}

let poisoned_cap = 64

(* Allocation-site convention: line names encode their site as a prefix —
   a per-key payload line is "node:5" (site "node"), a per-thread
   metadata cell is "rom.ann[3]" (site "rom.ann").  Deriving the site by
   stripping the ":key" suffix and the "[index]" subscript turns the
   existing naming discipline into provenance for free — no structure
   needed changing to gain allocation-site attribution. *)
let site_of_name name =
  let upto =
    match String.index_opt name ':' with
    | Some i -> i
    | None -> String.length name
  in
  let upto =
    match String.index_opt name '[' with
    | Some i when i < upto -> i
    | _ -> upto
  in
  if upto = String.length name then name else String.sub name 0 upto

(* Everything the space observer needs about one allocation, captured at
   the [new_line] call: where ([al_heap], [al_site]), which line
   ([al_id] is the per-heap allocation index — names recur, ids don't),
   and when/by whom ([al_time] virtual ns, [al_tid]; both 0 outside a
   simulation, e.g. for structure-creation allocations). *)
type alloc_info = {
  al_heap : string;
  al_id : int;
  al_line : string;
  al_site : string;
  al_tid : int;
  al_time : float;
}

(* One simulated machine's mutable persistency state, explicitly owned:
   the per-thread write-pending queues (the store buffer), the acceptance
   deadlines, and the two observability hooks.  An instance belongs to
   exactly one run at a time; the module-level API below is a thin shim
   over the calling domain's {e current} instance, so existing callers
   keep working while concurrent runs on separate domains (or an explicit
   [with_instance] scope) each own a machine outright. *)
type instance = {
  (* Per-thread queues of outstanding write-backs (the store buffer /
     write-pending queue).  Machine-wide, like real hardware: one per
     CPU, not per allocation region. *)
  pending : wb_entry Queue.t array;
  (* Latest acceptance deadline among a thread's outstanding write-backs:
     with ADR, acceptance by the write-pending queue is the persistence
     point, so fences and draining CASes wait for acceptance only. *)
  wb_deadline : float array;
  (* Observability hooks (see Harness.Trace and Harness.Metrics): events
     are constructed only when an observer is installed.  [tracer]
     serializes (event tracing); [collector] aggregates (metrics); both
     may be active at once. *)
  mutable itracer : (trace_event -> unit) option;
  mutable icollector : (trace_event -> unit) option;
  (* Third observer, for crash forensics (Harness.Forensics): sees the
     same event stream as tracer/collector, plus write-back fates via
     [iwb_obs].  Kept separate so forensic replay composes with tracing
     and metrics instead of stealing their hooks. *)
  mutable iforensics : (trace_event -> unit) option;
  mutable iwb_obs : (int -> string -> string -> wb_fate -> unit) option;
  (* Fourth observer, for persistent-space accounting (Harness.Space):
     fires once per [new_line] with the allocation's provenance.  Kept
     off the [observing] fast path — allocation is not a memory access —
     so the disabled cost is one physical-equality check per alloc. *)
  mutable ialloc : (alloc_info -> unit) option;
  (* Crash log, newest first; cleared by [reset_pending]. *)
  mutable icrashes : crash_report list;
}

let create_instance () =
  {
    pending = Array.init max_threads (fun _ -> Queue.create ());
    wb_deadline = Array.make max_threads neg_infinity;
    itracer = None;
    icollector = None;
    iforensics = None;
    iwb_obs = None;
    ialloc = None;
    icrashes = [];
  }

(* The domain's hot context: every simulated instruction consults the
   engine (tid/clock/step), the cost table, the persistence stats, and
   the current instance, and each module-level accessor is a separate
   domain-local fetch.  [Sim.handle], [Cost.current] and [Pstats.dstats]
   all return their domain's {e unique, never-replaced} value (tweaks
   mutate them in place), so one record fetched with a single DLS lookup
   can carry all four for the operation's duration.  The instance is the
   only component that is swapped ([with_instance]), which is why it is a
   mutable field here rather than its own key.

   This also fixes the cross-domain hazard of the old module-level
   state: the record, like each component, is per-domain, so concurrent
   simulations cannot corrupt each other's write-back queues. *)
type hot = {
  hsim : Sim.handle;
  hcost : Cost.t;
  hpst : Pstats.dstats;
  mutable hinst : instance;
}

let hot_key : hot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        hsim = Sim.handle ();
        hcost = Cost.current ();
        hpst = Pstats.dstats ();
        hinst = create_instance ();
      })

let hot () = Domain.DLS.get hot_key
let instance () = (hot ()).hinst

let with_instance inst f =
  let ht = hot () in
  let prev = ht.hinst in
  ht.hinst <- inst;
  Fun.protect ~finally:(fun () -> ht.hinst <- prev) f

let set_tracer t = (instance ()).itracer <- t
let set_collector c = (instance ()).icollector <- c

let set_forensics f =
  let inst = instance () in
  inst.iforensics <- f

let set_wb_observer f = (instance ()).iwb_obs <- f
let set_alloc_observer f = (instance ()).ialloc <- f
let crash_reports () = List.rev (instance ()).icrashes

let observing inst =
  inst.itracer != None || inst.icollector != None || inst.iforensics != None

let notify inst ev =
  (match inst.itracer with None -> () | Some f -> f ev);
  (match inst.icollector with None -> () | Some f -> f ev);
  match inst.iforensics with None -> () | Some f -> f ev

let reset_pending () =
  let inst = instance () in
  Array.iter Queue.clear inst.pending;
  Array.fill inst.wb_deadline 0 max_threads neg_infinity;
  inst.icrashes <- []

type line = {
  lheap : heap;
  lname : string;
  lid : int;  (* per-heap allocation index (1-based); names recur, ids don't *)
  lsite : string;  (* allocation site derived from the name (site_of_name) *)
  mutable sharers : int;  (* bitmap of tids with a cached copy *)
  mutable owner : int;  (* tid that last took write ownership *)
  mutable wb_owner : int;  (* tid with an in-flight write-back; -1 = none *)
  mutable wb_until : float;  (* completion time of that write-back *)
  mutable persists : (unit -> unit) list;
      (* one per field: write back the field's current value.  Write-backs
         materialize the line's coherent content at completion time (like
         CLWB), never an issue-time snapshot — per-location durable state
         can only move forward. *)
}

type 'a persisted = Never | P of 'a

type 'a t = {
  line : line;
  mutable v : 'a;
  mutable durable : 'a persisted;
  mutable poisoned : bool;
}

let heap ?(track_for_crash = true) ?(name = "heap") () =
  { hname = name; track = track_for_crash; resets = []; metas = []; n_lines = 0 }

let lines_allocated h = h.n_lines
let heap_name h = h.hname

let new_line ?(name = "line") h =
  h.n_lines <- h.n_lines + 1;
  let line =
    {
      lheap = h;
      lname = name;
      lid = h.n_lines;
      lsite = site_of_name name;
      sharers = 0;
      owner = -1;
      wb_owner = -1;
      wb_until = neg_infinity;
      persists = [];
    }
  in
  if h.track then
    h.metas <-
      (fun () ->
        line.sharers <- 0;
        line.owner <- -1;
        line.wb_owner <- -1;
        line.wb_until <- neg_infinity)
      :: h.metas;
  let ht = hot () in
  let inst = ht.hinst in
  (match inst.ialloc with
  | None -> ()
  | Some obs ->
      obs
        {
          al_heap = h.hname;
          al_id = line.lid;
          al_line = name;
          al_site = line.lsite;
          al_tid = Sim.h_tid ht.hsim;
          al_time = Sim.h_now ht.hsim;
        });
  if observing inst then
    notify inst
      (Alloc { tid = Sim.h_tid ht.hsim; heap = h.hname; line = name; site = line.lsite });
  Sim.h_step ht.hsim ht.hcost.alloc;
  line

let line_name l = l.lname
let line_id l = l.lid
let line_site l = l.lsite

let on_line line v =
  let fld = { line; v; durable = Never; poisoned = false } in
  line.persists <- (fun () -> fld.durable <- P fld.v) :: line.persists;
  let h = line.lheap in
  if h.track then
    h.resets <-
      (fun () ->
        match fld.durable with
        | P p ->
            (* [P fld.v] aliases the stored value, so physical inequality
               is an exact staleness test for both immediates and boxes. *)
            let stale = fld.v != p in
            fld.v <- p;
            fld.poisoned <- false;
            if stale then Rreverted fld.line.lname else Rclean
        | Never ->
            fld.poisoned <- true;
            Rpoisoned fld.line.lname)
      :: h.resets;
  fld

let alloc ?name h v = on_line (new_line ?name h) v
let line_of fld = fld.line

let bit tid = 1 lsl tid

let check fld =
  if fld.poisoned then raise (Poisoned fld.line.lname)

(* ---- volatile accesses with the coherence cost model ----------------- *)

let read fld =
  check fld;
  let ht = hot () in
  let tid = Sim.h_tid ht.hsim in
  check_tid tid;
  let line = fld.line in
  let c = ht.hcost in
  let hit = line.sharers land bit tid <> 0 in
  line.sharers <- line.sharers lor bit tid;
  let inst = ht.hinst in
  if observing inst then notify inst (Read { tid; line = line.lname; hit });
  Sim.h_step ht.hsim (if hit then c.cache_hit else c.cache_miss);
  fld.v

let take_ownership line tid =
  line.owner <- tid;
  line.sharers <- bit tid

let write fld v =
  check fld;
  let ht = hot () in
  let tid = Sim.h_tid ht.hsim in
  check_tid tid;
  let line = fld.line in
  let c = ht.hcost in
  let exclusive = line.owner = tid && line.sharers = bit tid in
  let others = line.sharers land lnot (bit tid) in
  take_ownership line tid;
  let inst = ht.hinst in
  if observing inst then
    notify inst
      (Write { tid; line = line.lname; hit = exclusive; invalidated = popcount others });
  Sim.h_step ht.hsim (if exclusive then c.write_hit else c.write_miss);
  fld.v <- v

(* Complete (persist) every outstanding write-back of [tid]. *)
let drain_queue inst tid =
  let q = inst.pending.(tid) in
  while not (Queue.is_empty q) do
    match Queue.pop q with
    | Apply a ->
        a.apply ();
        (match inst.iwb_obs with
        | None -> ()
        | Some obs -> obs tid a.aline a.asite Drained)
    | Fence -> ()
  done;
  inst.wb_deadline.(tid) <- neg_infinity

let cas fld expected desired =
  check fld;
  let ht = hot () in
  let tid = Sim.h_tid ht.hsim in
  check_tid tid;
  let line = fld.line in
  let c = ht.hcost in
  let inst = ht.hinst in
  let now = Sim.h_now ht.hsim in
  let base = if line.owner = tid then c.cas_base else c.cas_contended in
  (* Store serialization: a locked instruction waits for an in-flight
     write-back of the same line (the pwb-then-CAS pathology of §5)... *)
  let line_stall =
    if line.wb_owner >= 0 && line.wb_until > now then line.wb_until -. now
    else 0.
  in
  (* ...and, on Intel, for the whole store buffer, completing the
     thread's own outstanding write-backs as a side effect. *)
  let drain_stall =
    if c.cas_drains_wb then begin
      let stall = Float.max 0. (inst.wb_deadline.(tid) -. now) in
      drain_queue inst tid;
      stall
    end
    else 0.
  in
  let others = line.sharers land lnot (bit tid) in
  take_ownership line tid;
  if line.wb_owner >= 0 && line.wb_until <= now then begin
    line.wb_owner <- -1;
    line.wb_until <- neg_infinity
  end;
  (* Switch on the static instruction cost only: the stall part depends
     on write-back deadlines, i.e. on the clocks, and letting it pick
     switch points would make schedule placement drift whenever the
     causal profiler scales a cost (a replayed tape would diverge).
     With a static basis, switch placement is a pure function of the
     instruction stream. *)
  Sim.h_step_as ht.hsim ~switch:base (base +. Float.max line_stall drain_stall);
  let success = fld.v == expected in
  if observing inst then
    notify inst
      (Cas { tid; line = line.lname; success; invalidated = popcount others });
  if success then begin
    fld.v <- desired;
    true
  end
  else false

(* ---- persistence instructions ----------------------------------------- *)

(* The impact class of a pwb is determined by who last wrote the line:

   - flushing a line this thread itself wrote last, with nobody else
     caching it, is the cheap private/fresh case (Tracking's CP, RD,
     descriptor and new-node flushes);
   - flushing an own-written line that other threads also cache costs a
     bit more (Tracking's post-CAS flushes of list nodes);
   - flushing a line another thread wrote last requires a coherence fetch
     of foreign data plus an uncombinable media write — the paper's
     high-impact pwbs (Capsules-Opt's marked-node and target-neighborhood
     flushes; nearly every flush of the general transformation). *)
let classify line tid now =
  if line.wb_owner >= 0 && line.wb_owner <> tid && line.wb_until > now then
    Pstats.High
  else if line.owner >= 0 && line.owner <> tid then Pstats.High
  else if line.sharers land lnot (bit tid) <> 0 then Pstats.Medium
  else Pstats.Low

(* The causal profiler's virtual-speedup hook: every persistence
   instruction's charge is scaled by its site multiplier (pwbs also by
   the emergent-category multiplier of this execution's impact class),
   and the scheduling decision is taken on the {e static, unscaled} part
   of the cost ([Sim.step_as]) so a recorded schedule replays without
   divergence while costs are what-if scaled.  All multipliers default
   to 1.0, in which case this is exactly the unscaled model. *)

let pwb site line =
  let ht = hot () in
  let pst = ht.hpst in
  if Pstats.d_enabled pst site then begin
    let tid = Sim.h_tid ht.hsim in
    check_tid tid;
    let c = ht.hcost in
    let inst = ht.hinst in
    let now = Sim.h_now ht.hsim in
    let impact = classify line tid now in
    Pstats.d_record pst site impact;
    if observing inst then
      notify inst
        (Pwb { tid; site = Pstats.name site; impact; line = line.lname });
    let m = Pstats.d_cost_mult pst site *. Pstats.d_category_mult pst impact in
    (* Flushing a line that is dirty in another cache, or that already has
       an in-flight write-back from another thread, pays the ping-pong
       penalty the paper associates with high-impact pwbs. *)
    let stall =
      if line.wb_owner >= 0 && line.wb_owner <> tid && line.wb_until > now
      then (line.wb_until -. now) +. c.pwb_inflight_stall
      else if line.owner >= 0 && line.owner <> tid then
        (* last written by another core: steal it before writing back *)
        c.pwb_steal
      else if line.sharers land lnot (bit tid) <> 0 then c.pwb_shared
      else 0.
    in
    let q = inst.pending.(tid) in
    (* Bound the queue like a real write-pending queue: the oldest
       *write-back* has certainly completed once the queue is deep.
       Fences carry no payload, so pop through them until an Apply is
       actually completed — popping a bare Fence would silently drop the
       bound's invariant (and let fences accumulate unboundedly). *)
    if Queue.length q > 64 then begin
      let rec complete_oldest () =
        match Queue.pop q with
        | Apply a ->
            a.apply ();
            (match inst.iwb_obs with
            | None -> ()
            | Some obs -> obs tid a.aline a.asite Drained)
        | Fence -> if not (Queue.is_empty q) then complete_oldest ()
      in
      complete_oldest ()
    end;
    Queue.push
      (Apply
         {
           aheap = line.lheap;
           aline = line.lname;
           asite = Pstats.name site;
           apply = (fun () -> List.iter (fun f -> f ()) line.persists);
         })
      q;
    (* the line's media write-back completes late (contention stalls),
       but the persistence point — acceptance — is much earlier.  Both
       deadlines scale with the multiplier: a virtually-sped-up pwb also
       stalls later fences/CASes proportionally less. *)
    line.wb_owner <- tid;
    line.wb_until <- now +. (m *. c.pwb_latency);
    let accepted = now +. (m *. c.pwb_accept) in
    if accepted > inst.wb_deadline.(tid) then inst.wb_deadline.(tid) <- accepted;
    let cost = c.pwb_issue +. stall in
    Pstats.d_add_time pst site (m *. cost);
    Pstats.d_add_category_time pst impact (m *. cost);
    (* switch on the static issue cost: see the CAS path *)
    Sim.h_step_as ht.hsim ~switch:c.pwb_issue (m *. cost)
  end

let pwb_f site fld = pwb site fld.line

let pfence site =
  let ht = hot () in
  let pst = ht.hpst in
  if Pstats.d_enabled pst site then begin
    let tid = Sim.h_tid ht.hsim in
    check_tid tid;
    Pstats.d_record_fence pst site;
    let inst = ht.hinst in
    if observing inst then notify inst (Pfence { tid; site = Pstats.name site });
    Queue.push Fence inst.pending.(tid);
    let m = Pstats.d_cost_mult pst site in
    let cost = ht.hcost.pfence_base in
    Pstats.d_add_time pst site (m *. cost);
    Sim.h_step_as ht.hsim ~switch:cost (m *. cost)
  end

let psync site =
  let ht = hot () in
  let pst = ht.hpst in
  if Pstats.d_enabled pst site then begin
    let tid = Sim.h_tid ht.hsim in
    check_tid tid;
    Pstats.d_record_fence pst site;
    let inst = ht.hinst in
    if observing inst then notify inst (Psync { tid; site = Pstats.name site });
    let now = Sim.h_now ht.hsim in
    let stall = Float.max 0. (inst.wb_deadline.(tid) -. now) in
    drain_queue inst tid;
    let m = Pstats.d_cost_mult pst site in
    let c = ht.hcost in
    let cost = c.psync_base +. stall in
    Pstats.d_add_time pst site (m *. cost);
    (* switch on the static base cost: see the CAS path *)
    Sim.h_step_as ht.hsim ~switch:c.psync_base (m *. cost)
  end

(* ---- crashes ----------------------------------------------------------- *)

(* Every resolver reports each write-back's fate through [fate entry
   persisted] so the crash can log exactly which line/site survived. *)
let resolve_queue_at_crash rng ~fate q =
  match rng with
  | None ->
      Queue.iter (function Apply _ as e -> fate e false | Fence -> ()) q;
      Queue.clear q
  | Some rng ->
      (* Fence-delimited segments complete in order: some prefix of
         segments completed fully, the next one partially (an arbitrary
         in-order subset), everything later not at all. *)
      let fresh_mode () =
        if Random.State.bool rng then `Full
        else if Random.State.bool rng then `Partial
        else `Drop
      in
      let mode = ref (fresh_mode ()) in
      while not (Queue.is_empty q) do
        match Queue.pop q with
        | Fence -> (
            match !mode with
            | `Full -> mode := fresh_mode ()
            | `Partial | `Drop -> mode := `Drop)
        | Apply a as e -> (
            match !mode with
            | `Full ->
                a.apply ();
                fate e true
            | `Partial ->
                if Random.State.bool rng then begin
                  a.apply ();
                  fate e true
                end
                else fate e false
            | `Drop -> fate e false)
      done

(* Deterministic resolutions for the exploration harness: instead of an
   rng-drawn write-back subset, complete an explicit, replayable choice.
   [`Prefix k] completes each thread's k oldest write-backs in issue
   order — a prefix always respects fence ordering, so every such choice
   is a legal NVM state. *)
let resolve_queue_deterministic choice ~fate q =
  match choice with
  | `Drop ->
      Queue.iter (function Apply _ as e -> fate e false | Fence -> ()) q;
      Queue.clear q
  | `All ->
      Queue.iter
        (function
          | Apply a as e ->
              a.apply ();
              fate e true
          | Fence -> ())
        q;
      Queue.clear q
  | `Prefix k ->
      let applied = ref 0 in
      while not (Queue.is_empty q) do
        match Queue.pop q with
        | Fence -> ()
        | Apply a as e ->
            if !applied < k then begin
              a.apply ();
              incr applied;
              fate e true
            end
            else fate e false
      done

(* Heap-scoped resolution: walk a thread's queue once, resolving only the
   victim heap's write-backs through [on_victim] and preserving every
   other entry — fences included — in issue order.  Fences survive (they
   still order the remaining entries, which belong to live structures)
   but they also advance the victim resolver's segment state: fence
   ordering is a per-thread property, not a per-heap one, so a victim
   write-back issued after a fence may only persist if the fence's
   predecessors did. *)
let resolve_queue_scoped h on_victim q =
  let keep = Queue.create () in
  while not (Queue.is_empty q) do
    match Queue.pop q with
    | Apply a as e when a.aheap == h -> on_victim e
    | Fence as e ->
        on_victim e;
        Queue.push e keep
    | Apply _ as e -> Queue.push e keep
  done;
  Queue.transfer keep q

(* Per-queue resolver closures mirroring the machine-wide resolvers'
   semantics on the victim-entry subsequence. *)
let victim_resolver_rng rng ~fate =
  match rng with
  | None -> (
      function Apply _ as e -> fate e false | Fence -> ())
  | Some rng ->
      let fresh_mode () =
        if Random.State.bool rng then `Full
        else if Random.State.bool rng then `Partial
        else `Drop
      in
      let mode = ref (fresh_mode ()) in
      fun ev ->
        match ev with
        | Fence -> (
            match !mode with
            | `Full -> mode := fresh_mode ()
            | `Partial | `Drop -> mode := `Drop)
        | Apply a as e -> (
            match !mode with
            | `Full ->
                a.apply ();
                fate e true
            | `Partial ->
                if Random.State.bool rng then begin
                  a.apply ();
                  fate e true
                end
                else fate e false
            | `Drop -> fate e false)

let victim_resolver_deterministic choice ~fate =
  match choice with
  | `Drop -> ( function Apply _ as e -> fate e false | Fence -> ())
  | `All -> (
      function
      | Apply a as e ->
          a.apply ();
          fate e true
      | Fence -> ())
  | `Prefix k ->
      let applied = ref 0 in
      fun ev ->
        match ev with
        | Fence -> ()
        | Apply a as e ->
            if !applied < k then begin
              a.apply ();
              incr applied;
              fate e true
            end
            else fate e false

let resolution_label ?rng ?resolution () =
  match resolution with
  | Some `Drop -> "drop"
  | Some `All -> "all"
  | Some (`Prefix k) -> Printf.sprintf "prefix:%d" k
  | None -> ( match rng with Some _ -> "rng" | None -> "drop")

let crash ?rng ?resolution ?(scope = `Machine) h =
  let inst = instance () in
  (* Forensic bookkeeping: every resolved write-back's fate, in tid order
     (issue order within a tid), recorded unconditionally — this runs
     once per crash, never on the hot path. *)
  let fates = ref [] and n_persisted = ref 0 and n_dropped = ref 0 in
  let fate_for tid e persisted =
    (match e with
    | Apply a ->
        if persisted then incr n_persisted else incr n_dropped;
        fates :=
          {
            cf_tid = tid;
            cf_line = a.aline;
            cf_site = a.asite;
            cf_persisted = persisted;
          }
          :: !fates;
        (match inst.iwb_obs with
        | None -> ()
        | Some obs ->
            obs tid a.aline a.asite
              (if persisted then Crash_persisted else Crash_dropped))
    | Fence -> ())
  in
  (match scope with
  | `Machine ->
      (match resolution with
      | Some choice ->
          Array.iteri
            (fun tid q ->
              resolve_queue_deterministic choice ~fate:(fate_for tid) q)
            inst.pending
      | None ->
          Array.iteri
            (fun tid q -> resolve_queue_at_crash rng ~fate:(fate_for tid) q)
            inst.pending);
      Array.fill inst.wb_deadline 0 max_threads neg_infinity
  | `Heap ->
      (* Survivors' pending write-backs are untouched, so their
         acceptance deadlines stay meaningful: leave [wb_deadline]
         alone.  Keeping a (now possibly stale) deadline for a thread
         whose victim entries were resolved only makes its next fence
         conservatively slower, never incorrect. *)
      Array.iteri
        (fun tid q ->
          let on_victim =
            match resolution with
            | Some choice ->
                victim_resolver_deterministic choice ~fate:(fate_for tid)
            | None -> victim_resolver_rng rng ~fate:(fate_for tid)
          in
          resolve_queue_scoped h on_victim q)
        inst.pending);
  (* Revert every field to its durable value; fields with no durable
     value come up poisoned, fields whose volatile value was newer lose
     it, and both kinds of line are what a postmortem's durable-vs-
     volatile diff names. *)
  let pois = ref [] and rev = ref [] in
  List.iter
    (fun f ->
      match f () with
      | Rclean -> ()
      | Rpoisoned l -> pois := l :: !pois
      | Rreverted l -> rev := l :: !rev)
    h.resets;
  let dedup_capped acc =
    match !acc with
    | [] -> ([], 0)
    | lines ->
        let lines = List.rev lines in
        let seen = Hashtbl.create 16 in
        let total = ref 0 in
        let uniq =
          List.filter
            (fun l ->
              if Hashtbl.mem seen l then false
              else begin
                Hashtbl.add seen l ();
                incr total;
                true
              end)
            lines
        in
        let capped =
          if !total <= poisoned_cap then uniq
          else List.filteri (fun i _ -> i < poisoned_cap) uniq
        in
        (capped, !total)
  in
  let poisoned_capped, poisoned_total = dedup_capped pois in
  let reverted_capped, reverted_total = dedup_capped rev in
  List.iter (fun f -> f ()) h.metas;
  inst.icrashes <-
    {
      cr_heap = h.hname;
      cr_scope = scope;
      cr_resolution = resolution_label ?rng ?resolution ();
      cr_persisted = !n_persisted;
      cr_dropped = !n_dropped;
      cr_fates = List.rev !fates;
      cr_poisoned = poisoned_capped;
      cr_poisoned_total = poisoned_total;
      cr_reverted = reverted_capped;
      cr_reverted_total = reverted_total;
    }
    :: inst.icrashes

(* ---- introspection ----------------------------------------------------- *)

let system_persist fld v =
  check fld;
  fld.v <- v;
  fld.durable <- P v;
  Sim.step 0.

let peek fld = fld.v
let peek_persisted fld = match fld.durable with Never -> None | P p -> Some p
let is_poisoned fld = fld.poisoned

let outstanding_writebacks tid =
  check_tid tid;
  Queue.fold
    (fun n e -> match e with Apply _ -> n + 1 | Fence -> n)
    0 (instance ()).pending.(tid)

let max_outstanding_writebacks () =
  let m = ref 0 in
  for tid = 0 to max_threads - 1 do
    m := max !m (outstanding_writebacks tid)
  done;
  !m
