(** Simulated byte-addressable non-volatile main memory with volatile
    caches, under explicit epoch persistency (paper §2):

    - {!pwb} issues an asynchronous write-back of a whole cache line;
    - {!pfence} orders preceding pwbs before subsequent ones;
    - {!psync} waits until all of the calling thread's write-backs reach
      the persistence domain;
    - a CAS additionally drains the thread's outstanding write-backs when
      {!Cost.t.cas_drains_wb} is set, modelling the Intel store-buffer
      behaviour the paper identifies as the reason psync is nearly free.

    Fields ({!type-t}) live on cache lines ({!type-line}); a line is the unit
    of coherence, of flushing, and of the low/medium/high classification
    of each executed pwb.  On {!crash}, every field reverts to its last
    persisted value; fields that were never persisted become {e poisoned}
    and fault on access, which is how missing-flush bugs surface.

    All accesses are single simulator steps, so they are atomic w.r.t.
    the interleaving — exactly the granularity of the paper's model
    (atomic read / write / CAS base objects). *)

exception Poisoned of string
(** Raised when reading or updating a field whose content was lost in a
    crash before ever being persisted. *)

val max_threads : int
(** Maximum logical threads supported by the sharer bitmaps (62). *)

(** {1 Observability} *)

type trace_event =
  | Read of { tid : int; line : string; hit : bool }
  | Write of { tid : int; line : string; hit : bool; invalidated : int }
      (** [hit] = the access stayed in this thread's cache (exclusive);
          [invalidated] = number of {e other} caches that held the line and
          lost it to this store. *)
  | Cas of { tid : int; line : string; success : bool; invalidated : int }
  | Pwb of { tid : int; site : string; impact : Pstats.category; line : string }
      (** [line] is the flushed cache line — the write-back's provenance,
          paired with the issuing persist [site]. *)
  | Pfence of { tid : int; site : string }
  | Psync of { tid : int; site : string }
  | Alloc of { tid : int; heap : string; line : string; site : string }
      (** A fresh cache line was allocated ({!new_line}/{!alloc}): owning
          heap, line name, and the allocation site derived from the name
          ({!site_of_name}). *)

type wb_fate = Drained | Crash_persisted | Crash_dropped
(** What finally happened to an issued write-back: [Drained] — completed
    by a psync, a draining CAS, or queue-capacity completion;
    [Crash_persisted] / [Crash_dropped] — resolved at a crash by the
    adversarial resolution. *)

val set_tracer : (trace_event -> unit) option -> unit
(** Observability hook (see [Harness.Trace]): when set, every memory
    access and persistence instruction is reported.  Events are only
    constructed when an observer is installed; the disabled path is one
    read per hook.  The hook belongs to the current {!type-instance}. *)

val set_collector : (trace_event -> unit) option -> unit
(** Second, independent observability hook (see [Harness.Metrics]).
    The tracer serializes events to a sink while the collector
    aggregates them; keeping them separate lets tracing and metrics run
    at once without clobbering each other's installation. *)

val set_forensics : (trace_event -> unit) option -> unit
(** Third, independent observability hook (see [Harness.Forensics]):
    same event stream as tracer and collector, kept separate so a
    forensic replay composes with tracing and metrics. *)

val set_wb_observer : (int -> string -> string -> wb_fate -> unit) option -> unit
(** Write-back fate hook, [obs tid line site fate]: fires once per issued
    write-back when it is completed by a drain or resolved at a crash.
    Zero cost when unset (one physical-equality check per drained
    entry). *)

type alloc_info = {
  al_heap : string;  (** owning heap's name *)
  al_id : int;  (** per-heap allocation index (1-based); unique where names recur *)
  al_line : string;  (** line name *)
  al_site : string;  (** allocation site, {!site_of_name} of the name *)
  al_tid : int;  (** allocating thread; 0 outside a simulation *)
  al_time : float;  (** virtual ns at allocation; 0 outside a simulation *)
}
(** Provenance of one cache-line allocation, as seen by the space
    observer. *)

val set_alloc_observer : (alloc_info -> unit) option -> unit
(** Fourth, independent observability hook (see [Harness.Space]): fires
    once per {!new_line} / {!alloc} with the allocation's provenance.
    Zero cost when unset (one physical-equality check per allocation);
    composes with tracer/collector/forensics. *)

val site_of_name : string -> string
(** Allocation site encoded in a line name: the prefix before the
    [":key"] suffix or ["[index]"] subscript — ["node:5"] → ["node"],
    ["rom.ann(3)"]-style ["rom.ann[3]"] → ["rom.ann"]. *)

(** {1 Crash forensics} *)

type crash_fate = {
  cf_tid : int;
  cf_line : string;
  cf_site : string;
  cf_persisted : bool;
}
(** One resolved write-back at a crash: issuing thread, flushed line,
    persist site, and whether the resolution completed it. *)

type crash_report = {
  cr_heap : string;  (** crashed heap's name *)
  cr_scope : [ `Machine | `Heap ];
  cr_resolution : string;  (** ["rng"], ["drop"], ["all"] or ["prefix:k"] *)
  cr_persisted : int;  (** write-backs the resolution completed *)
  cr_dropped : int;  (** write-backs lost at this crash *)
  cr_fates : crash_fate list;
      (** tid-ascending, issue order within a thread *)
  cr_poisoned : string list;
      (** distinct never-persisted lines after the reset (first
          {!cr_poisoned_total} up to a cap of 64), newest
          allocation first *)
  cr_poisoned_total : int;
  cr_reverted : string list;
      (** distinct lines whose volatile value was lost at the crash —
          reverted to an older durable value (the other half of the
          durable-vs-volatile diff); capped like {!cr_poisoned} *)
  cr_reverted_total : int;
}
(** The forensic record of one {!crash}: which write-backs the
    adversarial resolution persisted vs dropped, which lines came up
    poisoned, and which reverted to stale durable values.  Recorded
    unconditionally — crashes are rare and this never touches the hot
    path. *)

val crash_reports : unit -> crash_report list
(** Every crash of the current instance since the last {!reset_pending},
    oldest first. *)

(** {1 Instances}

    An {!type-instance} is one simulated machine's persistency state: the
    per-thread write-pending queues (store buffers), their acceptance
    deadlines, and the tracer/collector hooks.  Every operation in this
    module acts on the calling domain's {e current} instance — a default
    is created lazily per domain, so single-run programs never notice —
    and {!with_instance} rebinds it for an explicit scope.  Two
    concurrent simulations on separate domains (or on separate explicit
    instances) cannot observe each other's write-backs.

    Cache-line bookkeeping (sharers/owner/write-back state) lives on the
    lines themselves, which belong to per-run {!type-heap}s — it is
    per-run state already and needs no instance. *)

type instance

val create_instance : unit -> instance
(** A fresh machine: empty write-back queues, no deadlines, no hooks. *)

val instance : unit -> instance
(** The calling domain's current instance. *)

val with_instance : instance -> (unit -> 'a) -> 'a
(** [with_instance inst f] runs [f] with [inst] as the current instance,
    restoring the previous one on exit (exceptions included). *)

(** {1 Heaps} *)

type heap
(** An allocation region: the set of lines reset together by {!crash}. *)

val heap : ?track_for_crash:bool -> ?name:string -> unit -> heap
(** [track_for_crash] (default true) records a reset closure per field so
    {!crash} can restore it; disable for long throughput runs that never
    crash, to avoid unbounded growth. *)

val crash :
  ?rng:Random.State.t ->
  ?resolution:[ `Drop | `All | `Prefix of int ] ->
  ?scope:[ `Machine | `Heap ] ->
  heap ->
  unit
(** Crash affecting [heap]: outstanding write-backs are resolved — with
    [rng], each pfence-delimited segment may complete fully, partially
    (a random subset, in issue order) or not at all, respecting fence
    ordering; without [rng], all outstanding write-backs are dropped
    (the harshest adversary).  Then every tracked field of [heap]
    reverts to its persisted value or becomes poisoned, and [heap]'s
    cache metadata is cleared.

    [resolution] overrides the rng with a {e deterministic, replayable}
    write-back choice (used by the exploration harness to sweep
    adversarial subsets): [`Drop] drops everything, [`All] completes
    everything, [`Prefix k] completes each thread's [k] oldest
    write-backs in issue order — a prefix always respects fence ordering,
    so every choice is a legal NVM state.  No rng draw is consumed when
    [resolution] is given.

    [scope] (default [`Machine]) selects which write-backs the crash
    resolves.  [`Machine] is the whole-system crash described above:
    every thread's full queue is resolved and all acceptance deadlines
    reset.  [`Heap] models a shard-local failure (power domain per
    region, or a process owning one region dying): only write-backs of
    [heap]'s own lines are resolved — [`Prefix k] counts the victim's
    write-backs, per thread — while every other entry, fences included,
    survives in issue order and other heaps' pending persistence is
    untouched.  Fences still delimit the victim's in-order segments,
    since fence ordering is per thread, not per heap.  The field
    reset/poison step is identical in both scopes (it is already
    per-heap). *)

val lines_allocated : heap -> int
(** Occupancy counter: cache lines ever allocated from this heap (the
    simulated NVM never frees, so this is also current occupancy). *)

val heap_name : heap -> string

(** {1 Lines and fields} *)

type line

val new_line : ?name:string -> heap -> line
(** Allocate a fresh cache line (charged {!Cost.t.alloc}). *)

val line_name : line -> string

val line_id : line -> int
(** Per-heap allocation index (1-based): line names recur (two nodes for
    key 5 are both ["node:5"]), ids never do, so [(heap, id)] identifies
    an allocation exactly — the key of the space registry. *)

val line_site : line -> string
(** {!site_of_name} of the line's name, computed once at allocation. *)

type 'a t
(** A field of type ['a] residing on some line. *)

val on_line : line -> 'a -> 'a t
(** Add a field to a line.  The initial content is volatile: it is lost by
    a crash unless the line was flushed (exactly like a freshly allocated
    node on real NVMM). *)

val alloc : ?name:string -> heap -> 'a -> 'a t
(** [alloc h v] = a fresh field on its own fresh line. *)

val line_of : 'a t -> line

(** {1 Accesses (volatile, cache-modelled)} *)

val read : 'a t -> 'a
val write : 'a t -> 'a -> unit

val cas : 'a t -> 'a -> 'a -> bool
(** Compare-and-swap using physical equality, like hardware CAS on a
    pointer.  Fresh allocations guarantee ABA-freedom, matching the
    paper's assumption that the same value is never stored twice. *)

(** {1 Persistence instructions} *)

val pwb : Pstats.site -> line -> unit
val pwb_f : Pstats.site -> 'a t -> unit
(** Flush the line holding this field. *)

val pfence : Pstats.site -> unit
val psync : Pstats.site -> unit

(** {1 Introspection (tests and harness)} *)

val peek : 'a t -> 'a
(** Volatile value, no cost charged, no cache effect. *)

val peek_persisted : 'a t -> 'a option
(** Last persisted value; [None] if never persisted. *)

val is_poisoned : 'a t -> bool

val system_persist : 'a t -> 'a -> unit
(** Atomically (in one simulator step) write and persist a field, free of
    charge and uncounted.  This models {e system support}: state the
    runtime maintains durably on the thread's behalf, such as setting
    [CP_q := 0] just before an operation starts (paper §2, footnote 1).
    Not available to algorithms for their own data. *)

val outstanding_writebacks : int -> int
(** Number of pending (unsynced) write-back entries of a thread. *)

val max_outstanding_writebacks : unit -> int
(** Largest per-thread outstanding write-back count, over all threads —
    the exploration harness uses it to bound its [`Prefix] sweep: with
    [m] outstanding, [`Prefix k] for [k >= m] is equivalent to [`All]. *)

val reset_pending : unit -> unit
(** Drop all pending write-backs of all threads in the current instance
    and clear its crash log (between experiments). *)
