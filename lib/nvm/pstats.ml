type kind = Pwb | Pfence | Psync
type category = Low | Medium | High

(* A site is pure {e identity}: the code line's name, its instruction
   kind, and a dense integer id.  Identity is global — the same code line
   is the same site on every domain — and registration is mutex-guarded
   because structure factories register instance-scoped sites (e.g. the
   BST's per-instance flush sites) from whichever domain runs them. *)
type site = { id : int; name : string; kind : kind }

let mu = Mutex.create ()
let registry : (string, site) Hashtbl.t = Hashtbl.create 64
let ordered : site list ref = ref []
let n_sites = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let make kind name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some s ->
      if s.kind <> kind then
        invalid_arg (Printf.sprintf "Pstats.make: site %S re-registered with a different kind" name);
      s
  | None ->
      let s = { id = !n_sites; name; kind } in
      incr n_sites;
      Hashtbl.add registry name s;
      ordered := s :: !ordered;
      s

let name s = s.name
let kind s = s.kind
let find n = locked (fun () -> Hashtbl.find_opt registry n)
let sites () = locked (fun () -> List.rev !ordered)

(* ---- per-domain statistics -------------------------------------------- *)

(* Everything mutable — enabled flags, cost multipliers, execution counts,
   charged time — lives in flat per-domain arrays indexed by site id:
   concurrent campaigns on separate domains enable/scale/count without
   observing each other, and the hot recording paths ({!record},
   {!add_time}, the {!enabled} check on every pwb) are single unboxed
   array accesses instead of record-field chases. *)
type stats = {
  mutable cap : int;
  mutable enabled : bool array;
  mutable mult : float array;
  mutable n_low : int array;
  mutable n_medium : int array;
  mutable n_high : int array;
  mutable n_fence : int array;
  mutable t_ns : float array;
  cat_mult : float array;
  cat_time : float array;
}

let fresh () =
  {
    cap = 0;
    enabled = [||];
    mult = [||];
    n_low = [||];
    n_medium = [||];
    n_high = [||];
    n_fence = [||];
    t_ns = [||];
    cat_mult = [| 1.0; 1.0; 1.0 |];
    cat_time = [| 0.; 0.; 0. |];
  }

let dls : stats Domain.DLS.key = Domain.DLS.new_key fresh

let grow st want =
  let cap = max 16 (max want (2 * st.cap)) in
  let gb a d =
    let b = Array.make cap d in
    Array.blit a 0 b 0 st.cap;
    b
  in
  st.enabled <- gb st.enabled true;
  st.mult <- gb st.mult 1.0;
  st.n_low <- gb st.n_low 0;
  st.n_medium <- gb st.n_medium 0;
  st.n_high <- gb st.n_high 0;
  st.n_fence <- gb st.n_fence 0;
  st.t_ns <- gb st.t_ns 0.;
  st.cap <- cap

(* The domain's stats, grown to cover site [id]: a site registered on one
   domain may first be exercised on another whose arrays are shorter. *)
let stx id =
  let st = Domain.DLS.get dls in
  if id >= st.cap then grow st (id + 1);
  st

let enabled s = (stx s.id).enabled.(s.id)
let set_enabled s b = (stx s.id).enabled.(s.id) <- b

let set_all_enabled b =
  List.iter (fun s -> (stx s.id).enabled.(s.id) <- b) (sites ())

(* ---- causal-profiler cost multipliers --------------------------------- *)

let cost_mult s = (stx s.id).mult.(s.id)

let set_cost_mult s m =
  if m < 0. || Float.is_nan m then
    invalid_arg (Printf.sprintf "Pstats.set_cost_mult %s: bad multiplier" s.name);
  (stx s.id).mult.(s.id) <- m

let reset_cost_mults () =
  List.iter (fun s -> (stx s.id).mult.(s.id) <- 1.0) (sites ())

let cat_index = function Low -> 0 | Medium -> 1 | High -> 2

(* Emergent-category multipliers: applied to every executed pwb whose
   impact class (computed per execution by the memory model) matches, on
   top of the site multiplier. *)
let category_mult c = (Domain.DLS.get dls).cat_mult.(cat_index c)

let set_category_mult c m =
  if m < 0. || Float.is_nan m then invalid_arg "Pstats.set_category_mult";
  (Domain.DLS.get dls).cat_mult.(cat_index c) <- m

let reset_category_mults () =
  Array.fill (Domain.DLS.get dls).cat_mult 0 3 1.0

let all_multipliers_default () =
  let st = Domain.DLS.get dls in
  Array.for_all (fun m -> m = 1.0) st.cat_mult
  && List.for_all (fun s -> s.id >= st.cap || st.mult.(s.id) = 1.0) (sites ())

let set_kind_enabled k b =
  List.iter (fun s -> if s.kind = k then (stx s.id).enabled.(s.id) <- b) (sites ())

let record s cat =
  let st = stx s.id in
  match cat with
  | Low -> st.n_low.(s.id) <- st.n_low.(s.id) + 1
  | Medium -> st.n_medium.(s.id) <- st.n_medium.(s.id) + 1
  | High -> st.n_high.(s.id) <- st.n_high.(s.id) + 1

let record_fence s =
  let st = stx s.id in
  st.n_fence.(s.id) <- st.n_fence.(s.id) + 1

let add_time s ns =
  let st = stx s.id in
  st.t_ns.(s.id) <- st.t_ns.(s.id) +. ns

let site_time s = (stx s.id).t_ns.(s.id)

(* Per-category charged time (pwbs only), for the causal profiler's
   category rows. *)
let add_category_time c ns =
  let a = (Domain.DLS.get dls).cat_time in
  a.(cat_index c) <- a.(cat_index c) +. ns

let category_time c = (Domain.DLS.get dls).cat_time.(cat_index c)

type totals = {
  pwbs : int;
  pfences : int;
  psyncs : int;
  low : int;
  medium : int;
  high : int;
}

let totals () =
  List.fold_left
    (fun acc s ->
      let st = stx s.id in
      match s.kind with
      | Pwb ->
          let l = st.n_low.(s.id)
          and m = st.n_medium.(s.id)
          and h = st.n_high.(s.id) in
          {
            acc with
            pwbs = acc.pwbs + l + m + h;
            low = acc.low + l;
            medium = acc.medium + m;
            high = acc.high + h;
          }
      | Pfence -> { acc with pfences = acc.pfences + st.n_fence.(s.id) }
      | Psync -> { acc with psyncs = acc.psyncs + st.n_fence.(s.id) })
    { pwbs = 0; pfences = 0; psyncs = 0; low = 0; medium = 0; high = 0 }
    (sites ())

let reset () =
  let st = Domain.DLS.get dls in
  Array.fill st.n_low 0 st.cap 0;
  Array.fill st.n_medium 0 st.cap 0;
  Array.fill st.n_high 0 st.cap 0;
  Array.fill st.n_fence 0 st.cap 0;
  Array.fill st.t_ns 0 st.cap 0.;
  Array.fill st.cat_time 0 3 0.

(* Majority category with ties pinned toward the {e higher} impact class:
   a site observed 50/50 medium/high counts as high.  The profiler must
   not understate a site's worst observed behaviour, and an unspecified
   tie-break would make figure points depend on count parity. *)
let classify s =
  if s.kind <> Pwb then None
  else begin
    let st = stx s.id in
    let l = st.n_low.(s.id)
    and m = st.n_medium.(s.id)
    and h = st.n_high.(s.id) in
    if l = 0 && m = 0 && h = 0 then None
    else if h >= m && h >= l then Some High
    else if m >= l then Some Medium
    else Some Low
  end

let set_category_enabled ~classification cat b =
  List.iter
    (fun s ->
      if s.kind = Pwb && classification s = Some cat then
        (stx s.id).enabled.(s.id) <- b)
    (sites ())

let site_counts s =
  let st = stx s.id in
  (st.n_low.(s.id), st.n_medium.(s.id), st.n_high.(s.id))

let site_fences s = (stx s.id).n_fence.(s.id)

let pp_category ppf = function
  | Low -> Format.pp_print_string ppf "low"
  | Medium -> Format.pp_print_string ppf "medium"
  | High -> Format.pp_print_string ppf "high"

(* ---- hot-path accessors ------------------------------------------------
   One DLS fetch per operation instead of one per consultation (pwb makes
   six).  Each accessor keeps the lazy-grow check — a single compare — so
   a site first exercised on this domain is still safe whichever accessor
   touches it first. *)

type dstats = stats

let dstats () = Domain.DLS.get dls

let d_enabled st (s : site) =
  if s.id >= st.cap then grow st (s.id + 1);
  st.enabled.(s.id)

let d_record st (s : site) cat =
  if s.id >= st.cap then grow st (s.id + 1);
  match cat with
  | Low -> st.n_low.(s.id) <- st.n_low.(s.id) + 1
  | Medium -> st.n_medium.(s.id) <- st.n_medium.(s.id) + 1
  | High -> st.n_high.(s.id) <- st.n_high.(s.id) + 1

let d_record_fence st (s : site) =
  if s.id >= st.cap then grow st (s.id + 1);
  st.n_fence.(s.id) <- st.n_fence.(s.id) + 1

let d_cost_mult st (s : site) =
  if s.id >= st.cap then grow st (s.id + 1);
  st.mult.(s.id)

let d_category_mult st c = st.cat_mult.(cat_index c)

let d_add_time st (s : site) ns =
  if s.id >= st.cap then grow st (s.id + 1);
  st.t_ns.(s.id) <- st.t_ns.(s.id) +. ns

let d_add_category_time st c ns =
  st.cat_time.(cat_index c) <- st.cat_time.(cat_index c) +. ns
