type kind = Pwb | Pfence | Psync
type category = Low | Medium | High

type site = {
  id : int;
  name : string;
  kind : kind;
  mutable enabled : bool;
  mutable mult : float;  (* causal-profiler cost multiplier, default 1.0 *)
  mutable n_low : int;
  mutable n_medium : int;
  mutable n_high : int;
  mutable n_fence : int;
  mutable t_ns : float;  (* virtual ns charged at this site since reset *)
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 64
let ordered : site list ref = ref []
let next_id = ref 0

let make kind name =
  match Hashtbl.find_opt registry name with
  | Some s ->
      if s.kind <> kind then
        invalid_arg (Printf.sprintf "Pstats.make: site %S re-registered with a different kind" name);
      s
  | None ->
      let s =
        {
          id = !next_id;
          name;
          kind;
          enabled = true;
          mult = 1.0;
          n_low = 0;
          n_medium = 0;
          n_high = 0;
          n_fence = 0;
          t_ns = 0.;
        }
      in
      incr next_id;
      Hashtbl.add registry name s;
      ordered := s :: !ordered;
      s

let name s = s.name
let kind s = s.kind
let find n = Hashtbl.find_opt registry n
let enabled s = s.enabled
let set_enabled s b = s.enabled <- b
let sites () = List.rev !ordered

let set_all_enabled b = List.iter (fun s -> s.enabled <- b) (sites ())

(* ---- causal-profiler cost multipliers --------------------------------- *)

let cost_mult s = s.mult

let set_cost_mult s m =
  if m < 0. || Float.is_nan m then
    invalid_arg (Printf.sprintf "Pstats.set_cost_mult %s: bad multiplier" s.name);
  s.mult <- m

let reset_cost_mults () = List.iter (fun s -> s.mult <- 1.0) (sites ())

(* Emergent-category multipliers: applied to every executed pwb whose
   impact class (computed per execution by the memory model) matches, on
   top of the site multiplier. *)
let cat_mult = [| 1.0; 1.0; 1.0 |]

let cat_index = function Low -> 0 | Medium -> 1 | High -> 2

let category_mult c = cat_mult.(cat_index c)

let set_category_mult c m =
  if m < 0. || Float.is_nan m then invalid_arg "Pstats.set_category_mult";
  cat_mult.(cat_index c) <- m

let reset_category_mults () = Array.fill cat_mult 0 3 1.0

let all_multipliers_default () =
  Array.for_all (fun m -> m = 1.0) cat_mult
  && List.for_all (fun s -> s.mult = 1.0) (sites ())

let set_kind_enabled k b =
  List.iter (fun s -> if s.kind = k then s.enabled <- b) (sites ())

let record s cat =
  match cat with
  | Low -> s.n_low <- s.n_low + 1
  | Medium -> s.n_medium <- s.n_medium + 1
  | High -> s.n_high <- s.n_high + 1

let record_fence s = s.n_fence <- s.n_fence + 1
let add_time s ns = s.t_ns <- s.t_ns +. ns
let site_time s = s.t_ns

(* Per-category charged time (pwbs only), for the causal profiler's
   category rows. *)
let cat_time = [| 0.; 0.; 0. |]
let add_category_time c ns = cat_time.(cat_index c) <- cat_time.(cat_index c) +. ns
let category_time c = cat_time.(cat_index c)

type totals = {
  pwbs : int;
  pfences : int;
  psyncs : int;
  low : int;
  medium : int;
  high : int;
}

let totals () =
  List.fold_left
    (fun acc s ->
      match s.kind with
      | Pwb ->
          let n = s.n_low + s.n_medium + s.n_high in
          {
            acc with
            pwbs = acc.pwbs + n;
            low = acc.low + s.n_low;
            medium = acc.medium + s.n_medium;
            high = acc.high + s.n_high;
          }
      | Pfence -> { acc with pfences = acc.pfences + s.n_fence }
      | Psync -> { acc with psyncs = acc.psyncs + s.n_fence })
    { pwbs = 0; pfences = 0; psyncs = 0; low = 0; medium = 0; high = 0 }
    (sites ())

let reset () =
  List.iter
    (fun s ->
      s.n_low <- 0;
      s.n_medium <- 0;
      s.n_high <- 0;
      s.n_fence <- 0;
      s.t_ns <- 0.)
    (sites ());
  Array.fill cat_time 0 3 0.

(* Majority category with ties pinned toward the {e higher} impact class:
   a site observed 50/50 medium/high counts as high.  The profiler must
   not understate a site's worst observed behaviour, and an unspecified
   tie-break would make figure points depend on count parity. *)
let classify s =
  if s.kind <> Pwb then None
  else if s.n_low = 0 && s.n_medium = 0 && s.n_high = 0 then None
  else if s.n_high >= s.n_medium && s.n_high >= s.n_low then Some High
  else if s.n_medium >= s.n_low then Some Medium
  else Some Low

let set_category_enabled ~classification cat b =
  List.iter
    (fun s ->
      if s.kind = Pwb && classification s = Some cat then s.enabled <- b)
    (sites ())

let site_counts s = (s.n_low, s.n_medium, s.n_high)
let site_fences s = s.n_fence

let pp_category ppf = function
  | Low -> Format.pp_print_string ppf "low"
  | Medium -> Format.pp_print_string ppf "medium"
  | High -> Format.pp_print_string ppf "high"
