(** Persistence-instruction accounting, following the paper's methodology
    (§5): every pwb/pfence/psync in the source is a named {e site} (a code
    line).  Sites can be disabled individually or by category to rebuild
    the paper's persistence-free, no-psync, and category-removal variants,
    and every executed pwb is classified by the memory model into the
    paper's low / medium / high impact categories based on the sharing
    state of the flushed cache line.

    Site {e identity} (name, kind, id) is global and registration is
    thread-safe; everything mutable — enabled flags, cost multipliers,
    counts, charged time — is {e domain-local}, so concurrent campaigns
    on separate domains ({!Harness.Parallel}) configure and account
    independently. *)

type kind = Pwb | Pfence | Psync

type category = Low | Medium | High

type site

val make : kind -> string -> site
(** [make kind name] registers (or returns the existing) site.  Sites are
    global and keyed by name; create them once at module toplevel.
    Thread-safe: instance-scoped sites may be registered from worker
    domains. *)

val name : site -> string
val kind : site -> kind

val find : string -> site option
(** Look an already-registered site up by name (e.g. to disable one
    specific pwb — the harness' elided-flush negative controls). *)

val enabled : site -> bool
val set_enabled : site -> bool -> unit

val set_all_enabled : bool -> unit
val set_kind_enabled : kind -> bool -> unit
(** Enable/disable every site of a kind (e.g. all psyncs, as in Figs 3c/4c). *)

val set_category_enabled : classification:(site -> category option) -> category -> bool -> unit
(** Enable/disable all pwb sites whose classification matches, as in the
    category-removal experiments (Figs 3f/4f/5/6). *)

val cost_mult : site -> float
(** The site's causal-profiler cost multiplier (default [1.0]): {!Pmem}
    multiplies everything the instruction would charge (and, for pwbs,
    its acceptance/media deadlines) by this factor.  [0.] makes the
    instruction virtually free while keeping its semantics — the
    profiler's virtual-speedup knob, unlike {!set_enabled}[ false] which
    removes the instruction (and its durability effect) entirely. *)

val set_cost_mult : site -> float -> unit
(** @raise Invalid_argument on negative or NaN multipliers. *)

val reset_cost_mults : unit -> unit
(** Restore every site's multiplier to [1.0]. *)

val category_mult : category -> float
(** Emergent-category multiplier (default [1.0]): applied by {!Pmem} to
    every executed pwb whose per-execution impact class matches,
    {e multiplied} with the site's own multiplier.  Lets the profiler
    scale "all high-impact flushes, wherever they occur" without naming
    sites. *)

val set_category_mult : category -> float -> unit
val reset_category_mults : unit -> unit

val all_multipliers_default : unit -> bool
(** [true] iff every site and category multiplier is [1.0] — the
    leak-check used by tests and by sweep teardowns. *)

val record : site -> category -> unit
(** Count one executed pwb at [site] with its observed impact category. *)

val record_fence : site -> unit
(** Count one executed pfence or psync. *)

val add_time : site -> float -> unit
(** Account [ns] of charged virtual time to the site (called by {!Pmem}
    with the actually-charged, i.e. multiplier-scaled, cost). *)

val site_time : site -> float
(** Virtual ns charged at this site since the last {!reset} — the
    numerator of the causal profiler's "share of persistence time". *)

val add_category_time : category -> float -> unit
(** Account charged pwb time to its per-execution impact class. *)

val category_time : category -> float
(** Virtual ns charged to pwbs of this emergent impact class since the
    last {!reset}. *)

type totals = {
  pwbs : int;
  pfences : int;
  psyncs : int;
  low : int;
  medium : int;
  high : int;
}

val totals : unit -> totals

val reset : unit -> unit
(** Clear every site's execution counts and accounted time.  Enabled
    flags and cost multipliers are {e configuration}, not statistics:
    they survive [reset] (use {!set_all_enabled}/{!reset_cost_mults}/
    {!reset_category_mults} to restore them). *)

val classify : site -> category option
(** Majority observed category of a pwb site since the last {!reset};
    [None] if the site never executed or is not a pwb.  Ties are pinned
    toward the {e higher} impact class (a 50/50 medium/high site counts
    as high): the profiler must not understate a site's worst observed
    behaviour, and an unspecified tie-break would make repeated figure
    points depend on count parity. *)

val sites : unit -> site list
(** All registered sites, in registration order. *)

val site_counts : site -> int * int * int
(** Per-site (low, medium, high) execution counts since last {!reset}. *)

val site_fences : site -> int
(** Per-site pfence/psync execution count since last {!reset} (0 for
    pwb sites). *)

val pp_category : Format.formatter -> category -> unit

(** {2 Hot-path accessors}

    {!Pmem.pwb} consults this module up to six times per executed pwb
    (enabled, record, two multipliers, two time accounts), and each
    module-level accessor above pays one domain-local fetch.  A {!dstats}
    is the calling domain's statistics fetched {e once}; the [d_]*
    variants below are then plain array accesses.  Same contract as
    {!Sim.handle}: fetch at the top of an operation, never store one or
    move it across domains. *)

type dstats
(** The calling domain's mutable statistics (one domain-local fetch). *)

val dstats : unit -> dstats
(** Identity guarantee: returns the domain's {e unique} statistics value
    (grown and reset in place, never replaced), so it may be cached
    domain-locally ({!Pmem}'s hot context relies on this). *)

val d_enabled : dstats -> site -> bool
val d_record : dstats -> site -> category -> unit
val d_record_fence : dstats -> site -> unit
val d_cost_mult : dstats -> site -> float
val d_category_mult : dstats -> category -> float
val d_add_time : dstats -> site -> float -> unit
val d_add_category_time : dstats -> category -> float -> unit
