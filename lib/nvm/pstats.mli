(** Persistence-instruction accounting, following the paper's methodology
    (§5): every pwb/pfence/psync in the source is a named {e site} (a code
    line).  Sites can be disabled individually or by category to rebuild
    the paper's persistence-free, no-psync, and category-removal variants,
    and every executed pwb is classified by the memory model into the
    paper's low / medium / high impact categories based on the sharing
    state of the flushed cache line. *)

type kind = Pwb | Pfence | Psync

type category = Low | Medium | High

type site

val make : kind -> string -> site
(** [make kind name] registers (or returns the existing) site.  Sites are
    global and keyed by name; create them once at module toplevel. *)

val name : site -> string
val kind : site -> kind

val find : string -> site option
(** Look an already-registered site up by name (e.g. to disable one
    specific pwb — the harness' elided-flush negative controls). *)

val enabled : site -> bool
val set_enabled : site -> bool -> unit

val set_all_enabled : bool -> unit
val set_kind_enabled : kind -> bool -> unit
(** Enable/disable every site of a kind (e.g. all psyncs, as in Figs 3c/4c). *)

val set_category_enabled : classification:(site -> category option) -> category -> bool -> unit
(** Enable/disable all pwb sites whose classification matches, as in the
    category-removal experiments (Figs 3f/4f/5/6). *)

val record : site -> category -> unit
(** Count one executed pwb at [site] with its observed impact category. *)

val record_fence : site -> unit
(** Count one executed pfence or psync. *)

type totals = {
  pwbs : int;
  pfences : int;
  psyncs : int;
  low : int;
  medium : int;
  high : int;
}

val totals : unit -> totals
val reset : unit -> unit

val classify : site -> category option
(** Majority observed category of a pwb site since the last {!reset};
    [None] if the site never executed or is not a pwb. *)

val sites : unit -> site list
(** All registered sites, in registration order. *)

val site_counts : site -> int * int * int
(** Per-site (low, medium, high) execution counts since last {!reset}. *)

val pp_category : Format.formatter -> category -> unit
