exception Crashed
exception Step_limit
exception Not_in_run of string

type outcome =
  | All_done
  | Crashed_at of int

type trace_event =
  | Sched of { step : int; tid : int; clock : float }
  | Crash of { step : int }

type status = Done | Suspended

type fiber =
  | Thunk of (unit -> status)
  | Cont of (unit, status) Effect.Deep.continuation

(* A fiber value for unoccupied slots, so the slot table can be a plain
   (non-option) array: reading it is a bug caught by slot_tid = -1. *)
let dummy_fiber = Thunk (fun () -> Done)

type engine = {
  policy : [ `Perf | `Random ];
  rng : Random.State.t;
  clocks : float array;
  (* Min-heap of ready fibers for the perf policy, keyed by
     (clock, insertion seq); the race policy picks uniformly from the
     same arrays.  Kept as three parallel unboxed arrays — one float
     array, two int arrays — instead of an array of
     (float * int * int) tuples: enqueue/dequeue are the engine's
     hottest operations and the flat layout makes them allocation-free
     (no tuple box per scheduling decision). *)
  mutable ready_clock : float array;
  mutable ready_seq : int array;
  mutable ready_slot : int array;
  mutable ready_len : int;
  (* Slot table: parallel arrays again (tid, fiber) instead of
     [(int * fiber) option array] — enqueuing a fiber used to allocate a
     Some box and a tuple per suspension. [slot_tid.(s) = -1] marks a
     free slot; free slots are kept in a stack. *)
  mutable slot_tid : int array;
  mutable slot_fiber : fiber array;
  mutable free_slots : int array;
  mutable free_top : int;
  mutable seq : int;
  mutable steps : int;
  crash_at : int; (* -1 = never *)
  step_limit : int; (* -1 = unlimited *)
  mutable crashing : bool;
  mutable aborting : bool; (* step limit hit: tear every fiber down *)
  (* Replay: tids to pick at each random-policy scheduling decision,
     recorded by [record] in an earlier run.  A replay entry whose tid is
     not ready is a divergence: it is reported through [divergence] and
     the decision falls back to [choose]/the seeded rng.  Divergences
     desynchronize every later decision, so callers must treat any
     divergence as "this is not the recorded execution". *)
  replay : int array;
  mutable replay_pos : int;
  record : (int -> unit) option;
  divergence : (step:int -> want:int -> unit) option;
  (* External scheduling policy: decisions past the replay tape are
     delegated here instead of the rng.  [crashing] tells the chooser the
     run is only draining doomed fibers, whose order is semantically
     inert. *)
  choose : (crashing:bool -> int array -> int) option;
  (* Per-fiber fault injection: an exception delivered to one fiber at
     its next resumption, leaving every other fiber running — the
     primitive behind shard-local crashes (Harness.Store).  [pending_intr]
     is armed by [interrupt]; [intr_sched] holds the static at-dispatch
     schedule of [run ?interrupts], sorted by dispatch index. *)
  pending_intr : exn option array;
  intr_sched : (int * exn) list array;
  dispatch_counts : int array;
}

type ctx = {
  ctid : int;
  engine : engine;
  mutable pending_cost : float; (* perf-mode batched cost not yet yielded *)
  mutable since_yield : int;
}

(* All ambient engine state is domain-local: each OCaml 5 domain may host
   its own independent [run] (the parallel campaign driver,
   Harness.Parallel, runs one simulation per worker domain), and nothing
   one domain does may leak into another.  Module-level refs — the old
   representation — are shared across domains and would let concurrent
   runs observe each other's scheduler state. *)
type domain_state = {
  mutable cur : ctx option;
  mutable dtracer : (trace_event -> unit) option;
}

let dls : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { cur = None; dtracer = None })

let state () = Domain.DLS.get dls
let set_tracer t = (state ()).dtracer <- t

type _ Effect.t += Yield : unit Effect.t

(* ---- ready-queue operations ----------------------------------------- *)

(* Heap order: clock, ties broken by insertion sequence.  Slot ids never
   participate in the order, so slot numbering is unobservable. *)
let lt e i j =
  let ci = e.ready_clock.(i) and cj = e.ready_clock.(j) in
  ci < cj || (ci = cj && e.ready_seq.(i) < e.ready_seq.(j))

let swap e i j =
  let c = e.ready_clock.(i) in
  e.ready_clock.(i) <- e.ready_clock.(j);
  e.ready_clock.(j) <- c;
  let s = e.ready_seq.(i) in
  e.ready_seq.(i) <- e.ready_seq.(j);
  e.ready_seq.(j) <- s;
  let t = e.ready_slot.(i) in
  e.ready_slot.(i) <- e.ready_slot.(j);
  e.ready_slot.(j) <- t

let sift_up e i =
  let i = ref i in
  while !i > 0 && lt e !i ((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    swap e p !i;
    i := p
  done

let sift_down e i =
  let i = ref i in
  let continue_sift = ref true in
  while !continue_sift do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < e.ready_len && lt e l !m then m := l;
    if r < e.ready_len && lt e r !m then m := r;
    if !m = !i then continue_sift := false
    else begin
      swap e !m !i;
      i := !m
    end
  done

let heap_push e clock seq slot =
  let n = e.ready_len in
  if n = Array.length e.ready_clock then begin
    let cap = max 8 (2 * n) in
    let bc = Array.make cap 0. in
    Array.blit e.ready_clock 0 bc 0 n;
    e.ready_clock <- bc;
    let bs = Array.make cap 0 in
    Array.blit e.ready_seq 0 bs 0 n;
    e.ready_seq <- bs;
    let bt = Array.make cap 0 in
    Array.blit e.ready_slot 0 bt 0 n;
    e.ready_slot <- bt
  end;
  e.ready_clock.(n) <- clock;
  e.ready_seq.(n) <- seq;
  e.ready_slot.(n) <- slot;
  e.ready_len <- n + 1;
  if e.policy = `Perf then sift_up e n

(* Remove the entry at ready index [i], preserving the heap invariant in
   perf mode (replay can pull an arbitrary ready fiber, not just the
   clock minimum); returns the removed entry's slot. *)
let remove_at e i =
  let n = e.ready_len in
  assert (n > 0 && i < n);
  let slot = e.ready_slot.(i) in
  e.ready_len <- n - 1;
  if i < n - 1 then begin
    e.ready_clock.(i) <- e.ready_clock.(n - 1);
    e.ready_seq.(i) <- e.ready_seq.(n - 1);
    e.ready_slot.(i) <- e.ready_slot.(n - 1);
    if e.policy = `Perf then begin
      sift_down e i;
      sift_up e i
    end
  end;
  slot

let heap_pop_min e = remove_at e 0

let ready_index_of_tid e tid =
  let n = e.ready_len in
  let found = ref (-1) in
  for j = 0 to n - 1 do
    if !found < 0 && e.slot_tid.(e.ready_slot.(j)) = tid then found := j
  done;
  !found

(* The ready tids at this decision, in ascending order (for [choose]). *)
let ready_tids e =
  let n = e.ready_len in
  let tids = Array.make n (-1) in
  for j = 0 to n - 1 do
    let t = e.slot_tid.(e.ready_slot.(j)) in
    assert (t >= 0);
    tids.(j) <- t
  done;
  Array.sort compare tids;
  tids

(* Consume the next replay-tape entry, if any: [Some i] is the ready
   index of the recorded tid.  A recorded tid that is not ready is a
   divergence: it is reported and the decision falls back to the active
   policy — silently substituting a policy pick used to "replay" a
   different execution while claiming success. *)
let take_replay e =
  if e.replay_pos >= Array.length e.replay then None
  else begin
    let want = e.replay.(e.replay_pos) in
    e.replay_pos <- e.replay_pos + 1;
    let i = ready_index_of_tid e want in
    if i < 0 then begin
      (match e.divergence with
      | None -> ()
      | Some f -> f ~step:e.steps ~want);
      None
    end
    else Some i
  end

let pop_random e =
  let n = e.ready_len in
  assert (n > 0);
  let i =
    match e.choose with
    | Some f ->
        let tid = f ~crashing:e.crashing (ready_tids e) in
        let i = ready_index_of_tid e tid in
        if i < 0 then
          failwith
            (Printf.sprintf "Sim: choose picked tid %d, which is not ready"
               tid)
        else i
    | None -> Random.State.int e.rng n
  in
  remove_at e i

let enqueue e tid fiber =
  let slot =
    if e.free_top > 0 then begin
      e.free_top <- e.free_top - 1;
      e.free_slots.(e.free_top)
    end
    else begin
      let s = Array.length e.slot_tid in
      let cap = max 8 (2 * s) in
      let bt = Array.make cap (-1) in
      Array.blit e.slot_tid 0 bt 0 s;
      e.slot_tid <- bt;
      let bf = Array.make cap dummy_fiber in
      Array.blit e.slot_fiber 0 bf 0 s;
      e.slot_fiber <- bf;
      let bfree = Array.make cap 0 in
      e.free_slots <- bfree;
      for i = s + 1 to cap - 1 do
        bfree.(e.free_top) <- i;
        e.free_top <- e.free_top + 1
      done;
      s
    end
  in
  e.slot_tid.(slot) <- tid;
  e.slot_fiber.(slot) <- fiber;
  e.seq <- e.seq + 1;
  heap_push e e.clocks.(tid) e.seq slot

(* Pick the next fiber to dispatch; returns its slot — the caller reads
   [slot_tid]/[slot_fiber] and then frees the slot with [release]. *)
let dequeue e =
  let slot =
    match take_replay e with
    | Some i -> remove_at e i
    | None -> if e.policy = `Perf then heap_pop_min e else pop_random e
  in
  assert (e.slot_tid.(slot) >= 0);
  (match e.record with None -> () | Some f -> f e.slot_tid.(slot));
  slot

let release e slot =
  e.slot_tid.(slot) <- -1;
  e.slot_fiber.(slot) <- dummy_fiber;
  (* capacity of [free_slots] always equals the slot-table capacity, so
     the push cannot overflow *)
  e.free_slots.(e.free_top) <- slot;
  e.free_top <- e.free_top + 1

(* ---- public accessors ------------------------------------------------ *)

let in_sim () = (state ()).cur <> None

let ctx_exn op =
  match (state ()).cur with
  | Some c -> c
  | None -> raise (Not_in_run op)

let tid () = (ctx_exn "Sim.tid").ctid

let now () =
  let c = ctx_exn "Sim.now" in
  c.engine.clocks.(c.ctid) +. c.pending_cost

let random_state () = (ctx_exn "Sim.random_state").engine.rng

let steps_executed () =
  match (state ()).cur with Some c -> c.engine.steps | None -> 0

let interrupt ~tid exn =
  let c = ctx_exn "Sim.interrupt" in
  let e = c.engine in
  if tid < 0 || tid >= Array.length e.pending_intr then
    invalid_arg (Printf.sprintf "Sim.interrupt: tid %d out of range" tid);
  if tid = c.ctid then raise exn;
  e.pending_intr.(tid) <- Some exn

let dispatches ~tid =
  let c = ctx_exn "Sim.dispatches" in
  let e = c.engine in
  if tid < 0 || tid >= Array.length e.dispatch_counts then
    invalid_arg (Printf.sprintf "Sim.dispatches: tid %d out of range" tid);
  e.dispatch_counts.(tid)

(* The interrupt due for fiber [tid] at this dispatch, if any: an armed
   [interrupt] fires first, then the head of the static at-dispatch
   schedule once the fiber's dispatch count has reached it. *)
let due_interrupt e tid =
  match e.pending_intr.(tid) with
  | Some exn ->
      e.pending_intr.(tid) <- None;
      Some exn
  | None -> (
      match e.intr_sched.(tid) with
      | (at, exn) :: rest when e.dispatch_counts.(tid) >= at ->
          e.intr_sched.(tid) <- rest;
          Some exn
      | _ -> None)

let advance cost =
  match (state ()).cur with
  | None -> ()
  | Some c -> c.pending_cost <- c.pending_cost +. cost

(* In perf mode, cheap cache-hit accesses are batched: the clock advances
   but a scheduling point is only offered every [yield_stride] accesses or
   when the access was expensive.  Race mode always offers a switch so
   interleavings stay maximally adversarial. *)
let yield_stride = 16
let expensive_threshold = 10.0

(* [step_as ~switch cost] charges [cost] but takes the switch decision as
   if the cost were [switch].  The causal profiler's virtual-speedup hook
   (Harness.Causal) scales what a persistence instruction {e charges}
   without moving where scheduling points fall: otherwise a 0×-scaled pwb
   would stop yielding, every later decision would shift relative to the
   recorded schedule, and the replayed run would silently be a different
   interleaving. *)
let ctx_step_as c ~switch cost =
  c.pending_cost <- c.pending_cost +. cost;
  c.since_yield <- c.since_yield + 1;
  let must_switch =
    match c.engine.policy with
    | `Random -> true
    | `Perf -> switch >= expensive_threshold || c.since_yield >= yield_stride
  in
  if must_switch then begin
    c.since_yield <- 0;
    Effect.perform Yield
  end

let step_as ~switch cost =
  match (state ()).cur with
  | None -> ()
  | Some c -> ctx_step_as c ~switch cost

let step cost = step_as ~switch:cost cost

(* ---- hot-path handle --------------------------------------------------
   One DLS fetch amortized over the several engine consultations the
   memory model makes per simulated instruction (tid, clock, step).  The
   [domain_state] record is created once per domain and never replaced,
   so a handle stays valid on its domain; it must simply never cross
   domains (sim.mli). *)

type handle = domain_state

let handle () = state ()
let h_in_sim h = h.cur <> None
let h_tid h = match h.cur with Some c -> c.ctid | None -> 0

let h_now h =
  match h.cur with
  | Some c -> c.engine.clocks.(c.ctid) +. c.pending_cost
  | None -> 0.

let h_step_as h ~switch cost =
  match h.cur with None -> () | Some c -> ctx_step_as c ~switch cost

let h_step h cost = h_step_as h ~switch:cost cost

let mark_crashing st e =
  if not e.crashing then begin
    e.crashing <- true;
    match st.dtracer with
    | None -> ()
    | Some f -> f (Crash { step = e.steps })
  end

let request_crash () =
  let c = ctx_exn "Sim.request_crash" in
  mark_crashing (state ()) c.engine;
  raise Crashed

(* ---- the driver ------------------------------------------------------ *)

let run ?(policy = `Perf) ?(seed = 0) ?(crash_at = -1) ?(step_limit = -1)
    ?(schedule = [||]) ?record ?divergence ?choose ?(interrupts = [||]) bodies =
  (* The whole run executes on the calling domain: [st] can be fetched
     once and closed over.  One run per domain — concurrent runs live on
     separate domains with separate [domain_state]s. *)
  let st = state () in
  if st.cur <> None then
    failwith "Sim.run: nested runs are not supported (same domain)";
  let n = Array.length bodies in
  let intr_sched = Array.make (max n 1) [] in
  Array.iter
    (fun (tid, at, exn) ->
      if tid < 0 || tid >= n then
        invalid_arg (Printf.sprintf "Sim.run: interrupt tid %d out of range" tid);
      if at < 1 then
        invalid_arg "Sim.run: interrupt dispatch indices are 1-based";
      intr_sched.(tid) <-
        List.sort (fun (a, _) (b, _) -> compare a b) ((at, exn) :: intr_sched.(tid)))
    interrupts;
  let cap = max 8 (2 * n) in
  let e =
    {
      policy;
      (* The engine rng is a pure function of (seed, n): no state crosses
         runs or domains, so campaigns may execute work items in any
         order — or on any domain — and observe identical draws. *)
      rng = Random.State.make [| seed; 0x51ED; n |];
      clocks = Array.make (max n 1) 0.;
      ready_clock = Array.make cap 0.;
      ready_seq = Array.make cap 0;
      ready_slot = Array.make cap 0;
      ready_len = 0;
      slot_tid = Array.make cap (-1);
      slot_fiber = Array.make cap dummy_fiber;
      free_slots = Array.init cap (fun i -> cap - 1 - i);
      free_top = cap;
      seq = 0;
      steps = 0;
      crash_at;
      step_limit;
      crashing = false;
      aborting = false;
      replay = schedule;
      replay_pos = 0;
      record;
      divergence;
      choose;
      pending_intr = Array.make (max n 1) None;
      intr_sched;
      dispatch_counts = Array.make (max n 1) 0;
    }
  in
  let contexts =
    Array.init n (fun i ->
        { ctid = i; engine = e; pending_cost = 0.; since_yield = 0 })
  in
  let handler i : (unit, status) Effect.Deep.handler =
    {
      retc = (fun () -> Done);
      exnc = (fun exn -> match exn with Crashed -> Done | exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  let c = contexts.(i) in
                  e.clocks.(i) <- e.clocks.(i) +. c.pending_cost;
                  c.pending_cost <- 0.;
                  e.steps <- e.steps + 1;
                  (* Boundary convention (see sim.mli): a bound of n
                     fires at the n-th scheduling step — steps 1..n-1
                     complete normally, the n-th [step] call does not
                     return.  Both bounds use the same comparison so the
                     explorer's crash-point enumeration is exact. *)
                  if
                    e.aborting
                    || (e.step_limit >= 1 && e.steps >= e.step_limit)
                  then begin
                    (* Unwind this fiber here (its finalizers run);
                       [exnc] re-raises into the driver loop, which
                       tears the remaining fibers down before letting
                       Step_limit escape. *)
                    e.aborting <- true;
                    Effect.Deep.discontinue k Step_limit
                  end
                  else begin
                    if e.crash_at >= 1 && e.steps >= e.crash_at then
                      mark_crashing st e;
                    if e.crashing then Effect.Deep.discontinue k Crashed
                    else begin
                      enqueue e i (Cont k);
                      Suspended
                    end
                  end)
          | _ -> None);
    }
  in
  let start i () = Effect.Deep.match_with (fun () -> bodies.(i) i) () (handler i) in
  for i = 0 to n - 1 do
    enqueue e i (Thunk (start i))
  done;
  let rec loop () =
    if e.ready_len > 0 then begin
      let slot = dequeue e in
      let i = e.slot_tid.(slot) in
      let fiber = e.slot_fiber.(slot) in
      release e slot;
      if e.crashing then begin
        (match fiber with
        | Thunk _ -> () (* never started: nothing volatile to unwind *)
        | Cont k ->
            st.cur <- Some contexts.(i);
            ignore (Effect.Deep.discontinue k Crashed : status);
            st.cur <- None);
        loop ()
      end
      else begin
        st.cur <- Some contexts.(i);
        (match st.dtracer with
        | None -> ()
        | Some f ->
            f (Sched { step = e.steps; tid = i; clock = e.clocks.(i) }));
        e.dispatch_counts.(i) <- e.dispatch_counts.(i) + 1;
        (* Fault injection is delivered at a resumption only: a Thunk has
           not installed its handlers yet, so an exception raised into it
           would escape the whole run instead of reaching the fiber's own
           recovery path.  A due interrupt stays armed until the fiber
           next suspends. *)
        (match fiber with
        | Thunk f -> ignore (f () : status)
        | Cont k -> (
            match due_interrupt e i with
            | Some exn -> ignore (Effect.Deep.discontinue k exn : status)
            | None -> ignore (Effect.Deep.continue k () : status)));
        st.cur <- None;
        loop ()
      end
    end
  in
  (* An exception escaping a fiber (Step_limit, a test failure, ...) must
     not abandon the other suspended fibers undiscontinued: unwind each so
     their finalizers run, then re-raise. *)
  let teardown () =
    e.aborting <- true;
    while e.ready_len > 0 do
      let slot = dequeue e in
      let i = e.slot_tid.(slot) in
      let fiber = e.slot_fiber.(slot) in
      release e slot;
      match fiber with
      | Thunk _ -> () (* never started: nothing to unwind *)
      | Cont k ->
          st.cur <- Some contexts.(i);
          (try ignore (Effect.Deep.discontinue k Step_limit : status)
           with _ -> ());
          st.cur <- None
    done
  in
  Fun.protect
    ~finally:(fun () -> st.cur <- None)
    (fun () ->
      try loop ()
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        teardown ();
        Printexc.raise_with_backtrace exn bt);
  if e.crashing then Crashed_at e.steps else All_done
