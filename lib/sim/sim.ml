exception Crashed
exception Step_limit

type outcome =
  | All_done
  | Crashed_at of int

type trace_event =
  | Sched of { step : int; tid : int; clock : float }
  | Crash of { step : int }

(* Observability hook: when set, the engine reports every scheduling
   decision and the crash boundary.  The event is only constructed when a
   tracer is installed, so the disabled path costs one ref read. *)
let tracer : (trace_event -> unit) option ref = ref None

type status = Done | Suspended

type fiber =
  | Thunk of (unit -> status)
  | Cont of (unit, status) Effect.Deep.continuation

type engine = {
  policy : [ `Perf | `Random ];
  rng : Random.State.t;
  clocks : float array;
  (* Min-heap of (clock, insertion seq, slot) for the perf policy; the
     race policy picks uniformly from the same array. *)
  mutable ready : (float * int * int) array;
  mutable ready_len : int;
  mutable slots : (int * fiber) option array;
  mutable free_slots : int list;
  mutable seq : int;
  mutable steps : int;
  crash_at : int; (* -1 = never *)
  step_limit : int; (* -1 = unlimited *)
  mutable crashing : bool;
  mutable aborting : bool; (* step limit hit: tear every fiber down *)
  (* Replay: tids to pick at each random-policy scheduling decision,
     recorded by [record] in an earlier run.  A replay entry whose tid is
     not ready is a divergence: it is reported through [divergence] and
     the decision falls back to [choose]/the seeded rng.  Divergences
     desynchronize every later decision, so callers must treat any
     divergence as "this is not the recorded execution". *)
  replay : int array;
  mutable replay_pos : int;
  record : (int -> unit) option;
  divergence : (step:int -> want:int -> unit) option;
  (* External scheduling policy: decisions past the replay tape are
     delegated here instead of the rng.  [crashing] tells the chooser the
     run is only draining doomed fibers, whose order is semantically
     inert. *)
  choose : (crashing:bool -> int array -> int) option;
  (* Per-fiber fault injection: an exception delivered to one fiber at
     its next resumption, leaving every other fiber running — the
     primitive behind shard-local crashes (Harness.Store).  [pending_intr]
     is armed by [interrupt]; [intr_sched] holds the static at-dispatch
     schedule of [run ?interrupts], sorted by dispatch index. *)
  pending_intr : exn option array;
  intr_sched : (int * exn) list array;
  dispatch_counts : int array;
}

type ctx = {
  ctid : int;
  engine : engine;
  mutable pending_cost : float; (* perf-mode batched cost not yet yielded *)
  mutable since_yield : int;
}

let current : ctx option ref = ref None

type _ Effect.t += Yield : unit Effect.t

(* ---- ready-queue operations ----------------------------------------- *)

let entry_lt (c1, s1, _) (c2, s2, _) = c1 < c2 || (c1 = c2 && s1 < s2)

let sift_up e i =
  let a = e.ready in
  let i = ref i in
  while !i > 0 && entry_lt a.(!i) a.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = a.(p) in
    a.(p) <- a.(!i);
    a.(!i) <- tmp;
    i := p
  done

let sift_down e i =
  let a = e.ready in
  let i = ref i in
  let continue_sift = ref true in
  while !continue_sift do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let m = ref !i in
    if l < e.ready_len && entry_lt a.(l) a.(!m) then m := l;
    if r < e.ready_len && entry_lt a.(r) a.(!m) then m := r;
    if !m = !i then continue_sift := false
    else begin
      let tmp = a.(!m) in
      a.(!m) <- a.(!i);
      a.(!i) <- tmp;
      i := !m
    end
  done

let heap_push e entry =
  let n = e.ready_len in
  if n = Array.length e.ready then begin
    let bigger = Array.make (max 8 (2 * n)) (0., 0, 0) in
    Array.blit e.ready 0 bigger 0 n;
    e.ready <- bigger
  end;
  e.ready.(n) <- entry;
  e.ready_len <- n + 1;
  if e.policy = `Perf then sift_up e n

(* Remove the entry at ready index [i], preserving the heap invariant in
   perf mode (replay can pull an arbitrary ready fiber, not just the
   clock minimum). *)
let remove_at e i =
  let a = e.ready in
  let n = e.ready_len in
  assert (n > 0 && i < n);
  let entry = a.(i) in
  e.ready_len <- n - 1;
  if i < n - 1 then begin
    a.(i) <- a.(n - 1);
    if e.policy = `Perf then begin
      sift_down e i;
      sift_up e i
    end
  end;
  entry

let heap_pop_min e = remove_at e 0

let ready_index_of_tid e tid =
  let n = e.ready_len in
  let found = ref (-1) in
  for j = 0 to n - 1 do
    if !found < 0 then begin
      let _, _, slot = e.ready.(j) in
      match e.slots.(slot) with
      | Some (t, _) when t = tid -> found := j
      | _ -> ()
    end
  done;
  !found

(* The ready tids at this decision, in ascending order (for [choose]). *)
let ready_tids e =
  let n = e.ready_len in
  let tids = Array.make n (-1) in
  for j = 0 to n - 1 do
    let _, _, slot = e.ready.(j) in
    match e.slots.(slot) with
    | Some (t, _) -> tids.(j) <- t
    | None -> assert false
  done;
  Array.sort compare tids;
  tids

(* Consume the next replay-tape entry, if any: [Some i] is the ready
   index of the recorded tid.  A recorded tid that is not ready is a
   divergence: it is reported and the decision falls back to the active
   policy — silently substituting a policy pick used to "replay" a
   different execution while claiming success. *)
let take_replay e =
  if e.replay_pos >= Array.length e.replay then None
  else begin
    let want = e.replay.(e.replay_pos) in
    e.replay_pos <- e.replay_pos + 1;
    let i = ready_index_of_tid e want in
    if i < 0 then begin
      (match e.divergence with
      | None -> ()
      | Some f -> f ~step:e.steps ~want);
      None
    end
    else Some i
  end

let pop_random e =
  let n = e.ready_len in
  assert (n > 0);
  let i =
    match e.choose with
    | Some f ->
        let tid = f ~crashing:e.crashing (ready_tids e) in
        let i = ready_index_of_tid e tid in
        if i < 0 then
          failwith
            (Printf.sprintf "Sim: choose picked tid %d, which is not ready"
               tid)
        else i
    | None -> Random.State.int e.rng n
  in
  remove_at e i

let enqueue e tid fiber =
  let slot =
    match e.free_slots with
    | s :: rest ->
        e.free_slots <- rest;
        s
    | [] ->
        let s = Array.length e.slots in
        let bigger = Array.make (max 8 (2 * s)) None in
        Array.blit e.slots 0 bigger 0 s;
        e.slots <- bigger;
        e.free_slots <- List.init (s - 1) (fun i -> s + 1 + i);
        s
  in
  e.slots.(slot) <- Some (tid, fiber);
  e.seq <- e.seq + 1;
  heap_push e (e.clocks.(tid), e.seq, slot)

let dequeue e =
  let _, _, slot =
    match take_replay e with
    | Some i -> remove_at e i
    | None -> if e.policy = `Perf then heap_pop_min e else pop_random e
  in
  match e.slots.(slot) with
  | None -> assert false
  | Some ((tid, _) as pair) ->
      e.slots.(slot) <- None;
      e.free_slots <- slot :: e.free_slots;
      (match e.record with None -> () | Some f -> f tid);
      pair

(* ---- public accessors ------------------------------------------------ *)

let in_sim () = !current <> None

let ctx_exn () =
  match !current with
  | Some c -> c
  | None -> failwith "Sim: not inside a simulated run"

let tid () = (ctx_exn ()).ctid

let now () =
  let c = ctx_exn () in
  c.engine.clocks.(c.ctid) +. c.pending_cost

let random_state () = (ctx_exn ()).engine.rng
let steps_executed () = match !current with Some c -> c.engine.steps | None -> 0

let interrupt ~tid exn =
  let c = ctx_exn () in
  let e = c.engine in
  if tid < 0 || tid >= Array.length e.pending_intr then
    invalid_arg (Printf.sprintf "Sim.interrupt: tid %d out of range" tid);
  if tid = c.ctid then raise exn;
  e.pending_intr.(tid) <- Some exn

let dispatches ~tid =
  let c = ctx_exn () in
  let e = c.engine in
  if tid < 0 || tid >= Array.length e.dispatch_counts then
    invalid_arg (Printf.sprintf "Sim.dispatches: tid %d out of range" tid);
  e.dispatch_counts.(tid)

(* The interrupt due for fiber [tid] at this dispatch, if any: an armed
   [interrupt] fires first, then the head of the static at-dispatch
   schedule once the fiber's dispatch count has reached it. *)
let due_interrupt e tid =
  match e.pending_intr.(tid) with
  | Some exn ->
      e.pending_intr.(tid) <- None;
      Some exn
  | None -> (
      match e.intr_sched.(tid) with
      | (at, exn) :: rest when e.dispatch_counts.(tid) >= at ->
          e.intr_sched.(tid) <- rest;
          Some exn
      | _ -> None)

let advance cost =
  match !current with
  | None -> ()
  | Some c -> c.pending_cost <- c.pending_cost +. cost

(* In perf mode, cheap cache-hit accesses are batched: the clock advances
   but a scheduling point is only offered every [yield_stride] accesses or
   when the access was expensive.  Race mode always offers a switch so
   interleavings stay maximally adversarial. *)
let yield_stride = 16
let expensive_threshold = 10.0

(* [step_as ~switch cost] charges [cost] but takes the switch decision as
   if the cost were [switch].  The causal profiler's virtual-speedup hook
   (Harness.Causal) scales what a persistence instruction {e charges}
   without moving where scheduling points fall: otherwise a 0×-scaled pwb
   would stop yielding, every later decision would shift relative to the
   recorded schedule, and the replayed run would silently be a different
   interleaving. *)
let step_as ~switch cost =
  match !current with
  | None -> ()
  | Some c ->
      c.pending_cost <- c.pending_cost +. cost;
      c.since_yield <- c.since_yield + 1;
      let must_switch =
        match c.engine.policy with
        | `Random -> true
        | `Perf ->
            switch >= expensive_threshold || c.since_yield >= yield_stride
      in
      if must_switch then begin
        c.since_yield <- 0;
        Effect.perform Yield
      end

let step cost = step_as ~switch:cost cost

let mark_crashing e =
  if not e.crashing then begin
    e.crashing <- true;
    match !tracer with
    | None -> ()
    | Some f -> f (Crash { step = e.steps })
  end

let request_crash () =
  let c = ctx_exn () in
  mark_crashing c.engine;
  raise Crashed

(* ---- the driver ------------------------------------------------------ *)

let run ?(policy = `Perf) ?(seed = 0) ?(crash_at = -1) ?(step_limit = -1)
    ?(schedule = [||]) ?record ?divergence ?choose ?(interrupts = [||]) bodies =
  if in_sim () then failwith "Sim.run: nested runs are not supported";
  let n = Array.length bodies in
  let intr_sched = Array.make (max n 1) [] in
  Array.iter
    (fun (tid, at, exn) ->
      if tid < 0 || tid >= n then
        invalid_arg (Printf.sprintf "Sim.run: interrupt tid %d out of range" tid);
      if at < 1 then
        invalid_arg "Sim.run: interrupt dispatch indices are 1-based";
      intr_sched.(tid) <-
        List.sort (fun (a, _) (b, _) -> compare a b) ((at, exn) :: intr_sched.(tid)))
    interrupts;
  let e =
    {
      policy;
      rng = Random.State.make [| seed; 0x51ED; n |];
      clocks = Array.make (max n 1) 0.;
      ready = Array.make (max 8 (2 * n)) (0., 0, 0);
      ready_len = 0;
      slots = Array.make (max 8 (2 * n)) None;
      free_slots = List.init (max 8 (2 * n)) Fun.id;
      seq = 0;
      steps = 0;
      crash_at;
      step_limit;
      crashing = false;
      aborting = false;
      replay = schedule;
      replay_pos = 0;
      record;
      divergence;
      choose;
      pending_intr = Array.make (max n 1) None;
      intr_sched;
      dispatch_counts = Array.make (max n 1) 0;
    }
  in
  let contexts =
    Array.init n (fun i ->
        { ctid = i; engine = e; pending_cost = 0.; since_yield = 0 })
  in
  let handler i : (unit, status) Effect.Deep.handler =
    {
      retc = (fun () -> Done);
      exnc = (fun exn -> match exn with Crashed -> Done | exn -> raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  let c = contexts.(i) in
                  e.clocks.(i) <- e.clocks.(i) +. c.pending_cost;
                  c.pending_cost <- 0.;
                  e.steps <- e.steps + 1;
                  (* Boundary convention (see sim.mli): a bound of n
                     fires at the n-th scheduling step — steps 1..n-1
                     complete normally, the n-th [step] call does not
                     return.  Both bounds use the same comparison so the
                     explorer's crash-point enumeration is exact. *)
                  if
                    e.aborting
                    || (e.step_limit >= 1 && e.steps >= e.step_limit)
                  then begin
                    (* Unwind this fiber here (its finalizers run);
                       [exnc] re-raises into the driver loop, which
                       tears the remaining fibers down before letting
                       Step_limit escape. *)
                    e.aborting <- true;
                    Effect.Deep.discontinue k Step_limit
                  end
                  else begin
                    if e.crash_at >= 1 && e.steps >= e.crash_at then
                      mark_crashing e;
                    if e.crashing then Effect.Deep.discontinue k Crashed
                    else begin
                      enqueue e i (Cont k);
                      Suspended
                    end
                  end)
          | _ -> None);
    }
  in
  let start i () = Effect.Deep.match_with (fun () -> bodies.(i) i) () (handler i) in
  for i = 0 to n - 1 do
    enqueue e i (Thunk (start i))
  done;
  let rec loop () =
    if e.ready_len > 0 then begin
      let i, fiber = dequeue e in
      if e.crashing then begin
        (match fiber with
        | Thunk _ -> () (* never started: nothing volatile to unwind *)
        | Cont k ->
            current := Some contexts.(i);
            ignore (Effect.Deep.discontinue k Crashed : status);
            current := None);
        loop ()
      end
      else begin
        current := Some contexts.(i);
        (match !tracer with
        | None -> ()
        | Some f ->
            f (Sched { step = e.steps; tid = i; clock = e.clocks.(i) }));
        e.dispatch_counts.(i) <- e.dispatch_counts.(i) + 1;
        (* Fault injection is delivered at a resumption only: a Thunk has
           not installed its handlers yet, so an exception raised into it
           would escape the whole run instead of reaching the fiber's own
           recovery path.  A due interrupt stays armed until the fiber
           next suspends. *)
        (match fiber with
        | Thunk f -> ignore (f () : status)
        | Cont k -> (
            match due_interrupt e i with
            | Some exn -> ignore (Effect.Deep.discontinue k exn : status)
            | None -> ignore (Effect.Deep.continue k () : status)));
        current := None;
        loop ()
      end
    end
  in
  (* An exception escaping a fiber (Step_limit, a test failure, ...) must
     not abandon the other suspended fibers undiscontinued: unwind each so
     their finalizers run, then re-raise. *)
  let teardown () =
    e.aborting <- true;
    while e.ready_len > 0 do
      let i, fiber = dequeue e in
      match fiber with
      | Thunk _ -> () (* never started: nothing to unwind *)
      | Cont k ->
          current := Some contexts.(i);
          (try ignore (Effect.Deep.discontinue k Step_limit : status)
           with _ -> ());
          current := None
    done
  in
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () ->
      try loop ()
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        teardown ();
        Printexc.raise_with_backtrace exn bt);
  if e.crashing then Crashed_at e.steps else All_done
