(** Deterministic discrete-event execution engine for simulated
    multi-threaded runs on a single real core.

    Each logical thread runs as an effect-handler fiber and owns a virtual
    clock measured in nanoseconds.  Shared-memory primitives (implemented
    in {!Nvm.Pmem}) charge virtual time through {!step}; the scheduler
    always resumes a runnable fiber according to the active policy:

    - [`Perf]: the fiber with the smallest virtual clock runs next, which
      makes virtual time behave like wall-clock time on a machine with one
      hardware thread per fiber.  Used for throughput experiments.
    - [`Random]: uniformly random choice among runnable fibers (seeded),
      ignoring clocks.  Used for correctness and crash-injection tests,
      where adversarial interleavings matter more than timing.

    A run may be interrupted by a crash, either at a preset global step
    index or by a fiber calling {!request_crash}.  Crashed fibers are
    discontinued with the {!Crashed} exception.

    {b Domain re-entrancy}: all ambient engine state is domain-local.
    Each OCaml 5 domain may host its own independent {!run} — the
    parallel campaign driver ({!Harness.Parallel}) runs one simulation
    per worker domain — and no run observes another domain's scheduler
    state, clocks, or tracer.  Nested runs on the {e same} domain remain
    rejected. *)

exception Crashed
(** Raised inside a fiber when a system-wide crash interrupts it. *)

exception Step_limit
(** Raised out of {!run} when the global step budget is exhausted —
    a watchdog that turns livelocks into test failures. *)

exception Not_in_run of string
(** Raised by accessors that only make sense inside a simulated fiber
    ({!tid}, {!now}, {!random_state}, {!interrupt}, {!dispatches},
    {!request_crash}) when called outside a run.  The payload names the
    offending operation (e.g. ["Sim.tid"]) so misuse from hooks or
    metrics paths is diagnosable at the call site. *)

type outcome =
  | All_done      (** every fiber ran to completion *)
  | Crashed_at of int
      (** a crash interrupted the run at this global step index *)

type trace_event =
  | Sched of { step : int; tid : int; clock : float }
      (** fiber [tid] was dispatched at global step [step] *)
  | Crash of { step : int }  (** the system-wide crash boundary *)

val set_tracer : (trace_event -> unit) option -> unit
(** Observability hook (see {!Harness.Trace}): when set, the engine calls
    it on every scheduling decision and at the crash boundary.  The hook
    is {e domain-local} — installing a tracer affects runs on the calling
    domain only.  The disabled path costs a single domain-local read per
    dispatch — no allocation. *)

val run :
  ?policy:[ `Perf | `Random ] ->
  ?seed:int ->
  ?crash_at:int ->
  ?step_limit:int ->
  ?schedule:int array ->
  ?record:(int -> unit) ->
  ?divergence:(step:int -> want:int -> unit) ->
  ?choose:(crashing:bool -> int array -> int) ->
  ?interrupts:(int * int * exn) array ->
  (int -> unit) array ->
  outcome
(** [run bodies] executes [bodies.(i) i] as logical thread [i] until all
    complete or a crash triggers.  Nested runs are not allowed.

    {b Boundary convention} (shared by [crash_at] and [step_limit]): a
    bound of [n] (with [n >= 1]) fires {e at} the [n]-th global
    scheduling step — steps [1..n-1] complete normally, and the [n]-th
    {!step} call does not return.  For [crash_at] the yielding fiber is
    discontinued with {!Crashed} and the run returns [Crashed_at n]; for
    [step_limit] the run raises {!Step_limit} after unwinding every
    suspended fiber, so no continuation is abandoned.  Values [<= 0]
    disable the bound.  Exactly the interval [1..n] of crash points is
    meaningful for a run that executes [n] steps when left alone; a
    [crash_at] beyond that completes with [All_done].

    [record] is called with the chosen tid at every scheduling decision;
    feeding the recorded sequence back as [schedule] replays the run
    bit-for-bit under either policy: while tape entries remain, the
    recorded tid is dispatched regardless of the policy's own preference
    (under [`Perf] this overrides min-clock order, which is how the
    causal profiler holds an interleaving fixed while virtual costs are
    scaled).  A replay entry whose tid is not ready at that decision is a
    {e divergence}: it is reported through [divergence] (with the current
    step and the wanted tid) and the decision falls back to [choose], the
    seeded rng, or the perf heap.  Any divergence means the execution is
    no longer the recorded one — callers replaying a failure must surface
    it rather than trust the outcome.

    [choose] delegates every decision past the replay tape to an external
    scheduling policy: it receives the ready tids in ascending order and
    must return one of them ([~crashing:true] marks post-crash drain
    decisions, whose order is semantically inert).  Used by the
    exploration harness to enumerate schedules deterministically.

    [interrupts] is a static per-fiber fault schedule: each entry
    [(tid, at, exn)] (with [at >= 1], 1-based) arms [exn] for delivery at
    fiber [tid]'s [at]-th dispatch — see {!interrupt} for the delivery
    contract.  Entries whose dispatch index is never reached simply do
    not fire.  Used by the store-exploration harness to enumerate
    shard-crash points by dispatch index. *)

val in_sim : unit -> bool
(** Whether the caller is executing inside a simulated fiber. *)

(** {2 Hot-path handle}

    Every ambient accessor above pays one domain-local ([Domain.DLS])
    fetch.  That is negligible in isolation but the memory model
    ({!Nvm.Pmem}) consults the engine several times {e per simulated
    instruction} — tid, clock, then a step — and exploration campaigns
    execute hundreds of millions of instructions.  A {!handle} is the
    calling domain's ambient engine state fetched {e once}; the [h_]*
    accessors below are then plain field reads with no further lookups.

    A handle is only meaningful on the domain that fetched it, and it
    stays valid for that domain's lifetime (the underlying record is
    created once per domain and mutated in place, never replaced).
    Caching one in a {e domain-local} structure is fine — {!Nvm.Pmem}
    does — but a handle must never cross domains. *)

type handle
(** The calling domain's ambient engine state (one domain-local fetch). *)

val handle : unit -> handle
(** Fetch the calling domain's handle. *)

val h_in_sim : handle -> bool
(** [h_in_sim h] = {!in_sim}[ ()], without the domain-local fetch. *)

val h_tid : handle -> int
(** Like {!tid} but returns [0] outside a run (the convention real
    executions use for "the only thread"). *)

val h_now : handle -> float
(** Like {!now} but returns [0.] outside a run. *)

val h_step : handle -> float -> unit
(** [h_step h cost] = {!step}[ cost], without the domain-local fetch. *)

val h_step_as : handle -> switch:float -> float -> unit
(** [h_step_as h ~switch cost] = {!step_as}[ ~switch cost], without the
    domain-local fetch. *)

val tid : unit -> int
(** Logical thread id of the calling fiber.  @raise Not_in_run outside a run. *)

val now : unit -> float
(** Virtual clock (ns) of the calling fiber.  @raise Not_in_run outside a run. *)

val step : float -> unit
(** Charge [cost] virtual nanoseconds to the calling fiber and give the
    scheduler a switch point.  No-op outside a run (real executions pay
    real time instead). *)

val step_as : switch:float -> float -> unit
(** [step_as ~switch cost] charges [cost] but takes the scheduling/
    batching decision as if the cost were [switch].  Used by the causal
    profiler ({!Nvm.Pmem} charge path): scaling what an instruction
    charges must not move where switch points fall, or a replayed
    schedule would silently diverge.  [step cost = step_as ~switch:cost
    cost]. *)

val advance : float -> unit
(** Charge [cost] virtual nanoseconds without offering a switch point.
    Used for latency that is attributed to the current fiber but is not a
    shared-memory access (e.g. waiting for a write-back to complete). *)

val request_crash : unit -> 'a
(** Trigger a system-wide crash from inside a fiber: every live fiber,
    including the caller, is discontinued with {!Crashed}. *)

val random_state : unit -> Random.State.t
(** The run's seeded RNG (for adversarial choices made by the memory
    model, e.g. which outstanding write-backs survive a crash).
    @raise Not_in_run outside a run. *)

val steps_executed : unit -> int
(** Global steps executed so far in the current run (0 outside a run).
    Useful for choosing crash points in campaigns. *)

val interrupt : tid:int -> exn -> unit
(** [interrupt ~tid exn] arms a per-fiber fault: unlike
    {!request_crash}, only fiber [tid] is affected — every other fiber
    keeps running, which is the primitive behind shard-local crashes
    ({!Harness}'s store service).

    Delivery contract: the exception is raised inside fiber [tid] at its
    next {e resumption} (the dispatch following a suspension in {!step}),
    where the fiber's own exception handlers are live, so a shard server
    can catch it and run recovery in place.  A fiber that never suspends
    again, or has already finished, never observes the interrupt.
    Interrupting the calling fiber itself raises [exn] immediately.
    @raise Invalid_argument if [tid] is out of range.
    @raise Not_in_run outside a run. *)

val dispatches : tid:int -> int
(** Number of times fiber [tid] has been dispatched so far in the current
    run.  Pairs with [run ?interrupts] to enumerate per-fiber crash
    points: a crash-free run's final count bounds the meaningful
    1-based dispatch indices for that fiber.
    @raise Invalid_argument if [tid] is out of range.
    @raise Not_in_run outside a run. *)
