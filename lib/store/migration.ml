(* Live shard splitting: a recoverable migration that drains the split
   plan's keys from a source shard to a fresh destination shard under
   live traffic.  The migration is itself a detectable operation in the
   paper's sense: its progress lives in a durable per-key journal on the
   DESTINATION heap, so a crash of either endpoint (or both) resumes it
   to the same definite outcome — every key in exactly one shard.

   Journal: one stage slot per plan key, packed 8 per cache line,
   durably zeroed at creation via system support ([Pmem.system_persist],
   the same modelling as per-thread CP initialization), plus one durable
   phase field.  Stages:

     0 PENDING  — untouched;
     1 COPYING  — intent persisted; the destination MAY hold a copy;
     2 MOVED    — handoff committed; ownership is the destination's.

   Per-key handoff (run by the destination shard's own server fiber, so
   a destination crash interrupts it exactly like any in-flight op):

     a. arm the volatile in-handoff guard: the source defers client
        MUTATIONS of this key (finds still serve) — presence cannot
        change between the probe and the commit;
     b. stage := COPYING, pwb ("mig.intent.pwb") + psync — from here a
        destination copy is possible, so recovery knows to reconcile;
     c. probe the source (an internal Fnd through its mailbox — the
        source's own crash protocol covers it);
     d. if present, insert into the destination (an internal request in
        the destination's own mailbox, so the ordinary inflight/recover
        machinery makes the copy detectable);
        if absent and stage was COPYING, delete any stale destination
        copy left by a previous incarnation (undo — the client
        legitimately deleted the key while we were down);
     e. stage := MOVED, pwb ("mig.handoff.pwb") + psync — THE handoff
        commit: ownership flips to the destination here and only here;
     f. flip the volatile moved mirror (the routing table's [moved]
        predicate reads it), then delete the source copy (internal,
        idempotent) and disarm the guard.

   Destination crash recovery ([on_recover], called from the shard's
   crash handler after heap resolution + structure recovery): rebuild
   the moved mirror from the durable slots and rescan the plan from the
   start — MOVED keys only re-issue the idempotent source cleanup,
   COPYING keys redo the probe/copy/commit (each sub-step idempotent),
   PENDING keys run fresh.  Source crashes need nothing from us: the
   internal requests in its mailbox are ordinary backlog of its own
   recovery protocol.

   The negative control ("broken handoff") elides the stage-MOVED pwb
   by disabling its Pstats site, exactly like tracking-broken /
   memento-broken: the commit then reverts on a destination crash while
   the source cleanup already deleted the key — the key vanishes from
   both shards, which the store-level conservation oracle catches and a
   Forensics postmortem names via the disabled site. *)

(* Pstats sites, registered once at module load (global identity). *)
let s_intent = Pstats.make Pstats.Pwb "mig.intent.pwb"
let s_intent_sync = Pstats.make Pstats.Psync "mig.intent.psync"
let s_moved = Pstats.make Pstats.Pwb "mig.handoff.pwb"
let s_moved_sync = Pstats.make Pstats.Psync "mig.handoff.psync"
let s_phase = Pstats.make Pstats.Pwb "mig.phase.pwb"
let s_phase_sync = Pstats.make Pstats.Psync "mig.phase.psync"

let pending = 0
let copying = 1
let moved = 2

type t = {
  table : Router.t;
  src : Shard.t;
  dst : Shard.t;
  plan : int array;  (* plan keys, ascending *)
  index : (int, int) Hashtbl.t;  (* key -> plan slot *)
  slots : int Pmem.t array;  (* durable stage per plan slot *)
  phase : int Pmem.t;  (* durable: 0 = copying, 1 = done *)
  moved_v : bool array;  (* volatile mirror of stage = MOVED *)
  mutable inhand : int;  (* key whose handoff is mid-flight, or -1 *)
  mutable cursor : int;  (* next plan slot to scan (volatile) *)
  mutable go : bool;  (* controller released the migration *)
  mutable started : bool;  (* begin_split registered on the table *)
  mutable done_ : bool;  (* volatile mirror of phase = 1 *)
  mutable handoffs : int;  (* keys whose handoff this run committed *)
  mutable resumes : int;  (* post-crash rescans *)
  mutable rid : int;  (* internal request ids, negative *)
  poll_ns : float;
  broken : bool;
}

let create ~table ~(src : Shard.t) ~(dst : Shard.t) ~key_range ~poll_ns
    ~broken () =
  (* called before [begin_split], so the table still counts base shards *)
  let base = Router.shard_count table in
  let plan =
    Array.of_list
      (List.filter
         (fun k -> Router.splits ~shards:base ~src:src.Shard.sid k)
         (List.init key_range (fun i -> i + 1)))
  in
  let index = Hashtbl.create (Array.length plan) in
  Array.iteri (fun i k -> Hashtbl.replace index k i) plan;
  let n = Array.length plan in
  let lines =
    Array.init
      ((n + 7) / 8)
      (fun i ->
        Pmem.new_line ~name:(Printf.sprintf "mig.journal[%d]" i) dst.Shard.heap)
  in
  let slots =
    Array.init n (fun i ->
        let f = Pmem.on_line lines.(i / 8) pending in
        Pmem.system_persist f pending;
        f)
  in
  let phase = Pmem.alloc ~name:"mig.phase" dst.Shard.heap 0 in
  Pmem.system_persist phase 0;
  if broken then
    (* the negative control: elide the handoff-commit flush, exactly the
       mechanism of tracking-broken / memento-broken *)
    Pstats.set_enabled s_moved false;
  {
    table;
    src;
    dst;
    plan;
    index;
    slots;
    phase;
    moved_v = Array.make n false;
    inhand = -1;
    cursor = 0;
    go = false;
    started = false;
    done_ = false;
    handoffs = 0;
    resumes = 0;
    rid = 0;
    poll_ns;
    broken;
  }

let plan_size t = Array.length t.plan
let finished t = t.done_

(* The routing table's [moved] predicate and the source guard's
   mid-handoff test — both volatile, both rebuilt from the durable
   journal on destination recovery. *)
let moved_key t k =
  match Hashtbl.find_opt t.index k with
  | Some i -> t.moved_v.(i)
  | None -> false

let in_handoff t k = t.inhand = k

let release t = t.go <- true

(* Internal rpc: an [internal] request through a shard's mailbox, so the
   target shard's own crash protocol covers it (backlog on restart,
   detectable recovery if in flight).  While waiting, the destination
   keeps draining its own mailbox — no deadlock, and client requests
   forwarded to the destination keep being served. *)
let rpc t (shard : Shard.t) op ~drain =
  t.rid <- t.rid - 1;
  let req =
    {
      Shard.rid = t.rid;
      rsid = shard.Shard.sid;
      op;
      submit_ns = Sim.now ();
      internal = true;
      retried = false;
      state = Shard.Pending;
    }
  in
  Shard.submit shard req;
  let rec wait () =
    match req.Shard.state with
    | Shard.Pending ->
        (* self-service: we ARE the destination's server fiber (side
           work), so requests to the destination — including this one
           when it targets the destination — only execute if we drain *)
        drain ();
        Sim.step t.poll_ns;
        wait ()
    | Shard.Done { ok; _ } -> ok
  in
  wait ()

(* Post-crash resume hook, run by the destination shard's crash handler
   AFTER heap resolution and structure recovery: the durable journal is
   authoritative again, so rebuild the volatile mirrors and rescan. *)
let on_recover t =
  if t.started then begin
    t.resumes <- t.resumes + 1;
    t.cursor <- 0;
    t.done_ <- Pmem.read t.phase = 1;
    Array.iteri (fun i slot -> t.moved_v.(i) <- Pmem.read slot = moved) t.slots;
    (* Disarm the in-handoff guard only AFTER the moved mirror is
       authoritative again: each [Pmem.read] above advances virtual
       time, so the source server runs concurrently with this rebuild —
       if the guard dropped first, a client mutation of a key whose
       handoff committed durably (but whose volatile mirror still said
       "not moved") would route to, and execute on, the OLD owner.
       Deferral keeps such requests parked until routing is consistent. *)
    t.inhand <- -1;
    Trace.note
      (Printf.sprintf "migration resume #%d: %d/%d moved durable" t.resumes
         (Array.fold_left (fun n m -> if m then n + 1 else n) 0 t.moved_v)
         (Array.length t.plan))
  end

(* One bounded unit of migration work: at most one key's handoff (or one
   cleanup re-issue) per call, so the destination server interleaves
   migration with client traffic.  Returns true if it did something. *)
let step t ~drain =
  if t.done_ || not t.go then false
  else if not t.started then begin
    (* register the split: from here plan keys route via [moved_key] *)
    t.started <- true;
    ignore (Router.begin_split t.table ~src:t.src.Shard.sid ~moved:(moved_key t) : int);
    Trace.note
      (Printf.sprintf "migration start: split shard %d -> %d (%d plan keys)"
         t.src.Shard.sid t.dst.Shard.sid (Array.length t.plan));
    true
  end
  else if t.cursor >= Array.length t.plan then begin
    Pmem.write t.phase 1;
    Pmem.pwb_f s_phase t.phase;
    Pmem.psync s_phase_sync;
    t.done_ <- true;
    Router.finish_split t.table;
    Trace.note
      (Printf.sprintf "migration complete: %d handoffs, %d resumes" t.handoffs
         t.resumes);
    true
  end
  else begin
    let i = t.cursor in
    let k = t.plan.(i) in
    let stage = Pmem.read t.slots.(i) in
    if stage = moved then begin
      (* already committed by an earlier incarnation: ownership is ours;
         just make sure the source copy is gone (idempotent) *)
      t.moved_v.(i) <- true;
      ignore (rpc t t.src (Set_intf.Del k) ~drain : bool);
      t.cursor <- i + 1;
      true
    end
    else begin
      (* a: the source defers mutations of [k] until we disarm *)
      t.inhand <- k;
      (* b: persist the intent *)
      Pmem.write t.slots.(i) copying;
      Pmem.pwb_f s_intent t.slots.(i);
      Pmem.psync s_intent_sync;
      (* c: learn presence from the source *)
      let present = rpc t t.src (Set_intf.Fnd k) ~drain in
      (* d: copy — or undo a stale copy from before our crash *)
      if present then ignore (rpc t t.dst (Set_intf.Ins k) ~drain : bool)
      else if stage = copying then
        ignore (rpc t t.dst (Set_intf.Del k) ~drain : bool);
      (* e: THE handoff commit *)
      Pmem.write t.slots.(i) moved;
      Pmem.pwb_f s_moved t.slots.(i);
      Pmem.psync s_moved_sync;
      (* f: flip routing, clean the source, disarm *)
      t.moved_v.(i) <- true;
      if present then ignore (rpc t t.src (Set_intf.Del k) ~drain : bool);
      t.inhand <- -1;
      t.handoffs <- t.handoffs + 1;
      t.cursor <- i + 1;
      true
    end
  end
