(** Live shard splitting: a {e recoverable} migration draining the split
    plan's keys from a source shard to a fresh destination shard under
    live traffic.  Progress lives in a durable per-key journal on the
    destination heap (stages PENDING → COPYING → MOVED, one pwb+psync
    per transition), so a crash of either endpoint — or a correlated
    crash of both — resumes to the same definite outcome: every key in
    exactly one shard, at every crash point and write-back resolution.
    See the implementation header for the full protocol narrative. *)

type t = {
  table : Router.t;
  src : Shard.t;
  dst : Shard.t;
  plan : int array;
  index : (int, int) Hashtbl.t;
  slots : int Pmem.t array;  (** durable stage per plan key *)
  phase : int Pmem.t;  (** durable: 0 = copying, 1 = done *)
  moved_v : bool array;  (** volatile mirror of stage = MOVED *)
  mutable inhand : int;
  mutable cursor : int;
  mutable go : bool;
  mutable started : bool;
  mutable done_ : bool;
  mutable handoffs : int;
  mutable resumes : int;
  mutable rid : int;
  poll_ns : float;
  broken : bool;
}

val create :
  table:Router.t ->
  src:Shard.t ->
  dst:Shard.t ->
  key_range:int ->
  poll_ns:float ->
  broken:bool ->
  unit ->
  t
(** Plan = every key in [1..key_range] that {!Router.splits} assigns away
    from [src] (deterministic — committed in repro files by construction).
    Allocates and durably zeroes the journal on [dst]'s heap.  [broken]
    disables the ["mig.handoff.pwb"] site — the deliberately broken
    variant whose commit reverts on a destination crash (negative
    control; the store-level conservation oracle must catch it). *)

val plan_size : t -> int
val finished : t -> bool

val moved_key : t -> int -> bool
(** Has this key's handoff committed (volatile mirror; what the routing
    table's [Migrating] predicate reads)? *)

val in_handoff : t -> int -> bool
(** Is this key's handoff mid-flight right now?  The store's guard
    defers client mutations of such a key on the source. *)

val release : t -> unit
(** Controller signal: start migrating (the destination server's
    [side_work] begins stepping on its next loop iteration). *)

val on_recover : t -> unit
(** Destination-crash resume hook, called by the destination shard's
    crash handler after heap resolution and structure recovery: rebuilds
    the volatile mirrors from the durable journal and rescans the plan
    from the start (every sub-step is idempotent). *)

val step : t -> drain:(unit -> unit) -> bool
(** One bounded unit of work — at most one key's handoff — so the
    destination server interleaves migration with client traffic.
    Internal requests wait by draining the destination's own mailbox
    ([drain]) and stepping virtual time.  Returns [true] if it made
    progress, [false] if idle (not released, or finished). *)
