(* Per-shard replication: a second structure instance on its own heap
   that mirrors the primary's committed effects, so a crashed primary
   can PROMOTE instead of pausing.

   Protocol (driven by the shard's server fiber, see Shard):

   - mirror: after a client mutation commits on the primary, the same
     operation is applied to the replica — behind its own [note_begin]
     token, so a crash mid-mirror is detectably recoverable.  A single
     server fiber serializes both applications, so between requests the
     replica's logical state equals the primary's.
   - failover: when the primary's heap crashes while the replica is
     [ready], the shard swaps the replica in as the new primary after a
     short [failover_ns] (no restart, no structure repair — the replica
     heap never crashed) and resolves the in-flight request on it.
   - re-sync: promotion consumes the replica, so the shard immediately
     starts rebuilding redundancy on a fresh heap: a background copy of
     the new primary's keys, interleaved with serving.  New mutations
     are mirrored to the half-built replica as they commit and their
     keys marked dirty so the copy skips them (a stale copy would
     otherwise resurrect a key the client deleted mid-sync).  When the
     backlog drains, the replica is [ready] again and a second crash
     fails over again; a crash before that falls back to the classic
     restart + detectable-recovery path on the primary heap. *)

type t = {
  factory : Set_intf.factory;
  threads : int;
  owner_sid : int;
  mutable heap : Pmem.heap;
  mutable algo : Set_intf.t;
  mutable ready : bool;
  dirty : (int, unit) Hashtbl.t;  (* keys mutated since re-sync start *)
  mutable backlog : int list;  (* keys still to copy during re-sync *)
  mutable generation : int;  (* bumped per fresh replica heap *)
  mutable promotions : int;
  mutable failovers : (float * float) list;  (* (crash_ns, promoted_ns), newest first *)
  mutable resyncs : (float * float) list;  (* completed (start_ns, end_ns), newest first *)
  mutable resync_started : float option;
  mutable mismatches : int;  (* mirror result disagreed while ready *)
}

let heap_name factory ~sid ~generation =
  Printf.sprintf "%s-shard%d-replica-g%d" factory.Set_intf.fname sid generation

let create factory ~threads ~sid =
  let heap = Pmem.heap ~name:(heap_name factory ~sid ~generation:0) () in
  {
    factory;
    threads;
    owner_sid = sid;
    heap;
    algo = factory.Set_intf.make heap ~threads;
    ready = true;
    dirty = Hashtbl.create 64;
    backlog = [];
    generation = 0;
    promotions = 0;
    failovers = [];
    resyncs = [];
    resync_started = None;
    mismatches = 0;
  }

(* Mirror one committed mutation.  Returns the note_begin token first so
   the caller (Shard) can park it in its inflight slot before the apply —
   that is what makes a crash mid-mirror recoverable. *)
let note_mirror t op = t.algo.Set_intf.note_begin op

let apply_mirror t op =
  let ok = Set_intf.apply t.algo op in
  if not t.ready then Hashtbl.replace t.dirty (Set_intf.op_key op) ();
  ok

let record_mismatch t = t.mismatches <- t.mismatches + 1

(* Promotion: the caller takes [heap]/[algo] as the new primary; the
   replica restarts life unready with a fresh heap and the snapshot of
   keys to copy back. *)
let begin_resync t ~snapshot =
  t.generation <- t.generation + 1;
  let heap =
    Pmem.heap
      ~name:(heap_name t.factory ~sid:t.owner_sid ~generation:t.generation)
      ()
  in
  t.heap <- heap;
  t.algo <- t.factory.Set_intf.make heap ~threads:t.threads;
  t.ready <- false;
  Hashtbl.reset t.dirty;
  t.backlog <- snapshot;
  t.resync_started <- Some (Sim.now ())

let finish_resync t =
  t.ready <- true;
  (match t.resync_started with
  | Some t0 -> t.resyncs <- (t0, Sim.now ()) :: t.resyncs
  | None -> ());
  t.resync_started <- None

let skip_copy t k = Hashtbl.mem t.dirty k
