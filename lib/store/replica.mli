(** Per-shard replication: a mirror structure on its own heap, so a
    crashed primary {e promotes} instead of pausing (see the protocol
    narrative in the implementation).  The replica is passive — the
    owning shard's server fiber drives mirroring, promotion and the
    background re-sync; this module only keeps the replica's state. *)

type t = {
  factory : Set_intf.factory;
  threads : int;
  owner_sid : int;
  mutable heap : Pmem.heap;
  mutable algo : Set_intf.t;
  mutable ready : bool;
      (** the replica mirrors the primary exactly — safe to promote *)
  dirty : (int, unit) Hashtbl.t;
      (** keys mutated since re-sync start; the copy skips them *)
  mutable backlog : int list;  (** keys still to copy during re-sync *)
  mutable generation : int;
  mutable promotions : int;
  mutable failovers : (float * float) list;
      (** (crash_ns, promoted_ns), newest first *)
  mutable resyncs : (float * float) list;
      (** completed re-syncs as (start_ns, end_ns), newest first *)
  mutable resync_started : float option;
  mutable mismatches : int;
      (** mirror applications whose result disagreed with the primary's
          while the replica was ready — must stay 0 *)
}

val create : Set_intf.factory -> threads:int -> sid:int -> t
(** A ready replica on a fresh heap named
    ["<algo>-shard<sid>-replica-g0"].  The caller must bring it in sync
    (the store prefills primary and replica identically). *)

val note_mirror : t -> Set_intf.op -> Set_intf.pending
(** The replica's durable pending token for a mirror application; park
    it in the shard's inflight slot {e before} {!apply_mirror} so a
    crash mid-mirror is detectably recoverable. *)

val apply_mirror : t -> Set_intf.op -> bool
(** Apply one committed mutation to the replica; marks the key dirty
    while a re-sync is running. *)

val record_mismatch : t -> unit

val begin_resync : t -> snapshot:int list -> unit
(** After promotion: restart the replica unready on a fresh heap
    (generation bumped) with [snapshot] — the new primary's keys — as
    the copy backlog. *)

val finish_resync : t -> unit
(** Backlog drained: mark ready and record the re-sync window. *)

val skip_copy : t -> int -> bool
(** Should the re-sync copy skip this key (mutated since sync start)? *)
