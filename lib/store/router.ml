(* Deterministic key-to-shard routing.

   A SplitMix64-style finalizer scrambles the key before the modulo so
   that contiguous key ranges (and the power-law hot set of
   [Workload.Skewed], whose hottest keys are the lowest indices) spread
   across shards instead of piling onto shard 0.  Stateless and
   allocation-free, so routing is bit-identical across runs, replays and
   processes — a recorded serve schedule stays meaningful. *)

let mix k =
  let open Int64 in
  let z = mul (of_int k) 0x9E3779B97F4A7C15L in
  let z = logxor z (shift_right_logical z 30) in
  let z = mul z 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  let z = mul z 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFL)

let route ~shards k =
  if shards <= 0 then invalid_arg "Router.route: shards must be positive";
  mix k mod shards
