(* Deterministic key-to-shard routing, plus the versioned two-phase
   routing table that keeps every key addressable while a shard split
   migrates keys between heaps.

   The placement primitive is a SplitMix64-style finalizer: it scrambles
   the key before the modulo so that contiguous key ranges (and the
   power-law hot set of [Workload.Skewed], whose hottest keys are the
   lowest indices) spread across shards instead of piling onto shard 0.
   Stateless and allocation-free, so routing is bit-identical across
   runs, replays and processes — a recorded serve schedule stays
   meaningful, and every committed repro file depends on these exact
   constants (see the determinism notes in router.mli).

   A split of shard [src] carves out the keys whose split bit — an
   independent bit of the same mix, not involved in the modulo — is set;
   those keys' post-split owner is the fresh shard [dst].  During the
   migration the table is two-phase: a plan key is served by [dst] only
   once the migration's durable journal says it moved ([moved k]),
   otherwise still by [src] — so every key has exactly one owner at
   every instant, and a reader can always be routed. *)

let mix k =
  let open Int64 in
  let z = mul (of_int k) 0x9E3779B97F4A7C15L in
  let z = logxor z (shift_right_logical z 30) in
  let z = mul z 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  let z = mul z 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFFFFFFFFFFFFFL)

let route ~shards k =
  if shards <= 0 then invalid_arg "Router.route: shards must be positive";
  mix k mod shards

(* The split bit: bit 20 of the mix, far from the low bits the modulo
   consumes for any realistic shard count, so the split halves [src]
   near-evenly instead of correlating with placement. *)
let splits ~shards ~src k = route ~shards k = src && (mix k lsr 20) land 1 = 1

type phase = Stable | Migrating of (int -> bool)

type t = {
  base : int;  (* shard count before any split *)
  mutable split : (int * int) option;  (* (src, dst) once a split began *)
  mutable phase : phase;
  mutable version : int;
}

let create ~shards =
  if shards <= 0 then invalid_arg "Router.create: shards must be positive";
  { base = shards; split = None; phase = Stable; version = 0 }

let version t = t.version
let shard_count t = t.base + (match t.split with Some _ -> 1 | None -> 0)

let plan_mem t k =
  match t.split with
  | None -> false
  | Some (src, _) -> splits ~shards:t.base ~src k

let owner t k =
  match t.split with
  | None -> route ~shards:t.base k
  | Some (src, dst) ->
      if splits ~shards:t.base ~src k then
        match t.phase with
        | Stable -> dst
        | Migrating moved -> if moved k then dst else src
      else route ~shards:t.base k

let begin_split t ~src ~moved =
  if t.split <> None then
    invalid_arg "Router.begin_split: a split is already registered";
  if src < 0 || src >= t.base then
    invalid_arg "Router.begin_split: src out of range";
  let dst = t.base in
  t.split <- Some (src, dst);
  t.phase <- Migrating moved;
  t.version <- t.version + 1;
  dst

let finish_split t =
  match (t.split, t.phase) with
  | Some _, Migrating _ ->
      t.phase <- Stable;
      t.version <- t.version + 1
  | _ -> invalid_arg "Router.finish_split: no migration in progress"
