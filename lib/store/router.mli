(** Deterministic key-to-shard routing, and the versioned two-phase
    routing table used while a shard split migrates keys.

    {2 Determinism contract}

    Placement is a pure function of the key and the shard count: a
    SplitMix64 finalizer (constants [0x9E3779B97F4A7C15],
    [0xBF58476D1CE4E5B9], [0x94D049BB133111EB]; shifts 30/27/31; result
    masked to 58 bits) followed by [mod shards].  No seed, no per-run
    state, no dependence on insertion order: the same key maps to the
    same shard in every run, every replay, every process, and every
    workload seed.  This is load-bearing far beyond aesthetics — every
    committed serve repro file ({!Store_repro}) encodes prefill routing
    and crash points that assume this exact placement, so a silent
    change to the mixing constants or to the split bit would corrupt
    them all.  The property test in [test/test_elastic.ml] pins golden
    placement values to catch exactly that.

    {2 Two-phase splits}

    A split of shard [src] moves the plan keys — those keys of [src]
    whose {e split bit} (bit 20 of the same mix, independent of the
    modulo bits) is set — to a fresh shard [dst].  While the migration
    runs, the table is in a [Migrating] phase and consults the
    migration's durable [moved] predicate per key: a plan key is owned
    by [dst] iff its handoff has durably committed, by [src] otherwise.
    Every key therefore has exactly one owner at every instant — the
    invariant {!Store.explore} proves across crash points.  Each phase
    change bumps {!version}. *)

val route : shards:int -> int -> int
(** [route ~shards k] is the shard index in [\[0, shards)] owning key
    [k] in an unsplit store.  Pure and stateless (see the determinism
    contract above).  @raise Invalid_argument if [shards <= 0]. *)

val splits : shards:int -> src:int -> int -> bool
(** [splits ~shards ~src k]: does [k] belong to the split plan when
    shard [src] of a [shards]-shard store is split?  True iff [src]
    owns [k] and [k]'s split bit is set — a pure function, so the plan
    is identical across runs and processes. *)

type t
(** A mutable routing table: [shards] base shards plus at most one
    split (the elastic store migrates one shard per run). *)

val create : shards:int -> t
(** Fresh table, version 0, no split.
    @raise Invalid_argument if [shards <= 0]. *)

val version : t -> int
(** Bumped by {!begin_split} and {!finish_split}. *)

val shard_count : t -> int
(** Base shards, plus one once a split is registered. *)

val plan_mem : t -> int -> bool
(** Is the key part of the registered split's plan?  [false] when no
    split is registered. *)

val owner : t -> int -> int
(** The shard currently serving this key: base routing for non-plan
    keys; for plan keys, [dst] once the key's handoff durably committed
    (or the split finished), [src] before. *)

val begin_split : t -> src:int -> moved:(int -> bool) -> int
(** Register the split of [src]; returns the new shard's index (=
    the base shard count).  [moved] is consulted per plan key while the
    phase is [Migrating] — the migration backs it with its durable
    journal.  @raise Invalid_argument if a split is already registered
    or [src] is out of range. *)

val finish_split : t -> unit
(** Migration complete: plan keys now route to [dst] unconditionally.
    @raise Invalid_argument if no migration is in progress. *)
