(** Deterministic key-to-shard routing for the sharded store.

    Keys are scrambled with a SplitMix64-style finalizer before the
    modulo, so contiguous ranges — and skewed workloads' hot set, whose
    hottest keys are the lowest indices — spread across shards.  The
    function is pure: the same key maps to the same shard in every run,
    replay and process. *)

val route : shards:int -> int -> int
(** [route ~shards k] is the shard index in [\[0, shards)] owning key
    [k].  @raise Invalid_argument if [shards <= 0]. *)
