(* One shard of the store: an independent recoverable structure instance
   on its own persistent heap, served by a dedicated fiber that drains a
   volatile mailbox.

   Crash model: a shard-local failure is injected by delivering {!Crash}
   to the server fiber ([Sim.interrupt]), which unwinds whatever request
   it was executing mid-flight.  The server catches it in place and runs
   the recovery protocol itself — no other fiber is disturbed, which is
   the whole point of shard isolation.  Two recovery paths:

   RESTART (no replica, or the replica is still re-syncing):
   1. count the queued (volatile) mailbox entries as retried backlog —
      they were never started, so serving them later is their first and
      only execution;
   2. [Pmem.crash ~scope:`Heap]: resolve only this shard's outstanding
      write-backs and reset its fields, leaving the survivors' pending
      persistence untouched;
   3. charge [restart_ns] of virtual restart latency (process respawn,
      heap re-mapping) — this is what makes the degraded window
      measurable;
   4. [recover_structure] (Romulus restore / Redo log replay; no-op for
      the lock-free algorithms), then detectable recovery of the
      in-flight request: [recover op] returns its definite outcome, so
      the request completes exactly-once instead of being lost.

   FAILOVER (a ready replica exists, see Replica): the primary heap's
   write-backs are resolved, but instead of restarting it the shard
   swaps the replica in as the new primary after a short [failover_ns]
   (no restart latency, no structure repair — the replica heap never
   crashed).  The in-flight request resolves on the new primary: if the
   crash hit it before its mirror step, the old execution is void and it
   re-executes fresh; if it hit mid-mirror, the parked mirror token
   recovers detectably.  Promotion consumes the replica, so the shard
   then starts a background re-sync onto a fresh replica heap,
   interleaved with serving (see [resync_step]).

   A nested [Crash] during recovery restarts the recovery; that is safe
   because detectable recovery is idempotent (the paper's recover
   semantics), promotion marks the replica unready before resolving
   anything (so the nested pass takes the restart path on the promoted
   structure), and the in-flight request is only marked complete after
   its definite outcome is known.

   The server additionally exposes two hooks for the elastic store:
   [guard] lets the store defer or forward a request whose key is mid-
   handoff or no longer owned here (Migration), and [side_work] runs one
   bounded unit of background work per loop iteration (the migration
   scan).  Internal requests — the migration's own reads/deletes/inserts,
   flagged [internal] — bypass the guard and do not count as client
   completions, but their operations ARE recorded as oracle events: they
   mutate the structure like any other op. *)

exception Crash

type state = Pending | Done of { ok : bool; done_ns : float; recovered : bool }

type request = {
  rid : int;
  mutable rsid : int;  (* owning shard; rewritten when forwarded *)
  op : Set_intf.op;
  submit_ns : float;
  internal : bool;  (* migration/re-sync plumbing, not a client request *)
  mutable retried : bool;
  mutable state : state;
}

(* What the server was doing when a crash unwound it: executing a
   request on the primary, mirroring a committed mutation to the
   replica (the primary result is already known), or copying a key to a
   re-syncing replica.  Each carries the durable pending token that
   makes the interrupted application detectably recoverable. *)
type inflight =
  | Primary of request * Set_intf.pending
  | Mirror of request * bool * Set_intf.pending
  | Resync of Set_intf.op * Set_intf.pending

type t = {
  sid : int;
  server_tid : int;
  mutable heap : Pmem.heap;  (* swapped by failover promotion *)
  mutable algo : Set_intf.t;
  replica : Replica.t option;
  mailbox : request Queue.t;
  queue_gauge : Metrics.gauge;
  mutable inflight : inflight option;
  mutable in_recovery : bool;
      (* true while the crash protocol runs — the cascade campaign's
         controller watches this to land a second crash inside it *)
  mutable initial : int list;
  mutable events : Oracle.event list;  (* every completion, newest first *)
  mutable client_events : Oracle.event list;
      (* non-internal completions only: the store-level conservation
         oracle's input (migration plumbing must NOT be tallied there, or
         a lost handoff would tally as a legitimate delete) *)
  mutable served : int;
  mutable crashes : int;
  mutable retried : int;
  mutable recovered : int;
  mutable deferred : int;  (* guard deferrals (key mid-handoff) *)
  mutable forwarded : int;  (* guard forwards (key owned elsewhere) *)
  mutable max_queue : int;
  mutable recoveries : (float * float) list;  (* (crash_ns, end_ns), newest first *)
  mutable dispatches : int;  (* server-fiber dispatch count, set at exit *)
}

let create ?(replicate = false) factory ~threads ~server_tid sid =
  let heap =
    Pmem.heap
      ~name:(Printf.sprintf "%s-shard%d" factory.Set_intf.fname sid)
      ()
  in
  let algo = factory.Set_intf.make heap ~threads in
  {
    sid;
    server_tid;
    heap;
    algo;
    replica =
      (if replicate then Some (Replica.create factory ~threads ~sid) else None);
    mailbox = Queue.create ();
    queue_gauge = Metrics.gauge (Printf.sprintf "store.shard%d.queue_depth" sid);
    inflight = None;
    in_recovery = false;
    initial = [];
    events = [];
    client_events = [];
    served = 0;
    crashes = 0;
    retried = 0;
    recovered = 0;
    deferred = 0;
    forwarded = 0;
    max_queue = 0;
    recoveries = [];
    dispatches = 0;
  }

let submit t req =
  Queue.push req t.mailbox;
  let depth = Queue.length t.mailbox in
  if depth > t.max_queue then t.max_queue <- depth;
  Metrics.set_gauge t.queue_gauge (float_of_int depth)

let serve t ~batch ~activation_ns ~poll_ns ~restart_ns ~failover_ns ~wb ~live
    ~on_complete ?(guard = fun (_ : request) -> `Execute) ?side_work
    ?after_recovery () =
  let complete req ~ok ~recovered =
    req.state <- Done { ok; done_ns = Sim.now (); recovered };
    t.served <- t.served + 1;
    t.events <- { Oracle.eop = req.op; ok } :: t.events;
    if not req.internal then begin
      t.client_events <- { Oracle.eop = req.op; ok } :: t.client_events;
      on_complete req ~ok ~recovered
    end
  in
  let execute req =
    t.inflight <- Some (Primary (req, t.algo.Set_intf.note_begin req.op));
    Metrics.op_begin
      ~kind:(Metrics.kind_of_op req.op)
      ~key:(Set_intf.op_key req.op);
    Forensics.op_begin ~tid:t.server_tid
      ~kind:(Metrics.kind_of_op req.op)
      ~key:(Set_intf.op_key req.op);
    let ok = Set_intf.apply t.algo req.op in
    Metrics.op_end ~ok;
    Forensics.op_end ~tid:t.server_tid ~ok;
    (* Mirror a committed client mutation to the replica before the
       request completes — that ordering is what makes the replica's
       state a prefix-exact copy and the failover result correct.  The
       token is parked in [inflight] first so a crash mid-mirror
       recovers detectably on the promoted replica. *)
    (* internal (migration) mutations mirror too: the replica must stay
       an exact copy of the primary, migrated keys included, or a later
       promotion would drop them *)
    (match t.replica with
    | Some rep when ok && Set_intf.is_update req.op ->
        let tok = Replica.note_mirror rep req.op in
        t.inflight <- Some (Mirror (req, ok, tok));
        let okr = Replica.apply_mirror rep req.op in
        if okr <> ok && rep.Replica.ready then Replica.record_mismatch rep
    | _ -> ());
    t.inflight <- None;
    complete req ~ok ~recovered:false
  in
  let drain_batch () =
    (* one activation (mailbox wakeup) amortized over up to [batch]
       requests, the way the paper amortizes fences over operations *)
    Sim.step activation_ns;
    let n = ref 0 in
    while !n < batch && not (Queue.is_empty t.mailbox) do
      let req = Queue.pop t.mailbox in
      Metrics.set_gauge t.queue_gauge (float_of_int (Queue.length t.mailbox));
      (match if req.internal then `Execute else guard req with
      | `Execute -> execute req
      | `Defer ->
          (* key mid-handoff: requeue behind the mailbox and let the
             migration finish moving it; re-evaluated on next drain *)
          t.deferred <- t.deferred + 1;
          Queue.push req t.mailbox
      | `Forward target ->
          (* the routing table moved this key (handoff committed, or the
             client routed against a stale phase): hand the request to
             its current owner *)
          t.forwarded <- t.forwarded + 1;
          req.rsid <- target.sid;
          submit target req);
      incr n
    done
  in
  (* One bounded unit of replica re-sync: copy the next backlog key to
     the rebuilding replica (skipping keys a concurrent mutation already
     mirrored), behind a parked token so a crash mid-copy recovers. *)
  let resync_step () =
    match t.replica with
    | Some rep when not rep.Replica.ready -> (
        match rep.Replica.backlog with
        | [] -> Replica.finish_resync rep
        | k :: rest ->
            rep.Replica.backlog <- rest;
            if (not (Replica.skip_copy rep k)) && t.algo.Set_intf.find k then begin
              let op = Set_intf.Ins k in
              let tok = Replica.note_mirror rep op in
              t.inflight <- Some (Resync (op, tok));
              ignore (Replica.apply_mirror rep op : bool);
              t.inflight <- None
            end)
    | _ -> ()
  in
  let failover rep crash_ns =
    (match wb with
    | `Rng -> Pmem.crash ~rng:(Sim.random_state ()) ~scope:`Heap t.heap
    | (`Drop | `All | `Prefix _) as resolution ->
        Pmem.crash ~resolution ~scope:`Heap t.heap);
    Forensics.note_crash ~round:(-1);
    Sim.step failover_ns;
    (* promote: the replica heap never crashed, so no restart latency
       and no structure repair.  Mark it consumed FIRST so a nested
       crash takes the restart path on the promoted structure. *)
    t.heap <- rep.Replica.heap;
    t.algo <- rep.Replica.algo;
    rep.Replica.ready <- false;
    rep.Replica.promotions <- rep.Replica.promotions + 1;
    rep.Replica.failovers <- (crash_ns, Sim.now ()) :: rep.Replica.failovers;
    Trace.note
      (Printf.sprintf "shard %d failover: replica g%d promoted" t.sid
         rep.Replica.generation);
    (match t.inflight with
    | Some (Primary (req, _old)) ->
        (* the old primary's partial execution died with its heap — the
           request re-executes fresh on the new primary *)
        let tok = t.algo.Set_intf.note_begin req.op in
        t.inflight <- Some (Primary (req, tok));
        let ok = Set_intf.apply t.algo req.op in
        t.inflight <- None;
        t.recovered <- t.recovered + 1;
        complete req ~ok ~recovered:true
    | Some (Mirror (req, okp, tok)) ->
        (* the mirror was running on what is now the primary: recover it
           there for the definite outcome *)
        let ok = t.algo.Set_intf.recover tok in
        if ok <> okp then Replica.record_mismatch rep;
        t.inflight <- None;
        t.recovered <- t.recovered + 1;
        complete req ~ok:okp ~recovered:true
    | Some (Resync _) ->
        (* unreachable: a ready replica has no re-sync in flight *)
        t.inflight <- None
    | None -> ());
    (* restore redundancy: fresh replica heap, backlog = the new
       primary's keys, copied by [resync_step] between requests *)
    Replica.begin_resync rep ~snapshot:(t.algo.Set_intf.contents ())
  in
  let restart crash_ns =
    ignore crash_ns;
    (match wb with
    | `Rng -> Pmem.crash ~rng:(Sim.random_state ()) ~scope:`Heap t.heap
    | (`Drop | `All | `Prefix _) as resolution ->
        Pmem.crash ~resolution ~scope:`Heap t.heap);
    (* there are no campaign rounds in a serve: attribute the crash to no
       round (the heap name carries the shard identity) *)
    Forensics.note_crash ~round:(-1);
    Sim.step restart_ns;
    t.algo.Set_intf.recover_structure ();
    match t.inflight with
    | Some (Primary (req, token)) ->
        Metrics.op_begin ~kind:"recover" ~key:(Set_intf.op_key req.op);
        Forensics.op_begin ~tid:t.server_tid ~kind:"recover"
          ~key:(Set_intf.op_key req.op);
        let ok = t.algo.Set_intf.recover token in
        Metrics.op_end ~ok;
        Forensics.op_end ~tid:t.server_tid ~ok;
        t.inflight <- None;
        t.recovered <- t.recovered + 1;
        complete req ~ok ~recovered:true
    | Some (Mirror (req, okp, tok)) ->
        (* the primary completed (and persisted) the op before the
           mirror began; the replica heap did not crash, but its
           interrupted application must still reach a definite outcome *)
        (match t.replica with
        | Some rep ->
            let okr = rep.Replica.algo.Set_intf.recover tok in
            if okr <> okp && rep.Replica.ready then Replica.record_mismatch rep;
            if not rep.Replica.ready then
              Hashtbl.replace rep.Replica.dirty (Set_intf.op_key req.op) ()
        | None -> ());
        t.inflight <- None;
        t.recovered <- t.recovered + 1;
        complete req ~ok:okp ~recovered:true
    | Some (Resync (op, tok)) ->
        (* the copy target (replica heap) did not crash; settle the
           interrupted copy to a definite outcome and move on *)
        (match t.replica with
        | Some rep -> ignore (rep.Replica.algo.Set_intf.recover tok : bool)
        | None -> ());
        t.inflight <- None;
        ignore op
    | None -> ()
  in
  let recover_crash () =
    t.crashes <- t.crashes + 1;
    t.in_recovery <- true;
    let crash_ns = Sim.now () in
    Trace.note
      (Printf.sprintf "shard %d crash (inflight=%b backlog=%d)" t.sid
         (t.inflight <> None)
         (Queue.length t.mailbox));
    Queue.iter
      (fun (r : request) ->
        if not r.retried then begin
          r.retried <- true;
          if not r.internal then t.retried <- t.retried + 1
        end)
      t.mailbox;
    (match t.replica with
    | Some rep when rep.Replica.ready -> failover rep crash_ns
    | _ -> restart crash_ns);
    (* e.g. the migration's journal rescan on the destination shard —
       runs after heap resolution and structure recovery, so the durable
       journal is authoritative again *)
    (match after_recovery with Some f -> f () | None -> ());
    t.recoveries <- (crash_ns, Sim.now ()) :: t.recoveries;
    Trace.note
      (Printf.sprintf "shard %d recovered in %.0f virtual ns" t.sid
         (Sim.now () -. crash_ns))
  in
  let rec recover_safe () = try recover_crash () with Crash -> recover_safe () in
  let rec loop () =
    match
      if Queue.is_empty t.mailbox then Sim.step poll_ns else drain_batch ();
      resync_step ();
      match side_work with
      | Some work -> ignore (work ~drain:drain_batch : bool)
      | None -> ()
    with
    | () -> if live () then loop ()
    | exception Crash ->
        recover_safe ();
        t.in_recovery <- false;
        loop ()
  in
  loop ();
  t.dispatches <- Sim.dispatches ~tid:t.server_tid
