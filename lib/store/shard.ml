(* One shard of the store: an independent recoverable structure instance
   on its own persistent heap, served by a dedicated fiber that drains a
   volatile mailbox.

   Crash model: a shard-local failure is injected by delivering {!Crash}
   to the server fiber ([Sim.interrupt]), which unwinds whatever request
   it was executing mid-flight.  The server catches it in place and runs
   the recovery protocol itself — no other fiber is disturbed, which is
   the whole point of shard isolation:

   1. count the queued (volatile) mailbox entries as retried backlog —
      they were never started, so serving them later is their first and
      only execution;
   2. [Pmem.crash ~scope:`Heap]: resolve only this shard's outstanding
      write-backs and reset its fields, leaving the survivors' pending
      persistence untouched;
   3. charge [restart_ns] of virtual restart latency (process respawn,
      heap re-mapping) — this is what makes the degraded window
      measurable;
   4. [recover_structure] (Romulus restore / Redo log replay; no-op for
      the lock-free algorithms), then detectable recovery of the
      in-flight request: [recover op] returns its definite outcome, so
      the request completes exactly-once instead of being lost.

   A nested [Crash] during recovery restarts the recovery; that is safe
   because detectable recovery is idempotent (the paper's recover
   semantics) and the in-flight request is only marked complete after
   its definite outcome is known. *)

exception Crash

type state = Pending | Done of { ok : bool; done_ns : float; recovered : bool }

type request = {
  rid : int;
  rsid : int;
  op : Set_intf.op;
  submit_ns : float;
  mutable retried : bool;
  mutable state : state;
}

type t = {
  sid : int;
  server_tid : int;
  heap : Pmem.heap;
  algo : Set_intf.t;
  mailbox : request Queue.t;
  queue_gauge : Metrics.gauge;
  mutable inflight : (request * Set_intf.pending) option;
      (* the request being executed plus the framework's durable pending
         token for it, captured by [note_begin] just before dispatch *)
  mutable initial : int list;
  mutable events : Oracle.event list;  (* newest first *)
  mutable served : int;
  mutable crashes : int;
  mutable retried : int;
  mutable recovered : int;
  mutable max_queue : int;
  mutable recoveries : (float * float) list;  (* (crash_ns, end_ns), newest first *)
  mutable dispatches : int;  (* server-fiber dispatch count, set at exit *)
}

let create factory ~threads ~server_tid sid =
  let heap =
    Pmem.heap
      ~name:(Printf.sprintf "%s-shard%d" factory.Set_intf.fname sid)
      ()
  in
  let algo = factory.Set_intf.make heap ~threads in
  {
    sid;
    server_tid;
    heap;
    algo;
    mailbox = Queue.create ();
    queue_gauge = Metrics.gauge (Printf.sprintf "store.shard%d.queue_depth" sid);
    inflight = None;
    initial = [];
    events = [];
    served = 0;
    crashes = 0;
    retried = 0;
    recovered = 0;
    max_queue = 0;
    recoveries = [];
    dispatches = 0;
  }

let submit t req =
  Queue.push req t.mailbox;
  let depth = Queue.length t.mailbox in
  if depth > t.max_queue then t.max_queue <- depth;
  Metrics.set_gauge t.queue_gauge (float_of_int depth)

let serve t ~batch ~activation_ns ~poll_ns ~restart_ns ~wb ~live ~on_complete =
  let complete req ~ok ~recovered =
    req.state <- Done { ok; done_ns = Sim.now (); recovered };
    t.served <- t.served + 1;
    t.events <- { Oracle.eop = req.op; ok } :: t.events;
    on_complete req ~ok ~recovered
  in
  let drain_batch () =
    (* one activation (mailbox wakeup) amortized over up to [batch]
       requests, the way the paper amortizes fences over operations *)
    Sim.step activation_ns;
    let n = ref 0 in
    while !n < batch && not (Queue.is_empty t.mailbox) do
      let req = Queue.pop t.mailbox in
      Metrics.set_gauge t.queue_gauge (float_of_int (Queue.length t.mailbox));
      t.inflight <- Some (req, t.algo.Set_intf.note_begin req.op);
      Metrics.op_begin
        ~kind:(Metrics.kind_of_op req.op)
        ~key:(Set_intf.op_key req.op);
      Forensics.op_begin ~tid:t.server_tid
        ~kind:(Metrics.kind_of_op req.op)
        ~key:(Set_intf.op_key req.op);
      let ok = Set_intf.apply t.algo req.op in
      Metrics.op_end ~ok;
      Forensics.op_end ~tid:t.server_tid ~ok;
      t.inflight <- None;
      complete req ~ok ~recovered:false;
      incr n
    done
  in
  let recover_crash () =
    t.crashes <- t.crashes + 1;
    let crash_ns = Sim.now () in
    Trace.note
      (Printf.sprintf "shard %d crash (inflight=%b backlog=%d)" t.sid
         (t.inflight <> None)
         (Queue.length t.mailbox));
    Queue.iter
      (fun (r : request) ->
        if not r.retried then begin
          r.retried <- true;
          t.retried <- t.retried + 1
        end)
      t.mailbox;
    (match wb with
    | `Rng -> Pmem.crash ~rng:(Sim.random_state ()) ~scope:`Heap t.heap
    | (`Drop | `All | `Prefix _) as resolution ->
        Pmem.crash ~resolution ~scope:`Heap t.heap);
    (* there are no campaign rounds in a serve: attribute the crash to no
       round (the heap name carries the shard identity) *)
    Forensics.note_crash ~round:(-1);
    Sim.step restart_ns;
    t.algo.Set_intf.recover_structure ();
    (match t.inflight with
    | Some (req, token) ->
        Metrics.op_begin ~kind:"recover" ~key:(Set_intf.op_key req.op);
        Forensics.op_begin ~tid:t.server_tid ~kind:"recover"
          ~key:(Set_intf.op_key req.op);
        let ok = t.algo.Set_intf.recover token in
        Metrics.op_end ~ok;
        Forensics.op_end ~tid:t.server_tid ~ok;
        t.inflight <- None;
        t.recovered <- t.recovered + 1;
        complete req ~ok ~recovered:true
    | None -> ());
    t.recoveries <- (crash_ns, Sim.now ()) :: t.recoveries;
    Trace.note
      (Printf.sprintf "shard %d recovered in %.0f virtual ns" t.sid
         (Sim.now () -. crash_ns))
  in
  let rec recover_safe () = try recover_crash () with Crash -> recover_safe () in
  let rec loop () =
    match
      if Queue.is_empty t.mailbox then Sim.step poll_ns else drain_batch ()
    with
    | () -> if live () then loop ()
    | exception Crash ->
        recover_safe ();
        loop ()
  in
  loop ();
  t.dispatches <- Sim.dispatches ~tid:t.server_tid
