(** One shard of the store: an independent recoverable structure
    instance on its own persistent heap, served by a dedicated fiber
    draining a volatile mailbox.

    Crash protocol (see the implementation header for the full
    narrative): {!Crash} is delivered to the server fiber via
    [Sim.interrupt], unwinding the in-flight request; the server catches
    it in place, resolves only its own heap's write-backs
    ([Pmem.crash ~scope:`Heap]), pays a restart latency, repairs the
    structure ([recover_structure]) and resolves the interrupted request
    to a definite outcome with detectable recovery ([recover op]) — so
    every request ends exactly-once or as clean retried backlog, never
    lost.  Other shards' fibers and pending persistence are untouched. *)

exception Crash
(** Delivered to a server fiber to crash its shard. *)

type state = Pending | Done of { ok : bool; done_ns : float; recovered : bool }

type request = {
  rid : int;
  rsid : int;  (** owning shard *)
  op : Set_intf.op;
  submit_ns : float;  (** client clock at submission *)
  mutable retried : bool;  (** was in a crashed shard's backlog *)
  mutable state : state;
}

type t = {
  sid : int;
  server_tid : int;
  heap : Pmem.heap;
  algo : Set_intf.t;
  mailbox : request Queue.t;
  queue_gauge : Metrics.gauge;
  mutable inflight : (request * Set_intf.pending) option;
      (** the request being executed plus the framework's durable
          pending token for it ([note_begin]) *)
  mutable initial : int list;  (** contents after prefill (oracle input) *)
  mutable events : Oracle.event list;  (** completed requests, newest first *)
  mutable served : int;
  mutable crashes : int;
  mutable retried : int;
  mutable recovered : int;
  mutable max_queue : int;
  mutable recoveries : (float * float) list;
      (** (crash_ns, recovery_end_ns), newest first *)
  mutable dispatches : int;
      (** server-fiber dispatch count, recorded at server exit — bounds
          the meaningful crash points of {!Store.explore} *)
}

val create : Set_intf.factory -> threads:int -> server_tid:int -> int -> t
(** [create factory ~threads ~server_tid sid]: fresh heap named
    ["<algo>-shard<sid>"] plus a structure instance on it.  [threads]
    must cover every fiber tid of the run (descriptor slots are indexed
    by [Sim.tid]). *)

val submit : t -> request -> unit
(** Enqueue into the volatile mailbox (client side); updates the queue
    gauge and high-water mark. *)

val serve :
  t ->
  batch:int ->
  activation_ns:float ->
  poll_ns:float ->
  restart_ns:float ->
  wb:[ `Rng | `Drop | `All | `Prefix of int ] ->
  live:(unit -> bool) ->
  on_complete:(request -> ok:bool -> recovered:bool -> unit) ->
  unit
(** Server-fiber body: drain up to [batch] requests per activation
    (amortizing the [activation_ns] wakeup cost), idle-polling every
    [poll_ns] while the mailbox is empty and [live ()] holds.  Catches
    {!Crash} and runs the shard recovery protocol with write-back
    resolution [wb] and restart latency [restart_ns].  [on_complete]
    fires for every resolved request, including recovered ones. *)
