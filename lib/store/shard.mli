(** One shard of the store: an independent recoverable structure
    instance on its own persistent heap, served by a dedicated fiber
    draining a volatile mailbox.

    Crash protocol (see the implementation header for the full
    narrative): {!Crash} is delivered to the server fiber via
    [Sim.interrupt], unwinding the in-flight request; the server catches
    it in place, resolves only its own heap's write-backs
    ([Pmem.crash ~scope:`Heap]) and then either RESTARTS — pay
    [restart_ns], repair the structure, resolve the interrupted request
    with detectable recovery — or, when a ready {!Replica} exists,
    FAILS OVER: the replica is promoted as the new primary after a
    short [failover_ns], the in-flight request resolves on it, and the
    shard re-syncs a fresh replica in the background.  Either way every
    request ends exactly-once or as clean retried backlog, never lost.
    Other shards' fibers and pending persistence are untouched. *)

exception Crash
(** Delivered to a server fiber to crash its shard. *)

type state = Pending | Done of { ok : bool; done_ns : float; recovered : bool }

type request = {
  rid : int;
  mutable rsid : int;  (** owning shard; rewritten when forwarded *)
  op : Set_intf.op;
  submit_ns : float;  (** client clock at submission *)
  internal : bool;
      (** migration/re-sync plumbing: bypasses the guard, excluded from
          client completion counting, but still an oracle event *)
  mutable retried : bool;  (** was in a crashed shard's backlog *)
  mutable state : state;
}

(** What the server was doing when a crash unwound it, with the durable
    pending token that makes the interrupted application detectably
    recoverable: executing on the primary, mirroring a committed
    mutation (primary result attached), or copying a key to a
    re-syncing replica. *)
type inflight =
  | Primary of request * Set_intf.pending
  | Mirror of request * bool * Set_intf.pending
  | Resync of Set_intf.op * Set_intf.pending

type t = {
  sid : int;
  server_tid : int;
  mutable heap : Pmem.heap;  (** swapped by failover promotion *)
  mutable algo : Set_intf.t;
  replica : Replica.t option;
  mailbox : request Queue.t;
  queue_gauge : Metrics.gauge;
  mutable inflight : inflight option;
  mutable in_recovery : bool;
      (** true while the crash protocol runs — cascade campaigns land a
          second crash inside this window *)
  mutable initial : int list;  (** contents after prefill (oracle input) *)
  mutable events : Oracle.event list;  (** completed requests, newest first *)
  mutable client_events : Oracle.event list;
      (** non-internal completions only — the store-level conservation
          oracle's input *)
  mutable served : int;
  mutable crashes : int;
  mutable retried : int;
  mutable recovered : int;
  mutable deferred : int;  (** guard deferrals (key mid-handoff) *)
  mutable forwarded : int;  (** guard forwards (key owned elsewhere) *)
  mutable max_queue : int;
  mutable recoveries : (float * float) list;
      (** (crash_ns, recovery_end_ns), newest first *)
  mutable dispatches : int;
      (** server-fiber dispatch count, recorded at server exit — bounds
          the meaningful crash points of {!Store.explore} *)
}

val create :
  ?replicate:bool ->
  Set_intf.factory ->
  threads:int ->
  server_tid:int ->
  int ->
  t
(** [create factory ~threads ~server_tid sid]: fresh heap named
    ["<algo>-shard<sid>"] plus a structure instance on it.
    [replicate] (default false) attaches a ready {!Replica} on its own
    heap (the caller must prefill both identically).  [threads] must
    cover every fiber tid of the run (descriptor slots are indexed by
    [Sim.tid]). *)

val submit : t -> request -> unit
(** Enqueue into the volatile mailbox (client side); updates the queue
    gauge and high-water mark. *)

val serve :
  t ->
  batch:int ->
  activation_ns:float ->
  poll_ns:float ->
  restart_ns:float ->
  failover_ns:float ->
  wb:[ `Rng | `Drop | `All | `Prefix of int ] ->
  live:(unit -> bool) ->
  on_complete:(request -> ok:bool -> recovered:bool -> unit) ->
  ?guard:(request -> [ `Execute | `Defer | `Forward of t ]) ->
  ?side_work:(drain:(unit -> unit) -> bool) ->
  ?after_recovery:(unit -> unit) ->
  unit ->
  unit
(** Server-fiber body: drain up to [batch] requests per activation
    (amortizing the [activation_ns] wakeup cost), idle-polling every
    [poll_ns] while the mailbox is empty and [live ()] holds.  Catches
    {!Crash} and runs the shard recovery protocol with write-back
    resolution [wb], restart latency [restart_ns] and promotion latency
    [failover_ns].  [on_complete] fires for every resolved non-internal
    request, including recovered ones.

    [guard] (client requests only) may [`Defer] a request (requeued —
    its key is mid-handoff) or [`Forward] it to its current owner.
    [side_work ~drain] runs one bounded unit of background work per
    loop iteration (the migration scan); [drain] lets it serve this
    shard's own mailbox while waiting on another shard.
    [after_recovery] runs at the end of the crash protocol, after heap
    resolution and structure recovery (the migration's journal
    rescan). *)
