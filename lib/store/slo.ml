(* Service-level reporting for a serve run: request-latency quantiles,
   throughput, per-shard recovery durations and queue depths, and the
   degraded-window analysis around a shard crash.

   Latency is [done_ns - submit_ns] across two per-fiber virtual clocks
   (client submits, server completes).  Under the `Perf policy the
   scheduler keeps clocks closely aligned (min-clock dispatch), so the
   skew is bounded by one scheduling quantum; differences are clamped at
   zero.  Quantiles here are computed exactly from the raw samples
   (nearest-rank), independent of the log-bucketed Metrics histograms. *)

type shard_stat = {
  ss_sid : int;
  ss_backend : string;  (* structure instance name (multi-backend stores) *)
  ss_served : int;
  ss_keys : int;  (* resident keys at end of run (balance input) *)
  ss_crashes : int;
  ss_retried : int;
  ss_recovered : int;
  ss_deferred : int;  (* guard deferrals (key mid-handoff) *)
  ss_forwarded : int;  (* guard forwards (key owned elsewhere) *)
  ss_max_queue : int;
  ss_heap_lines : int;  (* occupancy of this shard's heap, in cache lines *)
  ss_recovery_ns : float list;  (* per crash, oldest first *)
  ss_promotions : int;  (* crashes resolved by replica failover *)
  ss_failover_ns : float list;  (* per promotion: crash -> promoted, oldest first *)
  ss_resync_ns : float list;  (* per completed replica re-sync, oldest first *)
}

type degraded = {
  dg_victim : int;
  dg_window_ns : float;  (* total virtual time spent crashed+recovering *)
  dg_survivor_completions : int;
  dg_survivor_mops : float;
}

(* One shard's slice of one virtual-time window: the raw material of the
   Perfetto counter tracks and the windows CSV.  Rows are flat
   (window x shard) so consumers never have to re-join. *)
type window = {
  w_index : int;
  w_start_ns : float;
  w_end_ns : float;
  w_sid : int;
  w_completions : int;
  w_mops : float;
  w_lat_mean_ns : float option;
}

type report = {
  total_requests : int;
  completed : int;
  lost : int;
  retried : int;
  recovered : int;
  makespan_ns : float;
  throughput_mops : float;
  lat_mean_ns : float option;
  lat_p50_ns : float option;
  lat_p90_ns : float option;
  lat_p99_ns : float option;
  degraded : degraded option;
  shards : shard_stat list;
  balance : float option;
      (* max/min resident-key ratio across the set-model shards: 1.0 is
         perfect balance; [None] when it is not measurable (no set-model
         shard, or some set-model shard ended empty) *)
  windows : window list;  (* window-major, then shard id; [] if empty run *)
  window_ns : float;
  divergences : int;
}

(* [None] when there are no samples: a run that completed nothing has no
   latency distribution, and reporting a fabricated 0 ns quantile would
   read as an impossibly fast service instead of an empty one. *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then None
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    Some sorted.(max 0 (min (n - 1) (rank - 1)))

let latency (req : Shard.request) =
  match req.Shard.state with
  | Shard.Pending -> None
  | Shard.Done { done_ns; _ } ->
      Some (Float.max 0. (done_ns -. req.Shard.submit_ns))

let default_window_count = 8

let build ?window_ns ~total ~divergences ~requests ~(shards : Shard.t array)
    ~crash_victim () =
  let completed = ref 0 and lost = ref 0 in
  let first_submit = ref infinity and last_done = ref 0. in
  let lats = ref [] in
  List.iter
    (fun (r : Shard.request) ->
      if r.Shard.submit_ns < !first_submit then first_submit := r.Shard.submit_ns;
      match r.Shard.state with
      | Shard.Pending -> incr lost
      | Shard.Done { done_ns; _ } ->
          incr completed;
          if done_ns > !last_done then last_done := done_ns;
          lats := Float.max 0. (done_ns -. r.Shard.submit_ns) :: !lats)
    requests;
  let lats = Array.of_list !lats in
  Array.sort compare lats;
  let mean =
    if Array.length lats = 0 then None
    else
      Some (Array.fold_left ( +. ) 0. lats /. float_of_int (Array.length lats))
  in
  let makespan =
    if !completed = 0 then 0. else Float.max 1. (!last_done -. !first_submit)
  in
  let stats =
    Array.to_list
      (Array.map
         (fun (s : Shard.t) ->
           {
             ss_sid = s.Shard.sid;
             ss_backend = s.Shard.algo.Set_intf.name;
             ss_served = s.Shard.served;
             ss_keys = List.length (s.Shard.algo.Set_intf.contents ());
             ss_crashes = s.Shard.crashes;
             ss_retried = s.Shard.retried;
             ss_recovered = s.Shard.recovered;
             ss_deferred = s.Shard.deferred;
             ss_forwarded = s.Shard.forwarded;
             ss_max_queue = s.Shard.max_queue;
             ss_heap_lines = Pmem.lines_allocated s.Shard.heap;
             ss_recovery_ns =
               List.rev_map (fun (t0, t1) -> t1 -. t0) s.Shard.recoveries;
             ss_promotions =
               (match s.Shard.replica with
               | Some rep -> rep.Replica.promotions
               | None -> 0);
             ss_failover_ns =
               (match s.Shard.replica with
               | Some rep ->
                   List.rev_map (fun (t0, t1) -> t1 -. t0) rep.Replica.failovers
               | None -> []);
             ss_resync_ns =
               (match s.Shard.replica with
               | Some rep ->
                   List.rev_map (fun (t0, t1) -> t1 -. t0) rep.Replica.resyncs
               | None -> []);
           })
         shards)
  in
  (* Balance across the set-model shards only: a FIFO topic backend's
     resident count follows its enqueue/dequeue mix, not placement, so
     mixing it in would drown the router's signal. *)
  let balance =
    let key_counts =
      Array.to_list shards
      |> List.filter_map (fun (s : Shard.t) ->
             match s.Shard.algo.Set_intf.model with
             | Set_intf.Set_model ->
                 Some (List.length (s.Shard.algo.Set_intf.contents ()))
             | Set_intf.Queue_model -> None)
    in
    match key_counts with
    | [] -> None
    | c :: cs ->
        let mn = List.fold_left min c cs and mx = List.fold_left max c cs in
        if mn = 0 then if mx = 0 then Some 1.0 else None
        else Some (float_of_int mx /. float_of_int mn)
  in
  let degraded =
    match crash_victim with
    | None -> None
    | Some victim when victim < 0 || victim >= Array.length shards -> None
    | Some victim ->
        let windows = shards.(victim).Shard.recoveries in
        if windows = [] then None
        else begin
          let window_ns =
            List.fold_left (fun acc (t0, t1) -> acc +. (t1 -. t0)) 0. windows
          in
          let in_window ns =
            List.exists (fun (t0, t1) -> ns >= t0 && ns <= t1) windows
          in
          let survivors =
            List.fold_left
              (fun acc (r : Shard.request) ->
                match r.Shard.state with
                | Shard.Done { done_ns; _ }
                  when r.Shard.rsid <> victim && in_window done_ns ->
                    acc + 1
                | _ -> acc)
              0 requests
          in
          Some
            {
              dg_victim = victim;
              dg_window_ns = window_ns;
              dg_survivor_completions = survivors;
              dg_survivor_mops =
                (if window_ns <= 0. then 0.
                 else float_of_int survivors /. window_ns *. 1000.);
            }
        end
  in
  (* Windowed per-shard time-series: split [first_submit, last_done] into
     fixed virtual-time windows and bucket completions by [done_ns].
     Every (window, shard) cell is emitted — including empty ones — so
     the counter tracks and the CSV have a regular grid. *)
  let wn =
    match window_ns with
    | Some w when w > 0. -> w
    | _ ->
        if makespan <= 0. then 0.
        else Float.max 1. (makespan /. float_of_int default_window_count)
  in
  let windows =
    if !completed = 0 || wn <= 0. then []
    else begin
      let nshards = Array.length shards in
      let nwin =
        max 1 (int_of_float (ceil (makespan /. wn)))
      in
      let counts = Array.make_matrix nwin nshards 0 in
      let lat_sums = Array.make_matrix nwin nshards 0. in
      List.iter
        (fun (r : Shard.request) ->
          match r.Shard.state with
          | Shard.Pending -> ()
          | Shard.Done { done_ns; _ } ->
              let w =
                int_of_float ((done_ns -. !first_submit) /. wn)
              in
              let w = max 0 (min (nwin - 1) w) in
              counts.(w).(r.Shard.rsid) <- counts.(w).(r.Shard.rsid) + 1;
              lat_sums.(w).(r.Shard.rsid) <-
                lat_sums.(w).(r.Shard.rsid)
                +. Float.max 0. (done_ns -. r.Shard.submit_ns))
        requests;
      List.concat
        (List.init nwin (fun w ->
             List.init nshards (fun sid ->
                 let n = counts.(w).(sid) in
                 {
                   w_index = w;
                   w_start_ns = !first_submit +. (float_of_int w *. wn);
                   w_end_ns = !first_submit +. (float_of_int (w + 1) *. wn);
                   w_sid = sid;
                   w_completions = n;
                   w_mops =
                     (if wn <= 0. then 0.
                      else float_of_int n /. wn *. 1000.);
                   w_lat_mean_ns =
                     (if n = 0 then None
                      else Some (lat_sums.(w).(sid) /. float_of_int n));
                 })))
    end
  in
  {
    total_requests = total;
    completed = !completed;
    lost = !lost;
    retried =
      Array.fold_left (fun acc s -> acc + s.Shard.retried) 0 shards;
    recovered =
      Array.fold_left (fun acc s -> acc + s.Shard.recovered) 0 shards;
    makespan_ns = makespan;
    throughput_mops =
      (if makespan <= 0. then 0.
       else float_of_int !completed /. makespan *. 1000.);
    lat_mean_ns = mean;
    lat_p50_ns = quantile lats 0.50;
    lat_p90_ns = quantile lats 0.90;
    lat_p99_ns = quantile lats 0.99;
    degraded;
    shards = stats;
    balance;
    windows;
    window_ns = wn;
    divergences;
  }

(* The service-level acceptance gate for `repro serve --check`:
   detectability at the request level means nothing may be lost and —
   when a crash was planned — the victim really crashed, recovery took
   measurable time, and the survivors kept completing requests inside
   the degraded window. *)
let check ?balance_max ~crash_expected r =
  if r.completed = 0 then
    Error
      (Printf.sprintf
         "empty run: 0 of %d requests completed — nothing to check"
         r.total_requests)
  else if r.lost > 0 then
    Error (Printf.sprintf "lost requests: %d never resolved" r.lost)
  else if r.completed <> r.total_requests then
    Error
      (Printf.sprintf "lost requests: completed %d of %d" r.completed
         r.total_requests)
  else
    let balance_verdict () =
      match balance_max with
      | None -> Ok ()
      | Some limit -> (
          match r.balance with
          | None ->
              Error
                "imbalanced shards: a set-model shard ended empty (ratio \
                 unbounded)"
          | Some ratio when ratio > limit ->
              Error
                (Printf.sprintf
                   "imbalanced shards: max/min key ratio %.2f exceeds %.2f"
                   ratio limit)
          | Some _ -> Ok ())
    in
    if crash_expected then
      match r.degraded with
      | None -> Error "lost crash: the planned shard crash never fired"
      | Some d ->
          if d.dg_window_ns <= 0. then
            Error "lost crash: recovery window has zero duration"
          else if d.dg_survivor_completions = 0 then
            Error
              "degraded throughput: no survivor completions during recovery"
          else balance_verdict ()
    else balance_verdict ()

let pp ppf r =
  Format.fprintf ppf
    "requests %d  completed %d  lost %d  retried %d  recovered %d@."
    r.total_requests r.completed r.lost r.retried r.recovered;
  let lat = function
    | None -> "-"
    | Some ns -> Printf.sprintf "%.0f" ns
  in
  Format.fprintf ppf
    "makespan %.0f ns  throughput %.3f Mops/s  latency mean %s  p50 %s  \
     p90 %s  p99 %s ns@."
    r.makespan_ns r.throughput_mops (lat r.lat_mean_ns) (lat r.lat_p50_ns)
    (lat r.lat_p90_ns) (lat r.lat_p99_ns);
  (match r.degraded with
  | None -> ()
  | Some d ->
      Format.fprintf ppf
        "degraded window: shard %d down %.0f ns; survivors completed %d \
         requests (%.3f Mops/s)@."
        d.dg_victim d.dg_window_ns d.dg_survivor_completions d.dg_survivor_mops);
  (match r.balance with
  | None -> ()
  | Some ratio -> Format.fprintf ppf "balance: max/min key ratio %.2f@." ratio);
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  shard %d (%s): served %d  keys %d  crashes %d  retried %d  \
         recovered %d  deferred %d  forwarded %d  max-queue %d  heap %d \
         lines%s%s@."
        s.ss_sid s.ss_backend s.ss_served s.ss_keys s.ss_crashes s.ss_retried
        s.ss_recovered s.ss_deferred s.ss_forwarded s.ss_max_queue
        s.ss_heap_lines
        (match s.ss_recovery_ns with
        | [] -> ""
        | ds ->
            "  recovery " ^ String.concat "+"
              (List.map (fun d -> Printf.sprintf "%.0fns" d) ds))
        (if s.ss_promotions = 0 then ""
         else
           Printf.sprintf "  failover %d (%s)%s" s.ss_promotions
             (String.concat "+"
                (List.map (fun d -> Printf.sprintf "%.0fns" d) s.ss_failover_ns))
             (match s.ss_resync_ns with
             | [] -> ", re-sync pending"
             | ds ->
                 ", re-sync " ^ String.concat "+"
                   (List.map (fun d -> Printf.sprintf "%.0fns" d) ds))))
    r.shards;
  if r.divergences > 0 then
    Format.fprintf ppf "  WARNING: %d schedule divergences@." r.divergences

let to_json r =
  let b = Buffer.create 1024 in
  let f fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  f "{";
  f "\"total_requests\":%d,\"completed\":%d,\"lost\":%d," r.total_requests
    r.completed r.lost;
  f "\"retried\":%d,\"recovered\":%d," r.retried r.recovered;
  f "\"makespan_ns\":%.1f,\"throughput_mops\":%.6f," r.makespan_ns
    r.throughput_mops;
  let lat = function
    | None -> "null"
    | Some ns -> Printf.sprintf "%.1f" ns
  in
  f "\"latency_ns\":{\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}," (lat r.lat_mean_ns)
    (lat r.lat_p50_ns) (lat r.lat_p90_ns) (lat r.lat_p99_ns);
  (match r.degraded with
  | None -> f "\"degraded\":null,"
  | Some d ->
      f
        "\"degraded\":{\"victim\":%d,\"window_ns\":%.1f,\"survivor_completions\":%d,\"survivor_mops\":%.6f},"
        d.dg_victim d.dg_window_ns d.dg_survivor_completions d.dg_survivor_mops);
  (match r.balance with
  | None -> f "\"balance\":null,"
  | Some ratio -> f "\"balance\":%.4f," ratio);
  f "\"shards\":[";
  List.iteri
    (fun i s ->
      if i > 0 then f ",";
      let ns_list l =
        String.concat "," (List.map (fun d -> Printf.sprintf "%.1f" d) l)
      in
      f
        "{\"sid\":%d,\"backend\":\"%s\",\"served\":%d,\"keys\":%d,\"crashes\":%d,\"retried\":%d,\"recovered\":%d,\"deferred\":%d,\"forwarded\":%d,\"max_queue\":%d,\"heap_lines\":%d,\"recovery_ns\":[%s],\"promotions\":%d,\"failover_ns\":[%s],\"resync_ns\":[%s]}"
        s.ss_sid s.ss_backend s.ss_served s.ss_keys s.ss_crashes s.ss_retried
        s.ss_recovered s.ss_deferred s.ss_forwarded s.ss_max_queue
        s.ss_heap_lines (ns_list s.ss_recovery_ns) s.ss_promotions
        (ns_list s.ss_failover_ns) (ns_list s.ss_resync_ns))
    r.shards;
  f "],\"window_ns\":%.1f,\"windows\":[" r.window_ns;
  List.iteri
    (fun i w ->
      if i > 0 then f ",";
      f
        "{\"index\":%d,\"start_ns\":%.1f,\"end_ns\":%.1f,\"sid\":%d,\"completions\":%d,\"mops\":%.6f,\"lat_mean_ns\":%s}"
        w.w_index w.w_start_ns w.w_end_ns w.w_sid w.w_completions w.w_mops
        (match w.w_lat_mean_ns with
        | None -> "null"
        | Some ns -> Printf.sprintf "%.1f" ns))
    r.windows;
  f "],\"divergences\":%d}" r.divergences;
  Buffer.contents b

(* The per-shard windowed time-series as CSV (one row per window x shard,
   fixed precision so output is byte-stable). *)
let windows_csv r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "window,start_ns,end_ns,shard,completions,throughput_mops,lat_mean_ns\n";
  List.iter
    (fun w ->
      Buffer.add_string b
        (Printf.sprintf "%d,%.1f,%.1f,%d,%d,%.6f,%s\n" w.w_index w.w_start_ns
           w.w_end_ns w.w_sid w.w_completions w.w_mops
           (match w.w_lat_mean_ns with
           | None -> ""
           | Some ns -> Printf.sprintf "%.1f" ns)))
    r.windows;
  Buffer.contents b
