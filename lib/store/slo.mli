(** Service-level reporting for serve runs: latency quantiles,
    throughput, per-shard recovery durations and the degraded-window
    analysis around a shard crash.

    Latency spans two per-fiber virtual clocks (client submit, server
    completion); under the `Perf policy the min-clock scheduler keeps
    them aligned to within one scheduling quantum, and differences are
    clamped at zero.  Quantiles are exact nearest-rank over the raw
    samples, independent of the log-bucketed [Metrics] histograms. *)

type shard_stat = {
  ss_sid : int;
  ss_backend : string;  (** structure instance name (multi-backend stores) *)
  ss_served : int;
  ss_keys : int;  (** resident keys at end of run (balance input) *)
  ss_crashes : int;
  ss_retried : int;  (** backlog requeued by this shard's crashes *)
  ss_recovered : int;  (** in-flight requests resolved via [recover] *)
  ss_deferred : int;  (** guard deferrals (key mid-handoff) *)
  ss_forwarded : int;  (** guard forwards (key owned elsewhere) *)
  ss_max_queue : int;
  ss_heap_lines : int;  (** cache lines allocated on this shard's heap *)
  ss_recovery_ns : float list;  (** per crash, oldest first *)
  ss_promotions : int;  (** crashes resolved by replica failover *)
  ss_failover_ns : float list;
      (** per promotion, crash → promoted, oldest first — the failover
          window replication buys in place of a restart *)
  ss_resync_ns : float list;
      (** per completed replica re-sync, oldest first *)
}

type degraded = {
  dg_victim : int;
  dg_window_ns : float;
      (** total virtual time the victim spent crashed + recovering *)
  dg_survivor_completions : int;
      (** requests completed by other shards inside that window *)
  dg_survivor_mops : float;
}

type window = {
  w_index : int;
  w_start_ns : float;
  w_end_ns : float;
  w_sid : int;
  w_completions : int;
  w_mops : float;
  w_lat_mean_ns : float option;  (** [None] for an empty cell *)
}
(** One shard's slice of one virtual-time window — the raw material of
    the Perfetto counter tracks ([Trace.win] events) and of
    {!windows_csv}.  The grid is regular: every (window, shard) cell
    appears, including empty ones. *)

type report = {
  total_requests : int;
  completed : int;
  lost : int;  (** requests that never resolved — must be 0 *)
  retried : int;
  recovered : int;
  makespan_ns : float;
  throughput_mops : float;
  lat_mean_ns : float option;
      (** [None] when no request completed: an empty run has no latency
          distribution, and a fabricated 0 ns would read as an
          impossibly fast service (JSON renders these as [null]) *)
  lat_p50_ns : float option;
  lat_p90_ns : float option;
  lat_p99_ns : float option;
  degraded : degraded option;
  shards : shard_stat list;
  balance : float option;
      (** max/min resident-key ratio across the set-model shards (1.0 =
          perfect); [None] when unmeasurable — no set-model shard, or a
          set-model shard ended empty while another didn't *)
  windows : window list;  (** window-major, then shard id; [[]] if empty *)
  window_ns : float;  (** width actually used (makespan/8 by default) *)
  divergences : int;  (** schedule-replay divergences (0 unless replaying) *)
}

val latency : Shard.request -> float option
(** Completion latency of a single request, clamped at zero; [None] while
    pending. *)

val build :
  ?window_ns:float ->
  total:int ->
  divergences:int ->
  requests:Shard.request list ->
  shards:Shard.t array ->
  crash_victim:int option ->
  unit ->
  report
(** [window_ns] sets the windowed time-series' bucket width; by default
    the makespan is split into 8 windows. *)

val check :
  ?balance_max:float -> crash_expected:bool -> report -> (unit, string) result
(** The `--check` gate: at least one completed request (an empty run
    fails loudly instead of vacuously passing), zero lost requests; and
    when a crash was planned, the victim really crashed, the recovery
    window has positive duration, and survivors completed requests
    inside it.  [balance_max] additionally requires {!report.balance} to
    be measurable and at most this ratio (the `--check-balance` gate). *)

val pp : Format.formatter -> report -> unit
val to_json : report -> string

val windows_csv : report -> string
(** The windowed time-series as CSV
    ([window,start_ns,end_ns,shard,completions,throughput_mops,lat_mean_ns]),
    byte-stable. *)
