(* The sharded recoverable KV service: N shards (each an independent
   recoverable structure on its own heap, see Shard), a deterministic
   router, client fibers (closed-loop, or open-loop with a virtual-time
   Poisson arrival process), and a controller fiber that can crash a
   single shard mid-traffic.

   Thread layout: tid 0 is the controller, tids 1..C the clients, tids
   C+1..C+S the shard servers.  Everything runs in ONE Sim.run — the
   crash is a per-fiber interrupt handled inside the victim's server
   fiber, not a run boundary, which is what lets the surviving shards
   keep serving while the victim recovers. *)

type crash_plan =
  | After_requests of { victim : int; requests : int }
      (* controller-injected once the store has completed [requests] *)
  | At_dispatch of { victim : int; dispatch : int }
      (* static Sim interrupt at the victim server's n-th dispatch —
         the exploration harness's replayable crash point *)

type config = {
  factory : Set_intf.factory;
  shards : int;
  clients : int;
  ops_per_client : int;
  batch : int;
  workload : Workload.config;
  open_loop_ns : float option;
  crash : crash_plan option;
  wb : [ `Rng | `Drop | `All | `Prefix of int ];
  restart_ns : float;
  seed : int;
}

let default_config factory =
  {
    factory;
    shards = 4;
    clients = 4;
    ops_per_client = 200;
    batch = 1;
    workload = Workload.default Workload.update_intensive;
    open_loop_ns = None;
    crash = None;
    wb = `Rng;
    restart_ns = 5_000.;
    seed = 1;
  }

(* Service-level virtual costs (the structures' own costs come from
   Cost.current): a request submission, an idle mailbox poll, and one
   server activation amortized over a batch. *)
let submit_ns = 30.
let poll_ns = 60.
let activation_ns = 40.

let victim_of = function
  | None -> None
  | Some (After_requests { victim; _ }) | Some (At_dispatch { victim; _ }) ->
      Some victim

let validate cfg =
  let threads = 1 + cfg.clients + cfg.shards in
  if cfg.shards < 1 then Error "store: shards must be >= 1"
  else if cfg.clients < 1 then Error "store: clients must be >= 1"
  else if cfg.ops_per_client < 1 then Error "store: ops-per-client must be >= 1"
  else if cfg.batch < 1 then Error "store: batch must be >= 1"
  else if threads > Pmem.max_threads then
    Error
      (Printf.sprintf "store: 1 + %d clients + %d shards exceeds %d threads"
         cfg.clients cfg.shards Pmem.max_threads)
  else
    match victim_of cfg.crash with
    | Some v when v < 0 || v >= cfg.shards ->
        Error (Printf.sprintf "store: crash shard %d out of range" v)
    | _ -> Ok threads

let run ?(record = fun (_ : int) -> ()) ?(schedule = [||]) cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok threads -> (
      Pmem.reset_pending ();
      Pstats.set_all_enabled true;
      let server_tid sid = 1 + cfg.clients + sid in
      let shards =
        Array.init cfg.shards (fun sid ->
            Shard.create cfg.factory ~threads ~server_tid:(server_tid sid) sid)
      in
      (* Prefill outside the simulated run (like Crashes): route each key
         to its owning shard so per-shard contents match live routing. *)
      let prng = Random.State.make [| cfg.seed; 0x5704E |] in
      for _ = 1 to cfg.workload.Workload.prefill_n do
        let k = Workload.gen_key prng cfg.workload in
        let sid = Router.route ~shards:cfg.shards k in
        ignore (shards.(sid).Shard.algo.Set_intf.insert k : bool)
      done;
      Pmem.reset_pending ();
      if Metrics.active () then Metrics.reset ();
      Array.iter
        (fun (s : Shard.t) ->
          s.Shard.initial <- s.Shard.algo.Set_intf.contents ())
        shards;
      let total = cfg.clients * cfg.ops_per_client in
      let completed = ref 0 in
      let requests = ref [] in
      let next_rid = ref 0 in
      let lat_hist = Metrics.histogram "store.request.latency" in
      let on_complete (req : Shard.request) ~ok:_ ~recovered:_ =
        incr completed;
        Metrics.observe lat_hist
          (Float.max 0. (Sim.now () -. req.Shard.submit_ns))
      in
      let live () = !completed < total in
      let client cid =
        let crng = Random.State.make [| cfg.seed; cid; 0xC11E27 |] in
        for _ = 1 to cfg.ops_per_client do
          (match cfg.open_loop_ns with
          | None -> ()
          | Some mean ->
              (* exponential interarrival gap in virtual time; [advance]
                 rather than [step]: waiting for an arrival is not a
                 shared-memory access *)
              let u = Random.State.float crng 1. in
              Sim.advance (-.mean *. log (1. -. u)));
          Sim.step submit_ns;
          let op = Workload.gen_op crng cfg.workload in
          let sid = Router.route ~shards:cfg.shards (Set_intf.op_key op) in
          incr next_rid;
          let req =
            {
              Shard.rid = !next_rid;
              rsid = sid;
              op;
              submit_ns = Sim.now ();
              retried = false;
              state = Shard.Pending;
            }
          in
          requests := req :: !requests;
          Shard.submit shards.(sid) req;
          match cfg.open_loop_ns with
          | Some _ -> ()  (* open loop: fire and move to the next arrival *)
          | None ->
              (* closed loop: block until the request resolves *)
              let rec wait () =
                match req.Shard.state with
                | Shard.Pending ->
                    Sim.step poll_ns;
                    wait ()
                | Shard.Done _ -> ()
              in
              wait ()
        done
      in
      let controller () =
        match cfg.crash with
        | Some (After_requests { victim; requests = after }) ->
            let rec wait () =
              if !completed < after && !completed < total then begin
                Sim.step 50.;
                wait ()
              end
            in
            wait ();
            if live () then begin
              Trace.note
                (Printf.sprintf "injecting crash into shard %d after %d \
                                 completions" victim !completed);
              Sim.interrupt ~tid:(server_tid victim) Shard.Crash
            end
        | Some (At_dispatch _) | None -> ()
      in
      let bodies =
        Array.init threads (fun tid ->
            if tid = 0 then fun (_ : int) -> controller ()
            else if tid <= cfg.clients then fun (_ : int) -> client (tid - 1)
            else
              fun (_ : int) ->
                Shard.serve
                  shards.(tid - 1 - cfg.clients)
                  ~batch:cfg.batch ~activation_ns ~poll_ns
                  ~restart_ns:cfg.restart_ns ~wb:cfg.wb ~live ~on_complete)
      in
      let interrupts =
        match cfg.crash with
        | Some (At_dispatch { victim; dispatch }) ->
            [| (server_tid victim, dispatch, Shard.Crash) |]
        | _ -> [||]
      in
      let step_limit = max 2_000_000 (total * 20_000) in
      let divergences = ref 0 in
      match
        Sim.run ~policy:`Perf ~seed:cfg.seed ~step_limit ~schedule ~record
          ~divergence:(fun ~step:_ ~want:_ -> incr divergences)
          ~interrupts bodies
      with
      | exception Pmem.Poisoned what ->
          Error (Printf.sprintf "touched never-persisted data: %s" what)
      | exception Sim.Step_limit ->
          Error
            "step budget exhausted: lost request or livelock suspected"
      | Sim.Crashed_at _ -> Error "store: unexpected machine-wide crash"
      | Sim.All_done -> (
          let shard_error =
            Array.fold_left
              (fun acc (s : Shard.t) ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match s.Shard.algo.Set_intf.check () with
                    | Error msg ->
                        Some
                          (Printf.sprintf "structure invariant: shard %d: %s"
                             s.Shard.sid msg)
                    | Ok () -> (
                        let final = s.Shard.algo.Set_intf.contents () in
                        match
                          Oracle.check ~initial:s.Shard.initial ~final
                            (List.rev s.Shard.events)
                        with
                        | Error msg ->
                            Some
                              (Printf.sprintf "oracle: shard %d: %s"
                                 s.Shard.sid msg)
                        | Ok () -> None)))
              None shards
          in
          match shard_error with
          | Some msg -> Error msg
          | None ->
              let report =
                Slo.build ~total ~divergences:!divergences
                  ~requests:!requests ~shards
                  ~crash_victim:(victim_of cfg.crash) ()
              in
              if Trace.active () then
                List.iter
                  (fun (w : Slo.window) ->
                    Trace.win ~sid:w.Slo.w_sid ~index:w.Slo.w_index
                      ~start_ns:w.Slo.w_start_ns ~end_ns:w.Slo.w_end_ns
                      ~completions:w.Slo.w_completions ~mops:w.Slo.w_mops
                      ~lat_mean_ns:w.Slo.w_lat_mean_ns)
                  report.Slo.windows;
              Ok report))

(* ---- bounded exhaustive exploration ----------------------------------- *)

(* Sweep shard-local crash points of a small store: for each victim
   shard, interrupt its server at dispatch 1, 2, ... up to
   [dispatch_budget] (or until the interrupt stops firing — the server
   finished earlier), crossed with the deterministic write-back
   resolutions.  Every execution must yield definite request outcomes —
   zero lost, per-shard oracle agreement — or the sweep reports the
   first counterexample.  With a fixed seed and the `Perf policy the
   schedule is pinned, so a failing (victim, dispatch, wb) triple
   replays as is. *)

type explore_stats = {
  ex_executions : int;
  ex_fired : int;  (* runs whose interrupt actually delivered *)
  ex_max_dispatch : int array;  (* highest firing dispatch index per shard *)
  ex_failures : int;
  ex_first_failure : string option;
  ex_first_cex : (config * int array * string) option;
}

let wb_label = function
  | `Rng -> "rng"
  | `Drop -> "drop"
  | `All -> "all"
  | `Prefix n -> Printf.sprintf "prefix:%d" n

let explore ?(wbs = [ `Drop; `All; `Prefix 1; `Prefix 2 ])
    ?(dispatch_budget = 64) ?(jobs = 1) cfg =
  match run { cfg with crash = None } with
  | Error msg -> Error ("explore: crash-free baseline failed: " ^ msg)
  | Ok _ ->
      (* One victim's sweep is independent of every other victim's (each
         execution rebuilds the store from the seed), so victims are the
         parallel work items: results merge per victim index and the
         reported first counterexample is the lowest victim's first, which
         is exactly the sequential visit order — output is byte-identical
         at every [jobs] value. *)
      let sweep_victim victim =
        let executions = ref 0 in
        let fired = ref 0 in
        let failures = ref 0 in
        let first_failure = ref None in
        let first_cex = ref None in
        let fail cfg' msg =
          incr failures;
          if !first_failure = None then begin
            first_failure := Some msg;
            (* Re-run the counterexample recording its schedule so the
               caller can save a replayable repro; the seed pins the
               interleaving, so this reproduces the same failure.  The
               stored error is the bare one a replay will observe, not
               the "victim/dispatch/wb"-prefixed display string. *)
            let sched = ref [] in
            let bare =
              match run ~record:(fun c -> sched := c :: !sched) cfg' with
              | Error e -> e
              | Ok r when r.Slo.lost > 0 ->
                  Printf.sprintf "%d lost requests" r.Slo.lost
              | Ok _ -> msg
            in
            first_cex := Some (cfg', Array.of_list (List.rev !sched), bare)
          end
        in
        let max_dispatch = ref 0 in
        let k = ref 1 in
        let continue = ref true in
        while !continue && !k <= dispatch_budget do
          let fired_here = ref false in
          List.iter
            (fun wb ->
              let cfg' =
                { cfg with crash = Some (At_dispatch { victim; dispatch = !k }); wb }
              in
              incr executions;
              match run cfg' with
              | Error msg ->
                  fired_here := true;
                  fail cfg'
                    (Printf.sprintf "victim %d dispatch %d wb %s: %s" victim
                       !k (wb_label wb) msg)
              | Ok report ->
                  let stat = List.nth report.Slo.shards victim in
                  if stat.Slo.ss_crashes > 0 then begin
                    incr fired;
                    fired_here := true
                  end;
                  if report.Slo.lost > 0 then
                    fail cfg'
                      (Printf.sprintf
                         "victim %d dispatch %d wb %s: %d lost requests"
                         victim !k (wb_label wb) report.Slo.lost))
            wbs;
          if !fired_here then begin
            max_dispatch := !k;
            incr k
          end
          else continue := false
        done;
        (!executions, !fired, !failures, !first_failure, !first_cex,
         !max_dispatch)
      in
      let per_victim =
        Parallel.run ~jobs
          (fun _ v -> sweep_victim v)
          (Array.init cfg.shards (fun v -> v))
      in
      let executions = ref 0 in
      let fired = ref 0 in
      let failures = ref 0 in
      let first_failure = ref None in
      let first_cex = ref None in
      let max_dispatch = Array.make cfg.shards 0 in
      Array.iteri
        (fun v (ex, fi, fa, ff, cex, md) ->
          executions := !executions + ex;
          fired := !fired + fi;
          failures := !failures + fa;
          if !first_failure = None then begin
            first_failure := ff;
            first_cex := cex
          end;
          max_dispatch.(v) <- md)
        per_victim;
      Ok
        {
          ex_executions = !executions;
          ex_fired = !fired;
          ex_max_dispatch = max_dispatch;
          ex_failures = !failures;
          ex_first_failure = !first_failure;
          ex_first_cex = !first_cex;
        }
