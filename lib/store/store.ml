(* The sharded recoverable KV service: N shards (each an independent
   recoverable structure on its own heap, see Shard), a versioned
   two-phase router, client fibers (closed-loop, or open-loop with a
   virtual-time Poisson arrival process), and a controller fiber that
   injects crashes and releases the live migration mid-traffic.

   Thread layout: tid 0 is the controller, tids 1..C the clients, tids
   C+1..C+S the shard servers (plus one more server when a migration
   plan adds the destination shard at sid = S).  Everything runs in ONE
   Sim.run — crashes are per-fiber interrupts handled inside each
   victim's server fiber, not run boundaries, which is what lets the
   surviving shards keep serving while victims recover, and what makes
   correlated crashes (both migration endpoints, or a cascade landing
   inside another shard's recovery window) expressible at all. *)

type crash_plan =
  | After_requests of { victim : int; requests : int }
      (* controller-injected once the store has completed [requests] *)
  | At_dispatch of { victim : int; dispatch : int }
      (* static Sim interrupt at the victim server's n-th dispatch —
         the exploration harness's replayable crash point *)
  | Both_at_dispatch of { a : int; b : int; dispatch : int }
      (* correlated power loss: both servers interrupted at their own
         n-th dispatch; each heap's write-backs resolve independently
         ([a] under [wb], [b] under [wb2]) *)
  | Cascade of { first : int; second : int; dispatch : int }
      (* [first] crashes at its n-th dispatch; the controller then
         crashes [second] inside [first]'s recovery window *)

type migrate_plan = {
  msrc : int;  (* shard being split *)
  m_after : int;  (* release the migration after this many completions *)
  m_broken : bool;  (* elide the handoff-commit pwb (negative control) *)
}

type config = {
  factory : Set_intf.factory;
  backends : Set_intf.factory array option;
      (* per-shard structure factories (length = shards); [None] = every
         shard uses [factory] *)
  shards : int;
  clients : int;
  ops_per_client : int;
  batch : int;
  workload : Workload.config;
  open_loop_ns : float option;
  crash : crash_plan option;
  wb : [ `Rng | `Drop | `All | `Prefix of int ];
  wb2 : [ `Rng | `Drop | `All | `Prefix of int ] option;
      (* write-back resolution of the SECOND victim of a correlated
         crash; [None] = same as [wb].  Distinct resolutions are what
         make a both-endpoint power loss adversarial per heap. *)
  restart_ns : float;
  failover_ns : float;
  replicate : bool;  (* attach a promotable replica to every shard *)
  migrate : migrate_plan option;
  seed : int;
}

let default_config factory =
  {
    factory;
    backends = None;
    shards = 4;
    clients = 4;
    ops_per_client = 200;
    batch = 1;
    workload = Workload.default Workload.update_intensive;
    open_loop_ns = None;
    crash = None;
    wb = `Rng;
    wb2 = None;
    restart_ns = 5_000.;
    failover_ns = 500.;
    replicate = false;
    migrate = None;
    seed = 1;
  }

(* Service-level virtual costs (the structures' own costs come from
   Cost.current): a request submission, an idle mailbox poll, and one
   server activation amortized over a batch. *)
let submit_ns = 30.
let poll_ns = 60.
let activation_ns = 40.

(* Total server count: a migration plan adds the destination shard. *)
let shard_total cfg =
  cfg.shards + (match cfg.migrate with Some _ -> 1 | None -> 0)

let victims_of = function
  | None -> []
  | Some (After_requests { victim; _ }) | Some (At_dispatch { victim; _ }) ->
      [ victim ]
  | Some (Both_at_dispatch { a; b; _ }) -> [ a; b ]
  | Some (Cascade { first; second; _ }) -> [ first; second ]

(* The shard whose recovery windows the degraded-window analysis tracks:
   the first victim. *)
let victim_of cfg =
  match victims_of cfg.crash with [] -> None | v :: _ -> Some v

(* The victim whose heap resolves under [wb2] instead of [wb]. *)
let second_victim_of = function
  | Some (Both_at_dispatch { b; _ }) -> Some b
  | Some (Cascade { second; _ }) -> Some second
  | _ -> None

let backend_of cfg sid =
  match cfg.migrate with
  | Some { msrc; _ } when sid = cfg.shards -> (
      (* the destination shard runs the same structure as its source *)
      match cfg.backends with Some arr -> arr.(msrc) | None -> cfg.factory)
  | _ -> (
      match cfg.backends with Some arr -> arr.(sid) | None -> cfg.factory)

let validate cfg =
  let nshards = shard_total cfg in
  let threads = 1 + cfg.clients + nshards in
  if cfg.shards < 1 then Error "store: shards must be >= 1"
  else if cfg.clients < 1 then Error "store: clients must be >= 1"
  else if cfg.ops_per_client < 1 then Error "store: ops-per-client must be >= 1"
  else if cfg.batch < 1 then Error "store: batch must be >= 1"
  else if threads > Pmem.max_threads then
    Error
      (Printf.sprintf "store: 1 + %d clients + %d shards exceeds %d threads"
         cfg.clients nshards Pmem.max_threads)
  else
    match cfg.backends with
    | Some arr when Array.length arr <> cfg.shards ->
        Error
          (Printf.sprintf "store: %d backends for %d shards" (Array.length arr)
             cfg.shards)
    | _ -> (
        match cfg.migrate with
        | Some { msrc; m_after; _ }
          when msrc < 0 || msrc >= cfg.shards || m_after < 0 ->
            Error (Printf.sprintf "store: migration source %d out of range" msrc)
        | _ -> (
            let bad =
              List.find_opt (fun v -> v < 0 || v >= nshards)
                (victims_of cfg.crash)
            in
            match (bad, cfg.crash) with
            | Some v, _ ->
                Error (Printf.sprintf "store: crash shard %d out of range" v)
            | None, Some (Both_at_dispatch { a; b; _ }) when a = b ->
                Error "store: correlated crash needs two distinct shards"
            | None, Some (Cascade { first; second; _ }) when first = second ->
                Error "store: cascade needs two distinct shards"
            | None, _ -> Ok threads))

let run ?(record = fun (_ : int) -> ()) ?(schedule = [||]) cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok threads -> (
      Pmem.reset_pending ();
      Pstats.set_all_enabled true;
      let nshards = shard_total cfg in
      let server_tid sid = 1 + cfg.clients + sid in
      let shards =
        Array.init nshards (fun sid ->
            Shard.create ~replicate:cfg.replicate (backend_of cfg sid) ~threads
              ~server_tid:(server_tid sid) sid)
      in
      let table = Router.create ~shards:cfg.shards in
      let migration =
        match cfg.migrate with
        | None -> None
        | Some { msrc; m_broken; _ } ->
            Some
              (Migration.create ~table ~src:shards.(msrc)
                 ~dst:shards.(cfg.shards) ~key_range:cfg.workload.Workload.key_range
                 ~poll_ns ~broken:m_broken ())
      in
      match
        match cfg.migrate with
        | Some { msrc; _ }
          when shards.(msrc).Shard.algo.Set_intf.model <> Set_intf.Set_model ->
            Error
              (Printf.sprintf
                 "store: migration source shard %d is not a set-model backend"
                 msrc)
        | _ -> Ok ()
      with
      | Error _ as e -> e
      | Ok () -> (
      (* Prefill outside the simulated run (like Crashes): route each key
         to its owning shard so per-shard contents match live routing; a
         replica is prefilled identically so it starts in sync. *)
      let prng = Random.State.make [| cfg.seed; 0x5704E |] in
      for _ = 1 to cfg.workload.Workload.prefill_n do
        let k = Workload.gen_key prng cfg.workload in
        let s = shards.(Router.owner table k) in
        ignore (s.Shard.algo.Set_intf.insert k : bool);
        match s.Shard.replica with
        | Some rep -> ignore (rep.Replica.algo.Set_intf.insert k : bool)
        | None -> ()
      done;
      Pmem.reset_pending ();
      if Metrics.active () then Metrics.reset ();
      Array.iter
        (fun (s : Shard.t) ->
          s.Shard.initial <- s.Shard.algo.Set_intf.contents ())
        shards;
      let total = cfg.clients * cfg.ops_per_client in
      let completed = ref 0 in
      let requests = ref [] in
      let next_rid = ref 0 in
      let lat_hist = Metrics.histogram "store.request.latency" in
      let on_complete (req : Shard.request) ~ok:_ ~recovered:_ =
        incr completed;
        Metrics.observe lat_hist
          (Float.max 0. (Sim.now () -. req.Shard.submit_ns))
      in
      (* Servers stay up past the last client completion until the
         migration finishes — handoffs keep flowing on an idle store. *)
      let live () =
        !completed < total
        ||
        match migration with
        | Some m -> not (Migration.finished m)
        | None -> false
      in
      (* The elastic guard, evaluated by every server on every client
         request it pops: a key mid-handoff defers its mutations (reads
         still serve — the source copy stays authoritative until the
         handoff commits); a key the routing table moved forwards to its
         current owner. *)
      let guard (self : Shard.t) (req : Shard.request) =
        let k = Set_intf.op_key req.Shard.op in
        match migration with
        | Some m when Migration.in_handoff m k && Set_intf.is_update req.Shard.op
          ->
            `Defer
        | _ ->
            let owner = Router.owner table k in
            if owner = self.Shard.sid then `Execute else `Forward shards.(owner)
      in
      let client cid =
        let crng = Random.State.make [| cfg.seed; cid; 0xC11E27 |] in
        for _ = 1 to cfg.ops_per_client do
          (match cfg.open_loop_ns with
          | None -> ()
          | Some mean ->
              (* exponential interarrival gap in virtual time; [advance]
                 rather than [step]: waiting for an arrival is not a
                 shared-memory access *)
              let u = Random.State.float crng 1. in
              Sim.advance (-.mean *. log (1. -. u)));
          Sim.step submit_ns;
          let op = Workload.gen_op crng cfg.workload in
          let sid = Router.owner table (Set_intf.op_key op) in
          incr next_rid;
          let req =
            {
              Shard.rid = !next_rid;
              rsid = sid;
              op;
              submit_ns = Sim.now ();
              internal = false;
              retried = false;
              state = Shard.Pending;
            }
          in
          requests := req :: !requests;
          Shard.submit shards.(sid) req;
          match cfg.open_loop_ns with
          | Some _ -> ()  (* open loop: fire and move to the next arrival *)
          | None ->
              (* closed loop: block until the request resolves *)
              let rec wait () =
                match req.Shard.state with
                | Shard.Pending ->
                    Sim.step poll_ns;
                    wait ()
                | Shard.Done _ -> ()
              in
              wait ()
        done
      in
      let controller () =
        (match (migration, cfg.migrate) with
        | Some m, Some { m_after; _ } ->
            let rec wait () =
              if !completed < m_after && !completed < total then begin
                Sim.step 50.;
                wait ()
              end
            in
            wait ();
            Trace.note
              (Printf.sprintf "releasing migration after %d completions"
                 !completed);
            Migration.release m
        | _ -> ());
        match cfg.crash with
        | Some (After_requests { victim; requests = after }) ->
            let rec wait () =
              if !completed < after && !completed < total then begin
                Sim.step 50.;
                wait ()
              end
            in
            wait ();
            if live () then begin
              Trace.note
                (Printf.sprintf "injecting crash into shard %d after %d \
                                 completions" victim !completed);
              Sim.interrupt ~tid:(server_tid victim) Shard.Crash
            end
        | Some (Cascade { first; second; dispatch = _ }) ->
            (* land the second crash inside the first victim's recovery
               window: poll for [in_recovery] (restart_ns dwarfs the
               50 ns poll, so the window cannot be missed) *)
            let rec watch () =
              if live () then
                if shards.(first).Shard.in_recovery then begin
                  Trace.note
                    (Printf.sprintf
                       "cascade: crashing shard %d inside shard %d's recovery"
                       second first);
                  Sim.interrupt ~tid:(server_tid second) Shard.Crash
                end
                else begin
                  Sim.step 50.;
                  watch ()
                end
            in
            watch ()
        | Some (At_dispatch _ | Both_at_dispatch _) | None -> ()
      in
      let second_victim = second_victim_of cfg.crash in
      let wb_for sid =
        if second_victim = Some sid then Option.value cfg.wb2 ~default:cfg.wb
        else cfg.wb
      in
      let bodies =
        Array.init threads (fun tid ->
            if tid = 0 then fun (_ : int) -> controller ()
            else if tid <= cfg.clients then fun (_ : int) -> client (tid - 1)
            else
              fun (_ : int) ->
                let sid = tid - 1 - cfg.clients in
                let s = shards.(sid) in
                let mig_here =
                  match migration with
                  | Some m when sid = cfg.shards -> Some m
                  | _ -> None
                in
                Shard.serve s ~batch:cfg.batch ~activation_ns ~poll_ns
                  ~restart_ns:cfg.restart_ns ~failover_ns:cfg.failover_ns
                  ~wb:(wb_for sid) ~live ~on_complete ~guard:(guard s)
                  ?side_work:
                    (Option.map
                       (fun m ~drain -> Migration.step m ~drain)
                       mig_here)
                  ?after_recovery:
                    (Option.map (fun m () -> Migration.on_recover m) mig_here)
                  ())
      in
      let interrupts =
        match cfg.crash with
        | Some (At_dispatch { victim; dispatch })
        | Some (Cascade { first = victim; dispatch; _ }) ->
            [| (server_tid victim, dispatch, Shard.Crash) |]
        | Some (Both_at_dispatch { a; b; dispatch }) ->
            [|
              (server_tid a, dispatch, Shard.Crash);
              (server_tid b, dispatch, Shard.Crash);
            |]
        | Some (After_requests _) | None -> [||]
      in
      let step_limit =
        let base = max 2_000_000 (total * 20_000) in
        match cfg.migrate with
        | Some _ -> (base * 2) + (cfg.workload.Workload.key_range * 10_000)
        | None -> base
      in
      let divergences = ref 0 in
      match
        Sim.run ~policy:`Perf ~seed:cfg.seed ~step_limit ~schedule ~record
          ~divergence:(fun ~step:_ ~want:_ -> incr divergences)
          ~interrupts bodies
      with
      | exception Pmem.Poisoned what ->
          Error (Printf.sprintf "touched never-persisted data: %s" what)
      | exception Sim.Step_limit ->
          Error
            "step budget exhausted: lost request or livelock suspected"
      | Sim.Crashed_at _ -> Error "store: unexpected machine-wide crash"
      | Sim.All_done -> (
          let first_error checks =
            List.fold_left
              (fun acc check ->
                match acc with Some _ -> acc | None -> check ())
              None checks
          in
          let shard_checks =
            Array.to_list shards
            |> List.map (fun (s : Shard.t) () ->
                   match s.Shard.algo.Set_intf.check () with
                   | Error msg ->
                       Some
                         (Printf.sprintf "structure invariant: shard %d: %s"
                            s.Shard.sid msg)
                   | Ok () -> (
                       (* the per-shard oracle matches the backend's
                          semantics: set membership, or FIFO topic replay *)
                       let final = s.Shard.algo.Set_intf.contents () in
                       let events = List.rev s.Shard.events in
                       let verdict =
                         match s.Shard.algo.Set_intf.model with
                         | Set_intf.Set_model ->
                             Oracle.check ~initial:s.Shard.initial ~final events
                         | Set_intf.Queue_model ->
                             Oracle.check_queue ~initial:s.Shard.initial ~final
                               events
                       in
                       match verdict with
                       | Error msg ->
                           Some
                             (Printf.sprintf "oracle: shard %d: %s" s.Shard.sid
                                msg)
                       | Ok () -> None))
          in
          let migration_check () =
            match migration with
            | Some m when not (Migration.finished m) ->
                Some "migration: never completed (handoffs still pending)"
            | _ -> None
          in
          (* Every key in exactly one shard: each resident key's shard
             must be its routed owner (owners are unique, so this also
             forbids double residence). *)
          let ownership_check () =
            Array.fold_left
              (fun acc (s : Shard.t) ->
                match acc with
                | Some _ -> acc
                | None ->
                    List.fold_left
                      (fun acc k ->
                        match acc with
                        | Some _ -> acc
                        | None ->
                            let owner = Router.owner table k in
                            if owner <> s.Shard.sid then
                              Some
                                (Printf.sprintf
                                   "ownership: key %d resides in shard %d but \
                                    routes to shard %d"
                                   k s.Shard.sid owner)
                            else None)
                      None
                      (s.Shard.algo.Set_intf.contents ()))
              None shards
          in
          (* The store-level conservation oracle: the union of the
             set-model shards must reconcile with the CLIENT events alone
             — migration plumbing is excluded, so a key a broken handoff
             loses from both shards (each per-shard history consistent!)
             surfaces here as a conservation violation. *)
          let union_check () =
            let set_shards =
              Array.to_list shards
              |> List.filter (fun (s : Shard.t) ->
                     s.Shard.algo.Set_intf.model = Set_intf.Set_model)
            in
            if set_shards = [] then None
            else
              let union l = List.sort_uniq compare (List.concat l) in
              let initial =
                union (List.map (fun (s : Shard.t) -> s.Shard.initial) set_shards)
              in
              let final =
                union
                  (List.map
                     (fun (s : Shard.t) -> s.Shard.algo.Set_intf.contents ())
                     set_shards)
              in
              let events =
                List.concat_map
                  (fun (s : Shard.t) -> List.rev s.Shard.client_events)
                  set_shards
              in
              match Oracle.check ~initial ~final events with
              | Error msg -> Some ("store oracle: " ^ msg)
              | Ok () -> None
          in
          match
            first_error
              (shard_checks @ [ migration_check; ownership_check; union_check ])
          with
          | Some msg -> Error msg
          | None ->
              let report =
                Slo.build ~total ~divergences:!divergences
                  ~requests:!requests ~shards
                  ~crash_victim:(victim_of cfg) ()
              in
              if Trace.active () then
                List.iter
                  (fun (w : Slo.window) ->
                    Trace.win ~sid:w.Slo.w_sid ~index:w.Slo.w_index
                      ~start_ns:w.Slo.w_start_ns ~end_ns:w.Slo.w_end_ns
                      ~completions:w.Slo.w_completions ~mops:w.Slo.w_mops
                      ~lat_mean_ns:w.Slo.w_lat_mean_ns)
                  report.Slo.windows;
              Ok report)))

(* ---- bounded exhaustive exploration ----------------------------------- *)

(* Sweep shard-local crash points of a small store: for each victim spec
   — a single shard, or (for migration campaigns) both endpoints at
   once — interrupt the victim server(s) at dispatch 1, 2, ... up to
   [dispatch_budget] (or until the interrupt stops firing — the server
   finished earlier), crossed with the deterministic write-back
   resolutions; a both-endpoints spec crosses PAIRS of resolutions, so
   the two heaps resolve adversarially and independently.  Every
   execution must yield definite request outcomes — zero lost, per-shard
   oracle agreement, migration completion, exactly-one ownership, and
   store-level conservation — or the sweep reports the first
   counterexample.  With a fixed seed and the `Perf policy the schedule
   is pinned, so a failing (spec, dispatch, wb) triple replays as is. *)

type victim_spec = Single of int | Both of int * int

let spec_label = function
  | Single v -> Printf.sprintf "shard%d" v
  | Both (a, b) -> Printf.sprintf "shard%d+shard%d" a b

type explore_stats = {
  ex_executions : int;
  ex_fired : int;  (* runs whose interrupt actually delivered *)
  ex_max_dispatch : (string * int) array;
      (* per victim spec: label, highest firing dispatch index *)
  ex_failures : int;
  ex_first_failure : string option;
  ex_first_cex : (config * int array * string) option;
}

let wb_label = function
  | `Rng -> "rng"
  | `Drop -> "drop"
  | `All -> "all"
  | `Prefix n -> Printf.sprintf "prefix:%d" n

let default_wb_pairs =
  [ (`Drop, `Drop); (`All, `All); (`Drop, `All); (`All, `Drop);
    (`Prefix 1, `Prefix 1) ]

let explore ?(wbs = [ `Drop; `All; `Prefix 1; `Prefix 2 ])
    ?(wb_pairs = default_wb_pairs) ?(dispatch_budget = 64) ?(jobs = 1) cfg =
  match run { cfg with crash = None } with
  | Error msg -> Error ("explore: crash-free baseline failed: " ^ msg)
  | Ok _ ->
      (* Victim specs: every single shard — or, for a migration config,
         the source, the destination, and the correlated both-endpoints
         power loss (the only double-crash whose interaction is novel:
         the journal and the data it reconciles fail together). *)
      let specs =
        match cfg.migrate with
        | Some { msrc; _ } ->
            [| Single msrc; Single cfg.shards; Both (msrc, cfg.shards) |]
        | None -> Array.init cfg.shards (fun v -> Single v)
      in
      (* One spec's sweep is independent of every other's (each execution
         rebuilds the store from the seed), so specs are the parallel
         work items: results merge per spec index and the reported first
         counterexample is the lowest spec's first, which is exactly the
         sequential visit order — output is byte-identical at every
         [jobs] value. *)
      let sweep_spec spec =
        let executions = ref 0 in
        let fired = ref 0 in
        let failures = ref 0 in
        let first_failure = ref None in
        let first_cex = ref None in
        let fail cfg' msg =
          incr failures;
          if !first_failure = None then begin
            first_failure := Some msg;
            (* Re-run the counterexample recording its schedule so the
               caller can save a replayable repro; the seed pins the
               interleaving, so this reproduces the same failure.  The
               stored error is the bare one a replay will observe, not
               the "victim/dispatch/wb"-prefixed display string. *)
            let sched = ref [] in
            let bare =
              match run ~record:(fun c -> sched := c :: !sched) cfg' with
              | Error e -> e
              | Ok r when r.Slo.lost > 0 ->
                  Printf.sprintf "%d lost requests" r.Slo.lost
              | Ok _ -> msg
            in
            first_cex := Some (cfg', Array.of_list (List.rev !sched), bare)
          end
        in
        let arms =
          match spec with
          | Single _ -> List.map (fun wb -> (wb, None)) wbs
          | Both _ -> List.map (fun (w1, w2) -> (w1, Some w2)) wb_pairs
        in
        let arm_label (wb, wb2) =
          match wb2 with
          | None -> wb_label wb
          | Some w2 -> wb_label wb ^ "+" ^ wb_label w2
        in
        let max_dispatch = ref 0 in
        let k = ref 1 in
        let continue = ref true in
        while !continue && !k <= dispatch_budget do
          let fired_here = ref false in
          List.iter
            (fun ((wb, wb2) as arm) ->
              let crash =
                match spec with
                | Single v -> At_dispatch { victim = v; dispatch = !k }
                | Both (a, b) -> Both_at_dispatch { a; b; dispatch = !k }
              in
              let cfg' = { cfg with crash = Some crash; wb; wb2 } in
              incr executions;
              match run cfg' with
              | Error msg ->
                  fired_here := true;
                  fail cfg'
                    (Printf.sprintf "victim %s dispatch %d wb %s: %s"
                       (spec_label spec) !k (arm_label arm) msg)
              | Ok report ->
                  let crashed sid =
                    (List.nth report.Slo.shards sid).Slo.ss_crashes > 0
                  in
                  let delivered =
                    match spec with
                    | Single v -> crashed v
                    | Both (a, b) -> crashed a || crashed b
                  in
                  if delivered then begin
                    incr fired;
                    fired_here := true
                  end;
                  if report.Slo.lost > 0 then
                    fail cfg'
                      (Printf.sprintf
                         "victim %s dispatch %d wb %s: %d lost requests"
                         (spec_label spec) !k (arm_label arm) report.Slo.lost))
            arms;
          if !fired_here then begin
            max_dispatch := !k;
            incr k
          end
          else continue := false
        done;
        (!executions, !fired, !failures, !first_failure, !first_cex,
         !max_dispatch)
      in
      let per_spec = Parallel.run ~jobs (fun _ s -> sweep_spec s) specs in
      let executions = ref 0 in
      let fired = ref 0 in
      let failures = ref 0 in
      let first_failure = ref None in
      let first_cex = ref None in
      let max_dispatch = Array.make (Array.length specs) ("", 0) in
      Array.iteri
        (fun i (ex, fi, fa, ff, cex, md) ->
          executions := !executions + ex;
          fired := !fired + fi;
          failures := !failures + fa;
          if !first_failure = None then begin
            first_failure := ff;
            first_cex := cex
          end;
          max_dispatch.(i) <- (spec_label specs.(i), md))
        per_spec;
      Ok
        {
          ex_executions = !executions;
          ex_fired = !fired;
          ex_max_dispatch = max_dispatch;
          ex_failures = !failures;
          ex_first_failure = !first_failure;
          ex_first_cex = !first_cex;
        }
