(** The sharded recoverable KV service: N {!Shard}s routed by a
    versioned two-phase {!Router} table, driven by client fibers
    (closed-loop, or open-loop with exponential virtual-time
    interarrivals), with optional shard crashes, per-shard replication
    with failover, and a live shard-split migration ({!Migration})
    injected mid-traffic.

    Thread layout: tid 0 is a controller fiber (it injects
    [After_requests]/[Cascade] crashes and releases the migration), tids
    [1..clients] the clients, tids [clients+1 ..] the shard servers —
    one per base shard, plus one for the migration's destination shard
    (sid = [shards]).  The whole serve is ONE [Sim.run]: a shard crash
    is a per-fiber interrupt recovered inside the victim's server fiber,
    so survivors keep serving throughout — the degraded window {!Slo}
    measures. *)

type crash_plan =
  | After_requests of { victim : int; requests : int }
      (** controller-injected once [requests] store completions passed *)
  | At_dispatch of { victim : int; dispatch : int }
      (** static interrupt at the victim server's n-th dispatch
          ([Sim.run ?interrupts]) — the exploration harness's replayable
          crash point *)
  | Both_at_dispatch of { a : int; b : int; dispatch : int }
      (** correlated power loss: both servers interrupted at their own
          n-th dispatch, each heap's write-backs resolved independently
          ([a] under [wb], [b] under [wb2]) — the both-migration-
          endpoints campaign *)
  | Cascade of { first : int; second : int; dispatch : int }
      (** [first] crashes at its n-th dispatch; the controller then
          crashes [second] {e inside} [first]'s recovery window *)

type migrate_plan = {
  msrc : int;  (** shard being split *)
  m_after : int;  (** release the migration after this many completions *)
  m_broken : bool;
      (** elide the handoff-commit pwb — the negative control the
          store-level oracle must catch *)
}

type config = {
  factory : Set_intf.factory;
  backends : Set_intf.factory array option;
      (** per-shard structure factories (length must equal [shards]);
          [None] = every shard uses [factory].  Lets rqueue topics or
          rhash caches serve as shard backends alongside the lists. *)
  shards : int;
  clients : int;
  ops_per_client : int;
  batch : int;  (** max requests drained per server activation *)
  workload : Workload.config;
  open_loop_ns : float option;
      (** [Some mean]: open-loop Poisson arrivals with this mean
          interarrival (virtual ns); [None]: closed loop *)
  crash : crash_plan option;
  wb : [ `Rng | `Drop | `All | `Prefix of int ];
      (** write-back resolution of shard crashes (see [Pmem.crash]) *)
  wb2 : [ `Rng | `Drop | `All | `Prefix of int ] option;
      (** resolution of the {e second} victim of a correlated crash;
          [None] = same as [wb] *)
  restart_ns : float;  (** shard restart latency charged before recovery *)
  failover_ns : float;  (** replica promotion latency *)
  replicate : bool;  (** attach a promotable {!Replica} to every shard *)
  migrate : migrate_plan option;
  seed : int;
}

val default_config : Set_intf.factory -> config
(** 4 shards, 4 clients, 200 ops/client, batch 1, update-intensive
    uniform workload, closed loop, no crash, rng write-backs, 5000 ns
    restart, 500 ns failover, no replication, no migration, seed 1. *)

val run :
  ?record:(int -> unit) ->
  ?schedule:int array ->
  config ->
  (Slo.report, string) result
(** One serve run.  Errors are service-level detectability violations —
    per-shard oracle disagreement ("oracle: shard N: ...", set or FIFO
    model per the backend), structure invariant breaks, poisoned NVM
    data, a suspected lost request (step-budget exhaustion), an
    unfinished migration, a key resident in a shard that doesn't own it
    ("ownership: ..."), or a store-level conservation violation across
    the union of the set-model shards ("store oracle: ..." — the check
    that catches a broken handoff losing a key from {e both} shards
    while each per-shard history stays consistent).  [record]/[schedule]
    expose [Sim.run]'s schedule recording/replay for serve repro files
    ({!Store_repro}); replay divergences are counted in the report. *)

val wb_label : [ `Rng | `Drop | `All | `Prefix of int ] -> string
(** Stable CLI/repro label: ["rng"], ["drop"], ["all"], ["prefix:<k>"]. *)

type victim_spec = Single of int | Both of int * int

val spec_label : victim_spec -> string
(** ["shardN"] or ["shardA+shardB"]. *)

type explore_stats = {
  ex_executions : int;
  ex_fired : int;  (** runs whose crash interrupt actually delivered *)
  ex_max_dispatch : (string * int) array;
      (** per victim spec ({!spec_label}), the highest dispatch index at
          which its interrupt still fired *)
  ex_failures : int;
  ex_first_failure : string option;
  ex_first_cex : (config * int array * string) option;
      (** the first counterexample's exact config (crash plan and
          write-back resolutions), recorded schedule and bare error — as
          a replay observes it — ready to save as a repro *)
}

val explore :
  ?wbs:[ `Rng | `Drop | `All | `Prefix of int ] list ->
  ?wb_pairs:
    ([ `Rng | `Drop | `All | `Prefix of int ]
    * [ `Rng | `Drop | `All | `Prefix of int ])
    list ->
  ?dispatch_budget:int ->
  ?jobs:int ->
  config ->
  (explore_stats, string) result
(** Bounded exhaustive sweep of shard-local crash points: every victim
    spec x dispatch index (1 up to [dispatch_budget], default 64, or
    until the victim finishes before the interrupt fires) x write-back
    resolution.  Without a migration the specs are each single shard
    under [wbs] (default [`Drop; `All; `Prefix 1; `Prefix 2]); with a
    migration they are the source, the destination, and the correlated
    both-endpoints power loss under [wb_pairs] (default crosses
    drop/all both ways plus a prefix point) — each heap of the pair
    resolves independently and adversarially.  Each execution must
    resolve every request to a definite outcome AND leave every key in
    exactly one shard (the full check set of {!run}); failures are
    counted and the first counterexample is reported.  [cfg.crash] is
    ignored; the seed pins the schedule so counterexamples replay.  The
    crash-free baseline runs first — for a migration config that is also
    the clean-completion proof.

    [jobs] (default 1) fans the per-spec sweeps across domains
    ([Harness.Parallel]); stats merge per spec index and the first
    counterexample is the lowest spec's, so the result is byte-identical
    at every [jobs] value. *)
