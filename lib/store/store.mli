(** The sharded recoverable KV service: N {!Shard}s routed by
    {!Router}, driven by client fibers (closed-loop, or open-loop with
    exponential virtual-time interarrivals), with an optional
    crash-of-one-shard plan injected mid-traffic.

    Thread layout: tid 0 is a controller fiber (it injects
    [After_requests] crashes), tids [1..clients] the clients, tids
    [clients+1 .. clients+shards] the shard servers.  The whole serve is
    ONE [Sim.run]: a shard crash is a per-fiber interrupt recovered
    inside the victim's server fiber, so survivors keep serving
    throughout — the degraded window {!Slo} measures. *)

type crash_plan =
  | After_requests of { victim : int; requests : int }
      (** controller-injected once [requests] store completions passed *)
  | At_dispatch of { victim : int; dispatch : int }
      (** static interrupt at the victim server's n-th dispatch
          ([Sim.run ?interrupts]) — the exploration harness's replayable
          crash point *)

type config = {
  factory : Set_intf.factory;
  shards : int;
  clients : int;
  ops_per_client : int;
  batch : int;  (** max requests drained per server activation *)
  workload : Workload.config;
  open_loop_ns : float option;
      (** [Some mean]: open-loop Poisson arrivals with this mean
          interarrival (virtual ns); [None]: closed loop *)
  crash : crash_plan option;
  wb : [ `Rng | `Drop | `All | `Prefix of int ];
      (** write-back resolution of shard crashes (see [Pmem.crash]) *)
  restart_ns : float;  (** shard restart latency charged before recovery *)
  seed : int;
}

val default_config : Set_intf.factory -> config
(** 4 shards, 4 clients, 200 ops/client, batch 1, update-intensive
    uniform workload, closed loop, no crash, rng write-backs, 5000 ns
    restart, seed 1. *)

val run :
  ?record:(int -> unit) ->
  ?schedule:int array ->
  config ->
  (Slo.report, string) result
(** One serve run.  Errors are service-level detectability violations —
    per-shard oracle disagreement ("oracle: shard N: ..."), structure
    invariant breaks, poisoned NVM data, or a suspected lost request
    (step-budget exhaustion) — in the same error-class format as
    [Crashes].  [record]/[schedule] expose [Sim.run]'s schedule
    recording/replay for serve repro files ({!Store_repro});
    replay divergences are counted in the report. *)

val wb_label : [ `Rng | `Drop | `All | `Prefix of int ] -> string
(** Stable CLI/repro label: ["rng"], ["drop"], ["all"], ["prefix:<k>"]. *)

type explore_stats = {
  ex_executions : int;
  ex_fired : int;  (** runs whose crash interrupt actually delivered *)
  ex_max_dispatch : int array;
      (** per shard, the highest dispatch index at which the interrupt
          still fired *)
  ex_failures : int;
  ex_first_failure : string option;
  ex_first_cex : (config * int array * string) option;
      (** the first counterexample's exact config ([At_dispatch] crash
          plan, write-back resolution), recorded schedule and bare
          error — as a replay observes it — ready to save as a repro *)
}

val explore :
  ?wbs:[ `Rng | `Drop | `All | `Prefix of int ] list ->
  ?dispatch_budget:int ->
  ?jobs:int ->
  config ->
  (explore_stats, string) result
(** Bounded exhaustive sweep of shard-local crash points: every victim
    shard x dispatch index (1 up to [dispatch_budget], default 64, or
    until the victim finishes before the interrupt fires) x write-back
    resolution (default [`Drop; `All; `Prefix 1; `Prefix 2]).  Each
    execution must resolve every request to a definite outcome; failures
    are counted and the first counterexample (victim, dispatch, wb,
    error) is reported.  [cfg.crash] is ignored; the seed pins the
    schedule so counterexamples replay.

    [jobs] (default 1) fans the per-victim sweeps across domains
    ([Harness.Parallel]); stats merge per victim index and the first
    counterexample is the lowest victim's, so the result is
    byte-identical at every [jobs] value. *)
