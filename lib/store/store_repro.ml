(* Replay files for failing serve runs, mirroring Harness.Repro's
   line-based format.  A serve is ONE Sim.run, so the file carries one
   recorded schedule instead of per-round lines; together with the
   config scalars and the seed it pins the client rng streams, the
   routing, the crash point and the write-back resolution, so a failure
   replays bit-for-bit.  Any schedule divergence on replay is fatal —
   the execution would no longer be the recorded one. *)

let magic = "tracking-nvm-serve v1"

type t = {
  algo : string;
  shards : int;
  clients : int;
  ops_per_client : int;
  batch : int;
  find_pct : int;
  key_range : int;
  prefill : int;
  skew : float option;  (* hot-set mass; None = uniform *)
  open_loop_ns : float option;
  crash : Store.crash_plan option;
  wb : [ `Rng | `Drop | `All | `Prefix of int ];
  (* Elastic-store fields.  All optional in the file with the defaults
     below, so pre-elastic repro files parse unchanged. *)
  wb2 : [ `Rng | `Drop | `All | `Prefix of int ] option;  (* default None *)
  backends : string list option;  (* per-shard algo names; default None *)
  replicate : bool;  (* default false *)
  failover_ns : float;  (* default 500 *)
  migrate : Store.migrate_plan option;  (* default None *)
  restart_ns : float;
  seed : int;
  error : string;
  schedule : int array;
}

let of_config (cfg : Store.config) ~error ~schedule =
  {
    algo = cfg.Store.factory.Set_intf.fname;
    shards = cfg.Store.shards;
    clients = cfg.Store.clients;
    ops_per_client = cfg.Store.ops_per_client;
    batch = cfg.Store.batch;
    find_pct = cfg.Store.workload.Workload.mix.Workload.find_pct;
    key_range = cfg.Store.workload.Workload.key_range;
    prefill = cfg.Store.workload.Workload.prefill_n;
    skew =
      (match cfg.Store.workload.Workload.dist with
      | Workload.Uniform -> None
      | Workload.Skewed { s; _ } -> Some s);
    open_loop_ns = cfg.Store.open_loop_ns;
    crash = cfg.Store.crash;
    wb = cfg.Store.wb;
    wb2 = cfg.Store.wb2;
    backends =
      Option.map
        (fun arr ->
          Array.to_list (Array.map (fun f -> f.Set_intf.fname) arr))
        cfg.Store.backends;
    replicate = cfg.Store.replicate;
    failover_ns = cfg.Store.failover_ns;
    migrate = cfg.Store.migrate;
    restart_ns = cfg.Store.restart_ns;
    seed = cfg.Store.seed;
    error;
    schedule;
  }

let config_of r =
  match Set_intf.by_name r.algo with
  | Error msg -> Error (Printf.sprintf "serve repro references %s" msg)
  | Ok factory -> (
      match Workload.mix_of_find_pct r.find_pct with
      | exception Invalid_argument _ ->
          Error (Printf.sprintf "serve repro has invalid find-pct %d" r.find_pct)
      | mix -> (
          match
            match r.skew with
            | None -> Ok Workload.Uniform
            | Some s -> (
                match Workload.skewed s with
                | d -> Ok d
                | exception Invalid_argument m -> Error m)
          with
          | Error m -> Error m
          | Ok dist -> (
              let backends =
                match r.backends with
                | None -> Ok None
                | Some names ->
                    let rec resolve acc = function
                      | [] -> Ok (Some (Array.of_list (List.rev acc)))
                      | n :: rest -> (
                          match Set_intf.by_name n with
                          | Error msg ->
                              Error
                                (Printf.sprintf "serve repro references %s" msg)
                          | Ok f -> resolve (f :: acc) rest)
                    in
                    resolve [] names
              in
              match backends with
              | Error _ as e -> e
              | Ok backends ->
                  Ok
                    {
                      Store.factory;
                      backends;
                      shards = r.shards;
                      clients = r.clients;
                      ops_per_client = r.ops_per_client;
                      batch = r.batch;
                      workload =
                        {
                          Workload.mix;
                          key_range = r.key_range;
                          prefill_n = r.prefill;
                          dist;
                        };
                      open_loop_ns = r.open_loop_ns;
                      crash = r.crash;
                      wb = r.wb;
                      wb2 = r.wb2;
                      restart_ns = r.restart_ns;
                      failover_ns = r.failover_ns;
                      replicate = r.replicate;
                      migrate = r.migrate;
                      seed = r.seed;
                    })))

(* ---- rendering --------------------------------------------------------- *)

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let schedule_string sched =
  if Array.length sched = 0 then "-"
  else String.concat "," (Array.to_list (Array.map string_of_int sched))

let wb_string = function
  | `Rng -> "rng"
  | `Drop -> "drop"
  | `All -> "all"
  | `Prefix k -> Printf.sprintf "prefix:%d" k

let crash_string = function
  | None -> "none"
  | Some (Store.After_requests { victim; requests }) ->
      Printf.sprintf "after %d %d" victim requests
  | Some (Store.At_dispatch { victim; dispatch }) ->
      Printf.sprintf "dispatch %d %d" victim dispatch
  | Some (Store.Both_at_dispatch { a; b; dispatch }) ->
      Printf.sprintf "both %d %d %d" a b dispatch
  | Some (Store.Cascade { first; second; dispatch }) ->
      Printf.sprintf "cascade %d %d %d" first second dispatch

let pp ppf r =
  Format.fprintf ppf "%s@." magic;
  Format.fprintf ppf "algo %s@." r.algo;
  Format.fprintf ppf "shards %d@." r.shards;
  Format.fprintf ppf "clients %d@." r.clients;
  Format.fprintf ppf "ops-per-client %d@." r.ops_per_client;
  Format.fprintf ppf "batch %d@." r.batch;
  Format.fprintf ppf "find-pct %d@." r.find_pct;
  Format.fprintf ppf "key-range %d@." r.key_range;
  Format.fprintf ppf "prefill %d@." r.prefill;
  (match r.skew with
  | None -> Format.fprintf ppf "dist uniform@."
  | Some s -> Format.fprintf ppf "dist skew:%g@." s);
  (match r.open_loop_ns with
  | None -> Format.fprintf ppf "open-loop-ns -@."
  | Some m -> Format.fprintf ppf "open-loop-ns %g@." m);
  Format.fprintf ppf "crash %s@." (crash_string r.crash);
  Format.fprintf ppf "wb %s@." (wb_string r.wb);
  (match r.wb2 with
  | None -> Format.fprintf ppf "wb2 -@."
  | Some wb2 -> Format.fprintf ppf "wb2 %s@." (wb_string wb2));
  (match r.backends with
  | None -> Format.fprintf ppf "backends -@."
  | Some names -> Format.fprintf ppf "backends %s@." (String.concat "," names));
  Format.fprintf ppf "replicate %d@." (if r.replicate then 1 else 0);
  Format.fprintf ppf "failover-ns %g@." r.failover_ns;
  (match r.migrate with
  | None -> Format.fprintf ppf "migrate none@."
  | Some { Store.msrc; m_after; m_broken } ->
      Format.fprintf ppf "migrate %d %d %d@." msrc m_after
        (if m_broken then 1 else 0));
  Format.fprintf ppf "restart-ns %g@." r.restart_ns;
  Format.fprintf ppf "seed %d@." r.seed;
  Format.fprintf ppf "error %s@." (one_line r.error);
  Format.fprintf ppf "schedule %s@." (schedule_string r.schedule)

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      pp ppf r;
      Format.pp_print_flush ppf ())

(* ---- parsing ----------------------------------------------------------- *)

let parse_schedule = function
  | "-" | "" -> Ok [||]
  | s -> (
      let parts = String.split_on_char ',' s in
      try Ok (Array.of_list (List.map int_of_string parts))
      with Failure _ -> Error (Printf.sprintf "bad schedule %S" s))

let parse_wb = function
  | "rng" -> Ok `Rng
  | "drop" -> Ok `Drop
  | "all" -> Ok `All
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "prefix" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some k when k >= 1 -> Ok (`Prefix k)
          | _ -> Error (Printf.sprintf "bad write-back resolution %S" s))
      | _ -> Error (Printf.sprintf "bad write-back resolution %S" s))

let parse_crash = function
  | "none" -> Ok None
  | s -> (
      match String.split_on_char ' ' s with
      | [ "after"; v; n ] -> (
          match (int_of_string_opt v, int_of_string_opt n) with
          | Some victim, Some requests ->
              Ok (Some (Store.After_requests { victim; requests }))
          | _ -> Error (Printf.sprintf "bad crash plan %S" s))
      | [ "dispatch"; v; k ] -> (
          match (int_of_string_opt v, int_of_string_opt k) with
          | Some victim, Some dispatch ->
              Ok (Some (Store.At_dispatch { victim; dispatch }))
          | _ -> Error (Printf.sprintf "bad crash plan %S" s))
      | [ "both"; a; b; k ] -> (
          match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt k)
          with
          | Some a, Some b, Some dispatch ->
              Ok (Some (Store.Both_at_dispatch { a; b; dispatch }))
          | _ -> Error (Printf.sprintf "bad crash plan %S" s))
      | [ "cascade"; f; snd; k ] -> (
          match
            (int_of_string_opt f, int_of_string_opt snd, int_of_string_opt k)
          with
          | Some first, Some second, Some dispatch ->
              Ok (Some (Store.Cascade { first; second; dispatch }))
          | _ -> Error (Printf.sprintf "bad crash plan %S" s))
      | _ -> Error (Printf.sprintf "bad crash plan %S" s))

let parse_migrate = function
  | "none" -> Ok None
  | s -> (
      match String.split_on_char ' ' s with
      | [ src; after; broken ] -> (
          match
            (int_of_string_opt src, int_of_string_opt after,
             int_of_string_opt broken)
          with
          | Some msrc, Some m_after, Some b when b = 0 || b = 1 ->
              Ok (Some { Store.msrc; m_after; m_broken = b = 1 })
          | _ -> Error (Printf.sprintf "bad migrate plan %S" s))
      | _ -> Error (Printf.sprintf "bad migrate plan %S" s))

let parse_dist = function
  | "uniform" -> Ok None
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "skew" -> (
          match
            float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some v -> Ok (Some v)
          | None -> Error (Printf.sprintf "bad dist %S" s))
      | _ -> Error (Printf.sprintf "bad dist %S" s))

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | [] -> Error "empty serve repro file"
  | first :: _ when first <> magic ->
      Error (Printf.sprintf "not a serve repro file (expected %S)" magic)
  | _ :: lines -> (
      let r =
        ref
          {
            algo = "";
            shards = 0;
            clients = 0;
            ops_per_client = 0;
            batch = 0;
            find_pct = -1;
            key_range = 0;
            prefill = -1;
            skew = None;
            open_loop_ns = None;
            crash = None;
            wb = `Rng;
            (* elastic fields default here, so pre-elastic files parse *)
            wb2 = None;
            backends = None;
            replicate = false;
            failover_ns = 500.;
            migrate = None;
            restart_ns = -1.;
            seed = 0;
            error = "";
            schedule = [||];
          }
      in
      let err = ref None in
      let fail msg = if !err = None then err := Some msg in
      let seen = ref [] in
      let once key =
        if List.mem key !seen then fail (Printf.sprintf "duplicate field %S" key)
        else seen := key :: !seen
      in
      let int_field key set v =
        once key;
        match int_of_string_opt v with
        | Some n -> r := set !r n
        | None -> fail (Printf.sprintf "bad integer %S" v)
      in
      let float_field key set v =
        once key;
        match float_of_string_opt v with
        | Some x -> r := set !r x
        | None -> fail (Printf.sprintf "bad number %S" v)
      in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" then
            let key, value =
              match String.index_opt line ' ' with
              | None -> (line, "")
              | Some i ->
                  ( String.sub line 0 i,
                    String.sub line (i + 1) (String.length line - i - 1) )
            in
            match key with
            | "algo" ->
                once key;
                r := { !r with algo = value }
            | "shards" -> int_field key (fun r n -> { r with shards = n }) value
            | "clients" -> int_field key (fun r n -> { r with clients = n }) value
            | "ops-per-client" ->
                int_field key (fun r n -> { r with ops_per_client = n }) value
            | "batch" -> int_field key (fun r n -> { r with batch = n }) value
            | "find-pct" ->
                int_field key (fun r n -> { r with find_pct = n }) value
            | "key-range" ->
                int_field key (fun r n -> { r with key_range = n }) value
            | "prefill" -> int_field key (fun r n -> { r with prefill = n }) value
            | "dist" -> (
                once key;
                match parse_dist value with
                | Ok skew -> r := { !r with skew }
                | Error e -> fail e)
            | "open-loop-ns" -> (
                once key;
                if value = "-" then r := { !r with open_loop_ns = None }
                else
                  match float_of_string_opt value with
                  | Some m when m > 0. -> r := { !r with open_loop_ns = Some m }
                  | _ -> fail (Printf.sprintf "bad open-loop-ns %S" value))
            | "crash" -> (
                once key;
                match parse_crash value with
                | Ok crash -> r := { !r with crash }
                | Error e -> fail e)
            | "wb" -> (
                once key;
                match parse_wb value with
                | Ok wb -> r := { !r with wb }
                | Error e -> fail e)
            | "wb2" -> (
                once key;
                if value = "-" then r := { !r with wb2 = None }
                else
                  match parse_wb value with
                  | Ok wb2 -> r := { !r with wb2 = Some wb2 }
                  | Error e -> fail e)
            | "backends" ->
                once key;
                if value = "-" then r := { !r with backends = None }
                else
                  r :=
                    { !r with backends = Some (String.split_on_char ',' value) }
            | "replicate" -> (
                once key;
                match value with
                | "0" -> r := { !r with replicate = false }
                | "1" -> r := { !r with replicate = true }
                | _ -> fail (Printf.sprintf "bad replicate %S" value))
            | "failover-ns" ->
                float_field key (fun r x -> { r with failover_ns = x }) value
            | "migrate" -> (
                once key;
                match parse_migrate value with
                | Ok migrate -> r := { !r with migrate }
                | Error e -> fail e)
            | "restart-ns" ->
                float_field key (fun r x -> { r with restart_ns = x }) value
            | "seed" -> int_field key (fun r n -> { r with seed = n }) value
            | "error" ->
                once key;
                r := { !r with error = value }
            | "schedule" -> (
                once key;
                match parse_schedule value with
                | Ok schedule -> r := { !r with schedule }
                | Error e -> fail e)
            | k -> fail (Printf.sprintf "unknown field %S" k))
        lines;
      match !err with
      | Some e -> Error e
      | None ->
          let r = !r in
          if r.algo = "" then Error "missing algo field"
          else if r.shards <= 0 then Error "missing/invalid shards field"
          else if r.clients <= 0 then Error "missing/invalid clients field"
          else if r.ops_per_client <= 0 then
            Error "missing/invalid ops-per-client field"
          else if r.batch <= 0 then Error "missing/invalid batch field"
          else if r.find_pct < 0 || r.find_pct > 100 then
            Error "missing/invalid find-pct field"
          else if r.key_range <= 0 then Error "missing/invalid key-range field"
          else if r.prefill < 0 then Error "missing/invalid prefill field"
          else if r.restart_ns < 0. then
            Error "missing/invalid restart-ns field"
          else if r.failover_ns < 0. then Error "invalid failover-ns field"
          else Ok r)

(* ---- replay ------------------------------------------------------------ *)

let replay r =
  match config_of r with
  | Error _ as e -> e
  | Ok cfg -> (
      let result = Store.run ~schedule:r.schedule cfg in
      match result with
      | Ok report when report.Slo.divergences > 0 ->
          Error
            (Printf.sprintf
               "schedule divergence (%d entries not honored): the replay \
                executed a different interleaving"
               report.Slo.divergences)
      | Ok report when report.Slo.lost > 0 ->
          Error (Printf.sprintf "%d lost requests" report.Slo.lost)
      | Ok _ -> Ok ()
      | Error _ as e -> e)

(* ---- forensic explain -------------------------------------------------- *)

(* Like [replay], but under the Forensics recorder, returning the
   postmortem of the recorded failure.  The same faithfulness rules
   apply: a diverged schedule, a passing replay or a different failure
   message all refuse to produce a postmortem — it must describe the
   recorded execution. *)
let explain r =
  match config_of r with
  | Error e -> Error e
  | Ok cfg ->
      Forensics.start ();
      Fun.protect ~finally:Forensics.stop (fun () ->
          let result = Store.run ~schedule:r.schedule cfg in
          match result with
          | Ok report when report.Slo.divergences > 0 ->
              Error
                (Printf.sprintf
                   "schedule divergence (%d entries not honored): the replay \
                    executed a different interleaving"
                   report.Slo.divergences)
          | Ok report when report.Slo.lost > 0 ->
              let error = Printf.sprintf "%d lost requests" report.Slo.lost in
              if String.equal error r.error then
                Ok (Forensics.build ~algo:r.algo ~seed:r.seed ~error)
              else
                Error
                  (Printf.sprintf
                     "replay failed differently: recorded %S, replay produced \
                      %S"
                     r.error error)
          | Ok _ ->
              Error "the repro did not fail on replay — nothing to explain"
          | Error error ->
              if String.equal error r.error then
                Ok (Forensics.build ~algo:r.algo ~seed:r.seed ~error)
              else
                Error
                  (Printf.sprintf
                     "replay failed differently: recorded %S, replay produced \
                      %S"
                     r.error error))
