(** Replay files for failing serve runs — the store-service counterpart
    of [Harness.Repro]'s ["tracking-nvm-repro v1"] format.

    A serve is one [Sim.run], so a file carries the full service config
    (algorithm, topology, workload incl. skew, loop mode, crash plan,
    write-back resolution, restart latency), the seed, the recorded
    error and the recorded scheduler choices.  Replaying re-runs
    {!Store.run} with that schedule; any divergence is fatal — the
    replay would no longer be the recorded execution. *)

val magic : string

type t = {
  algo : string;
  shards : int;
  clients : int;
  ops_per_client : int;
  batch : int;
  find_pct : int;
  key_range : int;
  prefill : int;
  skew : float option;  (** hot-set mass; [None] = uniform keys *)
  open_loop_ns : float option;
  crash : Store.crash_plan option;
  wb : [ `Rng | `Drop | `All | `Prefix of int ];
  wb2 : [ `Rng | `Drop | `All | `Prefix of int ] option;
      (** second correlated-crash victim's resolution; optional in the
          file (["wb2 -"]), so pre-elastic files parse *)
  backends : string list option;
      (** per-shard algo names (["backends -"] = uniform) *)
  replicate : bool;  (** optional field, default false *)
  failover_ns : float;  (** optional field, default 500 *)
  migrate : Store.migrate_plan option;
      (** ["migrate none"] or ["migrate <src> <after> <broken01>"] *)
  restart_ns : float;
  seed : int;
  error : string;
  schedule : int array;
}

val of_config : Store.config -> error:string -> schedule:int array -> t

val config_of : t -> (Store.config, string) result
(** Rebuild a runnable config; [Error] if the file references an unknown
    algorithm or invalid workload parameters. *)

val pp : Format.formatter -> t -> unit
val save : string -> t -> unit

val load : string -> (t, string) result
(** Parse and validate; rejects wrong magic, duplicate fields, unknown
    fields and missing/out-of-range values. *)

val replay : t -> (unit, string) result
(** Re-run the recorded serve under its recorded schedule.  [Ok ()] if
    the run now passes (the failure did not reproduce); [Error] with the
    reproduced failure, or a fatal schedule-divergence report. *)

val explain : t -> (Forensics.postmortem, string) result
(** Replay the serve under the [Forensics] recorder and return the
    postmortem of its failure.  Like {!replay}, a schedule divergence is
    an error; so are a passing replay and a replay failing with a
    different message — a postmortem must describe the recorded
    execution.  Deterministic: the same repro explains to byte-identical
    renderings. *)
