module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

module Make (K : KEY) = struct
  (* Sentinel keys: every real key is smaller than Inf1 < Inf2 (Fig. 7). *)
  type bkey = BK of K.t | Inf1 | Inf2

  type node = Leaf of leaf | Node of internal

  and leaf = { lline : Pmem.line; lkey : bkey Pmem.t }

  and internal = {
    ikey : bkey;
    iline : Pmem.line;
    left : node Pmem.t;
    right : node Pmem.t;
    info : internal Desc.state Pmem.t;
  }

  type t = {
    heap : Pmem.heap;
    root : internal;
    handles : internal Tracking.handle array;
    sites : Tracking.sites;
    ops : internal Tracking.node_ops;
    leaf_pwb : Pstats.site;
    find_empty_affect : bool;
        (* §6: "Finds can be further optimized to have their AffectSet be
           equal to the empty set" *)
  }

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  let key_name = function
    | Inf1 -> "inf1"
    | Inf2 -> "inf2"
    | BK k -> K.to_string k

  (* strict order BK _ < Inf1 < Inf2 *)
  let bcompare a b =
    match (a, b) with
    | BK x, BK y -> K.compare x y
    | BK _, (Inf1 | Inf2) -> -1
    | (Inf1 | Inf2), BK _ -> 1
    | Inf1, Inf1 | Inf2, Inf2 -> 0
    | Inf1, Inf2 -> -1
    | Inf2, Inf1 -> 1

  let new_leaf heap k =
    let lline = Pmem.new_line ~name:("leaf:" ^ key_name k) heap in
    { lline; lkey = Pmem.on_line lline k }

  let new_internal heap ~key ~left ~right =
    let iline = Pmem.new_line ~name:("int:" ^ key_name key) heap in
    {
      ikey = key;
      iline;
      left = Pmem.on_line iline left;
      right = Pmem.on_line iline right;
      info = Pmem.on_line iline Desc.Clean;
    }

  let init_pwb = Pstats.make Pwb "rbst.init.pwb"
  let init_sync = Pstats.make Psync "rbst.init.psync"

  let create ?(prefix = "rbst") ?(find_empty_affect = false) heap ~threads =
    let l1 = new_leaf heap Inf1 in
    let l2 = new_leaf heap Inf2 in
    let root = new_internal heap ~key:Inf2 ~left:(Leaf l1) ~right:(Leaf l2) in
    List.iter (Pmem.pwb init_pwb) [ l1.lline; l2.lline; root.iline ];
    Pmem.psync init_sync;
    {
      heap;
      root;
      handles = Tracking.make_handles heap ~threads;
      sites = Tracking.sites prefix;
      ops =
        {
          Tracking.info = (fun nd -> nd.info);
          node_line = (fun nd -> nd.iline);
        };
      leaf_pwb = Pstats.make Pwb (prefix ^ ".newleaf.pwb");
      find_empty_affect;
    }

  let my_handle t =
    let tid = if Sim.in_sim () then Sim.tid () else 0 in
    t.handles.(tid)

  type found = {
    gp : (internal * internal Desc.state * node) option;
        (* grandparent, its gathered info, and the child box gp -> p *)
    p : internal;
    p_info : internal Desc.state;
    p_box : node;  (* the child box p -> leaf, read after p_info *)
    p_side : [ `L | `R ];
    leaf : leaf;
  }

  (* Algorithm 5, Search: the info field of each internal node is read
     before its child pointer, so a gathered (node, info) pair certifies
     the child value it was read with. *)
  let search t k =
    let child q =
      if bcompare (BK k) q.ikey < 0 then (Pmem.read q.left, `L)
      else (Pmem.read q.right, `R)
    in
    let rec go gp p p_info p_box p_side =
      match p_box with
      | Leaf leaf -> { gp; p; p_info; p_box; p_side; leaf }
      | Node q ->
          let q_info = Pmem.read q.info in
          let q_box, q_side = child q in
          go (Some (p, p_info, p_box)) q q_info q_box q_side
    in
    let root_info = Pmem.read t.root.info in
    let root_box, root_side = child t.root in
    go None t.root root_info root_box root_side

  let tagged_desc = function
    | Desc.Tagged d -> Some d
    | Desc.Clean | Desc.Untagged _ -> None

  let read_only_attempt t ~affect ~response ~label =
    let desc = Desc.make t.heap ~label ~affect ~response () in
    Desc.set_result desc response;
    Tracking.Ready { desc; read_only = true }

  let child_field p = function `L -> p.left | `R -> p.right

  let insert_attempt t k () =
    let s = search t k in
    match tagged_desc s.p_info with
    | Some d -> Tracking.Help_first d
    | None ->
        let lkey = Pmem.read s.leaf.lkey in
        if bcompare lkey (BK k) = 0 then
          read_only_attempt t
            ~affect:[ (s.p, s.p_info) ]
            ~response:false
            ~label:("bst-insert!" ^ K.to_string k)
        else begin
          let nl = new_leaf t.heap (BK k) in
          (* duplicate of the displaced leaf (line 14) *)
          let sibling = new_leaf t.heap lkey in
          let smaller, larger =
            if bcompare (BK k) lkey < 0 then (nl, sibling) else (sibling, nl)
          in
          let internal =
            new_internal t.heap
              ~key:(if bcompare (BK k) lkey < 0 then lkey else BK k)
              ~left:(Leaf smaller) ~right:(Leaf larger)
          in
          let desc =
            Desc.make t.heap
              ~label:("bst-insert:" ^ K.to_string k)
              ~affect:[ (s.p, s.p_info) ]
              ~writes:
                [
                  Desc.Update
                    {
                      field = child_field s.p s.p_side;
                      old_v = s.p_box;
                      new_v = Node internal;
                    };
                ]
              ~news:[ internal ]
              ~cleanup:[ s.p; internal ]
              ~response:true ()
          in
          Pmem.write internal.info (Desc.tagged desc);
          (* fresh leaves must be durable before the descriptor is
             published; the engine's pbarrier orders these pwbs before
             RD_q (lines 24–26) *)
          Pmem.pwb t.leaf_pwb nl.lline;
          Pmem.pwb t.leaf_pwb sibling.lline;
          Tracking.Ready { desc; read_only = false }
        end

  let delete_attempt t k () =
    let s = search t k in
    match s.gp with
    | None ->
        (* p is the root: only sentinel leaves below, so k is absent *)
        read_only_attempt t
          ~affect:[ (s.p, s.p_info) ]
          ~response:false
          ~label:("bst-delete!" ^ K.to_string k)
    | Some (gp, gp_info, gp_box) -> (
        match tagged_desc gp_info with
        | Some d -> Tracking.Help_first d
        | None -> (
            match tagged_desc s.p_info with
            | Some d -> Tracking.Help_first d
            | None ->
                let lkey = Pmem.read s.leaf.lkey in
                if bcompare lkey (BK k) <> 0 then
                  read_only_attempt t
                    ~affect:[ (gp, gp_info); (s.p, s.p_info) ]
                    ~response:false
                    ~label:("bst-delete!" ^ K.to_string k)
                else begin
                  let other =
                    match s.p_side with
                    | `L -> Pmem.read s.p.right
                    | `R -> Pmem.read s.p.left
                  in
                  let gp_side =
                    if bcompare (BK k) gp.ikey < 0 then `L else `R
                  in
                  let desc =
                    Desc.make t.heap
                      ~label:("bst-delete:" ^ K.to_string k)
                      ~affect:[ (gp, gp_info); (s.p, s.p_info) ]
                      ~writes:
                        [
                          Desc.Update
                            {
                              field = child_field gp gp_side;
                              old_v = gp_box;
                              new_v = other;
                            };
                        ]
                        (* p is unlinked and stays tagged forever *)
                      ~cleanup:[ gp ] ~response:true ()
                  in
                  Tracking.Ready { desc; read_only = false }
                end))

  let find_attempt t k () =
    let s = search t k in
    match tagged_desc s.p_info with
    | Some d -> Tracking.Help_first d
    | None ->
        let lkey = Pmem.read s.leaf.lkey in
        read_only_attempt t
          ~affect:(if t.find_empty_affect then [] else [ (s.p, s.p_info) ])
          ~response:(bcompare lkey (BK k) = 0)
          ~label:("bst-find:" ^ K.to_string k)

  let insert t k =
    Tracking.exec t.ops t.sites (my_handle t) ~kind:`Update
      ~attempt:(insert_attempt t k)

  let delete t k =
    Tracking.exec t.ops t.sites (my_handle t) ~kind:`Update
      ~attempt:(delete_attempt t k)

  let find t k =
    Tracking.exec t.ops t.sites (my_handle t) ~kind:`Readonly
      ~attempt:(find_attempt t k)

  let apply t = function
    | Insert k -> insert t k
    | Delete k -> delete t k
    | Find k -> find t k

  let recover t op =
    Tracking.recover t.ops t.sites (my_handle t) ~reinvoke:(fun () ->
        apply t op)

  (* ---- introspection -------------------------------------------------- *)

  let fold_leaves t f acc =
    let rec go acc = function
      | Leaf lf -> f acc lf
      | Node q ->
          let acc = go acc (Pmem.peek q.left) in
          go acc (Pmem.peek q.right)
    in
    go acc (Node t.root)

  let to_list t =
    List.rev
      (fold_leaves t
         (fun acc lf ->
           match Pmem.peek lf.lkey with
           | BK k -> k :: acc
           | Inf1 | Inf2 -> acc)
         [])

  let mem_volatile t k =
    fold_leaves t
      (fun acc lf -> acc || Pmem.peek lf.lkey = BK k)
      false

  let size t = List.length (to_list t)

  let check_invariants ?(expect_untagged = true) t =
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    (* left subtree strictly below the node key, right subtree at or
       above it; bounds propagate down. *)
    let rec go lo hi = function
      | Leaf lf ->
          let k = Pmem.peek lf.lkey in
          let lo_ok = match lo with None -> true | Some b -> bcompare k b >= 0 in
          let hi_ok = match hi with None -> true | Some b -> bcompare k b < 0 in
          if lo_ok && hi_ok then Ok ()
          else err "leaf %s violates search bounds" (key_name k)
      | Node q -> (
          if
            expect_untagged
            && match Pmem.peek q.info with Desc.Tagged _ -> true | _ -> false
          then err "reachable internal %s is tagged in a quiescent state"
                 (key_name q.ikey)
          else
            match go lo (Some q.ikey) (Pmem.peek q.left) with
            | Error _ as e -> e
            | Ok () -> go (Some q.ikey) hi (Pmem.peek q.right))
    in
    if t.root.ikey <> Inf2 then err "root sentinel key corrupted"
    else go None None (Node t.root)

  (* Reachable lines for the space sweep: leaves carry the keys (sentinel
     leaves none), internals are key-less payload structure, descriptors
     referenced by reachable info fields or RD cells are metadata.
     Displaced leaves and unlinked internals are garbage by omission. *)
  let space t =
    let acc = ref [] in
    let push line cls = acc := (line, cls) :: !acc in
    let desc_of_info = function
      | Desc.Clean -> ()
      | Desc.Tagged d | Desc.Untagged d ->
          push (Desc.line d) (`Meta "descriptor")
    in
    let rec walk = function
      | Leaf lf ->
          push lf.lline
            (match Pmem.peek lf.lkey with
            | BK k -> `Payload [ k ]
            | Inf1 | Inf2 -> `Payload [])
      | Node q ->
          push q.iline (`Payload []);
          desc_of_info (Pmem.peek q.info);
          walk (Pmem.peek q.left);
          walk (Pmem.peek q.right)
    in
    walk (Node t.root);
    Array.iter
      (fun (h : internal Tracking.handle) ->
        push (Pmem.line_of h.Tracking.cp) (`Meta "checkpoint");
        push (Pmem.line_of h.Tracking.rd) (`Meta "announce");
        match Pmem.peek h.Tracking.rd with
        | None -> ()
        | Some d -> push (Desc.line d) (`Meta "descriptor"))
      t.handles;
    List.rev !acc
end

module Int_key = struct
  type t = int

  let compare = Int.compare
  let to_string = string_of_int
end

module Int = Make (Int_key)
