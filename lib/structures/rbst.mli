(** Detectably recoverable external (leaf-oriented) binary search tree —
    the Tracking transformation applied to the lock-free BST of Ellen,
    Fatourou, Ruppert and van Breugel (paper §6, Algorithms 5–6).

    Internal nodes carry the info field used for tagging; every key lives
    in a leaf.  An insert replaces a leaf with a three-node subtree (new
    leaf, copy of the old leaf, fresh internal); a delete swings the
    grandparent's child pointer to the leaf's sibling and leaves the
    removed parent tagged forever.  All child pointers are compared
    physically, so fresh allocations give ABA freedom, as in the list. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

module Make (K : KEY) : sig
  type t

  val create :
    ?prefix:string -> ?find_empty_affect:bool -> Pmem.heap -> threads:int -> t
  (** [find_empty_affect] (default false) applies §6's further find
      optimization: the AffectSet of a find is the empty set, so its
      descriptor records nothing but the response. *)

  val insert : t -> K.t -> bool
  val delete : t -> K.t -> bool
  val find : t -> K.t -> bool

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  val recover : t -> pending -> bool
  val apply : t -> pending -> bool

  (** {1 Introspection — tests and examples only} *)

  val to_list : t -> K.t list
  (** Sorted keys, from a volatile snapshot. *)

  val mem_volatile : t -> K.t -> bool

  val check_invariants : ?expect_untagged:bool -> t -> (unit, string) result
  (** BST ordering of internal keys w.r.t. leaves, exactly two children
      per internal node, sentinel structure intact; with [expect_untagged]
      every reachable internal node must be untagged (quiescent state). *)

  val size : t -> int
  (** Number of keys (excluding sentinels). *)

  val space : t -> (Pmem.line * [ `Payload of K.t list | `Meta of string ]) list
  (** Persistent-space enumeration ([Harness.Space]): every line reachable
      from the root, classified as payload (leaves carry their key,
      internals and sentinel leaves none) or detectability metadata
      (["checkpoint"], ["announce"], ["descriptor"]).  Displaced leaves
      and unlinked internals are garbage by omission. *)
end

module Int_key : KEY with type t = int
module Int : module type of Make (Int_key)
