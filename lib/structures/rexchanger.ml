type outcome =
  | Pending
  | Got of int * int * int  (* value received, collider tid, collider seq *)
  | Cancelled

type xdesc = {
  line : Pmem.line;
  payload : payload Pmem.t;
  result : outcome Pmem.t;
}

and payload = { role : role; v_mine : int; seq : int; owner : int }

and role = Waiter | Collider of xdesc

type sites = {
  desc_pwb : Pstats.site;
  publish_fence : Pstats.site;
  rd_pwb : Pstats.site;
  cp_pwb : Pstats.site;
  rd_sync : Pstats.site;
  slot_pwb : Pstats.site;
  slot_sync : Pstats.site;
  result_pwb : Pstats.site;
  result_sync : Pstats.site;
}

let sites prefix =
  {
    desc_pwb = Pstats.make Pwb (prefix ^ ".desc.pwb");
    publish_fence = Pstats.make Pfence (prefix ^ ".publish.pfence");
    rd_pwb = Pstats.make Pwb (prefix ^ ".rd.pwb");
    cp_pwb = Pstats.make Pwb (prefix ^ ".cp.pwb");
    rd_sync = Pstats.make Psync (prefix ^ ".rd.psync");
    slot_pwb = Pstats.make Pwb (prefix ^ ".slot.pwb");
    slot_sync = Pstats.make Psync (prefix ^ ".slot.psync");
    result_pwb = Pstats.make Pwb (prefix ^ ".result.pwb");
    result_sync = Pstats.make Psync (prefix ^ ".result.psync");
  }

type t = {
  heap : Pmem.heap;
  slot : xdesc option Pmem.t;
  rd : xdesc option Pmem.t array;
  cp : int Pmem.t array;
  seqs : int array;
  s : sites;
}

let create heap ~threads =
  let s = sites "xchg" in
  let slot = Pmem.alloc ~name:"xchg.slot" heap None in
  Pmem.pwb s.slot_pwb (Pmem.line_of slot);
  Pmem.psync s.slot_sync;
  let rd = Pvar.make ~name:"xchg.RD" heap ~threads None in
  let cp = Pvar.make ~name:"xchg.CP" heap ~threads 0 in
  {
    heap;
    slot;
    rd = Array.init threads (fun i -> Pvar.cell rd i);
    cp = Array.init threads (fun i -> Pvar.cell cp i);
    seqs = Array.make threads 0;
    s;
  }

let tid () = if Sim.in_sim () then Sim.tid () else 0

let new_desc t ~role ~v ~seq ~owner =
  let line = Pmem.new_line ~name:"xchg.desc" t.heap in
  {
    line;
    payload = Pmem.on_line line { role; v_mine = v; seq; owner };
    result = Pmem.on_line line Pending;
  }

(* Publish a fresh descriptor: durable before RD_q points at it, RD_q
   durable before the check-point is raised (the Tracking protocol). *)
let publish t id d =
  Pmem.pwb t.s.desc_pwb d.line;
  Pmem.pfence t.s.publish_fence;
  Pmem.write t.rd.(id) (Some d);
  Pmem.pwb_f t.s.rd_pwb t.rd.(id);
  Pmem.pfence t.s.publish_fence;
  Pmem.write t.cp.(id) 1;
  Pmem.pwb_f t.s.cp_pwb t.cp.(id);
  Pmem.psync t.s.rd_sync

let clear_slot t expected_box =
  ignore (Pmem.cas t.slot expected_box None : bool);
  Pmem.pwb_f t.s.slot_pwb t.slot;
  Pmem.psync t.s.slot_sync

(* Complete a collision whose decisive CAS has landed: persist the
   partner's cell, set our own result, free the slot. *)
let finish_collision t id d ~waiter ~my_seq =
  Pmem.pwb t.s.result_pwb waiter.line;
  let pw = Pmem.read waiter.payload in
  Pmem.write d.result (Got (pw.v_mine, id, my_seq));
  Pmem.pwb t.s.result_pwb d.line;
  Pmem.psync t.s.result_sync;
  (match Pmem.read t.slot with
  | Some w as box when w == waiter -> clear_slot t box
  | Some _ | None -> ());
  Some pw.v_mine

let rec wait_for_partner t id d ~spins =
  match Pmem.read d.result with
  | Got (v, _, _) -> Some v
  | Cancelled -> None
  | Pending ->
      if spins <= 0 then begin
        (* Timeout: cancellation and collision race on the same cell, so
           exactly one of them wins. *)
        if Pmem.cas d.result Pending Cancelled then begin
          Pmem.pwb t.s.result_pwb d.line;
          Pmem.psync t.s.result_sync;
          (match Pmem.read t.slot with
          | Some w as box when w == d -> clear_slot t box
          | Some _ | None -> ());
          None
        end
        else wait_for_partner t id d ~spins:1
      end
      else begin
        Sim.advance 80.;
        Sim.step 0.;
        wait_for_partner t id d ~spins:(spins - 1)
      end

let rec attempt t id v ~spins =
  let slot_box = Pmem.read t.slot in
  match slot_box with
  | None ->
      t.seqs.(id) <- t.seqs.(id) + 1;
      let seq = t.seqs.(id) in
      let d = new_desc t ~role:Waiter ~v ~seq ~owner:id in
      publish t id d;
      if Pmem.cas t.slot slot_box (Some d) then begin
        Pmem.pwb_f t.s.slot_pwb t.slot;
        Pmem.psync t.s.slot_sync;
        wait_for_partner t id d ~spins
      end
      else attempt t id v ~spins
  | Some waiter -> (
      match Pmem.read waiter.result with
      | Pending ->
          t.seqs.(id) <- t.seqs.(id) + 1;
          let seq = t.seqs.(id) in
          let d = new_desc t ~role:(Collider waiter) ~v ~seq ~owner:id in
          publish t id d;
          if Pmem.cas waiter.result Pending (Got (v, id, seq)) then
            finish_collision t id d ~waiter ~my_seq:seq
          else begin
            (* lost the collision race or the waiter cancelled *)
            Sim.advance 40.;
            attempt t id v ~spins
          end
      | Got _ | Cancelled ->
          (* stale waiter: help free the slot, then retry *)
          clear_slot t slot_box;
          attempt t id v ~spins)

let exchange ?(spins = 64) t v =
  let id = tid () in
  Pmem.system_persist t.cp.(id) 0;
  attempt t id v ~spins

let recover ?(spins = 64) t v =
  let id = tid () in
  if Pmem.read t.cp.(id) = 0 then exchange ~spins t v
  else
    match Pmem.read t.rd.(id) with
    | None -> exchange ~spins t v
    | Some d -> (
        let pay = Pmem.read d.payload in
        t.seqs.(id) <- max t.seqs.(id) pay.seq;
        match Pmem.read d.result with
        | Got (v', _, _) -> Some v'
        | Cancelled -> None
        | Pending -> (
            match pay.role with
            | Waiter -> (
                match Pmem.read t.slot with
                | Some w when w == d ->
                    (* still installed: resume waiting *)
                    wait_for_partner t id d ~spins
                | Some _ | None -> exchange ~spins t v)
            | Collider waiter -> (
                match Pmem.read waiter.result with
                | Got (_, ct, cs) when ct = id && cs = pay.seq ->
                    (* my decisive CAS landed before the crash *)
                    finish_collision t id d ~waiter ~my_seq:pay.seq
                | Got _ | Cancelled | Pending -> exchange ~spins t v)))

let slot_is_free t = Pmem.peek t.slot = None

(* Space-sweep enumeration.  An exchanger holds no abstract contents, so
   the slot root is empty payload and every reachable descriptor (the
   installed waiter's and each thread's announced one) is metadata.
   Collided/cancelled descriptors that no cell references any more are
   garbage by omission. *)
let space t =
  let acc = ref [] in
  let push line cls = acc := (line, cls) :: !acc in
  push (Pmem.line_of t.slot) (`Payload []);
  (match Pmem.peek t.slot with
  | None -> ()
  | Some d -> push d.line (`Meta "descriptor"));
  Array.iter
    (fun cell ->
      push (Pmem.line_of cell) (`Meta "announce");
      match Pmem.peek cell with
      | None -> ()
      | Some d -> push d.line (`Meta "descriptor"))
    t.rd;
  Array.iter (fun cell -> push (Pmem.line_of cell) (`Meta "checkpoint")) t.cp;
  List.rev !acc
