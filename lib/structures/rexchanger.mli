(** Detectably recoverable exchanger (paper §6, after Scherer–Lea–Scott):
    two threads pair up and swap integer values through a single slot.

    The first thread to arrive captures the slot by installing its
    descriptor and busy-waits; a second thread collides by CASing the
    waiter's result from pending to its own value (stamped with its
    (tid, seq) identity, which is what recovery uses to decide whether a
    crashed collision landed).  All descriptor state lives in simulated
    NVMM and is persisted before it can be observed, so after a crash
    both parties can recover their responses — the detectability
    guarantee.  A waiter that exhausts its spin budget cancels with a CAS
    on the same cell, so cancellation and collision exclude each other.

    Exchanges are inherently rendezvous-blocking: [exchange] returns
    [None] on timeout.  Lock-freedom is preserved in the paper's sense —
    a stalled waiter never prevents others from using the slot once it is
    cancelled or collided with. *)

type t

val create : Pmem.heap -> threads:int -> t

val exchange : ?spins:int -> t -> int -> int option
(** [exchange t v] offers [v]; returns [Some v'] where [v'] is the
    partner's value, or [None] if no partner arrived within the spin
    budget (default 64). *)

val recover : ?spins:int -> t -> int -> int option
(** Recover the calling thread's crashed [exchange v]: return the already
    exchanged value, resume waiting, or re-invoke. *)

(** {1 Introspection — tests only} *)

val slot_is_free : t -> bool
(** Volatile check that no waiter is currently installed. *)

val space : t -> (Pmem.line * [ `Payload of int list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): the slot root plus
    every still-referenced descriptor and the per-thread CP/RD cells.
    An exchanger holds no abstract contents, so payload lines carry no
    values; unreferenced descriptors are garbage by omission. *)
