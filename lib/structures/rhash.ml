module type KEY = sig
  include Rlist.KEY

  val hash : t -> int
end

module Make (K : KEY) = struct
  module L = Rlist.Make (K)

  type t = { buckets : L.t array }

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  let create ?(prefix = "rhash") ?(buckets = 64) heap ~threads =
    if buckets < 1 then invalid_arg "Rhash.create: bucket count";
    {
      buckets =
        (* buckets share the persistence sites of one prefix: they are the
           same code lines, executed on different bucket instances *)
        Array.init buckets (fun _ -> L.create ~prefix heap ~threads);
    }

  let bucket t k =
    t.buckets.((K.hash k land max_int) mod Array.length t.buckets)

  let insert t k = L.insert (bucket t k) k
  let delete t k = L.delete (bucket t k) k
  let find t k = L.find (bucket t k) k

  let conv = function
    | Insert k -> (k, L.Insert k)
    | Delete k -> (k, L.Delete k)
    | Find k -> (k, L.Find k)

  let apply t p =
    let k, op = conv p in
    L.apply (bucket t k) op

  (* The pending operation names its key, the key names its bucket, and
     the bucket holds this thread's check-point and recovery data for it. *)
  let recover t p =
    let k, op = conv p in
    L.recover (bucket t k) op

  let to_list t =
    Array.to_list t.buckets |> List.concat_map L.to_list

  (* Summing per-bucket lengths avoids materializing every key the way
     [to_list] does; the two agree by construction. *)
  let cardinal t = Array.fold_left (fun acc b -> acc + L.length b) 0 t.buckets

  let check_invariants t =
    let n = Array.length t.buckets in
    let rec go i =
      if i = n then Ok ()
      else
        match L.check_invariants t.buckets.(i) with
        | Error _ as e -> e
        | Ok () ->
            (* every key must live in the bucket its hash names: a key
               filed elsewhere is unreachable to insert/delete/find,
               which route through [bucket] *)
            let rec placed = function
              | [] -> go (i + 1)
              | k :: rest ->
                  let want = (K.hash k land max_int) mod n in
                  if want = i then placed rest
                  else
                    Error
                      (Printf.sprintf
                         "rhash: key %s found in bucket %d but hashes to \
                          bucket %d"
                         (K.to_string k) i want)
            in
            placed (L.to_list t.buckets.(i))
    in
    go 0

  (* Union of the buckets' enumerations — each bucket is a full rlist
     with its own sentinels and per-thread handles on the shared heap. *)
  let space t =
    Array.to_list t.buckets |> List.concat_map L.space
end

module Int = Make (struct
  include Rlist.Int_key

  let hash = Hashtbl.hash
end)
