(** Detectably recoverable hash map (set of keys), composed from a fixed
    array of recoverable linked lists (§4) — one Tracking list per bucket.

    Composition is free: each bucket carries its own per-thread
    check-point and recovery data, an operation touches exactly one
    bucket, and the engine's crash-atomic invocation announcement is the
    first step of every operation, so recovery simply delegates to the
    pending key's bucket.  Related work in the paper (§7) cites
    recoverable hash maps as specialised designs; this one demonstrates
    that Tracking structures compose into one without new machinery. *)

module type KEY = sig
  include Rlist.KEY

  val hash : t -> int
end

module Make (K : KEY) : sig
  type t

  val create : ?prefix:string -> ?buckets:int -> Pmem.heap -> threads:int -> t
  (** Default 64 buckets.  The bucket count is fixed at creation (no
      rehashing), as in the paper's cited persistent hash maps. *)

  val insert : t -> K.t -> bool
  val delete : t -> K.t -> bool
  val find : t -> K.t -> bool

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  val recover : t -> pending -> bool
  val apply : t -> pending -> bool

  (** {1 Introspection — tests and examples only} *)

  val to_list : t -> K.t list
  (** All keys, sorted per bucket order then key order. *)

  val cardinal : t -> int
  val check_invariants : t -> (unit, string) result

  val space : t -> (Pmem.line * [ `Payload of K.t list | `Meta of string ]) list
  (** Persistent-space enumeration: union of the buckets' [Rlist.space]
      enumerations. *)
end

module Int : module type of Make (struct
  include Rlist.Int_key

  let hash = Hashtbl.hash
end)
