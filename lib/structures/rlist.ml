module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

module Make (K : KEY) = struct
  type key = Neg_inf | Key of K.t | Pos_inf

  type node = {
    key : key;
    line : Pmem.line;
    next : node option Pmem.t;  (* [None] only in the tail sentinel *)
    info : node Desc.state Pmem.t;
  }

  type t = {
    heap : Pmem.heap;
    head : node;
    handles : node Tracking.handle array;
    sites : Tracking.sites;
    ops : node Tracking.node_ops;
    ro_opt : bool;  (* the read-only optimization (red code of Alg. 1) *)
  }

  type pending = Insert of K.t | Delete of K.t | Find of K.t

  let key_name = function
    | Neg_inf -> "-inf"
    | Pos_inf -> "+inf"
    | Key k -> K.to_string k

  (* [k] < [key]?  Sentinels compare as infinities. *)
  let lt_key nk k =
    match nk with
    | Neg_inf -> true
    | Pos_inf -> false
    | Key a -> K.compare a k < 0

  let eq_key nk k = match nk with Key a -> K.compare a k = 0 | _ -> false

  let new_node heap ~key ~next ~info =
    let line = Pmem.new_line ~name:("node:" ^ key_name key) heap in
    { key; line; next = Pmem.on_line line next; info = Pmem.on_line line info }

  let init_pwb = Pstats.make Pwb "rlist.init.pwb"
  let init_sync = Pstats.make Psync "rlist.init.psync"

  let create ?(prefix = "rlist") ?(read_only_opt = true) heap ~threads =
    let tail = new_node heap ~key:Pos_inf ~next:None ~info:Desc.Clean in
    let head = new_node heap ~key:Neg_inf ~next:(Some tail) ~info:Desc.Clean in
    Pmem.pwb init_pwb tail.line;
    Pmem.pwb init_pwb head.line;
    Pmem.psync init_sync;
    let ops =
      { Tracking.info = (fun nd -> nd.info); node_line = (fun nd -> nd.line) }
    in
    {
      heap;
      head;
      handles = Tracking.make_handles heap ~threads;
      sites = Tracking.sites prefix;
      ops;
      ro_opt = read_only_opt;
    }

  let my_handle t =
    let tid = if Sim.in_sim () then Sim.tid () else 0 in
    t.handles.(tid)

  (* Algorithm 3, Search: the gather phase.  Each node's info field is
     read on first access, so the AffectSet pairs are consistent with the
     traversal.  [link] is the exact box read from [pred.next] (and thus
     physically equal to the value stored there), which the WriteSet CAS
     needs as its expected value. *)
  let search t k =
    let rec go pred pred_info link curr curr_info =
      if lt_key curr.key k then begin
        let next_link = Pmem.read curr.next in
        match next_link with
        | None ->
            failwith
              "rlist: search ran past the +inf tail sentinel — the tail's \
               key compares greater than every search key"
        | Some next ->
            let next_info = Pmem.read next.info in
            go curr curr_info next_link next next_info
      end
      else (pred, pred_info, link, curr, curr_info)
    in
    let head_info = Pmem.read t.head.info in
    let first_link = Pmem.read t.head.next in
    match first_link with
    | None ->
        failwith
          "rlist: head sentinel has no successor — the list must always \
           reach the +inf tail"
    | Some first ->
        let first_info = Pmem.read first.info in
        go t.head head_info first_link first first_info

  let tagged_desc = function
    | Desc.Tagged d -> Some d
    | Desc.Clean | Desc.Untagged _ -> None

  (* Read-only outcome.  With the optimization (red code of Algorithm 1)
     the result is preset and Help is skipped entirely; without it, the
     operation runs the full phase machine — tagging and untagging the
     single affected node — which is exactly what the optimization
     saves.  Keeping both paths makes the optimization's value
     measurable (see the ablation benchmarks). *)
  let read_only_attempt t ~node ~node_info ~response ~label =
    let desc =
      Desc.make t.heap ~label ~affect:[ (node, node_info) ]
        ~cleanup:(if t.ro_opt then [] else [ node ])
        ~response ()
    in
    if t.ro_opt then Desc.set_result desc response;
    Tracking.Ready { desc; read_only = t.ro_opt }

  let insert_attempt t k () =
    let pred, pred_info, pred_link, curr, curr_info = search t k in
    match tagged_desc pred_info with
    | Some d -> Tracking.Help_first d
    | None -> (
        match tagged_desc curr_info with
        | Some d -> Tracking.Help_first d
        | None ->
            if eq_key curr.key k then
              (* key already present: behaves like a Find *)
              read_only_attempt t ~node:curr ~node_info:curr_info
                ~response:false
                ~label:("insert!" ^ K.to_string k)
            else begin
              (* Replace curr with a fresh copy so pred.next never holds
                 the same pointer twice (ABA freedom). *)
              let curr_next = Pmem.read curr.next in
              let newcurr =
                new_node t.heap ~key:curr.key ~next:curr_next ~info:Desc.Clean
              in
              let newnd =
                new_node t.heap ~key:(Key k) ~next:(Some newcurr)
                  ~info:Desc.Clean
              in
              let desc =
                Desc.make t.heap
                  ~label:("insert:" ^ K.to_string k)
                  ~affect:[ (pred, pred_info); (curr, curr_info) ]
                  ~writes:
                    [
                      Desc.Update
                        {
                          field = pred.next;
                          old_v = pred_link;
                          new_v = Some newnd;
                        };
                    ]
                  ~news:[ newnd; newcurr ]
                  ~cleanup:[ pred; newnd; newcurr ]
                  ~response:true ()
              in
              (* New nodes are born tagged by the descriptor (line 20). *)
              Pmem.write newnd.info (Desc.tagged desc);
              Pmem.write newcurr.info (Desc.tagged desc);
              Tracking.Ready { desc; read_only = false }
            end)

  let delete_attempt t k () =
    let pred, pred_info, pred_link, curr, curr_info = search t k in
    match tagged_desc pred_info with
    | Some d -> Tracking.Help_first d
    | None -> (
        match tagged_desc curr_info with
        | Some d -> Tracking.Help_first d
        | None ->
            if not (eq_key curr.key k) then
              read_only_attempt t ~node:curr ~node_info:curr_info
                ~response:false
                ~label:("delete!" ^ K.to_string k)
            else begin
              let curr_next = Pmem.read curr.next in
              let desc =
                Desc.make t.heap
                  ~label:("delete:" ^ K.to_string k)
                  ~affect:[ (pred, pred_info); (curr, curr_info) ]
                  ~writes:
                    [
                      Desc.Update
                        { field = pred.next; old_v = pred_link; new_v = curr_next };
                    ]
                    (* curr is deleted: it stays tagged forever, so only
                       pred is cleaned up. *)
                  ~cleanup:[ pred ] ~response:true ()
              in
              Tracking.Ready { desc; read_only = false }
            end)

  let find_attempt t k () =
    let _, _, _, curr, curr_info = search t k in
    match tagged_desc curr_info with
    | Some d -> Tracking.Help_first d
    | None ->
        read_only_attempt t ~node:curr ~node_info:curr_info
          ~response:(eq_key curr.key k)
          ~label:("find:" ^ K.to_string k)

  let insert t k =
    Tracking.exec t.ops t.sites (my_handle t) ~kind:`Update
      ~attempt:(insert_attempt t k)

  let delete t k =
    Tracking.exec t.ops t.sites (my_handle t) ~kind:`Update
      ~attempt:(delete_attempt t k)

  let find t k =
    Tracking.exec t.ops t.sites (my_handle t)
      ~kind:(if t.ro_opt then `Readonly else `Update)
      ~attempt:(find_attempt t k)

  let apply t = function
    | Insert k -> insert t k
    | Delete k -> delete t k
    | Find k -> find t k

  let recover t op =
    Tracking.recover t.ops t.sites (my_handle t) ~reinvoke:(fun () ->
        apply t op)

  (* ---- introspection -------------------------------------------------- *)

  let fold_volatile t f acc =
    let rec go acc nd =
      match Pmem.peek nd.next with
      | None -> acc
      | Some next -> go (f acc nd) next
    in
    match Pmem.peek t.head.next with None -> acc | Some n -> go acc n

  let to_list t =
    List.rev
      (fold_volatile t
         (fun acc nd -> match nd.key with Key k -> k :: acc | _ -> acc)
         [])

  let mem_volatile t k =
    fold_volatile t (fun acc nd -> acc || eq_key nd.key k) false

  let length t = List.length (to_list t)

  let check_invariants ?(expect_untagged = true) t =
    let err fmt = Format.kasprintf (fun s -> Error s) fmt in
    let rec go prev nd =
      let order_ok =
        match (prev.key, nd.key) with
        | Neg_inf, _ -> true
        | _, Neg_inf -> false
        | Pos_inf, _ -> false
        | _, Pos_inf -> true
        | Key a, Key b -> K.compare a b < 0
      in
      if not order_ok then
        err "order violation: %s before %s" (key_name prev.key)
          (key_name nd.key)
      else if
        expect_untagged
        && match Pmem.peek nd.info with Desc.Tagged _ -> true | _ -> false
      then err "reachable node %s is tagged in a quiescent state"
             (key_name nd.key)
      else
        match Pmem.peek nd.next with
        | None ->
            if nd.key = Pos_inf then Ok ()
            else err "list does not end at the tail sentinel"
        | Some next -> go nd next
    in
    match Pmem.peek t.head.next with
    | None -> err "head sentinel has no successor"
    | Some first -> go t.head first

  (* Every cache line reachable from the structure's persistent roots,
     classified for the space sweep: [`Payload keys] for lines holding
     abstract-set state (sentinels carry no key), [`Meta kind] for
     detectability metadata.  Unlinked nodes and retired descriptors are
     deliberately absent — the sweep counts them as garbage. *)
  let space t =
    let acc = ref [] in
    let push line cls = acc := (line, cls) :: !acc in
    let desc_of_info = function
      | Desc.Clean -> ()
      | Desc.Tagged d | Desc.Untagged d ->
          push (Desc.line d) (`Meta "descriptor")
    in
    let rec walk nd =
      (match nd.key with
      | Key k -> push nd.line (`Payload [ k ])
      | Neg_inf | Pos_inf -> push nd.line (`Payload []));
      desc_of_info (Pmem.peek nd.info);
      match Pmem.peek nd.next with None -> () | Some next -> walk next
    in
    walk t.head;
    Array.iter
      (fun (h : node Tracking.handle) ->
        push (Pmem.line_of h.Tracking.cp) (`Meta "checkpoint");
        push (Pmem.line_of h.Tracking.rd) (`Meta "announce");
        match Pmem.peek h.Tracking.rd with
        | None -> ()
        | Some d -> push (Desc.line d) (`Meta "descriptor"))
      t.handles;
    List.rev !acc
end

module Int_key = struct
  type t = int

  let compare = Int.compare
  let to_string = string_of_int
end

module Int = Make (Int_key)
