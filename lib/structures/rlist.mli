(** Detectably recoverable sorted linked list (paper §4, Algorithms 3–4):
    the Tracking transformation applied to a Harris-style ordered list
    with two sentinel nodes.

    A successful [insert] replaces the successor node with a fresh copy
    (the paper's [newcurr]) so that no pointer value is ever stored twice,
    which is what keeps CAS ABA-free.  A deleted node remains tagged by
    its deleting descriptor forever.  [find] and unsuccessful updates use
    the read-only optimization: they install no descriptor tags and
    linearize at the read of the affected node's info field. *)

module type KEY = sig
  type t

  val compare : t -> t -> int
  val to_string : t -> string
end

module Make (K : KEY) : sig
  type t

  val create :
    ?prefix:string -> ?read_only_opt:bool -> Pmem.heap -> threads:int -> t
  (** An empty list whose sentinels are durably initialized.  [prefix]
      names the persistence sites (default ["rlist"]); use distinct
      prefixes for structures whose persistence statistics must not be
      conflated.  [read_only_opt] (default true) enables the paper's
      read-only-operation optimization (the red code of Algorithm 1);
      disabling it makes finds and failed updates run the full helping
      protocol, which the ablation benchmarks quantify. *)

  val insert : t -> K.t -> bool
  (** [true] iff the key was absent and is now present. *)

  val delete : t -> K.t -> bool
  (** [true] iff the key was present and is now absent. *)

  val find : t -> K.t -> bool

  (** A pending invocation, as re-supplied by the system to the recovery
      function after a crash. *)
  type pending = Insert of K.t | Delete of K.t | Find of K.t

  val recover : t -> pending -> bool
  (** Complete (or re-invoke) the calling thread's crashed operation and
      return its response — the detectable-recovery guarantee. *)

  val apply : t -> pending -> bool
  (** Run a pending description as a fresh operation (harness glue). *)

  (** {1 Introspection — tests and examples only} *)

  val to_list : t -> K.t list
  (** Volatile snapshot of the keys, unsynchronized. *)

  val mem_volatile : t -> K.t -> bool
  (** Uncosted presence check via {!Pmem.peek}. *)

  val check_invariants : ?expect_untagged:bool -> t -> (unit, string) result
  (** Strictly sorted, sentinel-delimited, reachable tail; with
      [expect_untagged] (default true) also requires every reachable
      node's info field to be untagged, which must hold in any quiescent
      state (all operations completed or recovered). *)

  val length : t -> int

  val space : t -> (Pmem.line * [ `Payload of K.t list | `Meta of string ]) list
  (** Persistent-space enumeration ([Harness.Space]): every cache line
      reachable from the structure's roots, classified as payload (with
      the keys it holds; sentinels hold none) or detectability metadata
      (["checkpoint"] = CP cells, ["announce"] = RD cells,
      ["descriptor"]).  Lines the structure allocated but no longer
      reaches are garbage by omission. *)
end

module Int_key : KEY with type t = int
module Int : module type of Make (Int_key)
