type 'a node = {
  value : 'a option;  (* None only in dummies (consumed or initial) *)
  line : Pmem.line;
  next : 'a node option Pmem.t;
  info : 'a node Desc.state Pmem.t;
}

type 'a t = {
  heap : Pmem.heap;
  head : 'a node Pmem.t;  (* points at the current dummy *)
  tail_hint : 'a node Pmem.t;  (* unflushed hint; the chain is the truth *)
  handles : 'a node Tracking.handle array;
  sites : Tracking.sites;
  ops : 'a node Tracking.node_ops;
}

type 'a pending = Enqueue of 'a | Dequeue

let new_node heap value =
  let line = Pmem.new_line ~name:"qnode" heap in
  {
    value;
    line;
    next = Pmem.on_line line None;
    info = Pmem.on_line line Desc.Clean;
  }

let init_pwb = Pstats.make Pwb "rqueue.init.pwb"
let init_sync = Pstats.make Psync "rqueue.init.psync"

let create ?(prefix = "rqueue") heap ~threads =
  let dummy = new_node heap None in
  let head = Pmem.alloc ~name:"rqueue.head" heap dummy in
  let tail_hint = Pmem.alloc ~name:"rqueue.tail" heap dummy in
  Pmem.pwb init_pwb dummy.line;
  Pmem.pwb init_pwb (Pmem.line_of head);
  Pmem.pwb init_pwb (Pmem.line_of tail_hint);
  Pmem.psync init_sync;
  {
    heap;
    head;
    tail_hint;
    handles = Tracking.make_handles heap ~threads;
    sites = Tracking.sites prefix;
    ops =
      { Tracking.info = (fun nd -> nd.info); node_line = (fun nd -> nd.line) };
  }

let my_handle t =
  let tid = if Sim.in_sim () then Sim.tid () else 0 in
  t.handles.(tid)

let tagged_desc = function
  | Desc.Tagged d -> Some d
  | Desc.Clean | Desc.Untagged _ -> None

(* Find the last node, reading each node's info strictly before its next
   pointer, so a gathered (node, info) pair certifies the None it was
   read with: any append bumps the info first. *)
let find_last t =
  let rec go nd =
    let info = Pmem.read nd.info in
    match Pmem.read nd.next with
    | None -> (nd, info)
    | Some next -> go next
  in
  go (Pmem.read t.tail_hint)

(* The fresh node is allocated inside the attempt, after the engine's
   crash-atomic invocation announcement (see Rstack.push_attempt). *)
let enqueue_attempt t v () =
  let last, last_info = find_last t in
  match tagged_desc last_info with
  | Some d -> Tracking.Help_first d
  | None ->
      let fresh = new_node t.heap (Some v) in
      let desc =
        Desc.make t.heap ~label:"enqueue"
          ~affect:[ (last, last_info) ]
          ~writes:
            [ Desc.Update { field = last.next; old_v = None; new_v = Some fresh } ]
          ~news:[ fresh ]
          ~cleanup:[ last; fresh ]
          ~response:true ()
      in
      Pmem.write fresh.info (Desc.tagged desc);
      Tracking.Ready { desc; read_only = false }

let enqueue t v =
  let h = my_handle t in
  let ok =
    Tracking.exec t.ops t.sites h ~kind:`Update ~attempt:(enqueue_attempt t v)
  in
  assert ok;
  (* best-effort, unflushed hint advance to the appended node *)
  match Pmem.read h.rd with
  | Some d -> (
      match (Desc.payload d).Desc.news with
      | [ fresh ] -> Pmem.write t.tail_hint fresh
      | _ -> ())
  | None -> ()

(* The dequeued value lives in the successor of the descriptor's affected
   node (the retired dummy), which never changes once the dummy leaves
   the queue — so it is recoverable from the descriptor alone. *)
let value_of_dequeue d =
  let pay = Desc.payload d in
  match pay.Desc.affect with
  | [ (hd, _) ] -> (
      match Pmem.read hd.next with
      | Some first -> first.value
      | None -> invalid_arg "Rqueue: dequeue descriptor without successor")
  | _ -> invalid_arg "Rqueue: malformed dequeue descriptor"

let dequeue_attempt t () =
  let hd = Pmem.read t.head in
  let hd_info = Pmem.read hd.info in
  match tagged_desc hd_info with
  | Some d -> Tracking.Help_first d
  | None -> (
      (* next is read after info: the gathered pair certifies it *)
      match Pmem.read hd.next with
      | None ->
          (* empty: the read-only optimization applies *)
          let desc =
            Desc.make t.heap ~label:"dequeue!"
              ~affect:[ (hd, hd_info) ]
              ~response:false ()
          in
          Desc.set_result desc false;
          Tracking.Ready { desc; read_only = true }
      | Some first ->
          let desc =
            Desc.make t.heap ~label:"dequeue"
              ~affect:[ (hd, hd_info) ]
              ~writes:
                [ Desc.Update { field = t.head; old_v = hd; new_v = first } ]
                (* hd leaves the queue and stays tagged forever *)
              ~response:true ()
          in
          Tracking.Ready { desc; read_only = false })

let dequeue t =
  let h = my_handle t in
  let ok =
    Tracking.exec t.ops t.sites h ~kind:`Update ~attempt:(dequeue_attempt t)
  in
  if not ok then None
  else
    match Pmem.read h.rd with
    | Some d -> value_of_dequeue d
    | None -> invalid_arg "Rqueue: RD lost after a successful dequeue"

let apply t = function
  | Enqueue v ->
      enqueue t v;
      None
  | Dequeue -> dequeue t

let recover t p =
  let h = my_handle t in
  match (Pmem.read h.cp, Pmem.read h.rd) with
  | 0, _ | _, None -> apply t p
  | _, Some d -> (
      Tracking.help t.ops t.sites d;
      match Desc.result d with
      | None -> apply t p
      | Some false -> None (* an empty dequeue *)
      | Some true -> (
          match p with Enqueue _ -> None | Dequeue -> value_of_dequeue d))

(* ---- introspection ---------------------------------------------------- *)

let to_list t =
  let rec go acc nd =
    match Pmem.peek nd.next with
    | None -> List.rev acc
    | Some next -> (
        match next.value with
        | Some v -> go (v :: acc) next
        | None -> go acc next)
  in
  go [] (Pmem.peek t.head)

let length t = List.length (to_list t)

let check_invariants ?(expect_untagged = true) t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec go n nd =
    if n > 1_000_000 then err "queue chain too long or cyclic"
    else if
      expect_untagged
      && match Pmem.peek nd.info with Desc.Tagged _ -> true | _ -> false
    then err "reachable queue node is tagged in a quiescent state"
    else
      match Pmem.peek nd.next with None -> Ok () | Some next -> go (n + 1) next
  in
  go 0 (Pmem.peek t.head)

(* Space-sweep enumeration: the head/tail root cells and the dummy carry
   no abstract state, each reachable value node carries its value.
   Retired dummies (left behind by dequeues) are garbage by omission. *)
let space t =
  let acc = ref [] in
  let push line cls = acc := (line, cls) :: !acc in
  let desc_of_info = function
    | Desc.Clean -> ()
    | Desc.Tagged d | Desc.Untagged d -> push (Desc.line d) (`Meta "descriptor")
  in
  push (Pmem.line_of t.head) (`Payload []);
  push (Pmem.line_of t.tail_hint) (`Payload []);
  (* the head node is the sentinel: its value (if any) was already
     consumed by the dequeue that promoted it, so it is structure, not
     abstract state — [to_list] skips it for the same reason *)
  let rec walk ~sentinel nd =
    push nd.line
      (match nd.value with
      | Some v when not sentinel -> `Payload [ v ]
      | _ -> `Payload []);
    desc_of_info (Pmem.peek nd.info);
    match Pmem.peek nd.next with
    | None -> ()
    | Some next -> walk ~sentinel:false next
  in
  walk ~sentinel:true (Pmem.peek t.head);
  Array.iter
    (fun h ->
      push (Pmem.line_of h.Tracking.cp) (`Meta "checkpoint");
      push (Pmem.line_of h.Tracking.rd) (`Meta "announce");
      match Pmem.peek h.Tracking.rd with
      | None -> ()
      | Some d -> push (Desc.line d) (`Meta "descriptor"))
    t.handles;
  List.rev !acc
