(** Detectably recoverable FIFO queue — the Tracking transformation
    applied to a Michael–Scott-style queue.

    This structure is {e not} in the paper; it demonstrates the paper's
    claim that Tracking applies to the broad class of helping-based
    lock-free structures (§3: "a large collection of concurrent data
    structures"; §7 discusses recoverable queues as closely related
    work).  The mapping is direct:

    - enqueue's AffectSet is the current last node; its WriteSet appends
      the fresh node to [last.next] (a None→node transition, which can
      never repeat, so CAS by physical equality is ABA-free);
    - dequeue's AffectSet is the current dummy head; its WriteSet swings
      the queue's head pointer to the next node, and the dequeued dummy
      stays tagged forever, exactly like a deleted list node;
    - the dequeued value is recovered from the descriptor's AffectSet, so
      the boolean result field suffices for detectability.

    The tail pointer is only a hint: it is advanced with plain unflushed
    writes and reverts to an older node after a crash, after which
    appends simply walk forward — the recoverable state is the chain
    itself. *)

type 'a t

val create : ?prefix:string -> Pmem.heap -> threads:int -> 'a t

val enqueue : 'a t -> 'a -> unit

val dequeue : 'a t -> 'a option
(** [None] iff the queue was observed empty. *)

type 'a pending = Enqueue of 'a | Dequeue

val apply : 'a t -> 'a pending -> 'a option
(** Run a pending description as a fresh operation (harness glue);
    enqueues yield [None]. *)

val recover : 'a t -> 'a pending -> 'a option
(** Detectable recovery of the calling thread's crashed operation.
    For a recovered enqueue the result is [None] (enqueues return unit);
    for a recovered dequeue it is the dequeued value, exactly once. *)

(** {1 Introspection — tests and examples only} *)

val to_list : 'a t -> 'a list
(** Front-to-back volatile snapshot. *)

val length : 'a t -> int

val check_invariants : ?expect_untagged:bool -> 'a t -> (unit, string) result

val space : 'a t -> (Pmem.line * [ `Payload of 'a list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): reachable lines
    classified as payload (value nodes carry their value; roots and the
    dummy carry none) or detectability metadata.  Retired dummies are
    garbage by omission. *)
