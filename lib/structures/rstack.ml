type 'a node = {
  value : 'a option;  (* None only in the bottom sentinel *)
  line : Pmem.line;
  next : 'a node option Pmem.t;  (* written once at creation, then immutable *)
  info : 'a node Desc.state Pmem.t;
}

type 'a t = {
  heap : Pmem.heap;
  top : 'a node Pmem.t;
  handles : 'a node Tracking.handle array;
  sites : Tracking.sites;
  ops : 'a node Tracking.node_ops;
}

type 'a pending = Push of 'a | Pop

let node_ctr = ref 0

let new_node heap value next =
  incr node_ctr;
  let line = Pmem.new_line ~name:(Printf.sprintf "snode#%d" !node_ctr) heap in
  {
    value;
    line;
    next = Pmem.on_line line next;
    info = Pmem.on_line line Desc.Clean;
  }

let init_pwb = Pstats.make Pwb "rstack.init.pwb"
let init_sync = Pstats.make Psync "rstack.init.psync"

let create ?(prefix = "rstack") heap ~threads =
  let bottom = new_node heap None None in
  let top = Pmem.alloc ~name:"rstack.top" heap bottom in
  Pmem.pwb init_pwb bottom.line;
  Pmem.pwb init_pwb (Pmem.line_of top);
  Pmem.psync init_sync;
  {
    heap;
    top;
    handles = Tracking.make_handles heap ~threads;
    sites = Tracking.sites prefix;
    ops =
      { Tracking.info = (fun nd -> nd.info); node_line = (fun nd -> nd.line) };
  }

let my_handle t =
  let tid = if Sim.in_sim () then Sim.tid () else 0 in
  t.handles.(tid)

let tagged_desc = function
  | Desc.Tagged d -> Some d
  | Desc.Clean | Desc.Untagged _ -> None

(* Read the top node and then its info; any movement of the top pointer
   first tags (and so bumps) the old top's info, so a gathered pair
   certifies that the top pointer still held this node. *)
let gather_top t =
  let top = Pmem.read t.top in
  (top, Pmem.read top.info)

(* The fresh node is allocated inside the attempt, i.e. after the
   engine's crash-atomic invocation announcement: any step taken before
   the announcement could let a crash pair this invocation with the
   previous operation's descriptor. *)
let push_attempt t v () =
  let top, top_info = gather_top t in
  match tagged_desc top_info with
  | Some d -> Tracking.Help_first d
  | None ->
      let fresh = new_node t.heap (Some v) (Some top) in
      let desc =
        Desc.make t.heap ~label:"push"
          ~affect:[ (top, top_info) ]
          ~writes:[ Desc.Update { field = t.top; old_v = top; new_v = fresh } ]
          ~news:[ fresh ]
          ~cleanup:[ top; fresh ]
          ~response:true ()
      in
      Pmem.write fresh.info (Desc.tagged desc);
      Tracking.Ready { desc; read_only = false }

let push t v =
  let ok =
    Tracking.exec t.ops t.sites (my_handle t) ~kind:`Update
      ~attempt:(push_attempt t v)
  in
  assert ok

let value_of_pop d =
  let pay = Desc.payload d in
  match pay.Desc.affect with
  | [ (top, _) ] -> top.value
  | _ -> invalid_arg "Rstack: malformed pop descriptor"

let pop_attempt t () =
  let top, top_info = gather_top t in
  match tagged_desc top_info with
  | Some d -> Tracking.Help_first d
  | None -> (
      match top.value with
      | None ->
          (* bottom sentinel: empty, read-only *)
          let desc =
            Desc.make t.heap ~label:"pop!"
              ~affect:[ (top, top_info) ]
              ~response:false ()
          in
          Desc.set_result desc false;
          Tracking.Ready { desc; read_only = true }
      | Some _ ->
          let succ =
            match Pmem.read top.next with
            | Some s -> s
            | None -> invalid_arg "Rstack: non-sentinel without successor"
          in
          (* Install a fresh copy of the successor, never the successor
             itself: the successor was the top value just before [top]
             was pushed, so re-storing it would re-arm a delayed helper
             of that old push to re-execute its CAS and resurrect the
             popped node — the ABA the paper's assumption (a) forbids,
             and the very reason its list insert copies curr into the
             newcurr node. *)
          let copy = new_node t.heap succ.value (Pmem.read succ.next) in
          let desc =
            Desc.make t.heap ~label:"pop"
              ~affect:[ (top, top_info) ]
              ~writes:
                [ Desc.Update { field = t.top; old_v = top; new_v = copy } ]
                (* the popped node leaves and stays tagged forever; the
                   copy enters and is untagged in cleanup *)
              ~news:[ copy ] ~cleanup:[ copy ] ~response:true ()
          in
          Pmem.write copy.info (Desc.tagged desc);
          Tracking.Ready { desc; read_only = false })

let pop t =
  let h = my_handle t in
  let ok =
    Tracking.exec t.ops t.sites h ~kind:`Update ~attempt:(pop_attempt t)
  in
  if not ok then None
  else
    match Pmem.read h.rd with
    | Some d -> value_of_pop d
    | None -> invalid_arg "Rstack: RD lost after a successful pop"

let apply t = function
  | Push v ->
      push t v;
      None
  | Pop -> pop t

let recover t p =
  let h = my_handle t in
  match (Pmem.read h.cp, Pmem.read h.rd) with
  | 0, _ | _, None -> apply t p
  | _, Some d -> (
      Tracking.help t.ops t.sites d;
      match Desc.result d with
      | None -> apply t p
      | Some false -> None (* an empty pop *)
      | Some true -> (
          match p with Push _ -> None | Pop -> value_of_pop d))

(* ---- introspection ----------------------------------------------------- *)

let to_list t =
  let rec go acc nd =
    match nd.value with
    | None -> List.rev acc
    | Some v -> (
        match Pmem.peek nd.next with
        | Some next -> go (v :: acc) next
        | None -> List.rev (v :: acc))
  in
  go [] (Pmem.peek t.top)

let length t = List.length (to_list t)

let dump t =
  let info_s nd =
    match Pmem.peek nd.info with
    | Desc.Clean -> "clean"
    | Desc.Tagged d ->
        Printf.sprintf "tagged<%s,result=%s>" (Desc.payload d).Desc.label
          (match Pmem.peek (Desc.result_field d) with
          | None -> "_"
          | Some b -> string_of_bool b)
    | Desc.Untagged d ->
        Printf.sprintf "untagged<%s>" (Desc.payload d).Desc.label
  in
  let buf = Buffer.create 128 in
  let rec walk n nd =
    if n > 20 then Buffer.add_string buf " ..."
    else begin
      Buffer.add_string buf
        (Printf.sprintf " [%s %s|%s]" (Pmem.line_name nd.line)
           (match nd.value with None -> "bot" | Some _ -> "v")
           (info_s nd));
      match Pmem.peek nd.next with None -> () | Some nx -> walk (n + 1) nx
    end
  in
  walk 0 (Pmem.peek t.top);
  Buffer.contents buf

let check_invariants ?(expect_untagged = true) t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec go n nd =
    if n > 1_000_000 then err "stack chain too long or cyclic"
    else if
      expect_untagged
      && match Pmem.peek nd.info with Desc.Tagged _ -> true | _ -> false
    then err "reachable stack node is tagged in a quiescent state"
    else
      match (nd.value, Pmem.peek nd.next) with
      | None, None -> Ok () (* reached the bottom sentinel *)
      | None, Some _ -> err "sentinel has a successor"
      | Some _, None -> err "interior node without successor"
      | Some _, Some next -> go (n + 1) next
  in
  go 0 (Pmem.peek t.top)

(* Space-sweep enumeration: the top root cell and the bottom sentinel
   carry no abstract state; each chain node carries its value.  Popped
   nodes (tagged forever, unreachable from top) are garbage by
   omission. *)
let space t =
  let acc = ref [] in
  let push_l line cls = acc := (line, cls) :: !acc in
  let desc_of_info = function
    | Desc.Clean -> ()
    | Desc.Tagged d | Desc.Untagged d ->
        push_l (Desc.line d) (`Meta "descriptor")
  in
  push_l (Pmem.line_of t.top) (`Payload []);
  let rec walk nd =
    push_l nd.line
      (match nd.value with Some v -> `Payload [ v ] | None -> `Payload []);
    desc_of_info (Pmem.peek nd.info);
    match Pmem.peek nd.next with None -> () | Some next -> walk next
  in
  walk (Pmem.peek t.top);
  Array.iter
    (fun h ->
      push_l (Pmem.line_of h.Tracking.cp) (`Meta "checkpoint");
      push_l (Pmem.line_of h.Tracking.rd) (`Meta "announce");
      match Pmem.peek h.Tracking.rd with
      | None -> ()
      | Some d -> push_l (Desc.line d) (`Meta "descriptor"))
    t.handles;
  List.rev !acc
