(** Detectably recoverable LIFO stack — the Tracking transformation
    applied to a Treiber-style stack.

    Like the queue, this structure is not in the paper; it demonstrates
    §3's generality claim on yet another shape of helping.  The stack
    bottoms out at a sentinel node so there is always a node to tag: an
    operation's AffectSet is the current top node, pushes swing the top
    pointer to a fresh node whose next is the old top, pops swing it to
    the popped node's (immutable) successor, and a popped node stays
    tagged forever.  The popped value is recovered from the descriptor's
    AffectSet, so the boolean result field suffices for detectability. *)

type 'a t

val create : ?prefix:string -> Pmem.heap -> threads:int -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** [None] iff the stack was observed empty. *)

type 'a pending = Push of 'a | Pop

val apply : 'a t -> 'a pending -> 'a option
val recover : 'a t -> 'a pending -> 'a option

(** {1 Introspection — tests and examples only} *)

val to_list : 'a t -> 'a list
(** Top-to-bottom volatile snapshot. *)

val length : 'a t -> int

val dump : 'a t -> string
(** One-line rendering of the chain with tag states (debugging aid). *)

val check_invariants : ?expect_untagged:bool -> 'a t -> (unit, string) result

val space : 'a t -> (Pmem.line * [ `Payload of 'a list | `Meta of string ]) list
(** Persistent-space enumeration ([Harness.Space]): reachable lines
    classified as payload (chain nodes carry their value; the top root
    and the sentinel carry none) or detectability metadata.  Popped nodes
    are garbage by omission. *)
