let () =
  Alcotest.run "tracking_nvm"
    [
      ("sim", Test_sim.suite);
      ("pmem", Test_pmem.suite);
      ("substrate", Test_substrate.suite);
      ("rlist", Test_rlist.suite);
      ("rbst", Test_rbst.suite);
      ("rqueue", Test_rqueue.suite);
      ("rstack", Test_rstack.suite);
      ("rhash", Test_rhash.suite);
      ("rexchanger", Test_rexchanger.suite);
      ("oracle", Test_oracle.suite);
      ("linearize", Test_linearize.suite);
      ("tracking-engine", Test_tracking.suite);
      ("harness", Test_harness.suite);
      ("causal", Test_causal.suite);
      ("metrics", Test_metrics.suite);
      ("harris", Test_harris.suite);
      ("baselines", Test_baselines.suite);
      ("crashes", Test_crashes.suite);
      ("memento", Test_memento.suite);
      ("repro", Test_repro.suite);
      ("explore", Test_explore.suite);
      ("forensics", Test_forensics.suite);
      ("crash-sweeps", Test_crash_sweeps.suite);
      ("ablations", Test_ablations.suite);
      ("space", Test_space.suite);
      ("store", Test_store.suite);
      ("parallel", Test_parallel.suite);
      ("elastic", Test_elastic.suite);
    ]
