(* The causal what-if profiler: exact replay of site/category scalings,
   the paper's sensitivity orderings, exception-safe scaling installs,
   and the classification plumbing it leans on. *)

let small_config () =
  {
    (Causal.quick_config Set_intf.tracking Workload.update_intensive) with
    Causal.threads = 4;
    ops_per_thread = 60;
    factors = [ 0.; 2. ];
    mechanisms = [];
  }

(* Profiles are deterministic but not cheap; compute one and share it. *)
let shared_profile = lazy (Causal.profile (small_config ()))

let row_by target p =
  List.find_opt (fun (r : Causal.row) -> r.Causal.target = target) p.Causal.rows

(* Site and category scalings replay the recorded schedule exactly: the
   switch decision ignores the scaled part of every charge, so clocks
   dilate but the interleaving is bit-identical — zero divergences. *)
let test_replay_exact () =
  let p = Lazy.force shared_profile in
  Alcotest.(check bool) "has site rows" true
    (List.exists (fun r -> r.Causal.group = "pwb") p.Causal.rows);
  List.iter
    (fun (r : Causal.row) ->
      if r.Causal.group <> "mechanism" then
        Alcotest.(check int)
          (Format.asprintf "%a replays exactly" Causal.pp_target
             r.Causal.target)
          0 r.Causal.divergences)
    p.Causal.rows

(* Under a fixed interleaving every charge is monotone in the factor, so
   ns/op must be non-decreasing along each site row's sweep — a property
   only an exact (divergence-free) replay can guarantee. *)
let test_monotone_in_factor () =
  let p = Lazy.force shared_profile in
  List.iter
    (fun (r : Causal.row) ->
      if r.Causal.group <> "mechanism" then
        ignore
          (List.fold_left
             (fun prev (f, ns) ->
               Alcotest.(check bool)
                 (Printf.sprintf "%s: ns/op@%gx >= previous" r.Causal.label f)
                 true
                 (ns >= prev -. 1e-9);
               ns)
             0. r.Causal.points))
    p.Causal.rows

(* The paper's ordering (§5): per execution, a high-impact pwb costs more
   than a low-impact one, and psyncs are nearly free. *)
let test_paper_orderings () =
  let p = Lazy.force shared_profile in
  let per_exec t =
    match row_by t p with
    | Some r when r.Causal.executions > 0 ->
        r.Causal.sensitivity /. float_of_int r.Causal.executions
    | _ -> Alcotest.fail "category row missing"
  in
  let high = per_exec (Causal.Category Pstats.High) in
  let low = per_exec (Causal.Category Pstats.Low) in
  Alcotest.(check bool) "high-impact > low-impact per execution" true
    (high > low);
  List.iter
    (fun (r : Causal.row) ->
      if r.Causal.group = "psync" then
        Alcotest.(check bool)
          (r.Causal.label ^ " sensitivity is a sliver of baseline")
          true
          (Float.abs r.Causal.sensitivity
          < 0.05 *. p.Causal.baseline_ns_per_op))
    p.Causal.rows

let test_headroom_positive () =
  let p = Lazy.force shared_profile in
  (* zeroing ALL low-impact pwbs must buy measurable throughput *)
  match row_by (Causal.Category Pstats.Low) p with
  | Some r -> Alcotest.(check bool) "low-category headroom > 0" true (r.Causal.headroom > 0.)
  | None -> Alcotest.fail "low category row missing"

(* ---- scoped installs --------------------------------------------------- *)

let test_with_scaled_restores_on_raise () =
  let site =
    match Pstats.find "rlist.new.pwb" with
    | Some s -> s
    | None -> Alcotest.fail "expected site rlist.new.pwb to be registered"
  in
  (try
     Causal.with_scaled
       [
         (Causal.Site "rlist.new.pwb", 0.);
         (Causal.Category Pstats.High, 2.);
         (Causal.Mechanism "pwb_steal", 0.5);
       ]
       (fun () ->
         Alcotest.(check (float 1e-9)) "site mult installed" 0.
           (Pstats.cost_mult site);
         Alcotest.(check (float 1e-9)) "category mult installed" 2.
           (Pstats.category_mult Pstats.High);
         Alcotest.(check bool) "cost table tweaked" false
           (Cost.is_default (Cost.current ()));
         raise Exit)
   with Exit -> ());
  Alcotest.(check bool) "site+category multipliers restored" true
    (Pstats.all_multipliers_default ());
  Alcotest.(check bool) "cost table restored" true
    (Cost.is_default (Cost.current ()))

let test_with_scaled_rejects_unknown () =
  Alcotest.check_raises "unknown site"
    (Invalid_argument "Causal: unknown site \"no.such.site\"") (fun () ->
      Causal.with_scaled [ (Causal.Site "no.such.site", 0.) ] (fun () -> ()));
  Alcotest.check_raises "unknown mechanism"
    (Invalid_argument "Causal: unknown mechanism \"no_such_knob\"") (fun () ->
      Causal.with_scaled [ (Causal.Mechanism "no_such_knob", 0.) ] (fun () ->
          ()))

(* A measurement that raises mid-sweep (here: a factory whose constructor
   throws) must leave the cost table and every site multiplier/enabled
   flag at defaults — the sweep-teardown regression of the hardening
   audit. *)
let test_raising_measurement_leaks_nothing () =
  let raising =
    {
      Set_intf.fname = "raiser";
      make = (fun _ ~threads:_ -> failwith "constructor boom");
    }
  in
  (try
     ignore
       (Causal.measure_scaled ~duration_ns:10_000.
          ~scaled:
            [
              (Causal.Category Pstats.Low, 0.);
              (Causal.Mechanism "cache_miss", 2.);
            ]
          raising ~threads:2
          (Workload.default Workload.update_intensive)
         : Runner.point);
     Alcotest.fail "expected the factory to raise"
   with Failure _ -> ());
  Alcotest.(check bool) "multipliers restored" true
    (Pstats.all_multipliers_default ());
  Alcotest.(check bool) "cost table restored" true
    (Cost.is_default (Cost.current ()));
  Alcotest.(check bool) "all sites enabled" true
    (List.for_all Pstats.enabled (Pstats.sites ()))

(* ---- classification plumbing ------------------------------------------ *)

let test_classify_tie_pins_high () =
  let s = Pstats.make Pstats.Pwb "test.tie.pwb" in
  Pstats.reset ();
  Pstats.record s Pstats.Medium;
  Pstats.record s Pstats.High;
  Alcotest.(check bool) "50/50 medium/high counts as high" true
    (Pstats.classify s = Some Pstats.High);
  Pstats.reset ();
  Pstats.record s Pstats.Low;
  Pstats.record s Pstats.Medium;
  Alcotest.(check bool) "50/50 low/medium counts as medium" true
    (Pstats.classify s = Some Pstats.Medium);
  Pstats.reset ();
  Alcotest.(check bool) "no executions, no class" true
    (Pstats.classify s = None)

(* Each measurement resets classification state: two identical runs see
   identical counts (nothing accumulates across figure points). *)
let test_counts_reset_between_points () =
  let wl = Workload.default Workload.update_intensive in
  let run () =
    ignore
      (Runner.measure ~duration_ns:30_000. ~seed:5 Set_intf.tracking
         ~threads:2 wl
        : Runner.point);
    Pstats.totals ()
  in
  let t1 = run () in
  let t2 = run () in
  Alcotest.(check int) "pwb count identical, not accumulated"
    t1.Pstats.pwbs t2.Pstats.pwbs;
  Alcotest.(check int) "psync count identical" t1.Pstats.psyncs
    t2.Pstats.psyncs;
  Alcotest.(check int) "high count identical" t1.Pstats.high t2.Pstats.high

(* ---- export formats ---------------------------------------------------- *)

let test_export_shapes () =
  let p = Lazy.force shared_profile in
  let csv = Causal.to_csv p in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "one csv line per row plus header"
    (List.length p.Causal.rows + 1)
    (List.length lines);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header names the sensitivity column" true
        (contains header "sensitivity_ns_per_op")
  | [] -> Alcotest.fail "empty csv");
  let json = Causal.to_json p in
  Alcotest.(check bool) "json object" true
    (String.length json > 2 && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  Alcotest.(check bool) "json has no NaN literal" true
    (not (contains json "nan"))

let suite =
  [
    Alcotest.test_case "site/category replay is divergence-free" `Quick
      test_replay_exact;
    Alcotest.test_case "ns/op monotone in cost factor" `Quick
      test_monotone_in_factor;
    Alcotest.test_case "paper orderings: high > low, psync ~ 0" `Quick
      test_paper_orderings;
    Alcotest.test_case "zeroing low-impact pwbs buys throughput" `Quick
      test_headroom_positive;
    Alcotest.test_case "with_scaled restores on raise" `Quick
      test_with_scaled_restores_on_raise;
    Alcotest.test_case "with_scaled rejects unknown targets" `Quick
      test_with_scaled_rejects_unknown;
    Alcotest.test_case "raising measurement leaks no state" `Quick
      test_raising_measurement_leaks_nothing;
    Alcotest.test_case "classify pins ties toward high impact" `Quick
      test_classify_tie_pins_high;
    Alcotest.test_case "counts reset between figure points" `Quick
      test_counts_reset_between_points;
    Alcotest.test_case "csv/json export shapes" `Quick test_export_shapes;
  ]
