(* The elastic store: pinned router placement (the determinism contract
   of router.mli), live shard-split migration with detectable handoff,
   correlated crashes of the migration endpoints, replica failover, and
   multi-structure backends. *)

let factory name = Result.get_ok (Set_intf.by_name name)

let small_workload ~keys =
  {
    (Workload.default Workload.update_intensive) with
    key_range = keys;
    prefill_n = keys / 2;
  }

let cfg ?(algo = "tracking") ?(shards = 2) ?(clients = 2) ?(ops = 40)
    ?(keys = 32) () =
  {
    (Store.default_config (factory algo)) with
    shards;
    clients;
    ops_per_client = ops;
    workload = small_workload ~keys;
  }

let migrate ?(m_after = 5) ?(m_broken = false) msrc =
  Some { Store.msrc; m_after; m_broken }

let run_ok c =
  match Store.run c with Ok r -> r | Error e -> Alcotest.fail e

let shard_stat r sid =
  List.find (fun s -> s.Slo.ss_sid = sid) r.Slo.shards

(* -- router determinism contract ------------------------------------------ *)

(* Golden placements, frozen.  Every committed serve repro file encodes
   prefill routing and crash points that assume these exact values
   (SplitMix64 finalizer + mod, see router.mli): if this test fails, the
   mixing constants changed and every committed repro is corrupt. *)
let test_router_golden_placements () =
  List.iter
    (fun (k, at2, at4) ->
      Alcotest.(check int)
        (Printf.sprintf "route ~shards:2 %d" k)
        at2
        (Router.route ~shards:2 k);
      Alcotest.(check int)
        (Printf.sprintf "route ~shards:4 %d" k)
        at4
        (Router.route ~shards:4 k))
    [
      (1, 1, 3);
      (2, 0, 0);
      (3, 1, 3);
      (5, 1, 3);
      (8, 0, 0);
      (13, 1, 3);
      (21, 1, 3);
      (42, 0, 2);
      (100, 0, 2);
      (1000, 0, 2);
    ];
  (* the split plan is equally pinned: bit 20 of the same mix *)
  let plan =
    List.filter (Router.splits ~shards:2 ~src:0) (List.init 32 (fun i -> i + 1))
  in
  Alcotest.(check (list int))
    "split plan of shard 0 (2 shards, keys 1..32)"
    [ 2; 6; 8; 12; 18; 19; 24; 29 ]
    plan;
  (* a plan key is necessarily owned by its source *)
  for k = 1 to 1000 do
    if Router.splits ~shards:2 ~src:0 k then
      Alcotest.(check int)
        (Printf.sprintf "plan key %d owned by src" k)
        0
        (Router.route ~shards:2 k)
  done

let test_router_two_phase_ownership () =
  let t = Router.create ~shards:2 in
  Alcotest.(check int) "fresh version" 0 (Router.version t);
  Alcotest.(check int) "base count" 2 (Router.shard_count t);
  Alcotest.(check bool) "no plan before split" false (Router.plan_mem t 2);
  (* migrate shard 0; pretend only key 2's handoff committed *)
  let dst = Router.begin_split t ~src:0 ~moved:(fun k -> k = 2) in
  Alcotest.(check int) "dst is the fresh shard" 2 dst;
  Alcotest.(check int) "version bumped" 1 (Router.version t);
  Alcotest.(check int) "count includes dst" 3 (Router.shard_count t);
  Alcotest.(check bool) "plan key recognized" true (Router.plan_mem t 2);
  Alcotest.(check int) "moved plan key serves at dst" dst (Router.owner t 2);
  Alcotest.(check int) "unmoved plan key still at src" 0 (Router.owner t 6);
  Alcotest.(check int) "non-plan key routes base" 1 (Router.owner t 1);
  Router.finish_split t;
  Alcotest.(check int) "version bumped again" 2 (Router.version t);
  Alcotest.(check int) "finished: plan key at dst" dst (Router.owner t 6);
  Alcotest.(check bool) "double split rejected" true
    (match Router.begin_split t ~src:0 ~moved:(fun _ -> false) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- migration under live traffic ----------------------------------------- *)

let test_migration_clean_completion () =
  let c = { (cfg ()) with Store.migrate = migrate 0 } in
  let r = run_ok c in
  (* Store.run errors on an unfinished migration, resident keys in the
     wrong shard, or a union-conservation violation — reaching here IS
     the every-key-in-exactly-one-shard proof for this schedule *)
  Alcotest.(check int) "all completed"
    (c.Store.clients * c.Store.ops_per_client)
    r.Slo.completed;
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  Alcotest.(check int) "dst shard reported" 3 (List.length r.Slo.shards);
  let dst = shard_stat r 2 in
  Alcotest.(check bool) "dst holds migrated residents" true
    (dst.Slo.ss_keys > 0);
  let src = shard_stat r 0 in
  Alcotest.(check bool) "guard actually forwarded or deferred" true
    (src.Slo.ss_forwarded + src.Slo.ss_deferred > 0
    || dst.Slo.ss_served > 0);
  Alcotest.(check bool) "balance measurable" true (r.Slo.balance <> None)

let test_migration_balance_gate () =
  let c = { (cfg ()) with Store.migrate = migrate 0 } in
  let r = run_ok c in
  (match Slo.check ~balance_max:64. ~crash_expected:false r with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("lenient balance gate refused: " ^ e));
  (* resident-key ratios are >= 1 by construction: an impossible bound
     must fail loudly, proving the gate actually reads the report *)
  match Slo.check ~balance_max:0.5 ~crash_expected:false r with
  | Ok () -> Alcotest.fail "impossible balance bound accepted"
  | Error e ->
      Alcotest.(check bool) "error names the imbalance" true
        (String.length e >= 10 && String.sub e 0 10 = "imbalanced")

let test_migration_survives_source_crash () =
  let c =
    {
      (cfg ()) with
      Store.migrate = migrate 0;
      crash = Some (Store.After_requests { victim = 0; requests = 20 });
    }
  in
  let r = run_ok c in
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  let src = shard_stat r 0 in
  Alcotest.(check bool) "source crashed" true (src.Slo.ss_crashes >= 1)

(* Correlated power loss of BOTH migration endpoints, each heap's
   write-backs resolved independently and adversarially (drop vs all).
   The migration journal lives on the destination heap; the data it
   moves lives on both — recovery must still converge. *)
let test_migration_both_endpoint_power_loss () =
  let c =
    {
      (cfg ~clients:4 ()) with
      Store.migrate = migrate 0;
      crash = Some (Store.Both_at_dispatch { a = 0; b = 2; dispatch = 12 });
      wb = `Drop;
      wb2 = Some `All;
    }
  in
  let r = run_ok c in
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  Alcotest.(check bool) "source crashed" true
    ((shard_stat r 0).Slo.ss_crashes >= 1);
  Alcotest.(check bool) "destination crashed" true
    ((shard_stat r 2).Slo.ss_crashes >= 1)

let test_cascade_crash () =
  let c =
    {
      (cfg ~clients:4 ~ops:60 ()) with
      Store.crash = Some (Store.Cascade { first = 0; second = 1; dispatch = 10 });
    }
  in
  let r = run_ok c in
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  Alcotest.(check int) "all completed" 240 r.Slo.completed;
  Alcotest.(check bool) "first victim crashed" true
    ((shard_stat r 0).Slo.ss_crashes >= 1);
  Alcotest.(check bool) "second victim crashed during recovery" true
    ((shard_stat r 1).Slo.ss_crashes >= 1)

(* -- replica failover ------------------------------------------------------ *)

let test_failover_promotion () =
  let c =
    {
      (cfg ()) with
      Store.replicate = true;
      crash = Some (Store.After_requests { victim = 0; requests = 20 });
    }
  in
  let r = run_ok c in
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  let v = shard_stat r 0 in
  Alcotest.(check bool) "crash resolved by promotion" true
    (v.Slo.ss_promotions >= 1);
  Alcotest.(check bool) "failover window recorded" true
    (v.Slo.ss_failover_ns <> []);
  (* the point of replication: promotion beats a cold restart *)
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "failover window %.0f ns under restart latency" w)
        true (w < c.Store.restart_ns))
    v.Slo.ss_failover_ns

(* -- multi-structure backends ---------------------------------------------- *)

let test_mixed_backends_with_crash () =
  let c =
    {
      (cfg ()) with
      Store.backends =
        Some [| factory "tracking"; factory "tracking-topic" |];
      crash = Some (Store.After_requests { victim = 1; requests = 20 });
    }
  in
  let r = run_ok c in
  (* the FIFO-model oracle ran over the topic shard inside Store.run *)
  Alcotest.(check int) "zero lost" 0 r.Slo.lost;
  Alcotest.(check string) "shard 1 is the topic" "tracking-topic"
    (shard_stat r 1).Slo.ss_backend;
  Alcotest.(check bool) "topic shard crashed and served" true
    ((shard_stat r 1).Slo.ss_crashes >= 1 && (shard_stat r 1).Slo.ss_served > 0)

(* -- crash-point exploration over a migration ------------------------------ *)

let explore_cfg ~m_broken =
  {
    (cfg ~ops:16 ~keys:16 ()) with
    Store.migrate = migrate ~m_after:3 ~m_broken 0;
  }

let test_explore_migration_clean () =
  match Store.explore ~dispatch_budget:200 ~jobs:4 (explore_cfg ~m_broken:false) with
  | Error e -> Alcotest.fail e
  | Ok st ->
      Alcotest.(check int) "no failures across all crash points" 0
        st.Store.ex_failures;
      Alcotest.(check bool) "crash points fired" true (st.Store.ex_fired > 0);
      (* the sweep must cover the source, the destination AND the
         correlated both-endpoints campaign *)
      Alcotest.(check (array string)) "victim specs"
        [| "shard0"; "shard2"; "shard0+shard2" |]
        (Array.map fst st.Store.ex_max_dispatch);
      Array.iter
        (fun (label, d) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s explored" label)
            true (d > 0))
        st.Store.ex_max_dispatch

(* The negative control: eliding the handoff-commit pwb loses keys from
   BOTH shards under a destination crash.  The sweep must catch it, and
   the counterexample must round-trip through a serve repro file and
   replay to the identical bare error. *)
let test_explore_catches_broken_handoff () =
  match Store.explore ~dispatch_budget:200 ~jobs:4 (explore_cfg ~m_broken:true) with
  | Error e -> Alcotest.fail e
  | Ok st -> (
      Alcotest.(check bool) "failures found" true (st.Store.ex_failures > 0);
      match st.Store.ex_first_cex with
      | None -> Alcotest.fail "failures counted but no counterexample captured"
      | Some (cex, sched, bare) -> (
          Alcotest.(check bool) "counterexample kept the broken plan" true
            (match cex.Store.migrate with
            | Some m -> m.Store.m_broken
            | None -> false);
          let r = Store_repro.of_config cex ~error:bare ~schedule:sched in
          match Store_repro.replay r with
          | Error e ->
              Alcotest.(check string) "replay reproduces the bare error" bare e
          | Ok () -> Alcotest.fail "counterexample replayed clean"))

(* -- serve repro files: elastic fields ------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "tracking-nvm-elastic" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_repro_elastic_fields_roundtrip () =
  let c =
    {
      (cfg ()) with
      Store.backends = Some [| factory "tracking"; factory "tracking-topic" |];
      crash = Some (Store.Both_at_dispatch { a = 0; b = 2; dispatch = 9 });
      wb = `Drop;
      wb2 = Some (`Prefix 2);
      replicate = true;
      failover_ns = 750.;
      migrate = migrate ~m_after:7 ~m_broken:true 0;
    }
  in
  let r = Store_repro.of_config c ~error:"synthetic" ~schedule:[| 1; 2; 3 |] in
  with_temp_file (fun path ->
      Store_repro.save path r;
      match Store_repro.load path with
      | Error e -> Alcotest.fail ("load: " ^ e)
      | Ok r' -> (
          Alcotest.(check bool) "crash plan survives" true
            (r'.Store_repro.crash = c.Store.crash);
          Alcotest.(check bool) "wb2 survives" true
            (r'.Store_repro.wb2 = Some (`Prefix 2));
          Alcotest.(check bool) "backends survive" true
            (r'.Store_repro.backends = Some [ "tracking"; "tracking-topic" ]);
          Alcotest.(check bool) "replicate survives" true
            r'.Store_repro.replicate;
          Alcotest.(check (float 0.)) "failover-ns survives" 750.
            r'.Store_repro.failover_ns;
          Alcotest.(check bool) "migrate plan survives" true
            (r'.Store_repro.migrate = c.Store.migrate);
          match Store_repro.config_of r' with
          | Error e -> Alcotest.fail ("config_of: " ^ e)
          | Ok c' ->
              Alcotest.(check bool) "config round-trips the plan" true
                (c'.Store.migrate = c.Store.migrate
                && c'.Store.wb2 = c.Store.wb2
                && c'.Store.replicate)))

(* Pre-elastic serve repro files carry none of the new fields — they
   must still load, with the documented defaults. *)
let test_repro_pre_elastic_files_still_parse () =
  let r = Store_repro.of_config (cfg ()) ~error:"synthetic" ~schedule:[||] in
  with_temp_file (fun path ->
      Store_repro.save path r;
      let legacy_keys = [ "wb2"; "backends"; "replicate"; "failover-ns"; "migrate" ] in
      let keeps line =
        not
          (List.exists
             (fun k ->
               let p = k ^ " " in
               String.length line >= String.length p
               && String.sub line 0 (String.length p) = p)
             legacy_keys)
      in
      let lines =
        List.filter keeps
          (In_channel.with_open_text path In_channel.input_lines)
      in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines);
      match Store_repro.load path with
      | Error e -> Alcotest.fail ("pre-elastic file rejected: " ^ e)
      | Ok r' ->
          Alcotest.(check bool) "defaults applied" true
            (r'.Store_repro.wb2 = None
            && r'.Store_repro.backends = None
            && (not r'.Store_repro.replicate)
            && r'.Store_repro.failover_ns = 500.
            && r'.Store_repro.migrate = None))

let suite =
  [
    Alcotest.test_case "router: golden placements pinned" `Quick
      test_router_golden_placements;
    Alcotest.test_case "router: two-phase split ownership" `Quick
      test_router_two_phase_ownership;
    Alcotest.test_case "migration completes under live traffic" `Quick
      test_migration_clean_completion;
    Alcotest.test_case "migration balance gate" `Quick
      test_migration_balance_gate;
    Alcotest.test_case "migration survives a source crash" `Quick
      test_migration_survives_source_crash;
    Alcotest.test_case "both-endpoint power loss converges" `Quick
      test_migration_both_endpoint_power_loss;
    Alcotest.test_case "cascade: second crash inside first recovery" `Quick
      test_cascade_crash;
    Alcotest.test_case "replica failover beats restart" `Quick
      test_failover_promotion;
    Alcotest.test_case "mixed backends under crash" `Quick
      test_mixed_backends_with_crash;
    Alcotest.test_case "explore: clean migration proves exactly-one-shard"
      `Quick test_explore_migration_clean;
    Alcotest.test_case "explore: broken handoff caught and repro'd" `Quick
      test_explore_catches_broken_handoff;
    Alcotest.test_case "serve repro: elastic fields round-trip" `Quick
      test_repro_elastic_fields_roundtrip;
    Alcotest.test_case "serve repro: pre-elastic files parse" `Quick
      test_repro_pre_elastic_files_still_parse;
  ]
